GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet kml-vet test race fuzz ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific kernel-portability checks (see DESIGN.md).
kml-vet:
	$(GO) run ./cmd/kml-vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run every fuzz target briefly. Go's fuzzer allows one -fuzz pattern per
# package invocation, so targets run sequentially.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzModelRoundTrip -fuzztime=$(FUZZTIME) ./internal/nn/
	$(GO) test -run='^$$' -fuzz=FuzzRingPushPop -fuzztime=$(FUZZTIME) ./internal/ringbuf/
	$(GO) test -run='^$$' -fuzz=FuzzWALReplay -fuzztime=$(FUZZTIME) ./internal/kvstore/

ci: build vet race fuzz kml-vet

clean:
	$(GO) clean ./...
