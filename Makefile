GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet kml-vet vet-strict test race fuzz serve-smoke telemetry-smoke trace-smoke online-smoke top-smoke loadgen-smoke postmortem-smoke overhead-check bench-json bench-ratchet ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific kernel-portability checks (see DESIGN.md).
kml-vet:
	$(GO) run ./cmd/kml-vet ./...

# The CI form: same analyzers, checked against the committed baseline.
# New diagnostics fail, and stale baseline entries fail too — the
# ratchet only turns down (DESIGN.md §11).
vet-strict:
	$(GO) run ./cmd/kml-vet -baseline lint.baseline ./...

test:
	$(GO) test ./...

# The simulation-heavy suites (internal/readahead) run near go test's
# default 10m per-package limit under the race detector; give headroom.
race:
	$(GO) test -race -timeout 30m ./...

# Run every fuzz target briefly. Go's fuzzer allows one -fuzz pattern per
# package invocation, so targets run sequentially.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzModelRoundTrip -fuzztime=$(FUZZTIME) ./internal/nn/
	$(GO) test -run='^$$' -fuzz=FuzzInferBatchEquivalence -fuzztime=$(FUZZTIME) ./internal/nn/
	$(GO) test -run='^$$' -fuzz=FuzzRingPushPop -fuzztime=$(FUZZTIME) ./internal/ringbuf/
	$(GO) test -run='^$$' -fuzz=FuzzWALReplay -fuzztime=$(FUZZTIME) ./internal/kvstore/
	$(GO) test -run='^$$' -fuzz=FuzzFrameDecode -fuzztime=$(FUZZTIME) ./internal/mserve/
	$(GO) test -run='^$$' -fuzz=FuzzMetricsDecode -fuzztime=$(FUZZTIME) ./internal/mserve/
	$(GO) test -run='^$$' -fuzz=FuzzLearnStatusDecode -fuzztime=$(FUZZTIME) ./internal/mserve/
	$(GO) test -run='^$$' -fuzz=FuzzBlackboxStatusDecode -fuzztime=$(FUZZTIME) ./internal/mserve/
	$(GO) test -run='^$$' -fuzz=FuzzTracesDecode -fuzztime=$(FUZZTIME) ./internal/dtrace/
	$(GO) test -run='^$$' -fuzz=FuzzTimeSeriesDecode -fuzztime=$(FUZZTIME) ./internal/telemetry/tsrec/
	$(GO) test -run='^$$' -fuzz=FuzzDirectiveParse -fuzztime=$(FUZZTIME) ./internal/lint/

# End-to-end smoke of the serving subsystem: daemon + deploy + bench +
# graceful shutdown on a unix socket.
serve-smoke:
	sh scripts/serve_smoke.sh

# End-to-end smoke of the observability layer: debug HTTP listener,
# /metrics scrape, MsgMetrics wire surface, flight-recorder decisions.
telemetry-smoke:
	sh scripts/telemetry_smoke.sh

# End-to-end smoke of decision tracing: boot kml-served -sim (full
# closed-loop decisions against the deployed model), pull traces over
# MsgTraces with kml-trace, assert complete span trees and moving drift
# gauges across a workload phase switch.
trace-smoke:
	sh scripts/trace_smoke.sh

# End-to-end smoke of the closed online-learning loop: kml-served -sim
# -olearn retrains on drift and commits through the canary; a second
# boot with -sim-poison proves a regressing retrain is auto-rolled-back.
online-smoke:
	sh scripts/online_smoke.sh

# End-to-end smoke of the serving console: boot kml-served -sim with a
# fast time-series interval, assert kml-top renders throughput/latency
# from MsgTimeSeries, the raw capture is non-empty and monotonic, and
# kml-trace -probe joins a client-stamped trace with the server's tree.
top-smoke:
	sh scripts/top_smoke.sh

# End-to-end smoke of cross-connection batch coalescing: boot kml-served
# with a gather window, sweep open-loop load from kml-loadgen across 128
# connections, assert zero errors and a mean achieved batch > 1.
loadgen-smoke:
	sh scripts/loadgen_smoke.sh

# End-to-end smoke of crash forensics: boot kml-served with a black-box
# flight recorder, drive load, SIGKILL the daemon, and assert
# kml-postmortem reconstructs the final window (series points, traces,
# drift trajectory) from the file alone; also covers the live-sync and
# kml-top -from replay paths.
postmortem-smoke:
	sh scripts/postmortem_smoke.sh

# Regenerate the hot-path benchmark snapshot: single-sample vs batched
# inference (float64/float32/Q16.16) and one training iteration, as
# machine-readable JSON, best-of-BENCHCOUNT per metric. BENCHTIME and
# BENCHCOUNT shorten runs for smoke checks.
bench-json:
	sh scripts/bench_json.sh BENCH_PR10.json

# Compare the two newest committed benchmark snapshots; fail on >15%
# regressions that are not on the allowlist in the script.
bench-ratchet:
	sh scripts/bench_ratchet.sh

# The telemetry overhead self-checks in isolation: one counter add plus
# one histogram observation (internal/telemetry/overhead_test.go), one
# tracing span pair (internal/dtrace), and one full time-series capture
# tick (internal/telemetry/tsrec) must each cost under their budgets, or
# the build fails.
overhead-check:
	$(GO) test -run TestOverheadBudget -count=1 -v ./internal/telemetry/
	$(GO) test -run TestTraceOverheadBudget -count=1 -v ./internal/dtrace/
	$(GO) test -run TestTimeSeriesOverheadBudget -count=1 -v ./internal/telemetry/tsrec/
	$(GO) test -run TestBlackboxOverheadBudget -count=1 -v ./internal/blackbox/

ci: build vet race fuzz serve-smoke telemetry-smoke trace-smoke online-smoke top-smoke loadgen-smoke postmortem-smoke overhead-check vet-strict bench-ratchet

clean:
	$(GO) clean ./...
