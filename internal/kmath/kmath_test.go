package kmath

import (
	"math"
	"testing"
	"testing/quick"
)

// relErr returns the relative error of got vs want, falling back to absolute
// error when want is ~0.
func relErr(got, want float64) float64 {
	if math.Abs(want) < 1e-300 {
		return math.Abs(got - want)
	}
	return math.Abs(got-want) / math.Abs(want)
}

func TestExpAgainstStdlib(t *testing.T) {
	for x := -700.0; x <= 700; x += 0.37 {
		got, want := Exp(x), math.Exp(x)
		if relErr(got, want) > 1e-13 {
			t.Fatalf("Exp(%g) = %g, want %g (rel err %g)", x, got, want, relErr(got, want))
		}
	}
}

func TestExpEdgeCases(t *testing.T) {
	cases := []struct {
		in, want float64
	}{
		{0, 1},
		{math.Inf(1), math.Inf(1)},
		{math.Inf(-1), 0},
		{800, math.Inf(1)},
		{-800, 0},
		{1, E},
	}
	for _, c := range cases {
		if got := Exp(c.in); got != c.want && relErr(got, c.want) > 1e-14 {
			t.Errorf("Exp(%g) = %g, want %g", c.in, got, c.want)
		}
	}
	if !math.IsNaN(Exp(math.NaN())) {
		t.Error("Exp(NaN) should be NaN")
	}
}

func TestLogAgainstStdlib(t *testing.T) {
	for _, x := range []float64{1e-300, 1e-10, 0.001, 0.1, 0.5, 0.99, 1, 1.01, 2, E, 10, 1e3, 1e10, 1e100, 1e300} {
		got, want := Log(x), math.Log(x)
		if relErr(got, want) > 1e-13 && math.Abs(got-want) > 1e-14 {
			t.Errorf("Log(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestLogEdgeCases(t *testing.T) {
	if !math.IsInf(Log(0), -1) {
		t.Error("Log(0) should be -Inf")
	}
	if !math.IsNaN(Log(-1)) {
		t.Error("Log(-1) should be NaN")
	}
	if !math.IsInf(Log(math.Inf(1)), 1) {
		t.Error("Log(+Inf) should be +Inf")
	}
	if Log(1) != 0 {
		t.Errorf("Log(1) = %g, want 0", Log(1))
	}
}

func TestLogExpRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		x = math.Mod(math.Abs(x), 600) // keep Exp finite
		return relErr(Log(Exp(x)), x) < 1e-10 || math.Abs(Log(Exp(x))-x) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLog1p(t *testing.T) {
	for _, x := range []float64{-0.9, -0.5, -1e-10, 0, 1e-15, 1e-10, 0.1, 0.3, 1, 10} {
		got, want := Log1p(x), math.Log1p(x)
		if relErr(got, want) > 1e-13 && math.Abs(got-want) > 1e-16 {
			t.Errorf("Log1p(%g) = %g, want %g", x, got, want)
		}
	}
	if !math.IsInf(Log1p(-1), -1) {
		t.Error("Log1p(-1) should be -Inf")
	}
	if !math.IsNaN(Log1p(-2)) {
		t.Error("Log1p(-2) should be NaN")
	}
}

func TestSqrtAgainstStdlib(t *testing.T) {
	for _, x := range []float64{0, 1e-300, 1e-10, 0.25, 1, 2, 3, 100, 1e10, 1e300} {
		got, want := Sqrt(x), math.Sqrt(x)
		if relErr(got, want) > 1e-14 {
			t.Errorf("Sqrt(%g) = %g, want %g", x, got, want)
		}
	}
	if !math.IsNaN(Sqrt(-1)) {
		t.Error("Sqrt(-1) should be NaN")
	}
}

func TestSqrtProperty(t *testing.T) {
	f := func(x float64) bool {
		x = math.Abs(x)
		if math.IsInf(x, 0) || math.IsNaN(x) {
			return true
		}
		s := Sqrt(x)
		return relErr(s*s, x) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPow(t *testing.T) {
	cases := [][3]float64{
		{2, 10, 1024},
		{10, -3, 0.001},
		{E, 1, E},
		{7, 0, 1},
		{0, 3, 0},
		{1.5, 2.5, math.Pow(1.5, 2.5)},
		{-2, 3, -8},
		{-2, 4, 16},
	}
	for _, c := range cases {
		if got := Pow(c[0], c[1]); relErr(got, c[2]) > 1e-12 {
			t.Errorf("Pow(%g, %g) = %g, want %g", c[0], c[1], got, c[2])
		}
	}
	if !math.IsNaN(Pow(-2, 0.5)) {
		t.Error("Pow(-2, 0.5) should be NaN")
	}
	if !math.IsInf(Pow(0, -1), 1) {
		t.Error("Pow(0, -1) should be +Inf")
	}
}

func TestSigmoid(t *testing.T) {
	for x := -40.0; x <= 40; x += 0.61 {
		got := Sigmoid(x)
		want := 1 / (1 + math.Exp(-x))
		if relErr(got, want) > 1e-12 && math.Abs(got-want) > 1e-15 {
			t.Errorf("Sigmoid(%g) = %g, want %g", x, got, want)
		}
	}
	if Sigmoid(0) != 0.5 {
		t.Errorf("Sigmoid(0) = %g, want 0.5", Sigmoid(0))
	}
	// Extreme tails must saturate without NaN.
	if Sigmoid(1000) != 1 {
		t.Errorf("Sigmoid(1000) = %g, want 1", Sigmoid(1000))
	}
	if Sigmoid(-1000) != 0 {
		t.Errorf("Sigmoid(-1000) = %g, want 0", Sigmoid(-1000))
	}
}

func TestSigmoidSymmetry(t *testing.T) {
	f := func(x float64) bool {
		x = math.Mod(x, 100)
		if math.IsNaN(x) {
			return true
		}
		return math.Abs(Sigmoid(x)+Sigmoid(-x)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTanh(t *testing.T) {
	for x := -15.0; x <= 15; x += 0.37 {
		got, want := Tanh(x), math.Tanh(x)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("Tanh(%g) = %g, want %g", x, got, want)
		}
	}
	if Tanh(100) != 1 || Tanh(-100) != -1 {
		t.Error("Tanh must saturate at ±1")
	}
}

func TestErf(t *testing.T) {
	for x := -4.0; x <= 4; x += 0.13 {
		got, want := Erf(x), math.Erf(x)
		if math.Abs(got-want) > 2e-7 {
			t.Errorf("Erf(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestSoftmax(t *testing.T) {
	in := []float64{1, 2, 3}
	out := Softmax(make([]float64, 3), in)
	sum := 0.0
	for _, v := range out {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("softmax sum = %g, want 1", sum)
	}
	if !(out[2] > out[1] && out[1] > out[0]) {
		t.Errorf("softmax must preserve order: %v", out)
	}
}

func TestSoftmaxStability(t *testing.T) {
	// Large magnitudes must not overflow.
	in := []float64{1000, 1001, 1002}
	out := Softmax(make([]float64, 3), in)
	for _, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax overflowed: %v", out)
		}
	}
	// Shift invariance: softmax(x) == softmax(x + c).
	a := Softmax(make([]float64, 3), []float64{1, 2, 3})
	b := Softmax(make([]float64, 3), []float64{101, 102, 103})
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Errorf("softmax not shift invariant: %v vs %v", a, b)
		}
	}
}

func TestSoftmaxInPlace(t *testing.T) {
	in := []float64{0.5, -0.5, 2}
	want := Softmax(make([]float64, 3), in)
	got := Softmax(in, in) // aliasing allowed
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-15 {
			t.Errorf("in-place softmax mismatch at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestSoftmaxEmpty(t *testing.T) {
	if out := Softmax(nil, nil); len(out) != 0 {
		t.Error("empty softmax must return empty")
	}
}

func TestLogSumExp(t *testing.T) {
	xs := []float64{1, 2, 3}
	want := math.Log(math.Exp(1) + math.Exp(2) + math.Exp(3))
	if got := LogSumExp(xs); relErr(got, want) > 1e-12 {
		t.Errorf("LogSumExp = %g, want %g", got, want)
	}
	// Stability with big values.
	if got := LogSumExp([]float64{1000, 1000}); relErr(got, 1000+math.Ln2) > 1e-12 {
		t.Errorf("LogSumExp(1000,1000) = %g, want %g", got, 1000+math.Ln2)
	}
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Error("LogSumExp(nil) should be -Inf")
	}
}

func TestFloorCeilRound(t *testing.T) {
	cases := []struct{ x, floor, ceil, round float64 }{
		{1.5, 1, 2, 2},
		{-1.5, -2, -1, -2},
		{2.0, 2, 2, 2},
		{-0.4, -1, 0, 0},
		{0.49, 0, 1, 0},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Floor(c.x); got != c.floor {
			t.Errorf("Floor(%g) = %g, want %g", c.x, got, c.floor)
		}
		if got := Ceil(c.x); got != c.ceil {
			t.Errorf("Ceil(%g) = %g, want %g", c.x, got, c.ceil)
		}
		if got := Round(c.x); got != c.round {
			t.Errorf("Round(%g) = %g, want %g", c.x, got, c.round)
		}
	}
}

func TestFloorMatchesStdlib(t *testing.T) {
	f := func(x float64) bool {
		x = math.Mod(x, 1e15) // int64-representable range
		if math.IsNaN(x) {
			return true
		}
		return Floor(x) == math.Floor(x) && Ceil(x) == math.Ceil(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAbsClamp(t *testing.T) {
	if Abs(-3.5) != 3.5 || Abs(3.5) != 3.5 || Abs(0) != 0 {
		t.Error("Abs broken")
	}
	if math.Signbit(Abs(math.Copysign(0, -1))) {
		t.Error("Abs(-0) should drop the sign bit")
	}
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp broken")
	}
}

func TestIsFinite(t *testing.T) {
	if !IsFinite(1) || IsFinite(math.NaN()) || IsFinite(math.Inf(1)) || IsFinite(math.Inf(-1)) {
		t.Error("IsFinite broken")
	}
}

func TestFrexpLdexpRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		frac, exp := frexp(x)
		if x != 0 && (math.Abs(frac) < 0.5 || math.Abs(frac) >= 1) {
			return false
		}
		return ldexp(frac, exp) == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestLdexpOverflowUnderflow(t *testing.T) {
	if !math.IsInf(ldexp(0.75, 2000), 1) {
		t.Error("ldexp overflow should be +Inf")
	}
	if got := ldexp(0.75, -2000); got != 0 {
		t.Errorf("ldexp underflow = %g, want 0", got)
	}
	// Subnormal result path.
	got := ldexp(0.5, -1073)
	want := math.Ldexp(0.5, -1073)
	if got != want {
		t.Errorf("ldexp subnormal = %g, want %g", got, want)
	}
}

func BenchmarkExp(b *testing.B) {
	x := 0.0
	for i := 0; i < b.N; i++ {
		x = Exp(float64(i%100) * 0.01)
	}
	_ = x
}

func BenchmarkLog(b *testing.B) {
	x := 0.0
	for i := 0; i < b.N; i++ {
		x = Log(float64(i%100)*0.01 + 1)
	}
	_ = x
}

func BenchmarkSigmoid(b *testing.B) {
	x := 0.0
	for i := 0; i < b.N; i++ {
		x = Sigmoid(float64(i%200)*0.1 - 10)
	}
	_ = x
}
