// Package kmath provides from-scratch implementations of the transcendental
// and utility math functions KML needs.
//
// The original KML runs inside the Linux kernel, where libc (and therefore
// libm) is unavailable, so the authors reimplemented logarithm, softmax,
// logistic and friends "from scratch using approximation algorithms" (§2).
// This package mirrors that constraint: it uses no transcendental function
// from the standard math package — only bit-level helpers (Float64bits,
// Float64frombits, IsNaN, IsInf, Inf, NaN), which correspond to operations
// any kernel can perform. Accuracy bounds are enforced against the stdlib in
// the package tests.
package kmath

import "math"

// Useful constants, spelled out because we do not call math.Log/math.Exp.
const (
	E      = 2.71828182845904523536028747135266249775724709369995957496697
	Ln2    = 0.693147180559945309417232121458176568075500134360255254120680
	Log2E  = 1.442695040888963407359924681001892137426645954152985934135449
	Sqrt2  = 1.41421356237309504880168872420969807856967187537694807317668
	Pi     = 3.14159265358979323846264338327950288419716939937510582097494
	MaxExp = 709.782712893384  // largest x with Exp(x) finite
	MinExp = -745.133219101941 // smallest x with Exp(x) > 0
)

// Abs returns the absolute value of x. Unlike a naive branch it preserves
// the sign-bit semantics for -0 and NaN.
func Abs(x float64) float64 {
	return math.Float64frombits(math.Float64bits(x) &^ (1 << 63))
}

// Clamp limits x to the inclusive range [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// IsFinite reports whether x is neither NaN nor infinite.
func IsFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// frexp decomposes f into a normalized fraction in [0.5, 1) and a power of
// two, f = frac * 2**exp. It mirrors libm's frexp using only bit operations.
//
//kml:hotpath
func frexp(f float64) (frac float64, exp int) {
	if f == 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		return f, 0
	}
	const (
		mantBits = 52
		expMask  = 0x7FF
		expBias  = 1022 // bias such that fraction lands in [0.5, 1)
	)
	bits := math.Float64bits(f)
	e := int(bits>>mantBits) & expMask
	if e == 0 {
		// Subnormal: scale up by 2^64 first so the exponent field is usable.
		f *= 1 << 64
		bits = math.Float64bits(f)
		e = int(bits>>mantBits)&expMask - 64
	}
	exp = e - expBias
	bits = bits&^(uint64(expMask)<<mantBits) | uint64(expBias)<<mantBits
	return math.Float64frombits(bits), exp
}

// ldexp returns frac * 2**exp using only bit operations. After frexp
// renormalization the fraction lies in [0.5, 1), so the scale can be applied
// as at most two representable powers of two.
//
//kml:hotpath
func ldexp(frac float64, exp int) float64 {
	if frac == 0 || math.IsNaN(frac) || math.IsInf(frac, 0) {
		return frac
	}
	frac, e := frexp(frac)
	exp += e
	switch {
	case exp < -1074:
		return copySign(0, frac)
	case exp > 1024:
		return copySign(math.Inf(1), frac)
	case exp == 1024:
		// frac*2 is in [1, 2), and 2^1023 is representable.
		return (frac * 2) * pow2(1023)
	case exp < -1022:
		// Split so the first product stays normal and only the final
		// multiply rounds into the subnormal range: exp+1022 ∈ [-52, -1].
		return (frac * pow2(exp+1022)) * pow2(-1022)
	}
	return frac * pow2(exp)
}

// pow2 returns 2**exp for exp in [-1022, 1023] via direct bit construction.
//
//kml:hotpath
func pow2(exp int) float64 {
	return math.Float64frombits(uint64(exp+1023) << 52)
}

//
//kml:hotpath
func copySign(x, sign float64) float64 {
	const signBit = 1 << 63
	return math.Float64frombits(math.Float64bits(x)&^signBit | math.Float64bits(sign)&signBit)
}

// Exp returns e**x using range reduction (x = k·ln2 + r, |r| ≤ ln2/2)
// followed by a degree-7 minimax-style Taylor polynomial for e**r and a
// final scale by 2**k. Relative error is below 1e-14 across the domain.
//
//kml:hotpath
func Exp(x float64) float64 {
	switch {
	case math.IsNaN(x):
		return x
	case x > MaxExp:
		return math.Inf(1)
	case x < MinExp:
		return 0
	case x == 0:
		return 1
	}
	// k = round(x / ln2)
	k := int(x*Log2E + copySign(0.5, x))
	// r = x - k*ln2, computed in two parts for accuracy (Cody-Waite).
	const (
		ln2Hi = 6.93147180369123816490e-01
		ln2Lo = 1.90821492927058770002e-10
	)
	hi := x - float64(k)*ln2Hi
	lo := float64(k) * ln2Lo
	r := hi - lo
	// e**r via Taylor series; |r| <= ~0.347 so 11 terms give < 1e-16.
	term := 1.0
	sum := 1.0
	for i := 1; i <= 12; i++ {
		term *= r / float64(i)
		sum += term
	}
	return ldexpFast(sum, k)
}

// ldexpFast is ldexp for the common case where the result stays normal;
// it falls back to the general path otherwise.
//
//kml:hotpath
func ldexpFast(frac float64, exp int) float64 {
	if exp >= -1022 && exp <= 1023 && frac >= 0.5 && frac <= 2 {
		return frac * pow2(exp)
	}
	return ldexp(frac, exp)
}

// Log returns the natural logarithm of x. It decomposes x = m·2**e with
// m in [sqrt(2)/2, sqrt(2)) and evaluates ln(m) with the atanh series
// ln(m) = 2·atanh((m−1)/(m+1)), which converges rapidly on that interval.
//
//kml:hotpath
func Log(x float64) float64 {
	switch {
	case math.IsNaN(x) || math.IsInf(x, 1):
		return x
	case x < 0:
		return math.NaN()
	case x == 0:
		return math.Inf(-1)
	}
	m, e := frexp(x)
	// Shift m into [sqrt(2)/2, sqrt(2)) to center the series around 1.
	if m < Sqrt2/2 {
		m *= 2
		e--
	}
	t := (m - 1) / (m + 1)
	t2 := t * t
	// 2*atanh(t) = 2t * (1 + t²/3 + t⁴/5 + ...)
	sum := 0.0
	pow := 1.0
	for i := 0; i < 12; i++ {
		sum += pow / float64(2*i+1)
		pow *= t2
	}
	return 2*t*sum + float64(e)*Ln2
}

// Log2 returns the base-2 logarithm of x.
func Log2(x float64) float64 { return Log(x) * Log2E }

// Log1p returns ln(1+x), accurate for small |x| where Log(1+x) would lose
// precision.
func Log1p(x float64) float64 {
	if math.IsNaN(x) || x <= -1 {
		if x == -1 {
			return math.Inf(-1)
		}
		if x < -1 {
			return math.NaN()
		}
		return x
	}
	if Abs(x) >= 0.25 {
		return Log(1 + x)
	}
	// atanh series on t = x/(2+x): ln(1+x) = 2 atanh(x/(2+x)).
	t := x / (2 + x)
	t2 := t * t
	sum := 0.0
	pow := 1.0
	for i := 0; i < 10; i++ {
		sum += pow / float64(2*i+1)
		pow *= t2
	}
	return 2 * t * sum
}

// Sqrt returns the square root of x via Newton–Raphson iteration seeded with
// a bit-level initial estimate.
func Sqrt(x float64) float64 {
	switch {
	case x == 0 || math.IsNaN(x) || math.IsInf(x, 1):
		return x
	case x < 0:
		return math.NaN()
	}
	// Initial estimate: halve the exponent.
	bits := math.Float64bits(x)
	bits = (bits >> 1) + (uint64(1023) << 51)
	y := math.Float64frombits(bits)
	// Newton iterations; 4 suffice for full double precision from this seed.
	for i := 0; i < 5; i++ {
		y = 0.5 * (y + x/y)
	}
	return y
}

// Pow returns x**y for x > 0 (the only case KML needs), computed as
// exp(y·ln x). For x == 0 it returns 0 for y > 0 and +Inf for y < 0.
func Pow(x, y float64) float64 {
	switch {
	case y == 0:
		return 1
	case x == 0:
		if y > 0 {
			return 0
		}
		return math.Inf(1)
	case x < 0:
		// Integer exponents of negative bases, by repeated squaring.
		if y == float64(int64(y)) {
			r := Pow(-x, y)
			if int64(y)&1 == 1 {
				return -r
			}
			return r
		}
		return math.NaN()
	}
	return Exp(y * Log(x))
}

// Sigmoid returns the logistic function 1/(1+e**−x). It is evaluated in a
// numerically stable form on both tails.
//
//kml:hotpath
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := Exp(-x)
		return 1 / (1 + z)
	}
	z := Exp(x)
	return z / (1 + z)
}

// SigmoidPrime returns the derivative of the logistic function expressed in
// terms of its output s: s·(1−s).
func SigmoidPrime(s float64) float64 { return s * (1 - s) }

// Tanh returns the hyperbolic tangent of x, expressed through the stable
// sigmoid: tanh(x) = 2σ(2x) − 1.
//
//kml:hotpath
func Tanh(x float64) float64 {
	if x > 20 {
		return 1
	}
	if x < -20 {
		return -1
	}
	return 2*Sigmoid(2*x) - 1
}

// Erf returns the error function of x using the Abramowitz–Stegun 7.1.26
// rational approximation (|error| ≤ 1.5e-7), sufficient for the statistical
// normalization KML performs.
func Erf(x float64) float64 {
	sign := 1.0
	if x < 0 {
		sign = -1
		x = -x
	}
	const (
		a1 = 0.254829592
		a2 = -0.284496736
		a3 = 1.421413741
		a4 = -1.453152027
		a5 = 1.061405429
		p  = 0.3275911
	)
	t := 1 / (1 + p*x)
	y := 1 - (((((a5*t+a4)*t)+a3)*t+a2)*t+a1)*t*Exp(-x*x)
	return sign * y
}

// Softmax writes the softmax of src into dst (which may alias src) using the
// max-subtraction trick for numerical stability, and returns dst.
//
//kml:hotpath
func Softmax(dst, src []float64) []float64 {
	if len(dst) != len(src) {
		panic("kmath: Softmax length mismatch")
	}
	if len(src) == 0 {
		return dst
	}
	maxV := src[0]
	for _, v := range src[1:] {
		if v > maxV {
			maxV = v
		}
	}
	sum := 0.0
	for i, v := range src {
		e := Exp(v - maxV)
		dst[i] = e
		sum += e
	}
	if sum == 0 {
		uniform := 1 / float64(len(dst))
		for i := range dst {
			dst[i] = uniform
		}
		return dst
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
	return dst
}

// LogSumExp returns ln(Σ e**x_i) computed stably.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	maxV := xs[0]
	for _, v := range xs[1:] {
		if v > maxV {
			maxV = v
		}
	}
	if math.IsInf(maxV, -1) {
		return maxV
	}
	sum := 0.0
	for _, v := range xs {
		sum += Exp(v - maxV)
	}
	return maxV + Log(sum)
}

// Floor returns the largest integer value less than or equal to x.
func Floor(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 {
		return x
	}
	t := float64(int64(x))
	if x < 0 && t != x {
		t--
	}
	return t
}

// Ceil returns the smallest integer value greater than or equal to x.
func Ceil(x float64) float64 { return -Floor(-x) }

// Round returns x rounded half away from zero.
func Round(x float64) float64 {
	if x >= 0 {
		return Floor(x + 0.5)
	}
	return Ceil(x - 0.5)
}
