package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// These tests exercise the pipeline's lifecycle contract under
// concurrency — they exist to run in CI's -race job. The serving layer
// (internal/mserve) shuts a shared pipeline down from a signal handler
// while connection goroutines are still in Collect and operators flip
// modes at will, so the exact guarantees pinned here are load-bearing:
// Stop is safe to race with itself, with Collect, and with SetMode, and
// every sample accepted before producers quiesced is processed.

// TestPipelineConcurrentCollectModeFlipStop runs producers and a mode
// flipper against a live pipeline, quiesces the producers, and asserts
// the final drain in Stop processes every accepted sample regardless of
// the mode churn in between.
func TestPipelineConcurrentCollectModeFlipStop(t *testing.T) {
	var handled atomic.Uint64
	p, err := NewPipeline[int](Config{BufferCapacity: 1 << 14}, func(batch []int, mode Mode) {
		handled.Add(uint64(len(batch)))
	})
	if err != nil {
		t.Fatalf("new pipeline: %v", err)
	}
	if err := p.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	p.SetMode(ModeTraining)

	const (
		producers   = 4
		perProducer = 5000
	)
	var accepted atomic.Uint64
	var wg sync.WaitGroup
	stopFlip := make(chan struct{})
	wg.Add(1)
	go func() { // mode flipper: training <-> inference, never off
		defer wg.Done()
		m := ModeInference
		for {
			select {
			case <-stopFlip:
				return
			default:
			}
			p.SetMode(m)
			if m == ModeInference {
				m = ModeTraining
			} else {
				m = ModeInference
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	var prod sync.WaitGroup
	for i := 0; i < producers; i++ {
		prod.Add(1)
		go func(seed int) {
			defer prod.Done()
			for j := 0; j < perProducer; j++ {
				if p.Collect(seed*perProducer + j) {
					accepted.Add(1)
				}
			}
		}(i)
	}
	prod.Wait() // producers quiesce before Stop, per the Stop contract
	close(stopFlip)
	wg.Wait()
	p.Stop()

	if got, want := p.Collected(), accepted.Load(); got != want {
		t.Fatalf("Collected = %d, accepted = %d", got, want)
	}
	if got := p.Processed(); got != accepted.Load() {
		t.Fatalf("Stop lost samples: processed %d of %d accepted", got, accepted.Load())
	}
	// The flipper never selected ModeOff, so the handler saw every sample.
	if got := handled.Load(); got != accepted.Load() {
		t.Fatalf("handler saw %d of %d samples", got, accepted.Load())
	}
	if p.Dropped()+accepted.Load() != uint64(producers*perProducer) {
		t.Fatalf("accounting: accepted=%d dropped=%d", accepted.Load(), p.Dropped())
	}
}

// TestPipelineConcurrentStop races many Stop calls (the double-close
// hazard) and asserts every caller blocks until the final drain is done.
func TestPipelineConcurrentStop(t *testing.T) {
	var handled atomic.Uint64
	p, err := NewPipeline[int](Config{}, func(batch []int, mode Mode) {
		handled.Add(uint64(len(batch)))
	})
	if err != nil {
		t.Fatalf("new pipeline: %v", err)
	}
	if err := p.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	p.SetMode(ModeTraining)
	for i := 0; i < 100; i++ {
		p.Collect(i)
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Stop()
			// Stop returned, so the final drain has completed for THIS
			// caller too, not just the one that won the close race.
			if got := p.Processed(); got != 100 {
				t.Errorf("Stop returned with %d/100 processed", got)
			}
		}()
	}
	wg.Wait()
	if handled.Load() != 100 {
		t.Fatalf("handler saw %d/100", handled.Load())
	}
	// Stop after Stop, and Flush after Stop, stay safe: the consumer
	// goroutine is gone, so the single-consumer contract holds again.
	p.Stop()
	p.Flush()
	p.Flush()
}

// TestPipelineStopBeforeStart is a no-op, not a hang or a panic.
func TestPipelineStopBeforeStart(t *testing.T) {
	p, err := NewPipeline[int](Config{}, func([]int, Mode) {})
	if err != nil {
		t.Fatalf("new pipeline: %v", err)
	}
	done := make(chan struct{})
	go func() { p.Stop(); p.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop on unstarted pipeline hung")
	}
}

// TestPipelineCollectDuringStop races in-flight producers with Stop.
// Samples that lose the race may land in the ring after the final drain;
// the invariant is weaker but still exact: nothing is lost, anything
// unprocessed is still sitting in the buffer, and the books balance.
func TestPipelineCollectDuringStop(t *testing.T) {
	p, err := NewPipeline[int](Config{BufferCapacity: 1 << 14}, func([]int, Mode) {})
	if err != nil {
		t.Fatalf("new pipeline: %v", err)
	}
	if err := p.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	p.SetMode(ModeTraining)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 2000; j++ {
				p.Collect(j)
			}
		}()
	}
	p.Stop() // concurrent with the producers, deliberately
	wg.Wait()

	if got, want := p.Collected()-p.Processed(), uint64(p.BufferLen()); got != want {
		t.Fatalf("unprocessed %d != buffered %d", got, want)
	}
}
