// Package core is the KML framework proper: it ties together the ML library
// (nn, dtree), the lock-free circular buffer, and the asynchronous training
// thread, and exposes the programming model of the paper's Table 1 API —
// create a model, collect data on the hot path, process/normalize/train
// asynchronously, switch between training and inference modes, and
// save/load models for deployment.
//
// The contract mirrors §3.2 of the paper: data collection happens inline on
// latency-sensitive paths and must cost nanoseconds (a ring-buffer push);
// normalization and training run on one dedicated asynchronous goroutine —
// the "training thread" — because the prototype "supports only chain
// computation graphs that have to be processed serially".
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/memutil"
	"repro/internal/ringbuf"
	"repro/internal/telemetry"
)

// Mode selects what the pipeline does with collected data. Users "can
// switch between training and inference modes as needed to adapt
// automatically to ever-changing conditions" (§3.3).
type Mode int32

// Pipeline modes.
const (
	// ModeOff discards collected samples.
	ModeOff Mode = iota
	// ModeTraining routes samples to the handler for training.
	ModeTraining
	// ModeInference routes samples to the handler for feature extraction
	// and prediction.
	ModeInference
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeTraining:
		return "training"
	case ModeInference:
		return "inference"
	default:
		return fmt.Sprintf("mode(%d)", int32(m))
	}
}

// Classifier is a deployable KML model: anything that maps a feature vector
// to a class. Both model families the paper supports satisfy it (a neural
// network via a small adapter owning its PredictBuffer, and a decision
// tree directly).
type Classifier interface {
	// Predict returns the class index for one feature vector.
	Predict(features []float64) int
	// Name identifies the model family, e.g. "readahead-nn".
	Name() string
}

// BatchClassifier is implemented by classifiers with a fused batched
// inference path: PredictBatch classifies rows samples (row-major
// rows×features) in one pass, writing class indices to classes[:rows].
// Implementations must produce exactly the same class per sample as rows
// individual Predict calls.
type BatchClassifier interface {
	Classifier
	PredictBatch(features []float64, rows int, classes []int)
}

// Cloneable is implemented by classifiers whose Predict mutates internal
// scratch (network forward buffers) and that can produce an independent
// copy safe for use on another goroutine. The parallel experiment harness
// clones a model per worker; stateless classifiers (decision trees) may
// return a cheap wrapper sharing the immutable model.
type Cloneable interface {
	CloneClassifier() Classifier
}

// Config parameterizes a Pipeline.
type Config struct {
	// BufferCapacity sizes the lock-free ring (§3.1: "The circular buffer's
	// size is configurable to cap memory usage"). Rounded to a power of two;
	// 0 means 4096 entries.
	BufferCapacity int
	// BatchSize is the maximum number of samples handed to the handler per
	// wakeup; 0 means 256.
	BatchSize int
	// Poll is the handler thread's poll interval when idle; 0 means 1ms.
	Poll time.Duration
	// Arena, when set, is charged for the ring buffer so the framework's
	// footprint is observable (§3.1 memory accounting). Charging failure
	// (reservation exceeded) fails pipeline construction like a failed
	// kmalloc would.
	Arena *memutil.Arena
	// SampleBytes is the accounted size of one sample for Arena charging;
	// 0 means 16 (the readahead record size).
	SampleBytes int64
	// Metrics, when set, instruments the training thread: every handler
	// invocation observes its latency and batch size (the paper's 51 µs
	// train-iteration figure, measured live). The hot Collect path is
	// untouched — its counters already exist and cost one atomic add.
	Metrics *PipelineMetrics
}

// PipelineMetrics is the training-thread instrumentation of a Pipeline.
// All fields must be non-nil; build one with NewPipelineMetrics.
type PipelineMetrics struct {
	// IterNanos is the latency histogram of one handler invocation —
	// one training (or inference) iteration over a drained batch.
	IterNanos *telemetry.Histogram
	// DrainBatch is the distribution of batch sizes handed to the
	// handler, the backpressure signal between collection and training.
	DrainBatch *telemetry.Histogram
	// Iterations counts handler invocations.
	Iterations *telemetry.Counter
}

// NewPipelineMetrics registers a pipeline's training-thread metrics
// under prefix: <prefix>_iter_ns, <prefix>_drain_batch,
// <prefix>_iterations.
func NewPipelineMetrics(reg *telemetry.Registry, prefix string) *PipelineMetrics {
	return &PipelineMetrics{
		IterNanos:  reg.Histogram(prefix + "_iter_ns"),
		DrainBatch: reg.Histogram(prefix + "_drain_batch"),
		Iterations: reg.Counter(prefix + "_iterations"),
	}
}

func (c Config) withDefaults() Config {
	if c.BufferCapacity == 0 {
		c.BufferCapacity = 4096
	}
	if c.BatchSize == 0 {
		c.BatchSize = 256
	}
	if c.Poll == 0 {
		c.Poll = time.Millisecond
	}
	if c.SampleBytes == 0 {
		c.SampleBytes = 16
	}
	return c
}

// Handler consumes a drained batch of samples under the given mode.
// It runs on the pipeline's training goroutine, so it may freely use
// floating point and allocate — exactly the work §3.2 offloads off the
// I/O path.
type Handler[S any] func(batch []S, mode Mode)

// ErrReservation reports that the configured memory arena rejected the
// pipeline's buffer charge.
var ErrReservation = errors.New("core: memory reservation exceeded")

// Pipeline is the KML data path: lock-free collection feeding one
// asynchronous processing goroutine.
type Pipeline[S any] struct {
	cfg  Config
	ring *ringbuf.Ring[S]
	mode atomic.Int32

	handler Handler[S]
	wake    chan struct{}
	stop    chan struct{}
	done    chan struct{}
	started atomic.Bool

	collected atomic.Uint64
	processed atomic.Uint64

	stopOnce   sync.Once
	chargeOnce sync.Once
	charged    int64
}

// NewPipeline builds a pipeline around handler. The pipeline starts in
// ModeOff; call Start and SetMode to begin processing.
func NewPipeline[S any](cfg Config, handler Handler[S]) (*Pipeline[S], error) {
	if handler == nil {
		return nil, errors.New("core: nil handler")
	}
	cfg = cfg.withDefaults()
	ring := ringbuf.New[S](cfg.BufferCapacity)
	p := &Pipeline[S]{
		cfg:     cfg,
		ring:    ring,
		handler: handler,
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if cfg.Arena != nil {
		p.charged = int64(ring.Cap()) * cfg.SampleBytes
		if !cfg.Arena.Charge(p.charged) {
			return nil, fmt.Errorf("%w: %d bytes for ring buffer", ErrReservation, p.charged)
		}
	}
	return p, nil
}

// Collect pushes one sample from the hot path. It never blocks and never
// allocates; a full ring drops the sample (counted in Dropped). Samples
// collected in ModeOff are still buffered so a mode switch does not lose
// the window in flight; the handler sees the mode at drain time.
//
//kml:hotpath
func (p *Pipeline[S]) Collect(s S) bool {
	wasEmpty := p.ring.Len() == 0
	ok := p.ring.TryPush(s)
	if ok {
		p.collected.Add(1)
		// Wake the training thread only on the empty→non-empty transition;
		// while it is draining, further wakes are redundant and the
		// channel operation would dominate the per-event cost.
		if wasEmpty {
			select {
			case p.wake <- struct{}{}:
			default:
			}
		}
	}
	return ok
}

// Start launches the asynchronous training thread. It is an error to start
// a pipeline twice.
func (p *Pipeline[S]) Start() error {
	if !p.started.CompareAndSwap(false, true) {
		return errors.New("core: pipeline already started")
	}
	go p.run()
	return nil
}

func (p *Pipeline[S]) run() {
	defer close(p.done)
	batch := make([]S, p.cfg.BatchSize)
	ticker := time.NewTicker(p.cfg.Poll)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			p.drain(batch) // final drain so Stop is lossless
			return
		case <-p.wake:
			p.drain(batch)
		case <-ticker.C:
			p.drain(batch)
		}
	}
}

func (p *Pipeline[S]) drain(batch []S) {
	for {
		n := p.ring.PopBatch(batch)
		if n == 0 {
			return
		}
		mode := p.Mode()
		if mode != ModeOff {
			if m := p.cfg.Metrics; m != nil {
				start := time.Now()
				p.handler(batch[:n], mode)
				m.IterNanos.Observe(time.Since(start).Nanoseconds())
				m.DrainBatch.Observe(int64(n))
				m.Iterations.Inc()
			} else {
				p.handler(batch[:n], mode)
			}
		}
		p.processed.Add(uint64(n))
	}
}

// Stop terminates the training thread after a final drain, releases the
// arena charge, and waits for completion. A pipeline cannot be restarted.
// Stop is idempotent and safe to call from multiple goroutines: every
// caller returns only after the final drain has completed, so samples
// accepted by Collect before the producers quiesced are all processed.
func (p *Pipeline[S]) Stop() {
	if !p.started.Load() {
		return
	}
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
	if p.cfg.Arena != nil {
		p.chargeOnce.Do(func() { p.cfg.Arena.Release(p.charged) })
	}
}

// Flush synchronously drains the ring on the caller's goroutine. It is
// intended for deterministic simulation (virtual time) and tests, where the
// asynchronous thread's scheduling would introduce nondeterminism. Do not
// call it concurrently with a started pipeline: it violates the
// single-consumer contract of the ring.
func (p *Pipeline[S]) Flush() {
	batch := make([]S, p.cfg.BatchSize)
	p.drain(batch)
}

// SetMode switches the pipeline between off, training and inference.
func (p *Pipeline[S]) SetMode(m Mode) { p.mode.Store(int32(m)) }

// Mode returns the current mode.
func (p *Pipeline[S]) Mode() Mode { return Mode(p.mode.Load()) }

// Collected returns the number of samples accepted by Collect.
func (p *Pipeline[S]) Collected() uint64 { return p.collected.Load() }

// Processed returns the number of samples handed to the handler (or
// discarded in ModeOff).
func (p *Pipeline[S]) Processed() uint64 { return p.processed.Load() }

// Dropped returns the number of samples lost to a full ring.
func (p *Pipeline[S]) Dropped() uint64 { return p.ring.Dropped() }

// BufferLen returns the instantaneous ring occupancy.
func (p *Pipeline[S]) BufferLen() int { return p.ring.Len() }

// BufferCap returns the ring capacity (BufferCapacity rounded up to a
// power of two), the denominator operators need to read BufferLen as
// backpressure.
func (p *Pipeline[S]) BufferCap() int { return p.ring.Cap() }

// RegisterMetrics exposes the pipeline's counters and ring state as
// snapshot-time gauges under prefix: <prefix>_collected, _processed,
// _dropped (ring backpressure), _buffer_len (occupancy) and
// _buffer_cap. The callbacks read the same atomics the hot path already
// maintains, so exposure adds zero cost per event.
func (p *Pipeline[S]) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	reg.Func(prefix+"_collected", func() int64 { return int64(p.collected.Load()) })
	reg.Func(prefix+"_processed", func() int64 { return int64(p.processed.Load()) })
	reg.Func(prefix+"_dropped", func() int64 { return int64(p.ring.Dropped()) })
	reg.Func(prefix+"_buffer_len", func() int64 { return int64(p.ring.Len()) })
	reg.Func(prefix+"_buffer_cap", func() int64 { return int64(p.ring.Cap()) })
}

// Registry names deployed models, mirroring the kernel module registry a
// KML application registers its models with.
type Registry struct {
	mu     sync.RWMutex
	models map[string]Classifier
}

// NewRegistry returns an empty model registry.
func NewRegistry() *Registry {
	return &Registry{models: make(map[string]Classifier)}
}

// Register adds a model under its name; re-registering a name replaces the
// model (the paper's retrain-and-redeploy flow).
func (r *Registry) Register(c Classifier) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.models[c.Name()] = c
}

// Get returns the model registered under name.
func (r *Registry) Get(name string) (Classifier, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.models[name]
	return c, ok
}

// Names returns the registered model names (unordered).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.models))
	for n := range r.models {
		names = append(names, n)
	}
	return names
}
