package core

import (
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/memutil"
	"repro/internal/telemetry"
)

type sample struct {
	inode  uint64
	offset int64
}

func TestPipelineCollectAndFlush(t *testing.T) {
	var got []sample
	p, err := NewPipeline[sample](Config{}, func(batch []sample, mode Mode) {
		got = append(got, batch...)
	})
	if err != nil {
		t.Fatal(err)
	}
	p.SetMode(ModeTraining)
	for i := 0; i < 10; i++ {
		if !p.Collect(sample{inode: uint64(i)}) {
			t.Fatalf("collect %d failed", i)
		}
	}
	p.Flush()
	if len(got) != 10 {
		t.Fatalf("handler saw %d samples", len(got))
	}
	for i, s := range got {
		if s.inode != uint64(i) {
			t.Errorf("order broken at %d", i)
		}
	}
	if p.Collected() != 10 || p.Processed() != 10 || p.Dropped() != 0 {
		t.Errorf("counters: %d/%d/%d", p.Collected(), p.Processed(), p.Dropped())
	}
}

func TestPipelineModeOffDiscards(t *testing.T) {
	calls := 0
	p, err := NewPipeline[int](Config{}, func([]int, Mode) { calls++ })
	if err != nil {
		t.Fatal(err)
	}
	p.Collect(1)
	p.Flush() // still ModeOff
	if calls != 0 {
		t.Error("handler must not run in ModeOff")
	}
	if p.Processed() != 1 {
		t.Error("off-mode samples still count as processed (discarded)")
	}
}

func TestPipelineModeVisibleToHandler(t *testing.T) {
	var seen []Mode
	p, err := NewPipeline[int](Config{}, func(_ []int, m Mode) { seen = append(seen, m) })
	if err != nil {
		t.Fatal(err)
	}
	p.SetMode(ModeTraining)
	p.Collect(1)
	p.Flush()
	p.SetMode(ModeInference)
	p.Collect(2)
	p.Flush()
	if len(seen) != 2 || seen[0] != ModeTraining || seen[1] != ModeInference {
		t.Errorf("modes seen: %v", seen)
	}
}

func TestPipelineAsync(t *testing.T) {
	var mu sync.Mutex
	var got []int
	p, err := NewPipeline[int](Config{Poll: 100 * time.Microsecond}, func(batch []int, _ Mode) {
		mu.Lock()
		got = append(got, batch...)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	p.SetMode(ModeTraining)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for i := 0; i < n; i++ {
		for !p.Collect(i) {
			time.Sleep(time.Microsecond)
		}
	}
	deadline := time.After(2 * time.Second)
	for {
		mu.Lock()
		l := len(got)
		mu.Unlock()
		if l == n {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("timed out: handler saw %d of %d", l, n)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	p.Stop()
	mu.Lock()
	defer mu.Unlock()
	if !sort.IntsAreSorted(got) {
		t.Error("async pipeline reordered samples")
	}
}

func TestPipelineStopDrains(t *testing.T) {
	var mu sync.Mutex
	count := 0
	p, err := NewPipeline[int](Config{Poll: time.Hour}, func(batch []int, _ Mode) {
		mu.Lock()
		count += len(batch)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	p.SetMode(ModeTraining)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// Give the run loop a moment to consume the initial wake, then fill the
	// ring without wakes racing: Collect sends a wake; either way Stop's
	// final drain must account for everything.
	for i := 0; i < 100; i++ {
		p.Collect(i)
	}
	p.Stop()
	mu.Lock()
	defer mu.Unlock()
	if count != 100 {
		t.Errorf("Stop lost samples: handler saw %d", count)
	}
}

func TestPipelineDoubleStartErrors(t *testing.T) {
	p, err := NewPipeline[int](Config{}, func([]int, Mode) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if err := p.Start(); err == nil {
		t.Error("double Start must error")
	}
}

func TestPipelineStopIdempotent(t *testing.T) {
	p, err := NewPipeline[int](Config{}, func([]int, Mode) {})
	if err != nil {
		t.Fatal(err)
	}
	p.Stop() // never started: no-op
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.Stop()
	p.Stop() // second stop must not panic or deadlock
}

func TestPipelineDropsWhenFull(t *testing.T) {
	p, err := NewPipeline[int](Config{BufferCapacity: 4}, func([]int, Mode) {})
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	for i := 0; i < 10; i++ {
		if p.Collect(i) {
			ok++
		}
	}
	if ok != 4 {
		t.Errorf("accepted %d, want 4", ok)
	}
	if p.Dropped() != 6 {
		t.Errorf("dropped %d, want 6", p.Dropped())
	}
}

func TestPipelineArenaAccounting(t *testing.T) {
	arena := memutil.NewArena("pipeline")
	p, err := NewPipeline[int](Config{BufferCapacity: 1024, SampleBytes: 8, Arena: arena}, func([]int, Mode) {})
	if err != nil {
		t.Fatal(err)
	}
	if arena.Live() != 1024*8 {
		t.Errorf("arena live = %d", arena.Live())
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.Stop()
	if arena.Live() != 0 {
		t.Errorf("arena live after Stop = %d", arena.Live())
	}
}

func TestPipelineReservationRejected(t *testing.T) {
	arena := memutil.NewArena("small")
	arena.Reserve(64)
	_, err := NewPipeline[int](Config{BufferCapacity: 1024, SampleBytes: 8, Arena: arena}, func([]int, Mode) {})
	if !errors.Is(err, ErrReservation) {
		t.Errorf("want ErrReservation, got %v", err)
	}
}

func TestPipelineNilHandler(t *testing.T) {
	if _, err := NewPipeline[int](Config{}, nil); err == nil {
		t.Error("nil handler must error")
	}
}

func TestModeString(t *testing.T) {
	if ModeOff.String() != "off" || ModeTraining.String() != "training" ||
		ModeInference.String() != "inference" || Mode(9).String() != "mode(9)" {
		t.Error("Mode.String")
	}
}

type fakeModel string

func (f fakeModel) Predict([]float64) int { return 0 }
func (f fakeModel) Name() string          { return string(f) }

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Register(fakeModel("readahead-nn"))
	r.Register(fakeModel("readahead-dtree"))
	if _, ok := r.Get("readahead-nn"); !ok {
		t.Error("registered model missing")
	}
	if _, ok := r.Get("nope"); ok {
		t.Error("unregistered model found")
	}
	names := r.Names()
	sort.Strings(names)
	if len(names) != 2 || names[0] != "readahead-dtree" {
		t.Errorf("names = %v", names)
	}
	// Re-register replaces.
	r.Register(fakeModel("readahead-nn"))
	if len(r.Names()) != 2 {
		t.Error("re-register must replace, not add")
	}
}

func BenchmarkCollect(b *testing.B) {
	p, err := NewPipeline[sample](Config{BufferCapacity: 1 << 16}, func([]sample, Mode) {})
	if err != nil {
		b.Fatal(err)
	}
	p.SetMode(ModeTraining)
	if err := p.Start(); err != nil {
		b.Fatal(err)
	}
	defer p.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Collect(sample{inode: uint64(i), offset: int64(i)})
	}
}

// TestPipelineMetrics pins the training-thread instrumentation: every
// handler invocation lands one observation in the iteration-latency and
// batch-size histograms, and the registered gauges mirror the
// pipeline's own counters.
func TestPipelineMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	pm := NewPipelineMetrics(reg, "test_pipeline")
	p, err := NewPipeline[int](
		Config{BufferCapacity: 64, BatchSize: 8, Metrics: pm},
		func(batch []int, _ Mode) {},
	)
	if err != nil {
		t.Fatal(err)
	}
	p.RegisterMetrics(reg, "test_ring")
	p.SetMode(ModeTraining)
	const n = 40
	for i := 0; i < n; i++ {
		if !p.Collect(i) {
			t.Fatalf("Collect(%d) rejected", i)
		}
	}
	p.Flush()

	iters := pm.Iterations.Load()
	if iters == 0 {
		t.Fatal("no training iterations observed")
	}
	if got := pm.IterNanos.Count(); got != iters {
		t.Errorf("iter_ns count %d != iterations %d", got, iters)
	}
	batches := pm.DrainBatch.Snapshot()
	if batches.Count != iters || batches.Sum != n {
		t.Errorf("drain_batch count=%d sum=%d, want count=%d sum=%d",
			batches.Count, batches.Sum, iters, n)
	}

	byName := map[string]int64{}
	for _, s := range reg.Snapshot() {
		if s.Kind == telemetry.KindFunc {
			byName[s.Name] = s.Value
		}
	}
	if byName["test_ring_collected"] != n || byName["test_ring_processed"] != n {
		t.Errorf("gauges collected=%d processed=%d, want %d",
			byName["test_ring_collected"], byName["test_ring_processed"], n)
	}
	if byName["test_ring_dropped"] != 0 || byName["test_ring_buffer_len"] != 0 {
		t.Errorf("gauges dropped=%d buffer_len=%d, want 0",
			byName["test_ring_dropped"], byName["test_ring_buffer_len"])
	}
	if byName["test_ring_buffer_cap"] != 64 {
		t.Errorf("buffer_cap gauge = %d, want 64", byName["test_ring_buffer_cap"])
	}
}

// TestPipelineMetricsOffModeSkipsHandler: ModeOff batches are discarded
// without counting as training iterations.
func TestPipelineMetricsOffMode(t *testing.T) {
	reg := telemetry.NewRegistry()
	pm := NewPipelineMetrics(reg, "off_pipeline")
	p, err := NewPipeline[int](
		Config{BufferCapacity: 16, Metrics: pm},
		func(batch []int, _ Mode) { t.Error("handler ran in ModeOff") },
	)
	if err != nil {
		t.Fatal(err)
	}
	p.Collect(1)
	p.Flush()
	if pm.Iterations.Load() != 0 {
		t.Fatalf("iterations = %d in ModeOff, want 0", pm.Iterations.Load())
	}
	if p.Processed() != 1 {
		t.Fatalf("processed = %d, want 1 (discarded)", p.Processed())
	}
}
