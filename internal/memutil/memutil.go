// Package memutil is the portability/accounting layer standing in for KML's
// development API (§3.3): the paper wraps allocation, threading, logging,
// atomics and file operations behind ~27 functions so the identical model
// code compiles in user space (malloc) and kernel space (kmalloc).
//
// In Go there is one runtime, so the interesting part to preserve is the
// *accounting and reservation* semantics (§3.1 "KML thus supports memory
// reservation to ensure predictable performance"): every KML allocation is
// charged to an Arena so the framework can report its exact footprint
// (the paper reports 3,916 B for the readahead model + 676 B of inference
// scratch) and so a reservation cap can reject growth under memory pressure.
package memutil

import (
	"fmt"
	"sync"
)

// Arena tracks bytes charged to one KML component. The zero value is an
// unbounded arena; use Reserve to impose a cap.
type Arena struct {
	mu       sync.Mutex
	name     string
	live     int64
	peak     int64
	reserved int64 // 0 means unbounded
	allocs   int64
	fails    int64
}

// NewArena returns a named, unbounded arena.
func NewArena(name string) *Arena { return &Arena{name: name} }

// Reserve caps the arena at n bytes. Allocations that would exceed the cap
// fail. A cap of 0 removes the limit. Reserving below current usage is
// allowed: existing charges stay, further growth fails.
func (a *Arena) Reserve(n int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.reserved = n
}

// Charge records an allocation of n bytes and reports whether it fits under
// the reservation. The caller should treat false like a failed kmalloc.
func (a *Arena) Charge(n int64) bool {
	if n < 0 {
		panic("memutil: negative charge")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.reserved > 0 && a.live+n > a.reserved {
		a.fails++
		return false
	}
	a.live += n
	a.allocs++
	if a.live > a.peak {
		a.peak = a.live
	}
	return true
}

// Release returns n bytes to the arena.
func (a *Arena) Release(n int64) {
	if n < 0 {
		panic("memutil: negative release")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.live -= n
	if a.live < 0 {
		panic(fmt.Sprintf("memutil: arena %q released more than charged", a.name))
	}
}

// Live returns the currently charged bytes.
func (a *Arena) Live() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.live
}

// Peak returns the high-water mark of charged bytes.
func (a *Arena) Peak() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// Allocs returns the number of successful charges.
func (a *Arena) Allocs() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.allocs
}

// Fails returns the number of charges rejected by the reservation.
func (a *Arena) Fails() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.fails
}

// Name returns the arena's name.
func (a *Arena) Name() string { return a.name }

// String summarizes the arena.
func (a *Arena) String() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return fmt.Sprintf("arena %q: live=%dB peak=%dB reserved=%dB allocs=%d fails=%d",
		a.name, a.live, a.peak, a.reserved, a.allocs, a.fails)
}

// AllocFloats allocates a float64 slice charged to the arena, returning nil
// if the reservation would be exceeded — the kml_malloc analogue for the
// matrix buffers that dominate KML's footprint.
func (a *Arena) AllocFloats(n int) []float64 {
	if !a.Charge(int64(n) * 8) {
		return nil
	}
	return make([]float64, n)
}

// FreeFloats releases the charge for a slice obtained from AllocFloats.
func (a *Arena) FreeFloats(s []float64) {
	a.Release(int64(len(s)) * 8)
}

// SizeOfFloats returns the accounted size in bytes of an n-element float64
// buffer, the unit used in the paper's memory-footprint numbers.
func SizeOfFloats(n int) int64 { return int64(n) * 8 }
