package memutil

import (
	"strings"
	"sync"
	"testing"
)

func TestChargeReleasePeak(t *testing.T) {
	a := NewArena("test")
	if !a.Charge(100) {
		t.Fatal("unbounded charge failed")
	}
	if !a.Charge(50) {
		t.Fatal("second charge failed")
	}
	if a.Live() != 150 || a.Peak() != 150 {
		t.Errorf("live=%d peak=%d", a.Live(), a.Peak())
	}
	a.Release(120)
	if a.Live() != 30 {
		t.Errorf("live after release = %d", a.Live())
	}
	if a.Peak() != 150 {
		t.Error("peak must not decrease")
	}
	if a.Allocs() != 2 {
		t.Errorf("allocs = %d", a.Allocs())
	}
}

func TestReservationRejects(t *testing.T) {
	a := NewArena("capped")
	a.Reserve(100)
	if !a.Charge(80) {
		t.Fatal("charge under cap failed")
	}
	if a.Charge(30) {
		t.Fatal("charge over cap succeeded")
	}
	if a.Fails() != 1 {
		t.Errorf("fails = %d", a.Fails())
	}
	a.Release(80)
	if !a.Charge(100) {
		t.Error("charge exactly at cap should succeed")
	}
}

func TestReserveZeroUnbounded(t *testing.T) {
	a := NewArena("x")
	a.Reserve(10)
	a.Reserve(0)
	if !a.Charge(1 << 30) {
		t.Error("cap of 0 should mean unbounded")
	}
}

func TestOverReleasePanics(t *testing.T) {
	a := NewArena("x")
	a.Charge(10)
	defer func() {
		if recover() == nil {
			t.Error("over-release must panic")
		}
	}()
	a.Release(11)
}

func TestNegativeChargePanics(t *testing.T) {
	a := NewArena("x")
	defer func() {
		if recover() == nil {
			t.Error("negative charge must panic")
		}
	}()
	a.Charge(-1)
}

func TestAllocFloats(t *testing.T) {
	a := NewArena("floats")
	a.Reserve(SizeOfFloats(10))
	s := a.AllocFloats(10)
	if s == nil || len(s) != 10 {
		t.Fatal("AllocFloats under cap")
	}
	if a.Live() != 80 {
		t.Errorf("live = %d", a.Live())
	}
	if a.AllocFloats(1) != nil {
		t.Error("AllocFloats over cap should return nil")
	}
	a.FreeFloats(s)
	if a.Live() != 0 {
		t.Errorf("live after free = %d", a.Live())
	}
}

func TestConcurrentCharges(t *testing.T) {
	a := NewArena("conc")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				a.Charge(8)
				a.Release(8)
			}
		}()
	}
	wg.Wait()
	if a.Live() != 0 {
		t.Errorf("live = %d after balanced charges", a.Live())
	}
	if a.Allocs() != 8000 {
		t.Errorf("allocs = %d", a.Allocs())
	}
}

func TestString(t *testing.T) {
	a := NewArena("model")
	a.Charge(42)
	s := a.String()
	if !strings.Contains(s, "model") || !strings.Contains(s, "live=42B") {
		t.Errorf("String() = %q", s)
	}
}
