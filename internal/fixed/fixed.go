// Package fixed implements Q16.16 fixed-point arithmetic.
//
// KML supports integer matrices so that inference can run in kernel contexts
// where the FPU is disabled or absent (§3.1 of the paper: "Operations on
// fixed-point representations can be faster and do not require an FP unit").
// This package provides the scalar type those matrices are built on, plus
// the approximated transcendental functions (exp, sigmoid, tanh) needed to
// execute a trained network entirely in integer arithmetic.
//
// All operations saturate rather than wrap on overflow, mirroring the
// "numerical instability" concern the paper raises for narrow fixed-point
// ranges: saturation keeps a mis-scaled model degraded instead of wild.
//
// This file is kernel-portable; the float-facing shims (FromFloat, Float,
// the e^k table) are the blessed quantization boundary and are marked
// //kml:boundary. Debug formatting lives in format.go, outside the
// kernelspace contract.
//
//kml:kernelspace
package fixed

// Q16 is a signed 32-bit fixed-point number with 16 fractional bits.
// Its representable range is approximately [-32768, 32767.99998].
type Q16 int32

// FracBits is the number of fractional bits in a Q16.
const FracBits = 16

// One is the Q16 representation of 1.0.
const One Q16 = 1 << FracBits

// Half is the Q16 representation of 0.5.
const Half Q16 = 1 << (FracBits - 1)

// Max and Min are the saturation bounds.
const (
	Max Q16 = 1<<31 - 1
	Min Q16 = -1 << 31
)

// FromFloat converts a float64 to Q16, rounding to nearest and saturating.
// It is a user→kernel quantization shim: models are trained in floating
// point and quantized before deployment, so this never runs in kernel
// context.
//
//kml:boundary
func FromFloat(f float64) Q16 {
	scaled := f * float64(One)
	switch {
	case scaled >= float64(Max):
		return Max
	case scaled <= float64(Min):
		return Min
	case scaled >= 0:
		return Q16(scaled + 0.5)
	default:
		return Q16(scaled - 0.5)
	}
}

// FromInt converts an integer to Q16, saturating.
func FromInt(i int) Q16 {
	if i >= 1<<15 {
		return Max
	}
	if i < -(1 << 15) {
		return Min
	}
	return Q16(i) << FracBits
}

// Float returns the float64 value of q. Like FromFloat it is a boundary
// shim for accuracy evaluation and debugging in user space.
//
//kml:boundary
func (q Q16) Float() float64 { return float64(q) / float64(One) }

// Int returns q truncated toward zero to an integer.
func (q Q16) Int() int {
	if q < 0 {
		return -int(-q >> FracBits)
	}
	return int(q >> FracBits)
}

func sat(v int64) Q16 {
	if v > int64(Max) {
		return Max
	}
	if v < int64(Min) {
		return Min
	}
	return Q16(v)
}

// Add returns q+r with saturation.
//
//kml:hotpath
func (q Q16) Add(r Q16) Q16 { return sat(int64(q) + int64(r)) }

// Sub returns q−r with saturation.
//
//kml:hotpath
func (q Q16) Sub(r Q16) Q16 { return sat(int64(q) - int64(r)) }

// Mul returns q·r with rounding and saturation.
//
//kml:hotpath
func (q Q16) Mul(r Q16) Q16 {
	p := int64(q) * int64(r)
	// Round to nearest by adding half an LSB before shifting.
	if p >= 0 {
		p += 1 << (FracBits - 1)
	} else {
		p -= 1 << (FracBits - 1)
	}
	return sat(p >> FracBits)
}

// Div returns q/r with rounding and saturation. Division by zero saturates
// to Max or Min depending on the sign of q (and Max for 0/0).
//
//kml:hotpath
func (q Q16) Div(r Q16) Q16 {
	if r == 0 {
		if q < 0 {
			return Min
		}
		return Max
	}
	n := int64(q) << FracBits
	d := int64(r)
	// Round to nearest.
	if (n < 0) == (d < 0) {
		return sat((n + d/2) / d)
	}
	return sat((n - d/2) / d)
}

// Neg returns −q with saturation (−Min saturates to Max).
//
//kml:hotpath
func (q Q16) Neg() Q16 {
	if q == Min {
		return Max
	}
	return -q
}

// Abs returns |q| with saturation.
//
//kml:hotpath
func (q Q16) Abs() Q16 {
	if q < 0 {
		return q.Neg()
	}
	return q
}

// Sqrt returns the square root of q (0 for negative inputs) using integer
// Newton iteration on the Q32.32 radicand.
//
//kml:hotpath
func (q Q16) Sqrt() Q16 {
	if q <= 0 {
		return 0
	}
	// sqrt(v / 2^16) in Q16 = sqrt(v * 2^16) in integer.
	v := uint64(q) << FracBits
	// Initial guess: 2^(ceil(bits/2)).
	x := uint64(1) << ((bitLen(v) + 1) / 2)
	for i := 0; i < 32; i++ {
		nx := (x + v/x) / 2
		if nx >= x {
			break
		}
		x = nx
	}
	return sat(int64(x))
}

func bitLen(v uint64) int {
	n := 0
	for v != 0 {
		v >>= 1
		n++
	}
	return n
}

// expTable holds e^k in Q16 for k = 0..10; beyond ~10.4 e^x saturates Q16.
// The float literals are quantized once at package init — a boundary
// computation, like loading precomputed constants into a kernel module.
//
//kml:boundary
var expTable = [11]Q16{
	FromFloat(1.0),
	FromFloat(2.718281828459045),
	FromFloat(7.38905609893065),
	FromFloat(20.085536923187668),
	FromFloat(54.598150033144236),
	FromFloat(148.4131591025766),
	FromFloat(403.4287934927351),
	FromFloat(1096.6331584284585),
	FromFloat(2980.9579870417283),
	FromFloat(8103.083927575384),
	FromFloat(22026.465794806718),
}

// Exp returns e**q. Inputs above ~10.4 saturate to Max; inputs below −16
// return 0. The fractional part is evaluated with an 8-term Taylor series,
// accurate to ~1e-4 in relative terms — comparable to the quantization noise
// of the representation itself.
//
//kml:hotpath
func (q Q16) Exp() Q16 {
	if q < FromInt(-16) {
		return 0
	}
	neg := false
	if q < 0 {
		neg = true
		q = q.Neg()
	}
	k := q.Int()
	frac := q.Sub(FromInt(k))
	var intPart Q16
	if k >= len(expTable) {
		if neg {
			return 0
		}
		return Max
	}
	intPart = expTable[k]
	// Taylor on frac in [0, 1).
	term := One
	sum := One
	for i := 1; i <= 8; i++ {
		term = term.Mul(frac).Div(FromInt(i))
		sum = sum.Add(term)
	}
	r := intPart.Mul(sum)
	if neg {
		return One.Div(r)
	}
	return r
}

// Sigmoid returns the logistic function of q evaluated in fixed point,
// using the stable tail formulation.
//
//kml:hotpath
func (q Q16) Sigmoid() Q16 {
	if q >= 0 {
		z := q.Neg().Exp()
		return One.Div(One.Add(z))
	}
	z := q.Exp()
	return z.Div(One.Add(z))
}

// Tanh returns the hyperbolic tangent of q: 2σ(2q) − 1.
//
//kml:hotpath
func (q Q16) Tanh() Q16 {
	two := FromInt(2)
	return two.Mul(q.Mul(two).Sigmoid()).Sub(One)
}

// ReLU returns max(q, 0).
//
//kml:hotpath
func (q Q16) ReLU() Q16 {
	if q < 0 {
		return 0
	}
	return q
}
