package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromFloatRoundTrip(t *testing.T) {
	for _, f := range []float64{0, 1, -1, 0.5, -0.5, 3.25, -17.75, 1000.125, -32000} {
		q := FromFloat(f)
		if got := q.Float(); got != f {
			t.Errorf("FromFloat(%g).Float() = %g", f, got)
		}
	}
}

func TestFromFloatRounding(t *testing.T) {
	// 1/3 is not representable; check rounding to nearest LSB.
	q := FromFloat(1.0 / 3.0)
	if math.Abs(q.Float()-1.0/3.0) > 1.0/(1<<17) {
		t.Errorf("rounding error too large: %g", q.Float())
	}
}

func TestFromFloatSaturation(t *testing.T) {
	if FromFloat(1e9) != Max {
		t.Error("positive overflow must saturate to Max")
	}
	if FromFloat(-1e9) != Min {
		t.Error("negative overflow must saturate to Min")
	}
}

func TestFromInt(t *testing.T) {
	if FromInt(3) != 3*One {
		t.Error("FromInt(3)")
	}
	if FromInt(40000) != Max || FromInt(-40000) != Min {
		t.Error("FromInt must saturate")
	}
	if FromInt(-5).Int() != -5 {
		t.Errorf("Int round trip: %d", FromInt(-5).Int())
	}
}

func TestAddSubSaturate(t *testing.T) {
	if Max.Add(One) != Max {
		t.Error("Add must saturate high")
	}
	if Min.Sub(One) != Min {
		t.Error("Sub must saturate low")
	}
	if FromInt(2).Add(FromInt(3)) != FromInt(5) {
		t.Error("2+3 != 5")
	}
}

func TestMul(t *testing.T) {
	cases := [][3]float64{
		{2, 3, 6},
		{-2, 3, -6},
		{0.5, 0.5, 0.25},
		{-0.5, -0.5, 0.25},
		{100, 100, 10000},
	}
	for _, c := range cases {
		got := FromFloat(c[0]).Mul(FromFloat(c[1])).Float()
		if math.Abs(got-c[2]) > 1e-4 {
			t.Errorf("%g*%g = %g, want %g", c[0], c[1], got, c[2])
		}
	}
	if FromInt(30000).Mul(FromInt(30000)) != Max {
		t.Error("Mul overflow must saturate")
	}
	if FromInt(-30000).Mul(FromInt(30000)) != Min {
		t.Error("Mul negative overflow must saturate")
	}
}

func TestDiv(t *testing.T) {
	cases := [][3]float64{
		{6, 3, 2},
		{-6, 3, -2},
		{1, 4, 0.25},
		{1, 3, 1.0 / 3.0},
		{-1, -2, 0.5},
	}
	for _, c := range cases {
		got := FromFloat(c[0]).Div(FromFloat(c[1])).Float()
		if math.Abs(got-c[2]) > 1e-4 {
			t.Errorf("%g/%g = %g, want %g", c[0], c[1], got, c[2])
		}
	}
	if FromInt(1).Div(0) != Max || FromInt(-1).Div(0) != Min {
		t.Error("division by zero must saturate")
	}
}

func TestMulCommutesProperty(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := Q16(a/256), Q16(b/256) // keep products in range
		return x.Mul(y) == y.Mul(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulDivInverseProperty(t *testing.T) {
	f := func(a int32) bool {
		q := Q16(a / 4)
		if q.Abs() < One/16 { // tiny values lose too much precision
			return true
		}
		r := q.Mul(FromFloat(1.7)).Div(FromFloat(1.7))
		diff := r.Sub(q).Abs()
		return diff <= q.Abs()/256+16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestNegAbs(t *testing.T) {
	if FromInt(5).Neg() != FromInt(-5) {
		t.Error("Neg")
	}
	if Min.Neg() != Max {
		t.Error("Neg(Min) must saturate to Max")
	}
	if FromInt(-5).Abs() != FromInt(5) || FromInt(5).Abs() != FromInt(5) {
		t.Error("Abs")
	}
	if Min.Abs() != Max {
		t.Error("Abs(Min) must saturate")
	}
}

func TestSqrt(t *testing.T) {
	for _, c := range [][2]float64{{4, 2}, {9, 3}, {2, math.Sqrt2}, {0.25, 0.5}, {10000, 100}, {0, 0}} {
		got := FromFloat(c[0]).Sqrt().Float()
		if math.Abs(got-c[1]) > 2e-3 {
			t.Errorf("Sqrt(%g) = %g, want %g", c[0], got, c[1])
		}
	}
	if FromInt(-4).Sqrt() != 0 {
		t.Error("Sqrt of negative should be 0")
	}
}

func TestSqrtProperty(t *testing.T) {
	f := func(a int32) bool {
		q := Q16(a).Abs()
		s := q.Sqrt()
		// s² must be within a small relative band of q.
		back := s.Mul(s).Float()
		want := q.Float()
		return math.Abs(back-want) <= want*0.01+0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestExp(t *testing.T) {
	for x := -8.0; x <= 8; x += 0.5 {
		got := FromFloat(x).Exp().Float()
		want := math.Exp(x)
		tol := want*0.01 + 2e-3
		if math.Abs(got-want) > tol {
			t.Errorf("Exp(%g) = %g, want %g", x, got, want)
		}
	}
	if FromInt(-20).Exp() != 0 {
		t.Error("Exp of very negative should be 0")
	}
	if FromInt(15).Exp() != Max {
		t.Error("Exp overflow must saturate")
	}
}

func TestSigmoid(t *testing.T) {
	for x := -10.0; x <= 10; x += 0.25 {
		got := FromFloat(x).Sigmoid().Float()
		want := 1 / (1 + math.Exp(-x))
		if math.Abs(got-want) > 5e-3 {
			t.Errorf("Sigmoid(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestSigmoidMonotoneProperty(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := Q16(a/1024), Q16(b/1024)
		if x > y {
			x, y = y, x
		}
		return x.Sigmoid() <= y.Sigmoid()+4 // allow tiny quantization jitter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTanh(t *testing.T) {
	for x := -4.0; x <= 4; x += 0.25 {
		got := FromFloat(x).Tanh().Float()
		want := math.Tanh(x)
		if math.Abs(got-want) > 1e-2 {
			t.Errorf("Tanh(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestReLU(t *testing.T) {
	if FromInt(-3).ReLU() != 0 || FromInt(3).ReLU() != FromInt(3) || Q16(0).ReLU() != 0 {
		t.Error("ReLU broken")
	}
}

func TestString(t *testing.T) {
	if s := FromFloat(1.5).String(); s != "1.50000" {
		t.Errorf("String() = %q", s)
	}
}

func BenchmarkMul(b *testing.B) {
	x, y := FromFloat(1.37), FromFloat(-2.45)
	var r Q16
	for i := 0; i < b.N; i++ {
		r = x.Mul(y)
	}
	_ = r
}

func BenchmarkSigmoid(b *testing.B) {
	x := FromFloat(0.73)
	var r Q16
	for i := 0; i < b.N; i++ {
		r = x.Sigmoid()
	}
	_ = r
}
