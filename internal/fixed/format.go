package fixed

import "strconv"

// String formats q with five decimal places. Formatting is a user-space
// debugging aid, so it lives outside the kernelspace file (strconv and
// float formatting are not kernel-portable).
func (q Q16) String() string {
	return strconv.FormatFloat(q.Float(), 'f', 5, 64)
}
