// Package bench is the experiment harness that regenerates every table and
// figure in the paper's evaluation (§4) on the simulated stack:
//
//   - the readahead sweep ("studying the problem"): workloads × 20
//     readahead values × devices, and the best-value map it yields;
//   - Table 2: KML-tuned vs vanilla throughput ratios for six workloads on
//     NVMe and SATA SSD, for both model families (NN and decision tree);
//   - Figure 2: the per-second mixgraph timeline of throughput and the
//     readahead value the model chooses;
//   - the k-fold cross-validation accuracy (95.5% in the paper);
//   - the overhead study (per-event collection cost, inference and
//     training latency, model memory) — the latency pieces live in
//     bench_test.go as testing.B benchmarks since they measure real time.
//
// EXPERIMENTS.md records paper-vs-measured numbers for each.
package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/readahead"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Result is one workload run's outcome.
type Result struct {
	Workload  workload.Kind
	Device    string
	RASectors int // fixed setting, or -1 for KML-tuned runs
	Ops       uint64
	Duration  time.Duration
	HitRate   float64
	SpecPages uint64 // speculative pages the device fetched
	Dropped   uint64 // ring-buffer drops (KML runs)
}

// OpsPerSec returns throughput in operations per virtual second.
func (r Result) OpsPerSec() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Duration.Seconds()
}

// RunFixedRA runs one workload on a fresh environment with a fixed device
// readahead — both the vanilla baseline (DefaultReadaheadSectors) and the
// sweep's data points.
func RunFixedRA(simCfg sim.Config, kind workload.Kind, seconds int, raSectors int) (Result, error) {
	env, err := sim.NewEnv(simCfg)
	if err != nil {
		return Result{}, err
	}
	env.Dev.SetReadahead(raSectors)
	runner := env.NewRunner(kind)
	start := env.Clk.Now()
	if err := runner.RunFor(time.Duration(seconds) * time.Second); err != nil {
		return Result{}, err
	}
	return Result{
		Workload:  kind,
		Device:    env.Dev.Profile().Name,
		RASectors: raSectors,
		Ops:       runner.Ops(),
		Duration:  env.Clk.Now() - start,
		HitRate:   env.Cache.Stats().HitRate(),
		SpecPages: env.Dev.Stats().PagesSpec,
	}, nil
}

// RunVanilla runs the unmodified-system baseline: the Linux default
// readahead under the stock heuristic.
func RunVanilla(simCfg sim.Config, kind workload.Kind, seconds int) (Result, error) {
	env, err := sim.NewEnv(simCfg)
	if err != nil {
		return Result{}, err
	}
	runner := env.NewRunner(kind)
	start := env.Clk.Now()
	if err := runner.RunFor(time.Duration(seconds) * time.Second); err != nil {
		return Result{}, err
	}
	return Result{
		Workload:  kind,
		Device:    env.Dev.Profile().Name,
		RASectors: env.Dev.ReadaheadSectors(),
		Ops:       runner.Ops(),
		Duration:  env.Clk.Now() - start,
		HitRate:   env.Cache.Stats().HitRate(),
		SpecPages: env.Dev.Stats().PagesSpec,
	}, nil
}

// Bundle is a deployable model: classifier plus its fitted normalizer —
// what the paper's KML model file plus normalization parameters amount to.
type Bundle struct {
	Model core.Classifier
	Norm  features.Normalizer
}

// RunKML runs a workload with the KML tuner in the loop and returns the
// result plus the per-second tuning decisions (the Figure-2 series).
func RunKML(simCfg sim.Config, kind workload.Kind, seconds int, b Bundle) (Result, []readahead.Decision, error) {
	env, err := sim.NewEnv(simCfg)
	if err != nil {
		return Result{}, nil, err
	}
	tuner, err := readahead.NewTuner(env.Dev, b.Model, b.Norm, readahead.TunerConfig{})
	if err != nil {
		return Result{}, nil, err
	}
	env.Tracer.Register(tuner.Hook())
	runner := env.NewRunner(kind)
	start := env.Clk.Now()
	deadline := start + time.Duration(seconds)*time.Second
	for env.Clk.Now() < deadline {
		if err := runner.Step(); err != nil {
			return Result{}, nil, err
		}
		tuner.MaybeTick(env.Clk.Now())
	}
	return Result{
		Workload:  kind,
		Device:    env.Dev.Profile().Name,
		RASectors: -1,
		Ops:       runner.Ops(),
		Duration:  env.Clk.Now() - start,
		HitRate:   env.Cache.Stats().HitRate(),
		SpecPages: env.Dev.Stats().PagesSpec,
		Dropped:   tuner.Dropped(),
	}, tuner.Decisions(), nil
}

// TrainNNBundle executes the full paper workflow: collect labeled windows
// from the four training workloads on the training device, fit the
// normalizer, and train the neural network. It returns the bundle plus the
// raw dataset for reuse (cross-validation, decision tree, Pearson report).
func TrainNNBundle(trainCfg sim.Config, dcfg readahead.DatasetConfig, tcfg readahead.TrainConfig) (Bundle, []features.Vector, []int, error) {
	raw, labels, err := readahead.CollectDataset(trainCfg, dcfg)
	if err != nil {
		return Bundle{}, nil, nil, err
	}
	if len(raw) == 0 {
		return Bundle{}, nil, nil, fmt.Errorf("bench: empty dataset")
	}
	norm := features.FitNormalizer(raw)
	normed := make([]features.Vector, len(raw))
	for i, v := range raw {
		normed[i] = norm.Apply(v)
	}
	net := readahead.NewModel(tcfg.Seed)
	readahead.TrainModel(net, normed, labels, tcfg)
	return Bundle{Model: readahead.NewNNClassifier(net), Norm: norm}, raw, labels, nil
}

// TrainTreeBundle trains the decision-tree variant on an already-collected
// dataset.
func TrainTreeBundle(raw []features.Vector, labels []int) (Bundle, error) {
	norm := features.FitNormalizer(raw)
	normed := make([]features.Vector, len(raw))
	for i, v := range raw {
		normed[i] = norm.Apply(v)
	}
	tree, err := readahead.TrainTree(normed, labels)
	if err != nil {
		return Bundle{}, err
	}
	return Bundle{Model: tree, Norm: norm}, nil
}
