package bench

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/features"
	"repro/internal/parallel"
	"repro/internal/readahead"
	"repro/internal/workload"
)

// These are the satellite determinism regression tests: every experiment
// grid must render byte-identical output at workers=1 (inline, no
// goroutines) and workers=8. They run under -race in CI, which also makes
// them the data-race canary for the worker pool and classifier cloning.

func TestParallelFor(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		got := make([]int, 40)
		if err := parallel.For(len(got), workers, func(i int) error {
			got[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d cell %d = %d", workers, i, v)
			}
		}
	}
	if parallel.Workers(0) < 1 || parallel.Workers(5) != 5 {
		t.Error("Workers resolution")
	}
}

func TestParallelForReportsLowestError(t *testing.T) {
	fail := func(i int) error {
		if i == 3 || i == 7 {
			return &cellErr{i}
		}
		return nil
	}
	for _, workers := range []int{1, 4} {
		err := parallel.For(10, workers, fail)
		ce, ok := err.(*cellErr)
		if !ok || ce.i != 3 {
			t.Fatalf("workers=%d: err = %v, want cell 3", workers, err)
		}
	}
}

type cellErr struct{ i int }

func (e *cellErr) Error() string { return "cell failed" }

func TestSweepParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	kinds := []workload.Kind{workload.ReadRandom, workload.ReadSeq}
	ras := []int{8, 256, 1024}
	serial, err := RunSweepParallel(microSSD(), kinds, ras, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSweepParallel(microSSD(), kinds, ras, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	serial.Write(&a)
	par.Write(&b)
	if a.String() != b.String() {
		t.Errorf("sweep output differs between workers=1 and workers=8:\n--- serial\n%s--- parallel\n%s", a.String(), b.String())
	}
}

func TestTable2ParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// An untrained network still predicts deterministically, and its
	// statefulness exercises the per-worker classifier cloning.
	b := Bundle{Model: readahead.NewNNClassifier(readahead.NewModel(1))}
	serial, err := RunTable2Parallel(microNVMe(), microSSD(), 1, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunTable2Parallel(microNVMe(), microSSD(), 1, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	var sa, sb strings.Builder
	serial.Write(&sa)
	par.Write(&sb)
	if sa.String() != sb.String() {
		t.Errorf("table2 output differs between workers=1 and workers=8:\n--- serial\n%s--- parallel\n%s", sa.String(), sb.String())
	}
}

func TestKFoldParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy")
	}
	// Synthetic separable dataset: four class blobs in feature space.
	rng := rand.New(rand.NewSource(5))
	n := 80
	raw := make([]features.Vector, n)
	labels := make([]int, n)
	for i := range raw {
		c := i % workload.NumClasses
		labels[i] = c
		for j := 0; j < features.NumCandidates; j++ {
			raw[i][j] = float64(c) + 0.3*rng.NormFloat64()
		}
	}
	cfg := readahead.TrainConfig{Epochs: 3, Batch: 8, Seed: 9}
	serial := readahead.KFoldCVParallel(raw, labels, 5, cfg, 1)
	par := readahead.KFoldCVParallel(raw, labels, 5, cfg, 8)
	if len(serial) != 5 || len(par) != 5 {
		t.Fatalf("fold counts %d/%d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Errorf("fold %d accuracy differs: workers=1 %v vs workers=8 %v", i, serial[i], par[i])
		}
	}
}
