package bench

import (
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The parallel experiment runner. Every cell of an experiment grid — one
// (workload, readahead) point of the sweep, one (workload, device) pair of
// Table 2 — builds its own sim.Env from the by-value config and derives all
// randomness from seeds that depend only on the cell's coordinates, never
// on which worker runs it or in what order. Results land in per-cell slots
// and the summary statistics (best readahead per workload, mean gains) are
// computed after the pool drains, in canonical cell order. The rendered
// output is therefore byte-identical for every worker count; the
// determinism regression test pins workers=1 against workers=8.
//
// All cells of one grid intentionally share the experiment's base seed:
// common random numbers pair the workload streams across readahead values
// and across vanilla/tuned runs, which reduces the variance of every
// relative comparison the paper's tables report.

// cloneBundle returns a bundle safe for one concurrent worker. Stateful
// models (networks carrying forward scratch) implement core.Cloneable and
// are deep-copied; anything else must already be safe for concurrent use.
func cloneBundle(b Bundle) Bundle {
	if cl, ok := b.Model.(core.Cloneable); ok {
		return Bundle{Model: cl.CloneClassifier(), Norm: b.Norm}
	}
	return b
}

// RunSweepParallel is RunSweep fanned across workers goroutines (0 means
// GOMAXPROCS). Output is byte-identical to the serial run.
func RunSweepParallel(simCfg sim.Config, kinds []workload.Kind, raValues []int, seconds, workers int) (*SweepResult, error) {
	if raValues == nil {
		raValues = SweepRAValues()
	}
	res := &SweepResult{
		Device:    simCfg.WithDefaults().Profile.Name,
		RAValues:  raValues,
		Workloads: kinds,
	}
	grid := make([][]float64, len(kinds))
	for i := range grid {
		grid[i] = make([]float64, len(raValues))
	}
	err := parallel.For(len(kinds)*len(raValues), parallel.Workers(workers), func(i int) error {
		w, r := i/len(raValues), i%len(raValues)
		cell, err := RunFixedRA(simCfg, kinds[w], seconds, raValues[r])
		if err != nil {
			return err
		}
		grid[w][r] = cell.OpsPerSec()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for w := range kinds {
		bestIdx := 0
		for i := range raValues {
			if grid[w][i] > grid[w][bestIdx] {
				bestIdx = i
			}
		}
		res.Throughput = append(res.Throughput, grid[w])
		res.Best = append(res.Best, raValues[bestIdx])
	}
	return res, nil
}

// RunTable2Parallel is RunTable2 with every (workload, device) pair run as
// an independent cell across workers goroutines (0 means GOMAXPROCS). Each
// cell gets a private clone of the model bundle; output is byte-identical
// to the serial run.
func RunTable2Parallel(nvmeCfg, ssdCfg sim.Config, seconds int, b Bundle, workers int) (*Table2Result, error) {
	kinds := workload.AllKinds()
	cfgs := []sim.Config{nvmeCfg, ssdCfg}
	ratios := make([]float64, len(kinds)*2)
	err := parallel.For(len(ratios), parallel.Workers(workers), func(i int) error {
		w, d := i/2, i%2
		wb := cloneBundle(b)
		base, err := RunVanilla(cfgs[d], kinds[w], seconds)
		if err != nil {
			return err
		}
		tuned, _, err := RunKML(cfgs[d], kinds[w], seconds, wb)
		if err != nil {
			return err
		}
		if base.OpsPerSec() > 0 {
			ratios[i] = tuned.OpsPerSec() / base.OpsPerSec()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Table2Result{ModelName: b.Model.Name()}
	var sumNVMe, sumSSD float64
	for w, kind := range kinds {
		row := Table2Row{Workload: kind, NVMe: ratios[w*2], SSD: ratios[w*2+1]}
		sumNVMe += row.NVMe - 1
		sumSSD += row.SSD - 1
		res.Rows = append(res.Rows, row)
	}
	n := float64(len(res.Rows))
	res.MeanGainNVMe = sumNVMe / n * 100
	res.MeanGainSSD = sumSSD / n * 100
	return res, nil
}
