package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/blockdev"
	"repro/internal/readahead"
	"repro/internal/sim"
	"repro/internal/workload"
)

// SweepRAValues are the twenty readahead settings of the paper's study
// ("20 different readahead sizes (ranging from 8 to 1024)"), in sectors.
func SweepRAValues() []int {
	return []int{8, 16, 24, 32, 48, 64, 80, 96, 128, 160, 192, 224, 256, 320, 384, 448, 512, 640, 768, 1024}
}

// SweepResult is the E1 study: throughput per (workload, readahead) on one
// device, and the best value per workload.
type SweepResult struct {
	Device    string
	RAValues  []int
	Workloads []workload.Kind
	// Throughput[w][r] is ops/sec for Workloads[w] at RAValues[r].
	Throughput [][]float64
	// Best[w] is the readahead value maximizing Workloads[w]'s throughput.
	Best []int
}

// RunSweep executes the readahead sweep for the given workloads on one
// goroutine; RunSweepParallel fans the same grid across a worker pool with
// byte-identical output.
func RunSweep(simCfg sim.Config, kinds []workload.Kind, raValues []int, seconds int) (*SweepResult, error) {
	return RunSweepParallel(simCfg, kinds, raValues, seconds, 1)
}

// Policy derives a tuning policy from the sweep (classes are the training
// workloads, in order).
func (s *SweepResult) Policy() readahead.Policy {
	var p readahead.Policy
	for i, kind := range s.Workloads {
		if c := kind.Class(); c >= 0 {
			p[c] = s.Best[i]
		}
	}
	return p
}

// Write renders the sweep as a table, one row per workload.
func (s *SweepResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Readahead sweep on %s (ops/sec by readahead sectors)\n", s.Device)
	fmt.Fprintf(w, "%-24s", "workload")
	for _, ra := range s.RAValues {
		fmt.Fprintf(w, "%9d", ra)
	}
	fmt.Fprintf(w, "%9s\n", "best")
	for i, kind := range s.Workloads {
		fmt.Fprintf(w, "%-24s", kind)
		for _, tput := range s.Throughput[i] {
			fmt.Fprintf(w, "%9.0f", tput)
		}
		fmt.Fprintf(w, "%9d\n", s.Best[i])
	}
}

// Table2Row is one line of the paper's Table 2: the speedup of KML-tuned
// over vanilla for a workload on both devices.
type Table2Row struct {
	Workload workload.Kind
	NVMe     float64
	SSD      float64
}

// Table2Result reproduces Table 2.
type Table2Result struct {
	ModelName string
	Rows      []Table2Row
	// MeanGainNVMe / MeanGainSSD are the paper's summary percentages
	// ("average performance gain for SSD was 82.5% and for NVMe 37.3%").
	MeanGainNVMe float64
	MeanGainSSD  float64
}

// RunTable2 measures vanilla vs KML-tuned throughput for every Table-2
// workload on both device profiles with the given model bundle, on one
// goroutine; RunTable2Parallel fans the same cells across a worker pool
// with byte-identical output.
func RunTable2(nvmeCfg, ssdCfg sim.Config, seconds int, b Bundle) (*Table2Result, error) {
	return RunTable2Parallel(nvmeCfg, ssdCfg, seconds, b, 1)
}

// Write renders the table in the paper's layout.
func (t *Table2Result) Write(w io.Writer) {
	fmt.Fprintf(w, "Table 2 (%s): KML speedup over vanilla\n", t.ModelName)
	fmt.Fprintf(w, "%-24s%8s%8s\n", "Benchmarks", "NVMe", "SSD")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-24s%7.2fx%7.2fx\n", r.Workload, r.NVMe, r.SSD)
	}
	fmt.Fprintf(w, "mean gain: NVMe %.1f%%  SSD %.1f%%\n", t.MeanGainNVMe, t.MeanGainSSD)
}

// TimelinePoint is one second of the Figure-2 series.
type TimelinePoint struct {
	Second     int
	VanillaOps float64
	KMLOps     float64
	RASectors  int
}

// Figure2Result is the per-second mixgraph comparison of Figure 2.
type Figure2Result struct {
	Device string
	Points []TimelinePoint
	// Speedup is the overall KML/vanilla throughput ratio for the run
	// (the paper reports ~2.09× for mixgraph).
	Speedup float64
}

// RunFigure2 reproduces the Figure-2 timeline: mixgraph with per-second
// throughput for vanilla and KML, plus the readahead value KML chose.
func RunFigure2(simCfg sim.Config, seconds int, b Bundle) (*Figure2Result, error) {
	vanilla, err := perSecondOps(simCfg, seconds, nil)
	if err != nil {
		return nil, err
	}
	kml, err := perSecondOps(simCfg, seconds, &b)
	if err != nil {
		return nil, err
	}
	res := &Figure2Result{Device: simCfg.WithDefaults().Profile.Name}
	var vTotal, kTotal float64
	for s := 0; s < seconds; s++ {
		p := TimelinePoint{Second: s, VanillaOps: vanilla.opsPerSec[s], KMLOps: kml.opsPerSec[s], RASectors: kml.ra[s]}
		vTotal += p.VanillaOps
		kTotal += p.KMLOps
		res.Points = append(res.Points, p)
	}
	if vTotal > 0 {
		res.Speedup = kTotal / vTotal
	}
	return res, nil
}

type timeline struct {
	opsPerSec []float64
	ra        []int
}

func perSecondOps(simCfg sim.Config, seconds int, b *Bundle) (*timeline, error) {
	env, err := sim.NewEnv(simCfg)
	if err != nil {
		return nil, err
	}
	var tuner *readahead.Tuner
	if b != nil {
		tuner, err = readahead.NewTuner(env.Dev, b.Model, b.Norm, readahead.TunerConfig{})
		if err != nil {
			return nil, err
		}
		env.Tracer.Register(tuner.Hook())
	}
	runner := env.NewRunner(workload.MixGraph)
	tl := &timeline{}
	start := env.Clk.Now()
	lastOps := uint64(0)
	for s := 0; s < seconds; s++ {
		deadline := start + time.Duration(s+1)*time.Second
		for env.Clk.Now() < deadline {
			if err := runner.Step(); err != nil {
				return nil, err
			}
			if tuner != nil {
				tuner.MaybeTick(env.Clk.Now())
			}
		}
		tl.opsPerSec = append(tl.opsPerSec, float64(runner.Ops()-lastOps))
		lastOps = runner.Ops()
		tl.ra = append(tl.ra, env.Dev.ReadaheadSectors())
	}
	return tl, nil
}

// Write renders the timeline as aligned columns (CSV-friendly with -csv in
// cmd/kml-figure2) followed by an ASCII rendering of the two series — the
// closest a terminal gets to the paper's Figure 2.
func (f *Figure2Result) Write(w io.Writer) {
	fmt.Fprintf(w, "Figure 2: mixgraph timeline on %s (overall speedup %.2fx)\n", f.Device, f.Speedup)
	fmt.Fprintf(w, "%6s%14s%14s%12s\n", "sec", "vanilla_ops", "kml_ops", "kml_ra")
	for _, p := range f.Points {
		fmt.Fprintf(w, "%6d%14.0f%14.0f%12d\n", p.Second, p.VanillaOps, p.KMLOps, p.RASectors)
	}
	f.writePlot(w)
}

// writePlot draws both throughput series on a shared axis, one column per
// second: K marks the KML series, v the vanilla series, * a collision.
func (f *Figure2Result) writePlot(w io.Writer) {
	if len(f.Points) == 0 {
		return
	}
	const rows = 12
	maxOps := 0.0
	for _, p := range f.Points {
		if p.KMLOps > maxOps {
			maxOps = p.KMLOps
		}
		if p.VanillaOps > maxOps {
			maxOps = p.VanillaOps
		}
	}
	if maxOps == 0 {
		return
	}
	level := func(v float64) int {
		l := int(v / maxOps * float64(rows-1))
		if l < 0 {
			l = 0
		}
		if l > rows-1 {
			l = rows - 1
		}
		return l
	}
	fmt.Fprintf(w, "\nops/sec (K = KML, v = vanilla, * = both)%*s\n", 10, "")
	for r := rows - 1; r >= 0; r-- {
		fmt.Fprintf(w, "%9.0f |", maxOps*float64(r)/float64(rows-1))
		for _, p := range f.Points {
			k, v := level(p.KMLOps) == r, level(p.VanillaOps) == r
			switch {
			case k && v:
				fmt.Fprint(w, "*")
			case k:
				fmt.Fprint(w, "K")
			case v:
				fmt.Fprint(w, "v")
			default:
				fmt.Fprint(w, " ")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%9s +%s\n", "", strings.Repeat("-", len(f.Points)))
	fmt.Fprintf(w, "%9s  seconds -> (readahead: ", "")
	prev := -1
	for _, p := range f.Points {
		if p.RASectors != prev {
			if prev != -1 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprintf(w, "t%d:%d", p.Second, p.RASectors)
			prev = p.RASectors
		}
	}
	fmt.Fprintln(w, " sectors)")
}

// DefaultNVMeConfig returns the evaluation environment for the NVMe device.
func DefaultNVMeConfig(seed int64) sim.Config {
	return sim.Config{Profile: blockdev.NVMe(), Seed: seed}
}

// DefaultSSDConfig returns the evaluation environment for the SATA SSD.
func DefaultSSDConfig(seed int64) sim.Config {
	return sim.Config{Profile: blockdev.SATASSD(), Seed: seed}
}

// QuickConfig shrinks an environment for fast tests: an 8× smaller key
// space and cache with the same dataset-to-cache ratio.
func QuickConfig(base sim.Config) sim.Config {
	base = base.WithDefaults()
	base.Keys /= 8
	base.CachePages /= 8
	return base
}

// Median returns the median of xs (0 when empty).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}
