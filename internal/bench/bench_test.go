package bench

import (
	"strings"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/features"
	"repro/internal/readahead"
	"repro/internal/sim"
	"repro/internal/workload"
)

// microNVMe and microSSD are tiny environments that keep the pollution
// regime (dataset > cache) while running in well under a second per
// simulated second.
func microNVMe() sim.Config {
	return sim.Config{Profile: blockdev.NVMe(), Keys: 4000, CachePages: 320, Seed: 1}
}

func microSSD() sim.Config {
	return sim.Config{Profile: blockdev.SATASSD(), Keys: 4000, CachePages: 320, Seed: 1}
}

func TestRunFixedRADeterministic(t *testing.T) {
	a, err := RunFixedRA(microNVMe(), workload.ReadRandom, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFixedRA(microNVMe(), workload.ReadRandom, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ops != b.Ops || a.Duration != b.Duration {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
	if a.RASectors != 64 || a.Device != "NVMe" || a.Workload != workload.ReadRandom {
		t.Errorf("metadata: %+v", a)
	}
	if a.OpsPerSec() <= 0 {
		t.Error("throughput")
	}
}

func TestRunVanillaUsesDefaultRA(t *testing.T) {
	r, err := RunVanilla(microNVMe(), workload.ReadRandom, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.RASectors != blockdev.DefaultReadaheadSectors {
		t.Errorf("vanilla ra = %d", r.RASectors)
	}
}

func TestTunedBeatsVanillaOnRandomSSD(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// The core claim of the paper, at micro scale: tuning readahead down
	// for random access must win clearly on the SATA SSD.
	base, err := RunVanilla(microSSD(), workload.ReadRandom, 3)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := RunFixedRA(microSSD(), workload.ReadRandom, 3, blockdev.SectorsPerPage)
	if err != nil {
		t.Fatal(err)
	}
	ratio := tuned.OpsPerSec() / base.OpsPerSec()
	if ratio < 1.4 {
		t.Errorf("tuned/vanilla = %.2f; expected a clear win", ratio)
	}
	// And the device must have fetched far fewer speculative pages.
	if tuned.SpecPages*4 > base.SpecPages {
		t.Errorf("spec pages: tuned %d vs vanilla %d", tuned.SpecPages, base.SpecPages)
	}
}

func TestReadSeqInsensitiveToTuning(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	base, err := RunVanilla(microNVMe(), workload.ReadSeq, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 512 sectors (64 pages) is the largest window that stays well under
	// the micro cache (320 pages); beyond that, readahead thrashes the
	// cache itself — a real effect, but not the one under test here.
	tuned, err := RunFixedRA(microNVMe(), workload.ReadSeq, 2, 512)
	if err != nil {
		t.Fatal(err)
	}
	ratio := tuned.OpsPerSec() / base.OpsPerSec()
	if ratio < 0.9 || ratio > 1.15 {
		t.Errorf("readseq ratio %.2f; should be ~1.0", ratio)
	}
}

// stubClassifier always answers the same class.
type stubClassifier int

func (s stubClassifier) Predict([]float64) int { return int(s) }
func (s stubClassifier) Name() string          { return "stub" }

func TestRunKMLRecordsDecisions(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	b := Bundle{Model: stubClassifier(1)} // always "readrandom"
	res, decs, err := RunKML(microSSD(), workload.ReadRandom, 3, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) < 2 {
		t.Fatalf("%d decisions over 3s", len(decs))
	}
	for _, d := range decs {
		if d.Class != 1 || d.Sectors != 8 {
			t.Errorf("decision %+v", d)
		}
	}
	if res.RASectors != -1 {
		t.Error("KML runs report RASectors=-1")
	}
	// The stub picks the right class, so it should approach the tuned run.
	base, err := RunVanilla(microSSD(), workload.ReadRandom, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.OpsPerSec() < base.OpsPerSec() {
		t.Errorf("KML (%.0f) below vanilla (%.0f)", res.OpsPerSec(), base.OpsPerSec())
	}
}

func TestRunSweepFindsSmallRAForRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res, err := RunSweep(microSSD(), []workload.Kind{workload.ReadRandom}, []int{8, 256, 1024}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best[0] != 8 {
		t.Errorf("best ra for readrandom = %d, want 8", res.Best[0])
	}
	var sb strings.Builder
	res.Write(&sb)
	if !strings.Contains(sb.String(), "readrandom") {
		t.Error("sweep table output")
	}
	p := res.Policy()
	if p[workload.ReadRandom.Class()] != 8 {
		t.Errorf("policy %v", p)
	}
}

func TestRunFigure2Timeline(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	b := Bundle{Model: stubClassifier(1)}
	res, err := RunFigure2(microNVMe(), 3, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("%d points", len(res.Points))
	}
	for _, p := range res.Points {
		if p.VanillaOps <= 0 || p.KMLOps <= 0 {
			t.Errorf("empty second: %+v", p)
		}
	}
	if res.Speedup <= 0 {
		t.Error("speedup")
	}
	var sb strings.Builder
	res.Write(&sb)
	if !strings.Contains(sb.String(), "mixgraph timeline") {
		t.Error("figure output")
	}
}

func TestTrainNNBundleEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := microNVMe()
	cfg.Keys, cfg.CachePages = 6000, 480
	bundle, raw, labels, err := TrainNNBundle(cfg,
		readahead.DatasetConfig{SecondsPerRun: 8, RASectors: []int{8, 256}},
		readahead.TrainConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != len(labels) || len(raw) == 0 {
		t.Fatalf("dataset %d/%d", len(raw), len(labels))
	}
	// The bundle must classify its own training windows well.
	correct := 0
	for i, v := range raw {
		if bundle.Model.Predict(features.Select(bundle.Norm.Apply(v))) == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(raw)); acc < 0.85 {
		t.Errorf("bundle training accuracy %.2f", acc)
	}
	// The tree bundle trains on the same dataset.
	tb, err := TrainTreeBundle(raw, labels)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Model.Name() != "readahead-dtree" {
		t.Error("tree bundle name")
	}
}

func TestHelpers(t *testing.T) {
	if len(SweepRAValues()) != 20 {
		t.Errorf("sweep values: %d, want 20 (paper)", len(SweepRAValues()))
	}
	vals := SweepRAValues()
	if vals[0] != 8 || vals[len(vals)-1] != 1024 {
		t.Error("sweep range must span 8..1024")
	}
	if Median(nil) != 0 || Median([]float64{3, 1, 2}) != 2 || Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Error("Median")
	}
	q := QuickConfig(DefaultNVMeConfig(1))
	full := DefaultNVMeConfig(1).WithDefaults()
	if q.Keys*8 != full.Keys || q.CachePages*8 != full.CachePages {
		t.Error("QuickConfig scaling")
	}
	if DefaultSSDConfig(1).Profile.Name != "SSD" {
		t.Error("SSD config")
	}
}

func TestTable2ResultWrite(t *testing.T) {
	res := &Table2Result{
		ModelName:    "readahead-nn",
		Rows:         []Table2Row{{Workload: workload.ReadSeq, NVMe: 0.96, SSD: 1.02}},
		MeanGainNVMe: 37.3,
		MeanGainSSD:  82.5,
	}
	var sb strings.Builder
	res.Write(&sb)
	out := sb.String()
	for _, want := range []string{"readseq", "0.96x", "1.02x", "37.3%", "82.5%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
