// The drift→retrain trigger: a pure, separately testable decision rule
// over completed drift windows. The controller feeds it one observation
// per DriftMonitor window (max feature shift in milli-Z, prediction
// churn per-mille) and it answers "retrain now?" with hysteresis, so a
// signal oscillating around the budget cannot thrash retraining:
//
//   - FIRE when the signal has been at or over budget for Sustain
//     consecutive windows while armed;
//   - after firing, DISARM: no further fires until the trigger re-arms;
//   - RE-ARM only after Cooldown windows have passed since the fire AND
//     the signal has dropped below the re-arm level (RearmMilliFrac of
//     the budget, default 80%).
//
// The asymmetric fire/re-arm thresholds are the hysteresis: at the
// boundary, a window at budget-ε after a fire keeps the trigger disarmed
// (it never dips under the re-arm level), while a genuine recovery
// followed by a fresh shift fires again. The controller pairs this with
// DriftMonitor.Rebaseline after each cycle, so "recovery" is measured
// against the distribution the retrained model actually serves.
package olearn

// TriggerConfig parameterizes the trigger. The zero value inherits the
// drift monitor's default shift threshold, ignores churn, fires on a
// single over-budget window, and re-arms after 2 windows below 80% of
// budget.
type TriggerConfig struct {
	// ShiftBudgetMilliZ fires when the window's max feature shift
	// reaches this many milli-Z; 0 means dtrace's default (2000 = 2.0z).
	ShiftBudgetMilliZ int64
	// ChurnBudgetPM fires when prediction churn reaches this per-mille;
	// 0 disables the churn signal.
	ChurnBudgetPM int64
	// Sustain is how many consecutive over-budget windows are required
	// to fire; 0 means 1.
	Sustain int
	// Cooldown is the minimum number of windows after a fire before the
	// trigger may re-arm; 0 means 2.
	Cooldown int
	// RearmMilliFrac sets the re-arm level as a per-mille fraction of
	// each budget; 0 means 800 (signal must drop below 80% of budget).
	RearmMilliFrac int64
}

// defaultShiftBudgetMilliZ mirrors dtrace.DefaultShiftThresholdMilli
// without importing dtrace into this float-free file.
const defaultShiftBudgetMilliZ = 2000

func (c TriggerConfig) withDefaults() TriggerConfig {
	if c.ShiftBudgetMilliZ == 0 {
		c.ShiftBudgetMilliZ = defaultShiftBudgetMilliZ
	}
	if c.Sustain == 0 {
		c.Sustain = 1
	}
	if c.Cooldown == 0 {
		c.Cooldown = 2
	}
	if c.RearmMilliFrac == 0 {
		c.RearmMilliFrac = 800
	}
	return c
}

// Trigger is the hysteresis state machine. Not safe for concurrent use;
// the controller serializes access under its own lock.
type Trigger struct {
	cfg       TriggerConfig
	armed     bool
	over      int // consecutive over-budget windows while armed
	sinceFire int // windows observed since the last fire
	fires     uint64
	lastShift int64
	lastChurn int64
}

// NewTrigger returns an armed trigger.
func NewTrigger(cfg TriggerConfig) *Trigger {
	return &Trigger{cfg: cfg.withDefaults(), armed: true}
}

// Observe feeds one completed drift window and reports whether the
// trigger fires on it.
func (t *Trigger) Observe(shiftMilliZ, churnPM int64) bool {
	t.lastShift, t.lastChurn = shiftMilliZ, churnPM
	if !t.armed {
		t.sinceFire++
		if t.sinceFire >= t.cfg.Cooldown && t.belowRearm(shiftMilliZ, churnPM) {
			t.armed = true
			t.over = 0
		}
		return false
	}
	if t.overBudget(shiftMilliZ, churnPM) {
		t.over++
	} else {
		t.over = 0
	}
	if t.over >= t.cfg.Sustain {
		t.fires++
		t.armed = false
		t.over = 0
		t.sinceFire = 0
		return true
	}
	return false
}

func (t *Trigger) overBudget(shiftMilliZ, churnPM int64) bool {
	if shiftMilliZ >= t.cfg.ShiftBudgetMilliZ {
		return true
	}
	return t.cfg.ChurnBudgetPM > 0 && churnPM >= t.cfg.ChurnBudgetPM
}

// belowRearm requires EVERY enabled signal under its re-arm level: a
// quiet shift cannot re-arm the trigger while churn still rages.
func (t *Trigger) belowRearm(shiftMilliZ, churnPM int64) bool {
	if shiftMilliZ >= t.cfg.ShiftBudgetMilliZ*t.cfg.RearmMilliFrac/1000 {
		return false
	}
	if t.cfg.ChurnBudgetPM > 0 && churnPM >= t.cfg.ChurnBudgetPM*t.cfg.RearmMilliFrac/1000 {
		return false
	}
	return true
}

// Armed reports whether the trigger can fire.
func (t *Trigger) Armed() bool { return t.armed }

// Fires returns how many times the trigger has fired.
func (t *Trigger) Fires() uint64 { return t.fires }

// LastSignal returns the most recently observed window's signal.
func (t *Trigger) LastSignal() (shiftMilliZ, churnPM int64) {
	return t.lastShift, t.lastChurn
}
