// The bounded training-example buffer: a keep-latest ring of raw
// (pre-normalization) feature windows, fed once per tuner decision by
// the sample sink. Like the dtrace arena it owns its storage and
// overwrites the oldest entry under overflow — the recent past is what
// retraining wants — and the add path is a slot copy, so the decision
// tick pays nothing for feeding it.
package olearn

import "repro/internal/features"

// example is one buffered training sample: the raw candidate vector and
// the class the then-deployed model predicted (retraining ignores the
// prediction and relabels heuristically; it is retained for diagnosis).
type example struct {
	raw   features.Vector
	class int32
}

// exampleRing is a fixed-capacity keep-latest ring. Not safe for
// concurrent use; the controller serializes access under its lock.
type exampleRing struct {
	slots []example
	w     uint64 // total examples ever added
}

func newExampleRing(capacity int) *exampleRing {
	return &exampleRing{slots: make([]example, capacity)}
}

// add copies one example into the next slot, overwriting the oldest
// when full.
//
//kml:hotpath
func (r *exampleRing) add(raw features.Vector, class int) {
	r.slots[r.w%uint64(len(r.slots))] = example{raw: raw, class: int32(class)}
	r.w++
}

// len returns the number of retained examples.
//
//kml:hotpath
func (r *exampleRing) len() int {
	if r.w > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(r.w)
}

// snapshot copies the retained examples into dst (which must hold
// len()), oldest first, and returns the count.
func (r *exampleRing) snapshot(dst []example) int {
	n := uint64(r.len())
	for i := uint64(0); i < n; i++ {
		dst[i] = r.slots[(r.w-n+i)%uint64(len(r.slots))]
	}
	return int(n)
}

// reset drops every retained example (called after a retrain consumes
// the buffer, so the next cycle trains on post-deploy traffic).
func (r *exampleRing) reset() { r.w = 0 }
