// Online labeling. Offline training labels each window with the known
// workload kind that generated it (dataset.go); online there is no
// oracle, so the controller labels buffered windows with the same
// physical signatures the feature analysis identified (features package
// doc): scan direction lives in the delta-sign statistic, write traffic
// in the writeback fraction. The rule is deliberately the crudest thing
// that works — the point of the model is to interpolate and smooth what
// the rule decides per-window — and its agreement with the workload
// oracle is pinned by TestLabelerAgreesWithOracle on simulated windows.
package olearn

import "repro/internal/features"

// Label thresholds. A pure sequential window has mean delta sign ≈ +1
// (reverse ≈ -1) and a mean absolute page delta of ~2 pages; random
// access jumps tens to hundreds of pages per event, and stays above ~40
// even under the largest readahead setting — which matters because
// aggressive readahead inserts its fill pages in ascending order and
// drags a random window's delta SIGN up to ~0.8, so magnitude, not
// direction, is what separates a scan from polluted random traffic. The
// write fraction separates the mixed read/write workload from pure
// reads well before 50/50 because only dirtied pages emit writeback
// tracepoints.
const (
	labelSeqSign    = 0.5  // |mean delta sign| above this is a scan...
	labelRandomJump = 16.0 // ...unless the mean |delta| exceeds this many pages
	labelWriteFrac  = 0.15 // writeback fraction above this is write-mixed
)

// Workload classes, mirroring workload.Kind.Class() for the four
// training kinds.
const (
	classReadSeq     = 0
	classReadRandom  = 1
	classReadReverse = 2
	classReadWrite   = 3
)

// label maps one raw feature window to a training class.
func label(raw features.Vector) int {
	if raw[features.FeatWriteFrac] > labelWriteFrac {
		return classReadWrite
	}
	if raw[features.FeatMeanAbsDelta] > labelRandomJump {
		return classReadRandom
	}
	switch sign := raw[features.FeatDeltaSign]; {
	case sign > labelSeqSign:
		return classReadSeq
	case sign < -labelSeqSign:
		return classReadReverse
	default:
		return classReadRandom
	}
}
