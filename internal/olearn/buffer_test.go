package olearn

import (
	"testing"

	"repro/internal/features"
)

func vec(v float64) features.Vector {
	var x features.Vector
	for i := range x {
		x[i] = v
	}
	return x
}

// TestExampleRing pins keep-latest overflow and oldest-first snapshots.
func TestExampleRing(t *testing.T) {
	r := newExampleRing(4)
	if r.len() != 0 {
		t.Fatalf("empty ring len = %d", r.len())
	}
	for i := 0; i < 3; i++ {
		r.add(vec(float64(i)), i)
	}
	if r.len() != 3 {
		t.Fatalf("len = %d, want 3", r.len())
	}
	dst := make([]example, 4)
	n := r.snapshot(dst)
	if n != 3 || dst[0].raw[0] != 0 || dst[2].raw[0] != 2 {
		t.Fatalf("snapshot = %d examples, first=%v last=%v", n, dst[0].raw[0], dst[2].raw[0])
	}

	// Overflow: 6 total adds into capacity 4 keeps the newest 4.
	for i := 3; i < 6; i++ {
		r.add(vec(float64(i)), i)
	}
	if r.len() != 4 {
		t.Fatalf("len after overflow = %d, want 4", r.len())
	}
	n = r.snapshot(dst)
	if n != 4 {
		t.Fatalf("snapshot after overflow = %d", n)
	}
	for i := 0; i < 4; i++ {
		if want := float64(i + 2); dst[i].raw[0] != want || dst[i].class != int32(i+2) {
			t.Fatalf("slot %d = (%v, %d), want (%v, %d)", i, dst[i].raw[0], dst[i].class, want, i+2)
		}
	}

	r.reset()
	if r.len() != 0 {
		t.Fatalf("len after reset = %d", r.len())
	}
}

// TestExampleRingAddAllocFree pins the sample-sink path at zero
// allocations: it runs inline on the tuner's decision tick.
func TestExampleRingAddAllocFree(t *testing.T) {
	r := newExampleRing(8)
	v := vec(1)
	if allocs := testing.AllocsPerRun(200, func() { r.add(v, 1) }); allocs != 0 {
		t.Fatalf("add allocates %v per op, want 0", allocs)
	}
}

// TestLabelerThresholds pins the decision boundaries of the heuristic
// labeler on synthetic vectors.
func TestLabelerThresholds(t *testing.T) {
	mk := func(sign, writeFrac, mad float64) features.Vector {
		var v features.Vector
		v[features.FeatDeltaSign] = sign
		v[features.FeatWriteFrac] = writeFrac
		v[features.FeatMeanAbsDelta] = mad
		return v
	}
	cases := []struct {
		sign, wf, mad float64
		want          int
	}{
		{0.9, 0, 2, classReadSeq},
		{0.51, 0, 2, classReadSeq},
		{0.5, 0, 2, classReadRandom}, // at the sign boundary: not a scan
		{0, 0, 200, classReadRandom},
		{-0.5, 0, 2, classReadRandom},
		{-0.51, 0, 2, classReadReverse},
		{-1, 0, 2, classReadReverse},
		{0.9, 0.16, 2, classReadWrite}, // write fraction dominates direction
		{0, 0.5, 0.5, classReadWrite},
		{0, 0.15, 200, classReadRandom}, // at the boundary: still a pure read
		// Readahead-polluted random traffic: ascending fill pages push the
		// sign scan-ward, but the jump magnitude gives it away.
		{0.8, 0, 43, classReadRandom},
		{0.9, 0, 16, classReadSeq}, // at the jump boundary: trust the sign
	}
	for _, tc := range cases {
		if got := label(mk(tc.sign, tc.wf, tc.mad)); got != tc.want {
			t.Errorf("label(sign=%v, writeFrac=%v, mad=%v) = %d, want %d", tc.sign, tc.wf, tc.mad, got, tc.want)
		}
	}
}
