package olearn

import (
	"bytes"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/mserve"
	"repro/internal/readahead"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The e2e tests and the labeler-oracle test share one simulated training
// dataset (collection dominates their cost); it is fitted once.
var (
	dsOnce   sync.Once
	dsRaw    []features.Vector
	dsLabels []int
	dsNorm   features.Normalizer
	dsErr    error
)

func dataset(t *testing.T) ([]features.Vector, []int, features.Normalizer) {
	t.Helper()
	if testing.Short() {
		t.Skip("simulated dataset collection")
	}
	dsOnce.Do(func() {
		dsRaw, dsLabels, dsErr = readahead.CollectDataset(
			sim.Config{Profile: blockdev.NVMe(), Keys: 6000, CachePages: 480, Seed: 3},
			readahead.DatasetConfig{SecondsPerRun: 8, RASectors: []int{8, 256}},
		)
		if dsErr == nil {
			dsNorm = features.FitNormalizer(dsRaw)
		}
	})
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return dsRaw, dsLabels, dsNorm
}

// trainModelBytes fits the readahead network on (x, y) and serializes it.
func trainModelBytes(t *testing.T, norm features.Normalizer, x []features.Vector, y []int, seed int64) []byte {
	t.Helper()
	nx := make([]features.Vector, len(x))
	for i, v := range x {
		nx[i] = norm.Apply(v)
	}
	net := readahead.NewModel(seed)
	readahead.TrainModel(net, nx, y, readahead.TrainConfig{Epochs: 80, Seed: seed})
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// loop is one assembled online-learning deployment: the simulated stack,
// a serving control plane, a deployed tuner following it, and the
// controller closing the loop.
type loop struct {
	env   *sim.Env
	srv   *mserve.Server
	dep   *mserve.Deployment[core.Classifier]
	tuner *readahead.Tuner
	ctl   *Controller
}

// contrastPolicy spreads the per-class readahead wide (256 sectors for
// a scan vs 8 for random) so model quality shows up in the page-cache
// hit rate: a scan misclassified as random is starved down to one page
// per miss. The reverse error — polluting uniform random traffic with
// big fills — barely moves the hit rate (any 128 cached pages serve
// uniform access equally well), which is why the e2e scenarios are
// built around scan starvation. Both values sit inside the training
// dataset's readahead range {8, 256}: a setting the model never saw in
// training puts the (clipped) readahead feature out of distribution and
// makes its predictions arbitrary.
var contrastPolicy = readahead.Policy{0: 256, 1: 8, 2: 8, 3: 8}

// newLoop deploys initialModel as version 1 and wires tuner, drift
// monitor, and controller exactly as cmd/kml-served does.
func newLoop(t *testing.T, norm features.Normalizer, initialModel []byte, trig TriggerConfig) *loop {
	t.Helper()
	// 128 cache pages against a ~600-page dataset, so readahead decisions
	// dominate the hit rate instead of the cache covering everything.
	env, err := sim.NewEnv(sim.Config{Profile: blockdev.NVMe(), Keys: 6000, CachePages: 128, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := mserve.OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := mserve.NewServer(mserve.Config{Registry: reg, TraceCapacity: 1024})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Shutdown(2 * time.Second) })
	if _, err := srv.Deploy(mserve.KindNN, "init", initialModel); err != nil {
		t.Fatal(err)
	}
	inst, err := reg.Instance(1)
	if err != nil {
		t.Fatal(err)
	}
	dep := mserve.NewDeployment[core.Classifier](inst, 1)
	tuner, err := readahead.NewDeployedTuner(env.Dev, dep, norm, readahead.TunerConfig{Policy: contrastPolicy})
	if err != nil {
		t.Fatal(err)
	}
	env.Tracer.Register(tuner.Hook())
	tuner.EnableTracing(srv.TraceArena(), env.Cache.HitMissCounts)
	drift := tuner.InstrumentDrift(nil, 8)
	ctl, err := New(Config{
		Server:          srv,
		Drift:           drift,
		Arena:           srv.TraceArena(),
		Norm:            norm,
		TunerDeploy:     dep,
		Trigger:         trig,
		// Small batch so a handful of online examples still forms full
		// minibatches; the keep-latest capacity of 16 means post-shift
		// windows quickly dominate the snapshot a retrain sees.
		Train:           readahead.TrainConfig{Epochs: 120, Batch: 8},
		Capacity:        16,
		MinExamples:     8,
		CanaryWindows:   3,
		BaselineWindows: 4,
		TolerancePM:     25,
	})
	if err != nil {
		t.Fatal(err)
	}
	tuner.SetSampleSink(ctl.AddSample)
	srv.SetLearnSource(ctl.Status)
	tuner.MaybeTick(env.Clk.Now()) // arm the first decision window
	return &loop{env: env, srv: srv, dep: dep, tuner: tuner, ctl: ctl}
}

// run drives n one-second decision windows of kind through the loop,
// stepping the controller after every window and waiting out background
// retrains (real time only — invisible to the virtual clock).
func (l *loop) run(t *testing.T, kind workload.Kind, n int) {
	t.Helper()
	runner := l.env.NewRunner(kind)
	for w := 0; w < n; w++ {
		deadline := l.env.Clk.Now() + 1100*time.Millisecond
		for l.env.Clk.Now() < deadline {
			for i := 0; i < 16 && l.env.Clk.Now() < deadline; i++ {
				if err := runner.Step(); err != nil {
					t.Fatal(err)
				}
			}
			// Drain the collection ring between step batches (MaybeTick
			// flushes every call but decides once per window), so a
			// big-readahead event storm cannot overflow it.
			l.tuner.MaybeTick(l.env.Clk.Now())
		}
		l.ctl.Step()
		if l.ctl.State() == StateRetraining && !l.ctl.Settle(60*time.Second) {
			t.Fatal("retrain did not settle")
		}
	}
}

// TestOnlineLearningEndToEnd is the acceptance path: a model that calls
// everything random access is deployed, the workload shifts from
// readrandom to readseq — which the stuck model starves of readahead —
// drift fires, the controller retrains on live windows in the
// background, deploys through the registry, and the canary-committed
// model measurably recovers the page-cache hit rate.
func TestOnlineLearningEndToEnd(t *testing.T) {
	raw, _, norm := dataset(t)
	// Initial model: trained to answer class 1 (readrandom) for every
	// window — competent during phase 1, maximally wrong after the shift.
	allRandom := make([]int, len(raw))
	for i := range allRandom {
		allRandom[i] = classReadRandom
	}
	bad := trainModelBytes(t, norm, raw, allRandom, 11)

	// Sustain 2: the fire lands one full drift window after the shift, so
	// the example ring has turned over to post-shift windows.
	l := newLoop(t, norm, bad, TriggerConfig{Sustain: 2, Cooldown: 1})

	// Phase 1: random reads. The stuck-at-1 model is right about them,
	// but a pure-random population sits ~2.6z from the mixed training
	// statistics on the jump-magnitude feature, so cycle 1 fires here: a
	// retrain on random-only windows that commits without changing
	// behavior, after which the monitor rebaselines and the trigger
	// re-arms on the now-stable distribution.
	l.run(t, workload.ReadRandom, 32)

	// Phase 2: the shift. The model keeps answering 1, the 8-sector
	// readahead starves the scan (~90% hit rate instead of ~99.8%), the
	// rebaselined monitor sees the feature population jump, and the
	// retrain fires with mixed random+seq examples the heuristic labeler
	// separates.
	l.run(t, workload.ReadSeq, 28)

	st := l.ctl.Status()
	if st.Retrains < 2 {
		t.Fatalf("retrains = %d, want >= 2 (phase-1 readahead drift + phase-2 shift)", st.Retrains)
	}
	if st.Commits < 2 {
		t.Fatalf("commits = %d, want >= 2 (status: %+v)", st.Commits, st)
	}
	if st.Rollbacks != 0 {
		t.Fatalf("rollbacks = %d, want 0", st.Rollbacks)
	}
	if got := l.srv.Deployment().Version(); got != st.LastVersion || got < 3 {
		t.Fatalf("server serving v%d, controller says v%d", got, st.LastVersion)
	}
	if got := l.dep.Version(); got != st.LastVersion {
		t.Fatalf("tuner deployment v%d out of lockstep with v%d", got, st.LastVersion)
	}

	// The committed phase-2 model must beat the polluted pre-deploy
	// baseline on the canary's post-deploy windows — the "did it help"
	// criterion, measured by the same outcome spans that feed kml-trace.
	events := l.ctl.Events()
	for i, e := range events {
		t.Logf("event %d: v%d outcome=%s examples=%d baseline=%d canary=%d shift=%dmz",
			i, e.Version, mserve.RetrainOutcomeName(e.Outcome), e.Examples, e.BaselinePM, e.CanaryPM, e.MaxShiftMZ)
	}
	last := events[len(events)-1]
	if last.Outcome != mserve.RetrainCommitted {
		t.Fatalf("last retrain outcome = %s, want committed", mserve.RetrainOutcomeName(last.Outcome))
	}
	if last.BaselinePM < 0 || last.CanaryPM <= last.BaselinePM {
		t.Fatalf("canary %d pm did not improve on polluted baseline %d pm", last.CanaryPM, last.BaselinePM)
	}

	// The recovered model must actually be driving the device sensibly:
	// scan-phase decisions end at 256 sectors, not the starved 8.
	ds := l.tuner.Decisions()
	final := ds[len(ds)-1]
	if final.Class != classReadSeq || final.Sectors != 256 {
		t.Fatalf("final decision %+v, want class 0 at 256 sectors", final)
	}
	if l.tuner.Dropped() != 0 {
		t.Fatalf("collection ring dropped %d events", l.tuner.Dropped())
	}

	// Steady state under the committed model beats the starved pre-deploy
	// baseline decisively, not just by the canary's early margin.
	h0, m0 := l.env.Cache.HitMissCounts()
	l.run(t, workload.ReadSeq, 6)
	h1, m1 := l.env.Cache.HitMissCounts()
	steadyPM := int64((h1 - h0) * 1000 / ((h1 - h0) + (m1 - m0)))
	t.Logf("steady-state hit rate %d pm vs starved baseline %d pm", steadyPM, last.BaselinePM)
	if steadyPM <= last.BaselinePM+10 {
		t.Fatalf("steady-state hit rate %d pm does not clear starved baseline %d pm", steadyPM, last.BaselinePM)
	}
}

// TestOnlinePoisonRollback injects a regressing retrain (every example
// labeled "random", starving the running scan of readahead) into a
// healthy sequential loop and checks the canary rolls it back within
// its window — while wire clients hammer the serving path through both
// swaps with zero failed inferences.
func TestOnlinePoisonRollback(t *testing.T) {
	raw, labels, norm := dataset(t)
	good := trainModelBytes(t, norm, raw, labels, 12)

	// A small shift budget (0.5z) makes the trigger fire on the healthy
	// workload's natural distance from the mixed training population, so
	// the poisoned cycle starts without needing a workload shift.
	l := newLoop(t, norm, good, TriggerConfig{ShiftBudgetMilliZ: 500, Sustain: 1, Cooldown: 1})
	l.ctl.PoisonRetrain(1)

	// Wire traffic concurrent with the deploy and rollback swaps.
	sock := startWireServer(t, l.srv)
	var stop atomic.Bool
	var served, failed atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := mserve.Dial("unix", sock)
			if err != nil {
				failed.Add(1)
				return
			}
			defer cl.Close()
			cl.SetTimeout(5 * time.Second)
			feats := []float64{0.1, -0.2, 0.3, 0.4}
			for !stop.Load() {
				if _, _, err := cl.Infer(feats); err != nil {
					failed.Add(1)
					return
				}
				served.Add(1)
			}
		}()
	}

	l.run(t, workload.ReadSeq, 28)
	stop.Store(true)
	wg.Wait()

	if n := failed.Load(); n != 0 {
		t.Fatalf("%d wire inferences failed during swaps", n)
	}
	if served.Load() == 0 {
		t.Fatal("wire clients served nothing")
	}

	st := l.ctl.Status()
	if st.Retrains < 1 || st.Deploys < 1 {
		t.Fatalf("poisoned cycle never ran: %+v", st)
	}
	if st.Rollbacks != 1 {
		t.Fatalf("rollbacks = %d, want exactly 1 (status: %+v)", st.Rollbacks, st)
	}
	events := l.ctl.Events()
	var rb *mserve.RetrainEvent
	for i := range events {
		if events[i].Outcome == mserve.RetrainRolledBack {
			rb = &events[i]
		}
	}
	if rb == nil {
		t.Fatal("no rolled-back retrain event recorded")
	}
	if rb.CanaryPM >= rb.BaselinePM-25 {
		t.Fatalf("rollback event canary %d pm vs baseline %d pm is not a tolerance breach", rb.CanaryPM, rb.BaselinePM)
	}

	// Both planes are back on the good version.
	if got := l.srv.Deployment().Version(); got != 1 {
		t.Fatalf("server serving v%d after rollback, want v1", got)
	}
	if got := l.dep.Version(); got != 1 {
		t.Fatalf("tuner deployment v%d after rollback, want v1", got)
	}
	// And the device is back out of the starved regime.
	ds := l.tuner.Decisions()
	final := ds[len(ds)-1]
	if final.Sectors != 256 {
		t.Fatalf("final decision %+v, want 256 sectors after recovery", final)
	}

	// The wire snapshot agrees with the in-process one.
	cl, err := mserve.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ws, err := cl.LearnStatus()
	if err != nil {
		t.Fatal(err)
	}
	if ws.Rollbacks != st.Rollbacks || ws.Retrains != st.Retrains {
		t.Fatalf("wire status %+v disagrees with controller %+v", ws, st)
	}
	if len(ws.Events) == 0 {
		t.Fatal("wire status carries no retrain events")
	}
}

// startWireServer serves l.srv on a unix socket torn down with the test.
func startWireServer(t *testing.T, srv *mserve.Server) string {
	t.Helper()
	sock := t.TempDir() + "/olearn.sock"
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown(2 * time.Second)
		<-done
	})
	return sock
}
