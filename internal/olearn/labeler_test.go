package olearn

import "testing"

// TestLabelerAgreesWithOracle runs the four training workloads through
// the real simulated stack (the same collection path offline training
// uses) and checks the heuristic online labeler recovers the workload
// oracle's class on the overwhelming majority of windows. Retraining
// quality is bounded by this agreement, so it is pinned per class, not
// just in aggregate.
func TestLabelerAgreesWithOracle(t *testing.T) {
	raw, labels, _ := dataset(t)
	if len(raw) == 0 {
		t.Fatal("no windows collected")
	}
	perClassTotal := map[int]int{}
	perClassAgree := map[int]int{}
	for i, v := range raw {
		perClassTotal[labels[i]]++
		if label(v) == labels[i] {
			perClassAgree[labels[i]]++
		}
	}
	for class, total := range perClassTotal {
		agree := perClassAgree[class]
		frac := float64(agree) / float64(total)
		t.Logf("class %d: %d/%d windows agree (%.0f%%)", class, agree, total, 100*frac)
		if frac < 0.9 {
			t.Errorf("class %d: labeler agrees on only %d/%d windows", class, agree, total)
		}
	}
	if len(perClassTotal) != 4 {
		t.Fatalf("oracle produced %d classes, want 4", len(perClassTotal))
	}
}
