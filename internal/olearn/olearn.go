// Package olearn closes the loop the paper frames as KML's continuous
// lifecycle: train in user space, deploy live, watch for staleness,
// retrain, redeploy — with the storage system's own reward signal (the
// page-cache hit rate the dtrace outcome spans attribute to each
// decision) guarding every deployment.
//
// The controller is a state machine:
//
//	Idle → Collecting → Retraining → Canary → Committed ─┐
//	          ▲  ▲                      └──→ RolledBack ─┤
//	          │  └───────────────────────────────────────┘
//	          └── (cooldown + drift rebaseline)
//
//   - Collecting: the co-located tuner feeds one raw feature window per
//     decision into a bounded keep-latest example ring (AddSample), and
//     the controller polls the dtrace arena for outcome spans. When the
//     DriftMonitor completes a window, its max shift / churn feed the
//     hysteresis Trigger.
//   - Retraining: on a trigger fire with enough buffered examples, a
//     background goroutine labels the examples heuristically, normalizes
//     them with the FROZEN deployed normalizer, trains a fresh network,
//     and serializes it. The serve loop and the decision tick never
//     block on this.
//   - Canary: the new version is deployed through the registry's atomic
//     deploy; the pre-deploy hit-rate baseline (mean of recent outcome
//     windows) is frozen; the next CanaryWindows outcome spans produced
//     BY THE NEW VERSION are averaged against it.
//   - Committed / RolledBack: canary mean within tolerance commits the
//     version; a regression beyond tolerance rolls back via the
//     registry, restoring the previous version for the server and the
//     tuner in one swap each. Either way the drift monitor rebaselines
//     (the verdict consumed its reference population) and the machine
//     returns to Collecting.
//
// Everything observable is exported: telemetry counters/gauges under
// olearn_*, a flight recorder of retrain events, and the MsgLearnStatus
// wire snapshot kml-served -status and kml-trace -learn render.
package olearn

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dtrace"
	"repro/internal/features"
	"repro/internal/mserve"
	"repro/internal/readahead"
	"repro/internal/telemetry"
)

// State is the controller's state-machine position. Values mirror the
// wire constants in mserve/learnstatus.go.
type State uint8

// Controller states.
const (
	StateIdle       = State(mserve.LearnIdle)
	StateCollecting = State(mserve.LearnCollecting)
	StateRetraining = State(mserve.LearnRetraining)
	StateCanary     = State(mserve.LearnCanary)
	StateCommitted  = State(mserve.LearnCommitted)
	StateRolledBack = State(mserve.LearnRolledBack)
)

// String renders a state for humans.
func (s State) String() string { return mserve.LearnStateName(uint8(s)) }

// Config parameterizes a Controller.
type Config struct {
	// Server is the serving control plane the controller deploys through
	// and whose registry it reads artifacts back from. Required.
	Server *mserve.Server
	// Drift is the monitor watched for retrain pressure — normally the
	// co-located tuner's training-stats-baselined monitor. Required.
	Drift *dtrace.DriftMonitor
	// Arena is the trace pool outcome spans are polled from — normally
	// the server's arena, which the tuner also records into. Required.
	Arena *dtrace.Arena
	// Norm is the frozen normalizer retraining standardizes examples
	// with, exactly as the original training run did.
	Norm features.Normalizer
	// TunerDeploy, when set, is a co-located tuner's hot-swap handle the
	// controller keeps in lockstep with the server: every deploy and
	// rollback swaps a freshly instantiated classifier into it.
	TunerDeploy *mserve.Deployment[core.Classifier]
	// Trigger tunes the drift→retrain decision rule.
	Trigger TriggerConfig
	// Train tunes the background retraining run (paper defaults).
	Train readahead.TrainConfig
	// ModelName names deployed versions ("<ModelName>-r<N>"); "" means
	// "olearn".
	ModelName string
	// Capacity sizes the example ring; 0 means 512.
	Capacity int
	// MinExamples is the fewest buffered examples a retrain will run
	// with; 0 means 64.
	MinExamples int
	// CanaryWindows is how many new-version outcome windows the canary
	// averages before judging; 0 means 4.
	CanaryWindows int
	// BaselineWindows is how many recent outcome windows form the
	// pre-deploy baseline; 0 means 8.
	BaselineWindows int
	// TolerancePM rolls back when canary mean < baseline − tolerance
	// (hit rate per-mille); 0 means 25.
	TolerancePM int64
	// Metrics, when set, registers olearn_* instrumentation.
	Metrics *telemetry.Registry
	// FlightN sizes the retrain-event flight recorder; 0 means 32.
	FlightN int
}

func (c Config) withDefaults() Config {
	if c.ModelName == "" {
		c.ModelName = "olearn"
	}
	if c.Capacity == 0 {
		c.Capacity = 512
	}
	if c.MinExamples == 0 {
		c.MinExamples = 64
	}
	if c.CanaryWindows == 0 {
		c.CanaryWindows = 4
	}
	if c.BaselineWindows == 0 {
		c.BaselineWindows = 8
	}
	if c.TolerancePM == 0 {
		c.TolerancePM = 25
	}
	if c.FlightN == 0 {
		c.FlightN = 32
	}
	return c
}

// outcomeDepth is how many recent outcome windows the controller
// retains for baseline/canary math.
const outcomeDepth = 64

// pollBatch is how many traces one arena poll copies at a time.
const pollBatch = 16

// outcomeSample is one decision's attributed outcome: the hit rate of
// its outcome window and the model version that made the call.
type outcomeSample struct {
	version uint64
	ratePM  int64
}

// retrainResult is what the background goroutine hands back to Step.
type retrainResult struct {
	model    []byte
	examples int
	dur      time.Duration
	poisoned bool
	err      error
}

// Controller runs the online-learning loop. AddSample is safe to call
// concurrently with Step; both are cheap. Retraining happens on a
// private goroutine.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	state    State
	examples *exampleRing
	scratch  []example // snapshot buffer handed to the retrain goroutine

	cursor   uint64 // arena read cursor
	traceBuf []dtrace.Trace

	outcomes [outcomeDepth]outcomeSample
	outW     uint64

	lastWindows  uint64 // drift windows already fed to the trigger
	trigger      *Trigger
	fireShiftMZ  int64 // signal captured at the last fire
	fireChurnPM  int64
	pending      chan retrainResult
	retrainSeq   uint64
	poisonSeq    uint64 // 1-based retrain cycle to poison; 0 = none
	prevVersion  uint64 // version serving before the canary deploy
	canaryVer    uint64
	baselinePM   int64
	canarySum    int64
	canaryN      int
	lastOutcome  uint8 // mserve.RetrainPending.. of the last finished cycle
	lastEventIdx int   // index of the in-flight cycle's flight entry (-1 none)

	retrains  uint64
	deploys   uint64
	rollbacks uint64
	commits   uint64
	failures  uint64
	lastVer   uint64

	flight *telemetry.FlightRecorder[mserve.RetrainEvent]
	events []mserve.RetrainEvent // authoritative history (flight mirrors it)

	// Optional telemetry.
	cRetrains, cDeploys, cRollbacks, cCommits, cFires, cFailures *telemetry.Counter
	gState, gExamples, gBaseline, gCanary, gLastVer              *telemetry.Gauge
	hRetrainNs                                                   *telemetry.Histogram

	loopStop chan struct{}
	loopDone chan struct{}
}

// New builds a controller. It starts in StateIdle; the first Step moves
// it to Collecting.
func New(cfg Config) (*Controller, error) {
	if cfg.Server == nil || cfg.Drift == nil || cfg.Arena == nil {
		return nil, errors.New("olearn: Server, Drift, and Arena are required")
	}
	cfg = cfg.withDefaults()
	c := &Controller{
		cfg:          cfg,
		examples:     newExampleRing(cfg.Capacity),
		scratch:      make([]example, cfg.Capacity),
		traceBuf:     make([]dtrace.Trace, pollBatch),
		trigger:      NewTrigger(cfg.Trigger),
		baselinePM:   -1,
		lastEventIdx: -1,
		flight:       telemetry.NewFlightRecorder[mserve.RetrainEvent](cfg.FlightN),
	}
	c.cursor = cfg.Arena.Cursor() // only outcomes from here on are ours
	if reg := cfg.Metrics; reg != nil {
		c.cRetrains = reg.Counter("olearn_retrains")
		c.cDeploys = reg.Counter("olearn_deploys")
		c.cRollbacks = reg.Counter("olearn_rollbacks")
		c.cCommits = reg.Counter("olearn_commits")
		c.cFires = reg.Counter("olearn_trigger_fires")
		c.cFailures = reg.Counter("olearn_retrain_failures")
		c.gState = reg.Gauge("olearn_state")
		c.gExamples = reg.Gauge("olearn_examples")
		c.gBaseline = reg.Gauge("olearn_baseline_pm")
		c.gCanary = reg.Gauge("olearn_canary_pm")
		c.gLastVer = reg.Gauge("olearn_last_version")
		c.hRetrainNs = reg.Histogram("olearn_retrain_ns")
		c.gBaseline.Set(-1)
		c.gCanary.Set(-1)
	}
	return c, nil
}

// AddSample buffers one raw decision window — the readahead.SampleSink
// the co-located tuner calls once per decision. Alloc-free: one ring
// slot copy and two atomic gauge stores under the controller lock.
//
//kml:hotpath
func (c *Controller) AddSample(raw features.Vector, class int, events uint64) {
	c.mu.Lock()
	c.examples.add(raw, class)
	n := c.examples.len()
	c.mu.Unlock()
	if c.gExamples != nil {
		c.gExamples.Set(int64(n))
	}
}

// PoisonRetrain arranges for retrain cycle seq (1-based) to deploy a
// deliberately mislabeled model: every buffered example is labeled as
// random access, so the deployed network starves whatever scan is
// actually running of readahead. This is the fault-injection hook the
// online smoke test uses to prove the canary rolls a bad model back; it
// has no place on any production path.
func (c *Controller) PoisonRetrain(seq uint64) {
	c.mu.Lock()
	c.poisonSeq = seq
	c.mu.Unlock()
}

// Step advances the controller: polls the arena for new outcome spans,
// feeds completed drift windows to the trigger, launches or harvests a
// background retrain, and judges an open canary. Call it periodically —
// the simulation loop calls it once per decision window; Start runs it
// on a ticker for daemon use. Step never blocks on training.
func (c *Controller) Step() {
	c.pollOutcomes()
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.state {
	case StateIdle:
		c.state = StateCollecting
	case StateCommitted, StateRolledBack:
		// Transient terminal states: visible for one Step, then back to
		// collecting under the rebaselined monitor.
		c.state = StateCollecting
	case StateCollecting:
		c.stepCollecting()
	case StateRetraining:
		c.stepRetraining()
	case StateCanary:
		c.stepCanary()
	}
	if c.gState != nil {
		c.gState.Set(int64(c.state))
	}
}

// pollOutcomes drains traces recorded since the last poll and extracts
// each completed decision's outcome: the hit rate its outcome span
// attributed (Aux, per-mille) and the model version its infer span
// carries (Aux). Server request traces have no outcome span and are
// skipped. The buffers are preallocated, so polling is alloc-free.
//
//kml:hotpath
func (c *Controller) pollOutcomes() {
	c.mu.Lock()
	for {
		n, cur := c.cfg.Arena.ReadNewer(c.cursor, c.traceBuf)
		c.cursor = cur
		if n == 0 {
			c.mu.Unlock()
			return
		}
		for i := 0; i < n; i++ {
			tr := &c.traceBuf[i]
			ratePM := int64(-1)
			version := int64(0)
			seen := false
			for s := 0; s < int(tr.N); s++ {
				switch tr.Spans[s].Stage {
				case dtrace.StageOutcome:
					ratePM = tr.Spans[s].Aux
					seen = true
				case dtrace.StageInfer:
					version = tr.Spans[s].Aux
				}
			}
			if !seen || ratePM < 0 {
				continue // not a decision trace, or an unattributed window
			}
			c.outcomes[c.outW%outcomeDepth] = outcomeSample{version: uint64(version), ratePM: ratePM}
			c.outW++
			if c.state == StateCanary {
				c.accountCanaryLocked(uint64(version), ratePM)
			}
		}
	}
}

// accountCanaryLocked folds one outcome sample into an open canary if it
// was produced by the canary version.
//
//kml:hotpath
func (c *Controller) accountCanaryLocked(version uint64, ratePM int64) {
	if version != c.canaryVer {
		return
	}
	c.canarySum += ratePM
	c.canaryN++
	if c.gCanary != nil {
		c.gCanary.Set(c.canarySum / int64(c.canaryN))
	}
}

// baselineLocked averages the most recent BaselineWindows outcome
// windows — the pre-deploy reward level a canary is judged against.
// Returns -1 when no outcome has been attributed yet.
func (c *Controller) baselineLocked() int64 {
	n := c.outW
	if n > uint64(c.cfg.BaselineWindows) {
		n = uint64(c.cfg.BaselineWindows)
	}
	if n == 0 {
		return -1
	}
	var sum int64
	for i := uint64(0); i < n; i++ {
		sum += c.outcomes[(c.outW-1-i)%outcomeDepth].ratePM
	}
	return sum / int64(n)
}

// stepCollecting feeds newly completed drift windows to the trigger and
// launches a retrain when it fires with enough examples buffered.
func (c *Controller) stepCollecting() {
	r := c.cfg.Drift.Report()
	if r.Windows == c.lastWindows || !r.BaselineReady {
		return
	}
	c.lastWindows = r.Windows
	fired := c.trigger.Observe(int64(r.MaxShift*1000), r.ChurnPM)
	if !fired {
		return
	}
	if c.cFires != nil {
		c.cFires.Inc()
	}
	if c.examples.len() < c.cfg.MinExamples {
		return // fire lapses; the trigger's cooldown applies regardless
	}
	c.fireShiftMZ, c.fireChurnPM = int64(r.MaxShift*1000), r.ChurnPM
	n := c.examples.snapshot(c.scratch)
	c.examples.reset()
	c.retrainSeq++
	c.retrains++
	if c.cRetrains != nil {
		c.cRetrains.Inc()
	}
	poisoned := c.poisonSeq != 0 && c.retrainSeq == c.poisonSeq
	c.pending = make(chan retrainResult, 1)
	c.state = StateRetraining
	go c.retrain(c.pending, append([]example(nil), c.scratch[:n]...), c.retrainSeq, poisoned)
}

// retrain is the background training goroutine: label, normalize with
// the frozen normalizer, fit a fresh network, serialize. It never
// touches controller state; the result goes back through the channel
// Step harvests.
func (c *Controller) retrain(done chan<- retrainResult, snap []example, seq uint64, poisoned bool) {
	start := time.Now()
	xs := make([]features.Vector, len(snap))
	ys := make([]int, len(snap))
	for i, e := range snap {
		xs[i] = c.cfg.Norm.Apply(e.raw)
		if poisoned {
			ys[i] = classReadRandom
		} else {
			ys[i] = label(e.raw)
		}
	}
	cfg := c.cfg.Train
	cfg.Seed += int64(seq) // fresh init per cycle, still deterministic
	// TrainModel runs only full minibatches; clamp the batch so a small
	// online snapshot still trains instead of silently fitting nothing.
	batch := cfg.Batch
	if batch == 0 {
		batch = 16
	}
	if batch > len(snap) {
		cfg.Batch = len(snap)
	}
	net := readahead.NewModel(cfg.Seed)
	readahead.TrainModel(net, xs, ys, cfg)
	var buf bytes.Buffer
	err := net.Save(&buf)
	done <- retrainResult{
		model:    buf.Bytes(),
		examples: len(snap),
		dur:      time.Since(start),
		poisoned: poisoned,
		err:      err,
	}
}

// stepRetraining harvests a finished background retrain and deploys it,
// opening the canary.
func (c *Controller) stepRetraining() {
	var res retrainResult
	select {
	case res = <-c.pending:
	default:
		return // still training; never block
	}
	if c.hRetrainNs != nil {
		c.hRetrainNs.Observe(res.dur.Nanoseconds())
	}
	if res.err != nil {
		c.failRetrainLocked(res, fmt.Errorf("serialize: %w", res.err))
		return
	}
	c.prevVersion = c.cfg.Server.Deployment().Version()
	name := fmt.Sprintf("%s-r%d", c.cfg.ModelName, c.retrainSeq)
	v, err := c.cfg.Server.Deploy(mserve.KindNN, name, res.model)
	if err != nil {
		c.failRetrainLocked(res, fmt.Errorf("deploy: %w", err))
		return
	}
	if err := c.syncTunerLocked(v.Number); err != nil {
		// The server is serving the new version but the tuner cannot:
		// roll the server back rather than split-brain the two.
		_, _ = c.cfg.Server.Rollback()
		c.failRetrainLocked(res, fmt.Errorf("instantiate v%d: %w", v.Number, err))
		return
	}
	c.deploys++
	c.lastVer = v.Number
	if c.cDeploys != nil {
		c.cDeploys.Inc()
	}
	if c.gLastVer != nil {
		c.gLastVer.Set(int64(v.Number))
	}
	c.baselinePM = c.baselineLocked()
	if c.gBaseline != nil {
		c.gBaseline.Set(c.baselinePM)
	}
	c.canaryVer = v.Number
	c.canarySum, c.canaryN = 0, 0
	if c.gCanary != nil {
		c.gCanary.Set(-1)
	}
	c.lastEventIdx = len(c.events)
	c.recordEventLocked(mserve.RetrainEvent{
		TimeNanos:     uint64(time.Now().UnixNano()),
		Version:       v.Number,
		DurationNanos: uint64(res.dur.Nanoseconds()),
		Examples:      uint32(res.examples),
		Outcome:       mserve.RetrainPending,
		BaselinePM:    c.baselinePM,
		CanaryPM:      -1,
		MaxShiftMZ:    c.fireShiftMZ,
		ChurnPM:       c.fireChurnPM,
	})
	c.state = StateCanary
}

// failRetrainLocked records a cycle that produced nothing deployable.
func (c *Controller) failRetrainLocked(res retrainResult, err error) {
	c.failures++
	if c.cFailures != nil {
		c.cFailures.Inc()
	}
	c.lastEventIdx = -1
	c.recordEventLocked(mserve.RetrainEvent{
		TimeNanos:     uint64(time.Now().UnixNano()),
		DurationNanos: uint64(res.dur.Nanoseconds()),
		Examples:      uint32(res.examples),
		Outcome:       mserve.RetrainFailed,
		BaselinePM:    c.baselineLocked(),
		CanaryPM:      -1,
		MaxShiftMZ:    c.fireShiftMZ,
		ChurnPM:       c.fireChurnPM,
	})
	c.state = StateCollecting
	_ = err // the event records the failure; callers read counters
}

// stepCanary judges a full canary window: commit within tolerance, roll
// back beyond it.
func (c *Controller) stepCanary() {
	if c.canaryN < c.cfg.CanaryWindows {
		return
	}
	canaryPM := c.canarySum / int64(c.canaryN)
	regressed := c.baselinePM >= 0 && canaryPM < c.baselinePM-c.cfg.TolerancePM
	if regressed {
		if _, err := c.cfg.Server.Rollback(); err == nil {
			_ = c.syncTunerLocked(c.cfg.Server.Deployment().Version())
		}
		c.rollbacks++
		if c.cRollbacks != nil {
			c.cRollbacks.Inc()
		}
		c.lastOutcome = mserve.RetrainRolledBack
		c.state = StateRolledBack
	} else {
		c.commits++
		if c.cCommits != nil {
			c.cCommits.Inc()
		}
		c.lastOutcome = mserve.RetrainCommitted
		c.state = StateCommitted
	}
	if c.lastEventIdx >= 0 && c.lastEventIdx < len(c.events) {
		c.events[c.lastEventIdx].Outcome = c.lastOutcome
		c.events[c.lastEventIdx].CanaryPM = canaryPM
		c.rebuildFlightLocked()
	}
	c.lastEventIdx = -1
	// The canary verdict consumed the drift baseline either way: after a
	// commit the model embodies the new distribution; after a rollback a
	// persistent shift must re-establish itself against fresh statistics
	// (plus the trigger's cooldown) before firing again.
	c.cfg.Drift.Rebaseline()
	c.lastWindows = 0
}

// syncTunerLocked points the co-located tuner's deployment handle at
// version v's freshly instantiated classifier.
func (c *Controller) syncTunerLocked(v uint64) error {
	if c.cfg.TunerDeploy == nil {
		return nil
	}
	art, err := c.cfg.Server.Registry().Artifact(v)
	if err != nil {
		return err
	}
	inst, err := art.Instantiate()
	if err != nil {
		return err
	}
	c.cfg.TunerDeploy.Swap(inst, v)
	return nil
}

// recordEventLocked appends to the authoritative history and mirrors it
// into the flight recorder.
func (c *Controller) recordEventLocked(e mserve.RetrainEvent) {
	c.events = append(c.events, e)
	if len(c.events) > mserve.MaxRetrainEvents {
		c.events = c.events[len(c.events)-mserve.MaxRetrainEvents:]
	}
	c.flight.Record(e)
}

// rebuildFlightLocked re-records the history after an in-place outcome
// update (the flight recorder has no update-in-place).
func (c *Controller) rebuildFlightLocked() {
	c.flight = telemetry.NewFlightRecorder[mserve.RetrainEvent](c.cfg.FlightN)
	for _, e := range c.events {
		c.flight.Record(e)
	}
}

// State returns the controller's current state.
func (c *Controller) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Status snapshots the controller in MsgLearnStatus form — the function
// kml-served registers via Server.SetLearnSource.
func (c *Controller) Status() mserve.LearnStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := mserve.LearnStatus{
		State:        uint8(c.state),
		Retrains:     c.retrains,
		Deploys:      c.deploys,
		Rollbacks:    c.rollbacks,
		Commits:      c.commits,
		TriggerFires: c.trigger.Fires(),
		Examples:     uint64(c.examples.len()),
		LastVersion:  c.lastVer,
		BaselinePM:   c.baselinePM,
		CanaryPM:     -1,
	}
	if c.canaryN > 0 {
		st.CanaryPM = c.canarySum / int64(c.canaryN)
	}
	st.Events = append([]mserve.RetrainEvent(nil), c.events...)
	return st
}

// Events returns the retained retrain history, oldest first.
func (c *Controller) Events() []mserve.RetrainEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]mserve.RetrainEvent(nil), c.events...)
}

// Settle drives Step until the controller leaves StateRetraining (the
// only state whose exit depends on a background goroutine), or the
// timeout elapses. The simulation driver calls it after each decision
// window: on the virtual clock, real milliseconds spent waiting for the
// trainer are invisible to measured results, so the loop stays
// deterministic while training stays off the decision path.
func (c *Controller) Settle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		c.Step()
		if c.State() != StateRetraining {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// Start runs Step on a ticker until Stop — the daemon-mode driver.
func (c *Controller) Start(interval time.Duration) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	c.loopStop = make(chan struct{})
	c.loopDone = make(chan struct{})
	go func() {
		defer close(c.loopDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-c.loopStop:
				return
			case <-t.C:
				c.Step()
			}
		}
	}()
}

// Stop halts the Start loop and waits for any in-flight retrain to be
// harvested or abandoned (the goroutine's channel send is buffered, so
// it always terminates).
func (c *Controller) Stop() {
	if c.loopStop == nil {
		return
	}
	close(c.loopStop)
	<-c.loopDone
	c.loopStop, c.loopDone = nil, nil
}
