package olearn

import "testing"

// obs is one drift-window observation and the expected trigger answer.
type obs struct {
	shiftMZ int64
	churnPM int64
	fire    bool
}

// TestTriggerTable drives the trigger through scripted window sequences
// and checks it fires exactly when the rule says — at the budget, not
// one milli-Z under it — including sustain, cooldown, and the re-arm
// hysteresis band.
func TestTriggerTable(t *testing.T) {
	cases := []struct {
		name string
		cfg  TriggerConfig
		seq  []obs
	}{
		{
			name: "fires exactly at budget, not below",
			cfg:  TriggerConfig{ShiftBudgetMilliZ: 2000},
			seq: []obs{
				{shiftMZ: 0, fire: false},
				{shiftMZ: 1999, fire: false}, // one under budget: no fire
				{shiftMZ: 2000, fire: true},  // exactly at budget: fire
			},
		},
		{
			name: "sustain requires consecutive over-budget windows",
			cfg:  TriggerConfig{ShiftBudgetMilliZ: 1000, Sustain: 3},
			seq: []obs{
				{shiftMZ: 1500, fire: false}, // 1 of 3
				{shiftMZ: 1500, fire: false}, // 2 of 3
				{shiftMZ: 900, fire: false},  // dip resets the run
				{shiftMZ: 1500, fire: false}, // 1 of 3
				{shiftMZ: 1500, fire: false}, // 2 of 3
				{shiftMZ: 1500, fire: true},  // 3 of 3
			},
		},
		{
			name: "cooldown blocks re-fire even after recovery",
			cfg:  TriggerConfig{ShiftBudgetMilliZ: 1000, Cooldown: 3},
			seq: []obs{
				{shiftMZ: 1200, fire: true},
				{shiftMZ: 100, fire: false}, // below re-arm but window 1 < cooldown
				{shiftMZ: 100, fire: false}, // window 2 < cooldown
				{shiftMZ: 2000, fire: false}, // window 3: re-arm check fails (over budget)
				{shiftMZ: 100, fire: false},  // window 4: re-arms (quiet + past cooldown)
				{shiftMZ: 1000, fire: true},  // armed again: fires at budget
			},
		},
		{
			name: "hysteresis: budget-epsilon after a fire never re-arms",
			cfg:  TriggerConfig{ShiftBudgetMilliZ: 1000, Cooldown: 1},
			seq: []obs{
				{shiftMZ: 1000, fire: true},
				// 999 is over the 80% re-arm level (800), so the trigger
				// stays disarmed no matter how long this persists.
				{shiftMZ: 999, fire: false},
				{shiftMZ: 999, fire: false},
				{shiftMZ: 999, fire: false},
				{shiftMZ: 800, fire: false}, // still AT the re-arm level: no
				{shiftMZ: 799, fire: false}, // below it: re-arms...
				{shiftMZ: 1500, fire: true}, // ...and fires on fresh drift
			},
		},
		{
			name: "churn signal fires independently of shift",
			cfg:  TriggerConfig{ShiftBudgetMilliZ: 2000, ChurnBudgetPM: 300},
			seq: []obs{
				{shiftMZ: 100, churnPM: 299, fire: false},
				{shiftMZ: 100, churnPM: 300, fire: true}, // churn at budget
			},
		},
		{
			name: "zero config inherits dtrace default budget",
			cfg:  TriggerConfig{},
			seq: []obs{
				{shiftMZ: 1999, fire: false},
				{shiftMZ: 2000, fire: true},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := NewTrigger(tc.cfg)
			if !tr.Armed() {
				t.Fatal("new trigger is not armed")
			}
			for i, o := range tc.seq {
				got := tr.Observe(o.shiftMZ, o.churnPM)
				if got != o.fire {
					t.Fatalf("window %d (shift=%d churn=%d): fire=%v, want %v",
						i, o.shiftMZ, o.churnPM, got, o.fire)
				}
			}
		})
	}
}

// TestTriggerChurnBlocksRearm pins the asymmetric re-arm rule: after a
// churn-driven fire, a quiet shift alone must not re-arm while churn
// stays inside the hysteresis band.
func TestTriggerChurnBlocksRearm(t *testing.T) {
	tr := NewTrigger(TriggerConfig{ShiftBudgetMilliZ: 1000, ChurnBudgetPM: 500, Cooldown: 1})
	if !tr.Observe(0, 500) {
		t.Fatal("churn at budget did not fire")
	}
	// Shift is silent, churn sits at 80% of budget (the re-arm level):
	// the trigger must stay disarmed.
	for i := 0; i < 5; i++ {
		if tr.Observe(0, 400) {
			t.Fatalf("window %d fired while disarmed", i)
		}
		if tr.Armed() {
			t.Fatalf("window %d re-armed with churn at the re-arm level", i)
		}
	}
	if tr.Observe(0, 399) { // drops below: re-arms, no fire yet
		t.Fatal("re-arm window fired")
	}
	if !tr.Armed() {
		t.Fatal("trigger did not re-arm after churn recovered")
	}
	if !tr.Observe(0, 500) {
		t.Fatal("re-armed trigger did not fire on fresh churn")
	}
	if got := tr.Fires(); got != 2 {
		t.Fatalf("Fires() = %d, want 2", got)
	}
}

// TestTriggerFireCountAndSignal checks the accessors the controller's
// status path reads.
func TestTriggerFireCountAndSignal(t *testing.T) {
	tr := NewTrigger(TriggerConfig{ShiftBudgetMilliZ: 100, Cooldown: 1})
	tr.Observe(250, 7)
	if s, c := tr.LastSignal(); s != 250 || c != 7 {
		t.Fatalf("LastSignal() = (%d, %d), want (250, 7)", s, c)
	}
	if tr.Fires() != 1 {
		t.Fatalf("Fires() = %d, want 1", tr.Fires())
	}
}
