// Package workload implements the six db_bench workloads the paper
// evaluates (§4): readseq, readrandom, readreverse, readrandomwriterandom,
// updaterandom, and mixgraph (the Facebook-trace-derived mixed workload of
// Cao et al., FAST '20). Each workload drives the simulated LSM store one
// operation at a time and charges a fixed CPU cost per operation to the
// virtual clock, so throughput is ops per virtual second exactly as
// db_bench reports ops/sec.
//
// The paper trains its classifier on the first four workloads and shows
// generalization on updaterandom and mixgraph, which the harness
// reproduces by holding those two out of the training set.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/clock"
	"repro/internal/kmath"
	"repro/internal/kvstore"
)

// Kind selects a workload.
type Kind int

// The six benchmark workloads, in the paper's Table 2 order.
const (
	ReadSeq Kind = iota
	ReadRandom
	ReadReverse
	ReadRandomWriteRandom
	UpdateRandom
	MixGraph
	numKinds
)

// TrainingKinds are the four workloads the paper trains on ("we trained on
// the data we collected by running only four workloads").
func TrainingKinds() []Kind {
	return []Kind{ReadSeq, ReadRandom, ReadReverse, ReadRandomWriteRandom}
}

// AllKinds returns every workload in Table 2 order.
func AllKinds() []Kind {
	return []Kind{ReadSeq, ReadRandom, ReadReverse, ReadRandomWriteRandom, UpdateRandom, MixGraph}
}

// String returns the db_bench benchmark name.
func (k Kind) String() string {
	switch k {
	case ReadSeq:
		return "readseq"
	case ReadRandom:
		return "readrandom"
	case ReadReverse:
		return "readreverse"
	case ReadRandomWriteRandom:
		return "readrandomwriterandom"
	case UpdateRandom:
		return "updaterandom"
	case MixGraph:
		return "mixgraph"
	default:
		return fmt.Sprintf("workload(%d)", int(k))
	}
}

// Class returns the classifier label for a workload. The paper's model has
// four classes (the training workloads); the policy maps unseen workloads
// onto whichever class the classifier predicts from their access pattern.
func (k Kind) Class() int {
	switch k {
	case ReadSeq:
		return 0
	case ReadRandom:
		return 1
	case ReadReverse:
		return 2
	case ReadRandomWriteRandom:
		return 3
	default:
		return -1 // unseen: no ground-truth class
	}
}

// NumClasses is the classifier output dimension.
const NumClasses = 4

// Config parameterizes a workload run.
type Config struct {
	// Keys is the number of distinct keys loaded by Fill.
	Keys int
	// ValueSize is the value payload size in bytes.
	ValueSize int
	// CPUGet is the serialized software cost of a point lookup. Because
	// the runner models the aggregate of a multi-threaded db_bench client
	// (see blockdev's saturated-queue model), this is the per-op CPU time
	// divided across client threads, so it is small.
	CPUGet time.Duration
	// CPUScanStep is the software cost of one iterator advance.
	CPUScanStep time.Duration
	// CPUPut is the software cost of a write (WAL encode + memtable insert).
	CPUPut time.Duration
	// ReadPercent is the read share for readrandomwriterandom; 0 means 90
	// (the db_bench default).
	ReadPercent int
	// ScanLength is the mixgraph range-scan length; 0 means 50.
	ScanLength int
	// Seed drives all randomness.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Keys == 0 {
		c.Keys = 100_000
	}
	if c.ValueSize == 0 {
		c.ValueSize = 400
	}
	if c.CPUGet == 0 {
		c.CPUGet = 2 * time.Microsecond
	}
	if c.CPUScanStep == 0 {
		c.CPUScanStep = time.Microsecond
	}
	if c.CPUPut == 0 {
		c.CPUPut = 2 * time.Microsecond
	}
	if c.ReadPercent == 0 {
		c.ReadPercent = 90
	}
	if c.ScanLength == 0 {
		c.ScanLength = 50
	}
	return c
}

// Key formats key i in the fixed-width db_bench style.
func Key(i int) []byte { return []byte(fmt.Sprintf("key%012d", i)) }

// Value builds a deterministic value of the configured size.
func Value(cfg Config, i int) []byte {
	v := make([]byte, cfg.ValueSize)
	pattern := fmt.Sprintf("v%011d-", i)
	for off := 0; off < len(v); off += len(pattern) {
		copy(v[off:], pattern)
	}
	return v
}

// Fill loads the key space sequentially (db_bench fillseq) and compacts to
// a steady initial state.
func Fill(db *kvstore.DB, cfg Config) error {
	cfg = cfg.withDefaults()
	for i := 0; i < cfg.Keys; i++ {
		if err := db.Put(Key(i), Value(cfg, i)); err != nil {
			return err
		}
	}
	if err := db.Flush(); err != nil {
		return err
	}
	return db.Compact()
}

// Runner executes one workload operation at a time against a DB.
type Runner struct {
	kind     Kind
	db       *kvstore.DB
	clk      *clock.Virtual
	cfg      Config
	rng      *rand.Rand
	rangeCDF []float64

	iter *kvstore.Iterator // persistent scan state for readseq/readreverse
	ops  uint64
	errs uint64
}

// NewRunner builds a runner. The DB should already be filled.
func NewRunner(kind Kind, db *kvstore.DB, clk *clock.Virtual, cfg Config) *Runner {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + int64(kind)*7919))
	r := &Runner{kind: kind, db: db, clk: clk, cfg: cfg, rng: rng}
	if kind == MixGraph {
		// Hot key ranges after Cao et al.'s RocksDB trace characterization:
		// the key space splits into ranges whose access probability decays
		// as a power law; keys are uniform within a range. This yields a
		// hot set with a long miss tail rather than a handful of hot keys.
		r.rangeCDF = makeRangeCDF(mixGraphRanges, 1.5)
	}
	return r
}

// Kind returns the workload being run.
func (r *Runner) Kind() Kind { return r.kind }

// Ops returns the number of operations completed.
func (r *Runner) Ops() uint64 { return r.ops }

// Errs returns the number of operations that failed (should stay 0).
func (r *Runner) Errs() uint64 { return r.errs }

// Step executes one operation, charging CPU and device time to the clock.
func (r *Runner) Step() error {
	var err error
	switch r.kind {
	case ReadSeq:
		err = r.stepScan(false)
	case ReadReverse:
		err = r.stepScan(true)
	case ReadRandom:
		err = r.stepGet(r.uniformKey())
	case ReadRandomWriteRandom:
		if r.rng.Intn(100) < r.cfg.ReadPercent {
			err = r.stepGet(r.uniformKey())
		} else {
			err = r.stepPut(r.uniformKey())
		}
	case UpdateRandom:
		key := r.uniformKey()
		if err = r.stepGet(key); err == nil {
			err = r.stepPut(key)
		}
	case MixGraph:
		err = r.stepMixGraph()
	default:
		return fmt.Errorf("workload: unknown kind %d", r.kind)
	}
	if err != nil {
		r.errs++
		return err
	}
	r.ops++
	return nil
}

// Run executes n operations.
func (r *Runner) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := r.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunFor executes operations until the virtual clock passes deadline.
func (r *Runner) RunFor(d time.Duration) error {
	deadline := r.clk.Now() + d
	for r.clk.Now() < deadline {
		if err := r.Step(); err != nil {
			return err
		}
	}
	return nil
}

func (r *Runner) uniformKey() []byte { return Key(r.rng.Intn(r.cfg.Keys)) }

func (r *Runner) stepGet(key []byte) error {
	r.clk.Advance(r.cfg.CPUGet)
	_, _, err := r.db.Get(key)
	return err
}

func (r *Runner) stepPut(key []byte) error {
	r.clk.Advance(r.cfg.CPUPut)
	return r.db.Put(key, Value(r.cfg, r.rng.Intn(r.cfg.Keys)))
}

// stepScan advances a persistent full-DB scan one entry, restarting (and
// refreshing the iterator) when it runs off the end — db_bench readseq
// and readreverse are repeated full scans.
func (r *Runner) stepScan(rev bool) error {
	r.clk.Advance(r.cfg.CPUScanStep)
	if r.iter == nil || !r.iter.Valid() {
		if rev {
			r.iter = r.db.NewReverseIterator()
			r.iter.SeekToLast()
		} else {
			r.iter = r.db.NewIterator()
			r.iter.SeekToFirst()
		}
		if !r.iter.Valid() {
			return fmt.Errorf("workload: empty DB for %s", r.kind)
		}
		return r.iter.Err()
	}
	r.iter.Next()
	return r.iter.Err()
}

// mixGraphRanges is the number of hot key ranges the mixgraph key
// distribution uses.
const mixGraphRanges = 32

// makeRangeCDF builds the cumulative distribution of range weights
// w_i ∝ (i+1)^-alpha.
func makeRangeCDF(n int, alpha float64) []float64 {
	weights := make([]float64, n)
	total := 0.0
	for i := range weights {
		weights[i] = kmath.Pow(float64(i+1), -alpha)
		total += weights[i]
	}
	cdf := make([]float64, n)
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cdf[i] = acc
	}
	return cdf
}

// mixKey draws a key from the hot-range distribution.
func (r *Runner) mixKey() int {
	u := r.rng.Float64()
	ri := 0
	for ri < len(r.rangeCDF)-1 && u > r.rangeCDF[ri] {
		ri++
	}
	rangeSize := r.cfg.Keys / len(r.rangeCDF)
	if rangeSize < 1 {
		rangeSize = 1
	}
	base := ri * rangeSize
	k := base + r.rng.Intn(rangeSize)
	if k >= r.cfg.Keys {
		k = r.cfg.Keys - 1
	}
	return k
}

// stepMixGraph approximates the mixgraph operation mix: 85% hot-range point
// gets, 14% hot-range puts, 1% short range scans.
func (r *Runner) stepMixGraph() error {
	k := r.mixKey()
	switch p := r.rng.Intn(100); {
	case p < 85:
		return r.stepGet(Key(k))
	case p < 99:
		r.clk.Advance(r.cfg.CPUPut)
		return r.db.Put(Key(k), Value(r.cfg, k))
	default:
		r.clk.Advance(r.cfg.CPUGet) // seek cost
		it := r.db.NewIterator()
		it.Seek(Key(k))
		for i := 0; i < r.cfg.ScanLength && it.Valid(); i++ {
			r.clk.Advance(r.cfg.CPUScanStep)
			it.Next()
		}
		return it.Err()
	}
}
