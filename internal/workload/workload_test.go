package workload

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/clock"
	"repro/internal/kvstore"
	"repro/internal/pagecache"
	"repro/internal/vfs"
)

func newStack(t testing.TB, keys int) (*kvstore.DB, *clock.Virtual, *blockdev.Device) {
	t.Helper()
	clk := clock.New()
	dev := blockdev.New(blockdev.NVMe(), clk)
	cache := pagecache.New(pagecache.Config{CapacityPages: 1 << 16}, clk, dev, nil)
	fs := vfs.New(cache)
	db, err := kvstore.Open(fs, kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Fill(db, Config{Keys: keys, ValueSize: 100, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	return db, clk, dev
}

func TestFillLoadsAllKeys(t *testing.T) {
	db, _, _ := newStack(t, 1000)
	for _, i := range []int{0, 1, 499, 999} {
		if _, ok, err := db.Get(Key(i)); !ok || err != nil {
			t.Fatalf("key %d: %v %v", i, ok, err)
		}
	}
	if db.Tables() != 1 {
		t.Errorf("fill should leave one compacted run, got %d", db.Tables())
	}
}

func TestKindNamesAndClasses(t *testing.T) {
	if ReadSeq.String() != "readseq" || MixGraph.String() != "mixgraph" {
		t.Error("names")
	}
	if Kind(99).String() != "workload(99)" {
		t.Error("unknown name")
	}
	if len(TrainingKinds()) != 4 || len(AllKinds()) != 6 {
		t.Error("kind sets")
	}
	for i, k := range TrainingKinds() {
		if k.Class() != i {
			t.Errorf("class of %s = %d", k, k.Class())
		}
	}
	if UpdateRandom.Class() != -1 || MixGraph.Class() != -1 {
		t.Error("unseen workloads must have no class")
	}
}

func TestEachWorkloadRuns(t *testing.T) {
	for _, kind := range AllKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			db, clk, _ := newStack(t, 2000)
			r := NewRunner(kind, db, clk, Config{Keys: 2000, ValueSize: 100, Seed: 2})
			start := clk.Now()
			if err := r.Run(500); err != nil {
				t.Fatal(err)
			}
			if r.Ops() != 500 {
				t.Errorf("ops = %d", r.Ops())
			}
			if r.Errs() != 0 {
				t.Errorf("errs = %d", r.Errs())
			}
			if clk.Now() <= start {
				t.Error("workload must consume virtual time")
			}
		})
	}
}

func TestRunForHonorsDeadline(t *testing.T) {
	db, clk, _ := newStack(t, 2000)
	r := NewRunner(ReadRandom, db, clk, Config{Keys: 2000, ValueSize: 100, Seed: 3})
	if err := r.RunFor(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if clk.Now() < 50*time.Millisecond {
		t.Error("RunFor stopped early")
	}
	if r.Ops() == 0 {
		t.Error("no ops")
	}
}

func TestReadSeqIsSequentialPattern(t *testing.T) {
	db, clk, dev := newStack(t, 5000)
	db.FS().Cache().DropAll()
	dev.ResetStats()
	r := NewRunner(ReadSeq, db, clk, Config{Keys: 5000, ValueSize: 100, Seed: 4})
	if err := r.Run(4000); err != nil {
		t.Fatal(err)
	}
	// A sequential scan should trigger async readahead streaming.
	if dev.Stats().AsyncReads == 0 {
		t.Error("readseq never streamed")
	}
}

func TestReadRandomIsRandomPattern(t *testing.T) {
	db, clk, dev := newStack(t, 20000)
	db.FS().Cache().DropAll()
	dev.ResetStats()
	r := NewRunner(ReadRandom, db, clk, Config{Keys: 20000, ValueSize: 100, Seed: 5})
	if err := r.Run(2000); err != nil {
		t.Fatal(err)
	}
	ds := dev.Stats()
	// Random point gets are served by synchronous reads, mostly.
	if ds.SyncReads < ds.AsyncReads {
		t.Errorf("random workload looked sequential: %d sync vs %d async", ds.SyncReads, ds.AsyncReads)
	}
}

func TestReadReverseCoversKeysDescending(t *testing.T) {
	db, clk, _ := newStack(t, 300)
	r := NewRunner(ReadReverse, db, clk, Config{Keys: 300, ValueSize: 100, Seed: 6})
	// First step seeds the iterator at the last key.
	if err := r.Step(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.iter.Key(), Key(299)) {
		t.Errorf("first reverse key %q", r.iter.Key())
	}
	if err := r.Step(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.iter.Key(), Key(298)) {
		t.Errorf("second reverse key %q", r.iter.Key())
	}
}

func TestScanWrapsAround(t *testing.T) {
	db, clk, _ := newStack(t, 50)
	r := NewRunner(ReadSeq, db, clk, Config{Keys: 50, ValueSize: 100, Seed: 7})
	// More steps than keys: the scan must wrap and keep going.
	if err := r.Run(170); err != nil {
		t.Fatal(err)
	}
	if r.Ops() != 170 {
		t.Errorf("ops = %d", r.Ops())
	}
}

func TestWriteWorkloadsDirty(t *testing.T) {
	db, clk, _ := newStack(t, 2000)
	r := NewRunner(UpdateRandom, db, clk, Config{Keys: 2000, ValueSize: 100, Seed: 8})
	if err := r.Run(200); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Puts <= 2000 { // 2000 from fill
		t.Error("updaterandom must write")
	}
}

func TestMixGraphMixesOps(t *testing.T) {
	db, clk, _ := newStack(t, 5000)
	before := db.Stats()
	r := NewRunner(MixGraph, db, clk, Config{Keys: 5000, ValueSize: 100, Seed: 9})
	if err := r.Run(2000); err != nil {
		t.Fatal(err)
	}
	after := db.Stats()
	gets := after.Gets - before.Gets
	puts := after.Puts - before.Puts
	if gets == 0 || puts == 0 {
		t.Errorf("mixgraph gets=%d puts=%d; must mix", gets, puts)
	}
	if gets < puts {
		t.Error("mixgraph must be read-dominated")
	}
}

func TestMixGraphIsSkewed(t *testing.T) {
	// The Zipfian generator must concentrate accesses on a hot set.
	db, clk, _ := newStack(t, 10000)
	r := NewRunner(MixGraph, db, clk, Config{Keys: 10000, ValueSize: 100, Seed: 10})
	counts := make(map[int]int)
	for i := 0; i < 10000; i++ {
		counts[r.mixKey()*mixGraphRanges/10000]++ // bucket by range
	}
	if counts[0] < 2000 {
		t.Errorf("hottest range only %d/10000 accesses; not skewed", counts[0])
	}
	if len(counts) < 8 {
		t.Errorf("only %d ranges touched; tail too short", len(counts))
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, time.Duration) {
		db, clk, _ := newStack(t, 2000)
		r := NewRunner(MixGraph, db, clk, Config{Keys: 2000, ValueSize: 100, Seed: 11})
		if err := r.Run(1000); err != nil {
			t.Fatal(err)
		}
		return r.Ops(), clk.Now()
	}
	ops1, t1 := run()
	ops2, t2 := run()
	if ops1 != ops2 || t1 != t2 {
		t.Errorf("runs diverged: %d/%v vs %d/%v", ops1, t1, ops2, t2)
	}
}

func TestKeyValueHelpers(t *testing.T) {
	if string(Key(42)) != "key000000000042" {
		t.Errorf("Key = %q", Key(42))
	}
	v := Value(Config{ValueSize: 64}.withDefaults(), 7)
	if len(v) != 64 {
		t.Errorf("value len %d", len(v))
	}
}
