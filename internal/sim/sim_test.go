package sim

import (
	"testing"

	"repro/internal/blockdev"
	"repro/internal/workload"
)

func microConfig() Config {
	return Config{Profile: blockdev.NVMe(), Keys: 3000, CachePages: 256, Seed: 1}
}

func TestNewEnvFillsAndResets(t *testing.T) {
	env, err := NewEnv(microConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Data is loaded...
	if _, ok, err := env.DB.Get(workload.Key(0)); !ok || err != nil {
		t.Fatalf("key 0 missing: %v %v", ok, err)
	}
	// ...but the run starts cold and with clean stats, except for the Get
	// above.
	env2, err := NewEnv(microConfig())
	if err != nil {
		t.Fatal(err)
	}
	if env2.Cache.Len() != 0 {
		t.Errorf("cache not dropped after fill: %d pages", env2.Cache.Len())
	}
	if s := env2.Dev.Stats(); s.SyncReads != 0 || s.PagesWrit != 0 {
		t.Errorf("device stats not reset: %+v", s)
	}
	if env2.Tracer.Total() != 0 {
		t.Error("fill traffic leaked into tracepoint counts")
	}
}

func TestDefaultsGivePollutionRegime(t *testing.T) {
	env, err := NewEnv(Config{Profile: blockdev.SATASSD()})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(env.DatasetPages()) / float64(env.Cfg.CachePages)
	if ratio < 1.2 || ratio > 3 {
		t.Errorf("dataset/cache ratio %.2f outside the working-set-exceeds-RAM regime", ratio)
	}
}

func TestWorkloadConfigMapping(t *testing.T) {
	cfg := microConfig()
	env, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := env.WorkloadConfig()
	if w.Keys != cfg.Keys || w.Seed != cfg.Seed {
		t.Errorf("workload config %+v", w)
	}
}

func TestRunnerSeesFilledDB(t *testing.T) {
	env, err := NewEnv(microConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := env.NewRunner(workload.ReadRandom)
	if err := r.Run(100); err != nil {
		t.Fatal(err)
	}
	if r.Errs() != 0 {
		t.Errorf("errors: %d", r.Errs())
	}
	if env.Tracer.Total() == 0 {
		t.Error("workload produced no tracepoints")
	}
}

func TestDeterministicEnvironments(t *testing.T) {
	build := func() int64 {
		env, err := NewEnv(microConfig())
		if err != nil {
			t.Fatal(err)
		}
		r := env.NewRunner(workload.MixGraph)
		if err := r.Run(500); err != nil {
			t.Fatal(err)
		}
		return int64(env.Clk.Now())
	}
	if build() != build() {
		t.Error("identical configs must give identical simulations")
	}
}
