// Package sim assembles the full simulated storage stack — virtual clock,
// block device, page cache, tracer, filesystem, and LSM store — into one
// environment, pre-filled with the benchmark key space. It is the shared
// substrate for the experiment harness (internal/bench), the readahead
// application's training-data collection, the examples and the commands.
package sim

import (
	"time"

	"repro/internal/blockdev"
	"repro/internal/clock"
	"repro/internal/kvstore"
	"repro/internal/pagecache"
	"repro/internal/trace"
	"repro/internal/vfs"
	"repro/internal/workload"
)

// Config parameterizes an environment. The defaults give the dataset-to-
// cache ratio (~1.6×) under which readahead pollution matters, as on the
// paper's testbed where the RocksDB working set exceeded RAM.
type Config struct {
	// Profile is the device model; required (blockdev.NVMe()/SATASSD()).
	Profile blockdev.Profile
	// CachePages sizes the page cache; 0 means 8192 pages (32 MB).
	CachePages int
	// Keys is the benchmark key-space size; 0 means 120,000.
	Keys int
	// ValueSize is the value payload; 0 means 400 bytes.
	ValueSize int
	// CPUGet, CPUScanStep and CPUPut are the serialized software costs per
	// operation type; zero values take the workload package defaults
	// (2 µs / 1 µs / 2 µs), calibrated for the aggregate multi-threaded
	// db_bench client the runner models.
	CPUGet      time.Duration
	CPUScanStep time.Duration
	CPUPut      time.Duration
	// Seed drives all randomness; the zero seed is valid.
	Seed int64
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.CachePages == 0 {
		c.CachePages = 8192
	}
	if c.Keys == 0 {
		c.Keys = 120_000
	}
	if c.ValueSize == 0 {
		c.ValueSize = 400
	}
	return c
}

// Env is one assembled simulation environment.
type Env struct {
	Cfg    Config
	Clk    *clock.Virtual
	Dev    *blockdev.Device
	Cache  *pagecache.Cache
	Tracer *trace.Tracer
	FS     *vfs.FS
	DB     *kvstore.DB
}

// NewEnv builds and fills an environment. After filling, the page cache is
// dropped and device/cache statistics are reset, matching the paper's
// "we clear the cache after every run" methodology.
func NewEnv(cfg Config) (*Env, error) {
	cfg = cfg.WithDefaults()
	clk := clock.New()
	dev := blockdev.New(cfg.Profile, clk)
	tracer := trace.New()
	cache := pagecache.New(pagecache.Config{CapacityPages: cfg.CachePages}, clk, dev, tracer)
	fs := vfs.New(cache)
	db, err := kvstore.Open(fs, kvstore.Options{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	// Fill with tracing off: load traffic is not part of any experiment.
	tracer.SetEnabled(false)
	if err := workload.Fill(db, e2wcfg(cfg)); err != nil {
		return nil, err
	}
	cache.DropAll()
	cache.ResetStats()
	dev.ResetStats()
	tracer.SetEnabled(true)
	return &Env{Cfg: cfg, Clk: clk, Dev: dev, Cache: cache, Tracer: tracer, FS: fs, DB: db}, nil
}

func e2wcfg(cfg Config) workload.Config {
	return workload.Config{
		Keys:        cfg.Keys,
		ValueSize:   cfg.ValueSize,
		CPUGet:      cfg.CPUGet,
		CPUScanStep: cfg.CPUScanStep,
		CPUPut:      cfg.CPUPut,
		Seed:        cfg.Seed,
	}
}

// WorkloadConfig returns the workload configuration matching the fill.
func (e *Env) WorkloadConfig() workload.Config { return e2wcfg(e.Cfg) }

// NewRunner builds a runner for kind against this environment.
func (e *Env) NewRunner(kind workload.Kind) *workload.Runner {
	return workload.NewRunner(kind, e.DB, e.Clk, e.WorkloadConfig())
}

// DatasetPages estimates the on-device dataset size in pages.
func (e *Env) DatasetPages() int64 {
	return (e.FS.TotalBytes() + blockdev.PageSize - 1) / blockdev.PageSize
}
