package pagecache

import (
	"math/rand"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/clock"
)

// TestRandomizedInvariants drives the cache with a random mix of reads,
// writes, syncs, readahead changes, hints and drops, checking structural
// invariants after every step: capacity respected, LRU list consistent
// with the page map, dirty count consistent, clock monotonic.
func TestRandomizedInvariants(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		clk := clock.New()
		dev := blockdev.New(blockdev.SATASSD(), clk)
		c := New(Config{CapacityPages: 64, DirtyRatio: 0.3, WritebackBatch: 8}, clk, dev, nil)
		c.SetFilePages(1, 500)
		c.SetFilePages(2, 500)
		last := clk.Now()
		for op := 0; op < 3000; op++ {
			f := FileID(1 + rng.Intn(2))
			off := int64(rng.Intn(490))
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4:
				c.ReadPages(f, off, 1+rng.Intn(3))
			case 5, 6:
				c.WritePages(f, off, 1+rng.Intn(3))
			case 7:
				c.SyncFile(f)
			case 8:
				c.SetFileReadahead(f, []int{0, 8, 64, 256, 1024}[rng.Intn(5)])
			case 9:
				if rng.Intn(10) == 0 {
					c.DropFile(f)
				} else {
					c.Fadvise(f, Hint(rng.Intn(3)))
				}
			}
			if clk.Now() < last {
				t.Fatalf("seed %d op %d: clock went backward", seed, op)
			}
			last = clk.Now()
			checkInvariants(t, c, seed, op)
		}
	}
}

func checkInvariants(t *testing.T, c *Cache, seed int64, op int) {
	t.Helper()
	if len(c.pages) > c.cfg.CapacityPages {
		t.Fatalf("seed %d op %d: %d pages exceed capacity %d", seed, op, len(c.pages), c.cfg.CapacityPages)
	}
	// Walk the LRU list both ways; it must contain exactly the map's pages.
	fwd := 0
	var prev *page
	for p := c.head; p != nil; p = p.next {
		if p.prev != prev {
			t.Fatalf("seed %d op %d: broken prev link", seed, op)
		}
		if got, ok := c.pages[p.key]; !ok {
			t.Fatalf("seed %d op %d: LRU node %+v missing from map (dirty=%v spec=%v marker=%v)", seed, op, p.key, p.dirty, p.spec, p.marker)
		} else if got != p {
			t.Fatalf("seed %d op %d: stale LRU node for %+v", seed, op, p.key)
		}
		prev = p
		fwd++
		if fwd > len(c.pages)+1 {
			t.Fatalf("seed %d op %d: LRU cycle", seed, op)
		}
	}
	if fwd != len(c.pages) {
		t.Fatalf("seed %d op %d: LRU has %d nodes, map has %d", seed, op, fwd, len(c.pages))
	}
	if c.tail != prev {
		t.Fatalf("seed %d op %d: tail mismatch", seed, op)
	}
	// Dirty count matches the map.
	dirty := 0
	for _, p := range c.pages {
		if p.dirty {
			dirty++
		}
	}
	if dirty != c.dirtyCount {
		t.Fatalf("seed %d op %d: dirtyCount %d, actual %d", seed, op, c.dirtyCount, dirty)
	}
}

// TestReadaheadNeverCrossesEOF checks the window clamp under many sizes.
func TestReadaheadNeverCrossesEOF(t *testing.T) {
	clk := clock.New()
	dev := blockdev.New(blockdev.NVMe(), clk)
	dev.SetReadahead(1024)
	c := New(Config{CapacityPages: 4096}, clk, dev, nil)
	const filePages = 37
	c.SetFilePages(9, filePages)
	// Sequential scan to the end, repeatedly.
	for pass := 0; pass < 3; pass++ {
		for off := int64(0); off < filePages; off++ {
			c.ReadPages(9, off, 1)
		}
	}
	for idx := int64(filePages); idx < filePages+256; idx++ {
		if c.Contains(9, idx) {
			t.Fatalf("page %d beyond EOF (%d pages) was fetched", idx, filePages)
		}
	}
}

// TestStatsConsistency: hits+misses equals pages requested; inserted ≥
// misses (windows add speculative pages).
func TestStatsConsistency(t *testing.T) {
	clk := clock.New()
	dev := blockdev.New(blockdev.NVMe(), clk)
	c := New(Config{CapacityPages: 512}, clk, dev, nil)
	c.SetFilePages(1, 10000)
	rng := rand.New(rand.NewSource(4))
	requested := uint64(0)
	for i := 0; i < 500; i++ {
		n := 1 + rng.Intn(3)
		c.ReadPages(1, int64(rng.Intn(5000)), n)
		requested += uint64(n)
	}
	s := c.Stats()
	if s.Hits+s.Misses != requested {
		t.Errorf("hits %d + misses %d != requested %d", s.Hits, s.Misses, requested)
	}
	if s.Inserted < s.Misses {
		t.Errorf("inserted %d < misses %d", s.Inserted, s.Misses)
	}
	if s.SpecUsed > s.SpecInserted {
		t.Errorf("spec used %d > inserted %d", s.SpecUsed, s.SpecInserted)
	}
}
