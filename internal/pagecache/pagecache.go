// Package pagecache simulates the OS memory-management subsystem the
// paper's KML application instruments and controls: a page cache with LRU
// reclaim, dirty-page writeback, and — most importantly — a Linux-flavored
// on-demand readahead engine with per-file readahead state, sequential
// window ramp-up, asynchronous readahead markers, per-file ra_pages
// overrides and fadvise hints.
//
// # Readahead model
//
// The engine follows the structure of Linux's ondemand_readahead:
//
//   - A cache miss that continues the file's previous request (sequential)
//     grows the window (get_next_ra_size: ×4 below max/16, ×2 below max/2,
//     else max) and fetches it, placing an async marker after the
//     synchronously needed portion.
//   - A hit on a marker page triggers the next window asynchronously, so a
//     detected stream becomes bandwidth-bound rather than latency-bound.
//   - A random miss fetches get_init_ra_size(req, max) pages: requests are
//     speculatively rounded up (×4 below max/32, ×2 below max/4, else max),
//     which is precisely the over-read that the paper's readahead tuning
//     eliminates for random workloads by lowering ra_pages.
//   - Pages already cached inside a window are never re-fetched; backward
//     scans therefore see almost no speculative waste, matching the small
//     readreverse gains in the paper's Table 2.
//
// Speculative pages occupy the device (delaying later requests) and the
// cache (evicting useful pages) — the two mechanisms that make readahead
// tuning matter on real systems.
//
// The cache emits the tracepoints the paper collects: add_to_page_cache on
// every page insertion and writeback_dirty_page on every page dirtying.
package pagecache

import (
	"fmt"
	"time"

	"repro/internal/blockdev"
	"repro/internal/clock"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// FileID identifies a file (the simulated inode number).
type FileID uint64

// Hint is a per-file access-pattern hint (the fadvise analogue, §4:
// "hints that users can provide through system calls such as fadvise").
type Hint uint8

// Fadvise hints.
const (
	// HintNormal applies the standard on-demand heuristic.
	HintNormal Hint = iota
	// HintSequential doubles the effective readahead (POSIX_FADV_SEQUENTIAL).
	HintSequential
	// HintRandom disables speculative readahead (POSIX_FADV_RANDOM).
	HintRandom
)

// Config parameterizes the cache.
type Config struct {
	// CapacityPages bounds the cache size; required.
	CapacityPages int
	// DirtyRatio triggers background writeback when exceeded; 0 means 0.10.
	DirtyRatio float64
	// WritebackBatch is the number of pages flushed per writeback burst;
	// 0 means 64.
	WritebackBatch int
}

func (c Config) withDefaults() Config {
	if c.DirtyRatio == 0 {
		c.DirtyRatio = 0.10
	}
	if c.WritebackBatch == 0 {
		c.WritebackBatch = 64
	}
	return c
}

type pageKey struct {
	file FileID
	idx  int64
}

type page struct {
	key     pageKey
	readyAt time.Duration
	dirty   bool
	marker  bool // async readahead trigger
	spec    bool // inserted speculatively, not yet used
	// intrusive LRU list links
	prev, next *page
}

// Stats aggregates cache behaviour.
type Stats struct {
	Hits         uint64
	WaitHits     uint64 // hits on in-flight readahead pages
	Misses       uint64
	Inserted     uint64
	SpecInserted uint64
	SpecUsed     uint64 // speculative pages later actually read
	Evicted      uint64
	DirtyEvicted uint64
	Writebacks   uint64
	WaitTime     time.Duration
}

// Metrics is the cache's always-on telemetry: atomic counters mirroring
// the hit/miss/speculation tallies in Stats (readable concurrently from
// a telemetry snapshot, unlike the plain Stats struct) plus a histogram
// of readahead window sizes in pages — the distribution the tuner's
// per-class policy is actually shifting.
type Metrics struct {
	Hits         *telemetry.Counter
	Misses       *telemetry.Counter
	Inserted     *telemetry.Counter
	SpecInserted *telemetry.Counter
	SpecUsed     *telemetry.Counter
	Writebacks   *telemetry.Counter
	// WindowPages observes every readahead window the engine sizes
	// (synchronous and asynchronous), in pages.
	WindowPages *telemetry.Histogram
}

// NewMetrics registers a cache's metrics under prefix: <prefix>_hits,
// _misses, _inserted, _spec_inserted, _spec_used, _writebacks and the
// <prefix>_window_pages histogram.
func NewMetrics(reg *telemetry.Registry, prefix string) *Metrics {
	return &Metrics{
		Hits:         reg.Counter(prefix + "_hits"),
		Misses:       reg.Counter(prefix + "_misses"),
		Inserted:     reg.Counter(prefix + "_inserted"),
		SpecInserted: reg.Counter(prefix + "_spec_inserted"),
		SpecUsed:     reg.Counter(prefix + "_spec_used"),
		Writebacks:   reg.Counter(prefix + "_writebacks"),
		WindowPages:  reg.Histogram(prefix + "_window_pages"),
	}
}

// raState is the per-file readahead state (struct file_ra_state analogue).
type raState struct {
	nextSeq  int64 // page index one past the previous request (sequential test)
	start    int64 // start of the current readahead window
	size     int   // window size in pages
	frontier int64 // one past the highest page fetched for this stream
}

// Cache is the simulated page cache.
type Cache struct {
	cfg    Config
	clk    *clock.Virtual
	dev    *blockdev.Device
	tracer *trace.Tracer

	pages map[pageKey]*page
	// LRU list: head = most recent, tail = eviction candidate.
	head, tail *page

	files     map[FileID]*raState
	fileRA    map[FileID]int // per-file ra override in sectors (ra_pages)
	hints     map[FileID]Hint
	filePages map[FileID]int64 // file sizes in pages; readahead never crosses EOF

	dirtyFIFO  []pageKey
	dirtyCount int

	stats   Stats
	metrics *Metrics
}

// New returns a page cache over dev, emitting tracepoints through tracer
// (which may be nil to disable tracing).
func New(cfg Config, clk *clock.Virtual, dev *blockdev.Device, tracer *trace.Tracer) *Cache {
	if cfg.CapacityPages <= 0 {
		panic("pagecache: CapacityPages must be positive")
	}
	return &Cache{
		cfg:       cfg.withDefaults(),
		clk:       clk,
		dev:       dev,
		tracer:    tracer,
		pages:     make(map[pageKey]*page),
		files:     make(map[FileID]*raState),
		fileRA:    make(map[FileID]int),
		hints:     make(map[FileID]Hint),
		filePages: make(map[FileID]int64),
	}
}

// SetMetrics attaches always-on telemetry to the cache; nil detaches.
// The counters accumulate alongside Stats from the moment of
// attachment (they are not backfilled).
func (c *Cache) SetMetrics(m *Metrics) { c.metrics = m }

// countWriteback adds n to both the Stats tally and, when attached, the
// telemetry counter — every writeback site funnels through here.
//
//kml:hotpath
func (c *Cache) countWriteback(n uint64) {
	c.stats.Writebacks += n
	if c.metrics != nil {
		c.metrics.Writebacks.Add(n)
	}
}

// --- intrusive LRU ---

// lruPush links p at the MRU head. Pure pointer relinking — the page
// allocation happened at insert — so it is safe on the per-access path.
//
//kml:hotpath
func (c *Cache) lruPush(p *page) {
	p.prev = nil
	p.next = c.head
	if c.head != nil {
		c.head.prev = p
	}
	c.head = p
	if c.tail == nil {
		c.tail = p
	}
}

// lruRemove unlinks p from the LRU list.
//
//kml:hotpath
func (c *Cache) lruRemove(p *page) {
	if p.prev != nil {
		p.prev.next = p.next
	} else {
		c.head = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else {
		c.tail = p.prev
	}
	p.prev, p.next = nil, nil
}

// lruTouch moves p to the MRU position on a hit.
//
//kml:hotpath
func (c *Cache) lruTouch(p *page) {
	if c.head == p {
		return
	}
	c.lruRemove(p)
	c.lruPush(p)
}

// --- readahead window sizing (Linux get_init_ra_size / get_next_ra_size) ---

func roundupPow2(v int) int {
	n := 1
	for n < v {
		n <<= 1
	}
	return n
}

// initWindow mirrors Linux get_init_ra_size: speculatively round the
// request up, bounded by the configured maximum.
func initWindow(req, max int) int {
	if max <= 0 {
		return req
	}
	size := roundupPow2(req)
	switch {
	case size <= max/32:
		size *= 4
	case size <= max/4:
		size *= 2
	default:
		size = max
	}
	if size < req {
		size = req
	}
	if size > max && max >= req {
		size = max
	}
	return size
}

// nextWindow mirrors Linux get_next_ra_size: ramp the sequential window.
func nextWindow(cur, max int) int {
	if max <= 0 {
		return cur
	}
	var size int
	switch {
	case cur < max/16:
		size = cur * 4
	case cur <= max/2:
		size = cur * 2
	default:
		size = max
	}
	if size > max {
		size = max
	}
	if size < 1 {
		size = 1
	}
	return size
}

// raPagesFor resolves the effective readahead maximum for a file:
// per-file override, else device setting, adjusted by the fadvise hint.
func (c *Cache) raPagesFor(f FileID) int {
	sectors, ok := c.fileRA[f]
	if !ok || sectors == 0 {
		sectors = c.dev.ReadaheadSectors()
	}
	pages := sectors / blockdev.SectorsPerPage
	switch c.hints[f] {
	case HintSequential:
		pages *= 2
	case HintRandom:
		pages = 0
	}
	return pages
}

func (c *Cache) state(f FileID) *raState {
	st, ok := c.files[f]
	if !ok {
		st = &raState{nextSeq: -1}
		c.files[f] = st
	}
	return st
}

// ReadPages simulates a buffered read of pages [off, off+n) of file f,
// advancing the virtual clock by the resulting cache/device behaviour.
func (c *Cache) ReadPages(f FileID, off int64, n int) {
	if n <= 0 || off < 0 {
		panic(fmt.Sprintf("pagecache: ReadPages(%d, %d, %d)", f, off, n))
	}
	st := c.state(f)
	seq := off == st.nextSeq && st.nextSeq > 0
	end := off + int64(n)
	for i := off; i < end; {
		pg, ok := c.pages[pageKey{f, i}]
		if !ok {
			c.missFetch(f, st, i, int(end-i), seq)
			// missFetch covered the remainder of the request.
			break
		}
		c.hit(pg, f, st)
		i++
	}
	st.nextSeq = end
}

// missFetch handles a cache miss at page start with need pages remaining in
// the request: size a window, fetch the uncached pages in one device
// request (needed portion synchronously, speculative remainder
// asynchronously), and place the async marker for sequential streams.
func (c *Cache) missFetch(f FileID, st *raState, start int64, need int, seq bool) {
	max := c.raPagesFor(f)
	switch {
	case seq && max > 0:
		st.size = nextWindow(st.size, max)
		if st.size < need {
			st.size = need
		}
	case max > 0:
		// Random miss. Linux's ondemand_readahead first tries context
		// readahead: if the pages immediately before the missed index are
		// resident, it infers an interleaved stream and sizes the window
		// from that cached run (try_context_readahead). On partially
		// cached files under random access this systematically over-reads
		// — the pathology that tuning ra_pages down eliminates, and a
		// load-bearing part of the paper's readrandom gains.
		if run := c.cachedRunBefore(f, start, max); run > need {
			st.size = run * 2
			if st.size > max {
				st.size = max
			}
			if st.size < need {
				st.size = need
			}
		} else {
			st.size = initWindow(need, max)
		}
	default:
		st.size = need
	}
	window := st.size
	// Readahead never crosses EOF (Linux clamps the window to the file).
	if limit, ok := c.filePages[f]; ok && start+int64(window) > limit {
		window = int(limit - start)
		if window < need {
			window = need // the caller's own pages are always fetched
		}
		st.size = window
	}
	st.start = start
	st.frontier = start + int64(window)
	if c.metrics != nil {
		c.metrics.WindowPages.Observe(int64(window))
	}

	// Partition the window into needed-and-uncached vs speculative-and-
	// uncached pages; pages already cached are skipped (never re-fetched).
	var fgCount, specCount int
	var cachedInNeed []*page
	for w := 0; w < window; w++ {
		idx := start + int64(w)
		if pg, ok := c.pages[pageKey{f, idx}]; ok {
			if w < need {
				cachedInNeed = append(cachedInNeed, pg)
			}
			continue
		}
		if w < need {
			fgCount++
		} else {
			specCount++
		}
	}
	if fgCount == 0 {
		// Entire needed range was cached after all (interleaved hits);
		// nothing to fetch synchronously.
		for _, pg := range cachedInNeed {
			c.hit(pg, f, st)
		}
		return
	}
	fgReady, winReady := c.dev.SyncRead(fgCount, fgCount+specCount)

	markerAt := int64(-1)
	if specCount > 0 {
		// Async marker goes on the first speculative page, so a stream
		// that reaches it refills ahead of consumption.
		markerAt = start + int64(need)
	}
	for w := 0; w < window; w++ {
		idx := start + int64(w)
		key := pageKey{f, idx}
		if pg, ok := c.pages[key]; ok {
			if w < need {
				c.hit(pg, f, st)
			}
			continue
		}
		ready := winReady
		specPage := w >= need
		if !specPage {
			// Counted here rather than during partitioning: a page that
			// was cached then may have been evicted by this very window's
			// insertions, and every needed page must land in exactly one
			// of hits or misses.
			c.stats.Misses++
			if c.metrics != nil {
				c.metrics.Misses.Inc()
			}
			ready = fgReady
		}
		pg := c.insert(key, ready, specPage)
		if idx == markerAt {
			pg.marker = true
		}
	}
}

// cachedRunBefore counts consecutively cached pages immediately below
// index (the history try_context_readahead consults), capped at max.
//
//kml:hotpath
func (c *Cache) cachedRunBefore(f FileID, index int64, max int) int {
	run := 0
	for i := index - 1; i >= 0 && run < max; i-- {
		if _, ok := c.pages[pageKey{f, i}]; !ok {
			break
		}
		run++
	}
	return run
}

// hit processes a cache hit: touch the page, consume its flags, trigger
// async readahead from a marker, and wait for in-flight arrival.
//
// Ordering is load-bearing: the page moves to MRU and its state is read
// BEFORE asyncAhead runs, because the readahead's insertions may evict
// pages — in pathological window-vs-capacity ratios even this one — and
// the page must not be dereferenced (or re-linked) after that.
func (c *Cache) hit(pg *page, f FileID, st *raState) {
	c.stats.Hits++
	if c.metrics != nil {
		c.metrics.Hits.Inc()
	}
	c.lruTouch(pg)
	if pg.spec {
		pg.spec = false
		c.stats.SpecUsed++
		if c.metrics != nil {
			c.metrics.SpecUsed.Inc()
		}
	}
	marker := pg.marker
	pg.marker = false
	readyAt := pg.readyAt
	if marker {
		c.asyncAhead(f, st) // pg may be gone after this
	}
	if readyAt > c.clk.Now() {
		c.stats.WaitHits++
		c.stats.WaitTime += readyAt - c.clk.Now()
		c.dev.Wait(readyAt)
	}
}

// asyncAhead extends a detected stream: fetch the next window in the
// background and move the marker forward.
func (c *Cache) asyncAhead(f FileID, st *raState) {
	max := c.raPagesFor(f)
	if max <= 0 {
		return
	}
	st.size = nextWindow(st.size, max)
	start := st.frontier
	window := st.size
	if limit, ok := c.filePages[f]; ok {
		if start >= limit {
			return // stream reached EOF
		}
		if start+int64(window) > limit {
			window = int(limit - start)
		}
	}
	var toFetch []int64
	for w := 0; w < window; w++ {
		idx := start + int64(w)
		if _, ok := c.pages[pageKey{f, idx}]; !ok {
			toFetch = append(toFetch, idx)
		}
	}
	st.start = start
	st.frontier = start + int64(window)
	if c.metrics != nil {
		c.metrics.WindowPages.Observe(int64(window))
	}
	if len(toFetch) == 0 {
		return
	}
	ready := c.dev.AsyncRead(len(toFetch))
	for i, idx := range toFetch {
		pg := c.insert(pageKey{f, idx}, ready, true)
		if i == 0 {
			pg.marker = true
		}
	}
}

// insert adds a page to the cache (evicting as needed) and fires the
// add_to_page_cache tracepoint.
func (c *Cache) insert(key pageKey, readyAt time.Duration, spec bool) *page {
	if _, ok := c.pages[key]; ok {
		panic(fmt.Sprintf("pagecache: double insert of %+v", key))
	}
	c.evictFor(1)
	pg := &page{key: key, readyAt: readyAt, spec: spec}
	c.pages[key] = pg
	c.lruPush(pg)
	c.stats.Inserted++
	if c.metrics != nil {
		c.metrics.Inserted.Inc()
	}
	if spec {
		c.stats.SpecInserted++
		if c.metrics != nil {
			c.metrics.SpecInserted.Inc()
		}
	}
	if c.tracer != nil {
		c.tracer.Emit(trace.Event{
			Point:  trace.AddToPageCache,
			Inode:  uint64(key.file),
			Offset: key.idx,
			Time:   c.clk.Now(),
		})
	}
	return pg
}

// evictFor makes room for n new pages.
func (c *Cache) evictFor(n int) {
	for len(c.pages)+n > c.cfg.CapacityPages && c.tail != nil {
		victim := c.tail
		if victim.dirty {
			// Must clean before reclaim; count it and write it back.
			c.dev.WriteAsync(1)
			c.countWriteback(1)
			c.stats.DirtyEvicted++
			victim.dirty = false
			c.dirtyCount--
		}
		c.lruRemove(victim)
		delete(c.pages, victim.key)
		c.stats.Evicted++
	}
}

// WritePages simulates a buffered write of pages [off, off+n) of file f:
// pages are allocated in the cache if absent and dirtied, firing the
// writeback_dirty_page tracepoint; background writeback runs when the
// dirty ratio is exceeded.
func (c *Cache) WritePages(f FileID, off int64, n int) {
	if n <= 0 || off < 0 {
		panic(fmt.Sprintf("pagecache: WritePages(%d, %d, %d)", f, off, n))
	}
	for i := off; i < off+int64(n); i++ {
		key := pageKey{f, i}
		pg, ok := c.pages[key]
		if !ok {
			pg = c.insert(key, c.clk.Now(), false)
		} else {
			c.lruTouch(pg)
			pg.spec = false
		}
		if !pg.dirty {
			pg.dirty = true
			c.dirtyCount++
			c.dirtyFIFO = append(c.dirtyFIFO, key)
			if c.tracer != nil {
				c.tracer.Emit(trace.Event{
					Point:  trace.WritebackDirtyPage,
					Inode:  uint64(f),
					Offset: i,
					Time:   c.clk.Now(),
				})
			}
		}
	}
	c.maybeWriteback()
	// Writes also reset the file's sequential-read state: interleaved
	// writes break read streams, as in Linux.
	c.state(f).nextSeq = off + int64(n)
}

// maybeWriteback flushes dirty pages in FIFO order while over threshold.
func (c *Cache) maybeWriteback() {
	threshold := int(c.cfg.DirtyRatio * float64(c.cfg.CapacityPages))
	for c.dirtyCount > threshold {
		batch := 0
		for batch < c.cfg.WritebackBatch && len(c.dirtyFIFO) > 0 {
			key := c.dirtyFIFO[0]
			c.dirtyFIFO = c.dirtyFIFO[1:]
			pg, ok := c.pages[key]
			if !ok || !pg.dirty {
				continue // evicted or already cleaned: lazy deletion
			}
			pg.dirty = false
			c.dirtyCount--
			batch++
		}
		if batch == 0 {
			return
		}
		c.dev.WriteAsync(batch)
		c.countWriteback(uint64(batch))
	}
}

// SyncFile writes back all dirty pages of f and blocks until durable
// (the fsync path).
func (c *Cache) SyncFile(f FileID) {
	batch := 0
	for _, pg := range c.pages {
		if pg.key.file == f && pg.dirty {
			pg.dirty = false
			c.dirtyCount--
			batch++
		}
	}
	if batch > 0 {
		c.countWriteback(uint64(batch))
		c.dev.WriteSync(batch)
	}
}

// SetFilePages records a file's size in pages so readahead windows clamp
// at EOF, as in Linux. The VFS layer calls it on growth and truncation.
func (c *Cache) SetFilePages(f FileID, pages int64) {
	if pages < 0 {
		panic("pagecache: negative file size")
	}
	c.filePages[f] = pages
}

// SetFileReadahead overrides ra_pages for one file, in sectors (0 restores
// the device default). This is the "updating ra_pages for open files" path
// of the paper's Figure 1.
func (c *Cache) SetFileReadahead(f FileID, sectors int) {
	if sectors == 0 {
		delete(c.fileRA, f)
		return
	}
	if sectors < blockdev.SectorsPerPage {
		sectors = blockdev.SectorsPerPage
	}
	c.fileRA[f] = sectors
}

// Fadvise records an access-pattern hint for f.
func (c *Cache) Fadvise(f FileID, h Hint) {
	if h == HintNormal {
		delete(c.hints, f)
		return
	}
	c.hints[f] = h
}

// DropAll empties the cache (the "clear the cache after every run" step in
// the paper's evaluation), writing back dirty pages first.
func (c *Cache) DropAll() {
	batch := 0
	for _, pg := range c.pages {
		if pg.dirty {
			batch++
		}
	}
	if batch > 0 {
		c.countWriteback(uint64(batch))
		c.dev.WriteSync(batch)
	}
	c.pages = make(map[pageKey]*page)
	c.head, c.tail = nil, nil
	c.files = make(map[FileID]*raState)
	c.dirtyFIFO = nil
	c.dirtyCount = 0
}

// DropFile invalidates all cached pages of one file (truncate/remove path).
// Dirty pages of the file are written back first.
func (c *Cache) DropFile(f FileID) {
	var victims []*page
	batch := 0
	for _, pg := range c.pages {
		if pg.key.file != f {
			continue
		}
		if pg.dirty {
			pg.dirty = false
			c.dirtyCount--
			batch++
		}
		victims = append(victims, pg)
	}
	if batch > 0 {
		c.countWriteback(uint64(batch))
		c.dev.WriteAsync(batch)
	}
	for _, pg := range victims {
		c.lruRemove(pg)
		delete(c.pages, pg.key)
		c.stats.Evicted++
	}
	delete(c.files, f)
	delete(c.fileRA, f)
	delete(c.hints, f)
	delete(c.filePages, f)
}

// Len returns the number of cached pages.
func (c *Cache) Len() int { return len(c.pages) }

// DirtyLen returns the number of dirty pages.
func (c *Cache) DirtyLen() int { return c.dirtyCount }

// Contains reports whether a page is cached (for tests and experiments).
func (c *Cache) Contains(f FileID, idx int64) bool {
	_, ok := c.pages[pageKey{f, idx}]
	return ok
}

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears statistics without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// HitMissCounts returns the cumulative hit and miss counters — the pair
// a decision trace samples at window boundaries to attribute the cache
// behaviour that followed each readahead change (dtrace StageOutcome).
// Counting matches Stats.HitRate: wait-hits are not hits.
//
//kml:hotpath
func (c *Cache) HitMissCounts() (hits, misses uint64) {
	return c.stats.Hits, c.stats.Misses
}

// HitRate returns hits/(hits+misses), or 0 before any access.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
