package pagecache

import (
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/clock"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func newCache(capacity int) (*Cache, *blockdev.Device, *clock.Virtual, *trace.Tracer) {
	clk := clock.New()
	dev := blockdev.New(blockdev.NVMe(), clk)
	tr := trace.New()
	c := New(Config{CapacityPages: capacity}, clk, dev, tr)
	return c, dev, clk, tr
}

func TestMissThenHit(t *testing.T) {
	c, _, clk, _ := newCache(1024)
	c.ReadPages(1, 0, 1)
	if c.Stats().Misses != 1 {
		t.Fatalf("misses = %d", c.Stats().Misses)
	}
	t1 := clk.Now()
	if t1 == 0 {
		t.Fatal("miss must cost device time")
	}
	c.ReadPages(1, 0, 1)
	if c.Stats().Hits == 0 {
		t.Fatal("second read must hit")
	}
	if clk.Now() != t1 {
		t.Error("pure cache hit must not advance the clock")
	}
}

func TestInitWindowMatchesLinuxShape(t *testing.T) {
	// get_init_ra_size(req, max): round up, then ×4 below max/32,
	// ×2 below max/4, else max.
	cases := []struct{ req, max, want int }{
		{1, 32, 4},   // 1 ≤ 32/32 → ×4
		{2, 32, 4},   // 2 ≤ 8 → ×2
		{2, 128, 8},  // 2 ≤ 4 → ×4
		{8, 32, 16},  // 8 ≤ 32/4 → ×2
		{16, 32, 32}, // 16 > 32/4 → max
		{1, 1, 1},    // tiny max clamps
		{4, 0, 4},    // readahead disabled: exactly the request
		{16, 8, 16},  // request larger than max: never shrink below req
		{3, 128, 16}, // roundup(3)=4 ≤ 128/32 → ×4
	}
	for _, tc := range cases {
		if got := initWindow(tc.req, tc.max); got != tc.want {
			t.Errorf("initWindow(%d, %d) = %d, want %d", tc.req, tc.max, got, tc.want)
		}
	}
}

func TestNextWindowRamp(t *testing.T) {
	cases := []struct{ cur, max, want int }{
		{4, 128, 16},  // < max/16 → ×4
		{16, 128, 32}, // ≤ max/2 → ×2
		{100, 128, 128},
		{32, 32, 32},
	}
	for _, tc := range cases {
		if got := nextWindow(tc.cur, tc.max); got != tc.want {
			t.Errorf("nextWindow(%d, %d) = %d, want %d", tc.cur, tc.max, got, tc.want)
		}
	}
}

func TestRandomMissOverReads(t *testing.T) {
	c, dev, _, _ := newCache(4096)
	dev.SetReadahead(256) // 32 pages
	// A 2-page random read should fetch an initial window of 4 pages:
	// 2 needed + 2 speculative.
	c.ReadPages(1, 100, 2)
	s := c.Stats()
	if s.Misses != 2 {
		t.Errorf("misses = %d", s.Misses)
	}
	if s.SpecInserted != 2 {
		t.Errorf("speculative inserts = %d, want 2 (init window 4)", s.SpecInserted)
	}
	if !c.Contains(1, 102) || !c.Contains(1, 103) {
		t.Error("speculative pages missing from cache")
	}
}

func TestTunedReadaheadEliminatesWaste(t *testing.T) {
	c, dev, _, _ := newCache(4096)
	dev.SetReadahead(blockdev.SectorsPerPage) // 1 page: the tuned value
	c.ReadPages(1, 100, 2)
	if c.Stats().SpecInserted != 0 {
		t.Errorf("tuned readahead still speculated %d pages", c.Stats().SpecInserted)
	}
}

func TestSequentialStreamRampsAndGoesAsync(t *testing.T) {
	c, dev, _, _ := newCache(8192)
	dev.SetReadahead(256) // 32 pages max
	// Read 512 pages sequentially in 2-page requests.
	for off := int64(0); off < 512; off += 2 {
		c.ReadPages(1, off, 2)
	}
	s := c.Stats()
	ds := dev.Stats()
	if ds.AsyncReads == 0 {
		t.Fatal("sequential stream never went async")
	}
	// Once streaming, almost all pages should arrive via readahead: misses
	// stay far below the page count.
	if s.Misses > 64 {
		t.Errorf("sequential stream had %d sync misses for 512 pages", s.Misses)
	}
	// Speculative pages are consumed by the stream.
	if s.SpecUsed == 0 {
		t.Error("stream never consumed speculative pages")
	}
}

func TestSequentialThroughputNearBandwidth(t *testing.T) {
	c, dev, clk, _ := newCache(16384)
	dev.SetReadahead(256)
	const pages = 4096
	for off := int64(0); off < pages; off += 2 {
		c.ReadPages(1, off, 2)
	}
	elapsed := clk.Now().Seconds()
	gotBW := float64(pages*blockdev.PageSize) / elapsed
	wantBW := dev.Profile().Bandwidth()
	if gotBW < 0.6*wantBW {
		t.Errorf("sequential throughput %.0f MB/s < 60%% of device bandwidth %.0f MB/s",
			gotBW/1e6, wantBW/1e6)
	}
}

func TestBackwardScanSeesNoWaste(t *testing.T) {
	c, dev, _, _ := newCache(8192)
	dev.SetReadahead(256)
	// Warm nothing; scan backward in 2-page blocks from page 1000.
	for off := int64(1000); off >= 0; off -= 2 {
		c.ReadPages(1, off, 2)
	}
	s := c.Stats()
	// The forward speculative window overlaps already-read (cached) pages,
	// so waste should be tiny relative to the 500 block reads.
	if s.SpecInserted > 16 {
		t.Errorf("backward scan speculated %d pages; expected almost none", s.SpecInserted)
	}
}

func TestLRUEviction(t *testing.T) {
	c, dev, _, _ := newCache(8)
	dev.SetReadahead(blockdev.SectorsPerPage)
	for i := int64(0); i < 16; i++ {
		c.ReadPages(1, i*10, 1) // distinct random pages
	}
	if c.Len() != 8 {
		t.Errorf("cache len = %d, want 8", c.Len())
	}
	if c.Stats().Evicted != 8 {
		t.Errorf("evicted = %d", c.Stats().Evicted)
	}
	// Oldest pages gone, newest present.
	if c.Contains(1, 0) {
		t.Error("oldest page should be evicted")
	}
	if !c.Contains(1, 150) {
		t.Error("newest page should be cached")
	}
}

func TestLRUTouchKeepsHotPages(t *testing.T) {
	c, dev, _, _ := newCache(4)
	dev.SetReadahead(blockdev.SectorsPerPage)
	c.ReadPages(1, 0, 1)
	c.ReadPages(1, 10, 1)
	c.ReadPages(1, 20, 1)
	c.ReadPages(1, 30, 1)
	c.ReadPages(1, 0, 1) // touch page 0: now hottest
	c.ReadPages(1, 40, 1)
	if !c.Contains(1, 0) {
		t.Error("touched page was evicted")
	}
	if c.Contains(1, 10) {
		t.Error("coldest page should have been evicted")
	}
}

func TestWriteDirtyAndWriteback(t *testing.T) {
	c, dev, _, tr := newCache(1024)
	c.WritePages(2, 0, 10)
	if c.DirtyLen() != 10 {
		t.Errorf("dirty = %d", c.DirtyLen())
	}
	if tr.Count(trace.WritebackDirtyPage) != 10 {
		t.Errorf("writeback_dirty_page fired %d times", tr.Count(trace.WritebackDirtyPage))
	}
	if tr.Count(trace.AddToPageCache) != 10 {
		t.Errorf("add_to_page_cache fired %d times", tr.Count(trace.AddToPageCache))
	}
	// Rewriting the same pages must not double-count dirtying.
	c.WritePages(2, 0, 10)
	if c.DirtyLen() != 10 {
		t.Error("re-dirtying already dirty pages")
	}
	before := dev.Stats().PagesWrit
	c.SyncFile(2)
	if c.DirtyLen() != 0 {
		t.Error("SyncFile must clean all pages")
	}
	if dev.Stats().PagesWrit-before != 10 {
		t.Errorf("SyncFile wrote %d pages", dev.Stats().PagesWrit-before)
	}
}

func TestBackgroundWritebackThreshold(t *testing.T) {
	clk := clock.New()
	dev := blockdev.New(blockdev.NVMe(), clk)
	c := New(Config{CapacityPages: 100, DirtyRatio: 0.10, WritebackBatch: 8}, clk, dev, nil)
	// Dirty 11 pages: threshold is 10, so background writeback must fire.
	c.WritePages(1, 0, 11)
	if c.DirtyLen() > 10 {
		t.Errorf("dirty %d pages; background writeback should have run", c.DirtyLen())
	}
	if c.Stats().Writebacks == 0 {
		t.Error("no writebacks recorded")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	clk := clock.New()
	dev := blockdev.New(blockdev.NVMe(), clk)
	// High dirty ratio so background writeback stays out of the way.
	c := New(Config{CapacityPages: 4, DirtyRatio: 0.99}, clk, dev, nil)
	c.WritePages(1, 0, 3)
	dev.SetReadahead(blockdev.SectorsPerPage)
	c.ReadPages(1, 100, 1)
	c.ReadPages(1, 200, 1) // evicts a dirty page
	if c.Stats().DirtyEvicted == 0 {
		t.Error("dirty eviction not recorded")
	}
	if dev.Stats().PagesWrit == 0 {
		t.Error("dirty eviction must write back")
	}
}

func TestPerFileReadaheadOverride(t *testing.T) {
	c, dev, _, _ := newCache(4096)
	dev.SetReadahead(256)
	c.SetFileReadahead(1, blockdev.SectorsPerPage) // file 1 tuned down
	c.ReadPages(1, 100, 2)                         // no speculation
	c.ReadPages(2, 100, 2)                         // device default: window 4
	s := c.Stats()
	if s.SpecInserted != 2 {
		t.Errorf("spec inserts = %d, want 2 (only file 2)", s.SpecInserted)
	}
	c.SetFileReadahead(1, 0) // restore default
	c.ReadPages(1, 500, 2)
	if c.Stats().SpecInserted != 4 {
		t.Error("restored file should speculate again")
	}
}

func TestFadviseRandomDisablesReadahead(t *testing.T) {
	c, dev, _, _ := newCache(4096)
	dev.SetReadahead(256)
	c.Fadvise(1, HintRandom)
	c.ReadPages(1, 0, 2)
	for off := int64(2); off < 64; off += 2 {
		c.ReadPages(1, off, 2) // sequential, but hint says random
	}
	if c.Stats().SpecInserted != 0 {
		t.Errorf("HintRandom still speculated %d pages", c.Stats().SpecInserted)
	}
}

func TestFadviseSequentialDoublesWindow(t *testing.T) {
	c, dev, _, _ := newCache(8192)
	dev.SetReadahead(64) // 8 pages
	c.Fadvise(1, HintSequential)
	for off := int64(0); off < 256; off += 2 {
		c.ReadPages(1, off, 2)
	}
	// With doubling the max window is 16 pages; verify ramp exceeded the
	// un-doubled max by checking a single async fetch larger than 8 pages.
	st := c.files[1]
	if st.size <= 8 {
		t.Errorf("window %d never exceeded base max 8", st.size)
	}
	c.Fadvise(1, HintNormal)
	if c.raPagesFor(1) != 8 {
		t.Error("HintNormal should restore base readahead")
	}
}

func TestWaitHitsOnInFlightReadahead(t *testing.T) {
	c, dev, clk, _ := newCache(8192)
	dev.SetReadahead(1024) // 128 pages: large async windows
	// Start a stream.
	for off := int64(0); off < 64; off += 2 {
		c.ReadPages(1, off, 2)
	}
	// Consume far ahead immediately: some pages will be in flight.
	start := clk.Now()
	for off := int64(64); off < 256; off += 2 {
		c.ReadPages(1, off, 2)
	}
	if c.Stats().WaitHits == 0 {
		t.Error("expected waits on in-flight readahead pages")
	}
	if clk.Now() == start {
		t.Error("waiting must advance the clock")
	}
}

func TestDropAll(t *testing.T) {
	c, _, _, _ := newCache(1024)
	c.ReadPages(1, 0, 8)
	c.WritePages(1, 100, 4)
	c.DropAll()
	if c.Len() != 0 || c.DirtyLen() != 0 {
		t.Error("DropAll must empty the cache")
	}
	if c.Contains(1, 0) {
		t.Error("page survived DropAll")
	}
}

func TestTracepointsOnRead(t *testing.T) {
	c, dev, _, tr := newCache(1024)
	dev.SetReadahead(256)
	c.ReadPages(7, 10, 2) // window 4: four insertions
	if got := tr.Count(trace.AddToPageCache); got != 4 {
		t.Errorf("add_to_page_cache fired %d times, want 4", got)
	}
	var events []trace.Event
	tr.Register(func(ev trace.Event) { events = append(events, ev) })
	c.ReadPages(7, 100, 1)
	for _, ev := range events {
		if ev.Inode != 7 {
			t.Errorf("event inode %d", ev.Inode)
		}
		if ev.Offset < 100 || ev.Offset > 104 {
			t.Errorf("event offset %d", ev.Offset)
		}
	}
}

func TestSpecUsedAccounting(t *testing.T) {
	c, dev, _, _ := newCache(4096)
	dev.SetReadahead(256)
	c.ReadPages(1, 100, 2) // inserts spec pages 102, 103
	c.ReadPages(1, 102, 2) // consumes them
	s := c.Stats()
	if s.SpecUsed != 2 {
		t.Errorf("SpecUsed = %d, want 2", s.SpecUsed)
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("empty hit rate")
	}
	s.Hits, s.Misses = 3, 1
	if s.HitRate() != 0.75 {
		t.Errorf("hit rate %g", s.HitRate())
	}
}

func TestInvalidArgsPanic(t *testing.T) {
	c, _, _, _ := newCache(16)
	for _, f := range []func(){
		func() { c.ReadPages(1, -1, 1) },
		func() { c.ReadPages(1, 0, 0) },
		func() { c.WritePages(1, -1, 1) },
		func() { c.WritePages(1, 0, 0) },
		func() { New(Config{}, clock.New(), nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid args must panic")
				}
			}()
			f()
		}()
	}
}

func TestReadaheadSettingAffectsWasteRatio(t *testing.T) {
	// The central economic fact of the paper: for random access, large
	// device readahead wastes bandwidth. Compare device page counts.
	run := func(raSectors int) uint64 {
		c, dev, _, _ := newCache(1 << 20)
		dev.SetReadahead(raSectors)
		for i := int64(0); i < 500; i++ {
			c.ReadPages(1, (i*7919)%100000, 2) // scattered reads
		}
		ds := dev.Stats()
		return ds.PagesSpec
	}
	defaultWaste := run(256)
	tunedWaste := run(blockdev.SectorsPerPage)
	if tunedWaste != 0 {
		t.Errorf("tuned waste = %d pages", tunedWaste)
	}
	if defaultWaste < 500 {
		t.Errorf("default waste = %d pages; expected ≥ 1 wasted page/read", defaultWaste)
	}
}

func TestWaitIsBounded(t *testing.T) {
	// Regression guard: clock must always move forward and reads must
	// terminate even with pathological interleavings.
	c, dev, clk, _ := newCache(64)
	dev.SetReadahead(1024)
	last := time.Duration(0)
	for i := 0; i < 200; i++ {
		off := int64((i * 37) % 500)
		c.ReadPages(3, off, 1)
		if clk.Now() < last {
			t.Fatal("clock went backward")
		}
		last = clk.Now()
	}
}

func BenchmarkReadPagesHit(b *testing.B) {
	c, _, _, _ := newCache(1024)
	c.ReadPages(1, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ReadPages(1, 0, 1)
	}
}

func BenchmarkReadPagesSequential(b *testing.B) {
	c, dev, _, _ := newCache(1 << 22)
	dev.SetReadahead(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ReadPages(1, int64(i)*2, 2)
	}
}

// TestMetricsMirrorStats drives a mixed workload with telemetry
// attached and checks the atomic counters agree exactly with the Stats
// tallies, and that every sized readahead window was observed.
func TestMetricsMirrorStats(t *testing.T) {
	c, _, _, _ := newCache(1024)
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg, "pagecache")
	c.SetMetrics(m)

	// Sequential stream (windows ramp, async markers fire), then random
	// reads, then writes (dirtying + writeback), then an fsync.
	for off := int64(0); off < 256; off += 8 {
		c.ReadPages(1, off, 8)
	}
	for _, off := range []int64{5000, 9001, 7333, 5000} {
		c.ReadPages(2, off, 1)
	}
	c.WritePages(3, 0, 200)
	c.SyncFile(3)

	st := c.Stats()
	if got := m.Hits.Load(); got != st.Hits {
		t.Errorf("hits counter %d != stats %d", got, st.Hits)
	}
	if got := m.Misses.Load(); got != st.Misses {
		t.Errorf("misses counter %d != stats %d", got, st.Misses)
	}
	if got := m.Inserted.Load(); got != st.Inserted {
		t.Errorf("inserted counter %d != stats %d", got, st.Inserted)
	}
	if got := m.SpecInserted.Load(); got != st.SpecInserted {
		t.Errorf("spec_inserted counter %d != stats %d", got, st.SpecInserted)
	}
	if got := m.SpecUsed.Load(); got != st.SpecUsed {
		t.Errorf("spec_used counter %d != stats %d", got, st.SpecUsed)
	}
	if got := m.Writebacks.Load(); got != st.Writebacks {
		t.Errorf("writebacks counter %d != stats %d", got, st.Writebacks)
	}
	win := m.WindowPages.Snapshot()
	if win.Count == 0 {
		t.Fatal("no readahead windows observed")
	}
	if win.Max() < 8 {
		t.Errorf("window histogram max %d; sequential ramp never widened", win.Max())
	}
}

// TestMetricsDetach: a detached cache must not touch the counters.
func TestMetricsDetach(t *testing.T) {
	c, _, _, _ := newCache(64)
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg, "pc")
	c.SetMetrics(m)
	c.ReadPages(1, 0, 1)
	before := m.Misses.Load()
	c.SetMetrics(nil)
	c.ReadPages(1, 100, 1)
	if m.Misses.Load() != before {
		t.Fatal("detached cache still incremented metrics")
	}
}
