// Versioned model registry: durable, content-addressed storage for the
// KML model artifacts that move between the training and serving
// environments. Registry state is persistence code — a silently failed
// write deploys a corrupt model — so this file is under the
// unchecked-error analyzer.
//
// On-disk layout under the registry root:
//
//	objects/<sha256 hex>  one serialized model per content hash
//	MANIFEST              append-only version records, one per line
//	ACTIVE                activation stack (rollback history), atomically
//	                      rewritten via rename; the last entry is active
//
//kml:checkerrors
package mserve

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dtree"
	"repro/internal/nn"
)

// ModelKind tags the serialization format of a registered model — the two
// model families KML supports (§4).
type ModelKind uint8

// Model kinds.
const (
	// KindNN is the nn package's KMLF neural-network format.
	KindNN ModelKind = 1
	// KindDTree is the dtree package's decision-tree format.
	KindDTree ModelKind = 2
)

// String returns the kind name.
func (k ModelKind) String() string {
	switch k {
	case KindNN:
		return "nn"
	case KindDTree:
		return "dtree"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Registry errors.
var (
	// ErrBadKind reports an unknown ModelKind.
	ErrBadKind = errors.New("mserve: unknown model kind")
	// ErrBadName reports a model name the manifest cannot encode.
	ErrBadName = errors.New("mserve: bad model name")
	// ErrModelTooLarge reports a model above the registry size bound.
	ErrModelTooLarge = errors.New("mserve: model too large")
	// ErrUnknownVersion reports a version number absent from the manifest.
	ErrUnknownVersion = errors.New("mserve: unknown version")
	// ErrNoActive reports an empty registry (nothing ever deployed).
	ErrNoActive = errors.New("mserve: no active version")
	// ErrCannotRollback reports a rollback with no previous activation.
	ErrCannotRollback = errors.New("mserve: no version to roll back to")
	// ErrCorruptObject reports an object failing hash, CRC or size
	// validation at load time.
	ErrCorruptObject = errors.New("mserve: corrupt model object")
	// ErrCorruptRegistry reports an unreadable manifest or active stack.
	ErrCorruptRegistry = errors.New("mserve: corrupt registry")
)

const (
	manifestName = "MANIFEST"
	activeName   = "ACTIVE"
	objectsName  = "objects"
	maxNameLen   = 128
)

// Version is one registered model version's metadata.
type Version struct {
	Number  uint64    // monotonically increasing, 1-based
	Kind    ModelKind // serialization format
	Name    string    // human-readable model name, e.g. "readahead-nn"
	Hash    string    // hex SHA-256 of the model bytes (content address)
	CRC     uint32    // IEEE CRC32 of the model bytes
	Size    int64     // model bytes
	Created int64     // unix seconds at registration
}

// Registry is a durable, versioned model store. All methods are safe for
// concurrent use; durability mutations (Put, Activate, Rollback) are
// serialized internally.
type Registry struct {
	mu        sync.Mutex
	dir       string
	versions  map[uint64]Version
	last      uint64
	stack     []uint64 // activation history; last entry is active
	deploys   uint64
	rollbacks uint64
}

// OpenRegistry opens (creating if needed) the registry rooted at dir and
// replays its manifest and activation stack.
func OpenRegistry(dir string) (*Registry, error) {
	if err := os.MkdirAll(filepath.Join(dir, objectsName), 0o755); err != nil {
		return nil, err
	}
	r := &Registry{dir: dir, versions: make(map[uint64]Version)}
	if err := r.loadManifest(); err != nil {
		return nil, err
	}
	if err := r.loadActive(); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Registry) loadManifest() error {
	f, err := os.Open(filepath.Join(r.dir, manifestName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		v, err := parseManifestLine(line)
		if err != nil {
			return err
		}
		r.versions[v.Number] = v
		if v.Number > r.last {
			r.last = v.Number
		}
	}
	return sc.Err()
}

func parseManifestLine(line string) (Version, error) {
	var v Version
	parts := strings.SplitN(line, "\t", 7)
	if len(parts) != 7 {
		return v, fmt.Errorf("%w: manifest line %q", ErrCorruptRegistry, line)
	}
	num, err := strconv.ParseUint(parts[0], 10, 64)
	if err != nil {
		return v, fmt.Errorf("%w: %v", ErrCorruptRegistry, err)
	}
	kind, err := strconv.ParseUint(parts[1], 10, 8)
	if err != nil {
		return v, fmt.Errorf("%w: %v", ErrCorruptRegistry, err)
	}
	crc, err := strconv.ParseUint(parts[3], 10, 32)
	if err != nil {
		return v, fmt.Errorf("%w: %v", ErrCorruptRegistry, err)
	}
	size, err := strconv.ParseInt(parts[4], 10, 64)
	if err != nil {
		return v, fmt.Errorf("%w: %v", ErrCorruptRegistry, err)
	}
	created, err := strconv.ParseInt(parts[5], 10, 64)
	if err != nil {
		return v, fmt.Errorf("%w: %v", ErrCorruptRegistry, err)
	}
	v = Version{
		Number: num, Kind: ModelKind(kind), Name: parts[6],
		Hash: parts[2], CRC: uint32(crc), Size: size, Created: created,
	}
	return v, nil
}

func (r *Registry) loadActive() error {
	data, err := os.ReadFile(filepath.Join(r.dir, activeName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	for _, field := range strings.Fields(string(data)) {
		n, err := strconv.ParseUint(field, 10, 64)
		if err != nil {
			return fmt.Errorf("%w: active entry %q", ErrCorruptRegistry, field)
		}
		if _, ok := r.versions[n]; !ok {
			return fmt.Errorf("%w: active version %d not in manifest", ErrCorruptRegistry, n)
		}
		r.stack = append(r.stack, n)
	}
	return nil
}

// Put validates, stores and activates a new model version, returning its
// metadata. The model bytes must parse in the declared format — a deploy
// of a corrupt artifact fails here, before it can reach a serving path.
func (r *Registry) Put(kind ModelKind, name string, data []byte) (Version, error) {
	if err := validateName(name); err != nil {
		return Version{}, err
	}
	if int64(len(data)) > MaxPayload {
		return Version{}, ErrModelTooLarge
	}
	if _, _, _, _, err := parseModel(kind, data); err != nil {
		return Version{}, err
	}
	sum := sha256.Sum256(data)
	hash := hex.EncodeToString(sum[:])

	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.writeObject(hash, data); err != nil {
		return Version{}, err
	}
	v := Version{
		Number: r.last + 1, Kind: kind, Name: name,
		Hash: hash, CRC: crc32.ChecksumIEEE(data), Size: int64(len(data)),
		Created: time.Now().Unix(),
	}
	if err := r.appendManifest(v); err != nil {
		return Version{}, err
	}
	r.versions[v.Number] = v
	r.last = v.Number
	if err := r.pushActive(v.Number); err != nil {
		return Version{}, err
	}
	r.deploys++
	return v, nil
}

// Activate marks an already-registered version as active (a re-deploy of
// an old version without re-uploading its bytes).
func (r *Registry) Activate(number uint64) (Version, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.versions[number]
	if !ok {
		return Version{}, fmt.Errorf("%w: %d", ErrUnknownVersion, number)
	}
	if err := r.pushActive(number); err != nil {
		return Version{}, err
	}
	r.deploys++
	return v, nil
}

// Rollback reverts to the previously active version and returns it.
func (r *Registry) Rollback() (Version, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.stack) < 2 {
		return Version{}, ErrCannotRollback
	}
	prev := r.stack[:len(r.stack)-1]
	if err := r.writeActive(prev); err != nil {
		return Version{}, err
	}
	r.stack = prev
	r.rollbacks++
	return r.versions[prev[len(prev)-1]], nil
}

// Active returns the currently active version's metadata.
func (r *Registry) Active() (Version, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.stack) == 0 {
		return Version{}, false
	}
	return r.versions[r.stack[len(r.stack)-1]], true
}

// Get returns the metadata of version number.
func (r *Registry) Get(number uint64) (Version, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.versions[number]
	return v, ok
}

// List returns all registered versions in number order.
func (r *Registry) List() []Version {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Version, 0, len(r.versions))
	for _, v := range r.versions {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Number < out[j].Number })
	return out
}

// Deploys returns the number of activations (Put + Activate) since open.
func (r *Registry) Deploys() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.deploys
}

// Rollbacks returns the number of rollbacks since open.
func (r *Registry) Rollbacks() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rollbacks
}

// Artifact loads and validates version number's bytes: size, SHA-256
// content address and CRC must all match the manifest, and the bytes must
// still parse — the registry never hands out an artifact it could not
// serve.
func (r *Registry) Artifact(number uint64) (*Artifact, error) {
	r.mu.Lock()
	v, ok := r.versions[number]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownVersion, number)
	}
	data, err := os.ReadFile(filepath.Join(r.dir, objectsName, v.Hash))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) != v.Size {
		return nil, fmt.Errorf("%w: version %d: size %d, manifest says %d",
			ErrCorruptObject, number, len(data), v.Size)
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != v.Hash {
		return nil, fmt.Errorf("%w: version %d: content hash mismatch", ErrCorruptObject, number)
	}
	if crc32.ChecksumIEEE(data) != v.CRC {
		return nil, fmt.Errorf("%w: version %d: checksum mismatch", ErrCorruptObject, number)
	}
	_, _, inDim, outDim, err := parseModel(v.Kind, data)
	if err != nil {
		return nil, fmt.Errorf("%w: version %d: %v", ErrCorruptObject, number, err)
	}
	return &Artifact{Version: v, InDim: inDim, OutDim: outDim, Data: data}, nil
}

// ActiveArtifact loads the active version's artifact.
func (r *Registry) ActiveArtifact() (*Artifact, error) {
	v, ok := r.Active()
	if !ok {
		return nil, ErrNoActive
	}
	return r.Artifact(v.Number)
}

// Instance loads version number and instantiates it for single-goroutine
// inference.
func (r *Registry) Instance(number uint64) (*Instance, error) {
	a, err := r.Artifact(number)
	if err != nil {
		return nil, err
	}
	return a.Instantiate()
}

func (r *Registry) writeObject(hash string, data []byte) error {
	path := filepath.Join(r.dir, objectsName, hash)
	if _, err := os.Stat(path); err == nil {
		return nil // content-addressed: identical bytes already stored
	}
	return atomicWrite(path, data)
}

func (r *Registry) appendManifest(v Version) error {
	f, err := os.OpenFile(filepath.Join(r.dir, manifestName),
		os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	line := fmt.Sprintf("%d\t%d\t%s\t%d\t%d\t%d\t%s\n",
		v.Number, uint8(v.Kind), v.Hash, v.CRC, v.Size, v.Created, v.Name)
	if _, err := f.WriteString(line); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func (r *Registry) pushActive(number uint64) error {
	next := append(append([]uint64(nil), r.stack...), number)
	if err := r.writeActive(next); err != nil {
		return err
	}
	r.stack = next
	return nil
}

func (r *Registry) writeActive(stack []uint64) error {
	// strings.Builder writes cannot fail; the discards keep the
	// checkerrors contract explicit.
	var b strings.Builder
	for i, n := range stack {
		if i > 0 {
			_ = b.WriteByte(' ')
		}
		_, _ = b.WriteString(strconv.FormatUint(n, 10))
	}
	_ = b.WriteByte('\n')
	return atomicWrite(filepath.Join(r.dir, activeName), []byte(b.String()))
}

// atomicWrite writes data to path via a temp file, fsync and rename, so a
// crash leaves either the old content or the new — never a torn file.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func validateName(name string) error {
	if name == "" || len(name) > maxNameLen ||
		strings.ContainsAny(name, "\t\n\r") {
		return fmt.Errorf("%w: %q", ErrBadName, name)
	}
	return nil
}

// Artifact is one immutable deployed model: validated serialized bytes
// plus metadata. Artifacts are what a Deployment publishes on the server:
// each connection instantiates its own inference state from the bytes, so
// concurrent requests never share the mutable forward-pass buffers inside
// nn.Network.
type Artifact struct {
	Version Version
	InDim   int // model input width, from parsing the artifact
	OutDim  int // model output width (class count), from parsing the artifact
	Data    []byte
}

// Instantiate parses the artifact into a ready-to-serve Instance.
func (a *Artifact) Instantiate() (*Instance, error) {
	net, tree, inDim, outDim, err := parseModel(a.Version.Kind, a.Data)
	if err != nil {
		return nil, err
	}
	return &Instance{
		version: a.Version.Number, kind: a.Version.Kind, name: a.Version.Name,
		inDim: inDim, outDim: outDim, net: net, tree: tree,
	}, nil
}

// Instance is a single-goroutine servable model: a parsed network or tree
// plus its private inference scratch. It implements core.Classifier, so a
// registry version can be dropped anywhere the framework deploys models
// (readahead.Tuner, the Table-2 harness).
type Instance struct {
	version uint64
	kind    ModelKind
	name    string
	inDim   int
	outDim  int
	net     *nn.Network
	buf     nn.PredictBuffer
	tree    *dtree.Tree
}

var (
	_ core.Classifier      = (*Instance)(nil)
	_ core.BatchClassifier = (*Instance)(nil)
)

// Predict implements core.Classifier. It must not be called concurrently
// on one Instance; give each goroutine its own via Artifact.Instantiate.
func (m *Instance) Predict(features []float64) int {
	if m.net != nil {
		return m.net.Predict(features, &m.buf)
	}
	return m.tree.Predict(features)
}

// PredictBatch implements core.BatchClassifier: networks take the fused
// batched forward pass (one matrix-multiply chain for all rows instead of
// rows separate ones — where the batch-endpoint speedup comes from); tree
// traversal is already cheap and pure, so it loops. Like Predict, it must
// not be called concurrently on one Instance. After the scratch high-water
// mark is reached it allocates nothing.
func (m *Instance) PredictBatch(features []float64, rows int, classes []int) {
	if m.net != nil {
		m.net.PredictBatch(features, rows, classes, &m.buf)
		return
	}
	for r := 0; r < rows; r++ {
		classes[r] = m.tree.Predict(features[r*m.inDim : (r+1)*m.inDim])
	}
}

// Name implements core.Classifier.
func (m *Instance) Name() string { return m.name }

// Version returns the registry version this instance serves.
func (m *Instance) Version() uint64 { return m.version }

// Kind returns the model family.
func (m *Instance) Kind() ModelKind { return m.kind }

// InDim returns the model's input width; requests with a different
// feature count are rejected before Predict.
func (m *Instance) InDim() int { return m.inDim }

// OutDim returns the model's output width — the number of classes it
// predicts over, which sizes the drift monitor's class distribution.
func (m *Instance) OutDim() int { return m.outDim }

func parseModel(kind ModelKind, data []byte) (*nn.Network, *dtree.Tree, int, int, error) {
	switch kind {
	case KindNN:
		net, err := nn.Load(bytes.NewReader(data))
		if err != nil {
			return nil, nil, 0, 0, err
		}
		return net, nil, net.InDim(), net.OutDim(), nil
	case KindDTree:
		tree, err := dtree.Load(bytes.NewReader(data))
		if err != nil {
			return nil, nil, 0, 0, err
		}
		return nil, tree, tree.Features(), tree.Classes(), nil
	default:
		return nil, nil, 0, 0, fmt.Errorf("%w: %d", ErrBadKind, uint8(kind))
	}
}
