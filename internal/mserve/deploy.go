// Deployment is the hot-swap boundary between the control plane (deploy,
// rollback) and the data plane (per-event inference). The paper's kernel
// module swaps a newly trained model into the running tuner without
// stopping collection; here that is a single atomic pointer store, and the
// reader side is a single atomic load — no lock, no RCU grace period, no
// allocation — so a deploy can never stall the hot path or cause a
// collection event to be dropped.
package mserve

import "sync/atomic"

// Snapshot pairs a model with the registry version it came from. Snapshots
// are immutable once published: a deploy builds a new Snapshot and swaps
// the pointer, so readers holding the old one keep a consistent
// (model, version) pair for the duration of their request.
type Snapshot[T any] struct {
	Model   T
	Version uint64
}

// Deployment[T] is an atomic hot-swap handle. The zero value is an empty
// deployment: Load returns nil until the first Swap. T is whatever the
// reader dereferences per request — *Artifact on the server (each
// connection instantiates its own inference state), core.Classifier in a
// single-goroutine reader like readahead.Tuner.
type Deployment[T any] struct {
	ptr   atomic.Pointer[Snapshot[T]]
	swaps atomic.Uint64
}

// NewDeployment returns a deployment already serving (model, version).
func NewDeployment[T any](model T, version uint64) *Deployment[T] {
	d := &Deployment[T]{}
	d.Swap(model, version)
	return d
}

// Load returns the current snapshot, or nil if nothing is deployed. It is
// the per-request dereference on the serving hot path: one atomic pointer
// load, safe for any number of concurrent readers during a Swap.
//
//kml:hotpath
func (d *Deployment[T]) Load() *Snapshot[T] {
	return d.ptr.Load()
}

// Swap atomically publishes (model, version) and returns the previous
// snapshot (nil on first deploy). In-flight readers continue against the
// snapshot they loaded; new loads see the new version.
func (d *Deployment[T]) Swap(model T, version uint64) *Snapshot[T] {
	s := &Snapshot[T]{Model: model, Version: version}
	d.swaps.Add(1)
	return d.ptr.Swap(s)
}

// Swaps returns the number of Swap calls — deploys plus rollbacks.
func (d *Deployment[T]) Swaps() uint64 { return d.swaps.Load() }

// Version returns the currently deployed version, or 0 if empty.
func (d *Deployment[T]) Version() uint64 {
	if s := d.ptr.Load(); s != nil {
		return s.Version
	}
	return 0
}
