// Cross-connection micro-batch coalescing. The fused PredictBatch kernel
// amortizes to ~0.12-0.18 µs/sample only at batch >= 64, but a fleet of
// small clients each sending single Infer requests never hands the server
// a batch that size — each connection's request is one row. The coalescer
// closes that gap on the server side: concurrent Infer/BatchInfer rows
// from DIFFERENT connections are gathered into one shared arena under a
// bounded window, classified in one fused PredictBatch call, and demuxed
// back to each owning connection.
//
// Design (DESIGN.md §14):
//
//   - Leader-executes, no background goroutine. The first request into an
//     empty shard opens a batch and becomes its leader; it parks on a
//     reusable timer bounding the gather window. Followers gather their
//     rows and park on their per-connection done channel. Whoever closes
//     the batch executes it: the follower that fills it to CoalesceMax, or
//     the leader at window expiry. Because every executor is a connection
//     goroutine already counted in the server's WaitGroup, shutdown drains
//     pending batches for free — connections finish, batches flush,
//     THEN the recorder and pipeline stop (the same ordering as before).
//
//   - Sharding. One gather lock per shard, connections assigned round-
//     robin at accept. A single shard maximizes batch sizes; more shards
//     trade batch depth for lock spread when core count makes the single
//     gather mutex the bottleneck (the ROADMAP's per-core accept shards).
//     Each shard owns its arenas, so shards never share gather memory.
//
//   - Alloc-free steady state. Gather arenas (flattened feature rows,
//     demux entries, class scratch) are pooled per shard and grown once
//     to the configured capacity; waiters own their result buffers and
//     signal channels across requests. TestCoalesceAllocFree pins
//     0 allocs/op on the warmed path, like the rest of the serve loop.
//
//   - Attribution. Each request keeps its own span tree under its own
//     (possibly client-stamped) TraceID: the gather wait lands in the
//     request's StageQueue span and the mserve_queue_delay_ns histogram,
//     and its StageInfer span is stamped with the achieved batch size
//     (dtrace.PackInferAux). Achieved batch sizes land in the
//     mserve_coalesce_batch histogram — the distribution that proves the
//     window is buying amortization.
package mserve

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"repro/internal/dtrace"
)

// Coalescer sizing defaults (Config.CoalesceMax / CoalesceShards when
// left zero with a nonzero window).
const (
	defaultCoalesceMax = 64
	// coalesceFreeBatches bounds each shard's recycled-arena stack. Two
	// batches per shard can be in flight at once (one executing at window
	// expiry while the next gathers); 4 leaves slack without hoarding.
	coalesceFreeBatches = 4
)

// coalescer gathers inference rows across connections into fused batches.
type coalescer struct {
	window  time.Duration
	maxRows int
	shards  []coalesceShard
}

// coalesceShard is one independent gather domain: a mutex, the batch
// currently filling (nil when none), and a small stack of recycled
// arenas. The trailing pad keeps hot shard state off its neighbors'
// cache lines when shards sit adjacent in the slice.
type coalesceShard struct {
	mu   sync.Mutex
	cur  *gatherBatch
	free []*gatherBatch
	_    [64]byte
}

// gatherBatch is one pooled gather arena: feature rows from many requests
// flattened row-major, the demux table mapping contiguous row ranges back
// to their waiters, and the executor's class scratch. A batch is owned by
// its shard (under mu) while filling and by exactly one executor after
// being taken.
type gatherBatch struct {
	feats      []float64     // gathered rows, row-major, len == rows*nfeat
	rowClasses []int         // executor scratch, cap >= maxRows
	entries    []gatherEntry // demux table, in gather order
	rows       int
	nfeat      int
	taken      bool      // detached from shard.cur; guarded by shard.mu
	inst       *Instance // executor-cached instance, revalidated per batch
}

// gatherEntry maps one request's contiguous rows back to its waiter.
type gatherEntry struct {
	w    *coalWaiter
	rows int
}

// coalWaiter is one connection's parking spot in a gather: the executor
// writes the request's results here, then signals done. All fields are
// owned by the connection goroutine except between submit and the done
// signal, when the executor owns them (the channel send publishes).
type coalWaiter struct {
	done      chan struct{} // cap 1; exactly one send per submit
	timer     *time.Timer   // leader's gather-window bound, reused
	classes   []uint16      // demuxed results, sized by the request
	version   uint64        // model version that served the batch
	batchRows int           // achieved batch size (all requests' rows)
	startNS   int64         // batch execute start (ends the gather wait)
	endNS     int64         // batch execute end
	failed    bool          // no servable model at execute time
}

// ready lazily builds the waiter's reusable signal channel.
func (w *coalWaiter) ready() {
	if w.done == nil {
		w.done = make(chan struct{}, 1)
	}
}

func newCoalescer(window time.Duration, maxRows, shards int) *coalescer {
	if maxRows <= 0 {
		maxRows = defaultCoalesceMax
	}
	if maxRows > MaxBatchRows {
		maxRows = MaxBatchRows
	}
	if shards <= 0 {
		shards = 1
	}
	return &coalescer{window: window, maxRows: maxRows, shards: make([]coalesceShard, shards)}
}

// get returns a reset gather arena, recycling from the shard's free stack
// when possible. Called with sh.mu held.
func (sh *coalesceShard) get(maxRows, nfeat int) *gatherBatch {
	var b *gatherBatch
	if n := len(sh.free); n > 0 {
		b = sh.free[n-1]
		sh.free[n-1] = nil
		sh.free = sh.free[:n-1]
	} else {
		b = &gatherBatch{
			feats:      make([]float64, 0, maxRows*nfeat),
			rowClasses: make([]int, maxRows),
			entries:    make([]gatherEntry, 0, maxRows),
		}
	}
	b.nfeat = nfeat
	b.rows = 0
	b.taken = false
	return b
}

// put recycles an executed arena onto its shard's free stack, dropping it
// when the stack is full.
func (sh *coalesceShard) put(b *gatherBatch) {
	sh.mu.Lock()
	if len(sh.free) < coalesceFreeBatches {
		sh.free = append(sh.free, b)
	}
	sh.mu.Unlock()
}

// gatherRows copies one request's rows into the arena's flattened feature
// buffer at the current tail. Capacity is ensured by the caller (submit
// grows off the hot path), so this is pure data movement.
//
//kml:hotpath
func (b *gatherBatch) gatherRows(feats []float64) {
	off := b.rows * b.nfeat
	dst := b.feats[:off+len(feats)]
	copy(dst[off:], feats)
	b.feats = dst
}

// demuxClasses copies one request's slice of the executor's class scratch
// back into the waiter's result buffer — the per-request demux that routes
// a fused batch's outputs to their owning connections.
//
//kml:hotpath
func demuxClasses(dst []uint16, src []int) {
	for i, c := range src {
		dst[i] = uint16(c)
	}
}

// submit gathers rows feature vectors (row-major in feats, nfeat wide)
// into the shard's open batch and blocks until an executor demuxes this
// request's results into w. Returns false when the request is too large
// to coalesce (rows >= the batch capacity) — the caller then takes the
// inline path, which such a batch already amortizes on its own.
func (c *coalescer) submit(s *Server, shard int, w *coalWaiter, feats []float64, rows, nfeat int) bool {
	if rows >= c.maxRows {
		return false
	}
	sh := &c.shards[shard]
	sh.mu.Lock()
	b := sh.cur
	// A request that doesn't fit the open batch — no row room, or a
	// different feature width after a hot swap — flushes it first: this
	// goroutine detaches and executes the old batch, then opens a new one
	// for itself. Earlier waiters never wait on a later request's shape.
	if b != nil && (b.nfeat != nfeat || b.rows+rows > c.maxRows) {
		sh.cur = nil
		b.taken = true
		sh.mu.Unlock()
		s.runBatch(sh, b)
		sh.mu.Lock()
		b = sh.cur
	}
	leader := b == nil
	if leader {
		b = sh.get(c.maxRows, nfeat)
		sh.cur = b
	}
	if need := (b.rows + rows) * nfeat; cap(b.feats) < need {
		// Cold: first time this arena sees this feature width.
		grown := make([]float64, len(b.feats), need)
		copy(grown, b.feats)
		b.feats = grown
	}
	b.gatherRows(feats[:rows*nfeat])
	b.entries = append(b.entries, gatherEntry{w: w, rows: rows})
	b.rows += rows
	full := b.rows >= c.maxRows
	if full {
		sh.cur = nil
		b.taken = true
	}
	sh.mu.Unlock()

	if full {
		// The filler executes immediately — a full batch gains nothing
		// from waiting out the window.
		s.runBatch(sh, b)
		<-w.done
		return true
	}
	if !leader {
		<-w.done
		return true
	}
	// Leader: bound the gather with the window timer. If a filler (or a
	// shape-mismatch flush) executes the batch first, the done signal
	// arrives and the timer is disarmed; otherwise the leader detaches
	// and executes whatever gathered.
	if w.timer == nil {
		w.timer = time.NewTimer(c.window)
	} else {
		w.timer.Reset(c.window)
	}
	select {
	case <-w.done:
		if !w.timer.Stop() {
			select {
			case <-w.timer.C:
			default:
			}
		}
		return true
	case <-w.timer.C:
	}
	sh.mu.Lock()
	if sh.cur == b && !b.taken {
		sh.cur = nil
		b.taken = true
		sh.mu.Unlock()
		s.runBatch(sh, b)
		<-w.done
		return true
	}
	// Someone else took the batch between the timer firing and the lock;
	// its executor will signal (or already has).
	sh.mu.Unlock()
	<-w.done
	return true
}

// runBatch executes one detached gather batch: one fused PredictBatch over
// every gathered row, one drift observation for the whole batch, then the
// per-request demux — results and attribution stamps into each waiter,
// published by the done send. The executor is whichever connection
// goroutine detached the batch, so there is no dedicated inference thread
// to saturate, start, or drain.
func (s *Server) runBatch(sh *coalesceShard, b *gatherBatch) {
	start := time.Now().UnixNano()
	snap := s.dep.Load()
	var inst *Instance
	if snap != nil && snap.Model.InDim == b.nfeat {
		if b.inst == nil || b.inst.Version() != snap.Version {
			// Cold half of a hot swap, paid once per arena per deploy.
			in, err := snap.Model.Instantiate()
			if err != nil {
				in = nil
			}
			b.inst = in
		}
		inst = b.inst
	}
	if inst != nil {
		inst.PredictBatch(b.feats[:b.rows*b.nfeat], b.rows, b.rowClasses[:b.rows])
		if m := s.drift.Load(); m != nil {
			m.ObserveBatch(b.feats[:b.rows*b.nfeat], b.rows, b.nfeat, b.rowClasses[:b.rows])
		}
	}
	end := time.Now().UnixNano()
	s.coalesceBatches.Add(1)
	s.coalesceRows.Add(uint64(b.rows))
	s.coalesceHist.Observe(int64(b.rows))
	off := 0
	for i := range b.entries {
		e := &b.entries[i]
		w := e.w
		w.startNS, w.endNS = start, end
		w.batchRows = b.rows
		if inst == nil {
			w.failed = true
		} else {
			w.failed = false
			w.version = inst.Version()
			demuxClasses(w.classes[:e.rows], b.rowClasses[off:off+e.rows])
		}
		off += e.rows
		e.w = nil
		w.done <- struct{}{} // publishes every field written above
	}
	b.entries = b.entries[:0]
	b.feats = b.feats[:0]
	b.rows = 0
	sh.put(b)
}

// finishCoalesced does the shared post-gather bookkeeping for a coalesced
// request: attribution counters, the collection-pipeline sample, the
// queue-delay observation (arrival → batch start, so the gather wait is
// what the histogram and StageQueue span show), and the request's own
// span tree under its own TraceID — per-request spans even though the
// infer stage was shared, with the achieved batch size packed into the
// StageInfer span's Aux (dtrace.PackInferAux).
func (s *Server) finishCoalesced(sc *srvConn, tid uint64, class int64, rows int, payloadLen, parseStartNS, parseEndNS int64) {
	w := &sc.cw
	s.inferences.Add(1)
	s.rows.Add(uint64(rows))
	s.pipeline.Collect(Sample{Version: w.version, Class: int32(class), Rows: int32(rows)})
	delay := w.startNS - sc.arrivalNS
	s.queueNanos.Observe(delay)
	sc.queueDone = true
	id := dtrace.TraceID(tid)
	if id == 0 {
		id = s.traces.NextID()
	}
	sc.tb.Start(id, sc.arrivalNS)
	qs := sc.tb.Begin(dtrace.StageQueue, 0, sc.arrivalNS)
	sc.tb.End(qs, w.startNS)
	sc.tb.SetValue(qs, delay)
	ps := sc.tb.Begin(dtrace.StageParse, 0, parseStartNS)
	sc.tb.End(ps, parseEndNS)
	sc.tb.SetValue(ps, payloadLen)
	is := sc.tb.Begin(dtrace.StageInfer, 0, w.startNS)
	sc.tb.End(is, w.endNS)
	sc.tb.SetValue(is, class)
	sc.tb.SetAux(is, dtrace.PackInferAux(w.version, w.batchRows))
}

// encodeCoalesced closes the coalesced request's trace around the encode
// stage and records it.
func (s *Server) encodeCoalesced(sc *srvConn, class int64, rows int) {
	es := sc.tb.Begin(dtrace.StageEncode, 0, time.Now().UnixNano())
	sc.tb.End(es, time.Now().UnixNano())
	sc.tb.SetValue(es, int64(len(sc.resp)))
	sc.tb.SetValue(0, class)
	sc.tb.SetAux(0, int64(rows))
	s.traces.Record(sc.tb.Finish(time.Now().UnixNano()))
}

// doInferCoalesced is the coalesced single-inference path: parse, gather
// the one row into the connection's shard, park until the batch executor
// demuxes the class back, then encode — with the same per-request
// attribution the inline path has.
func (s *Server) doInferCoalesced(sc *srvConn, snap *Snapshot[*Artifact], p []byte) (MsgType, []byte) {
	inDim := snap.Model.InDim
	if len(sc.feats) < inDim {
		sc.feats = make([]float64, inDim)
	}
	parseStart := time.Now().UnixNano()
	n, tid, err := ParseInferReq(p, sc.feats)
	parseEnd := time.Now().UnixNano()
	if err != nil {
		return s.errorResp(sc, "bad infer payload")
	}
	if n != inDim {
		return s.errorResp(sc, fmt.Sprintf("feature count %d, model wants %d", n, inDim))
	}
	w := &sc.cw
	w.ready()
	if cap(w.classes) < 1 {
		w.classes = make([]uint16, 1)
	}
	w.classes = w.classes[:1]
	if !s.coal.submit(s, sc.shard, w, sc.feats[:n], 1, n) {
		return s.errorResp(sc, "coalesce submit refused single row") // unreachable: maxRows > 1
	}
	if w.failed {
		return s.errorResp(sc, "model replaced during gather; retry")
	}
	class := int64(w.classes[0])
	s.finishCoalesced(sc, tid, class, 1, int64(len(p)), parseStart, parseEnd)
	sc.resp = AppendInferResp(sc.resp[:0], w.classes[0], w.version)
	s.encodeCoalesced(sc, class, 1)
	return MsgInfer, sc.resp
}

// doBatchInferCoalesced gathers a small client batch into the shared
// arena alongside other connections' rows. ok=false (request at or above
// the gather capacity, peeked from the wire header without a full parse)
// sends the caller down the inline path.
func (s *Server) doBatchInferCoalesced(sc *srvConn, snap *Snapshot[*Artifact], p []byte) (MsgType, []byte, bool) {
	if len(p) >= 14 {
		// Rows sit after the u64 trace-id prefix (AppendBatchInferReq).
		if rows := int(binary.LittleEndian.Uint32(p[8:])); rows >= s.coal.maxRows {
			return 0, nil, false
		}
	}
	inDim := snap.Model.InDim
	if need := batchFloats(p, inDim); need > len(sc.feats) {
		sc.feats = make([]float64, need)
	}
	parseStart := time.Now().UnixNano()
	rows, nfeat, tid, err := ParseBatchInferReq(p, sc.feats)
	parseEnd := time.Now().UnixNano()
	if err != nil {
		return s.errorResp2(sc, "bad batch payload")
	}
	if nfeat != inDim {
		return s.errorResp2(sc, fmt.Sprintf("feature count %d, model wants %d", nfeat, inDim))
	}
	w := &sc.cw
	w.ready()
	if cap(w.classes) < rows {
		w.classes = make([]uint16, rows)
	}
	w.classes = w.classes[:rows]
	if !s.coal.submit(s, sc.shard, w, sc.feats[:rows*nfeat], rows, nfeat) {
		return 0, nil, false // raced a config the peek missed; serve inline
	}
	if w.failed {
		return s.errorResp2(sc, "model replaced during gather; retry")
	}
	s.finishCoalesced(sc, tid, -1, rows, int64(len(p)), parseStart, parseEnd)
	sc.resp = AppendBatchInferResp(sc.resp[:0], w.classes[:rows], w.version)
	s.encodeCoalesced(sc, -1, rows)
	return MsgBatchInfer, sc.resp, true
}

// errorResp2 adapts errorResp to the three-value coalesced-batch return.
func (s *Server) errorResp2(sc *srvConn, msg string) (MsgType, []byte, bool) {
	typ, resp := s.errorResp(sc, msg)
	return typ, resp, true
}
