package mserve

import (
	"math/rand"
	"testing"
)

// TestBatchInferAllocFree is the satellite alloc gate for the serving
// loop: once a connection's buffers and the instance's batch scratch have
// reached their high-water mark, handling a batched inference request must
// not allocate — the request path is decode → fused batched forward →
// encode, all over pooled memory.
func TestBatchInferAllocFree(t *testing.T) {
	s, _ := startServer(t, Config{})
	if _, err := s.Deploy(KindNN, "m", nnModelBytes(t, 3, 4)); err != nil {
		t.Fatal(err)
	}
	const rows, nfeat = 64, 4
	rng := rand.New(rand.NewSource(4))
	flat := make([]float64, rows*nfeat)
	for i := range flat {
		flat[i] = rng.NormFloat64()
	}
	payload := AppendBatchInferReq(nil, 0, flat, rows, nfeat)
	sc := &srvConn{s: s}
	warmTyp, _ := s.doBatchInfer(sc, payload)
	if warmTyp != MsgBatchInfer {
		t.Fatalf("warmup response type %d", warmTyp)
	}
	if a := testing.AllocsPerRun(100, func() {
		if typ, _ := s.doBatchInfer(sc, payload); typ != MsgBatchInfer {
			t.Fatal("batch infer failed")
		}
	}); a != 0 {
		t.Errorf("batched inference request allocates %.1f/run, want 0", a)
	}
	// Single-row requests over the same warmed connection stay alloc-free
	// too (the batch path at rows=1).
	one := AppendBatchInferReq(nil, 0, flat[:nfeat], 1, nfeat)
	s.doBatchInfer(sc, one)
	if a := testing.AllocsPerRun(100, func() { s.doBatchInfer(sc, one) }); a != 0 {
		t.Errorf("rows=1 batched request allocates %.1f/run, want 0", a)
	}
}
