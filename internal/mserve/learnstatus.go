// MsgLearnStatus payload: the wire form of the online-learning
// controller's state. Like MsgMetrics it is pull-based — the controller
// (internal/olearn) registers a snapshot source on the server and the
// payload is produced on demand — but unlike the self-describing metrics
// blob its layout is fixed: the state machine's position, the lifecycle
// counters, the canary comparison, and a bounded history of retrain
// events (the controller's flight recorder).
//
// Layout (all integers little-endian; int64 fields are two's-complement
// bit patterns):
//
//	u8  state                 (LearnIdle..LearnRolledBack)
//	u64 retrains | u64 deploys | u64 rollbacks | u64 commits
//	u64 trigger_fires | u64 examples | u64 last_version
//	i64 baseline_pm | i64 canary_pm      (-1 = unknown)
//	u16 nevents               (≤ MaxRetrainEvents)
//	repeated nevents times (64 bytes each):
//	  u64 time_ns | u64 version | u64 duration_ns
//	  u32 examples | u8 outcome (RetrainPending..RetrainRolledBack) | 3 zero bytes
//	  i64 baseline_pm | i64 canary_pm | i64 max_shift_mz | i64 churn_pm
//
// Every field is fixed-width and every enum and count is validated on
// decode, so the encoding is canonical: AppendLearnStatus(
// ParseLearnStatus(b)) == b for every accepted b — the invariant
// FuzzLearnStatusDecode pins, like the frame/metrics/traces decoders
// before it.
package mserve

import "encoding/binary"

// Controller states on the wire, mirroring olearn's state machine. The
// server does not interpret them beyond range-checking; they live here so
// the wire contract is self-contained.
const (
	LearnIdle       = 0
	LearnCollecting = 1
	LearnRetraining = 2
	LearnCanary     = 3
	LearnCommitted  = 4
	LearnRolledBack = 5
)

// Retrain event outcomes.
const (
	RetrainPending    = 0 // deployed, canary window still open
	RetrainCommitted  = 1
	RetrainRolledBack = 2
	RetrainFailed     = 3 // training or deploy failed; nothing swapped
)

// MaxRetrainEvents bounds the event history on the wire. 128 events is
// ~8 KB — far below the frame cap, far above any sane flight-recorder
// depth.
const MaxRetrainEvents = 128

// RetrainEvent is one completed (or in-flight) retrain cycle: when it
// ran, what it deployed, what the canary saw, and what tripped it.
type RetrainEvent struct {
	TimeNanos     uint64 // wall-clock time the cycle finished training
	Version       uint64 // registry version deployed (0 if none)
	DurationNanos uint64 // background training duration
	Examples      uint32 // training examples used
	Outcome       uint8  // RetrainPending..RetrainFailed
	BaselinePM    int64  // pre-deploy hit-rate baseline, per-mille (-1 unknown)
	CanaryPM      int64  // post-deploy canary mean, per-mille (-1 unknown)
	MaxShiftMZ    int64  // drift shift (milli-Z) at trigger time
	ChurnPM       int64  // prediction churn (per-mille) at trigger time
}

// LearnStatus is the controller snapshot MsgLearnStatus carries.
type LearnStatus struct {
	State        uint8
	Retrains     uint64 // retrain cycles started
	Deploys      uint64 // versions the controller deployed
	Rollbacks    uint64 // canary rollbacks
	Commits      uint64 // canary commits
	TriggerFires uint64 // drift-trigger firings
	Examples     uint64 // training examples currently buffered
	LastVersion  uint64 // most recent version the controller deployed
	BaselinePM   int64  // current pre-deploy baseline (-1 unknown)
	CanaryPM     int64  // current canary mean (-1 unknown)
	Events       []RetrainEvent
}

// retrainEventSize is the fixed wire size of one event.
const retrainEventSize = 64

// AppendLearnStatus appends the canonical wire form of st. Events beyond
// MaxRetrainEvents are dropped oldest-first (the newest history is the
// operable part).
func AppendLearnStatus(dst []byte, st LearnStatus) []byte {
	dst = append(dst, st.State)
	for _, v := range [7]uint64{
		st.Retrains, st.Deploys, st.Rollbacks, st.Commits,
		st.TriggerFires, st.Examples, st.LastVersion,
	} {
		dst = binary.LittleEndian.AppendUint64(dst, v)
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(st.BaselinePM))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(st.CanaryPM))
	events := st.Events
	if len(events) > MaxRetrainEvents {
		events = events[len(events)-MaxRetrainEvents:]
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(events)))
	for _, e := range events {
		dst = binary.LittleEndian.AppendUint64(dst, e.TimeNanos)
		dst = binary.LittleEndian.AppendUint64(dst, e.Version)
		dst = binary.LittleEndian.AppendUint64(dst, e.DurationNanos)
		dst = binary.LittleEndian.AppendUint32(dst, e.Examples)
		dst = append(dst, e.Outcome, 0, 0, 0)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(e.BaselinePM))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(e.CanaryPM))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(e.MaxShiftMZ))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(e.ChurnPM))
	}
	return dst
}

// learnHeaderSize is the fixed part before the event list: state byte,
// seven u64 counters, two i64 per-mille fields, u16 count.
const learnHeaderSize = 1 + 7*8 + 2*8 + 2

// ParseLearnStatus decodes a learn-status payload, rejecting out-of-range
// states, outcomes, counts, nonzero padding, and length mismatches with
// ErrBadMessage.
func ParseLearnStatus(p []byte) (LearnStatus, error) {
	var st LearnStatus
	if len(p) < learnHeaderSize {
		return st, ErrBadMessage
	}
	st.State = p[0]
	if st.State > LearnRolledBack {
		return LearnStatus{}, ErrBadMessage
	}
	off := 1
	for _, dst := range [7]*uint64{
		&st.Retrains, &st.Deploys, &st.Rollbacks, &st.Commits,
		&st.TriggerFires, &st.Examples, &st.LastVersion,
	} {
		*dst = binary.LittleEndian.Uint64(p[off:])
		off += 8
	}
	st.BaselinePM = int64(binary.LittleEndian.Uint64(p[off:]))
	st.CanaryPM = int64(binary.LittleEndian.Uint64(p[off+8:]))
	off += 16
	n := int(binary.LittleEndian.Uint16(p[off:]))
	off += 2
	if n > MaxRetrainEvents || len(p)-off != retrainEventSize*n {
		return LearnStatus{}, ErrBadMessage
	}
	if n > 0 {
		st.Events = make([]RetrainEvent, 0, n)
	}
	for i := 0; i < n; i++ {
		var e RetrainEvent
		e.TimeNanos = binary.LittleEndian.Uint64(p[off:])
		e.Version = binary.LittleEndian.Uint64(p[off+8:])
		e.DurationNanos = binary.LittleEndian.Uint64(p[off+16:])
		e.Examples = binary.LittleEndian.Uint32(p[off+24:])
		e.Outcome = p[off+28]
		if e.Outcome > RetrainFailed || p[off+29] != 0 || p[off+30] != 0 || p[off+31] != 0 {
			return LearnStatus{}, ErrBadMessage
		}
		e.BaselinePM = int64(binary.LittleEndian.Uint64(p[off+32:]))
		e.CanaryPM = int64(binary.LittleEndian.Uint64(p[off+40:]))
		e.MaxShiftMZ = int64(binary.LittleEndian.Uint64(p[off+48:]))
		e.ChurnPM = int64(binary.LittleEndian.Uint64(p[off+56:]))
		off += retrainEventSize
		st.Events = append(st.Events, e)
	}
	return st, nil
}

// LearnStateName renders a wire state for humans.
func LearnStateName(s uint8) string {
	switch s {
	case LearnIdle:
		return "idle"
	case LearnCollecting:
		return "collecting"
	case LearnRetraining:
		return "retraining"
	case LearnCanary:
		return "canary"
	case LearnCommitted:
		return "committed"
	case LearnRolledBack:
		return "rolled-back"
	}
	return "?"
}

// RetrainOutcomeName renders an event outcome for humans.
func RetrainOutcomeName(o uint8) string {
	switch o {
	case RetrainPending:
		return "canary"
	case RetrainCommitted:
		return "committed"
	case RetrainRolledBack:
		return "rolled-back"
	case RetrainFailed:
		return "failed"
	}
	return "?"
}
