package mserve

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// tempAcceptErr is a net.Error the accept loop must treat as transient.
type tempAcceptErr struct{}

func (tempAcceptErr) Error() string   { return "accept: resource temporarily unavailable" }
func (tempAcceptErr) Timeout() bool   { return false }
func (tempAcceptErr) Temporary() bool { return true }

// flakyListener scripts an Accept failure sequence: tempFails temporary
// errors, then the permanent error. It never yields a connection.
type flakyListener struct {
	tempFails int32
	permanent error
}

func (l *flakyListener) Accept() (net.Conn, error) {
	if atomic.AddInt32(&l.tempFails, -1) >= 0 {
		return nil, tempAcceptErr{}
	}
	return nil, l.permanent
}
func (l *flakyListener) Close() error   { return nil }
func (l *flakyListener) Addr() net.Addr { return &net.UnixAddr{Name: "flaky", Net: "unix"} }

// TestServeAcceptBackoff is the regression gate for accept-loop
// resilience: temporary Accept errors (EMFILE bursts, aborted
// handshakes) are counted, backed off, and retried — the server must
// not die on them — while a permanent error still ends Serve with that
// error. Before the backoff change, one EMFILE killed the accept loop.
func TestServeAcceptBackoff(t *testing.T) {
	r, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatalf("open registry: %v", err)
	}
	s, err := NewServer(Config{Registry: r})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	defer s.Shutdown(time.Second)

	boom := errors.New("listener torn down")
	const tempFails = 3
	start := time.Now()
	err = s.Serve(&flakyListener{tempFails: tempFails, permanent: boom})
	elapsed := time.Since(start)

	if !errors.Is(err, boom) {
		t.Fatalf("Serve returned %v, want the permanent error", err)
	}
	// Three temporary failures back off 5+10+20 ms before the permanent
	// error surfaces; well under the 1s cap, so an exact lower bound.
	if want := 35 * time.Millisecond; elapsed < want {
		t.Fatalf("Serve returned after %v, want >= %v of backoff", elapsed, want)
	}
	counts := make(map[string]int64)
	for _, smp := range s.MetricsRegistry().Snapshot() {
		if smp.Kind == telemetry.KindCounter {
			counts[smp.Name] = smp.Value
		}
	}
	if got := counts["mserve_accept_errors"]; got != tempFails+1 {
		t.Fatalf("mserve_accept_errors = %d, want %d", got, tempFails+1)
	}
	if got := counts["mserve_accepted"]; got != 0 {
		t.Fatalf("mserve_accepted = %d, want 0", got)
	}
}
