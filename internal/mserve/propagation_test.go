package mserve

import (
	"testing"

	"repro/internal/dtrace"
)

// TestCrossProcessTracePropagation is the tentpole gate for distributed
// tracing: a traced client stamps its TraceID into the request frame,
// and the server records its own span tree UNDER THAT ID — so pulling
// MsgTraces yields a server trace whose ID matches the client's arena
// exactly, and kml-trace can join the two into one tree.
func TestCrossProcessTracePropagation(t *testing.T) {
	_, sock := startServer(t, Config{TraceCapacity: 32})
	cl := dial(t, sock)
	if _, err := cl.Deploy(KindNN, "m", nnModelBytes(t, 42, 4)); err != nil {
		t.Fatalf("deploy: %v", err)
	}

	arena := dtrace.NewArena(16)
	cl.EnableTracing(arena)
	if cl.LastTraceID() != 0 {
		t.Fatal("LastTraceID before any traced request")
	}

	if _, _, err := cl.Infer([]float64{0.1, 0.2, 0.3, 0.4}); err != nil {
		t.Fatalf("infer: %v", err)
	}
	inferID := cl.LastTraceID()
	flat := make([]float64, 8*4)
	if _, _, err := cl.BatchInfer(flat, 8, 4); err != nil {
		t.Fatalf("batch: %v", err)
	}
	batchID := cl.LastTraceID()
	if inferID == 0 || batchID == 0 || inferID == batchID {
		t.Fatalf("trace IDs: infer=%#x batch=%#x", inferID, batchID)
	}
	for _, id := range []dtrace.TraceID{inferID, batchID} {
		if uint64(id)&ClientTraceIDBit == 0 {
			t.Fatalf("client-minted ID %#x lacks ClientTraceIDBit", id)
		}
	}

	// Client side: one complete trace per inference call, root StageClient
	// over encode → wire → parse, carrying the stamped IDs.
	ctraces := arena.Snapshot()
	if len(ctraces) != 2 {
		t.Fatalf("client retained %d traces, want 2", len(ctraces))
	}
	wantStages := []dtrace.Stage{
		dtrace.StageClient, dtrace.StageEncode, dtrace.StageWire, dtrace.StageParse,
	}
	for i := range ctraces {
		tr := &ctraces[i]
		if !tr.Complete() {
			t.Fatalf("client trace %d incomplete: %+v", i, tr)
		}
		if int(tr.N) != len(wantStages) {
			t.Fatalf("client trace %d has %d spans, want %d", i, tr.N, len(wantStages))
		}
		for si, sp := range tr.Used() {
			if sp.Stage != wantStages[si] {
				t.Fatalf("client trace %d span %d stage %v, want %v", i, si, sp.Stage, wantStages[si])
			}
		}
	}
	if ctraces[0].ID != inferID || ctraces[1].ID != batchID {
		t.Fatalf("client trace IDs %#x/%#x, want %#x/%#x",
			ctraces[0].ID, ctraces[1].ID, inferID, batchID)
	}
	// Root attributes echo the responses: class for the single infer,
	// batch marker plus row count for the batch.
	if r := ctraces[0].Root(); r.Aux != 1 || r.Value < 0 || r.Value > 3 {
		t.Fatalf("client infer root attrs: %+v", r)
	}
	if r := ctraces[1].Root(); r.Value != -1 || r.Aux != 8 {
		t.Fatalf("client batch root attrs: %+v", r)
	}

	// Server side: the join. The server's traces for these requests carry
	// the CLIENT's IDs, and each server root window nests inside the
	// client's wire span (same host clock).
	straces, err := cl.Traces()
	if err != nil {
		t.Fatalf("traces: %v", err)
	}
	byID := make(map[dtrace.TraceID]*dtrace.Trace, len(straces))
	for i := range straces {
		byID[straces[i].ID] = &straces[i]
	}
	for i, id := range []dtrace.TraceID{inferID, batchID} {
		srv, ok := byID[id]
		if !ok {
			t.Fatalf("server retained no trace under client ID %#x", id)
		}
		if !srv.Complete() {
			t.Fatalf("server trace %#x incomplete", id)
		}
		if got := srv.Spans[1].Stage; got != dtrace.StageQueue {
			t.Fatalf("server trace %#x first child stage %v, want queue", id, got)
		}
		wire := ctraces[i].Spans[2]
		if sr := srv.Root(); sr.Start < wire.Start || sr.End > wire.End {
			t.Fatalf("server root [%d,%d] outside client wire span [%d,%d]",
				sr.Start, sr.End, wire.Start, wire.End)
		}
	}

	// Control-plane calls on a traced client stay untraced: no new client
	// trace appears (and the server records no trace for them either).
	if _, err := cl.Stats(); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if arena.Len() != 2 {
		t.Fatalf("control-plane call recorded a client trace: %d retained", arena.Len())
	}
}

// TestClientTracingAllocFree gates the propagation overhead: the tracing
// machinery a traced request adds — mint the ID, build four spans,
// record into the arena — allocates nothing. The wire round trip around
// it is covered by the server-side gate (TestBatchInferAllocFree).
func TestClientTracingAllocFree(t *testing.T) {
	arena := dtrace.NewArena(8)
	cl := &Client{}
	cl.EnableTracing(arena)
	run := func() {
		if tid := cl.startTrace(); tid == 0 {
			t.Fatal("startTrace returned 0 with tracing enabled")
		}
		es := cl.tb.Begin(dtrace.StageEncode, 0, 10)
		cl.tb.End(es, 20)
		ws := cl.tb.Begin(dtrace.StageWire, 0, 20)
		cl.tb.End(ws, 90)
		ps := cl.tb.Begin(dtrace.StageParse, 0, 90)
		cl.tb.End(ps, 100)
		cl.finishTrace(2, 1)
	}
	run() // warm the arena's ring
	if a := testing.AllocsPerRun(200, run); a != 0 {
		t.Errorf("client tracing allocates %.1f/run, want 0", a)
	}
}
