package mserve

import (
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// TestDebugTextRenderers drives the /traces and /learn page renderers
// kml-served mounts on its debug mux: after served traffic, WriteTraces
// shows the retained request traces (queue span included) and WriteLearn
// renders the learn status — idle zero value without a controller, live
// counters with one.
func TestDebugTextRenderers(t *testing.T) {
	s, sock := startServer(t, Config{TraceCapacity: 8})
	cl := dial(t, sock)

	var sb strings.Builder
	if err := s.WriteTraces(&sb); err != nil {
		t.Fatalf("WriteTraces idle: %v", err)
	}
	if !strings.Contains(sb.String(), "0 traces retained") {
		t.Fatalf("idle /traces page: %q", sb.String())
	}

	if _, err := cl.Deploy(KindNN, "m", nnModelBytes(t, 42, 4)); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := cl.Infer([]float64{0.1, 0.2, 0.3, 0.4}); err != nil {
			t.Fatalf("infer: %v", err)
		}
	}
	sb.Reset()
	if err := s.WriteTraces(&sb); err != nil {
		t.Fatalf("WriteTraces: %v", err)
	}
	page := sb.String()
	for _, want := range []string{"3 traces retained", "queue", "infer", "encode", "trace "} {
		if !strings.Contains(page, want) {
			t.Fatalf("/traces page missing %q:\n%s", want, page)
		}
	}

	sb.Reset()
	if err := s.WriteLearn(&sb); err != nil {
		t.Fatalf("WriteLearn detached: %v", err)
	}
	if !strings.Contains(sb.String(), "state=idle") ||
		!strings.Contains(sb.String(), "0 retrain events") {
		t.Fatalf("detached /learn page: %q", sb.String())
	}

	s.SetLearnSource(func() LearnStatus {
		return LearnStatus{
			State: LearnCanary, Retrains: 2, Deploys: 2, Commits: 1,
			BaselinePM: 700, CanaryPM: 650,
			Events: []RetrainEvent{{
				TimeNanos: 1, Version: 9, Examples: 128,
				Outcome: RetrainCommitted, BaselinePM: 600, CanaryPM: 700,
			}},
		}
	})
	sb.Reset()
	if err := s.WriteLearn(&sb); err != nil {
		t.Fatalf("WriteLearn live: %v", err)
	}
	page = sb.String()
	for _, want := range []string{"state=canary", "retrains=2", "retrain v9", "committed", "1 retrain events"} {
		if !strings.Contains(page, want) {
			t.Fatalf("/learn page missing %q:\n%s", want, page)
		}
	}

	// The pages are also reachable through the telemetry mux the daemon
	// builds — same renderers, no divergence possible.
	_ = telemetry.DebugMux(s.MetricsRegistry(),
		telemetry.DebugEndpoint{Path: "/traces", Render: s.WriteTraces},
		telemetry.DebugEndpoint{Path: "/learn", Render: s.WriteLearn},
		telemetry.DebugEndpoint{Path: "/timeseries", Render: s.WriteTimeSeries},
	)
}

// TestWriteTimeSeries drives the /timeseries page renderer: header
// lines always present, one "point" line per captured tick with the
// full column set, and a trailing count.
func TestWriteTimeSeries(t *testing.T) {
	s, sock := startServer(t, Config{})
	cl := dial(t, sock)

	var sb strings.Builder
	if err := s.WriteTimeSeries(&sb); err != nil {
		t.Fatalf("WriteTimeSeries empty: %v", err)
	}
	page := sb.String()
	for _, want := range []string{"interval_ns ", "counters mserve_rows", "hists ", "0 points"} {
		if !strings.Contains(page, want) {
			t.Fatalf("empty /timeseries page missing %q:\n%s", want, page)
		}
	}

	if _, err := cl.Deploy(KindNN, "m", nnModelBytes(t, 42, 4)); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	if _, _, err := cl.Infer([]float64{0.1, 0.2, 0.3, 0.4}); err != nil {
		t.Fatalf("infer: %v", err)
	}
	s.TimeSeriesRecorder().Tick(123_000_000_000)
	sb.Reset()
	if err := s.WriteTimeSeries(&sb); err != nil {
		t.Fatalf("WriteTimeSeries: %v", err)
	}
	page = sb.String()
	if !strings.Contains(page, "point 123000000000 ") || !strings.Contains(page, "1 points") {
		t.Fatalf("/timeseries page after tick:\n%s", page)
	}
	// The point line carries every column: time + counters + 4 per hist.
	ts := s.TimeSeries()
	for _, line := range strings.Split(page, "\n") {
		if strings.HasPrefix(line, "point ") {
			fields := strings.Fields(line)
			want := 2 + len(ts.Counters) + 4*len(ts.Hists)
			if len(fields) != want {
				t.Fatalf("point line has %d fields, want %d: %q", len(fields), want, line)
			}
		}
	}
}
