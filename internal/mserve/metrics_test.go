package mserve

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func sampleSnapshot() MetricsSnapshot {
	var h telemetry.Histogram
	for _, ns := range []int64{0, 1, 100, 100, 20_000, 1 << 40} {
		h.Observe(ns)
	}
	return MetricsSnapshot{
		Metrics: []Metric{
			{Name: "mserve_infer_ns", Kind: MetricHistogram, Hist: h.Snapshot()},
			{Name: "mserve_inferences", Kind: MetricCounter, Value: 42},
			{Name: "mserve_conns", Kind: MetricGauge, Value: -3},
		},
		Decisions: []MetricsDecision{
			{TimeNanos: 1_000_000, Version: 1, Class: 2, Rows: 1, Sectors: 8},
			{TimeNanos: 2_000_000, Version: 2, Class: -1, Rows: 50, Sectors: 0},
		},
	}
}

func TestMetricsRoundTrip(t *testing.T) {
	in := sampleSnapshot()
	wire := AppendMetrics(nil, in)
	out, err := ParseMetrics(wire)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(out.Metrics) != len(in.Metrics) || len(out.Decisions) != len(in.Decisions) {
		t.Fatalf("shape %d/%d metrics, %d/%d decisions",
			len(out.Metrics), len(in.Metrics), len(out.Decisions), len(in.Decisions))
	}
	for i, m := range out.Metrics {
		if m.Name != in.Metrics[i].Name || m.Kind != in.Metrics[i].Kind || m.Value != in.Metrics[i].Value {
			t.Errorf("metric %d: %+v != %+v", i, m, in.Metrics[i])
		}
	}
	h := out.Metrics[0].Hist
	if h.Count != 6 || h.Sum != in.Metrics[0].Hist.Sum {
		t.Errorf("histogram count=%d sum=%d", h.Count, h.Sum)
	}
	if h.Buckets != in.Metrics[0].Hist.Buckets {
		t.Error("histogram buckets differ after round trip")
	}
	for i, d := range out.Decisions {
		if d != in.Decisions[i] {
			t.Errorf("decision %d: %+v != %+v", i, d, in.Decisions[i])
		}
	}
	// Canonical: re-encoding the parsed snapshot reproduces the bytes.
	if !bytes.Equal(AppendMetrics(nil, out), wire) {
		t.Error("re-encode mismatch")
	}
}

func TestMetricsEmpty(t *testing.T) {
	wire := AppendMetrics(nil, MetricsSnapshot{})
	out, err := ParseMetrics(wire)
	if err != nil || len(out.Metrics) != 0 || len(out.Decisions) != 0 {
		t.Fatalf("empty round trip: %+v err=%v", out, err)
	}
}

func TestParseMetricsRejects(t *testing.T) {
	good := AppendMetrics(nil, sampleSnapshot())
	cases := map[string][]byte{
		"empty":            {},
		"short header":     {1},
		"truncated":        good[:len(good)-1],
		"trailing":         append(append([]byte{}, good...), 0),
		"metric overcount": {0xFF, 0xFF},
		"zero name":        {1, 0, MetricCounter, 0},
	}
	// Out-of-order histogram buckets: build by hand — kind 2, name "h",
	// sum 0, two buckets with indexes 5 then 5 (not increasing).
	bad := []byte{1, 0, MetricHistogram, 1, 'h'}
	bad = append(bad, make([]byte, 8)...) // sum
	bad = append(bad, 2)                  // nbuckets
	bad = append(bad, 5, 1, 0, 0, 0, 0, 0, 0, 0)
	bad = append(bad, 5, 1, 0, 0, 0, 0, 0, 0, 0)
	bad = append(bad, 0, 0) // ndecisions
	cases["unordered buckets"] = bad
	// Zero-count bucket.
	zc := []byte{1, 0, MetricHistogram, 1, 'h'}
	zc = append(zc, make([]byte, 8)...)
	zc = append(zc, 1)
	zc = append(zc, 3, 0, 0, 0, 0, 0, 0, 0, 0)
	zc = append(zc, 0, 0)
	cases["zero-count bucket"] = zc
	for name, p := range cases {
		if _, err := ParseMetrics(p); !errors.Is(err, ErrBadMessage) {
			t.Errorf("%s: err = %v, want ErrBadMessage", name, err)
		}
	}
}

// TestServerMetricsEndToEnd drives traffic through a live server and
// checks the MsgMetrics surface: request-latency histograms populate,
// gauges track the stats counters, and the flight recorder retains the
// served decisions with the deployed model version.
func TestServerMetricsEndToEnd(t *testing.T) {
	s, sock := startServer(t, Config{})
	cl := dial(t, sock)

	if _, err := cl.Deploy(KindNN, "readahead-nn", nnModelBytes(t, 7, 4)); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	const singles = 5
	for i := 0; i < singles; i++ {
		if _, _, err := cl.Infer([]float64{0.1, 0.2, 0.3, 0.4}); err != nil {
			t.Fatalf("infer: %v", err)
		}
	}
	flat := make([]float64, 8*4)
	if _, _, err := cl.BatchInfer(flat, 8, 4); err != nil {
		t.Fatalf("batch: %v", err)
	}

	// The flight recorder fills on the asynchronous collection thread.
	deadline := time.Now().Add(2 * time.Second)
	var snap MetricsSnapshot
	for {
		var err error
		snap, err = cl.Metrics()
		if err != nil {
			t.Fatalf("metrics: %v", err)
		}
		if len(snap.Decisions) >= singles+1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	byName := map[string]Metric{}
	for _, m := range snap.Metrics {
		byName[m.Name] = m
	}
	if h := byName["mserve_infer_ns"]; h.Kind != MetricHistogram || h.Hist.Count != singles {
		t.Errorf("mserve_infer_ns: kind=%d count=%d, want histogram count %d", h.Kind, h.Hist.Count, singles)
	}
	if h := byName["mserve_batch_infer_ns"]; h.Hist.Count != 1 {
		t.Errorf("mserve_batch_infer_ns count %d, want 1", h.Hist.Count)
	}
	if h := byName["mserve_deploy_ns"]; h.Hist.Count != 1 {
		t.Errorf("mserve_deploy_ns count %d, want 1", h.Hist.Count)
	}
	if g := byName["mserve_active_version"]; g.Kind != MetricGauge || g.Value != 1 {
		t.Errorf("mserve_active_version = %+v", g)
	}
	if g := byName["mserve_inferences"]; g.Value != singles+1 {
		t.Errorf("mserve_inferences = %d, want %d", g.Value, singles+1)
	}
	if g := byName["mserve_rows"]; g.Value != singles+8 {
		t.Errorf("mserve_rows = %d, want %d", g.Value, singles+8)
	}
	if _, ok := byName["mserve_pipeline_iter_ns"]; !ok {
		t.Error("pipeline iteration histogram missing")
	}
	if _, ok := byName["mserve_pipeline_collected"]; !ok {
		t.Error("pipeline gauges missing")
	}

	if len(snap.Decisions) < singles+1 {
		t.Fatalf("flight recorder retained %d decisions, want ≥ %d", len(snap.Decisions), singles+1)
	}
	var single, batch int
	for _, d := range snap.Decisions {
		if d.Version != 1 {
			t.Errorf("decision version %d, want 1", d.Version)
		}
		switch {
		case d.Class >= 0 && d.Rows == 1:
			single++
		case d.Class == -1 && d.Rows == 8:
			batch++
		default:
			t.Errorf("unexpected decision %+v", d)
		}
	}
	if single != singles || batch != 1 {
		t.Errorf("decisions: %d single + %d batch, want %d + 1", single, batch, singles)
	}

	// The server's Stats view and the metrics gauges must agree.
	st, err := cl.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if uint64(byName["mserve_rows"].Value) != st.Rows {
		t.Errorf("rows gauge %d != stats %d", byName["mserve_rows"].Value, st.Rows)
	}
	if s.MetricsRegistry() == nil {
		t.Error("nil metrics registry")
	}
}
