package mserve

import (
	"testing"
	"time"

	"repro/internal/telemetry/tsrec"
)

// TestServerTimeSeriesEndToEnd: the server's recorder captures points at
// the configured interval while traffic flows, and MsgTimeSeries hands
// them to the client — named columns, monotonic timestamps, and counter
// deltas that add up to the traffic actually served.
func TestServerTimeSeriesEndToEnd(t *testing.T) {
	const interval = 20 * time.Millisecond
	_, sock := startServer(t, Config{
		TimeSeriesInterval: interval,
		TimeSeriesCapacity: 64,
	})
	cl := dial(t, sock)
	if _, err := cl.Deploy(KindNN, "m", nnModelBytes(t, 42, 4)); err != nil {
		t.Fatalf("deploy: %v", err)
	}

	// Keep issuing requests until at least three captured points arrive
	// (or the deadline says the ticker never fired).
	deadline := time.Now().Add(10 * time.Second)
	var (
		sent int
		ts   = tsPoll(t, cl, &sent, deadline)
	)

	if ts.IntervalNanos != int64(interval) {
		t.Fatalf("interval %d, want %d", ts.IntervalNanos, int64(interval))
	}
	rowsCol, inferCol := -1, -1
	for i, name := range ts.Counters {
		switch name {
		case "mserve_rows":
			rowsCol = i
		case "mserve_inferences":
			inferCol = i
		}
	}
	if rowsCol < 0 || inferCol < 0 {
		t.Fatalf("counter columns missing: %v", ts.Counters)
	}
	histCol := -1
	for i, name := range ts.Hists {
		if name == "mserve_infer_ns" {
			histCol = i
		}
	}
	if histCol < 0 {
		t.Fatalf("mserve_infer_ns column missing: %v", ts.Hists)
	}

	var rows, infers, histN uint64
	for i := range ts.Points {
		p := &ts.Points[i]
		if i > 0 && p.TimeNanos <= ts.Points[i-1].TimeNanos {
			t.Fatalf("timestamps not monotonic: %d after %d",
				p.TimeNanos, ts.Points[i-1].TimeNanos)
		}
		rows += p.Deltas[rowsCol]
		infers += p.Deltas[inferCol]
		histN += p.Counts[histCol]
		// A point that observed inferences must carry their quantiles.
		if p.Counts[histCol] > 0 && p.P99[histCol] <= 0 {
			t.Fatalf("point %d: %d observations but p99=%d",
				i, p.Counts[histCol], p.P99[histCol])
		}
	}
	if rows == 0 || infers == 0 || histN == 0 {
		t.Fatalf("deltas all zero under traffic: rows=%d infers=%d hist=%d", rows, infers, histN)
	}
	if rows > uint64(sent) || infers > uint64(sent) {
		t.Fatalf("deltas exceed traffic: rows=%d infers=%d sent=%d", rows, infers, sent)
	}
}

// tsPoll drives single inferences until the time series holds at least
// three points, returning the snapshot that crossed the threshold.
func tsPoll(t *testing.T, cl *Client, sent *int, deadline time.Time) tsrec.Series {
	t.Helper()
	for {
		if _, _, err := cl.Infer([]float64{0.1, 0.2, 0.3, 0.4}); err != nil {
			t.Fatalf("infer: %v", err)
		}
		*sent++
		got, err := cl.TimeSeries()
		if err != nil {
			t.Fatalf("timeseries: %v", err)
		}
		if len(got.Points) >= 3 {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("recorder captured %d points before deadline", len(got.Points))
		}
		time.Sleep(2 * time.Millisecond)
	}
}
