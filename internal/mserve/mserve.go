// Package mserve is the model-serving subsystem: it turns the KML library
// into a servable system by closing the deployment loop the paper describes
// in §3.3 — "the user can save the model to a file that has a KML-specific
// file format" in the training environment and load the identical artifact
// in the serving environment, without retraining.
//
// The package has three layers:
//
//   - registry.go — a versioned, content-addressed store of serialized KML
//     models (the nn KMLF format and the dtree format), with CRC and
//     content-hash validation on every load, an append-only manifest, and
//     an activation stack supporting rollback;
//   - deploy.go — Deployment[T], the atomic hot-swap handle. Readers
//     (server connections, readahead.Tuner, the fixed-point inference
//     path) dereference the current model with a single atomic pointer
//     load, so deploying a new version never stalls the per-event hot
//     path and never drops a collection event;
//   - frame.go / protocol.go / server.go / client.go — a stdlib-only
//     binary wire protocol (length-prefixed, CRC-protected, versioned
//     frames) and a TCP/unix-socket server exposing Infer, BatchInfer,
//     Deploy, Rollback, Stats and Health, with per-connection deadlines,
//     a connection limit, admission control charged to a memutil.Arena,
//     and graceful drain on shutdown.
//
// cmd/kml-served wraps the server as a daemon and cmd/kml-serve-bench is
// the load harness reporting batched-inference p50/p99 latency against the
// paper's 21 µs single-inference figure.
package mserve
