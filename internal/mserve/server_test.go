package mserve

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/memutil"
)

// startServer brings up a server on a unix socket and tears it down with
// the test. Returns the server and the socket path.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.Registry == nil {
		r, err := OpenRegistry(t.TempDir())
		if err != nil {
			t.Fatalf("open registry: %v", err)
		}
		cfg.Registry = r
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	sock := filepath.Join(t.TempDir(), "s.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	t.Cleanup(func() {
		s.Shutdown(2 * time.Second)
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return s, sock
}

func dial(t *testing.T, sock string) *Client {
	t.Helper()
	cl, err := Dial("unix", sock)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	cl.SetTimeout(5 * time.Second)
	return cl
}

func TestServerEndToEnd(t *testing.T) {
	_, sock := startServer(t, Config{})
	cl := dial(t, sock)

	// Nothing deployed yet: health not-ok, inference refused.
	ok, _, _, err := cl.Health()
	if err != nil || ok {
		t.Fatalf("health on empty server: ok=%v err=%v", ok, err)
	}
	if _, _, err := cl.Infer([]float64{1, 2, 3, 4}); !errors.Is(err, ErrRemote) {
		t.Fatalf("infer on empty server: %v", err)
	}

	// Deploy a network over the wire and serve it.
	model := nnModelBytes(t, 42, 4)
	v, err := cl.Deploy(KindNN, "readahead-nn", model)
	if err != nil || v != 1 {
		t.Fatalf("deploy: v=%d err=%v", v, err)
	}
	ok, version, inDim, err := cl.Health()
	if err != nil || !ok || version != 1 || inDim != 4 {
		t.Fatalf("health: ok=%v v=%d indim=%d err=%v", ok, version, inDim, err)
	}
	class, version, err := cl.Infer([]float64{0.1, 0.2, 0.3, 0.4})
	if err != nil || version != 1 || class < 0 || class > 3 {
		t.Fatalf("infer: class=%d v=%d err=%v", class, version, err)
	}
	// Wrong width is an application error; the connection survives.
	if _, _, err := cl.Infer([]float64{1, 2}); !errors.Is(err, ErrRemote) {
		t.Fatalf("short infer: %v", err)
	}

	flat := make([]float64, 16*4)
	for i := range flat {
		flat[i] = rand.New(rand.NewSource(1)).Float64()
	}
	classes, version, err := cl.BatchInfer(flat, 16, 4)
	if err != nil || len(classes) != 16 || version != 1 {
		t.Fatalf("batch: n=%d v=%d err=%v", len(classes), version, err)
	}

	// Rollback with a single version must fail cleanly...
	if _, err := cl.Rollback(); !errors.Is(err, ErrRemote) {
		t.Fatalf("rollback single version: %v", err)
	}
	// ...and succeed after a second deploy.
	if _, err := cl.Deploy(KindDTree, "readahead-dtree", constTreeBytes(t, 3, 4)); err != nil {
		t.Fatalf("deploy v2: %v", err)
	}
	if class, version, err = cl.Infer([]float64{0.1, 0.2, 0.3, 0.4}); err != nil || version != 2 || class != 3 {
		t.Fatalf("post-deploy infer: class=%d v=%d err=%v", class, version, err)
	}
	if v, err := cl.Rollback(); err != nil || v != 1 {
		t.Fatalf("rollback: v=%d err=%v", v, err)
	}
	if _, version, err = cl.Infer([]float64{0.1, 0.2, 0.3, 0.4}); err != nil || version != 1 {
		t.Fatalf("post-rollback infer: v=%d err=%v", version, err)
	}

	// Stats reflect the traffic and the collection pipeline keeps up.
	st := waitDrained(t, cl)
	if st.ActiveVersion != 1 || st.Deploys != 2 || st.Rollbacks != 1 {
		t.Fatalf("stats control plane: %+v", st)
	}
	if st.Inferences != 4 || st.Rows != 19 {
		t.Fatalf("stats traffic: inferences=%d rows=%d", st.Inferences, st.Rows)
	}
	if st.Dropped != 0 || st.BufferCap == 0 {
		t.Fatalf("stats pipeline: %+v", st)
	}
	if st.Errors == 0 || st.Conns != 1 {
		t.Fatalf("stats conns/errors: %+v", st)
	}
}

// waitDrained polls Stats until the collection pipeline has processed
// everything collected, so counter assertions are race-free.
func waitDrained(t *testing.T, cl *Client) Stats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := cl.Stats()
		if err != nil {
			t.Fatalf("stats: %v", err)
		}
		if st.Processed == st.Collected {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline never drained: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHotSwapUnderLoad is the subsystem's acceptance test: four clients
// drive continuous batched inference while a new model version is
// deployed mid-flight. It asserts zero failed inferences, zero dropped
// collection events, that post-swap predictions come from the new
// version, and that no reader ever travels backwards in versions.
func TestHotSwapUnderLoad(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatalf("open registry: %v", err)
	}
	// v1 predicts class 1 for every input; v2 predicts class 2.
	if _, err := reg.Put(KindDTree, "const-1", constTreeBytes(t, 1, 4)); err != nil {
		t.Fatalf("put v1: %v", err)
	}
	s, sock := startServer(t, Config{Registry: reg, CollectCapacity: 1 << 15})

	const (
		workers = 4
		rows    = 8
		warmup  = 50 // requests per worker before the swap
	)
	var (
		wg        sync.WaitGroup
		failures  atomic.Uint64
		warmedUp  sync.WaitGroup
		swapped   = make(chan struct{})
		firstFail atomic.Value
	)
	fail := func(format string, args ...any) {
		failures.Add(1)
		firstFail.CompareAndSwap(nil, fmt.Sprintf(format, args...))
	}
	warmedUp.Add(workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := Dial("unix", sock)
			if err != nil {
				warmedUp.Done()
				fail("worker %d dial: %v", w, err)
				return
			}
			defer cl.Close()
			cl.SetTimeout(5 * time.Second)
			rng := rand.New(rand.NewSource(int64(w)))
			flat := make([]float64, rows*4)
			lastVersion := uint64(0)
			deadline := time.Now().Add(20 * time.Second)
			warmupDone := false
			for i := 0; ; i++ {
				for j := range flat {
					flat[j] = rng.Float64()
				}
				classes, version, err := cl.BatchInfer(flat, rows, 4)
				if err != nil {
					fail("worker %d req %d: %v", w, i, err)
					break
				}
				if version < lastVersion {
					fail("worker %d: version ran backwards %d -> %d", w, lastVersion, version)
					break
				}
				lastVersion = version
				want := uint16(version) // const-tree class == version number here
				for _, c := range classes {
					if c != want {
						fail("worker %d: class %d from version %d", w, c, version)
					}
				}
				if i == warmup {
					warmupDone = true
					warmedUp.Done()
				}
				if version == 2 && i > warmup {
					break // saw the swap take effect
				}
				if time.Now().After(deadline) {
					fail("worker %d: never saw version 2", w)
					break
				}
			}
			if !warmupDone {
				warmedUp.Done()
			}
		}(w)
	}

	go func() {
		warmedUp.Wait() // all workers are mid-traffic
		if _, err := s.Deploy(KindDTree, "const-2", constTreeBytes(t, 2, 4)); err != nil {
			fail("deploy v2: %v", err)
		}
		close(swapped)
	}()
	wg.Wait()
	<-swapped

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d failed inferences during hot swap; first: %v", n, firstFail.Load())
	}

	// The swap must not have cost a single collection event.
	cl := dial(t, sock)
	st := waitDrained(t, cl)
	if st.Dropped != 0 {
		t.Fatalf("swap dropped %d collection events", st.Dropped)
	}
	if st.ActiveVersion != 2 {
		t.Fatalf("active version %d after swap", st.ActiveVersion)
	}
	served := s.ServedByVersion()
	if served[1] == 0 || served[2] == 0 {
		t.Fatalf("served-by-version tally missing a version: %v", served)
	}
	if st.Collected != st.Processed || st.Collected == 0 {
		t.Fatalf("collection pipeline lost events: %+v", st)
	}
}

func TestServerConnLimit(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatalf("open registry: %v", err)
	}
	if _, err := reg.Put(KindDTree, "m", constTreeBytes(t, 0, 4)); err != nil {
		t.Fatalf("put: %v", err)
	}
	_, sock := startServer(t, Config{Registry: reg, MaxConns: 1})

	c1 := dial(t, sock)
	if _, _, _, err := c1.Health(); err != nil {
		t.Fatalf("first conn health: %v", err)
	}
	c2 := dial(t, sock)
	_, _, _, err = c2.Health()
	if !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "connection limit") {
		t.Fatalf("second conn: %v", err)
	}
	// Releasing the first connection frees the slot (asynchronously).
	c1.Close()
	ok := false
	for i := 0; i < 100 && !ok; i++ {
		c3, err := Dial("unix", sock)
		if err == nil {
			if _, _, _, err = c3.Health(); err == nil {
				ok = true
			}
			c3.Close()
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !ok {
		t.Fatal("slot never freed after close")
	}
}

func TestServerArenaAdmission(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatalf("open registry: %v", err)
	}
	if _, err := reg.Put(KindDTree, "m", constTreeBytes(t, 0, 4)); err != nil {
		t.Fatalf("put: %v", err)
	}
	arena := memutil.NewArena("mserve-test")
	// Room for the collection ring (1024×16 B) plus exactly one
	// connection charge: the second connection must be refused.
	arena.Reserve(1024*16 + 1024)
	_, sock := startServer(t, Config{
		Registry:        reg,
		Arena:           arena,
		ConnBytes:       1024,
		CollectCapacity: 1024,
	})

	c1 := dial(t, sock)
	if _, _, _, err := c1.Health(); err != nil {
		t.Fatalf("first conn: %v", err)
	}
	c2 := dial(t, sock)
	_, _, _, err = c2.Health()
	if !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "reservation") {
		t.Fatalf("second conn: %v", err)
	}
	st, err := c1.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.ArenaRejects != 1 || st.ArenaLive == 0 {
		t.Fatalf("arena stats: %+v", st)
	}
}

func TestServerGracefulDrain(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatalf("open registry: %v", err)
	}
	if _, err := reg.Put(KindDTree, "m", constTreeBytes(t, 0, 4)); err != nil {
		t.Fatalf("put: %v", err)
	}
	s, err := NewServer(Config{Registry: reg})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	sock := filepath.Join(t.TempDir(), "s.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()

	cl := dial(t, sock)
	if _, _, err := cl.Infer([]float64{1, 2, 3, 4}); err != nil {
		t.Fatalf("infer: %v", err)
	}

	start := time.Now()
	s.Shutdown(5 * time.Second)
	if d := time.Since(start); d > 4*time.Second {
		t.Fatalf("shutdown took %v with an idle connection", d)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve returned %v", err)
	}
	if _, err := Dial("unix", sock); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}
