// MsgMetrics payload: the wire form of a telemetry snapshot. Unlike
// Stats (a fixed vector of u64s, frozen for byte-compatibility) the
// metrics payload is self-describing — each entry carries its name and
// kind — so new instrumentation reaches `kml-served -status` without a
// protocol revision.
//
// Layout (all integers little-endian):
//
//	u16 nmetrics                      (≤ MaxMetrics)
//	repeated nmetrics times:
//	  u8  kind                        (MetricCounter|MetricGauge|MetricHistogram)
//	  u8  namelen                     (1..MaxMetricName)
//	  namelen bytes of name
//	  kind counter/gauge: u64 value   (gauge is int64 bit pattern)
//	  kind histogram:
//	    u64 sum
//	    u8  nbuckets                  (≤ telemetry.NumBuckets)
//	    repeated nbuckets times:
//	      u8  index                   (strictly increasing, < NumBuckets)
//	      u64 count                   (nonzero; total count is derived)
//	u16 ndecisions                    (≤ MaxDecisions)
//	repeated ndecisions times:
//	  u64 time_ns | u64 version | u32 class (int32 bits) | u32 rows | u32 sectors
//
// The encoding is canonical: histograms carry only their populated
// buckets in index order, so AppendMetrics(ParseMetrics(b)) == b for
// every accepted payload — the invariant FuzzMetricsDecode pins.
package mserve

import (
	"encoding/binary"

	"repro/internal/telemetry"
)

// Metric kinds on the wire. Func gauges flatten to MetricGauge: the
// distinction is a registry implementation detail, not an operator fact.
const (
	MetricCounter   = 0
	MetricGauge     = 1
	MetricHistogram = 2
)

// Wire limits. A maximal payload (512 full histograms + 1024 decisions)
// is ~330 KB, under the 1 MiB frame cap.
const (
	MaxMetrics    = 512
	MaxMetricName = 128
	MaxDecisions  = 1024
)

// Metric is one named metric in a snapshot.
type Metric struct {
	Name  string
	Kind  uint8
	Value int64 // counter/gauge value; unused for histograms
	Hist  telemetry.HistogramSnapshot
}

// MetricsDecision is one flight-recorder entry: a served or applied
// model decision. Sectors is zero when the recorder belongs to a server
// (no device); the readahead tuner fills it.
type MetricsDecision struct {
	TimeNanos uint64
	Version   uint64
	Class     int32
	Rows      uint32
	Sectors   uint32
}

// MetricsSnapshot is the decoded MsgMetrics payload.
type MetricsSnapshot struct {
	Metrics   []Metric
	Decisions []MetricsDecision
}

// AppendMetrics appends the canonical wire form of snap. Entries beyond
// the wire limits are dropped (metrics past MaxMetrics, decisions past
// MaxDecisions, names truncated to MaxMetricName) — the registry and
// flight recorder are sized far below the caps, so truncation only
// guards against a hostile in-process caller.
func AppendMetrics(dst []byte, snap MetricsSnapshot) []byte {
	metrics := snap.Metrics
	if len(metrics) > MaxMetrics {
		metrics = metrics[:MaxMetrics]
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(metrics)))
	for _, m := range metrics {
		name := m.Name
		if len(name) > MaxMetricName {
			name = name[:MaxMetricName]
		}
		if name == "" {
			name = "?"
		}
		dst = append(dst, m.Kind)
		dst = append(dst, byte(len(name)))
		dst = append(dst, name...)
		if m.Kind == MetricHistogram {
			dst = binary.LittleEndian.AppendUint64(dst, m.Hist.Sum)
			n := 0
			for _, c := range m.Hist.Buckets {
				if c != 0 {
					n++
				}
			}
			dst = append(dst, byte(n))
			for i, c := range m.Hist.Buckets {
				if c != 0 {
					dst = append(dst, byte(i))
					dst = binary.LittleEndian.AppendUint64(dst, c)
				}
			}
		} else {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(m.Value))
		}
	}
	decisions := snap.Decisions
	if len(decisions) > MaxDecisions {
		decisions = decisions[:MaxDecisions]
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(decisions)))
	for _, d := range decisions {
		dst = binary.LittleEndian.AppendUint64(dst, d.TimeNanos)
		dst = binary.LittleEndian.AppendUint64(dst, d.Version)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(d.Class))
		dst = binary.LittleEndian.AppendUint32(dst, d.Rows)
		dst = binary.LittleEndian.AppendUint32(dst, d.Sectors)
	}
	return dst
}

// ParseMetrics decodes a metrics payload, rejecting any violation of the
// canonical form (limits exceeded, zero or out-of-order histogram
// buckets, short or trailing bytes) with ErrBadMessage.
func ParseMetrics(p []byte) (MetricsSnapshot, error) {
	var snap MetricsSnapshot
	if len(p) < 2 {
		return snap, ErrBadMessage
	}
	nm := int(binary.LittleEndian.Uint16(p))
	if nm > MaxMetrics {
		return snap, ErrBadMessage
	}
	off := 2
	if nm > 0 {
		snap.Metrics = make([]Metric, 0, nm)
	}
	for i := 0; i < nm; i++ {
		if len(p)-off < 2 {
			return MetricsSnapshot{}, ErrBadMessage
		}
		kind := p[off]
		nameLen := int(p[off+1])
		off += 2
		if kind > MetricHistogram || nameLen == 0 || nameLen > MaxMetricName {
			return MetricsSnapshot{}, ErrBadMessage
		}
		if len(p)-off < nameLen {
			return MetricsSnapshot{}, ErrBadMessage
		}
		m := Metric{Name: string(p[off : off+nameLen]), Kind: kind}
		off += nameLen
		if kind == MetricHistogram {
			if len(p)-off < 9 {
				return MetricsSnapshot{}, ErrBadMessage
			}
			m.Hist.Sum = binary.LittleEndian.Uint64(p[off:])
			nb := int(p[off+8])
			off += 9
			if nb > telemetry.NumBuckets || len(p)-off < 9*nb {
				return MetricsSnapshot{}, ErrBadMessage
			}
			prev := -1
			for j := 0; j < nb; j++ {
				idx := int(p[off])
				count := binary.LittleEndian.Uint64(p[off+1:])
				off += 9
				if idx <= prev || idx >= telemetry.NumBuckets || count == 0 {
					return MetricsSnapshot{}, ErrBadMessage
				}
				prev = idx
				m.Hist.Buckets[idx] = count
				m.Hist.Count += count
			}
		} else {
			if len(p)-off < 8 {
				return MetricsSnapshot{}, ErrBadMessage
			}
			m.Value = int64(binary.LittleEndian.Uint64(p[off:]))
			off += 8
		}
		snap.Metrics = append(snap.Metrics, m)
	}
	if len(p)-off < 2 {
		return MetricsSnapshot{}, ErrBadMessage
	}
	nd := int(binary.LittleEndian.Uint16(p[off:]))
	off += 2
	if nd > MaxDecisions || len(p)-off != 28*nd {
		return MetricsSnapshot{}, ErrBadMessage
	}
	if nd > 0 {
		snap.Decisions = make([]MetricsDecision, 0, nd)
	}
	for i := 0; i < nd; i++ {
		snap.Decisions = append(snap.Decisions, MetricsDecision{
			TimeNanos: binary.LittleEndian.Uint64(p[off:]),
			Version:   binary.LittleEndian.Uint64(p[off+8:]),
			Class:     int32(binary.LittleEndian.Uint32(p[off+16:])),
			Rows:      binary.LittleEndian.Uint32(p[off+20:]),
			Sectors:   binary.LittleEndian.Uint32(p[off+24:]),
		})
		off += 28
	}
	return snap, nil
}
