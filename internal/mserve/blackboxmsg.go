// MsgBlackbox payload: the wire form of the black-box flight
// recorder's status. Like MsgLearnStatus it is pull-based — the
// embedding process (kml-served) registers a status source on the
// server — and the request carries one opcode: stat (read-only) or
// sync (force a capture and a synced flush first, so the answered path
// names a file that is current to this instant). The response is how a
// remote kml-postmortem locates and freshens a live server's box
// without stopping it.
//
// Layout (all integers little-endian):
//
//	request:  u8 op                 (BlackboxStat | BlackboxSync)
//	response:
//	  u8  enabled                   (0 or 1)
//	  u64 records | u64 dropped | u64 flushes | u64 ring_bytes
//	  u64 torn_at_open
//	  i64 last_flush_ns             (0 = never)
//	  u16 pathlen                   (≤ MaxBlackboxPath; 0 iff no path)
//	  pathlen bytes of path
//
// Every field is fixed-width and validated on decode, so the encoding
// is canonical: AppendBlackboxStatus(ParseBlackboxStatus(b)) == b for
// every accepted b, the same invariant the frame/metrics/learn codecs
// keep.
package mserve

import "encoding/binary"

// MsgBlackbox request opcodes.
const (
	// BlackboxStat reads the status without touching the file.
	BlackboxStat = 0
	// BlackboxSync captures + flushes + fsyncs before answering.
	BlackboxSync = 1
)

// MaxBlackboxPath bounds the path on the wire.
const MaxBlackboxPath = 1024

// BlackboxStatus is the snapshot MsgBlackbox carries. The zero value
// (Enabled false) is what a server without a black box answers.
type BlackboxStatus struct {
	Enabled        bool
	Records        uint64 // records appended since open
	Dropped        uint64 // records rejected (oversized)
	Flushes        uint64 // completed write-backs
	RingBytes      uint64 // on-disk ring capacity
	TornAtOpen     uint64 // torn records found when the file was resumed
	LastFlushNanos int64  // wall clock of the last flush (0 = none)
	Path           string // black-box file path on the server's host
}

// blackboxHeaderSize is the fixed part: enabled byte, five u64
// counters, one i64 stamp, u16 path length.
const blackboxHeaderSize = 1 + 5*8 + 8 + 2

// AppendBlackboxReq appends a MsgBlackbox request payload.
func AppendBlackboxReq(dst []byte, op uint8) []byte {
	return append(dst, op)
}

// ParseBlackboxReq decodes a MsgBlackbox request, rejecting unknown
// opcodes and trailing bytes.
func ParseBlackboxReq(p []byte) (uint8, error) {
	if len(p) != 1 || p[0] > BlackboxSync {
		return 0, ErrBadMessage
	}
	return p[0], nil
}

// AppendBlackboxStatus appends the canonical wire form of st. Paths
// beyond MaxBlackboxPath are truncated.
func AppendBlackboxStatus(dst []byte, st BlackboxStatus) []byte {
	b := byte(0)
	if st.Enabled {
		b = 1
	}
	dst = append(dst, b)
	for _, v := range [5]uint64{st.Records, st.Dropped, st.Flushes, st.RingBytes, st.TornAtOpen} {
		dst = binary.LittleEndian.AppendUint64(dst, v)
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(st.LastFlushNanos))
	path := st.Path
	if len(path) > MaxBlackboxPath {
		path = path[:MaxBlackboxPath]
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(path)))
	return append(dst, path...)
}

// ParseBlackboxStatus decodes a status payload, rejecting out-of-range
// enabled bytes, oversized paths, and length mismatches with
// ErrBadMessage.
func ParseBlackboxStatus(p []byte) (BlackboxStatus, error) {
	var st BlackboxStatus
	if len(p) < blackboxHeaderSize || p[0] > 1 {
		return st, ErrBadMessage
	}
	st.Enabled = p[0] == 1
	off := 1
	for _, dst := range [5]*uint64{&st.Records, &st.Dropped, &st.Flushes, &st.RingBytes, &st.TornAtOpen} {
		*dst = binary.LittleEndian.Uint64(p[off:])
		off += 8
	}
	st.LastFlushNanos = int64(binary.LittleEndian.Uint64(p[off:]))
	off += 8
	n := int(binary.LittleEndian.Uint16(p[off:]))
	off += 2
	if n > MaxBlackboxPath || len(p)-off != n {
		return BlackboxStatus{}, ErrBadMessage
	}
	st.Path = string(p[off:])
	return st, nil
}
