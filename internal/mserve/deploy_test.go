package mserve

import (
	"sync"
	"sync/atomic"
	"testing"
)

// tornDetector pairs an ID with the version it was published under;
// readers verify the pair stays consistent across swaps.
type tornDetector struct {
	id uint64
}

func TestDeploymentEmptyAndSwap(t *testing.T) {
	var d Deployment[*tornDetector]
	if d.Load() != nil || d.Version() != 0 || d.Swaps() != 0 {
		t.Fatal("zero Deployment is not empty")
	}
	prev := d.Swap(&tornDetector{id: 1}, 1)
	if prev != nil {
		t.Fatalf("first swap returned %+v", prev)
	}
	if s := d.Load(); s == nil || s.Version != 1 || s.Model.id != 1 {
		t.Fatalf("after swap: %+v", d.Load())
	}
	prev = d.Swap(&tornDetector{id: 2}, 2)
	if prev == nil || prev.Version != 1 {
		t.Fatalf("second swap returned %+v", prev)
	}
	if d.Swaps() != 2 || d.Version() != 2 {
		t.Fatalf("swaps=%d version=%d", d.Swaps(), d.Version())
	}

	d2 := NewDeployment(&tornDetector{id: 9}, 9)
	if s := d2.Load(); s == nil || s.Version != 9 {
		t.Fatalf("NewDeployment: %+v", d2.Load())
	}
}

// TestDeploymentHotSwapConsistency hammers Load from many readers while a
// writer swaps versions: every observed snapshot must be internally
// consistent (model matches version) and versions must never run
// backwards on a single reader — the lock-free publication contract the
// serving path relies on. Run under -race in CI.
func TestDeploymentHotSwapConsistency(t *testing.T) {
	d := NewDeployment(&tornDetector{id: 1}, 1)
	const (
		readers = 8
		swaps   = 5000
	)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := uint64(0)
			for !stop.Load() {
				s := d.Load()
				if s == nil {
					t.Error("Load returned nil after first deploy")
					return
				}
				if s.Model.id != s.Version {
					t.Errorf("torn snapshot: model %d under version %d", s.Model.id, s.Version)
					return
				}
				if s.Version < last {
					t.Errorf("version ran backwards: %d after %d", s.Version, last)
					return
				}
				last = s.Version
			}
		}()
	}
	for v := uint64(2); v <= swaps; v++ {
		d.Swap(&tornDetector{id: v}, v)
	}
	stop.Store(true)
	wg.Wait()
	if d.Version() != swaps || d.Swaps() != swaps {
		t.Fatalf("final version=%d swaps=%d", d.Version(), d.Swaps())
	}
}
