package mserve

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dtrace"
)

// coalescedServer boots a serving socket with cross-connection batch
// coalescing enabled and the test model deployed.
func coalescedServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.CoalesceWindow == 0 {
		cfg.CoalesceWindow = 2 * time.Millisecond
	}
	s, sock := startServer(t, cfg)
	if _, err := s.Deploy(KindNN, "m", nnModelBytes(t, 42, 4)); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	return s, sock
}

// TestCoalesceRoutesBitExact is the coalescer's core acceptance gate,
// meant for the -race run: N concurrent tracing clients each stream
// single-row Infer requests while the model is hot-swapped mid-load, and
// every response must (a) route back to its own connection bit-exact
// against an uncoalesced local reference, (b) never fail, and (c) leave
// the achieved-batch telemetry proving rows actually shared batches.
func TestCoalesceRoutesBitExact(t *testing.T) {
	for _, shards := range []int{1, 2} {
		shards := shards
		name := "shards1"
		if shards == 2 {
			name = "shards2"
		}
		t.Run(name, func(t *testing.T) {
			s, sock := coalescedServer(t, Config{
				MaxConns:       128,
				CoalesceMax:    32,
				CoalesceShards: shards,
				TraceCapacity:  64,
			})
			art, err := s.Registry().ActiveArtifact()
			if err != nil {
				t.Fatalf("active artifact: %v", err)
			}

			const workers = 64
			const perWorker = 30
			var failures atomic.Uint64
			var mismatches atomic.Uint64
			var wg sync.WaitGroup
			stop := make(chan struct{})
			// Hot-swap the same weights under load: versions move, the
			// function served does not, so bit-exactness stays checkable.
			wg.Add(1)
			go func() {
				defer wg.Done()
				model := nnModelBytes(t, 42, 4)
				for i := 0; i < 3; i++ {
					select {
					case <-stop:
						return
					case <-time.After(15 * time.Millisecond):
					}
					if _, err := s.Deploy(KindNN, "m", model); err != nil {
						t.Errorf("hot-swap deploy %d: %v", i, err)
					}
				}
			}()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					cl, err := Dial("unix", sock)
					if err != nil {
						failures.Add(1)
						return
					}
					defer cl.Close()
					cl.SetTimeout(10 * time.Second)
					arena := dtrace.NewArena(8)
					cl.EnableTracing(arena)
					// Per-worker reference instance: the uncoalesced
					// answer for the same weights.
					ref, err := art.Instantiate()
					if err != nil {
						failures.Add(1)
						return
					}
					rng := rand.New(rand.NewSource(int64(1000 + w)))
					feats := make([]float64, 4)
					for i := 0; i < perWorker; i++ {
						for j := range feats {
							feats[j] = rng.NormFloat64()
						}
						want := ref.Predict(feats)
						got, _, err := cl.Infer(feats)
						if err != nil {
							failures.Add(1)
							return
						}
						if got != want {
							mismatches.Add(1)
						}
					}
				}(w)
			}
			wg.Wait()
			close(stop)
			if n := failures.Load(); n != 0 {
				t.Fatalf("%d workers failed; want 0 failed requests across hot swaps", n)
			}
			if n := mismatches.Load(); n != 0 {
				t.Fatalf("%d responses differ from the uncoalesced reference", n)
			}
			st := s.Stats()
			if st.CoalesceBatches == 0 {
				t.Fatal("no coalesced batches executed under 64-way load")
			}
			if st.CoalesceRows < uint64(workers*perWorker) {
				t.Fatalf("coalesced rows %d < requests %d", st.CoalesceRows, workers*perWorker)
			}
			if mean := st.CoalesceMeanBatch(); mean <= 1.2 {
				t.Fatalf("mean achieved batch %.2f; want cross-connection gathering (> 1.2)", mean)
			}
			// The achieved-batch histogram carries the same story for
			// kml-top and MsgMetrics consumers.
			var histCount uint64
			for _, m := range s.Metrics().Metrics {
				if m.Name == "mserve_coalesce_batch" && m.Kind == MetricHistogram {
					histCount = m.Hist.Count
				}
			}
			if histCount != st.CoalesceBatches {
				t.Fatalf("mserve_coalesce_batch count %d != batches %d", histCount, st.CoalesceBatches)
			}
		})
	}
}

// TestCoalesceBatchInferRoutes drives small client-side batches (rows <
// CoalesceMax) through the shared gather concurrently and checks each
// connection's class vector against the uncoalesced reference, plus the
// inline fallback for a batch at the gather capacity.
func TestCoalesceBatchInferRoutes(t *testing.T) {
	s, sock := coalescedServer(t, Config{CoalesceMax: 16})
	art, err := s.Registry().ActiveArtifact()
	if err != nil {
		t.Fatalf("active artifact: %v", err)
	}

	const workers = 8
	const perWorker = 20
	const rows = 3
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := Dial("unix", sock)
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			ref, err := art.Instantiate()
			if err != nil {
				errc <- err
				return
			}
			rng := rand.New(rand.NewSource(int64(2000 + w)))
			flat := make([]float64, rows*4)
			want := make([]int, rows)
			for i := 0; i < perWorker; i++ {
				for j := range flat {
					flat[j] = rng.NormFloat64()
				}
				ref.PredictBatch(flat, rows, want)
				got, _, err := cl.BatchInfer(flat, rows, 4)
				if err != nil {
					errc <- err
					return
				}
				for r := 0; r < rows; r++ {
					if int(got[r]) != want[r] {
						errc <- errors.New("batch row class mismatch vs uncoalesced reference")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if st := s.Stats(); st.CoalesceRows < workers*perWorker*rows {
		t.Fatalf("coalesced rows %d; want all %d batch rows through the gather",
			st.CoalesceRows, workers*perWorker*rows)
	}

	// A batch at the gather capacity bypasses the coalescer (inline
	// fused path) and must still answer correctly.
	cl := dial(t, sock)
	ref, err := art.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	big := make([]float64, 16*4)
	rng := rand.New(rand.NewSource(3000))
	for j := range big {
		big[j] = rng.NormFloat64()
	}
	want := make([]int, 16)
	ref.PredictBatch(big, 16, want)
	before := s.Stats().CoalesceRows
	got, _, err := cl.BatchInfer(big, 16, 4)
	if err != nil {
		t.Fatalf("capacity-sized batch: %v", err)
	}
	for r := range want {
		if int(got[r]) != want[r] {
			t.Fatalf("row %d: class %d, want %d", r, got[r], want[r])
		}
	}
	if after := s.Stats().CoalesceRows; after != before {
		t.Fatalf("capacity-sized batch went through the coalescer (%d -> %d rows)", before, after)
	}
}

// TestCoalesceTraceAttribution pins the satellite requirement: requests
// sharing one fused gather still record one span tree EACH, joined under
// their own client-stamped TraceIDs (FrameVersion 2 propagation), with
// the achieved batch size stamped into each request's own StageInfer
// span. CoalesceMax clients with a never-expiring window make the batch
// fill deterministic: every request shares one batch of exactly max rows.
func TestCoalesceTraceAttribution(t *testing.T) {
	const max = 4
	s, sock := coalescedServer(t, Config{
		CoalesceWindow: 10 * time.Second, // fill, never expire
		CoalesceMax:    max,
		TraceCapacity:  16,
	})

	ids := make([]dtrace.TraceID, max)
	// One shared client arena: per-arena NextID keeps the four clients'
	// trace IDs distinct (separate arenas would all mint ID 1).
	arena := dtrace.NewArena(16)
	var wg sync.WaitGroup
	for i := 0; i < max; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := Dial("unix", sock)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer cl.Close()
			cl.SetTimeout(5 * time.Second)
			cl.EnableTracing(arena)
			if _, _, err := cl.Infer([]float64{0.1 * float64(i), 0.2, 0.3, 0.4}); err != nil {
				t.Errorf("infer %d: %v", i, err)
				return
			}
			ids[i] = cl.LastTraceID()
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	byID := make(map[dtrace.TraceID]dtrace.Trace)
	for _, tr := range s.Traces() {
		byID[tr.ID] = tr
	}
	if len(byID) < max {
		t.Fatalf("server retained %d traces for %d coalesced requests; want one tree per request", len(byID), max)
	}
	for i, id := range ids {
		if uint64(id)&ClientTraceIDBit == 0 {
			t.Fatalf("client %d trace ID %#x lacks ClientTraceIDBit", i, id)
		}
		tr, ok := byID[id]
		if !ok {
			t.Fatalf("no server trace joined under client %d's ID %#x", i, id)
		}
		if !tr.Complete() {
			t.Fatalf("client %d server trace incomplete: %+v", i, tr)
		}
		wantStages := []dtrace.Stage{
			dtrace.StageDecision, dtrace.StageQueue, dtrace.StageParse,
			dtrace.StageInfer, dtrace.StageEncode,
		}
		if int(tr.N) != len(wantStages) {
			t.Fatalf("client %d trace has %d spans, want %d", i, tr.N, len(wantStages))
		}
		var infer, queue *dtrace.Span
		for si := range tr.Used() {
			sp := &tr.Spans[si]
			if sp.Stage != wantStages[si] {
				t.Fatalf("client %d span %d stage %s, want %s", i, si, sp.Stage, wantStages[si])
			}
			switch sp.Stage {
			case dtrace.StageInfer:
				infer = sp
			case dtrace.StageQueue:
				queue = sp
			}
		}
		version, batchRows := dtrace.UnpackInferAux(infer.Aux)
		if batchRows != max {
			t.Fatalf("client %d infer span batch size %d, want %d", i, batchRows, max)
		}
		if version != 1 {
			t.Fatalf("client %d infer span version %d, want 1", i, version)
		}
		// The gather wait is the request's queue span: it starts at
		// arrival and ends where the infer span starts.
		if queue.End != infer.Start {
			t.Fatalf("client %d queue span ends %d, infer starts %d; gather wait not attributed to queue",
				i, queue.End, infer.Start)
		}
		if queue.Value != queue.End-queue.Start {
			t.Fatalf("client %d queue span value %d != duration %d", i, queue.Value, queue.End-queue.Start)
		}
	}
}

// TestCoalesceShapeSwapFailsGathered covers the one request-failing edge
// the coalescer has: a hot swap to a DIFFERENT input width lands between
// gather and execute, so the gathered rows no longer fit the deployed
// model. Those requests get a clean MsgError (connection stays usable),
// and the next request against the new shape succeeds.
func TestCoalesceShapeSwapFailsGathered(t *testing.T) {
	s, sock := coalescedServer(t, Config{
		CoalesceWindow: 300 * time.Millisecond,
		CoalesceMax:    8,
	})
	cl := dial(t, sock)

	done := make(chan error, 1)
	go func() {
		_, _, err := cl.Infer([]float64{1, 2, 3, 4})
		done <- err
	}()
	time.Sleep(60 * time.Millisecond) // let the gather open on the 4-wide shape
	if _, err := s.Deploy(KindNN, "wide", nnModelBytes(t, 7, 6)); err != nil {
		t.Fatalf("swap to 6-wide: %v", err)
	}
	err := <-done
	if !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "model replaced during gather") {
		t.Fatalf("gathered request after shape swap: %v; want remote 'model replaced during gather'", err)
	}
	if class, _, err := cl.Infer([]float64{1, 2, 3, 4, 5, 6}); err != nil || class < 0 {
		t.Fatalf("6-wide infer after swap: class=%d err=%v", class, err)
	}
}

// TestCoalesceStatsSurface checks the wire-visible coalescer config and
// counters round-trip through MsgStats.
func TestCoalesceStatsSurface(t *testing.T) {
	_, sock := coalescedServer(t, Config{
		CoalesceWindow: 150 * time.Microsecond,
		CoalesceMax:    48,
	})
	cl := dial(t, sock)
	if _, _, err := cl.Infer([]float64{1, 2, 3, 4}); err != nil {
		t.Fatalf("infer: %v", err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.CoalesceWindowNS != 150_000 {
		t.Fatalf("CoalesceWindowNS = %d, want 150000", st.CoalesceWindowNS)
	}
	if st.CoalesceMaxRows != 48 {
		t.Fatalf("CoalesceMaxRows = %d, want 48", st.CoalesceMaxRows)
	}
	if st.CoalesceBatches == 0 || st.CoalesceRows == 0 {
		t.Fatalf("coalesce counters empty after a served request: %+v", st)
	}
	if mean := st.CoalesceMeanBatch(); mean < 1 {
		t.Fatalf("mean batch %.2f < 1", mean)
	}
}

// TestCoalesceAllocFree pins the tentpole's steady-state allocation
// budget: once a connection's waiter, the shard's gather arena, and the
// instance scratch are warm, a coalesced request must not allocate —
// gather, fused forward, demux, and the per-request span tree all run
// over pooled memory.
func TestCoalesceAllocFree(t *testing.T) {
	s, _ := startServer(t, Config{
		CoalesceWindow: 50 * time.Microsecond,
		CoalesceMax:    8,
	})
	if _, err := s.Deploy(KindNN, "m", nnModelBytes(t, 3, 4)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	feats := make([]float64, 4)
	for i := range feats {
		feats[i] = rng.NormFloat64()
	}
	single := AppendInferReq(nil, 0, feats)
	sc := &srvConn{s: s}
	if typ, _ := s.doInfer(sc, single); typ != MsgInfer {
		t.Fatal("warmup single-row coalesced infer failed")
	}
	if a := testing.AllocsPerRun(100, func() {
		if typ, _ := s.doInfer(sc, single); typ != MsgInfer {
			t.Fatal("coalesced infer failed")
		}
	}); a != 0 {
		t.Errorf("coalesced single-row request allocates %.1f/run, want 0", a)
	}

	// Small client batches through the same gather stay alloc-free too.
	flat := make([]float64, 4*4)
	for i := range flat {
		flat[i] = rng.NormFloat64()
	}
	batch := AppendBatchInferReq(nil, 0, flat, 4, 4)
	if typ, _ := s.doBatchInfer(sc, batch); typ != MsgBatchInfer {
		t.Fatal("warmup coalesced batch failed")
	}
	if a := testing.AllocsPerRun(100, func() {
		if typ, _ := s.doBatchInfer(sc, batch); typ != MsgBatchInfer {
			t.Fatal("coalesced batch infer failed")
		}
	}); a != 0 {
		t.Errorf("coalesced batch request allocates %.1f/run, want 0", a)
	}
	if st := s.Stats(); st.CoalesceBatches == 0 {
		t.Fatal("alloc gate never exercised the coalescer")
	}
}
