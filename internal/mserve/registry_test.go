package mserve

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dtree"
	"repro/internal/nn"
)

// nnModelBytes serializes a small random network in the KMLF format.
func nnModelBytes(t *testing.T, seed int64, inDim int) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := nn.NewNetwork(
		nn.NewLinear(inDim, 8, rng),
		nn.NewSigmoid(),
		nn.NewLinear(8, 4, rng),
	)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatalf("save nn: %v", err)
	}
	return buf.Bytes()
}

// constTreeBytes serializes a decision tree that predicts class for any
// input: training on a single-class dataset yields one leaf.
func constTreeBytes(t *testing.T, class, inDim int) []byte {
	t.Helper()
	x := [][]float64{
		make([]float64, inDim),
		make([]float64, inDim),
	}
	for i := range x[1] {
		x[1][i] = 1
	}
	y := []int{class, class}
	tree, err := dtree.Train(x, y, 4, dtree.Options{})
	if err != nil {
		t.Fatalf("train tree: %v", err)
	}
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatalf("save tree: %v", err)
	}
	return buf.Bytes()
}

func TestRegistryPutActivateRollback(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRegistry(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, ok := r.Active(); ok {
		t.Fatal("fresh registry has an active version")
	}
	if _, err := r.ActiveArtifact(); !errors.Is(err, ErrNoActive) {
		t.Fatalf("ActiveArtifact on empty registry: %v", err)
	}

	m1 := nnModelBytes(t, 1, 4)
	v1, err := r.Put(KindNN, "readahead-nn", m1)
	if err != nil {
		t.Fatalf("put v1: %v", err)
	}
	if v1.Number != 1 || v1.Kind != KindNN || v1.Size != int64(len(m1)) {
		t.Fatalf("v1 metadata: %+v", v1)
	}
	m2 := constTreeBytes(t, 2, 4)
	v2, err := r.Put(KindDTree, "readahead-dtree", m2)
	if err != nil {
		t.Fatalf("put v2: %v", err)
	}
	if v2.Number != 2 {
		t.Fatalf("v2 number = %d", v2.Number)
	}
	if a, _ := r.Active(); a.Number != 2 {
		t.Fatalf("active = %d, want 2", a.Number)
	}

	inst, err := r.Instance(2)
	if err != nil {
		t.Fatalf("instance v2: %v", err)
	}
	if got := inst.Predict([]float64{0.3, 0.3, 0.3, 0.3}); got != 2 {
		t.Fatalf("const tree predicts %d, want 2", got)
	}
	if inst.InDim() != 4 || inst.Kind() != KindDTree || inst.Name() != "readahead-dtree" {
		t.Fatalf("instance metadata: indim=%d kind=%v name=%q", inst.InDim(), inst.Kind(), inst.Name())
	}

	back, err := r.Rollback()
	if err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if back.Number != 1 {
		t.Fatalf("rolled back to %d, want 1", back.Number)
	}
	if _, err := r.Rollback(); !errors.Is(err, ErrCannotRollback) {
		t.Fatalf("second rollback: %v", err)
	}

	// Activate re-deploys an old version without re-uploading.
	if _, err := r.Activate(2); err != nil {
		t.Fatalf("activate: %v", err)
	}
	if a, _ := r.Active(); a.Number != 2 {
		t.Fatalf("active after Activate = %d", a.Number)
	}
	if _, err := r.Activate(99); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("activate unknown: %v", err)
	}
	if got := len(r.List()); got != 2 {
		t.Fatalf("List len = %d", got)
	}
	if r.Deploys() != 3 || r.Rollbacks() != 1 {
		t.Fatalf("deploys=%d rollbacks=%d", r.Deploys(), r.Rollbacks())
	}
}

func TestRegistryReopenPersists(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRegistry(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	m1 := nnModelBytes(t, 7, 4)
	if _, err := r.Put(KindNN, "a", m1); err != nil {
		t.Fatalf("put: %v", err)
	}
	if _, err := r.Put(KindDTree, "b", constTreeBytes(t, 1, 4)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if _, err := r.Rollback(); err != nil {
		t.Fatalf("rollback: %v", err)
	}

	r2, err := OpenRegistry(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	a, ok := r2.Active()
	if !ok || a.Number != 1 || a.Name != "a" {
		t.Fatalf("reopened active: %+v ok=%v", a, ok)
	}
	art, err := r2.ActiveArtifact()
	if err != nil {
		t.Fatalf("reopened artifact: %v", err)
	}
	if !bytes.Equal(art.Data, m1) {
		t.Fatal("artifact bytes differ after reopen")
	}
	// Rollback history survives: v2 was active before the rollback, so
	// there is nothing older than v1 to roll back to.
	if _, err := r2.Rollback(); !errors.Is(err, ErrCannotRollback) {
		t.Fatalf("rollback after reopen: %v", err)
	}
}

func TestRegistryRejectsCorruptObject(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRegistry(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	v, err := r.Put(KindNN, "m", nnModelBytes(t, 3, 4))
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	path := filepath.Join(dir, objectsName, v.Hash)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read object: %v", err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("corrupt object: %v", err)
	}
	if _, err := r.Artifact(v.Number); !errors.Is(err, ErrCorruptObject) {
		t.Fatalf("artifact on corrupt object: %v", err)
	}
}

func TestRegistryRejectsBadInput(t *testing.T) {
	r, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := r.Put(KindNN, "garbage", []byte("not a model")); err == nil {
		t.Fatal("Put accepted garbage bytes")
	}
	if _, err := r.Put(ModelKind(9), "m", nnModelBytes(t, 1, 4)); !errors.Is(err, ErrBadKind) {
		t.Fatalf("bad kind: %v", err)
	}
	if _, err := r.Put(KindNN, "tab\tname", nnModelBytes(t, 1, 4)); !errors.Is(err, ErrBadName) {
		t.Fatalf("bad name: %v", err)
	}
	// A tree deployed as KindNN must fail validation, not serve garbage.
	if _, err := r.Put(KindNN, "m", constTreeBytes(t, 0, 4)); err == nil {
		t.Fatal("Put accepted a dtree artifact declared as nn")
	}
}
