// Message payloads. Requests and responses share a message type; the
// server echoes the request type on success and answers MsgError (payload:
// UTF-8 message) on an application-level failure, keeping the connection
// usable. Frame-level failures (bad magic, CRC, version skew) kill the
// connection instead — the stream can no longer be trusted.
//
// All integers are little-endian; floats are IEEE-754 bit patterns, the
// same conventions as the KML model file format.
package mserve

import (
	"encoding/binary"
	"errors"
	"math"
)

// MsgType identifies a frame's message.
type MsgType uint8

// Protocol messages.
const (
	// MsgInfer: request u64 traceid | u16 nfeat | nfeat×f64;
	// response u16 class | u64 version. traceid 0 means the caller is
	// not tracing; a nonzero ID joins the server's request spans to the
	// client's trace (cross-process propagation).
	MsgInfer MsgType = 1
	// MsgBatchInfer: request u64 traceid | u32 rows | u16 nfeat |
	// rows·nfeat×f64; response u32 rows | u64 version | rows×u16 class.
	MsgBatchInfer MsgType = 2
	// MsgDeploy: request u8 kind | u16 len | name | model bytes;
	// response u64 version.
	MsgDeploy MsgType = 3
	// MsgRollback: empty request; response u64 version.
	MsgRollback MsgType = 4
	// MsgStats: empty request; response statsFields×u64 (see Stats).
	MsgStats MsgType = 5
	// MsgHealth: empty request; response u8 ok | u64 version | u16 indim.
	MsgHealth MsgType = 6
	// MsgMetrics: empty request; response is the telemetry snapshot
	// (see AppendMetrics in metrics.go for the layout). Stats stays
	// byte-compatible; Metrics is the richer, growable surface.
	MsgMetrics MsgType = 7
	// MsgTraces: empty request; response is the server's retained
	// decision traces in dtrace's canonical wire format (see
	// dtrace.AppendTraces for the layout).
	MsgTraces MsgType = 8
	// MsgLearnStatus: empty request; response is the online-learning
	// controller's snapshot (see AppendLearnStatus in learnstatus.go for
	// the layout). A server with no controller answers the zero status.
	MsgLearnStatus MsgType = 9
	// MsgTimeSeries: empty request; response is the server's captured
	// metric time series in tsrec's canonical wire format (see
	// tsrec.AppendSeries for the layout). A server with no recorder
	// answers the empty series.
	MsgTimeSeries MsgType = 10
	// MsgBlackbox: request u8 op (BlackboxStat | BlackboxSync);
	// response is the black-box flight recorder's status (see
	// AppendBlackboxStatus in blackboxmsg.go for the layout). BlackboxSync
	// forces a capture + synced flush before answering, so the returned
	// path names a file whose contents are current — the hook
	// kml-postmortem uses to dump a still-live server. A server with no
	// black box attached answers the zero (disabled) status.
	MsgBlackbox MsgType = 11
	// MsgError: server→client only; payload is a UTF-8 message.
	MsgError MsgType = 0x7F
)

// ClientTraceIDBit is OR-ed into every TraceID a client stamps into an
// inference request, so client-minted IDs (which count up from 1, just
// like the server arena's own mint) can never collide with the IDs the
// server assigns to untraced requests. One ID namespace per direction;
// kml-trace matches joined traces on exact equality.
const ClientTraceIDBit uint64 = 1 << 63

// ErrBadMessage reports a payload that does not decode as its declared
// message type.
var ErrBadMessage = errors.New("mserve: bad message payload")

// MaxBatchRows bounds one BatchInfer request. With the 4-feature readahead
// model a maximal batch is ~256 KB, under MaxPayload.
const MaxBatchRows = 8192

// --- Infer ---

// AppendInferReq appends a single-inference request payload. traceID 0
// means "not tracing"; a client propagating its dtrace TraceID stamps it
// here (with ClientTraceIDBit set) so the server joins its spans.
func AppendInferReq(dst []byte, traceID uint64, feats []float64) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, traceID)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(feats)))
	for _, f := range feats {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
	}
	return dst
}

// ParseInferReq decodes a single-inference request into dst and returns
// the feature count and the caller's trace ID (0 if untraced). It runs
// once per request on the serving path: the caller owns dst and grows it
// on ErrBadMessage when n exceeds cap (a cold path — connections
// converge on the deployed model's width).
//
//kml:hotpath
func ParseInferReq(p []byte, dst []float64) (int, uint64, error) {
	if len(p) < 10 {
		return 0, 0, ErrBadMessage
	}
	traceID := binary.LittleEndian.Uint64(p)
	n := int(binary.LittleEndian.Uint16(p[8:]))
	if n == 0 || len(p) != 10+8*n || n > len(dst) {
		return 0, 0, ErrBadMessage
	}
	for i := 0; i < n; i++ {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[10+8*i:]))
	}
	return n, traceID, nil
}

// PeekTraceID reads the trace-ID prefix shared by the MsgInfer and
// MsgBatchInfer request payloads without decoding the rest, so the
// server can open the request trace under the caller's ID before the
// parse span starts. A payload too short to carry one reads as 0
// (untraced); full validation still happens in the Parse functions.
//
//kml:hotpath
func PeekTraceID(p []byte) uint64 {
	if len(p) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// AppendInferResp appends a single-inference response payload.
//
//kml:hotpath
func AppendInferResp(dst []byte, class uint16, version uint64) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, class)
	return binary.LittleEndian.AppendUint64(dst, version)
}

// ParseInferResp decodes a single-inference response.
func ParseInferResp(p []byte) (class uint16, version uint64, err error) {
	if len(p) != 10 {
		return 0, 0, ErrBadMessage
	}
	return binary.LittleEndian.Uint16(p), binary.LittleEndian.Uint64(p[2:]), nil
}

// --- BatchInfer ---

// AppendBatchInferReq appends a batched-inference request: rows vectors of
// nfeat features, flattened row-major in feats. traceID follows the same
// propagation contract as AppendInferReq.
func AppendBatchInferReq(dst []byte, traceID uint64, feats []float64, rows, nfeat int) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, traceID)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(rows))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(nfeat))
	for _, f := range feats[:rows*nfeat] {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
	}
	return dst
}

// ParseBatchInferReq decodes a batched request into dst (row-major) and
// returns (rows, nfeat, traceID). Like ParseInferReq, dst is caller-owned
// and grown off the hot path on ErrBadMessage.
//
//kml:hotpath
func ParseBatchInferReq(p []byte, dst []float64) (rows, nfeat int, traceID uint64, err error) {
	if len(p) < 14 {
		return 0, 0, 0, ErrBadMessage
	}
	traceID = binary.LittleEndian.Uint64(p)
	rows = int(binary.LittleEndian.Uint32(p[8:]))
	nfeat = int(binary.LittleEndian.Uint16(p[12:]))
	if rows == 0 || nfeat == 0 || rows > MaxBatchRows {
		return 0, 0, 0, ErrBadMessage
	}
	total := rows * nfeat
	if len(p) != 14+8*total || total > len(dst) {
		return 0, 0, 0, ErrBadMessage
	}
	for i := 0; i < total; i++ {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[14+8*i:]))
	}
	return rows, nfeat, traceID, nil
}

// AppendBatchInferResp appends a batched response for classes[:rows].
//
//kml:hotpath
func AppendBatchInferResp(dst []byte, classes []uint16, version uint64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(classes)))
	dst = binary.LittleEndian.AppendUint64(dst, version)
	for _, c := range classes {
		dst = binary.LittleEndian.AppendUint16(dst, c)
	}
	return dst
}

// ParseBatchInferResp decodes a batched response into classes, which must
// hold the request's row count, and returns (rows, version).
func ParseBatchInferResp(p []byte, classes []uint16) (int, uint64, error) {
	if len(p) < 12 {
		return 0, 0, ErrBadMessage
	}
	rows := int(binary.LittleEndian.Uint32(p))
	version := binary.LittleEndian.Uint64(p[4:])
	if rows > MaxBatchRows || len(p) != 12+2*rows || rows > len(classes) {
		return 0, 0, ErrBadMessage
	}
	for i := 0; i < rows; i++ {
		classes[i] = binary.LittleEndian.Uint16(p[12+2*i:])
	}
	return rows, version, nil
}

// --- Deploy / Rollback ---

// AppendDeployReq appends a deploy request carrying a serialized model.
func AppendDeployReq(dst []byte, kind ModelKind, name string, model []byte) []byte {
	dst = append(dst, byte(kind))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(name)))
	dst = append(dst, name...)
	return append(dst, model...)
}

// ParseDeployReq decodes a deploy request. The returned model slice
// aliases p.
func ParseDeployReq(p []byte) (kind ModelKind, name string, model []byte, err error) {
	if len(p) < 3 {
		return 0, "", nil, ErrBadMessage
	}
	kind = ModelKind(p[0])
	n := int(binary.LittleEndian.Uint16(p[1:]))
	if len(p) < 3+n {
		return 0, "", nil, ErrBadMessage
	}
	return kind, string(p[3 : 3+n]), p[3+n:], nil
}

// AppendVersionResp appends the u64 version payload shared by the Deploy
// and Rollback responses.
func AppendVersionResp(dst []byte, version uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, version)
}

// ParseVersionResp decodes a u64 version payload.
func ParseVersionResp(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, ErrBadMessage
	}
	return binary.LittleEndian.Uint64(p), nil
}

// --- Stats / Health ---

// Stats is the server's operational snapshot, the wire analogue of the
// counters an operator would otherwise need a debugger for. Collected /
// Processed / Dropped / BufferLen surface the server's core.Pipeline, so
// collection loss (ring backpressure) is visible from `kml-served -status`.
type Stats struct {
	ActiveVersion uint64 // registry version currently served
	Deploys       uint64 // successful Deploy calls since registry open
	Rollbacks     uint64 // successful Rollback calls since registry open
	Inferences    uint64 // Infer + BatchInfer requests served
	Rows          uint64 // total feature vectors classified
	Errors        uint64 // MsgError responses sent
	Conns         uint64 // connections currently open
	MaxConns      uint64 // connection limit
	ConnRejects   uint64 // connections refused at the limit
	ArenaRejects  uint64 // connections refused by memutil admission
	Collected     uint64 // samples accepted by the collection pipeline
	Processed     uint64 // samples drained by the training thread
	Dropped       uint64 // samples lost to a full ring (backpressure)
	BufferLen     uint64 // instantaneous ring occupancy
	BufferCap     uint64 // ring capacity
	ArenaLive     uint64 // bytes charged to the server arena
	ArenaPeak     uint64 // arena high-water mark

	// Cross-connection batch coalescing (0 window = disabled). Mean
	// achieved batch size is CoalesceRows / CoalesceBatches — the number
	// that says whether the gather window is amortizing the fused kernel.
	CoalesceWindowNS uint64 // configured gather window in nanoseconds
	CoalesceMaxRows  uint64 // configured per-batch row cap
	CoalesceBatches  uint64 // fused batches executed
	CoalesceRows     uint64 // rows served through coalesced batches
}

const statsFields = 21

// AppendStats appends the stats payload.
func AppendStats(dst []byte, st Stats) []byte {
	for _, v := range [statsFields]uint64{
		st.ActiveVersion, st.Deploys, st.Rollbacks,
		st.Inferences, st.Rows, st.Errors,
		st.Conns, st.MaxConns, st.ConnRejects, st.ArenaRejects,
		st.Collected, st.Processed, st.Dropped, st.BufferLen, st.BufferCap,
		st.ArenaLive, st.ArenaPeak,
		st.CoalesceWindowNS, st.CoalesceMaxRows, st.CoalesceBatches, st.CoalesceRows,
	} {
		dst = binary.LittleEndian.AppendUint64(dst, v)
	}
	return dst
}

// ParseStats decodes a stats payload.
func ParseStats(p []byte) (Stats, error) {
	var st Stats
	if len(p) != 8*statsFields {
		return st, ErrBadMessage
	}
	var v [statsFields]uint64
	for i := range v {
		v[i] = binary.LittleEndian.Uint64(p[8*i:])
	}
	st = Stats{
		ActiveVersion: v[0], Deploys: v[1], Rollbacks: v[2],
		Inferences: v[3], Rows: v[4], Errors: v[5],
		Conns: v[6], MaxConns: v[7], ConnRejects: v[8], ArenaRejects: v[9],
		Collected: v[10], Processed: v[11], Dropped: v[12],
		BufferLen: v[13], BufferCap: v[14],
		ArenaLive: v[15], ArenaPeak: v[16],
		CoalesceWindowNS: v[17], CoalesceMaxRows: v[18],
		CoalesceBatches: v[19], CoalesceRows: v[20],
	}
	return st, nil
}

// CoalesceMeanBatch returns the mean achieved coalesced batch size, or 0
// before any batch executed.
func (st Stats) CoalesceMeanBatch() float64 {
	if st.CoalesceBatches == 0 {
		return 0
	}
	return float64(st.CoalesceRows) / float64(st.CoalesceBatches)
}

// AppendHealthResp appends the health payload.
func AppendHealthResp(dst []byte, ok bool, version uint64, inDim int) []byte {
	b := byte(0)
	if ok {
		b = 1
	}
	dst = append(dst, b)
	dst = binary.LittleEndian.AppendUint64(dst, version)
	return binary.LittleEndian.AppendUint16(dst, uint16(inDim))
}

// ParseHealthResp decodes a health payload.
func ParseHealthResp(p []byte) (ok bool, version uint64, inDim int, err error) {
	if len(p) != 11 {
		return false, 0, 0, ErrBadMessage
	}
	return p[0] == 1, binary.LittleEndian.Uint64(p[1:]), int(binary.LittleEndian.Uint16(p[9:])), nil
}
