package mserve

import (
	"reflect"
	"testing"
)

func sampleLearnStatus() LearnStatus {
	return LearnStatus{
		State:    LearnCanary,
		Retrains: 2, Deploys: 3, Rollbacks: 1, Commits: 1,
		TriggerFires: 4, Examples: 200, LastVersion: 7,
		BaselinePM: 812, CanaryPM: 795,
		Events: []RetrainEvent{
			{TimeNanos: 10, Version: 6, DurationNanos: 3_500_000, Examples: 180,
				Outcome: RetrainRolledBack, BaselinePM: 800, CanaryPM: 500,
				MaxShiftMZ: 4200, ChurnPM: 90},
			{TimeNanos: 20, Version: 7, DurationNanos: 3_100_000, Examples: 200,
				Outcome: RetrainPending, BaselinePM: 812, CanaryPM: -1,
				MaxShiftMZ: 4100, ChurnPM: 110},
		},
	}
}

func TestLearnStatusRoundTrip(t *testing.T) {
	st := sampleLearnStatus()
	b := AppendLearnStatus(nil, st)
	got, err := ParseLearnStatus(b)
	if err != nil {
		t.Fatalf("ParseLearnStatus: %v", err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, st)
	}
	// Canonical: re-encode is byte-identical.
	if re := AppendLearnStatus(nil, got); string(re) != string(b) {
		t.Fatal("re-encode differs from original")
	}
	// Zero status (no controller) round-trips too.
	zb := AppendLearnStatus(nil, LearnStatus{BaselinePM: -1, CanaryPM: -1})
	z, err := ParseLearnStatus(zb)
	if err != nil || z.State != LearnIdle || z.BaselinePM != -1 || len(z.Events) != 0 {
		t.Fatalf("zero status round trip = %+v, %v", z, err)
	}
}

func TestLearnStatusRejectsMalformed(t *testing.T) {
	good := AppendLearnStatus(nil, sampleLearnStatus())
	cases := map[string][]byte{
		"empty":           {},
		"short header":    good[:10],
		"bad state":       append([]byte{LearnRolledBack + 1}, good[1:]...),
		"trailing byte":   append(append([]byte{}, good...), 0),
		"truncated event": good[:len(good)-1],
		"bad outcome": func() []byte {
			b := append([]byte{}, good...)
			b[learnHeaderSize+28] = RetrainFailed + 1
			return b
		}(),
		"nonzero padding": func() []byte {
			b := append([]byte{}, good...)
			b[learnHeaderSize+29] = 1
			return b
		}(),
		"lying count": func() []byte {
			b := append([]byte{}, good...)
			b[learnHeaderSize-2] = 0xFF
			b[learnHeaderSize-1] = 0xFF
			return b
		}(),
	}
	for name, p := range cases {
		if _, err := ParseLearnStatus(p); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
}

func TestLearnStatusEventCap(t *testing.T) {
	st := LearnStatus{}
	for i := 0; i < MaxRetrainEvents+10; i++ {
		st.Events = append(st.Events, RetrainEvent{TimeNanos: uint64(i)})
	}
	b := AppendLearnStatus(nil, st)
	got, err := ParseLearnStatus(b)
	if err != nil {
		t.Fatalf("ParseLearnStatus: %v", err)
	}
	if len(got.Events) != MaxRetrainEvents {
		t.Fatalf("event count = %d, want cap %d", len(got.Events), MaxRetrainEvents)
	}
	// Newest events survive the cap.
	if got.Events[0].TimeNanos != 10 || got.Events[len(got.Events)-1].TimeNanos != uint64(MaxRetrainEvents+9) {
		t.Fatalf("cap kept wrong tail: first=%d last=%d",
			got.Events[0].TimeNanos, got.Events[len(got.Events)-1].TimeNanos)
	}
}

func TestLearnStateNames(t *testing.T) {
	for s := uint8(0); s <= LearnRolledBack; s++ {
		if LearnStateName(s) == "?" {
			t.Errorf("state %d has no name", s)
		}
	}
	if LearnStateName(99) != "?" {
		t.Error("unknown state should render ?")
	}
	for o := uint8(0); o <= RetrainFailed; o++ {
		if RetrainOutcomeName(o) == "?" {
			t.Errorf("outcome %d has no name", o)
		}
	}
	if RetrainOutcomeName(99) != "?" {
		t.Error("unknown outcome should render ?")
	}
}
