package mserve

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
)

func TestBlackboxStatusRoundTrip(t *testing.T) {
	cases := []BlackboxStatus{
		{},
		{Enabled: true, Records: 123, Dropped: 4, Flushes: 17, RingBytes: 4 << 20,
			TornAtOpen: 1, LastFlushNanos: 1700000000000000000, Path: "/var/run/kml/bb.bin"},
		{Enabled: true, Path: ""},
	}
	for i, st := range cases {
		b := AppendBlackboxStatus(nil, st)
		got, err := ParseBlackboxStatus(b)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != st {
			t.Fatalf("case %d: %+v != %+v", i, got, st)
		}
		// Canonical: re-encoding the parse reproduces the bytes.
		if !bytes.Equal(AppendBlackboxStatus(nil, got), b) {
			t.Fatalf("case %d: encoding not canonical", i)
		}
	}
}

func TestBlackboxStatusHostileInput(t *testing.T) {
	good := AppendBlackboxStatus(nil, BlackboxStatus{Enabled: true, Path: "/tmp/bb"})
	bad := [][]byte{
		nil,
		good[:len(good)-1],          // truncated path
		append(good[:0:0], good...), // mutated below
		{2},                         // enabled out of range (and short)
	}
	bad[2] = append(bad[2], 0xFF) // trailing byte
	for i, p := range bad {
		if _, err := ParseBlackboxStatus(p); !errors.Is(err, ErrBadMessage) {
			t.Fatalf("hostile %d: err = %v, want ErrBadMessage", i, err)
		}
	}
	// Lying path length.
	lying := append([]byte(nil), good...)
	lying[blackboxHeaderSize-2] = 0xFF
	lying[blackboxHeaderSize-1] = 0x7F
	if _, err := ParseBlackboxStatus(lying); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("lying path length: err = %v", err)
	}
	// Out-of-range enabled byte on an otherwise well-formed payload.
	oor := append([]byte(nil), good...)
	oor[0] = 2
	if _, err := ParseBlackboxStatus(oor); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("enabled=2: err = %v", err)
	}
}

func TestBlackboxReqParse(t *testing.T) {
	if op, err := ParseBlackboxReq(AppendBlackboxReq(nil, BlackboxSync)); err != nil || op != BlackboxSync {
		t.Fatalf("sync req: op=%d err=%v", op, err)
	}
	for _, p := range [][]byte{nil, {2}, {0, 0}} {
		if _, err := ParseBlackboxReq(p); !errors.Is(err, ErrBadMessage) {
			t.Fatalf("hostile req %v: err = %v", p, err)
		}
	}
}

// TestBlackboxOverWire pins the end-to-end contract: a bare server
// answers the disabled status, an attached source is snapshotted, and
// the sync opcode reaches the source.
func TestBlackboxOverWire(t *testing.T) {
	s, sock := startServer(t, Config{})
	cl := dial(t, sock)

	st, err := cl.Blackbox(false)
	if err != nil {
		t.Fatalf("blackbox on bare server: %v", err)
	}
	if st.Enabled {
		t.Fatalf("bare server reports an enabled black box: %+v", st)
	}

	var sawSync atomic.Bool
	s.SetBlackboxSource(func(sync bool) BlackboxStatus {
		if sync {
			sawSync.Store(true)
		}
		return BlackboxStatus{Enabled: true, Records: 7, RingBytes: 1 << 20, Path: "/tmp/bb.bin"}
	})
	st, err = cl.Blackbox(true)
	if err != nil {
		t.Fatalf("blackbox with source: %v", err)
	}
	if !st.Enabled || st.Records != 7 || st.Path != "/tmp/bb.bin" {
		t.Fatalf("status = %+v", st)
	}
	if !sawSync.Load() {
		t.Fatal("BlackboxSync did not reach the source")
	}
	s.SetBlackboxSource(nil)
	if st, err := cl.Blackbox(false); err != nil || st.Enabled {
		t.Fatalf("after detach: %+v %v", st, err)
	}
}
