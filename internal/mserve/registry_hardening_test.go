package mserve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestRegistryRollbackPastBottom walks the activation stack all the way
// down and keeps going: every extra Rollback must fail with
// ErrCannotRollback, leave the bottom version active, and leave the
// registry fully operational (Activate and Put still work, on-disk state
// still reopens).
func TestRegistryRollbackPastBottom(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRegistry(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := int64(1); i <= 3; i++ {
		if _, err := r.Put(KindNN, fmt.Sprintf("m%d", i), nnModelBytes(t, i, 4)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for want := uint64(2); want >= 1; want-- {
		v, err := r.Rollback()
		if err != nil {
			t.Fatalf("rollback to %d: %v", want, err)
		}
		if v.Number != want {
			t.Fatalf("rolled back to %d, want %d", v.Number, want)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := r.Rollback(); !errors.Is(err, ErrCannotRollback) {
			t.Fatalf("rollback past bottom #%d: %v", i+1, err)
		}
		if a, ok := r.Active(); !ok || a.Number != 1 {
			t.Fatalf("active after failed rollback: %+v ok=%v", a, ok)
		}
	}
	// The registry is not wedged: old versions re-activate, new ones land.
	if _, err := r.Activate(3); err != nil {
		t.Fatalf("activate after failed rollbacks: %v", err)
	}
	if v, err := r.Put(KindNN, "m4", nnModelBytes(t, 4, 4)); err != nil || v.Number != 4 {
		t.Fatalf("put after failed rollbacks: %+v, %v", v, err)
	}
	r2, err := OpenRegistry(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if a, ok := r2.Active(); !ok || a.Number != 4 {
		t.Fatalf("reopened active: %+v ok=%v", a, ok)
	}
}

// TestServerConcurrentDeployRollback hammers the server's two control
// operations from racing goroutines while readers spin on the hot-swap
// Deployment — the exact interleaving the online-learning controller and
// a human operator can produce. Run under -race this pins the locking;
// functionally it pins that the survivor state is coherent: the
// Deployment serves exactly the registry's active version.
func TestServerConcurrentDeployRollback(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	srv, err := NewServer(Config{Registry: reg})
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	defer srv.Shutdown(0)
	if _, err := srv.Deploy(KindNN, "base", nnModelBytes(t, 1, 4)); err != nil {
		t.Fatalf("base deploy: %v", err)
	}

	const deployers, rollers, deploysEach = 4, 2, 8
	var wg, readers sync.WaitGroup
	stop := make(chan struct{})
	// Readers: the serving path's view must always be a live artifact.
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := srv.Deployment().Load()
				if snap == nil || snap.Model == nil || snap.Version == 0 {
					t.Error("deployment exposed a nil snapshot")
					return
				}
				if got := snap.Model.Version.Number; got != snap.Version {
					t.Errorf("deployment version %d serves artifact %d", snap.Version, got)
					return
				}
			}
		}()
	}
	for i := 0; i < deployers; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for n := 0; n < deploysEach; n++ {
				seed := int64(100 + worker*deploysEach + n)
				name := fmt.Sprintf("w%d-n%d", worker, n)
				if _, err := srv.Deploy(KindNN, name, nnModelBytes(t, seed, 4)); err != nil {
					t.Errorf("deploy %s: %v", name, err)
					return
				}
			}
		}(i)
	}
	for i := 0; i < rollers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < deploysEach; n++ {
				// Racing a concurrent deployer, hitting bottom is legal;
				// anything else is not.
				if _, err := srv.Rollback(); err != nil && !errors.Is(err, ErrCannotRollback) {
					t.Errorf("rollback: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	active, ok := reg.Active()
	if !ok {
		t.Fatal("no active version after the storm")
	}
	snap := srv.Deployment().Load()
	if snap.Version != active.Number || snap.Model.Version.Number != active.Number {
		t.Fatalf("deployment serves v%d (artifact v%d), registry active is v%d",
			snap.Version, snap.Model.Version.Number, active.Number)
	}
	if st := srv.Stats(); st.Deploys != uint64(1+deployers*deploysEach) {
		t.Fatalf("deploys = %d, want %d", st.Deploys, 1+deployers*deploysEach)
	}
}

// TestRegistryCorruptManifestRecovery corrupts the MANIFEST in several
// ways and requires a clean ErrCorruptRegistry from OpenRegistry each
// time — never a panic, never a half-loaded registry — and that
// restoring the manifest brings the store back with its objects intact.
func TestRegistryCorruptManifestRecovery(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRegistry(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	model := nnModelBytes(t, 5, 4)
	if _, err := r.Put(KindNN, "keep", model); err != nil {
		t.Fatalf("put: %v", err)
	}
	manifest := filepath.Join(dir, manifestName)
	good, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatalf("read manifest: %v", err)
	}

	corruptions := []struct {
		name string
		data []byte
	}{
		{"truncated line", good[:len(good)/2]},
		{"garbage line", append(append([]byte{}, good...), []byte("not\ta\tmanifest\n")...)},
		{"non-numeric version", []byte("x\t1\tdeadbeef\t0\t10\t0\tm\n")},
		{"non-numeric size", []byte(strings.Replace(string(good), "\t"+fmt.Sprint(len(model))+"\t", "\tbig\t", 1))},
	}
	for _, c := range corruptions {
		if err := os.WriteFile(manifest, c.data, 0o644); err != nil {
			t.Fatalf("%s: write: %v", c.name, err)
		}
		if _, err := OpenRegistry(dir); !errors.Is(err, ErrCorruptRegistry) {
			t.Errorf("%s: OpenRegistry = %v, want ErrCorruptRegistry", c.name, err)
		}
	}

	// An ACTIVE entry pointing outside the manifest is corruption too.
	if err := os.WriteFile(manifest, good, 0o644); err != nil {
		t.Fatalf("restore manifest: %v", err)
	}
	active := filepath.Join(dir, activeName)
	if err := os.WriteFile(active, []byte("99\n"), 0o644); err != nil {
		t.Fatalf("corrupt active: %v", err)
	}
	if _, err := OpenRegistry(dir); !errors.Is(err, ErrCorruptRegistry) {
		t.Errorf("dangling ACTIVE: OpenRegistry = %v, want ErrCorruptRegistry", err)
	}

	// Recovery: restore the metadata and everything is still there —
	// the content-addressed objects never went anywhere.
	if err := os.WriteFile(active, []byte("1\n"), 0o644); err != nil {
		t.Fatalf("restore active: %v", err)
	}
	r2, err := OpenRegistry(dir)
	if err != nil {
		t.Fatalf("reopen after recovery: %v", err)
	}
	art, err := r2.ActiveArtifact()
	if err != nil {
		t.Fatalf("artifact after recovery: %v", err)
	}
	if string(art.Data) != string(model) {
		t.Fatal("artifact bytes differ after recovery")
	}
	if _, err := r2.Put(KindNN, "fresh", nnModelBytes(t, 6, 4)); err != nil {
		t.Fatalf("put after recovery: %v", err)
	}
}
