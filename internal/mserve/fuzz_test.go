package mserve

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/dtrace"
	"repro/internal/telemetry"
)

// dtraceSeedTrace builds a small well-formed trace for fuzz seeding.
func dtraceSeedTrace() dtrace.Trace {
	var b dtrace.Builder
	b.Start(9, 100)
	i := b.Begin(dtrace.StageParse, 0, 110)
	b.End(i, 120)
	b.SetValue(i, 34)
	i = b.Begin(dtrace.StageInfer, 0, 130)
	b.End(i, 150)
	return *b.Finish(160)
}

// FuzzFrameDecode drives the wire-frame decoder with hostile input. The
// decoder sits on the network boundary, so it faces exactly the bug class
// the PR 1 WAL fuzzing caught in the uvarint path: lengths that lie,
// truncated headers, version skew, and corrupt checksums must all return
// an error without panicking, over-reading, or sizing an allocation from
// an unvalidated header. On success, re-encoding must reproduce the
// consumed bytes exactly (the format has one canonical encoding).
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, MsgInfer, nil))
	f.Add(AppendFrame(nil, MsgBatchInfer, bytes.Repeat([]byte{7}, 100)))
	f.Add(AppendFrame(nil, MsgError, []byte("boom")))
	// Two frames back to back: the stream case.
	f.Add(AppendFrame(AppendFrame(nil, MsgHealth, nil), MsgStats, []byte{1, 2, 3}))
	// A traces frame carrying a canonical dtrace payload.
	tb := dtraceSeedTrace()
	f.Add(AppendFrame(nil, MsgTraces, dtrace.AppendTraces(nil, []dtrace.Trace{tb})))
	// Truncated header and truncated payload.
	f.Add([]byte{'K', 'M', 1})
	f.Add(AppendFrame(nil, MsgInfer, []byte("abc"))[:HeaderSize+1])
	// Version skew and oversized length.
	f.Add([]byte{'K', 'M', 99, 1, 0, 0, 0, 0, 0, 0, 0, 0})
	hostile := AppendFrame(nil, MsgInfer, nil)
	binary.LittleEndian.PutUint32(hostile[4:8], ^uint32(0))
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, b []byte) {
		// Stream-decode until error; the loop must terminate (progress on
		// every success) and never panic.
		rest := b
		for i := 0; ; i++ {
			typ, payload, next, err := DecodeFrame(rest)
			if err != nil {
				// A failed decode must not consume input.
				if !bytes.Equal(next, rest) {
					t.Fatalf("failed decode consumed input")
				}
				break
			}
			if len(payload) > MaxPayload {
				t.Fatalf("payload %d exceeds MaxPayload", len(payload))
			}
			consumed := len(rest) - len(next)
			if consumed < HeaderSize {
				t.Fatalf("decode made no progress (consumed %d)", consumed)
			}
			re := AppendFrame(nil, typ, payload)
			if !bytes.Equal(re, rest[:consumed]) {
				t.Fatalf("re-encode mismatch on frame %d", i)
			}
			rest = next
		}

		// Hostile payloads through the message decoders: bounded scratch,
		// so a lying header must error instead of indexing out of range.
		var feats [64]float64
		var classes [64]uint16
		_ = PeekTraceID(b)
		_, _, _ = ParseInferReq(b, feats[:])
		_, _, _, _ = ParseBatchInferReq(b, feats[:])
		_, _, _ = ParseInferResp(b)
		_, _, _ = ParseBatchInferResp(b, classes[:])
		_, _, _, _ = ParseDeployReq(b)
		_, _ = ParseVersionResp(b)
		_, _ = ParseStats(b)
		_, _, _, _ = ParseHealthResp(b)
	})
}

// FuzzMetricsDecode drives the MsgMetrics parser with hostile input and
// pins the canonical-encoding invariant: any payload the parser accepts
// must re-encode to exactly the consumed bytes, and no input may panic,
// over-read, or size an allocation from an unvalidated count.
func FuzzMetricsDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendMetrics(nil, MetricsSnapshot{}))
	f.Add(AppendMetrics(nil, MetricsSnapshot{
		Metrics: []Metric{
			{Name: "c", Kind: MetricCounter, Value: 7},
			{Name: "g", Kind: MetricGauge, Value: -7},
		},
		Decisions: []MetricsDecision{{TimeNanos: 1, Version: 2, Class: -1, Rows: 3, Sectors: 4}},
	}))
	var h telemetry.Histogram
	for _, ns := range []int64{0, 1, 500, 1 << 40} {
		h.Observe(ns)
	}
	f.Add(AppendMetrics(nil, MetricsSnapshot{Metrics: []Metric{
		{Name: "h", Kind: MetricHistogram, Hist: h.Snapshot()},
		{Name: "empty", Kind: MetricHistogram},
	}}))
	f.Add([]byte{0xFF, 0xFF})                               // lying metric count
	f.Add(append(AppendMetrics(nil, MetricsSnapshot{}), 1)) // trailing byte

	f.Fuzz(func(t *testing.T, b []byte) {
		snap, err := ParseMetrics(b)
		if err != nil {
			return
		}
		if len(snap.Metrics) > MaxMetrics || len(snap.Decisions) > MaxDecisions {
			t.Fatalf("parsed snapshot exceeds wire limits: %d metrics, %d decisions",
				len(snap.Metrics), len(snap.Decisions))
		}
		for _, m := range snap.Metrics {
			if m.Kind == MetricHistogram {
				var sum uint64
				for _, c := range m.Hist.Buckets {
					sum += c
				}
				if sum != m.Hist.Count {
					t.Fatalf("histogram %q count %d != bucket sum %d", m.Name, m.Hist.Count, sum)
				}
			}
		}
		re := AppendMetrics(nil, snap)
		if !bytes.Equal(re, b) {
			t.Fatalf("accepted payload is not canonical:\n in: %x\nout: %x", b, re)
		}
	})
}

// FuzzLearnStatusDecode drives the MsgLearnStatus parser with hostile
// input and pins the same canonical-encoding invariant as the other wire
// decoders: Append(Parse(b)) == b for every accepted b, and no input may
// panic, over-read, or size an allocation from an unvalidated count.
func FuzzLearnStatusDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendLearnStatus(nil, LearnStatus{BaselinePM: -1, CanaryPM: -1}))
	f.Add(AppendLearnStatus(nil, LearnStatus{
		State:    LearnCanary,
		Retrains: 3, Deploys: 4, Rollbacks: 1, Commits: 2,
		TriggerFires: 5, Examples: 256, LastVersion: 9,
		BaselinePM: 700, CanaryPM: 650,
		Events: []RetrainEvent{
			{TimeNanos: 1, Version: 8, DurationNanos: 2_000_000, Examples: 128,
				Outcome: RetrainCommitted, BaselinePM: 600, CanaryPM: 700,
				MaxShiftMZ: 2500, ChurnPM: 120},
			{TimeNanos: 2, Version: 9, Outcome: RetrainPending,
				BaselinePM: -1, CanaryPM: -1},
		},
	}))
	f.Add([]byte{6})                                        // out-of-range state
	f.Add(append(AppendLearnStatus(nil, LearnStatus{}), 1)) // trailing byte
	lying := AppendLearnStatus(nil, LearnStatus{})
	lying[len(lying)-2] = 0xFF // event count with no event bytes
	f.Add(lying)

	f.Fuzz(func(t *testing.T, b []byte) {
		st, err := ParseLearnStatus(b)
		if err != nil {
			return
		}
		if len(st.Events) > MaxRetrainEvents {
			t.Fatalf("parsed status exceeds event cap: %d", len(st.Events))
		}
		if st.State > LearnRolledBack {
			t.Fatalf("parsed out-of-range state %d", st.State)
		}
		re := AppendLearnStatus(nil, st)
		if !bytes.Equal(re, b) {
			t.Fatalf("accepted payload is not canonical:\n in: %x\nout: %x", b, re)
		}
	})
}

// FuzzBlackboxStatusDecode drives the MsgBlackbox status parser with
// hostile input under the same contract: Append(Parse(b)) == b for
// every accepted b, no panic, no over-read, no count-sized allocation
// before validation.
func FuzzBlackboxStatusDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendBlackboxStatus(nil, BlackboxStatus{}))
	f.Add(AppendBlackboxStatus(nil, BlackboxStatus{
		Enabled: true, Records: 1000, Dropped: 1, Flushes: 40,
		RingBytes: 4 << 20, TornAtOpen: 1,
		LastFlushNanos: 1700000000000000000, Path: "/var/run/kml/bb.bin",
	}))
	f.Add([]byte{2})                                              // out-of-range enabled
	f.Add(append(AppendBlackboxStatus(nil, BlackboxStatus{}), 9)) // trailing byte
	lying := AppendBlackboxStatus(nil, BlackboxStatus{Path: "x"})
	lying[blackboxHeaderSize-2] = 0xFF // path length with no path bytes
	f.Add(lying)

	f.Fuzz(func(t *testing.T, b []byte) {
		st, err := ParseBlackboxStatus(b)
		if err != nil {
			return
		}
		if len(st.Path) > MaxBlackboxPath {
			t.Fatalf("parsed status exceeds path cap: %d", len(st.Path))
		}
		re := AppendBlackboxStatus(nil, st)
		if !bytes.Equal(re, b) {
			t.Fatalf("accepted payload is not canonical:\n in: %x\nout: %x", b, re)
		}
	})
}
