package mserve

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzFrameDecode drives the wire-frame decoder with hostile input. The
// decoder sits on the network boundary, so it faces exactly the bug class
// the PR 1 WAL fuzzing caught in the uvarint path: lengths that lie,
// truncated headers, version skew, and corrupt checksums must all return
// an error without panicking, over-reading, or sizing an allocation from
// an unvalidated header. On success, re-encoding must reproduce the
// consumed bytes exactly (the format has one canonical encoding).
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, MsgInfer, nil))
	f.Add(AppendFrame(nil, MsgBatchInfer, bytes.Repeat([]byte{7}, 100)))
	f.Add(AppendFrame(nil, MsgError, []byte("boom")))
	// Two frames back to back: the stream case.
	f.Add(AppendFrame(AppendFrame(nil, MsgHealth, nil), MsgStats, []byte{1, 2, 3}))
	// Truncated header and truncated payload.
	f.Add([]byte{'K', 'M', 1})
	f.Add(AppendFrame(nil, MsgInfer, []byte("abc"))[:HeaderSize+1])
	// Version skew and oversized length.
	f.Add([]byte{'K', 'M', 99, 1, 0, 0, 0, 0, 0, 0, 0, 0})
	hostile := AppendFrame(nil, MsgInfer, nil)
	binary.LittleEndian.PutUint32(hostile[4:8], ^uint32(0))
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, b []byte) {
		// Stream-decode until error; the loop must terminate (progress on
		// every success) and never panic.
		rest := b
		for i := 0; ; i++ {
			typ, payload, next, err := DecodeFrame(rest)
			if err != nil {
				// A failed decode must not consume input.
				if !bytes.Equal(next, rest) {
					t.Fatalf("failed decode consumed input")
				}
				break
			}
			if len(payload) > MaxPayload {
				t.Fatalf("payload %d exceeds MaxPayload", len(payload))
			}
			consumed := len(rest) - len(next)
			if consumed < HeaderSize {
				t.Fatalf("decode made no progress (consumed %d)", consumed)
			}
			re := AppendFrame(nil, typ, payload)
			if !bytes.Equal(re, rest[:consumed]) {
				t.Fatalf("re-encode mismatch on frame %d", i)
			}
			rest = next
		}

		// Hostile payloads through the message decoders: bounded scratch,
		// so a lying header must error instead of indexing out of range.
		var feats [64]float64
		var classes [64]uint16
		_, _ = ParseInferReq(b, feats[:])
		_, _, _ = ParseBatchInferReq(b, feats[:])
		_, _, _ = ParseInferResp(b)
		_, _, _ = ParseBatchInferResp(b, classes[:])
		_, _, _, _ = ParseDeployReq(b)
		_, _ = ParseVersionResp(b)
		_, _ = ParseStats(b)
		_, _, _, _ = ParseHealthResp(b)
	})
}
