// Client side of the serving protocol. One Client owns one connection and
// is safe for sequential use by one goroutine (the protocol is strict
// request/response); a load generator opens one Client per worker.
package mserve

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/dtrace"
	"repro/internal/telemetry/tsrec"
)

// ErrRemote wraps a MsgError response from the server; the connection
// stays usable after one.
var ErrRemote = errors.New("mserve: server error")

// Client is a serving-protocol connection.
type Client struct {
	c       net.Conn
	timeout time.Duration
	hdr     [HeaderSize]byte
	req     []byte // request payload buffer; must not alias out
	out     []byte // encoded request frame
	payload []byte // response payload buffer
	classes []uint16

	// Tracing state (EnableTracing). arena keeps the client's completed
	// request traces; tb is the in-place builder; wireSpan tells do() to
	// wrap the round trip in a StageWire span for the CURRENT traced
	// request only (control-plane calls on the same client stay
	// untraced); lastID is the most recent stamped TraceID.
	arena    *dtrace.Arena
	tb       dtrace.Builder
	wireSpan bool
	lastID   dtrace.TraceID
}

// Dial connects to a serving endpoint on network ("tcp", "unix").
func Dial(network, addr string) (*Client, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewClient(c), nil
}

// NewClient wraps an established connection.
func NewClient(c net.Conn) *Client {
	return &Client{c: c, timeout: 30 * time.Second}
}

// SetTimeout bounds each request round trip; 0 disables deadlines.
func (cl *Client) SetTimeout(d time.Duration) { cl.timeout = d }

// EnableTracing turns on client-side request tracing: every Infer and
// BatchInfer records a client→wire span tree into arena and stamps its
// TraceID (with ClientTraceIDBit set) into the request frame, so the
// server's spans join the same trace and kml-trace can render the
// cross-process tree. nil disables. The per-request tracing cost is a
// few clock reads and one arena copy — the propagation path stays
// alloc-free (TestClientTracingAllocFree).
func (cl *Client) EnableTracing(arena *dtrace.Arena) { cl.arena = arena }

// LastTraceID returns the TraceID stamped into the most recent traced
// request (0 before any), for callers matching their traces against the
// server's MsgTraces snapshot.
func (cl *Client) LastTraceID() dtrace.TraceID { return cl.lastID }

// Close closes the connection.
func (cl *Client) Close() error { return cl.c.Close() }

// do writes one request frame and reads the response frame, returning the
// response type and payload (aliasing cl.payload, valid until the next
// call).
func (cl *Client) do(typ MsgType, payload []byte) (MsgType, []byte, error) {
	if cl.timeout != 0 {
		if err := cl.c.SetDeadline(time.Now().Add(cl.timeout)); err != nil {
			return 0, nil, err
		}
	}
	cl.out = cl.out[:0]
	cl.out = AppendFrame(cl.out, typ, payload)
	ws := -1
	if cl.wireSpan {
		ws = cl.tb.Begin(dtrace.StageWire, 0, time.Now().UnixNano())
		cl.tb.SetAux(ws, int64(len(cl.out)))
	}
	if _, err := cl.c.Write(cl.out); err != nil {
		return 0, nil, err
	}
	if _, err := io.ReadFull(cl.c, cl.hdr[:]); err != nil {
		return 0, nil, err
	}
	h, err := ParseHeader(cl.hdr[:])
	if err != nil {
		return 0, nil, err
	}
	cl.payload = growBytes(cl.payload, int(h.Length))
	if _, err := io.ReadFull(cl.c, cl.payload); err != nil {
		return 0, nil, err
	}
	if err := h.CheckPayload(cl.payload); err != nil {
		return 0, nil, err
	}
	if ws >= 0 {
		cl.tb.End(ws, time.Now().UnixNano())
		cl.tb.SetValue(ws, int64(HeaderSize+len(cl.payload)))
	}
	if h.Type == MsgError {
		return h.Type, nil, fmt.Errorf("%w: %s", ErrRemote, cl.payload)
	}
	if h.Type != typ {
		return h.Type, nil, fmt.Errorf("%w: response type %d to request %d", ErrBadMessage, h.Type, typ)
	}
	return h.Type, cl.payload, nil
}

// startTrace opens the client-side request trace when tracing is on,
// returning the TraceID to stamp into the request payload (0 when
// untraced). The root StageClient span covers the whole call.
func (cl *Client) startTrace() uint64 {
	if cl.arena == nil {
		return 0
	}
	id := dtrace.TraceID(uint64(cl.arena.NextID()) | ClientTraceIDBit)
	cl.lastID = id
	cl.tb.StartRoot(id, dtrace.StageClient, time.Now().UnixNano())
	return uint64(id)
}

// finishTrace closes and records the client-side request trace.
func (cl *Client) finishTrace(class, rows int64) {
	cl.tb.SetValue(0, class)
	cl.tb.SetAux(0, rows)
	cl.arena.Record(cl.tb.Finish(time.Now().UnixNano()))
}

// Infer classifies one feature vector on the deployed model, returning
// the class and the serving model version. With tracing enabled the call
// records a client trace (root/encode/wire/parse spans) whose ID the
// server's own spans join.
func (cl *Client) Infer(feats []float64) (class int, version uint64, err error) {
	tid := cl.startTrace()
	traced := tid != 0
	es := -1
	if traced {
		es = cl.tb.Begin(dtrace.StageEncode, 0, time.Now().UnixNano())
	}
	cl.req = AppendInferReq(cl.req[:0], tid, feats)
	if traced {
		cl.tb.End(es, time.Now().UnixNano())
		cl.tb.SetValue(es, int64(len(cl.req)))
		cl.wireSpan = true
	}
	_, resp, err := cl.do(MsgInfer, cl.req)
	cl.wireSpan = false
	if err != nil {
		return 0, 0, err // abandons the half-built trace; next Start resets
	}
	ps := -1
	if traced {
		ps = cl.tb.Begin(dtrace.StageParse, 0, time.Now().UnixNano())
	}
	c16, v, err := ParseInferResp(resp)
	if traced {
		cl.tb.End(ps, time.Now().UnixNano())
		cl.tb.SetValue(ps, int64(len(resp)))
		if err == nil {
			cl.finishTrace(int64(c16), 1)
		}
	}
	return int(c16), v, err
}

// BatchInfer classifies rows vectors of nfeat features (row-major in
// feats) in one round trip. The returned class slice is reused across
// calls; copy it to retain.
func (cl *Client) BatchInfer(feats []float64, rows, nfeat int) (classes []uint16, version uint64, err error) {
	if rows <= 0 || nfeat <= 0 || len(feats) < rows*nfeat {
		return nil, 0, fmt.Errorf("%w: batch shape %dx%d over %d floats", ErrBadMessage, rows, nfeat, len(feats))
	}
	tid := cl.startTrace()
	traced := tid != 0
	es := -1
	if traced {
		es = cl.tb.Begin(dtrace.StageEncode, 0, time.Now().UnixNano())
	}
	cl.req = AppendBatchInferReq(cl.req[:0], tid, feats, rows, nfeat)
	if traced {
		cl.tb.End(es, time.Now().UnixNano())
		cl.tb.SetValue(es, int64(len(cl.req)))
		cl.wireSpan = true
	}
	_, resp, err := cl.do(MsgBatchInfer, cl.req)
	cl.wireSpan = false
	if err != nil {
		return nil, 0, err
	}
	if rows > len(cl.classes) {
		cl.classes = make([]uint16, rows)
	}
	ps := -1
	if traced {
		ps = cl.tb.Begin(dtrace.StageParse, 0, time.Now().UnixNano())
	}
	n, v, err := ParseBatchInferResp(resp, cl.classes)
	if traced {
		cl.tb.End(ps, time.Now().UnixNano())
		cl.tb.SetValue(ps, int64(len(resp)))
		if err == nil {
			cl.finishTrace(-1, int64(n))
		}
	}
	if err != nil {
		return nil, 0, err
	}
	return cl.classes[:n], v, nil
}

// Deploy uploads a serialized model and activates it, returning the new
// version number.
func (cl *Client) Deploy(kind ModelKind, name string, model []byte) (uint64, error) {
	cl.req = AppendDeployReq(cl.req[:0], kind, name, model)
	_, resp, err := cl.do(MsgDeploy, cl.req)
	if err != nil {
		return 0, err
	}
	return ParseVersionResp(resp)
}

// Rollback reverts the server to the previously active version.
func (cl *Client) Rollback() (uint64, error) {
	_, resp, err := cl.do(MsgRollback, nil)
	if err != nil {
		return 0, err
	}
	return ParseVersionResp(resp)
}

// Stats fetches the server's operational counters.
func (cl *Client) Stats() (Stats, error) {
	_, resp, err := cl.do(MsgStats, nil)
	if err != nil {
		return Stats{}, err
	}
	return ParseStats(resp)
}

// Metrics fetches the server's telemetry snapshot: every registered
// metric (histograms with populated buckets) plus the flight recorder's
// retained decisions.
func (cl *Client) Metrics() (MetricsSnapshot, error) {
	_, resp, err := cl.do(MsgMetrics, nil)
	if err != nil {
		return MetricsSnapshot{}, err
	}
	return ParseMetrics(resp)
}

// Traces fetches the server's retained decision traces, oldest first.
func (cl *Client) Traces() ([]dtrace.Trace, error) {
	_, resp, err := cl.do(MsgTraces, nil)
	if err != nil {
		return nil, err
	}
	return dtrace.ParseTraces(resp)
}

// LearnStatus fetches the online-learning controller's snapshot: state
// machine position, lifecycle counters, canary comparison, and the
// retrain-event history. A server without a controller answers the zero
// status.
func (cl *Client) LearnStatus() (LearnStatus, error) {
	_, resp, err := cl.do(MsgLearnStatus, nil)
	if err != nil {
		return LearnStatus{}, err
	}
	return ParseLearnStatus(resp)
}

// TimeSeries fetches the server's captured metric time series: counter
// deltas and histogram quantiles per capture interval, oldest first.
func (cl *Client) TimeSeries() (tsrec.Series, error) {
	_, resp, err := cl.do(MsgTimeSeries, nil)
	if err != nil {
		return tsrec.Series{}, err
	}
	return tsrec.ParseSeries(resp)
}

// Blackbox fetches the black-box flight recorder's status. With sync
// the server captures, flushes, and fsyncs the box first, so the
// returned path names a file current to this call — the handle
// kml-postmortem uses against a live server. A server without a black
// box answers the zero (disabled) status.
func (cl *Client) Blackbox(sync bool) (BlackboxStatus, error) {
	op := uint8(BlackboxStat)
	if sync {
		op = BlackboxSync
	}
	_, resp, err := cl.do(MsgBlackbox, AppendBlackboxReq(nil, op))
	if err != nil {
		return BlackboxStatus{}, err
	}
	return ParseBlackboxStatus(resp)
}

// Health reports whether the server is serving, the active version, and
// the deployed model's input width.
func (cl *Client) Health() (ok bool, version uint64, inDim int, err error) {
	_, resp, err := cl.do(MsgHealth, nil)
	if err != nil {
		return false, 0, 0, err
	}
	return ParseHealthResp(resp)
}
