package mserve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xAB}, 1000)}
	var stream []byte
	for i, p := range payloads {
		stream = AppendFrame(stream, MsgType(i+1), p)
	}
	rest := stream
	for i, p := range payloads {
		typ, payload, r, err := DecodeFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != MsgType(i+1) || !bytes.Equal(payload, p) {
			t.Fatalf("frame %d: typ=%d payload=%v", i, typ, payload)
		}
		rest = r
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

func TestFrameDecodeRejectsHostileInput(t *testing.T) {
	good := AppendFrame(nil, MsgInfer, []byte("payload"))

	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrShortFrame},
		{"truncated header", func(b []byte) []byte { return b[:HeaderSize-1] }, ErrShortFrame},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-1] }, ErrShortFrame},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrBadMagic},
		{"version skew", func(b []byte) []byte { b[2] = FrameVersion + 1; return b }, ErrVersionSkew},
		{"oversized length", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], MaxPayload+1)
			return b
		}, ErrOversizedFrame},
		{"lying length", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], 1<<19)
			return b
		}, ErrShortFrame},
		{"corrupt payload", func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b }, ErrBadFrameCRC},
		{"corrupt crc", func(b []byte) []byte { b[9] ^= 0xFF; return b }, ErrBadFrameCRC},
	}
	for _, tc := range cases {
		b := tc.mut(append([]byte(nil), good...))
		_, _, rest, err := DecodeFrame(b)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
		if !bytes.Equal(rest, b) {
			t.Errorf("%s: failed decode consumed input", tc.name)
		}
	}
}

func TestProtocolRoundTrips(t *testing.T) {
	feats := []float64{0.25, -1, 3.5, 42}

	p := AppendInferReq(nil, 0, feats)
	dst := make([]float64, 8)
	n, tid, err := ParseInferReq(p, dst)
	if err != nil || n != 4 || tid != 0 {
		t.Fatalf("infer req: n=%d tid=%d err=%v", n, tid, err)
	}
	for i, f := range feats {
		if dst[i] != f {
			t.Fatalf("feat %d = %v", i, dst[i])
		}
	}

	// A client-stamped trace ID survives the round trip and is readable
	// by the cheap prefix peek the server uses before full parsing.
	const wantID = ClientTraceIDBit | 42
	p = AppendInferReq(nil, wantID, feats)
	if got := PeekTraceID(p); got != wantID {
		t.Fatalf("PeekTraceID = %#x, want %#x", got, wantID)
	}
	if _, tid, err = ParseInferReq(p, dst); err != nil || tid != wantID {
		t.Fatalf("traced infer req: tid=%#x err=%v", tid, err)
	}
	if PeekTraceID(p[:7]) != 0 {
		t.Fatal("short payload must peek as untraced")
	}

	p = AppendInferResp(nil, 3, 17)
	class, version, err := ParseInferResp(p)
	if err != nil || class != 3 || version != 17 {
		t.Fatalf("infer resp: %d %d %v", class, version, err)
	}

	flat := []float64{1, 2, 3, 4, 5, 6}
	p = AppendBatchInferReq(nil, wantID, flat, 2, 3)
	if got := PeekTraceID(p); got != wantID {
		t.Fatalf("batch PeekTraceID = %#x, want %#x", got, wantID)
	}
	bdst := make([]float64, 6)
	rows, nfeat, btid, err := ParseBatchInferReq(p, bdst)
	if err != nil || rows != 2 || nfeat != 3 || btid != wantID {
		t.Fatalf("batch req: %d %d tid=%#x %v", rows, nfeat, btid, err)
	}

	classes := []uint16{0, 3, 2}
	p = AppendBatchInferResp(nil, classes, 9)
	out := make([]uint16, 3)
	rows, version, err = ParseBatchInferResp(p, out)
	if err != nil || rows != 3 || version != 9 || out[1] != 3 {
		t.Fatalf("batch resp: rows=%d v=%d out=%v err=%v", rows, version, out, err)
	}

	p = AppendDeployReq(nil, KindDTree, "readahead", []byte{9, 9, 9})
	kind, name, model, err := ParseDeployReq(p)
	if err != nil || kind != KindDTree || name != "readahead" || len(model) != 3 {
		t.Fatalf("deploy req: %v %q %v %v", kind, name, model, err)
	}

	st := Stats{
		ActiveVersion: 1, Deploys: 2, Rollbacks: 3, Inferences: 4, Rows: 5,
		Errors: 6, Conns: 7, MaxConns: 8, ConnRejects: 9, ArenaRejects: 10,
		Collected: 11, Processed: 12, Dropped: 13, BufferLen: 14,
		BufferCap: 15, ArenaLive: 16, ArenaPeak: 17,
	}
	got, err := ParseStats(AppendStats(nil, st))
	if err != nil || got != st {
		t.Fatalf("stats round trip: %+v err=%v", got, err)
	}

	ok, version, inDim, err := ParseHealthResp(AppendHealthResp(nil, true, 5, 4))
	if err != nil || !ok || version != 5 || inDim != 4 {
		t.Fatalf("health: %v %d %d %v", ok, version, inDim, err)
	}
}

func TestParseReqBounds(t *testing.T) {
	dst := make([]float64, 4)
	if _, _, err := ParseInferReq(nil, dst); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("nil infer req: %v", err)
	}
	// Declared count larger than payload. The feature count sits after
	// the u64 trace-id prefix.
	p := AppendInferReq(nil, 0, []float64{1, 2, 3, 4})
	binary.LittleEndian.PutUint16(p[8:], 100)
	if _, _, err := ParseInferReq(p, dst); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("lying infer count: %v", err)
	}
	// Batch rows above the protocol bound.
	b := AppendBatchInferReq(nil, 0, []float64{1, 2}, 1, 2)
	binary.LittleEndian.PutUint32(b[8:], MaxBatchRows+1)
	if _, _, _, err := ParseBatchInferReq(b, dst); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("oversized batch rows: %v", err)
	}
}
