package mserve

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dtrace"
)

// TestServerTracesEndToEnd drives single and batched inference over the
// wire and pulls the per-request traces back with Client.Traces(),
// checking span structure (parse → infer → encode under one root) and
// the request-shape attributes.
func TestServerTracesEndToEnd(t *testing.T) {
	_, sock := startServer(t, Config{TraceCapacity: 32})
	cl := dial(t, sock)

	// No traffic yet: an empty pull is valid and decodes to nothing.
	traces, err := cl.Traces()
	if err != nil || len(traces) != 0 {
		t.Fatalf("traces on idle server: n=%d err=%v", len(traces), err)
	}

	if _, err := cl.Deploy(KindNN, "m", nnModelBytes(t, 42, 4)); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	const singles = 3
	for i := 0; i < singles; i++ {
		if _, _, err := cl.Infer([]float64{0.1, 0.2, 0.3, 0.4}); err != nil {
			t.Fatalf("infer %d: %v", i, err)
		}
	}
	flat := make([]float64, 8*4)
	if _, _, err := cl.BatchInfer(flat, 8, 4); err != nil {
		t.Fatalf("batch: %v", err)
	}
	// A failed request must not leave a trace: wrong feature width.
	if _, _, err := cl.Infer([]float64{1, 2}); !errors.Is(err, ErrRemote) {
		t.Fatalf("short infer: %v", err)
	}

	traces, err = cl.Traces()
	if err != nil {
		t.Fatalf("traces: %v", err)
	}
	if len(traces) != singles+1 {
		t.Fatalf("retained %d traces, want %d", len(traces), singles+1)
	}
	wantStages := []dtrace.Stage{
		dtrace.StageDecision, dtrace.StageQueue,
		dtrace.StageParse, dtrace.StageInfer, dtrace.StageEncode,
	}
	var lastID dtrace.TraceID
	for ti := range traces {
		tr := &traces[ti]
		if !tr.Complete() {
			t.Fatalf("trace %d incomplete: %+v", ti, tr)
		}
		if tr.ID <= lastID {
			t.Fatalf("trace IDs not increasing: %d after %d", tr.ID, lastID)
		}
		lastID = tr.ID
		if int(tr.N) != len(wantStages) {
			t.Fatalf("trace %d has %d spans, want %d", ti, tr.N, len(wantStages))
		}
		for si, sp := range tr.Used() {
			if sp.Stage != wantStages[si] {
				t.Fatalf("trace %d span %d stage %v, want %v", ti, si, sp.Stage, wantStages[si])
			}
			if si > 0 && sp.Parent != 1 {
				t.Fatalf("trace %d span %d parent %d, want root", ti, si, sp.Parent)
			}
		}
		root, infer := tr.Root(), tr.Spans[3]
		if ti < singles {
			// Single infer: root Aux = 1 row, infer class echoed in both.
			if root.Aux != 1 || root.Value != infer.Value || root.Value < 0 || root.Value > 3 {
				t.Fatalf("trace %d single-row attrs: root=%+v infer=%+v", ti, root, infer)
			}
		} else {
			// Batch: class is -1, Aux carries the row count.
			if root.Value != -1 || root.Aux != 8 || infer.Value != -1 {
				t.Fatalf("trace %d batch attrs: root=%+v infer=%+v", ti, root, infer)
			}
		}
		if tr.Spans[2].Value == 0 || tr.Spans[4].Value == 0 {
			t.Fatalf("trace %d parse/encode byte counts missing: %+v", ti, tr)
		}
		if q := &tr.Spans[1]; q.Start < root.Start || q.End > tr.Spans[2].Start {
			t.Fatalf("trace %d queue span [%d,%d] outside arrival→parse window", ti, q.Start, q.End)
		}
		if infer.Aux != 1 {
			t.Fatalf("trace %d infer version %d, want 1", ti, infer.Aux)
		}
	}
}

// TestServerTraceCapacityKeepLatest: the arena overwrites oldest-first at
// its configured capacity.
func TestServerTraceCapacityKeepLatest(t *testing.T) {
	_, sock := startServer(t, Config{TraceCapacity: 4})
	cl := dial(t, sock)
	if _, err := cl.Deploy(KindDTree, "m", constTreeBytes(t, 2, 4)); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, _, err := cl.Infer([]float64{1, 2, 3, 4}); err != nil {
			t.Fatalf("infer %d: %v", i, err)
		}
	}
	traces, err := cl.Traces()
	if err != nil {
		t.Fatalf("traces: %v", err)
	}
	if len(traces) != 4 {
		t.Fatalf("retained %d traces, want 4", len(traces))
	}
	for i := 1; i < len(traces); i++ {
		if traces[i].ID <= traces[i-1].ID {
			t.Fatalf("snapshot not oldest-first: %d then %d", traces[i-1].ID, traces[i].ID)
		}
	}
}

// TestServerDriftObservation: the server self-baselines a drift monitor
// per deployed model and its report/gauges move with served traffic.
func TestServerDriftObservation(t *testing.T) {
	s, sock := startServer(t, Config{DriftWindow: 4})
	cl := dial(t, sock)

	if _, ok := s.Drift(); ok {
		t.Fatal("drift report before any deploy")
	}
	if _, err := cl.Deploy(KindNN, "m", nnModelBytes(t, 7, 4)); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	if r, ok := s.Drift(); !ok || r.Decisions != 0 {
		t.Fatalf("fresh drift monitor: ok=%v %+v", ok, r)
	}

	// First window establishes the baseline; later windows shift the
	// population by +10 on every feature.
	for i := 0; i < 4; i++ {
		if _, _, err := cl.Infer([]float64{0.1, 0.2, 0.3, 0.4}); err != nil {
			t.Fatalf("baseline infer: %v", err)
		}
	}
	flat := make([]float64, 8*4)
	for i := range flat {
		flat[i] = 10
	}
	if _, _, err := cl.BatchInfer(flat, 8, 4); err != nil {
		t.Fatalf("shifted batch: %v", err)
	}

	r, ok := s.Drift()
	if !ok {
		t.Fatal("drift monitor vanished")
	}
	if r.Decisions != 12 || r.Windows != 3 {
		t.Fatalf("drift decisions/windows = %d/%d, want 12/3", r.Decisions, r.Windows)
	}
	if !r.BaselineReady || r.MaxShift <= 0 {
		t.Fatalf("shifted traffic not flagged: %+v", r)
	}
	// The gauges ride the normal metrics surface.
	snap, err := cl.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	found := false
	for _, m := range snap.Metrics {
		if strings.HasPrefix(m.Name, "mserve_drift_") {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("mserve_drift gauges absent from the metrics snapshot")
	}

	// A redeploy installs a fresh monitor for the new model.
	if _, err := cl.Deploy(KindDTree, "m2", constTreeBytes(t, 1, 4)); err != nil {
		t.Fatalf("deploy v2: %v", err)
	}
	if r, ok := s.Drift(); !ok || r.Decisions != 0 {
		t.Fatalf("drift monitor not reset on deploy: ok=%v %+v", ok, r)
	}
}

// TestServerUnknownMessage: an unrecognized message type gets a clean
// MsgError frame and the connection stays usable afterwards.
func TestServerUnknownMessage(t *testing.T) {
	_, sock := startServer(t, Config{})
	cl := dial(t, sock)

	typ, _, err := cl.do(MsgType(99), nil)
	if !errors.Is(err, ErrRemote) || typ != MsgError {
		t.Fatalf("unknown message: typ=%d err=%v", typ, err)
	}
	if !strings.Contains(err.Error(), "unknown message type 99") {
		t.Fatalf("error should name the bad type: %v", err)
	}
	// Same connection still serves requests.
	if ok, _, _, err := cl.Health(); err != nil || ok {
		t.Fatalf("health after unknown message: ok=%v err=%v", ok, err)
	}
	if _, err := cl.Deploy(KindDTree, "m", constTreeBytes(t, 0, 4)); err != nil {
		t.Fatalf("deploy after unknown message: %v", err)
	}
	if class, _, err := cl.Infer([]float64{1, 2, 3, 4}); err != nil || class != 0 {
		t.Fatalf("infer after unknown message: class=%d err=%v", class, err)
	}
}
