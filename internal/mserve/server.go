// The inference server. One goroutine per connection; each connection
// owns all of its request-scoped buffers (header, payload, feature and
// class slices, response) plus a private model Instance, so the
// steady-state request loop performs no allocation and takes no lock —
// the deployed model is reached through one atomic Deployment load per
// request. Control-plane operations (Deploy, Rollback) go through the
// registry and swap the deployment atomically; in-flight requests finish
// on the snapshot they loaded.
package mserve

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dtrace"
	"repro/internal/memutil"
	"repro/internal/telemetry"
	"repro/internal/telemetry/tsrec"
)

// Sample is one served request recorded into the server's collection
// pipeline — the serving-side analogue of the paper's inline data
// collection (§3.2): the request handler pushes a fixed-size record into
// the lock-free ring and the pipeline's asynchronous thread aggregates it.
type Sample struct {
	Version uint64 // model version that served the request
	Class   int32  // predicted class (-1 for a batch record)
	Rows    int32  // feature vectors classified
}

// Config parameterizes a Server.
type Config struct {
	// Registry is the backing model store (required). If it has an active
	// version, the server starts serving it immediately.
	Registry *Registry
	// MaxConns caps concurrent connections; 0 means 64.
	MaxConns int
	// ReadTimeout bounds the wait for the next request on an idle
	// connection; 0 means 30s.
	ReadTimeout time.Duration
	// WriteTimeout bounds one response write; 0 means 10s.
	WriteTimeout time.Duration
	// Arena, when set, provides admission control: each connection charges
	// ConnBytes and the collection ring is charged at construction, so a
	// reservation cap turns memory pressure into refused connections
	// instead of unbounded growth (§3.1 memory reservation).
	Arena *memutil.Arena
	// ConnBytes is the accounted per-connection footprint; 0 means 64 KiB.
	ConnBytes int64
	// CollectCapacity sizes the collection ring; 0 means 4096 samples.
	CollectCapacity int
	// TraceCapacity sizes the request-trace arena (keep-latest); 0
	// means 256 traces.
	TraceCapacity int
	// DriftWindow is decisions per drift evaluation window; 0 means
	// dtrace.DefaultDriftWindow.
	DriftWindow int
	// TimeSeriesInterval is the capture period of the server's metric
	// time-series recorder (MsgTimeSeries); 0 means 1s.
	TimeSeriesInterval time.Duration
	// TimeSeriesCapacity is how many points the recorder retains; 0
	// means 256.
	TimeSeriesCapacity int
	// CoalesceWindow, when nonzero, enables cross-connection batch
	// coalescing: concurrent Infer/BatchInfer rows from different
	// connections are gathered for up to this long (50-200µs is the
	// useful range) and classified in one fused PredictBatch call.
	// Zero (the default) serves every request inline, as before.
	CoalesceWindow time.Duration
	// CoalesceMax caps gathered rows per coalesced batch; 0 means 64.
	// A batch reaching the cap executes immediately without waiting out
	// the window. Clamped to MaxBatchRows.
	CoalesceMax int
	// CoalesceShards is the number of independent gather domains; 0
	// means 1. One shard maximizes achieved batch size; more shards
	// spread the gather lock when it becomes the bottleneck.
	CoalesceShards int
}

func (c Config) withDefaults() Config {
	if c.MaxConns == 0 {
		c.MaxConns = 64
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.ConnBytes == 0 {
		c.ConnBytes = 64 << 10
	}
	if c.CollectCapacity == 0 {
		c.CollectCapacity = 4096
	}
	if c.TraceCapacity == 0 {
		c.TraceCapacity = 256
	}
	return c
}

// Server serves model inference over TCP or unix sockets.
type Server struct {
	cfg Config
	dep *Deployment[*Artifact]

	pipeline *core.Pipeline[Sample]
	tallyMu  sync.Mutex
	tally    map[uint64]uint64 // rows served per model version

	ctlMu sync.Mutex // serializes Deploy/Rollback against each other

	ln       net.Listener
	lnMu     sync.Mutex
	draining atomic.Bool
	wg       sync.WaitGroup
	connsMu  sync.Mutex
	conns    map[net.Conn]struct{}
	connPool sync.Pool // *srvConn, recycled across connections

	open atomic.Int64

	// Attribution counters live in the registry (not private atomics) so
	// the time-series recorder and /metrics see the same values Stats
	// reports — one source of truth per number.
	inferences   *telemetry.Counter // mserve_inferences
	rows         *telemetry.Counter // mserve_rows
	errorsSent   *telemetry.Counter // mserve_errors
	accepted     *telemetry.Counter // mserve_accepted
	acceptErrors *telemetry.Counter // mserve_accept_errors
	connRejects  *telemetry.Counter // mserve_conn_rejects
	arenaRejects *telemetry.Counter // mserve_arena_rejects

	reg        *telemetry.Registry
	reqNanos   [numMsgTypes]*telemetry.Histogram // per-type latency, by request MsgType
	rxBytes    [numMsgTypes]*telemetry.Counter   // per-type request bytes (frames incl. header)
	txBytes    [numMsgTypes]*telemetry.Counter   // per-type response bytes
	queueNanos *telemetry.Histogram              // arrival→infer-start delay (incl. gather wait)
	rec        *tsrec.Recorder                   // metric time-series capture (MsgTimeSeries)
	flight     *telemetry.FlightRecorder[MetricsDecision]

	// Cross-connection batch coalescing (coalesce.go); nil when disabled.
	// The histogram records achieved batch sizes — the distribution that
	// proves the gather window is amortizing the fused kernel.
	coal            *coalescer
	connSeq         atomic.Uint64      // round-robin shard assignment
	coalesceBatches *telemetry.Counter // mserve_coalesce_batches
	coalesceRows    *telemetry.Counter // mserve_coalesce_rows
	coalesceHist    *telemetry.Histogram

	// learnSource, when set, snapshots the online-learning controller
	// for MsgLearnStatus; the controller lives outside mserve
	// (internal/olearn) and registers itself via SetLearnSource.
	learnSource atomic.Pointer[func() LearnStatus]

	// blackboxSource, when set, snapshots the black-box flight recorder
	// for MsgBlackbox; the recorder lives outside mserve
	// (internal/blackbox, wired by kml-served) and registers itself via
	// SetBlackboxSource. The bool argument requests a synced flush
	// before the snapshot (the BlackboxSync opcode).
	blackboxSource atomic.Pointer[func(sync bool) BlackboxStatus]

	// traces retains per-request span trees (root/parse/infer/encode)
	// for the inference endpoints; drift holds the monitor for the
	// CURRENTLY deployed model, rebuilt on every swap so its shape and
	// baseline always match what is serving.
	traces *dtrace.Arena
	drift  atomic.Pointer[dtrace.DriftMonitor]
}

// numMsgTypes sizes the per-request-type metric tables.
const numMsgTypes = int(MsgBlackbox) + 1

// reqMetricNames maps request MsgTypes to their per-type metric base
// names: "<base>_ns" is the latency histogram, "<base>_rx_bytes" /
// "<base>_tx_bytes" the byte counters. Index 0 and MsgError have no
// entry; the dispatch accounting skips them.
var reqMetricNames = [numMsgTypes]string{
	MsgInfer:       "mserve_infer",
	MsgBatchInfer:  "mserve_batch_infer",
	MsgDeploy:      "mserve_deploy",
	MsgRollback:    "mserve_rollback",
	MsgStats:       "mserve_stats",
	MsgHealth:      "mserve_health",
	MsgMetrics:     "mserve_metrics",
	MsgTraces:      "mserve_traces",
	MsgLearnStatus: "mserve_learn",
	MsgTimeSeries:  "mserve_timeseries",
	MsgBlackbox:    "mserve_blackbox",
}

// flightDepth is how many served decisions the flight recorder retains.
const flightDepth = 64

// NewServer builds a server over cfg.Registry and, if the registry has an
// active version, loads it for serving. The collection pipeline is started
// here and stopped by Shutdown.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, errors.New("mserve: nil registry")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		dep:    &Deployment[*Artifact]{},
		tally:  make(map[uint64]uint64),
		conns:  make(map[net.Conn]struct{}),
		reg:    telemetry.NewRegistry(),
		flight: telemetry.NewFlightRecorder[MetricsDecision](flightDepth),
		traces: dtrace.NewArena(cfg.TraceCapacity),
	}
	for typ, name := range reqMetricNames {
		if name != "" {
			s.reqNanos[typ] = s.reg.Histogram(name + "_ns")
			s.rxBytes[typ] = s.reg.Counter(name + "_rx_bytes")
			s.txBytes[typ] = s.reg.Counter(name + "_tx_bytes")
		}
	}
	s.queueNanos = s.reg.Histogram("mserve_queue_delay_ns")
	s.coalesceBatches = s.reg.Counter("mserve_coalesce_batches")
	s.coalesceRows = s.reg.Counter("mserve_coalesce_rows")
	s.coalesceHist = s.reg.Histogram("mserve_coalesce_batch")
	if cfg.CoalesceWindow > 0 {
		s.coal = newCoalescer(cfg.CoalesceWindow, cfg.CoalesceMax, cfg.CoalesceShards)
	}
	s.inferences = s.reg.Counter("mserve_inferences")
	s.rows = s.reg.Counter("mserve_rows")
	s.errorsSent = s.reg.Counter("mserve_errors")
	s.accepted = s.reg.Counter("mserve_accepted")
	s.acceptErrors = s.reg.Counter("mserve_accept_errors")
	s.connRejects = s.reg.Counter("mserve_conn_rejects")
	s.arenaRejects = s.reg.Counter("mserve_arena_rejects")
	// The time-series recorder watches the serving registry. The
	// readahead_* names belong to a co-located tuner (kml-served -sim)
	// instrumenting into MetricsRegistry(); resolving them here merely
	// pre-creates the series the tuner will feed — creation-on-first-use
	// makes the order irrelevant.
	rec, err := tsrec.New(s.reg, tsrec.Config{
		Interval: cfg.TimeSeriesInterval,
		Capacity: cfg.TimeSeriesCapacity,
		Counters: []string{
			"mserve_rows", "mserve_inferences", "mserve_errors",
			"mserve_accepted", "mserve_accept_errors", "readahead_decisions",
		},
		Hists: []string{
			"mserve_infer_ns", "mserve_batch_infer_ns",
			"mserve_queue_delay_ns", "mserve_coalesce_batch",
			"readahead_infer_ns",
		},
	})
	if err != nil {
		return nil, err
	}
	s.rec = rec
	p, err := core.NewPipeline[Sample](
		core.Config{
			BufferCapacity: cfg.CollectCapacity,
			Arena:          cfg.Arena,
			SampleBytes:    16,
			Metrics:        core.NewPipelineMetrics(s.reg, "mserve_pipeline"),
		},
		func(batch []Sample, _ core.Mode) {
			// The flight recorder is fed here, on the asynchronous
			// collection thread, so the request handlers pay only the
			// ring push they already paid.
			now := uint64(time.Now().UnixNano())
			s.tallyMu.Lock()
			for _, smp := range batch {
				s.tally[smp.Version] += uint64(smp.Rows)
			}
			s.tallyMu.Unlock()
			for _, smp := range batch {
				s.flight.Record(MetricsDecision{
					TimeNanos: now,
					Version:   smp.Version,
					Class:     smp.Class,
					Rows:      uint32(smp.Rows),
				})
			}
		},
	)
	if err != nil {
		return nil, err
	}
	p.RegisterMetrics(s.reg, "mserve_pipeline")
	s.reg.Func("mserve_active_version", func() int64 { return int64(s.dep.Version()) })
	s.reg.Func("mserve_conns", func() int64 { return s.open.Load() })
	p.SetMode(core.ModeTraining)
	if err := p.Start(); err != nil {
		return nil, err
	}
	s.pipeline = p
	s.rec.Start()
	if _, ok := cfg.Registry.Active(); ok {
		a, err := cfg.Registry.ActiveArtifact()
		if err != nil {
			s.rec.Stop()
			p.Stop()
			return nil, err
		}
		s.dep.Swap(a, a.Version.Number)
		s.installDrift(a)
	}
	return s, nil
}

// installDrift rebuilds the drift monitor for a freshly deployed
// artifact. The server has no training-time feature statistics for an
// arbitrary uploaded model, so the monitor self-baselines on its first
// window: drift is then "the traffic no longer looks like it did when
// this version went live", which is the operable signal a serving tier
// can actually compute. Gauges register once under mserve_drift and are
// re-pointed at the new monitor's windows.
func (s *Server) installDrift(a *Artifact) {
	if a.InDim <= 0 || a.OutDim <= 0 {
		s.drift.Store(nil)
		return
	}
	m := dtrace.NewDriftMonitor(dtrace.DriftConfig{
		Features: a.InDim,
		Classes:  a.OutDim,
		Window:   s.cfg.DriftWindow,
	})
	m.RegisterMetrics(s.reg, "mserve_drift")
	s.drift.Store(m)
}

// Deployment returns the server's hot-swap handle, for in-process readers
// that want to follow the served model (e.g. a co-located tuner).
func (s *Server) Deployment() *Deployment[*Artifact] { return s.dep }

// Registry returns the backing model store, for in-process control
// planes (the online-learning controller) that need to materialize
// artifacts of the versions they deploy.
func (s *Server) Registry() *Registry { return s.cfg.Registry }

// Deploy registers and activates a new model version, hot-swapping it
// into the serving path. In-flight requests finish on the old version.
func (s *Server) Deploy(kind ModelKind, name string, model []byte) (Version, error) {
	s.ctlMu.Lock()
	defer s.ctlMu.Unlock()
	v, err := s.cfg.Registry.Put(kind, name, model)
	if err != nil {
		return Version{}, err
	}
	a, err := s.cfg.Registry.Artifact(v.Number)
	if err != nil {
		return Version{}, err
	}
	s.dep.Swap(a, v.Number)
	s.installDrift(a)
	return v, nil
}

// Rollback reverts to the previously active version and swaps it in.
func (s *Server) Rollback() (Version, error) {
	s.ctlMu.Lock()
	defer s.ctlMu.Unlock()
	v, err := s.cfg.Registry.Rollback()
	if err != nil {
		return Version{}, err
	}
	a, err := s.cfg.Registry.Artifact(v.Number)
	if err != nil {
		return Version{}, err
	}
	s.dep.Swap(a, v.Number)
	s.installDrift(a)
	return v, nil
}

// Stats snapshots the server's operational counters, including the
// collection pipeline's drop count — ring backpressure is an operator
// signal, not a debugger-only fact.
func (s *Server) Stats() Stats {
	st := Stats{
		ActiveVersion: s.dep.Version(),
		Deploys:       s.cfg.Registry.Deploys(),
		Rollbacks:     s.cfg.Registry.Rollbacks(),
		Inferences:    s.inferences.Load(),
		Rows:          s.rows.Load(),
		Errors:        s.errorsSent.Load(),
		Conns:         uint64(s.open.Load()),
		MaxConns:      uint64(s.cfg.MaxConns),
		ConnRejects:   s.connRejects.Load(),
		ArenaRejects:  s.arenaRejects.Load(),
		Collected:     s.pipeline.Collected(),
		Processed:     s.pipeline.Processed(),
		Dropped:       s.pipeline.Dropped(),
		BufferLen:     uint64(s.pipeline.BufferLen()),
		BufferCap:     uint64(s.pipeline.BufferCap()),
	}
	if s.coal != nil {
		st.CoalesceWindowNS = uint64(s.coal.window.Nanoseconds())
		st.CoalesceMaxRows = uint64(s.coal.maxRows)
	}
	st.CoalesceBatches = s.coalesceBatches.Load()
	st.CoalesceRows = s.coalesceRows.Load()
	if s.cfg.Arena != nil {
		st.ArenaLive = uint64(s.cfg.Arena.Live())
		st.ArenaPeak = uint64(s.cfg.Arena.Peak())
	}
	return st
}

// MetricsRegistry exposes the server's telemetry registry so an
// embedding process (kml-served) can hang a debug HTTP listener or
// extra instrumentation off the same namespace.
func (s *Server) MetricsRegistry() *telemetry.Registry { return s.reg }

// Metrics snapshots the server's telemetry — every registered metric
// plus the flight recorder's retained decisions — in the form MsgMetrics
// serializes.
func (s *Server) Metrics() MetricsSnapshot {
	samples := s.reg.Snapshot()
	snap := MetricsSnapshot{Metrics: make([]Metric, 0, len(samples))}
	for _, smp := range samples {
		m := Metric{Name: smp.Name, Value: smp.Value}
		switch smp.Kind {
		case telemetry.KindCounter:
			m.Kind = MetricCounter
		case telemetry.KindHistogram:
			m.Kind = MetricHistogram
			m.Hist = smp.Hist
			m.Value = 0
		default: // gauges and func gauges flatten to gauge
			m.Kind = MetricGauge
		}
		snap.Metrics = append(snap.Metrics, m)
	}
	snap.Decisions = s.flight.Snapshot()
	return snap
}

// TraceArena exposes the server's request-trace arena, so an embedding
// process (kml-served) can record co-located tuner decision traces into
// the same pool MsgTraces serves.
func (s *Server) TraceArena() *dtrace.Arena { return s.traces }

// Traces returns the retained request traces, oldest first.
func (s *Server) Traces() []dtrace.Trace { return s.traces.Snapshot() }

// SetLearnSource registers the online-learning controller's snapshot
// function for MsgLearnStatus; nil detaches. Safe to call while serving.
func (s *Server) SetLearnSource(fn func() LearnStatus) {
	if fn == nil {
		s.learnSource.Store(nil)
		return
	}
	s.learnSource.Store(&fn)
}

// LearnStatus snapshots the attached online-learning controller, or the
// zero status (state idle, no history) when none is attached — a server
// without a controller still answers MsgLearnStatus cleanly.
func (s *Server) LearnStatus() LearnStatus {
	if fn := s.learnSource.Load(); fn != nil {
		return (*fn)()
	}
	return LearnStatus{BaselinePM: -1, CanaryPM: -1}
}

// SetBlackboxSource registers the black-box flight recorder's status
// function for MsgBlackbox; nil detaches. The function is called with
// sync=true for BlackboxSync requests and must then flush + fsync the
// box before returning its status. Safe to call while serving.
func (s *Server) SetBlackboxSource(fn func(sync bool) BlackboxStatus) {
	if fn == nil {
		s.blackboxSource.Store(nil)
		return
	}
	s.blackboxSource.Store(&fn)
}

// Blackbox snapshots the attached black-box recorder, or the zero
// (disabled) status when none is attached — a server without a black
// box still answers MsgBlackbox cleanly.
func (s *Server) Blackbox(sync bool) BlackboxStatus {
	if fn := s.blackboxSource.Load(); fn != nil {
		return (*fn)(sync)
	}
	return BlackboxStatus{}
}

// Drift returns the drift report for the currently deployed model, or
// false if nothing is deployed.
func (s *Server) Drift() (dtrace.DriftReport, bool) {
	m := s.drift.Load()
	if m == nil {
		return dtrace.DriftReport{}, false
	}
	return m.Report(), true
}

// ServedByVersion returns rows served per model version, as aggregated by
// the asynchronous collection thread.
func (s *Server) ServedByVersion() map[uint64]uint64 {
	s.tallyMu.Lock()
	defer s.tallyMu.Unlock()
	out := make(map[uint64]uint64, len(s.tally))
	for v, n := range s.tally {
		out[v] = n
	}
	return out
}

// ListenAndServe listens on network ("tcp", "unix") / addr and serves
// until Shutdown.
func (s *Server) ListenAndServe(network, addr string) error {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// acceptBackoff bounds the retry delay after a temporary Accept error
// (EMFILE, ECONNABORTED bursts): start small, double, cap — the accept
// loop must survive fd exhaustion rather than take the whole server
// down, and the counter makes the episode visible in telemetry.
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = 1 * time.Second
)

// Serve accepts connections on ln until the listener is closed (by
// Shutdown). It applies the connection limit and arena admission before
// spawning a handler. Accept errors are counted in mserve_accept_errors;
// temporary ones (in the net.Error sense) back off and retry, permanent
// ones end the loop.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	// A Shutdown that ran before the registration above had no listener
	// to close — without this check Serve would park in Accept forever
	// on a listener nobody will ever close again.
	if s.draining.Load() {
		_ = ln.Close()
		return nil
	}
	delay := time.Duration(0)
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			s.acceptErrors.Add(1)
			var ne net.Error
			if errors.As(err, &ne) && ne.Temporary() { //nolint:staticcheck // Temporary is exactly the transient-accept signal this loop needs
				if delay == 0 {
					delay = acceptBackoffMin
				} else if delay *= 2; delay > acceptBackoffMax {
					delay = acceptBackoffMax
				}
				time.Sleep(delay)
				continue
			}
			return err
		}
		delay = 0
		s.accepted.Add(1)
		if s.draining.Load() {
			_ = c.Close()
			continue
		}
		if s.open.Load() >= int64(s.cfg.MaxConns) {
			s.connRejects.Add(1)
			s.refuse(c, "connection limit reached")
			continue
		}
		if s.cfg.Arena != nil && !s.cfg.Arena.Charge(s.cfg.ConnBytes) {
			s.arenaRejects.Add(1)
			s.refuse(c, "server memory reservation exhausted")
			continue
		}
		s.open.Add(1)
		s.connsMu.Lock()
		s.conns[c] = struct{}{}
		s.connsMu.Unlock()
		s.wg.Add(1)
		go s.handle(c)
	}
}

// refuse answers an unadmitted connection with one error frame and closes
// it, so clients see the reason instead of a bare RST.
func (s *Server) refuse(c net.Conn, msg string) {
	s.errorsSent.Add(1)
	_ = c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	_, _ = c.Write(AppendFrame(nil, MsgError, []byte(msg)))
	_ = c.Close()
}

// Shutdown gracefully drains the server: stop accepting, nudge idle
// connections off their blocking reads, let in-flight requests finish,
// then stop the collection pipeline. Connections still open after the
// timeout are force-closed.
func (s *Server) Shutdown(timeout time.Duration) {
	s.draining.Store(true)
	s.lnMu.Lock()
	if s.ln != nil {
		_ = s.ln.Close()
	}
	s.lnMu.Unlock()
	// Unblock handlers parked in ReadFull waiting for the next request;
	// a handler mid-request keeps its write deadline and finishes.
	s.connsMu.Lock()
	for c := range s.conns {
		_ = c.SetReadDeadline(time.Now())
	}
	s.connsMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		s.connsMu.Lock()
		for c := range s.conns {
			_ = c.Close()
		}
		s.connsMu.Unlock()
		<-done
	}
	s.rec.Stop()
	s.pipeline.Stop()
}

// srvConn is one connection's request-scoped state. Buffers grow to the
// deployed model's shape on the first request and are reused afterwards,
// so the steady-state loop allocates nothing.
type srvConn struct {
	s          *Server
	hdr        [HeaderSize]byte
	payload    []byte
	resp       []byte
	out        []byte
	feats      []float64
	classes    []uint16
	rowClasses []int
	inst       *Instance
	tb         dtrace.Builder // per-connection span builder (alloc-free)
	arrivalNS  int64          // current request's header-read stamp
	dispatchNS int64          // current request's handler-start stamp
	shard      int            // coalescer shard this connection gathers into
	queueDone  bool           // dispatch already observed the queue delay
	cw         coalWaiter     // this connection's coalescer parking spot
}

func (s *Server) handle(c net.Conn) {
	defer func() {
		_ = c.Close()
		s.connsMu.Lock()
		delete(s.conns, c)
		s.connsMu.Unlock()
		s.open.Add(-1)
		if s.cfg.Arena != nil {
			s.cfg.Arena.Release(s.cfg.ConnBytes)
		}
		s.wg.Done()
	}()
	// Per-connection buffers are pooled across connections: a reconnecting
	// client inherits sized buffers (and often a parsed model instance —
	// instance() revalidates the version), so short-lived connections don't
	// pay the warm-up allocations again.
	sc, _ := s.connPool.Get().(*srvConn)
	if sc == nil {
		sc = &srvConn{s: s}
	}
	defer s.connPool.Put(sc)
	if s.coal != nil {
		sc.shard = int(s.connSeq.Add(1) % uint64(len(s.coal.shards)))
	}
	for {
		if s.draining.Load() {
			return
		}
		_ = c.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		if _, err := io.ReadFull(c, sc.hdr[:]); err != nil {
			return // EOF, idle timeout, or drain nudge
		}
		// Arrival is stamped at header read: everything between here and
		// dispatch (payload read, CRC, scheduling — and one day a batch
		// coalescer's gather window) is attributed queueing delay.
		sc.arrivalNS = time.Now().UnixNano()
		h, err := ParseHeader(sc.hdr[:])
		if err != nil {
			return // framing broken: the stream cannot be re-synced
		}
		sc.payload = growBytes(sc.payload, int(h.Length))
		if _, err := io.ReadFull(c, sc.payload); err != nil {
			return
		}
		if err := h.CheckPayload(sc.payload); err != nil {
			return
		}
		start := time.Now()
		sc.dispatchNS = start.UnixNano()
		sc.queueDone = false
		known := int(h.Type) < numMsgTypes && s.reqNanos[h.Type] != nil
		if known {
			s.rxBytes[h.Type].Add(uint64(HeaderSize + len(sc.payload)))
		}
		typ, resp := s.dispatch(sc, h.Type, sc.payload)
		// A coalesced inference observed its own queue delay (arrival →
		// batch start, so the gather wait is attributed); every other
		// request's queueing ends at dispatch.
		if !sc.queueDone {
			s.queueNanos.Observe(sc.dispatchNS - sc.arrivalNS)
		}
		if known {
			s.reqNanos[h.Type].Observe(time.Since(start).Nanoseconds())
		}
		sc.out = sc.out[:0]
		sc.out = AppendFrame(sc.out, typ, resp)
		if known {
			s.txBytes[h.Type].Add(uint64(len(sc.out)))
		}
		_ = c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if _, err := c.Write(sc.out); err != nil {
			return
		}
	}
}

// dispatch handles one request and returns the response (type, payload).
// The returned payload aliases sc.resp.
func (s *Server) dispatch(sc *srvConn, typ MsgType, p []byte) (MsgType, []byte) {
	switch typ {
	case MsgInfer:
		return s.doInfer(sc, p)
	case MsgBatchInfer:
		return s.doBatchInfer(sc, p)
	case MsgDeploy:
		kind, name, model, err := ParseDeployReq(p)
		if err != nil {
			return s.errorResp(sc, "bad deploy payload")
		}
		v, err := s.Deploy(kind, name, model)
		if err != nil {
			return s.errorResp(sc, fmt.Sprintf("deploy: %v", err))
		}
		sc.resp = AppendVersionResp(sc.resp[:0], v.Number)
		return MsgDeploy, sc.resp
	case MsgRollback:
		v, err := s.Rollback()
		if err != nil {
			return s.errorResp(sc, fmt.Sprintf("rollback: %v", err))
		}
		sc.resp = AppendVersionResp(sc.resp[:0], v.Number)
		return MsgRollback, sc.resp
	case MsgStats:
		sc.resp = AppendStats(sc.resp[:0], s.Stats())
		return MsgStats, sc.resp
	case MsgMetrics:
		sc.resp = AppendMetrics(sc.resp[:0], s.Metrics())
		return MsgMetrics, sc.resp
	case MsgTraces:
		sc.resp = dtrace.AppendTraces(sc.resp[:0], s.Traces())
		return MsgTraces, sc.resp
	case MsgLearnStatus:
		sc.resp = AppendLearnStatus(sc.resp[:0], s.LearnStatus())
		return MsgLearnStatus, sc.resp
	case MsgTimeSeries:
		sc.resp = tsrec.AppendSeries(sc.resp[:0], s.TimeSeries())
		return MsgTimeSeries, sc.resp
	case MsgBlackbox:
		op, err := ParseBlackboxReq(p)
		if err != nil {
			return s.errorResp(sc, "bad blackbox payload")
		}
		sc.resp = AppendBlackboxStatus(sc.resp[:0], s.Blackbox(op == BlackboxSync))
		return MsgBlackbox, sc.resp
	case MsgHealth:
		snap := s.dep.Load()
		if snap == nil {
			sc.resp = AppendHealthResp(sc.resp[:0], false, 0, 0)
			return MsgHealth, sc.resp
		}
		ok := !s.draining.Load()
		sc.resp = AppendHealthResp(sc.resp[:0], ok, snap.Version, snap.Model.InDim)
		return MsgHealth, sc.resp
	default:
		return s.errorResp(sc, fmt.Sprintf("unknown message type %d", typ))
	}
}

// startRequestTrace opens the per-request trace: the root span starts at
// the request's ARRIVAL (header read), and a queue span covers
// arrival→dispatch so the trace itself shows what the
// mserve_queue_delay_ns histogram aggregates. When the request payload
// carries a client-stamped TraceID (PeekTraceID ≠ 0), the server records
// its spans under that ID — the cross-process join kml-trace renders;
// otherwise a local ID is minted. Alloc-free, like the rest of the
// request path.
func (sc *srvConn) startRequestTrace(s *Server, p []byte) {
	id := dtrace.TraceID(PeekTraceID(p))
	if id == 0 {
		id = s.traces.NextID()
	}
	sc.tb.Start(id, sc.arrivalNS)
	qs := sc.tb.Begin(dtrace.StageQueue, 0, sc.arrivalNS)
	sc.tb.End(qs, sc.dispatchNS)
	sc.tb.SetValue(qs, sc.dispatchNS-sc.arrivalNS)
}

// TimeSeries snapshots the server's captured metric time series — the
// throughput/latency/queue record MsgTimeSeries serves and kml-top
// renders.
func (s *Server) TimeSeries() tsrec.Series { return s.rec.Series() }

// TimeSeriesRecorder exposes the recorder so an embedding process can
// tick it manually in tests or force a capture before shutdown.
func (s *Server) TimeSeriesRecorder() *tsrec.Recorder { return s.rec }

// instance returns sc's private model instance for the current snapshot,
// re-instantiating only when the deployed version changed — the cold half
// of a hot swap, paid once per connection per deploy.
func (sc *srvConn) instance(snap *Snapshot[*Artifact]) (*Instance, error) {
	if sc.inst == nil || sc.inst.Version() != snap.Version {
		inst, err := snap.Model.Instantiate()
		if err != nil {
			return nil, err
		}
		sc.inst = inst
	}
	return sc.inst, nil
}

func (s *Server) doInfer(sc *srvConn, p []byte) (MsgType, []byte) {
	snap := s.dep.Load()
	if snap == nil {
		return s.errorResp(sc, "no model deployed")
	}
	if s.coal != nil {
		return s.doInferCoalesced(sc, snap, p)
	}
	inst, err := sc.instance(snap)
	if err != nil {
		return s.errorResp(sc, fmt.Sprintf("instantiate v%d: %v", snap.Version, err))
	}
	if len(sc.feats) < inst.InDim() {
		sc.feats = make([]float64, inst.InDim())
	}
	// Per-request trace: queue → parse → infer → encode under one root
	// span. The builder is per-connection scratch; an error return
	// abandons the half-built trace (the next Start resets it), so only
	// successful requests reach the arena. All of this is alloc-free —
	// the batch alloc gate (TestBatchInferAllocFree) pins that. A caller
	// that stamped its TraceID into the payload owns the trace: the
	// server's spans record under that ID (cross-process join), while
	// untraced requests get a locally minted one.
	sc.startRequestTrace(s, p)
	ps := sc.tb.Begin(dtrace.StageParse, 0, time.Now().UnixNano())
	n, _, err := ParseInferReq(p, sc.feats)
	sc.tb.End(ps, time.Now().UnixNano())
	sc.tb.SetValue(ps, int64(len(p)))
	if err != nil {
		return s.errorResp(sc, "bad infer payload")
	}
	if n != inst.InDim() {
		return s.errorResp(sc, fmt.Sprintf("feature count %d, model wants %d", n, inst.InDim()))
	}
	is := sc.tb.Begin(dtrace.StageInfer, 0, time.Now().UnixNano())
	class := inst.Predict(sc.feats[:n])
	sc.tb.End(is, time.Now().UnixNano())
	sc.tb.SetValue(is, int64(class))
	sc.tb.SetAux(is, int64(inst.Version()))
	if m := s.drift.Load(); m != nil {
		m.Observe(sc.feats[:n], class)
	}
	s.inferences.Add(1)
	s.rows.Add(1)
	s.pipeline.Collect(Sample{Version: inst.Version(), Class: int32(class), Rows: 1})
	es := sc.tb.Begin(dtrace.StageEncode, 0, time.Now().UnixNano())
	sc.resp = AppendInferResp(sc.resp[:0], uint16(class), inst.Version())
	sc.tb.End(es, time.Now().UnixNano())
	sc.tb.SetValue(es, int64(len(sc.resp)))
	sc.tb.SetValue(0, int64(class))
	sc.tb.SetAux(0, 1)
	s.traces.Record(sc.tb.Finish(time.Now().UnixNano()))
	return MsgInfer, sc.resp
}

func (s *Server) doBatchInfer(sc *srvConn, p []byte) (MsgType, []byte) {
	snap := s.dep.Load()
	if snap == nil {
		return s.errorResp(sc, "no model deployed")
	}
	// Coalesce small batches across connections too; a request at or
	// above the gather capacity already amortizes the fused kernel on
	// its own and takes the inline path below.
	if s.coal != nil {
		if typ, resp, ok := s.doBatchInferCoalesced(sc, snap, p); ok {
			return typ, resp
		}
	}
	inst, err := sc.instance(snap)
	if err != nil {
		return s.errorResp(sc, fmt.Sprintf("instantiate v%d: %v", snap.Version, err))
	}
	// Size the decode buffer from the wire header's own claim, bounded by
	// MaxBatchRows×InDim; ParseBatchInferReq re-validates everything.
	if need := batchFloats(p, inst.InDim()); need > len(sc.feats) {
		sc.feats = make([]float64, need)
	}
	sc.startRequestTrace(s, p)
	ps := sc.tb.Begin(dtrace.StageParse, 0, time.Now().UnixNano())
	rows, nfeat, _, err := ParseBatchInferReq(p, sc.feats)
	sc.tb.End(ps, time.Now().UnixNano())
	sc.tb.SetValue(ps, int64(len(p)))
	if err != nil {
		return s.errorResp(sc, "bad batch payload")
	}
	if nfeat != inst.InDim() {
		return s.errorResp(sc, fmt.Sprintf("feature count %d, model wants %d", nfeat, inst.InDim()))
	}
	if len(sc.classes) < rows {
		sc.classes = make([]uint16, rows)
	}
	if len(sc.rowClasses) < rows {
		sc.rowClasses = make([]int, rows)
	}
	is := sc.tb.Begin(dtrace.StageInfer, 0, time.Now().UnixNano())
	inst.PredictBatch(sc.feats[:rows*nfeat], rows, sc.rowClasses)
	sc.tb.End(is, time.Now().UnixNano())
	sc.tb.SetValue(is, -1) // no single class for a batch
	sc.tb.SetAux(is, int64(inst.Version()))
	for i := 0; i < rows; i++ {
		sc.classes[i] = uint16(sc.rowClasses[i])
	}
	if m := s.drift.Load(); m != nil {
		m.ObserveBatch(sc.feats[:rows*nfeat], rows, nfeat, sc.rowClasses[:rows])
	}
	s.inferences.Add(1)
	s.rows.Add(uint64(rows))
	s.pipeline.Collect(Sample{Version: inst.Version(), Class: -1, Rows: int32(rows)})
	es := sc.tb.Begin(dtrace.StageEncode, 0, time.Now().UnixNano())
	sc.resp = AppendBatchInferResp(sc.resp[:0], sc.classes[:rows], inst.Version())
	sc.tb.End(es, time.Now().UnixNano())
	sc.tb.SetValue(es, int64(len(sc.resp)))
	sc.tb.SetValue(0, -1)
	sc.tb.SetAux(0, int64(rows))
	s.traces.Record(sc.tb.Finish(time.Now().UnixNano()))
	return MsgBatchInfer, sc.resp
}

// batchFloats reads the rows×nfeat the batch header claims, clamped to the
// protocol bounds, so a lying header cannot size an allocation beyond
// MaxBatchRows vectors of the deployed model's width.
func batchFloats(p []byte, inDim int) int {
	if len(p) < 14 {
		return 0
	}
	// Rows sit after the u64 trace-id prefix (see AppendBatchInferReq).
	rows := int(uint32(p[8]) | uint32(p[9])<<8 | uint32(p[10])<<16 | uint32(p[11])<<24)
	if rows > MaxBatchRows {
		rows = MaxBatchRows
	}
	return rows * inDim
}

func (s *Server) errorResp(sc *srvConn, msg string) (MsgType, []byte) {
	s.errorsSent.Add(1)
	sc.resp = append(sc.resp[:0], msg...)
	return MsgError, sc.resp
}

func growBytes(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}
