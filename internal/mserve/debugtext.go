// Plain-text renderers for the HTTP debug surface. kml-served mounts
// these as telemetry.DebugEndpoint extras (/traces, /learn) next to
// /metrics, so an operator with curl gets the same decision traces and
// retrain history the wire protocol serves — no client binary needed.
// These are operator pages, not machine formats: one line per item,
// stable field order, nothing the serving path depends on.
package mserve

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteTraces renders the retained request traces (oldest first) as
// plain text: one header line per trace and one indented line per
// child span with its stage, latency, and attributes.
func (s *Server) WriteTraces(w io.Writer) error {
	traces := s.Traces()
	for i := range traces {
		tr := &traces[i]
		root := tr.Root()
		if _, err := fmt.Fprintf(w, "trace %d %s %s stage=%s value=%d aux=%d\n",
			tr.ID, time.Unix(0, root.Start).UTC().Format("15:04:05.000000"),
			time.Duration(root.Duration()), root.Stage, root.Value, root.Aux); err != nil {
			return err
		}
		for si, sp := range tr.Used() {
			if si == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "  %-10s %12s value=%d aux=%d\n",
				sp.Stage, time.Duration(sp.Duration()), sp.Value, sp.Aux); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "%d traces retained\n", len(traces))
	return err
}

// WriteTimeSeries renders the captured metric time series as plain
// text, the same shape `kml-top -raw` prints: the interval, the column
// names, one line per point (time, counter deltas, then per-histogram
// count/p50/p95/p99), and a trailing count. The format doubles as an
// archival dump — kml-top's -from replay parses the binary form, this
// page is for eyes and grep.
func (s *Server) WriteTimeSeries(w io.Writer) error {
	ts := s.TimeSeries()
	if _, err := fmt.Fprintf(w, "interval_ns %d\n", ts.IntervalNanos); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "counters %s\n", strings.Join(ts.Counters, " ")); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "hists %s\n", strings.Join(ts.Hists, " ")); err != nil {
		return err
	}
	for i := range ts.Points {
		p := &ts.Points[i]
		if _, err := fmt.Fprintf(w, "point %d", p.TimeNanos); err != nil {
			return err
		}
		for c := range ts.Counters {
			if _, err := fmt.Fprintf(w, " %d", p.Deltas[c]); err != nil {
				return err
			}
		}
		for h := range ts.Hists {
			if _, err := fmt.Fprintf(w, " %d %d %d %d", p.Counts[h], p.P50[h], p.P95[h], p.P99[h]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%d points\n", len(ts.Points))
	return err
}

// WriteLearn renders the online-learning controller's status and
// retrain history as plain text. A server without a controller renders
// the idle zero status.
func (s *Server) WriteLearn(w io.Writer) error {
	st := s.LearnStatus()
	if _, err := fmt.Fprintf(w,
		"state=%s retrains=%d deploys=%d commits=%d rollbacks=%d fires=%d examples=%d version=%d baseline_pm=%d canary_pm=%d\n",
		LearnStateName(st.State), st.Retrains, st.Deploys, st.Commits, st.Rollbacks,
		st.TriggerFires, st.Examples, st.LastVersion, st.BaselinePM, st.CanaryPM); err != nil {
		return err
	}
	for _, e := range st.Events {
		if _, err := fmt.Fprintf(w,
			"retrain v%d %s outcome=%s examples=%d train=%s baseline_pm=%d canary_pm=%d shift_mz=%d churn_pm=%d\n",
			e.Version, time.Unix(0, int64(e.TimeNanos)).UTC().Format("15:04:05.000"),
			RetrainOutcomeName(e.Outcome), e.Examples,
			time.Duration(e.DurationNanos).Round(time.Millisecond),
			e.BaselinePM, e.CanaryPM, e.MaxShiftMZ, e.ChurnPM); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%d retrain events\n", len(st.Events))
	return err
}
