// Wire framing. Every message on a serving connection is one frame:
//
//	magic   [2]byte  "KM"
//	version uint8    (FrameVersion)
//	type    uint8    message type (protocol.go)
//	length  uint32   payload bytes, little-endian, <= MaxPayload
//	crc     uint32   IEEE CRC32 of the payload, little-endian
//	payload [length]byte
//
// The header is fixed-size so the per-request read loop is two ReadFull
// calls into reused buffers. Length is bounded before any allocation is
// sized by it (the same hostile-header discipline as nn.Load), and the CRC
// rejects corrupt or truncated payloads before they reach a decoder.
package mserve

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Frame constants.
const (
	// FrameVersion is the wire-protocol version carried in every header.
	// A peer speaking a different version is rejected with ErrVersionSkew
	// rather than misparsed. Version 2 added the u64 trace-ID prefix to
	// the MsgInfer/MsgBatchInfer request payloads (cross-process trace
	// propagation) and the MsgTimeSeries message.
	FrameVersion = 2
	// HeaderSize is the fixed frame-header length in bytes.
	HeaderSize = 12
	// MaxPayload bounds one frame's payload. It must admit a Deploy frame
	// carrying a serialized model; KML models are a few KB (the paper's
	// readahead model is 3,916 B), so 1 MiB is generous.
	MaxPayload = 1 << 20
)

// Frame decode errors.
var (
	// ErrShortFrame reports a header or payload shorter than declared.
	ErrShortFrame = errors.New("mserve: short frame")
	// ErrBadMagic reports a frame that does not start with "KM".
	ErrBadMagic = errors.New("mserve: bad frame magic")
	// ErrVersionSkew reports a frame from a peer speaking another protocol
	// version.
	ErrVersionSkew = errors.New("mserve: frame version skew")
	// ErrOversizedFrame reports a declared payload length above MaxPayload.
	ErrOversizedFrame = errors.New("mserve: oversized frame")
	// ErrBadFrameCRC reports a payload failing its header checksum.
	ErrBadFrameCRC = errors.New("mserve: frame checksum mismatch")
)

// Header is a decoded frame header.
type Header struct {
	Version uint8
	Type    MsgType
	Length  uint32
	CRC     uint32
}

// PutHeader writes the header for payload into dst, which must be at least
// HeaderSize bytes. It runs once per request on the serving path, so it
// writes into a caller-owned buffer and does not allocate.
//
//kml:hotpath
func PutHeader(dst []byte, typ MsgType, payload []byte) {
	_ = dst[HeaderSize-1]
	dst[0] = 'K'
	dst[1] = 'M'
	dst[2] = FrameVersion
	dst[3] = byte(typ)
	binary.LittleEndian.PutUint32(dst[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[8:12], crc32.ChecksumIEEE(payload))
}

// ParseHeader decodes and validates a frame header. The returned header's
// Length is guaranteed <= MaxPayload, so sizing a read buffer by it is
// safe.
//
//kml:hotpath
func ParseHeader(b []byte) (Header, error) {
	var h Header
	if len(b) < HeaderSize {
		return h, ErrShortFrame
	}
	if b[0] != 'K' || b[1] != 'M' {
		return h, ErrBadMagic
	}
	h.Version = b[2]
	h.Type = MsgType(b[3])
	h.Length = binary.LittleEndian.Uint32(b[4:8])
	h.CRC = binary.LittleEndian.Uint32(b[8:12])
	if h.Version != FrameVersion {
		return h, ErrVersionSkew
	}
	if h.Length > MaxPayload {
		return h, ErrOversizedFrame
	}
	return h, nil
}

// CheckPayload verifies that payload matches the header's declared length
// and checksum.
//
//kml:hotpath
func (h Header) CheckPayload(payload []byte) error {
	if uint32(len(payload)) != h.Length {
		return ErrShortFrame
	}
	if crc32.ChecksumIEEE(payload) != h.CRC {
		return ErrBadFrameCRC
	}
	return nil
}

// DecodeFrame consumes one complete frame from the front of b, returning
// the message type, the payload (aliasing b), and the unconsumed rest.
// It is the one entry point a byte-stream decoder needs and the surface
// FuzzFrameDecode drives with hostile input: short buffers, truncated
// headers, lying lengths and version skew must all return an error, never
// panic or over-read.
func DecodeFrame(b []byte) (typ MsgType, payload, rest []byte, err error) {
	h, err := ParseHeader(b)
	if err != nil {
		return 0, nil, b, err
	}
	end := HeaderSize + int(h.Length) // Length <= MaxPayload: no overflow
	if len(b) < end {
		return 0, nil, b, ErrShortFrame
	}
	payload = b[HeaderSize:end]
	if err := h.CheckPayload(payload); err != nil {
		return 0, nil, b, err
	}
	return h.Type, payload, b[end:], nil
}

// AppendFrame appends one complete frame to dst and returns the extended
// slice — the cold-path (client, tests) encoder counterpart of DecodeFrame.
func AppendFrame(dst []byte, typ MsgType, payload []byte) []byte {
	var hdr [HeaderSize]byte
	PutHeader(hdr[:], typ, payload)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}
