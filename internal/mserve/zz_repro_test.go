package mserve

import (
	"sync"
	"testing"
	"time"
)

// Drive coalescer.submit directly: a parked leader (2 rows), then two
// 7-row submitters racing. A flusher that re-reads sh.cur after its
// flush without re-validating capacity would gather 7 rows into a batch
// already holding 7, overflowing maxRows=8.
func TestReproSubmitOverflowDirect(t *testing.T) {
	r, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(Config{
		Registry:       r,
		CoalesceWindow: 50 * time.Millisecond,
		CoalesceMax:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Deploy(KindNN, "m", nnModelBytes(t, 42, 4)); err != nil {
		t.Fatal(err)
	}
	const nfeat = 4
	mk := func(rows int) ([]float64, *coalWaiter) {
		w := &coalWaiter{}
		w.ready()
		w.classes = make([]uint16, rows)
		f := make([]float64, rows*nfeat)
		return f, w
	}
	for round := 0; round < 2000; round++ {
		var wg sync.WaitGroup
		// Leader: 2 rows, parks on the 50ms window.
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, w := mk(2)
			s.coal.submit(s, 0, w, f, 2, nfeat)
		}()
		time.Sleep(200 * time.Microsecond)
		// Two 7-row submitters: the first flushes the leader's batch and
		// re-locks; the second may open a fresh 7-row batch in between.
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				f, w := mk(7)
				s.coal.submit(s, 0, w, f, 7, nfeat)
			}()
		}
		wg.Wait()
	}
}
