// Package blockdev simulates the block devices the paper evaluates on — an
// NVMe SSD and a SATA SSD — with a queued-device occupancy model over the
// virtual clock.
//
// # Model
//
// db_bench-style evaluations run many client threads, so the device
// operates with a full command queue and throughput is governed by device
// *occupancy*, not by individual command latency (which concurrency
// hides). Each request therefore charges the device timeline
//
//	CmdOverhead + pages × PageTransfer
//
// where CmdOverhead is the per-command cost that command queueing cannot
// eliminate (~IOPS ceiling) and PageTransfer is the bandwidth term. A
// synchronous (foreground) read advances the caller's virtual clock to the
// command's completion — the closed-loop backpressure of a saturated
// system — while asynchronous readahead only occupies the device, delaying
// later commands. Wasted readahead therefore hurts exactly as on real
// hardware: it consumes IOPS and bandwidth that foreground reads needed.
//
// Per-device readahead settings mirror the `blockdev --setra` ioctl the
// paper's KML application drives.
package blockdev

import (
	"fmt"
	"time"

	"repro/internal/clock"
)

// Size constants shared across the storage stack.
const (
	// SectorSize is the logical block size; readahead values are expressed
	// in sectors, as in `blockdev --setra`.
	SectorSize = 512
	// PageSize is the page-cache page size.
	PageSize = 4096
	// SectorsPerPage converts between the two units.
	SectorsPerPage = PageSize / SectorSize
	// DefaultReadaheadSectors is the Linux default (128 KB).
	DefaultReadaheadSectors = 256
)

// Profile is a device occupancy model.
type Profile struct {
	// Name identifies the device class in experiment output.
	Name string
	// CmdOverhead is the per-command occupancy that queueing cannot hide;
	// its reciprocal bounds small-read IOPS.
	CmdOverhead time.Duration
	// PageTransfer is the time to move one 4 KB page across the device
	// interface (the reciprocal of read bandwidth).
	PageTransfer time.Duration
	// WriteCmdOverhead and WritePageTransfer model the write path.
	WriteCmdOverhead  time.Duration
	WritePageTransfer time.Duration
}

// Bandwidth returns the sustained read bandwidth in bytes/second.
func (p Profile) Bandwidth() float64 {
	return float64(PageSize) / p.PageTransfer.Seconds()
}

// ReadIOPS returns the single-page random-read throughput ceiling.
func (p Profile) ReadIOPS() float64 {
	return 1 / (p.CmdOverhead + p.PageTransfer).Seconds()
}

// NVMe returns the NVMe SSD profile used by the paper's experiments:
// ~2.5 GB/s of bandwidth and a ~280K IOPS ceiling.
func NVMe() Profile {
	return Profile{
		Name:              "NVMe",
		CmdOverhead:       2 * time.Microsecond,
		PageTransfer:      1600 * time.Nanosecond,
		WriteCmdOverhead:  2 * time.Microsecond,
		WritePageTransfer: 2 * time.Microsecond,
	}
}

// SATASSD returns the SATA SSD profile ("SSD" in the paper's tables):
// ~450 MB/s of bandwidth and a ~58K IOPS ceiling. Wasted readahead costs
// ~5.5× more here than on NVMe, which is why the paper's SSD gains exceed
// its NVMe gains.
func SATASSD() Profile {
	return Profile{
		Name:              "SSD",
		CmdOverhead:       8 * time.Microsecond,
		PageTransfer:      9100 * time.Nanosecond,
		WriteCmdOverhead:  8 * time.Microsecond,
		WritePageTransfer: 11 * time.Microsecond,
	}
}

// Stats aggregates device activity.
type Stats struct {
	SyncReads   uint64
	AsyncReads  uint64
	PagesNeeded uint64 // pages the foreground actually waited for
	PagesSpec   uint64 // speculative (readahead) pages
	PagesWrit   uint64
	WaitTime    time.Duration // foreground time spent waiting on the device
	BusyTime    time.Duration // device occupancy
}

// Device is one simulated block device on a virtual clock.
type Device struct {
	prof      Profile
	clk       *clock.Virtual
	busyUntil time.Duration
	raSectors int
	stats     Stats
}

// New returns a device with the Linux-default readahead setting.
func New(prof Profile, clk *clock.Virtual) *Device {
	if clk == nil {
		panic("blockdev: nil clock")
	}
	return &Device{prof: prof, clk: clk, raSectors: DefaultReadaheadSectors}
}

// Profile returns the device's occupancy model.
func (d *Device) Profile() Profile { return d.prof }

// SetReadahead sets the device readahead in sectors (the `blockdev --setra`
// ioctl the KML readahead application issues). Values are clamped to
// [SectorsPerPage, 16384] — at least one page, at most 8 MB.
func (d *Device) SetReadahead(sectors int) {
	if sectors < SectorsPerPage {
		sectors = SectorsPerPage
	}
	if sectors > 16384 {
		sectors = 16384
	}
	d.raSectors = sectors
}

// ReadaheadSectors returns the current device readahead in sectors.
func (d *Device) ReadaheadSectors() int { return d.raSectors }

// ReadaheadPages returns the current device readahead in pages.
func (d *Device) ReadaheadPages() int { return d.raSectors / SectorsPerPage }

// occupy reserves the device for a read of n pages and returns the
// command's completion time.
func (d *Device) occupy(n int) time.Duration {
	start := d.clk.Now()
	if d.busyUntil > start {
		start = d.busyUntil
	}
	done := start + d.prof.CmdOverhead + time.Duration(n)*d.prof.PageTransfer
	d.stats.BusyTime += done - start
	d.busyUntil = done
	return done
}

// SyncRead issues a foreground read: the caller needs fgPages now, and the
// readahead engine decided to fetch windowPages ≥ fgPages in the same
// command. The virtual clock advances to the command's completion (the
// saturated closed-loop backpressure — see the package comment), which is
// also when all fetched pages become valid.
func (d *Device) SyncRead(fgPages, windowPages int) (fgReady, windowReady time.Duration) {
	if fgPages <= 0 || windowPages < fgPages {
		panic(fmt.Sprintf("blockdev: SyncRead(%d, %d)", fgPages, windowPages))
	}
	done := d.occupy(windowPages)
	d.stats.SyncReads++
	d.stats.PagesNeeded += uint64(fgPages)
	d.stats.PagesSpec += uint64(windowPages - fgPages)
	d.stats.WaitTime += done - d.clk.Now()
	d.clk.AdvanceTo(done)
	return done, done
}

// AsyncRead issues a background readahead of windowPages. The caller's
// clock does not advance; the pages become available at the returned time.
func (d *Device) AsyncRead(windowPages int) (ready time.Duration) {
	if windowPages <= 0 {
		panic(fmt.Sprintf("blockdev: AsyncRead(%d)", windowPages))
	}
	ready = d.occupy(windowPages)
	d.stats.AsyncReads++
	d.stats.PagesSpec += uint64(windowPages)
	return ready
}

// Wait blocks the caller until t (used when a previously issued async page
// has not arrived yet).
func (d *Device) Wait(t time.Duration) {
	if t > d.clk.Now() {
		d.stats.WaitTime += t - d.clk.Now()
		d.clk.AdvanceTo(t)
	}
}

// WriteAsync queues a writeback of n pages; it occupies the device but does
// not block the caller (buffered writeback).
func (d *Device) WriteAsync(n int) (done time.Duration) {
	if n <= 0 {
		panic(fmt.Sprintf("blockdev: WriteAsync(%d)", n))
	}
	start := d.clk.Now()
	if d.busyUntil > start {
		start = d.busyUntil
	}
	done = start + d.prof.WriteCmdOverhead + time.Duration(n)*d.prof.WritePageTransfer
	d.stats.PagesWrit += uint64(n)
	d.stats.BusyTime += done - start
	d.busyUntil = done
	return done
}

// WriteSync writes n pages and blocks until durable (fsync path).
func (d *Device) WriteSync(n int) {
	done := d.WriteAsync(n)
	d.Wait(done)
}

// Stats returns a copy of the accumulated statistics.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats clears the statistics (readahead setting is preserved).
func (d *Device) ResetStats() { d.stats = Stats{} }

// BusyUntil returns the device's queue-drain time.
func (d *Device) BusyUntil() time.Duration { return d.busyUntil }
