package blockdev

import (
	"testing"
	"time"

	"repro/internal/clock"
)

func TestSyncReadAdvancesClock(t *testing.T) {
	clk := clock.New()
	d := New(NVMe(), clk)
	fgReady, winReady := d.SyncRead(2, 6)
	want := d.Profile().CmdOverhead + 6*d.Profile().PageTransfer
	if fgReady != want || winReady != want || clk.Now() != want {
		t.Errorf("fg %v win %v clock %v, want %v", fgReady, winReady, clk.Now(), want)
	}
	s := d.Stats()
	if s.SyncReads != 1 || s.PagesNeeded != 2 || s.PagesSpec != 4 {
		t.Errorf("stats %+v", s)
	}
}

func TestWasteDelaysNextRequest(t *testing.T) {
	clk := clock.New()
	d := New(SATASSD(), clk)
	prof := d.Profile()
	// A wasteful window costs its full occupancy before the next command.
	d.SyncRead(1, 32)
	t1 := clk.Now()
	want1 := prof.CmdOverhead + 32*prof.PageTransfer
	if t1 != want1 {
		t.Fatalf("first read done at %v, want %v", t1, want1)
	}
	d.SyncRead(1, 1)
	want2 := want1 + prof.CmdOverhead + prof.PageTransfer
	if clk.Now() != want2 {
		t.Errorf("second read done at %v, want %v", clk.Now(), want2)
	}
}

func TestAsyncReadDoesNotBlock(t *testing.T) {
	clk := clock.New()
	d := New(NVMe(), clk)
	ready := d.AsyncRead(16)
	if clk.Now() != 0 {
		t.Error("async read must not advance the caller's clock")
	}
	want := d.Profile().CmdOverhead + 16*d.Profile().PageTransfer
	if ready != want {
		t.Errorf("ready %v, want %v", ready, want)
	}
	if d.Stats().AsyncReads != 1 || d.Stats().PagesSpec != 16 {
		t.Errorf("stats %+v", d.Stats())
	}
}

func TestAsyncBackpressuresSync(t *testing.T) {
	clk := clock.New()
	d := New(SATASSD(), clk)
	ready := d.AsyncRead(64) // big background window
	fg, _ := d.SyncRead(1, 1)
	want := ready + d.Profile().CmdOverhead + d.Profile().PageTransfer
	if fg != want {
		t.Errorf("sync read behind async queue: %v, want %v", fg, want)
	}
}

func TestWait(t *testing.T) {
	clk := clock.New()
	d := New(NVMe(), clk)
	ready := d.AsyncRead(8)
	d.Wait(ready)
	if clk.Now() != ready {
		t.Errorf("clock %v, want %v", clk.Now(), ready)
	}
	// Waiting for the past is a no-op.
	d.Wait(ready - time.Microsecond)
	if clk.Now() != ready {
		t.Error("waiting for past must not move clock")
	}
}

func TestIdleDeviceStartsNow(t *testing.T) {
	clk := clock.New()
	d := New(NVMe(), clk)
	d.SyncRead(1, 1)
	// Let the caller do a lot of CPU work; device goes idle.
	clk.Advance(time.Second)
	start := clk.Now()
	fg, _ := d.SyncRead(1, 1)
	want := start + d.Profile().CmdOverhead + d.Profile().PageTransfer
	if fg != want {
		t.Errorf("idle restart: %v, want %v", fg, want)
	}
}

func TestWrites(t *testing.T) {
	clk := clock.New()
	d := New(SATASSD(), clk)
	done := d.WriteAsync(4)
	if clk.Now() != 0 {
		t.Error("async write must not block")
	}
	want := d.Profile().WriteCmdOverhead + 4*d.Profile().WritePageTransfer
	if done != want {
		t.Errorf("write done %v, want %v", done, want)
	}
	d.WriteSync(2)
	if clk.Now() <= want {
		t.Error("sync write must block until durable")
	}
	if d.Stats().PagesWrit != 6 {
		t.Errorf("pages written %d", d.Stats().PagesWrit)
	}
}

func TestSetReadaheadClamps(t *testing.T) {
	d := New(NVMe(), clock.New())
	if d.ReadaheadSectors() != DefaultReadaheadSectors {
		t.Error("default readahead")
	}
	d.SetReadahead(4) // below one page
	if d.ReadaheadSectors() != SectorsPerPage {
		t.Errorf("clamped low: %d", d.ReadaheadSectors())
	}
	d.SetReadahead(1 << 20)
	if d.ReadaheadSectors() != 16384 {
		t.Errorf("clamped high: %d", d.ReadaheadSectors())
	}
	d.SetReadahead(512)
	if d.ReadaheadPages() != 64 {
		t.Errorf("pages = %d", d.ReadaheadPages())
	}
}

func TestProfiles(t *testing.T) {
	nvme, ssd := NVMe(), SATASSD()
	if nvme.Bandwidth() <= ssd.Bandwidth() {
		t.Error("NVMe must be faster than SATA")
	}
	if nvme.ReadIOPS() <= ssd.ReadIOPS() {
		t.Error("NVMe must sustain more IOPS")
	}
	if ssd.ReadIOPS() < 40_000 || ssd.ReadIOPS() > 100_000 {
		t.Errorf("SATA IOPS ceiling %f implausible", ssd.ReadIOPS())
	}
}

func TestInvalidArgsPanic(t *testing.T) {
	d := New(NVMe(), clock.New())
	for _, f := range []func(){
		func() { d.SyncRead(0, 1) },
		func() { d.SyncRead(2, 1) },
		func() { d.AsyncRead(0) },
		func() { d.WriteAsync(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid args must panic")
				}
			}()
			f()
		}()
	}
}

func TestResetStats(t *testing.T) {
	d := New(NVMe(), clock.New())
	d.SetReadahead(512)
	d.SyncRead(1, 2)
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Error("stats must clear")
	}
	if d.ReadaheadSectors() != 512 {
		t.Error("readahead must survive stat reset")
	}
}

func TestBusyTimeAccounting(t *testing.T) {
	clk := clock.New()
	d := New(NVMe(), clk)
	d.SyncRead(1, 4)
	want := d.Profile().CmdOverhead + 4*d.Profile().PageTransfer
	if d.Stats().BusyTime != want {
		t.Errorf("busy %v, want %v", d.Stats().BusyTime, want)
	}
	if d.BusyUntil() != want {
		t.Errorf("busyUntil %v", d.BusyUntil())
	}
}
