package kvstore

import (
	"errors"
	"fmt"

	"repro/internal/sstable"
	"repro/internal/vfs"
)

// Options configures a DB.
type Options struct {
	// MemtableBytes triggers a flush when the memtable grows past it;
	// 0 means 4 MB.
	MemtableBytes int
	// CompactionRuns triggers a full compaction when the number of sorted
	// runs reaches it; 0 means 4.
	CompactionRuns int
	// BlockSize is the SSTable data-block size; 0 uses the sstable default.
	BlockSize int
	// WALSync fsyncs the log on every write (db_bench leaves this off).
	WALSync bool
	// Seed makes memtable skiplist heights deterministic.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.MemtableBytes == 0 {
		o.MemtableBytes = 4 << 20
	}
	if o.CompactionRuns == 0 {
		o.CompactionRuns = 4
	}
	return o
}

// Table-value tags: SSTables store either a live value or a tombstone.
const (
	tagValue     byte = 0
	tagTombstone byte = 1
)

// DB is the LSM store.
type DB struct {
	fs   *vfs.FS
	opts Options

	mem    *memtable
	wal    *wal
	tables []*sstable.Table // newest first
	seq    int

	stats DBStats
}

// DBStats counts store activity.
type DBStats struct {
	Puts        uint64
	Gets        uint64
	Deletes     uint64
	Flushes     uint64
	Compactions uint64
}

// Open creates or reopens a DB in fs. An existing WAL is replayed into the
// memtable; existing tables are reattached in recency order.
func Open(fs *vfs.FS, opts Options) (*DB, error) {
	opts = opts.withDefaults()
	db := &DB{fs: fs, opts: opts, mem: newMemtable(opts.Seed)}
	// Reattach tables: names are kml-<seq>.sst; recency = sequence number.
	maxSeq := 0
	var tableNames []string
	for _, name := range fs.Names() {
		var seq int
		if n, _ := fmt.Sscanf(name, "kml-%06d.sst", &seq); n == 1 {
			tableNames = append(tableNames, name)
			if seq > maxSeq {
				maxSeq = seq
			}
		}
	}
	db.seq = maxSeq
	// Sort newest (highest seq) first.
	for s := maxSeq; s >= 1; s-- {
		name := fmt.Sprintf("kml-%06d.sst", s)
		found := false
		for _, tn := range tableNames {
			if tn == name {
				found = true
				break
			}
		}
		if !found {
			continue
		}
		f, err := fs.Open(name)
		if err != nil {
			return nil, err
		}
		t, err := sstable.Open(f)
		if err != nil {
			return nil, fmt.Errorf("kvstore: reopen %s: %w", name, err)
		}
		db.tables = append(db.tables, t)
	}
	// WAL: replay if present, else create.
	walFile, err := fs.Open("kml.wal")
	if errors.Is(err, vfs.ErrNotExist) {
		walFile, err = fs.Create("kml.wal")
	}
	if err != nil {
		return nil, err
	}
	records, err := replayWAL(walFile)
	if err != nil {
		return nil, err
	}
	for _, r := range records {
		db.mem.put(r.key, r.value, r.kind == walDelete)
	}
	db.wal = newWAL(walFile, opts.WALSync)
	return db, nil
}

// Put stores value under key.
func (db *DB) Put(key, value []byte) error {
	if len(key) == 0 {
		return errors.New("kvstore: empty key")
	}
	db.stats.Puts++
	if err := db.wal.append(walPut, key, value); err != nil {
		return err
	}
	db.mem.put(key, value, false)
	return db.maybeFlush()
}

// Delete removes key (writes a tombstone).
func (db *DB) Delete(key []byte) error {
	if len(key) == 0 {
		return errors.New("kvstore: empty key")
	}
	db.stats.Deletes++
	if err := db.wal.append(walDelete, key, nil); err != nil {
		return err
	}
	db.mem.put(key, nil, true)
	return db.maybeFlush()
}

// Get returns the newest value stored under key.
func (db *DB) Get(key []byte) (value []byte, ok bool, err error) {
	db.stats.Gets++
	if v, tomb, found := db.mem.get(key); found {
		if tomb {
			return nil, false, nil
		}
		return v, true, nil
	}
	for _, t := range db.tables {
		raw, found, err := t.Get(key)
		if err != nil {
			return nil, false, err
		}
		if !found {
			continue
		}
		if len(raw) == 0 {
			return nil, false, fmt.Errorf("kvstore: empty table record for %q", key)
		}
		if raw[0] == tagTombstone {
			return nil, false, nil
		}
		return raw[1:], true, nil
	}
	return nil, false, nil
}

func (db *DB) maybeFlush() error {
	if db.mem.sizeBytes() < db.opts.MemtableBytes {
		return nil
	}
	return db.Flush()
}

// Flush writes the memtable to a new SSTable and resets the WAL. A flush
// that pushes the run count to the compaction threshold triggers a full
// compaction.
func (db *DB) Flush() error {
	if db.mem.len() == 0 {
		return nil
	}
	db.stats.Flushes++
	db.seq++
	name := fmt.Sprintf("kml-%06d.sst", db.seq)
	f, err := db.fs.Create(name)
	if err != nil {
		return err
	}
	b := sstable.NewBuilder(f, db.opts.BlockSize)
	for _, e := range db.mem.entries() {
		rec := make([]byte, 1+len(e.value))
		if e.tombstone {
			rec[0] = tagTombstone
		}
		copy(rec[1:], e.value)
		if err := b.Add(e.key, rec); err != nil {
			return err
		}
	}
	if err := b.Finish(); err != nil {
		return err
	}
	t, err := sstable.Open(f)
	if err != nil {
		return err
	}
	db.tables = append([]*sstable.Table{t}, db.tables...)
	// Reset the memtable and WAL (mutations are durable in the table now).
	db.mem = newMemtable(db.opts.Seed + int64(db.seq))
	if err := db.resetWAL(); err != nil {
		return err
	}
	if len(db.tables) >= db.opts.CompactionRuns {
		return db.compactPair()
	}
	return nil
}

// compactPair merges the adjacent pair of runs with the smallest combined
// entry count — incremental, RocksDB-like compaction that keeps write
// amplification bounded instead of rewriting the whole store. Adjacency in
// the recency list preserves shadowing; tombstones are dropped only when
// the pair includes the oldest run (nothing older could be resurrected).
func (db *DB) compactPair() error {
	if len(db.tables) < 2 {
		return nil
	}
	best := 0
	bestSize := ^uint64(0)
	for i := 0; i+1 < len(db.tables); i++ {
		size := db.tables[i].Entries() + db.tables[i+1].Entries()
		if size < bestSize {
			best, bestSize = i, size
		}
	}
	pair := db.tables[best : best+2]
	includesOldest := best+2 == len(db.tables)
	db.stats.Compactions++
	it := newMergeIterator(nil, pair, forward)
	it.SeekToFirst()
	db.seq++
	name := fmt.Sprintf("kml-%06d.sst", db.seq)
	f, err := db.fs.Create(name)
	if err != nil {
		return err
	}
	b := sstable.NewBuilder(f, db.opts.BlockSize)
	for it.valid() {
		if !(it.tombstone() && includesOldest) {
			rec := make([]byte, 1+len(it.value()))
			if it.tombstone() {
				rec[0] = tagTombstone
			}
			copy(rec[1:], it.value())
			if err := b.Add(it.key(), rec); err != nil {
				return err
			}
		}
		it.next()
	}
	if err := it.err(); err != nil {
		return err
	}
	var merged []*sstable.Table
	if b.Entries() > 0 {
		if err := b.Finish(); err != nil {
			return err
		}
		t, err := sstable.Open(f)
		if err != nil {
			return err
		}
		merged = []*sstable.Table{t}
	} else {
		if err := db.fs.Remove(name); err != nil {
			return err
		}
	}
	for _, t := range pair {
		if err := db.fs.Remove(t.File().Name()); err != nil {
			return err
		}
	}
	rest := make([]*sstable.Table, 0, len(db.tables)-2+len(merged))
	rest = append(rest, db.tables[:best]...)
	rest = append(rest, merged...)
	rest = append(rest, db.tables[best+2:]...)
	db.tables = rest
	return nil
}

func (db *DB) resetWAL() error {
	walFile, err := db.fs.Open("kml.wal")
	if err != nil {
		return err
	}
	if err := walFile.Truncate(0); err != nil {
		return err
	}
	db.wal = newWAL(walFile, db.opts.WALSync)
	return nil
}

// Compact merges every table into one, dropping shadowed values and
// tombstones (full compaction: nothing older survives to resurrect them).
func (db *DB) Compact() error {
	if len(db.tables) <= 1 {
		return nil
	}
	db.stats.Compactions++
	it := newMergeIterator(nil, db.tables, forward)
	it.SeekToFirst()
	db.seq++
	name := fmt.Sprintf("kml-%06d.sst", db.seq)
	f, err := db.fs.Create(name)
	if err != nil {
		return err
	}
	b := sstable.NewBuilder(f, db.opts.BlockSize)
	for it.valid() {
		if !it.tombstone() {
			rec := make([]byte, 1+len(it.value()))
			copy(rec[1:], it.value())
			if err := b.Add(it.key(), rec); err != nil {
				return err
			}
		}
		it.next()
	}
	if err := it.err(); err != nil {
		return err
	}
	if b.Entries() == 0 {
		// Everything was deleted; remove the empty output and all inputs.
		db.fs.Remove(name)
		return db.dropTables(nil)
	}
	if err := b.Finish(); err != nil {
		return err
	}
	t, err := sstable.Open(f)
	if err != nil {
		return err
	}
	return db.dropTables([]*sstable.Table{t})
}

func (db *DB) dropTables(replacement []*sstable.Table) error {
	for _, t := range db.tables {
		if err := db.fs.Remove(t.File().Name()); err != nil {
			return err
		}
	}
	db.tables = replacement
	return nil
}

// Tables returns the current number of sorted runs.
func (db *DB) Tables() int { return len(db.tables) }

// MemtableBytes returns the current memtable size.
func (db *DB) MemtableBytes() int { return db.mem.sizeBytes() }

// Stats returns a copy of the store's counters.
func (db *DB) Stats() DBStats { return db.stats }

// FS returns the underlying filesystem (experiment plumbing).
func (db *DB) FS() *vfs.FS { return db.fs }

// TableFiles returns the files backing the current runs, newest first —
// the handles the KML readahead application tunes per-file ra_pages on.
func (db *DB) TableFiles() []*vfs.File {
	out := make([]*vfs.File, len(db.tables))
	for i, t := range db.tables {
		out[i] = t.File()
	}
	return out
}
