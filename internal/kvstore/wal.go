// Write-ahead log. Durability code must never drop an error — a lost
// append or sync failure silently breaks crash recovery — so this file is
// under the unchecked-error analyzer.
//
//kml:checkerrors
package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/vfs"
)

// Write-ahead-log record kinds.
const (
	walPut    byte = 1
	walDelete byte = 2
)

// ErrBadWAL reports a corrupt write-ahead log.
var ErrBadWAL = errors.New("kvstore: bad WAL record")

// wal appends durable mutation records ahead of the memtable. Record
// layout: kind, uvarint keyLen, key, uvarint valLen, val.
type wal struct {
	f    *vfs.File
	sync bool // fsync every append (db_bench default is off)
	buf  []byte
}

func newWAL(f *vfs.File, sync bool) *wal {
	return &wal{f: f, sync: sync}
}

// append logs one mutation.
func (w *wal) append(kind byte, key, value []byte) error {
	w.buf = w.buf[:0]
	w.buf = append(w.buf, kind)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(key)))
	w.buf = append(w.buf, tmp[:n]...)
	w.buf = append(w.buf, key...)
	n = binary.PutUvarint(tmp[:], uint64(len(value)))
	w.buf = append(w.buf, tmp[:n]...)
	w.buf = append(w.buf, value...)
	if _, err := w.f.Append(w.buf); err != nil {
		return err
	}
	if w.sync {
		w.f.Sync()
	}
	return nil
}

// walRecord is one replayed mutation.
type walRecord struct {
	kind       byte
	key, value []byte
}

// replayWAL decodes every record in f, for recovery after reopening a DB.
func replayWAL(f *vfs.File) ([]walRecord, error) {
	data := make([]byte, f.Size())
	if f.Size() > 0 {
		if _, err := f.ReadAt(data, 0); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadWAL, err)
		}
	}
	var out []walRecord
	for len(data) > 0 {
		kind := data[0]
		if kind != walPut && kind != walDelete {
			return nil, fmt.Errorf("%w: kind %d", ErrBadWAL, kind)
		}
		data = data[1:]
		// Compare lengths in uint64: converting a hostile varint to int
		// first can wrap negative and slip past the bound (then panic at
		// the slice below).
		klen, n := binary.Uvarint(data)
		if n <= 0 || klen > uint64(len(data)-n) {
			return nil, fmt.Errorf("%w: key length", ErrBadWAL)
		}
		data = data[n:]
		key := append([]byte(nil), data[:klen]...)
		data = data[klen:]
		vlen, n := binary.Uvarint(data)
		if n <= 0 || vlen > uint64(len(data)-n) {
			return nil, fmt.Errorf("%w: value length", ErrBadWAL)
		}
		data = data[n:]
		value := append([]byte(nil), data[:vlen]...)
		data = data[vlen:]
		out = append(out, walRecord{kind: kind, key: key, value: value})
	}
	return out, nil
}
