// Package kvstore implements the LSM-tree key-value store standing in for
// RocksDB in the paper's evaluation (§4 tests RocksDB under db_bench
// workloads). It has the structures that shape RocksDB's I/O: a skiplist
// memtable, a write-ahead log, immutable sorted tables (internal/sstable)
// read through the simulated page cache, background flush on memtable
// fill, and full compaction when the run count grows. Point lookups probe
// newest-to-oldest with bloom filters; iterators merge all runs and
// support forward and reverse scans — producing the readseq / readrandom /
// readreverse / mixed page-cache access patterns the KML readahead
// classifier learns to recognize.
package kvstore

import (
	"bytes"
	"math/rand"
)

const maxHeight = 12

type mnode struct {
	key       []byte
	value     []byte
	tombstone bool
	next      [maxHeight]*mnode
}

// memtable is a skiplist keyed by byte slices, storing the newest write per
// key (a tombstone for deletes).
type memtable struct {
	head   *mnode
	rng    *rand.Rand
	height int
	bytes  int
	count  int
}

func newMemtable(seed int64) *memtable {
	return &memtable{
		head:   &mnode{},
		rng:    rand.New(rand.NewSource(seed)),
		height: 1,
	}
}

func (m *memtable) randomHeight() int {
	h := 1
	for h < maxHeight && m.rng.Intn(4) == 0 {
		h++
	}
	return h
}

// findGreaterOrEqual returns the first node with key ≥ key and fills prev
// with the rightmost node before it on every level.
func (m *memtable) findGreaterOrEqual(key []byte, prev *[maxHeight]*mnode) *mnode {
	x := m.head
	for level := m.height - 1; level >= 0; level-- {
		for x.next[level] != nil && bytes.Compare(x.next[level].key, key) < 0 {
			x = x.next[level]
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

// put inserts or updates key. tombstone true records a delete.
func (m *memtable) put(key, value []byte, tombstone bool) {
	var prev [maxHeight]*mnode
	x := m.findGreaterOrEqual(key, &prev)
	if x != nil && bytes.Equal(x.key, key) {
		m.bytes += len(value) - len(x.value)
		x.value = append([]byte(nil), value...)
		x.tombstone = tombstone
		return
	}
	h := m.randomHeight()
	for level := m.height; level < h; level++ {
		prev[level] = m.head
	}
	if h > m.height {
		m.height = h
	}
	nd := &mnode{
		key:       append([]byte(nil), key...),
		value:     append([]byte(nil), value...),
		tombstone: tombstone,
	}
	for level := 0; level < h; level++ {
		nd.next[level] = prev[level].next[level]
		prev[level].next[level] = nd
	}
	m.bytes += len(key) + len(value) + 32 // rough node overhead
	m.count++
}

// get returns the stored value; tombstone true means the key is deleted.
func (m *memtable) get(key []byte) (value []byte, tombstone, ok bool) {
	x := m.findGreaterOrEqual(key, nil)
	if x != nil && bytes.Equal(x.key, key) {
		return x.value, x.tombstone, true
	}
	return nil, false, false
}

// entries returns a snapshot of all entries in key order.
func (m *memtable) entries() []mentry {
	out := make([]mentry, 0, m.count)
	for x := m.head.next[0]; x != nil; x = x.next[0] {
		out = append(out, mentry{key: x.key, value: x.value, tombstone: x.tombstone})
	}
	return out
}

type mentry struct {
	key, value []byte
	tombstone  bool
}

// sizeBytes returns the approximate resident size of the memtable.
func (m *memtable) sizeBytes() int { return m.bytes }

// len returns the number of distinct keys.
func (m *memtable) len() int { return m.count }
