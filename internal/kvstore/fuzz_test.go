package kvstore

import (
	"bytes"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the WAL decoder through a real
// vfs file. replayWAL must never panic — hostile varint lengths and
// truncated records return ErrBadWAL — and anything it does accept must
// re-encode, via wal.append, to the exact input bytes.
func FuzzWALReplay(f *testing.F) {
	// A valid two-record log as a seed.
	{
		fs := newFS()
		wf, _ := fs.Create("seed")
		w := newWAL(wf, false)
		w.append(walPut, []byte("key"), []byte("value"))
		w.append(walDelete, []byte("gone"), nil)
		data := make([]byte, wf.Size())
		wf.ReadAt(data, 0)
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{walPut})
	// Hostile varint: key length 2^63, which wraps negative as an int.
	f.Add([]byte{walPut, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01})
	// Truncated value after a valid key.
	f.Add([]byte{walPut, 3, 'a', 'b', 'c', 10, 'x'})
	f.Fuzz(func(t *testing.T, data []byte) {
		fs := newFS()
		wf, err := fs.Create("wal")
		if err != nil {
			t.Fatal(err)
		}
		if len(data) > 0 {
			if _, err := wf.WriteAt(data, 0); err != nil {
				t.Fatal(err)
			}
		}
		recs, err := replayWAL(wf)
		if err != nil {
			return
		}
		// Accepted logs must round-trip: re-appending every record yields
		// the original bytes (the encoding is canonical except varint
		// padding, so compare via a second replay instead when the
		// re-encoding differs in length).
		wf2, err := fs.Create("wal2")
		if err != nil {
			t.Fatal(err)
		}
		w := newWAL(wf2, false)
		for _, r := range recs {
			if err := w.append(r.kind, r.key, r.value); err != nil {
				t.Fatal(err)
			}
		}
		recs2, err := replayWAL(wf2)
		if err != nil {
			t.Fatalf("re-encoded WAL does not replay: %v", err)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("round-trip record count %d, want %d", len(recs2), len(recs))
		}
		for i := range recs {
			if recs2[i].kind != recs[i].kind ||
				!bytes.Equal(recs2[i].key, recs[i].key) ||
				!bytes.Equal(recs2[i].value, recs[i].value) {
				t.Fatalf("record %d does not round-trip", i)
			}
		}
	})
}
