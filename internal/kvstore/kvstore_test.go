package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/clock"
	"repro/internal/pagecache"
	"repro/internal/vfs"
)

func newFS() *vfs.FS {
	clk := clock.New()
	dev := blockdev.New(blockdev.NVMe(), clk)
	cache := pagecache.New(pagecache.Config{CapacityPages: 1 << 18}, clk, dev, nil)
	return vfs.New(cache)
}

func openDB(t testing.TB, fs *vfs.FS, opts Options) *DB {
	t.Helper()
	db, err := Open(fs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func k(i int) []byte { return []byte(fmt.Sprintf("key%08d", i)) }
func v(i int) []byte { return []byte(fmt.Sprintf("val%08d-%032d", i, i)) }

func TestPutGet(t *testing.T) {
	db := openDB(t, newFS(), Options{})
	for i := 0; i < 100; i++ {
		if err := db.Put(k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		got, ok, err := db.Get(k(i))
		if err != nil || !ok {
			t.Fatalf("Get(%d): %v %v", i, ok, err)
		}
		if !bytes.Equal(got, v(i)) {
			t.Errorf("Get(%d) = %q", i, got)
		}
	}
	if _, ok, _ := db.Get([]byte("missing")); ok {
		t.Error("found missing key")
	}
}

func TestOverwrite(t *testing.T) {
	db := openDB(t, newFS(), Options{})
	db.Put(k(1), []byte("old"))
	db.Put(k(1), []byte("new"))
	got, ok, _ := db.Get(k(1))
	if !ok || string(got) != "new" {
		t.Errorf("got %q", got)
	}
}

func TestDelete(t *testing.T) {
	db := openDB(t, newFS(), Options{})
	db.Put(k(1), v(1))
	db.Delete(k(1))
	if _, ok, _ := db.Get(k(1)); ok {
		t.Error("deleted key still visible")
	}
	// Delete of a missing key is fine; key stays missing.
	db.Delete(k(2))
	if _, ok, _ := db.Get(k(2)); ok {
		t.Error("tombstoned missing key visible")
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	db := openDB(t, newFS(), Options{})
	if err := db.Put(nil, v(1)); err == nil {
		t.Error("empty key Put must error")
	}
	if err := db.Delete(nil); err == nil {
		t.Error("empty key Delete must error")
	}
}

func TestFlushMovesDataToTables(t *testing.T) {
	db := openDB(t, newFS(), Options{MemtableBytes: 1 << 10})
	for i := 0; i < 200; i++ {
		db.Put(k(i), v(i))
	}
	if db.Tables() == 0 {
		t.Fatal("no flush happened")
	}
	if db.Stats().Flushes == 0 {
		t.Error("flush counter")
	}
	// All keys still visible across memtable + tables.
	for i := 0; i < 200; i++ {
		if _, ok, err := db.Get(k(i)); !ok || err != nil {
			t.Fatalf("Get(%d) after flush: %v %v", i, ok, err)
		}
	}
}

func TestDeleteShadowsFlushedValue(t *testing.T) {
	db := openDB(t, newFS(), Options{})
	db.Put(k(1), v(1))
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.Delete(k(1))
	if _, ok, _ := db.Get(k(1)); ok {
		t.Error("memtable tombstone must shadow flushed value")
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get(k(1)); ok {
		t.Error("flushed tombstone must shadow older table value")
	}
}

func TestIncrementalCompactionBoundsRuns(t *testing.T) {
	db := openDB(t, newFS(), Options{CompactionRuns: 3})
	for round := 0; round < 6; round++ {
		for i := round * 100; i < (round+1)*100; i++ {
			db.Put(k(i), v(i))
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		// Incremental compaction merges a pair whenever the run count
		// reaches the threshold, so it never exceeds it.
		if db.Tables() > 3 {
			t.Fatalf("tables = %d after flush %d", db.Tables(), round)
		}
	}
	if db.Stats().Compactions == 0 {
		t.Error("compaction counter")
	}
	for i := 0; i < 600; i++ {
		if _, ok, _ := db.Get(k(i)); !ok {
			t.Fatalf("key %d lost in compaction", i)
		}
	}
}

func TestFullCompactMergesToOneRun(t *testing.T) {
	db := openDB(t, newFS(), Options{CompactionRuns: 100})
	for round := 0; round < 3; round++ {
		for i := round * 100; i < (round+1)*100; i++ {
			db.Put(k(i), v(i))
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if db.Tables() != 3 {
		t.Fatalf("tables = %d before full compact", db.Tables())
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if db.Tables() != 1 {
		t.Fatalf("tables = %d after full compaction", db.Tables())
	}
	for i := 0; i < 300; i++ {
		if _, ok, _ := db.Get(k(i)); !ok {
			t.Fatalf("key %d lost in compaction", i)
		}
	}
}

func TestCompactPairKeepsShadowingWithOlderRuns(t *testing.T) {
	// Write key in the oldest run, tombstone it in a middle run, and make
	// sure merging runs that do NOT include the oldest keeps the tombstone.
	db := openDB(t, newFS(), Options{CompactionRuns: 100})
	db.Put(k(1), []byte("oldest"))
	db.Flush()
	db.Delete(k(1))
	db.Flush()
	db.Put(k(2), v(2))
	db.Flush()
	db.Put(k(3), v(3))
	db.Flush()
	// Merge the two newest runs (smallest pair is adjacent among new ones);
	// force pair compactions until only two runs remain.
	for db.Tables() > 2 {
		if err := db.compactPair(); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, _ := db.Get(k(1)); ok {
		t.Fatal("tombstone lost: deleted key resurrected from oldest run")
	}
}

func TestCompactionDropsTombstones(t *testing.T) {
	db := openDB(t, newFS(), Options{CompactionRuns: 100})
	for i := 0; i < 50; i++ {
		db.Put(k(i), v(i))
	}
	db.Flush()
	for i := 0; i < 50; i++ {
		db.Delete(k(i))
	}
	db.Flush()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if db.Tables() != 0 {
		t.Errorf("tables = %d; fully-deleted DB should have none", db.Tables())
	}
	for i := 0; i < 50; i++ {
		if _, ok, _ := db.Get(k(i)); ok {
			t.Fatal("deleted key resurrected")
		}
	}
}

func TestWALRecovery(t *testing.T) {
	fs := newFS()
	db := openDB(t, fs, Options{})
	db.Put(k(1), v(1))
	db.Put(k(2), v(2))
	db.Delete(k(1))
	// Reopen without flushing: the WAL must rebuild the memtable.
	db2 := openDB(t, fs, Options{})
	if _, ok, _ := db2.Get(k(1)); ok {
		t.Error("recovered deleted key")
	}
	got, ok, _ := db2.Get(k(2))
	if !ok || !bytes.Equal(got, v(2)) {
		t.Error("lost unflushed write")
	}
}

func TestReopenWithTables(t *testing.T) {
	fs := newFS()
	db := openDB(t, fs, Options{})
	for i := 0; i < 100; i++ {
		db.Put(k(i), v(i))
	}
	db.Flush()
	db.Put(k(100), v(100)) // unflushed
	db2 := openDB(t, fs, Options{})
	for i := 0; i <= 100; i++ {
		if _, ok, _ := db2.Get(k(i)); !ok {
			t.Fatalf("key %d lost across reopen", i)
		}
	}
}

func TestIteratorForward(t *testing.T) {
	db := openDB(t, newFS(), Options{MemtableBytes: 1 << 12})
	const n = 500
	for i := 0; i < n; i++ {
		db.Put(k(i), v(i))
	}
	it := db.NewIterator()
	it.SeekToFirst()
	count := 0
	for it.Valid() {
		if !bytes.Equal(it.Key(), k(count)) {
			t.Fatalf("key %d: got %q", count, it.Key())
		}
		if !bytes.Equal(it.Value(), v(count)) {
			t.Fatalf("value %d mismatch", count)
		}
		count++
		it.Next()
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Errorf("iterated %d", count)
	}
}

func TestIteratorReverse(t *testing.T) {
	db := openDB(t, newFS(), Options{MemtableBytes: 1 << 12})
	const n = 500
	for i := 0; i < n; i++ {
		db.Put(k(i), v(i))
	}
	it := db.NewReverseIterator()
	it.SeekToLast()
	count := n - 1
	for it.Valid() {
		if !bytes.Equal(it.Key(), k(count)) {
			t.Fatalf("reverse key %d: got %q", count, it.Key())
		}
		count--
		it.Next()
	}
	if count != -1 {
		t.Errorf("reverse stopped at %d", count)
	}
}

func TestIteratorMergesNewestWins(t *testing.T) {
	db := openDB(t, newFS(), Options{})
	db.Put(k(1), []byte("old"))
	db.Flush()
	db.Put(k(1), []byte("new")) // newer, in memtable
	it := db.NewIterator()
	it.SeekToFirst()
	if !it.Valid() || string(it.Value()) != "new" {
		t.Errorf("merge picked %q", it.Value())
	}
	it.Next()
	if it.Valid() {
		t.Error("duplicate key visible twice")
	}
}

func TestIteratorSkipsTombstones(t *testing.T) {
	db := openDB(t, newFS(), Options{})
	for i := 0; i < 10; i++ {
		db.Put(k(i), v(i))
	}
	db.Flush()
	db.Delete(k(5))
	it := db.NewIterator()
	it.SeekToFirst()
	seen := 0
	for it.Valid() {
		if bytes.Equal(it.Key(), k(5)) {
			t.Fatal("tombstoned key visible")
		}
		seen++
		it.Next()
	}
	if seen != 9 {
		t.Errorf("saw %d keys", seen)
	}
}

func TestIteratorSeek(t *testing.T) {
	db := openDB(t, newFS(), Options{})
	for i := 0; i < 100; i += 2 { // even keys only
		db.Put(k(i), v(i))
	}
	db.Flush()
	it := db.NewIterator()
	it.Seek(k(50))
	if !it.Valid() || !bytes.Equal(it.Key(), k(50)) {
		t.Error("seek exact")
	}
	it.Seek(k(51)) // odd: next even is 52
	if !it.Valid() || !bytes.Equal(it.Key(), k(52)) {
		t.Errorf("seek between: %q", it.Key())
	}
	rit := db.NewReverseIterator()
	rit.Seek(k(51)) // last key ≤ 51 is 50
	if !rit.Valid() || !bytes.Equal(rit.Key(), k(50)) {
		t.Errorf("reverse seek: %q", rit.Key())
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	db := openDB(t, newFS(), Options{MemtableBytes: 1 << 12, CompactionRuns: 3})
	oracle := make(map[string]string)
	for op := 0; op < 5000; op++ {
		key := k(rng.Intn(300))
		switch rng.Intn(10) {
		case 0, 1:
			if err := db.Delete(key); err != nil {
				t.Fatal(err)
			}
			delete(oracle, string(key))
		default:
			val := v(rng.Intn(1 << 20))
			if err := db.Put(key, val); err != nil {
				t.Fatal(err)
			}
			oracle[string(key)] = string(val)
		}
		if op%500 == 0 {
			db.Flush()
		}
	}
	// Point-check every key.
	for i := 0; i < 300; i++ {
		key := k(i)
		got, ok, err := db.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		want, exists := oracle[string(key)]
		if ok != exists {
			t.Fatalf("key %d: ok=%v, oracle=%v", i, ok, exists)
		}
		if ok && string(got) != want {
			t.Fatalf("key %d: %q != %q", i, got, want)
		}
	}
	// Full scan must match the oracle exactly, in order.
	it := db.NewIterator()
	it.SeekToFirst()
	var prev []byte
	scanCount := 0
	for it.Valid() {
		if prev != nil && bytes.Compare(it.Key(), prev) <= 0 {
			t.Fatal("scan out of order")
		}
		want, exists := oracle[string(it.Key())]
		if !exists || want != string(it.Value()) {
			t.Fatalf("scan key %q mismatch", it.Key())
		}
		prev = append(prev[:0], it.Key()...)
		scanCount++
		it.Next()
	}
	if scanCount != len(oracle) {
		t.Fatalf("scan saw %d keys, oracle has %d", scanCount, len(oracle))
	}
}

func TestMemtableBasics(t *testing.T) {
	m := newMemtable(1)
	m.put([]byte("b"), []byte("2"), false)
	m.put([]byte("a"), []byte("1"), false)
	m.put([]byte("c"), []byte("3"), false)
	if m.len() != 3 {
		t.Errorf("len = %d", m.len())
	}
	val, tomb, ok := m.get([]byte("b"))
	if !ok || tomb || string(val) != "2" {
		t.Error("get b")
	}
	// Update in place.
	m.put([]byte("b"), []byte("22"), false)
	if m.len() != 3 {
		t.Error("update must not add")
	}
	val, _, _ = m.get([]byte("b"))
	if string(val) != "22" {
		t.Error("update value")
	}
	// Entries are sorted.
	es := m.entries()
	if len(es) != 3 || string(es[0].key) != "a" || string(es[2].key) != "c" {
		t.Errorf("entries %v", es)
	}
	if _, _, ok := m.get([]byte("zz")); ok {
		t.Error("missing key found")
	}
}

func TestMemtableManyKeysSorted(t *testing.T) {
	m := newMemtable(7)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		m.put(k(rng.Intn(1000)), v(i), false)
	}
	es := m.entries()
	for i := 1; i < len(es); i++ {
		if bytes.Compare(es[i-1].key, es[i].key) >= 0 {
			t.Fatal("skiplist out of order")
		}
	}
}

func TestWALRoundTrip(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create("wal")
	w := newWAL(f, false)
	w.append(walPut, []byte("k1"), []byte("v1"))
	w.append(walDelete, []byte("k2"), nil)
	recs, err := replayWAL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0].kind != walPut || string(recs[0].key) != "k1" || string(recs[0].value) != "v1" {
		t.Error("record 0")
	}
	if recs[1].kind != walDelete || string(recs[1].key) != "k2" {
		t.Error("record 1")
	}
}

func TestWALRejectsGarbage(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create("wal")
	f.WriteAt([]byte{99, 1, 2, 3}, 0)
	if _, err := replayWAL(f); err == nil {
		t.Error("garbage WAL must error")
	}
}

func BenchmarkGetCold(b *testing.B) {
	fs := newFS()
	db := openDB(b, fs, Options{})
	for i := 0; i < 10000; i++ {
		db.Put(k(i), v(i))
	}
	db.Flush()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Get(k(i % 10000))
	}
}

func BenchmarkPut(b *testing.B) {
	db := openDB(b, newFS(), Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Put(k(i%100000), v(i))
	}
}
