package kvstore

import (
	"bytes"

	"repro/internal/sstable"
)

// direction fixes a merge iterator's scan order at creation; switching
// mid-scan is not supported (the workloads never do).
type direction int

const (
	forward direction = iota
	reverse
)

// source adapts one sorted run (memtable snapshot or table) for merging.
type source interface {
	seekToFirst()
	seekToLast()
	seek(key []byte)
	valid() bool
	next()
	prev()
	key() []byte
	value() []byte // raw: tag byte + user value for tables
	tombstone() bool
	err() error
}

// memSource iterates a memtable snapshot.
type memSource struct {
	entries []mentry
	pos     int
}

func (s *memSource) seekToFirst() { s.pos = 0 }
func (s *memSource) seekToLast()  { s.pos = len(s.entries) - 1 }
func (s *memSource) seek(key []byte) {
	lo, hi := 0, len(s.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(s.entries[mid].key, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s.pos = lo
}
func (s *memSource) valid() bool     { return s.pos >= 0 && s.pos < len(s.entries) }
func (s *memSource) next()           { s.pos++ }
func (s *memSource) prev()           { s.pos-- }
func (s *memSource) key() []byte     { return s.entries[s.pos].key }
func (s *memSource) value() []byte   { return s.entries[s.pos].value }
func (s *memSource) tombstone() bool { return s.entries[s.pos].tombstone }
func (s *memSource) err() error      { return nil }

// tableSource iterates one SSTable, decoding the value tag.
type tableSource struct {
	it *sstable.Iterator
}

func (s *tableSource) seekToFirst()    { s.it.SeekToFirst() }
func (s *tableSource) seekToLast()     { s.it.SeekToLast() }
func (s *tableSource) seek(key []byte) { s.it.Seek(key) }
func (s *tableSource) valid() bool     { return s.it.Valid() }
func (s *tableSource) next()           { s.it.Next() }
func (s *tableSource) prev()           { s.it.Prev() }
func (s *tableSource) key() []byte     { return s.it.Key() }
func (s *tableSource) value() []byte {
	raw := s.it.Value()
	if len(raw) == 0 {
		return nil
	}
	return raw[1:]
}
func (s *tableSource) tombstone() bool {
	raw := s.it.Value()
	return len(raw) > 0 && raw[0] == tagTombstone
}
func (s *tableSource) err() error { return s.it.Err() }

// mergeIterator merges sources by key; on duplicate keys the lowest source
// index (newest run) wins and older entries are skipped.
type mergeIterator struct {
	sources []source
	dir     direction
	cur     int // index of the current source, -1 if exhausted
}

// newMergeIterator builds a merge over a memtable snapshot (may be nil)
// and tables newest-first.
func newMergeIterator(mem []mentry, tables []*sstable.Table, dir direction) *mergeIterator {
	var sources []source
	if mem != nil {
		sources = append(sources, &memSource{entries: mem})
	}
	for _, t := range tables {
		sources = append(sources, &tableSource{it: t.NewIterator()})
	}
	return &mergeIterator{sources: sources, dir: dir, cur: -1}
}

func (m *mergeIterator) SeekToFirst() {
	for _, s := range m.sources {
		s.seekToFirst()
	}
	m.pick()
}

func (m *mergeIterator) SeekToLast() {
	for _, s := range m.sources {
		s.seekToLast()
	}
	m.pick()
}

func (m *mergeIterator) Seek(key []byte) {
	if m.dir == reverse {
		// For reverse scans, position each source at the last key ≤ key.
		for _, s := range m.sources {
			s.seek(key)
			switch {
			case s.valid() && bytes.Compare(s.key(), key) > 0:
				s.prev()
			case !s.valid():
				s.seekToLast()
				for s.valid() && bytes.Compare(s.key(), key) > 0 {
					s.prev()
				}
			}
		}
	} else {
		for _, s := range m.sources {
			s.seek(key)
		}
	}
	m.pick()
}

// pick selects the next current source: the minimum (or maximum, reverse)
// key among valid sources, breaking ties toward the newest run and
// advancing the stale duplicates past the chosen key.
func (m *mergeIterator) pick() {
	m.cur = -1
	var best []byte
	for i, s := range m.sources {
		if !s.valid() {
			continue
		}
		if m.cur == -1 {
			m.cur, best = i, s.key()
			continue
		}
		c := bytes.Compare(s.key(), best)
		if (m.dir == forward && c < 0) || (m.dir == reverse && c > 0) {
			m.cur, best = i, s.key()
		}
	}
	if m.cur == -1 {
		return
	}
	// Skip shadowed duplicates in older runs.
	for i, s := range m.sources {
		if i == m.cur || !s.valid() {
			continue
		}
		for s.valid() && bytes.Equal(s.key(), best) {
			if m.dir == forward {
				s.next()
			} else {
				s.prev()
			}
		}
	}
}

func (m *mergeIterator) valid() bool { return m.cur >= 0 }

func (m *mergeIterator) next() {
	if !m.valid() {
		return
	}
	m.sources[m.cur].next()
	m.pick()
}

func (m *mergeIterator) prev() {
	if !m.valid() {
		return
	}
	m.sources[m.cur].prev()
	m.pick()
}

func (m *mergeIterator) key() []byte     { return m.sources[m.cur].key() }
func (m *mergeIterator) value() []byte   { return m.sources[m.cur].value() }
func (m *mergeIterator) tombstone() bool { return m.sources[m.cur].tombstone() }

func (m *mergeIterator) err() error {
	for _, s := range m.sources {
		if e := s.err(); e != nil {
			return e
		}
	}
	return nil
}

// Iterator is the public DB iterator: a tombstone-filtering view over the
// merged runs. Direction is fixed at creation.
type Iterator struct {
	m   *mergeIterator
	dir direction
}

// NewIterator returns a forward iterator over the whole DB.
func (db *DB) NewIterator() *Iterator {
	return &Iterator{m: newMergeIterator(db.mem.entries(), db.tables, forward), dir: forward}
}

// NewReverseIterator returns a reverse iterator over the whole DB.
func (db *DB) NewReverseIterator() *Iterator {
	return &Iterator{m: newMergeIterator(db.mem.entries(), db.tables, reverse), dir: reverse}
}

func (it *Iterator) skipTombstones() {
	for it.m.valid() && it.m.tombstone() {
		if it.dir == forward {
			it.m.next()
		} else {
			it.m.prev()
		}
	}
}

// SeekToFirst positions at the smallest live key (forward iterators).
func (it *Iterator) SeekToFirst() {
	it.m.SeekToFirst()
	it.skipTombstones()
}

// SeekToLast positions at the largest live key (reverse iterators).
func (it *Iterator) SeekToLast() {
	it.m.SeekToLast()
	it.skipTombstones()
}

// Seek positions at the first live key ≥ key (forward) or ≤ key (reverse).
func (it *Iterator) Seek(key []byte) {
	it.m.Seek(key)
	it.skipTombstones()
}

// Valid reports whether the iterator is on a live entry.
func (it *Iterator) Valid() bool { return it.m.valid() }

// Next moves one live entry in the iterator's direction.
func (it *Iterator) Next() {
	if !it.Valid() {
		return
	}
	if it.dir == forward {
		it.m.next()
	} else {
		it.m.prev()
	}
	it.skipTombstones()
}

// Key returns the current key.
func (it *Iterator) Key() []byte { return it.m.key() }

// Value returns the current value.
func (it *Iterator) Value() []byte { return it.m.value() }

// Err returns the first error any source hit.
func (it *Iterator) Err() error { return it.m.err() }
