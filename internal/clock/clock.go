// Package clock provides the virtual clock that drives the storage
// simulation. All device latencies, cache waits, and workload CPU costs
// advance this clock instead of wall time, which makes every experiment
// deterministic, seed-reproducible, and orders of magnitude faster than
// real time — the standard discrete-event substitution for the paper's
// physical NVMe/SATA testbed.
package clock

import (
	"fmt"
	"time"
)

// Virtual is a monotonically advancing simulated clock. It is not
// goroutine-safe: the simulation is single-threaded by design (one virtual
// timeline), matching the single foreground I/O path being modeled.
type Virtual struct {
	now time.Duration
}

// New returns a clock at time zero.
func New() *Virtual { return &Virtual{} }

// Now returns the current virtual time as an offset from simulation start.
func (v *Virtual) Now() time.Duration { return v.now }

// Advance moves the clock forward by d.
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("clock: cannot advance by negative duration %v", d))
	}
	v.now += d
}

// AdvanceTo moves the clock forward to t; moving backward is a programming
// error (the simulation would become causally inconsistent).
func (v *Virtual) AdvanceTo(t time.Duration) {
	if t < v.now {
		panic(fmt.Sprintf("clock: cannot move backward from %v to %v", v.now, t))
	}
	v.now = t
}

// Seconds returns the current time in seconds, convenient for throughput
// (ops/sec) computations.
func (v *Virtual) Seconds() float64 { return v.now.Seconds() }
