package clock

import (
	"testing"
	"time"
)

func TestAdvance(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Error("new clock must start at zero")
	}
	c.Advance(time.Second)
	c.Advance(500 * time.Millisecond)
	if c.Now() != 1500*time.Millisecond {
		t.Errorf("now = %v", c.Now())
	}
	if c.Seconds() != 1.5 {
		t.Errorf("seconds = %g", c.Seconds())
	}
}

func TestAdvanceTo(t *testing.T) {
	c := New()
	c.AdvanceTo(2 * time.Second)
	if c.Now() != 2*time.Second {
		t.Errorf("now = %v", c.Now())
	}
	c.AdvanceTo(2 * time.Second) // same instant is fine
	defer func() {
		if recover() == nil {
			t.Error("moving backward must panic")
		}
	}()
	c.AdvanceTo(time.Second)
}

func TestNegativeAdvancePanics(t *testing.T) {
	c := New()
	defer func() {
		if recover() == nil {
			t.Error("negative advance must panic")
		}
	}()
	c.Advance(-time.Second)
}
