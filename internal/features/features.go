// Package features implements the readahead model's data pre-processing
// and feature extraction (§4 of the paper): tracepoint records are
// aggregated over one-second windows into candidate statistics, which are
// Z-score normalized with parameters fitted on the training set, and a
// selected subset feeds the classifier.
//
// The paper tried eight candidate features and kept the five with the most
// predictive accuracy, confirmed by Pearson correlation analysis. This
// reproduction runs the same selection process over its own candidate set
// (the paper's statistics plus two cheap additions) and arrives at four
// model inputs:
//
//	(i)   the mean |Δoffset| between consecutive
//	      tracepoints                               [paper feature (iv)]
//	(ii)  the mean sign of consecutive Δoffsets     [ours]
//	(iii) the fraction of writeback_dirty_page
//	      events in the window                      [ours]
//	(iv)  the current readahead value               [paper feature (v)]
//
// Three of the paper's five are computed and reported but NOT selected,
// because on the simulated tracepoint stream they hurt rather than help:
// the moving average and standard deviation of page offsets (paper (ii),
// (iii)) are nearly constant across workload classes — every workload's
// window averages out near the middle of the table file — so they carry no
// signal yet explode the Z-scores of never-seen workloads; and the
// tracepoint count (paper (i)) measures device throughput, which breaks
// the NVMe→SSD model transfer the paper demonstrates. The sign statistic
// replaces the scan-direction information the paper's
// cumulative-from-module-start statistics carried implicitly (per-window
// signed deltas telescope to ~0 over wrapping scans); the writeback
// fraction uses the second tracepoint the paper already collects. All
// selected features are bounded and scale-free. See DESIGN.md.
package features

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/stats"
)

// NumCandidates is the number of window statistics computed; Vector holds
// all of them so the Pearson analysis can rank the full candidate set.
const NumCandidates = 7

// Count is the model input dimension: the selected features.
const Count = 4

// Candidate indices into a Vector.
const (
	FeatEventCount = iota
	FeatOffsetMean
	FeatOffsetStdDev
	FeatMeanAbsDelta
	FeatDeltaSign
	FeatWriteFrac
	FeatReadahead
)

// Selected lists the candidate indices that feed the model, in input
// order. The tracepoint count — the paper's feature (i) — is computed and
// reported but not selected: it measures device throughput, so a model
// trained on NVMe event rates misreads the much lower SSD rates (the
// cross-device deployment the paper performs). The four selected features
// are scale-free, which is what lets the NVMe-trained model transfer.
var Selected = [Count]int{FeatMeanAbsDelta, FeatDeltaSign, FeatWriteFrac, FeatReadahead}

// Names returns the candidate names in index order.
func Names() [NumCandidates]string {
	return [NumCandidates]string{
		"tracepoint_count",
		"offset_moving_avg",
		"offset_moving_stddev",
		"offset_mean_abs_delta",
		"offset_delta_sign",
		"writeback_fraction",
		"current_readahead",
	}
}

// Record is one collected tracepoint sample: the fields the paper's
// data-collection hooks record (inode, page offset, time since module
// start) plus which tracepoint fired. It is small enough for lock-free
// ring slots.
type Record struct {
	Inode  uint64
	Offset int64
	Time   time.Duration
	Write  bool // true for writeback_dirty_page events
}

// Vector holds one window's candidate statistics (raw or normalized).
type Vector [NumCandidates]float64

// Slice returns all candidate statistics as a []float64.
func (v Vector) Slice() []float64 { return v[:] }

// Extractor folds records into window statistics. The caller decides the
// window boundaries (the readahead application emits once per second).
type Extractor struct {
	count    uint64
	writes   uint64
	offsets  stats.Running
	absSum   float64
	signSum  float64
	deltaN   uint64
	lastOff  int64
	haveLast bool
}

// NewExtractor returns an empty window aggregator.
func NewExtractor() *Extractor { return &Extractor{} }

// Add folds one record into the current window. It is O(1) with a handful
// of float operations — the per-event cost the paper reports as ~49 ns.
//
//kml:hotpath
func (e *Extractor) Add(rec Record) {
	e.count++
	if rec.Write {
		e.writes++
	}
	off := float64(rec.Offset)
	e.offsets.Add(off)
	if e.haveLast {
		switch d := rec.Offset - e.lastOff; {
		case d > 0:
			e.absSum += float64(d)
			e.signSum++
		case d < 0:
			e.absSum -= float64(d)
			e.signSum--
		}
		e.deltaN++
	}
	e.lastOff = rec.Offset
	e.haveLast = true
}

// Events returns the number of records in the current window.
func (e *Extractor) Events() uint64 { return e.count }

// Emit produces the raw feature vector for the window and resets the
// aggregator. raSectors is the current readahead value (feature v).
func (e *Extractor) Emit(raSectors int) Vector {
	var v Vector
	v[FeatEventCount] = float64(e.count)
	v[FeatOffsetMean] = e.offsets.Mean()
	v[FeatOffsetStdDev] = e.offsets.StdDev()
	if e.deltaN > 0 {
		v[FeatMeanAbsDelta] = e.absSum / float64(e.deltaN)
		v[FeatDeltaSign] = e.signSum / float64(e.deltaN)
	}
	if e.count > 0 {
		v[FeatWriteFrac] = float64(e.writes) / float64(e.count)
	}
	v[FeatReadahead] = float64(raSectors)
	e.Reset()
	return v
}

// Reset clears the window without emitting.
func (e *Extractor) Reset() {
	*e = Extractor{}
}

// Normalizer holds per-feature Z-score parameters fitted on training data
// and deployed with the model.
type Normalizer struct {
	Z [NumCandidates]stats.ZScore
}

// FitNormalizer estimates normalization parameters from raw vectors.
func FitNormalizer(raw []Vector) Normalizer {
	var agg [NumCandidates]stats.Running
	for _, v := range raw {
		for i, x := range v {
			agg[i].Add(x)
		}
	}
	var n Normalizer
	for i := range n.Z {
		n.Z[i] = stats.ZScore{Mean: agg[i].Mean(), StdDev: agg[i].StdDev()}
	}
	return n
}

// SelectedStats returns the training-time mean and standard deviation
// of each SELECTED candidate, in model input order — the frozen
// population statistics a drift monitor compares live feature windows
// against (the normalizer is exactly where training-time distribution
// knowledge survives into deployment).
func (n Normalizer) SelectedStats() (means, stds [Count]float64) {
	for i, c := range Selected {
		means[i] = n.Z[c].Mean
		stds[i] = n.Z[c].StdDev
	}
	return means, stds
}

// zClip bounds standardized features. Deployment windows from never-seen
// workloads can sit far outside the training distribution on one feature
// (mixgraph's offset deviation, for example); without clipping such a
// feature saturates every sigmoid and the prediction degenerates to an
// arbitrary class instead of the nearest pattern.
const zClip = 3.0

// Apply standardizes a raw vector, clipping each feature to ±3σ.
func (n Normalizer) Apply(raw Vector) Vector {
	var out Vector
	for i, x := range raw {
		out[i] = clip(n.Z[i].Apply(x))
	}
	return out
}

//
//kml:hotpath
func clip(x float64) float64 {
	if x > zClip {
		return zClip
	}
	if x < -zClip {
		return -zClip
	}
	return x
}

// ApplyInto standardizes the SELECTED features of raw into dst (a
// []float64 of length Count), clipping to ±3σ, allocation-free for the
// inference hot path.
//
//kml:hotpath
func (n Normalizer) ApplyInto(dst []float64, raw Vector) {
	for i, c := range Selected {
		dst[i] = clip(n.Z[c].Apply(raw[c]))
	}
}

// SelectInto copies the selected features of a normalized vector into dst
// (length Count) for model input.
//
//kml:hotpath
func SelectInto(dst []float64, normalized Vector) {
	for i, c := range Selected {
		dst[i] = normalized[c]
	}
}

// Select returns the selected features of a normalized vector.
func Select(normalized Vector) []float64 {
	dst := make([]float64, Count)
	SelectInto(dst, normalized)
	return dst
}

// normalizerMagic guards the serialized form ("KMLN").
const normalizerMagic = 0x4b4d4c4e

// ErrBadNormalizer reports a corrupt serialized normalizer.
var ErrBadNormalizer = errors.New("features: bad normalizer")

// Save writes the normalizer (it deploys alongside the model file).
func (n Normalizer) Save(w io.Writer) error {
	buf := make([]byte, 4+NumCandidates*16)
	binary.LittleEndian.PutUint32(buf, normalizerMagic)
	for i, z := range n.Z {
		binary.LittleEndian.PutUint64(buf[4+i*16:], math.Float64bits(z.Mean))
		binary.LittleEndian.PutUint64(buf[12+i*16:], math.Float64bits(z.StdDev))
	}
	_, err := w.Write(buf)
	return err
}

// LoadNormalizer reads a normalizer written by Save.
func LoadNormalizer(r io.Reader) (Normalizer, error) {
	var n Normalizer
	buf := make([]byte, 4+NumCandidates*16)
	if _, err := io.ReadFull(r, buf); err != nil {
		return n, fmt.Errorf("%w: %v", ErrBadNormalizer, err)
	}
	if binary.LittleEndian.Uint32(buf) != normalizerMagic {
		return n, fmt.Errorf("%w: magic", ErrBadNormalizer)
	}
	for i := range n.Z {
		n.Z[i].Mean = math.Float64frombits(binary.LittleEndian.Uint64(buf[4+i*16:]))
		n.Z[i].StdDev = math.Float64frombits(binary.LittleEndian.Uint64(buf[12+i*16:]))
	}
	return n, nil
}

// CorrelationReport computes the Pearson correlation of each feature with
// the class label, the analysis the authors used to confirm their feature
// choices (§4).
func CorrelationReport(raw []Vector, labels []int) ([NumCandidates]float64, error) {
	if len(raw) != len(labels) || len(raw) == 0 {
		return [NumCandidates]float64{}, fmt.Errorf("features: %d vectors, %d labels", len(raw), len(labels))
	}
	ys := make([]float64, len(labels))
	for i, l := range labels {
		ys[i] = float64(l)
	}
	var out [NumCandidates]float64
	xs := make([]float64, len(raw))
	for f := 0; f < NumCandidates; f++ {
		for i, v := range raw {
			xs[i] = v[f]
		}
		out[f] = stats.Pearson(xs, ys)
	}
	return out, nil
}
