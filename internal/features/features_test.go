package features

import (
	"bytes"
	"math"
	"testing"
	"time"
)

func rec(off int64) Record { return Record{Inode: 1, Offset: off, Time: time.Second} }

func TestExtractorSequentialPattern(t *testing.T) {
	e := NewExtractor()
	for i := int64(0); i < 100; i++ {
		e.Add(rec(i))
	}
	v := e.Emit(256)
	if v[FeatEventCount] != 100 {
		t.Errorf("count = %g", v[FeatEventCount])
	}
	if math.Abs(v[FeatOffsetMean]-49.5) > 1e-9 {
		t.Errorf("mean = %g", v[FeatOffsetMean])
	}
	if math.Abs(v[FeatMeanAbsDelta]-1) > 1e-9 {
		t.Errorf("abs delta = %g, want 1 (forward scan)", v[FeatMeanAbsDelta])
	}
	if math.Abs(v[FeatDeltaSign]-1) > 1e-9 {
		t.Errorf("delta sign = %g, want +1 (forward scan)", v[FeatDeltaSign])
	}
	if v[FeatReadahead] != 256 {
		t.Errorf("ra = %g", v[FeatReadahead])
	}
}

func TestExtractorReversePattern(t *testing.T) {
	e := NewExtractor()
	for i := int64(99); i >= 0; i-- {
		e.Add(rec(i))
	}
	v := e.Emit(8)
	if math.Abs(v[FeatMeanAbsDelta]-1) > 1e-9 {
		t.Errorf("abs delta = %g, want 1 (reverse scan)", v[FeatMeanAbsDelta])
	}
	if math.Abs(v[FeatDeltaSign]+1) > 1e-9 {
		t.Errorf("delta sign = %g, want -1 (reverse scan)", v[FeatDeltaSign])
	}
}

func TestExtractorRandomPattern(t *testing.T) {
	e := NewExtractor()
	offs := []int64{500, 10, 900, 300, 700, 50}
	for _, o := range offs {
		e.Add(rec(o))
	}
	v := e.Emit(256)
	if v[FeatOffsetStdDev] < 100 {
		t.Errorf("stddev = %g; random offsets should scatter", v[FeatOffsetStdDev])
	}
	if v[FeatMeanAbsDelta] < 100 {
		t.Errorf("abs delta = %g; random jumps should be large", v[FeatMeanAbsDelta])
	}
	// Delta signs nearly cancel for random access.
	if math.Abs(v[FeatDeltaSign]) > 0.5 {
		t.Errorf("delta sign = %g; random signs should roughly cancel", v[FeatDeltaSign])
	}
}

func TestExtractorEmitResets(t *testing.T) {
	e := NewExtractor()
	e.Add(rec(1))
	e.Add(rec(2))
	e.Emit(8)
	v := e.Emit(8)
	if v[FeatEventCount] != 0 || v[FeatOffsetMean] != 0 || v[FeatMeanAbsDelta] != 0 {
		t.Errorf("window not reset: %v", v)
	}
}

func TestExtractorEmptyWindow(t *testing.T) {
	e := NewExtractor()
	v := e.Emit(128)
	if v[FeatEventCount] != 0 || v[FeatReadahead] != 128 {
		t.Errorf("empty window: %v", v)
	}
}

func TestExtractorSingleEventNoDelta(t *testing.T) {
	e := NewExtractor()
	e.Add(rec(42))
	v := e.Emit(8)
	if v[FeatMeanAbsDelta] != 0 || v[FeatDeltaSign] != 0 {
		t.Error("single event has no delta")
	}
	if v[FeatOffsetStdDev] != 0 {
		t.Error("single event has no deviation")
	}
}

func TestNormalizerRoundTrip(t *testing.T) {
	raw := []Vector{
		{100, 50, 10, 1, 1, 0, 256},
		{200, 60, 20, 1, -1, 0.5, 256},
		{300, 70, 30, 500, 0, 1, 8},
	}
	n := FitNormalizer(raw)
	// Mean of normalized features must be ~0, stddev ~1.
	var sums [NumCandidates]float64
	for _, v := range raw {
		nv := n.Apply(v)
		for i, x := range nv {
			sums[i] += x
		}
	}
	for i, s := range sums {
		if math.Abs(s) > 1e-9 {
			t.Errorf("feature %d mean %g", i, s/3)
		}
	}
}

func TestNormalizerApplyInto(t *testing.T) {
	n := FitNormalizer([]Vector{{1, 2, 3, 4, 5, 6, 7}, {3, 4, 5, 6, 7, 8, 9}})
	dst := make([]float64, Count)
	n.ApplyInto(dst, Vector{2, 3, 4, 5, 6, 7, 8})
	for i, x := range dst {
		if x != 0 {
			t.Errorf("midpoint feature %d = %g, want 0", i, x)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		n.ApplyInto(dst, Vector{1, 2, 3, 4, 5, 6, 7})
	})
	if allocs != 0 {
		t.Errorf("ApplyInto allocates %.1f", allocs)
	}
}

func TestNormalizerConstantFeature(t *testing.T) {
	n := FitNormalizer([]Vector{{5, 0, 0, 0, 0, 0, 256}, {5, 1, 0, 0, 0, 0, 256}})
	out := n.Apply(Vector{5, 0.5, 0, 0, 0, 0, 999})
	if out[FeatEventCount] != 0 || out[FeatReadahead] != 0 {
		t.Error("constant feature must normalize to 0")
	}
}

func TestNormalizerSaveLoad(t *testing.T) {
	n := FitNormalizer([]Vector{{1, 2, 3, 4, 5, 6, 7}, {10, 20, 30, 40, 50, 60, 70}})
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadNormalizer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Errorf("round trip mismatch: %+v vs %+v", got, n)
	}
	if _, err := LoadNormalizer(bytes.NewReader([]byte("xx"))); err == nil {
		t.Error("short input must error")
	}
	bad := buf // drained; write garbage
	bad.Write(make([]byte, 4+Count*16))
	if _, err := LoadNormalizer(&bad); err == nil {
		t.Error("bad magic must error")
	}
}

func TestCorrelationReport(t *testing.T) {
	// Feature 0 perfectly tracks the label; feature 1 is anti-correlated;
	// the rest are constant (degenerate → 0).
	raw := []Vector{
		{0, 10, 1, 1, 1, 1, 1},
		{1, 8, 1, 1, 1, 1, 1},
		{2, 6, 1, 1, 1, 1, 1},
		{3, 4, 1, 1, 1, 1, 1},
	}
	labels := []int{0, 1, 2, 3}
	corr, err := CorrelationReport(raw, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(corr[0]-1) > 1e-9 {
		t.Errorf("corr[0] = %g", corr[0])
	}
	if math.Abs(corr[1]+1) > 1e-9 {
		t.Errorf("corr[1] = %g", corr[1])
	}
	if corr[2] != 0 {
		t.Errorf("corr[2] = %g", corr[2])
	}
	if _, err := CorrelationReport(nil, nil); err == nil {
		t.Error("empty report must error")
	}
	if _, err := CorrelationReport(raw, []int{1}); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestNames(t *testing.T) {
	n := Names()
	if n[FeatEventCount] != "tracepoint_count" || n[FeatReadahead] != "current_readahead" {
		t.Error("feature names")
	}
}

func BenchmarkExtractorAdd(b *testing.B) {
	e := NewExtractor()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Add(Record{Inode: 1, Offset: int64(i % 10000), Time: time.Duration(i)})
	}
}
