// Package parallel is the experiment harness's worker pool: a deterministic
// fan-out of independent cells over a bounded number of goroutines.
//
// Experiment grids (the readahead sweep, Table 2, k-fold cross-validation)
// are embarrassingly parallel: every cell builds its own simulation
// environment or model from a seed that depends only on the cell's
// coordinates, never on execution order. For runs the pool's only job is
// scheduling; results are written into per-cell slots and assembled in
// canonical order afterwards, so output is byte-identical for any worker
// count — including 1, which runs inline with no goroutines at all.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count setting: n if positive, otherwise
// GOMAXPROCS (the harness default).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// For runs cell(0..n-1) across at most workers goroutines. Cells must be
// independent and write results only to their own slot. Every cell is
// attempted even if another fails; the lowest-indexed error is returned,
// so the reported failure is deterministic regardless of scheduling.
// workers <= 1 runs every cell inline on the calling goroutine.
func For(n, workers int, cell func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := cell(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = cell(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
