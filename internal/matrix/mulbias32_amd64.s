//go:build amd64 && !purego

#include "textflag.h"

// func mulBias32Kernel16(dst, a, b, bias []float32, rows, k, n int)
//
// dst = a·b + bias(broadcast) for n ≤ 16: dst is rows×n, a rows×k, b k×n,
// bias 1×n, all row-major. The whole output row lives in four XMM
// accumulators (16 lanes) initialized from bias, with k innermost — no
// intermediate stores, four independent add chains — then one 64-byte
// store per row. Lanes past n are junk; the loads and stores that touch
// them run over the operands' ends, which is why the Go wrapper only
// dispatches here when dst, b, and bias carry ≥ 16 elements of spare
// backing capacity (matrix.NewPadded). A row's overhang lands in rows
// not yet computed (rows run ascending, so they are rewritten) or in the
// final padding.
//
// MULPS/ADDPS are plain IEEE single multiply and add per lane — never
// FMA — and k is walked in the portable loop's order, so every output
// element is bitwise-identical to the generic build.
TEXT ·mulBias32Kernel16(SB), NOSPLIT, $0-120
	MOVQ dst_base+0(FP), DI   // DI = dst cursor (row i)
	MOVQ a_base+24(FP), SI    // SI = a cursor (row i)
	MOVQ b_base+48(FP), R13   // R13 = &b[0]
	MOVQ bias_base+72(FP), DX // DX = &bias[0]
	MOVQ rows+96(FP), AX      // AX = remaining rows
	MOVQ k+104(FP), R8        // R8 = k
	MOVQ n+112(FP), CX        // CX = n
	LEAQ (CX*4), R10          // R10 = row stride in bytes

rowloop:
	TESTQ AX, AX
	JZ    done

	// Accumulators = bias (64-byte read; tail lanes are junk).
	MOVUPS (DX), X4
	MOVUPS 16(DX), X5
	MOVUPS 32(DX), X6
	MOVUPS 48(DX), X7

	MOVQ R13, BX              // BX = &b[k*n] for current k
	XORQ R9, R9               // R9 = k index

kloop:
	CMPQ   R9, R8
	JGE    rowstore
	MOVSS  (SI)(R9*4), X0
	SHUFPS $0, X0, X0         // X0 = {av, av, av, av}
	MOVUPS (BX), X1
	MULPS  X0, X1
	ADDPS  X1, X4
	MOVUPS 16(BX), X2
	MULPS  X0, X2
	ADDPS  X2, X5
	MOVUPS 32(BX), X3
	MULPS  X0, X3
	ADDPS  X3, X6
	MOVUPS 48(BX), X1
	MULPS  X0, X1
	ADDPS  X1, X7
	ADDQ   R10, BX            // next row of b
	INCQ   R9
	JMP    kloop

rowstore:
	// One 64-byte store; overhang beyond n lands in not-yet-computed
	// rows or the final padding.
	MOVUPS X4, (DI)
	MOVUPS X5, 16(DI)
	MOVUPS X6, 32(DI)
	MOVUPS X7, 48(DI)
	ADDQ   R10, DI            // next dst row
	LEAQ   (SI)(R8*4), SI     // next a row
	DECQ   AX
	JMP    rowloop

done:
	RET
