// Fixed-point matrix kernels. This file is the integer-only slice of the
// matrix package: it is what the in-kernel inference path executes, so it
// must hold to the kernelspace contract (no floats, no locks, no
// forbidden imports). The float↔fixed conversions live in matrix.go on
// the user-space side of the boundary.
//
//kml:kernelspace
package matrix

import "repro/internal/fixed"

// Fixed is a row-major dense matrix of Q16.16 fixed-point values, used for
// integer-only inference. Multiplication accumulates in int64 and shifts
// once per dot product, which preserves far more precision than per-term
// rounding.
type Fixed struct {
	rows, cols int
	data       []fixed.Q16
}

// NewFixed returns a zeroed rows×cols fixed-point matrix.
func NewFixed(rows, cols int) *Fixed {
	return &Fixed{rows: rows, cols: cols, data: make([]fixed.Q16, rows*cols)}
}

// Rows returns the number of rows.
func (f *Fixed) Rows() int { return f.rows }

// Cols returns the number of columns.
func (f *Fixed) Cols() int { return f.cols }

// At returns the element at row i, column j.
func (f *Fixed) At(i, j int) fixed.Q16 { return f.data[i*f.cols+j] }

// Set stores v at row i, column j.
func (f *Fixed) Set(i, j int, v fixed.Q16) { f.data[i*f.cols+j] = v }

// Data returns the backing slice in row-major order.
func (f *Fixed) Data() []fixed.Q16 { return f.data }

// Row returns a view of row i.
func (f *Fixed) Row(i int) []fixed.Q16 { return f.data[i*f.cols : (i+1)*f.cols] }

// SliceRows returns a view of the first rows rows of f, sharing f's
// storage. Returned by value so batched inference can re-slice
// fixed-capacity scratch per call without allocating.
func (f *Fixed) SliceRows(rows int) Fixed {
	if rows < 0 || rows > f.rows {
		panic("matrix: Fixed.SliceRows out of range")
	}
	return Fixed{rows: rows, cols: f.cols, data: f.data[:rows*f.cols]}
}

// MulFixedInto computes dst = a·b in fixed point with int64 accumulation.
//
//kml:hotpath
func MulFixedInto(dst, a, b *Fixed) {
	if a.cols != b.rows || dst.rows != a.rows || dst.cols != b.cols {
		panic("matrix: MulFixedInto shape mismatch")
	}
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		drow := dst.data[i*dst.cols : (i+1)*dst.cols]
		for j := 0; j < b.cols; j++ {
			var acc int64
			for k, av := range arow {
				acc += int64(av) * int64(b.data[k*b.cols+j])
			}
			// One rounding shift for the whole dot product.
			if acc >= 0 {
				acc += 1 << (fixed.FracBits - 1)
			} else {
				acc -= 1 << (fixed.FracBits - 1)
			}
			acc >>= fixed.FracBits
			switch {
			case acc > int64(fixed.Max):
				drow[j] = fixed.Max
			case acc < int64(fixed.Min):
				drow[j] = fixed.Min
			default:
				drow[j] = fixed.Q16(acc)
			}
		}
	}
}

// AddRowVec adds the 1×cols vector v to every row of f in place.
//
//kml:hotpath
func (f *Fixed) AddRowVec(v *Fixed) {
	if v.rows != 1 || v.cols != f.cols {
		panic("matrix: Fixed.AddRowVec needs a 1xCols vector")
	}
	for i := 0; i < f.rows; i++ {
		row := f.Row(i)
		for j := range row {
			row[j] = row[j].Add(v.data[j])
		}
	}
}

// Apply sets every element to fn(element) in place.
//
//kml:hotpath
func (f *Fixed) Apply(fn func(fixed.Q16) fixed.Q16) {
	for i := range f.data {
		f.data[i] = fn(f.data[i])
	}
}

// ArgMaxRow returns the column index of the largest element in row i.
//
//kml:hotpath
func (f *Fixed) ArgMaxRow(i int) int {
	row := f.Row(i)
	best := 0
	for j := 1; j < len(row); j++ {
		if row[j] > row[best] {
			best = j
		}
	}
	return best
}
