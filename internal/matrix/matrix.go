// Package matrix implements the dense matrix types and linear-algebra
// routines KML's neural networks are built on.
//
// The paper (§3.1) states that "KML supports integer, floating-point, and
// double precision matrices". This package provides:
//
//   - Dense[T] — a generic row-major dense matrix over float32 or float64,
//     used for training and floating-point inference, and
//   - Fixed — a Q16.16 fixed-point matrix (package fixed) with int64
//     accumulation, used for integer-only inference in FPU-less contexts.
//
// All hot-path operations offer *Into variants that write into caller-owned
// destinations so inference can run without allocating (§3.1: memory must be
// carefully managed inside the OS).
package matrix

import (
	"errors"
	"fmt"

	"repro/internal/fixed"
)

// Float constrains the element types of a Dense matrix.
type Float interface {
	~float32 | ~float64
}

// Dense is a row-major dense matrix.
type Dense[T Float] struct {
	rows, cols int
	data       []T
}

// New returns a zeroed rows×cols matrix.
func New[T Float](rows, cols int) *Dense[T] {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", rows, cols))
	}
	return &Dense[T]{rows: rows, cols: cols, data: make([]T, rows*cols)}
}

// NewPadded returns a zeroed rows×cols matrix whose backing array carries
// at least pad spare elements of capacity beyond the matrix itself. The
// spare region lets vectorized kernels (MulBias32) read and write full
// SIMD lanes past the final row without touching unowned memory; the
// matrix's own shape and contents are identical to New's.
func NewPadded[T Float](rows, cols, pad int) *Dense[T] {
	if rows < 0 || cols < 0 || pad < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d+%d", rows, cols, pad))
	}
	return &Dense[T]{rows: rows, cols: cols, data: make([]T, rows*cols, rows*cols+pad)}
}

// FromSlice returns a rows×cols matrix backed by a copy of data, which must
// hold exactly rows*cols elements in row-major order.
func FromSlice[T Float](rows, cols int, data []T) *Dense[T] {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("matrix: FromSlice got %d elements for %dx%d", len(data), rows, cols))
	}
	m := New[T](rows, cols)
	copy(m.data, data)
	return m
}

// Rows returns the number of rows.
func (m *Dense[T]) Rows() int { return m.rows }

// Cols returns the number of columns.
//
//kml:hotpath
func (m *Dense[T]) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense[T]) At(i, j int) T { return m.data[i*m.cols+j] }

// Set stores v at row i, column j.
func (m *Dense[T]) Set(i, j int, v T) { m.data[i*m.cols+j] = v }

// Data returns the backing slice in row-major order. Mutating it mutates
// the matrix; it is exposed for zero-copy serialization and kernels.
//
//kml:hotpath
func (m *Dense[T]) Data() []T { return m.data }

// Row returns a view of row i (aliasing the matrix storage).
//
//kml:hotpath
func (m *Dense[T]) Row(i int) []T { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy of m.
func (m *Dense[T]) Clone() *Dense[T] {
	c := New[T](m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// SliceRows returns a view of the first rows rows of m, sharing m's
// storage. The view is returned by value so callers can keep it in a
// reusable field (or on the stack) and re-slice per call without
// allocating — the mechanism batched inference uses to run varying batch
// sizes over fixed-capacity scratch.
//
//kml:hotpath
func (m *Dense[T]) SliceRows(rows int) Dense[T] {
	if rows < 0 || rows > m.rows {
		panic(fmt.Sprintf("matrix: SliceRows %d of %dx%d", rows, m.rows, m.cols))
	}
	return Dense[T]{rows: rows, cols: m.cols, data: m.data[:rows*m.cols]}
}

// CopyFrom copies src into m; dimensions must match.
func (m *Dense[T]) CopyFrom(src *Dense[T]) {
	m.mustSameShape(src)
	copy(m.data, src.data)
}

// Fill sets every element of m to v.
func (m *Dense[T]) Fill(v T) {
	for i := range m.data {
		m.data[i] = v
	}
}

// Zero sets every element of m to 0.
func (m *Dense[T]) Zero() {
	var z T
	for i := range m.data {
		m.data[i] = z
	}
}

func (m *Dense[T]) mustSameShape(o *Dense[T]) {
	if m.rows != o.rows || m.cols != o.cols {
		panic(fmt.Sprintf("matrix: shape mismatch %dx%d vs %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
}

// ErrShape reports incompatible matrix dimensions from checked operations.
var ErrShape = errors.New("matrix: incompatible shapes")

// MulInto computes dst = a·b. dst must be a.rows × b.cols and must not
// alias a or b. It performs no allocation.
func MulInto[T Float](dst, a, b *Dense[T]) {
	if a.cols != b.rows || dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("matrix: MulInto shapes %dx%d · %dx%d -> %dx%d",
			a.rows, a.cols, b.rows, b.cols, dst.rows, dst.cols))
	}
	// ikj loop order: the inner loop streams rows of b and dst, which is
	// cache-friendly for row-major storage.
	for i := 0; i < a.rows; i++ {
		drow := dst.data[i*dst.cols : (i+1)*dst.cols]
		for x := range drow {
			drow[x] = 0
		}
		arow := a.data[i*a.cols : (i+1)*a.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MulBiasInto computes dst = a·b + bias (bias a 1×b.cols row vector,
// broadcast over rows) in a single fused pass: each destination row is
// initialized from the bias and accumulated in k-order, so the output is
// traversed once instead of twice (MulInto + AddRowVec). dst must be
// a.rows × b.cols and must not alias a or b. It performs no allocation.
//
// This is the batched-inference reference kernel. Each output element is
// evaluated as ((bias + a₀·b₀) + a₁·b₁) + … — one IEEE multiply and add
// per k step, in k order, independent of the row count. MulBias32 (the
// float32 fast path, vectorized on amd64) follows the identical per-
// element order, so batch-of-N output is bitwise-equal to N batch-of-1
// calls on every build.
//
//kml:hotpath
func MulBiasInto[T Float](dst, a, b, bias *Dense[T]) {
	checkMulBias(dst, a, b, bias)
	n := b.cols
	for i := 0; i < a.rows; i++ {
		drow := dst.data[i*n : (i+1)*n]
		copy(drow, bias.data)
		arow := a.data[i*a.cols : (i+1)*a.cols]
		for k, av := range arow {
			brow := b.data[k*n : (k+1)*n]
			brow = brow[:len(drow)]
			for j := range drow {
				drow[j] += av * brow[j]
			}
		}
	}
}

// checkMulBias validates the fused-kernel shapes. It runs on the hot
// path (the comparisons are a handful of integer tests); the formatting
// allocation sits inside the panic argument, which is the cold misuse
// branch noalloc exempts.
//
//kml:hotpath
func checkMulBias[T Float](dst, a, b, bias *Dense[T]) {
	if a.cols != b.rows || dst.rows != a.rows || dst.cols != b.cols ||
		bias.rows != 1 || bias.cols != b.cols {
		panic(fmt.Sprintf("matrix: MulBiasInto shapes %dx%d · %dx%d + 1x%d -> %dx%d",
			a.rows, a.cols, b.rows, b.cols, bias.cols, dst.rows, dst.cols))
	}
}

// Mul returns a·b in a freshly allocated matrix.
func Mul[T Float](a, b *Dense[T]) *Dense[T] {
	dst := New[T](a.rows, b.cols)
	MulInto(dst, a, b)
	return dst
}

// MulTransInto computes dst = a·bᵀ without materializing bᵀ.
// dst must be a.rows × b.rows.
func MulTransInto[T Float](dst, a, b *Dense[T]) {
	if a.cols != b.cols || dst.rows != a.rows || dst.cols != b.rows {
		panic("matrix: MulTransInto shape mismatch")
	}
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		drow := dst.data[i*dst.cols : (i+1)*dst.cols]
		for j := 0; j < b.rows; j++ {
			brow := b.data[j*b.cols : (j+1)*b.cols]
			var sum T
			for k, av := range arow {
				sum += av * brow[k]
			}
			drow[j] = sum
		}
	}
}

// TransMulInto computes dst = aᵀ·b without materializing aᵀ.
// dst must be a.cols × b.cols.
func TransMulInto[T Float](dst, a, b *Dense[T]) {
	if a.rows != b.rows || dst.rows != a.cols || dst.cols != b.cols {
		panic("matrix: TransMulInto shape mismatch")
	}
	dst.Zero()
	for k := 0; k < a.rows; k++ {
		arow := a.data[k*a.cols : (k+1)*a.cols]
		brow := b.data[k*b.cols : (k+1)*b.cols]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.data[i*dst.cols : (i+1)*dst.cols]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// Transpose returns mᵀ as a new matrix.
func (m *Dense[T]) Transpose() *Dense[T] {
	t := New[T](m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// AddInto computes dst = a + b elementwise; all three must share a shape
// (dst may alias a or b).
func AddInto[T Float](dst, a, b *Dense[T]) {
	a.mustSameShape(b)
	a.mustSameShape(dst)
	for i := range dst.data {
		dst.data[i] = a.data[i] + b.data[i]
	}
}

// SubInto computes dst = a − b elementwise (dst may alias a or b).
func SubInto[T Float](dst, a, b *Dense[T]) {
	a.mustSameShape(b)
	a.mustSameShape(dst)
	for i := range dst.data {
		dst.data[i] = a.data[i] - b.data[i]
	}
}

// HadamardInto computes dst = a ⊙ b elementwise (dst may alias a or b).
func HadamardInto[T Float](dst, a, b *Dense[T]) {
	a.mustSameShape(b)
	a.mustSameShape(dst)
	for i := range dst.data {
		dst.data[i] = a.data[i] * b.data[i]
	}
}

// Scale multiplies every element of m by s in place.
func (m *Dense[T]) Scale(s T) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// AXPY computes m += s·x elementwise.
func (m *Dense[T]) AXPY(s T, x *Dense[T]) {
	m.mustSameShape(x)
	for i := range m.data {
		m.data[i] += s * x.data[i]
	}
}

// AddRowVec adds the 1×cols row vector v to every row of m in place
// (broadcast add, used for biases).
func (m *Dense[T]) AddRowVec(v *Dense[T]) {
	if v.rows != 1 || v.cols != m.cols {
		panic("matrix: AddRowVec needs a 1xCols vector")
	}
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v.data[j]
		}
	}
}

// SumRowsInto writes the column-wise sum of m (a 1×cols vector) into dst.
func (m *Dense[T]) SumRowsInto(dst *Dense[T]) {
	if dst.rows != 1 || dst.cols != m.cols {
		panic("matrix: SumRowsInto needs a 1xCols destination")
	}
	dst.Zero()
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j := range row {
			dst.data[j] += row[j]
		}
	}
}

// Apply sets every element to f(element) in place.
func (m *Dense[T]) Apply(f func(T) T) {
	for i := range m.data {
		m.data[i] = f(m.data[i])
	}
}

// ArgMaxRow returns the column index of the largest element in row i.
//
//kml:hotpath
func (m *Dense[T]) ArgMaxRow(i int) int {
	row := m.Row(i)
	best := 0
	for j := 1; j < len(row); j++ {
		if row[j] > row[best] {
			best = j
		}
	}
	return best
}

// MaxAbs returns the largest absolute element value in m (0 for empty).
func (m *Dense[T]) MaxAbs() T {
	var maxV T
	for _, v := range m.data {
		if v < 0 {
			v = -v
		}
		if v > maxV {
			maxV = v
		}
	}
	return maxV
}

// FrobeniusNorm2 returns the squared Frobenius norm Σ m_ij².
func (m *Dense[T]) FrobeniusNorm2() T {
	var sum T
	for _, v := range m.data {
		sum += v * v
	}
	return sum
}

// Equal reports whether m and o have the same shape and elements within tol.
func (m *Dense[T]) Equal(o *Dense[T], tol T) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.data {
		d := m.data[i] - o.data[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			return false
		}
	}
	return true
}

// String renders a small matrix for debugging.
func (m *Dense[T]) String() string {
	s := fmt.Sprintf("Dense %dx%d [", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", float64(m.At(i, j)))
		}
	}
	return s + "]"
}

// FixedFrom quantizes a float matrix to Q16.16. It is a user→kernel
// boundary conversion: quantization happens at deployment time, so it
// lives here rather than in the kernelspace fixedmat.go.
func FixedFrom[T Float](m *Dense[T]) *Fixed {
	f := NewFixed(m.rows, m.cols)
	data := f.Data()
	for i, v := range m.data {
		data[i] = fixed.FromFloat(float64(v))
	}
	return f
}

// Float converts f back to a float64 matrix (for accuracy comparisons).
func (f *Fixed) Float() *Dense[float64] {
	m := New[float64](f.Rows(), f.Cols())
	for i, v := range f.Data() {
		m.data[i] = v.Float()
	}
	return m
}
