//go:build !amd64 || purego

package matrix

// MulBias32 is MulBiasInto specialized to float32. On amd64 an SSE kernel
// replaces this build (mulbias32_amd64.go); both evaluate every output
// element with the identical IEEE multiply/add sequence, so results are
// bitwise-equal across builds.
//
//kml:hotpath
func MulBias32(dst, a, b, bias *Dense[float32]) {
	MulBiasInto(dst, a, b, bias)
}
