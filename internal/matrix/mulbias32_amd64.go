//go:build amd64 && !purego

package matrix

// mulBias32Kernel16 computes dst = a·b + bias (shapes rows×k · k×n + 1×n,
// n ≤ 16) over raw row-major slices; see mulbias32_amd64.s for the lane
// and padding contract.
//
//go:noescape
//kml:hotpath
func mulBias32Kernel16(dst, a, b, bias []float32, rows, k, n int)

// MulBias32 is MulBiasInto specialized to float32. When the output width
// fits the 16-lane SSE kernel and dst, b, and bias carry the spare
// backing capacity its over-width loads and stores require (allocated via
// NewPadded, as the compiled float32 network does), each output row is
// computed in XMM accumulators with no intermediate stores — the
// throughput floor of batched inference (≈345 multiply-adds per readahead
// sample), and where the batch speedup comes from on amd64. Other shapes
// fall back to the portable loop. Both paths evaluate every output
// element with the identical IEEE multiply/add sequence in k order, so
// results are bitwise-equal regardless of path or build.
//
//kml:hotpath
func MulBias32(dst, a, b, bias *Dense[float32]) {
	checkMulBias(dst, a, b, bias)
	n := b.cols
	if n <= 16 && spare(dst) >= 16 && spare(b) >= 16 && spare(bias) >= 16 {
		mulBias32Kernel16(dst.data, a.data, b.data, bias.data, a.rows, a.cols, n)
		return
	}
	MulBiasInto(dst, a, b, bias)
}

// spare reports the backing capacity beyond the matrix's own elements —
// the padding headroom the vector kernel's over-width accesses need.
//
//kml:hotpath
func spare[T Float](m *Dense[T]) int {
	return cap(m.data) - len(m.data)
}
