package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fixed"
)

func TestNewAndAccess(t *testing.T) {
	m := New[float64](2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("dims %dx%d", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Error("Set/At mismatch")
	}
	if m.At(0, 0) != 0 {
		t.Error("new matrix should be zeroed")
	}
}

func TestFromSlice(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Error("row-major layout broken")
	}
	defer func() {
		if recover() == nil {
			t.Error("FromSlice with wrong length must panic")
		}
	}()
	FromSlice(2, 2, []float64{1})
}

func TestMul(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := Mul(a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !c.Equal(want, 1e-12) {
		t.Errorf("got %v want %v", c, want)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New[float64](4, 4)
	for i := range a.Data() {
		a.Data()[i] = rng.NormFloat64()
	}
	id := New[float64](4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	if !Mul(a, id).Equal(a, 1e-12) || !Mul(id, a).Equal(a, 1e-12) {
		t.Error("identity multiplication broken")
	}
}

func TestMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched Mul must panic")
		}
	}()
	Mul(New[float64](2, 3), New[float64](2, 3))
}

func TestMulTransInto(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(4, 3, []float64{1, 0, 1, 0, 1, 0, 2, 2, 2, -1, -1, -1})
	dst := New[float64](2, 4)
	MulTransInto(dst, a, b)
	want := Mul(a, b.Transpose())
	if !dst.Equal(want, 1e-12) {
		t.Errorf("MulTransInto mismatch: %v vs %v", dst, want)
	}
}

func TestTransMulInto(t *testing.T) {
	a := FromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 4, []float64{1, 0, 1, 0, 0, 1, 0, 1, 2, 2, 2, 2})
	dst := New[float64](2, 4)
	TransMulInto(dst, a, b)
	want := Mul(a.Transpose(), b)
	if !dst.Equal(want, 1e-12) {
		t.Errorf("TransMulInto mismatch: %v vs %v", dst, want)
	}
}

func TestTranspose(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatal("transpose dims")
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Error("transpose values")
	}
	if !tr.Transpose().Equal(m, 0) {
		t.Error("double transpose must be identity")
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		a, b, c := randMat(rng, 3, 4), randMat(rng, 4, 2), randMat(rng, 2, 5)
		left := Mul(Mul(a, b), c)
		right := Mul(a, Mul(b, c))
		return left.Equal(right, 1e-9)
	}
	for i := 0; i < 50; i++ {
		if !f() {
			t.Fatal("matrix multiplication not associative")
		}
	}
}

func randMat(rng *rand.Rand, r, c int) *Dense[float64] {
	m := New[float64](r, c)
	for i := range m.Data() {
		m.Data()[i] = rng.NormFloat64()
	}
	return m
}

func TestAddSubHadamard(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{5, 6, 7, 8})
	sum := New[float64](2, 2)
	AddInto(sum, a, b)
	if !sum.Equal(FromSlice(2, 2, []float64{6, 8, 10, 12}), 0) {
		t.Error("AddInto")
	}
	diff := New[float64](2, 2)
	SubInto(diff, b, a)
	if !diff.Equal(FromSlice(2, 2, []float64{4, 4, 4, 4}), 0) {
		t.Error("SubInto")
	}
	had := New[float64](2, 2)
	HadamardInto(had, a, b)
	if !had.Equal(FromSlice(2, 2, []float64{5, 12, 21, 32}), 0) {
		t.Error("HadamardInto")
	}
	// Aliasing: dst == a.
	AddInto(a, a, b)
	if !a.Equal(FromSlice(2, 2, []float64{6, 8, 10, 12}), 0) {
		t.Error("aliased AddInto")
	}
}

func TestScaleAXPY(t *testing.T) {
	m := FromSlice(1, 3, []float64{1, 2, 3})
	m.Scale(2)
	if !m.Equal(FromSlice(1, 3, []float64{2, 4, 6}), 0) {
		t.Error("Scale")
	}
	x := FromSlice(1, 3, []float64{1, 1, 1})
	m.AXPY(-2, x)
	if !m.Equal(FromSlice(1, 3, []float64{0, 2, 4}), 0) {
		t.Error("AXPY")
	}
}

func TestAddRowVecSumRows(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	v := FromSlice(1, 3, []float64{10, 20, 30})
	m.AddRowVec(v)
	if !m.Equal(FromSlice(2, 3, []float64{11, 22, 33, 14, 25, 36}), 0) {
		t.Error("AddRowVec")
	}
	sums := New[float64](1, 3)
	m.SumRowsInto(sums)
	if !sums.Equal(FromSlice(1, 3, []float64{25, 47, 69}), 0) {
		t.Error("SumRowsInto")
	}
}

func TestApplyArgMax(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 5, 3, -1, -5, -3})
	m.Apply(func(v float64) float64 { return v * v })
	if m.At(1, 1) != 25 {
		t.Error("Apply")
	}
	if m.ArgMaxRow(0) != 1 {
		t.Error("ArgMaxRow row 0")
	}
	if m.ArgMaxRow(1) != 1 {
		t.Error("ArgMaxRow row 1")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Error("Clone must deep copy")
	}
	a.CopyFrom(b)
	if a.At(0, 0) != 99 {
		t.Error("CopyFrom")
	}
}

func TestNorms(t *testing.T) {
	m := FromSlice(1, 3, []float64{3, -4, 0})
	if m.FrobeniusNorm2() != 25 {
		t.Error("FrobeniusNorm2")
	}
	if m.MaxAbs() != 4 {
		t.Error("MaxAbs")
	}
}

func TestFloat32Matrices(t *testing.T) {
	a := FromSlice[float32](2, 2, []float32{1, 2, 3, 4})
	b := FromSlice[float32](2, 2, []float32{5, 6, 7, 8})
	c := Mul(a, b)
	want := FromSlice[float32](2, 2, []float32{19, 22, 43, 50})
	if !c.Equal(want, 1e-5) {
		t.Errorf("float32 mul: %v", c)
	}
}

func TestFillZero(t *testing.T) {
	m := New[float64](2, 2)
	m.Fill(3)
	if m.At(1, 1) != 3 {
		t.Error("Fill")
	}
	m.Zero()
	if m.FrobeniusNorm2() != 0 {
		t.Error("Zero")
	}
}

func TestRowAliasing(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	r := m.Row(1)
	r[0] = 99
	if m.At(1, 0) != 99 {
		t.Error("Row must alias storage")
	}
}

// --- Fixed-point matrices ---

func TestFixedFromAndBack(t *testing.T) {
	m := FromSlice(2, 2, []float64{1.5, -2.25, 0, 100})
	f := FixedFrom(m)
	back := f.Float()
	if !back.Equal(m, 1e-4) {
		t.Errorf("fixed round trip: %v vs %v", back, m)
	}
}

func TestMulFixedMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randMat(rng, 3, 5)
	b := randMat(rng, 5, 4)
	want := Mul(a, b)
	fa, fb := FixedFrom(a), FixedFrom(b)
	dst := NewFixed(3, 4)
	MulFixedInto(dst, fa, fb)
	got := dst.Float()
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(got.At(i, j)-want.At(i, j)) > 1e-3 {
				t.Errorf("fixed mul (%d,%d): %g vs %g", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestMulFixedSaturates(t *testing.T) {
	a := NewFixed(1, 2)
	a.Set(0, 0, fixed.FromInt(30000))
	a.Set(0, 1, fixed.FromInt(30000))
	b := NewFixed(2, 1)
	b.Set(0, 0, fixed.FromInt(30000))
	b.Set(1, 0, fixed.FromInt(30000))
	dst := NewFixed(1, 1)
	MulFixedInto(dst, a, b)
	if dst.At(0, 0) != fixed.Max {
		t.Errorf("expected saturation, got %v", dst.At(0, 0))
	}
}

func TestFixedAddRowVecArgMax(t *testing.T) {
	f := NewFixed(2, 3)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			f.Set(i, j, fixed.FromInt(i+j))
		}
	}
	v := NewFixed(1, 3)
	v.Set(0, 2, fixed.FromInt(10))
	f.AddRowVec(v)
	if f.At(0, 2) != fixed.FromInt(12) {
		t.Error("Fixed.AddRowVec")
	}
	if f.ArgMaxRow(0) != 2 {
		t.Error("Fixed.ArgMaxRow")
	}
	f.Apply(func(q fixed.Q16) fixed.Q16 { return q.Neg() })
	if f.ArgMaxRow(0) != 0 {
		t.Error("Fixed.Apply/ArgMax after negation")
	}
}

func TestQuickMulDistributes(t *testing.T) {
	// (a+b)·c == a·c + b·c on random small ints (exact in float64).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		intMat := func(r, c int) *Dense[float64] {
			m := New[float64](r, c)
			for i := range m.Data() {
				m.Data()[i] = float64(rng.Intn(21) - 10)
			}
			return m
		}
		a, b, c := intMat(3, 3), intMat(3, 3), intMat(3, 3)
		ab := New[float64](3, 3)
		AddInto(ab, a, b)
		left := Mul(ab, c)
		right := New[float64](3, 3)
		AddInto(right, Mul(a, c), Mul(b, c))
		return left.Equal(right, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMulInto16(b *testing.B)  { benchMul(b, 16) }
func BenchmarkMulInto64(b *testing.B)  { benchMul(b, 64) }
func BenchmarkMulInto128(b *testing.B) { benchMul(b, 128) }

func benchMul(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(1))
	x, y := randMat(rng, n, n), randMat(rng, n, n)
	dst := New[float64](n, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulInto(dst, x, y)
	}
}

func BenchmarkMulFixed64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := FixedFrom(randMat(rng, 64, 64)), FixedFrom(randMat(rng, 64, 64))
	dst := NewFixed(64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulFixedInto(dst, x, y)
	}
}
