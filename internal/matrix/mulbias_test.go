package matrix

import (
	"math/rand"
	"testing"
)

func randDense32(rng *rand.Rand, rows, cols, pad int) *Dense[float32] {
	m := NewPadded[float32](rows, cols, pad)
	d := m.Data()
	for i := range d {
		d[i] = float32(rng.NormFloat64())
	}
	return m
}

// TestMulBias32MatchesPortable pins the arch-dispatch contract: the
// vectorized MulBias32 fast path (taken when operands carry NewPadded
// spare capacity and n ≤ 16) must be bitwise-identical to the portable
// MulBiasInto reference for every shape, including n > 16 fallback shapes
// and row views below the allocation's high-water mark. On non-amd64
// builds both calls run the same code and the test is trivially green.
func TestMulBias32MatchesPortable(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	shapes := []struct{ rows, k, n int }{
		{1, 1, 1}, {1, 4, 15}, {3, 5, 4}, {7, 15, 15},
		{64, 15, 4}, {64, 4, 16}, {5, 3, 17}, {33, 20, 31},
	}
	for _, s := range shapes {
		a := randDense32(rng, s.rows, s.k, 0)
		b := randDense32(rng, s.k, s.n, 16)
		bias := randDense32(rng, 1, s.n, 16)
		got := NewPadded[float32](s.rows, s.n, 16)
		want := New[float32](s.rows, s.n)
		MulBias32(got, a, b, bias)
		MulBiasInto(want, a, b, bias)
		for i, w := range want.Data() {
			if got.Data()[i] != w {
				t.Fatalf("shape %dx%dx%d element %d: fast %v != portable %v (not bitwise equal)",
					s.rows, s.k, s.n, i, got.Data()[i], w)
			}
		}
		// A row view of a larger padded allocation must also take the fast
		// path safely: the store overhang lands inside owned backing.
		if s.rows > 1 {
			full := NewPadded[float32](s.rows, s.n, 16)
			view := full.SliceRows(s.rows - 1)
			aView := a.SliceRows(s.rows - 1)
			MulBias32(&view, &aView, b, bias)
			for i := 0; i < (s.rows-1)*s.n; i++ {
				if view.Data()[i] != want.Data()[i] {
					t.Fatalf("shape %dx%dx%d view element %d mismatch", s.rows, s.k, s.n, i)
				}
			}
		}
	}
}

// TestMulBias32UnpaddedFallsBack checks that operands without spare
// capacity never reach the over-width kernel: results still match the
// reference (the wrapper must fall back to the portable loop).
func TestMulBias32UnpaddedFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	a := randDense32(rng, 4, 6, 0)
	b := randDense32(rng, 6, 5, 0)
	bias := randDense32(rng, 1, 5, 0)
	got := New[float32](4, 5)
	want := New[float32](4, 5)
	MulBias32(got, a, b, bias)
	MulBiasInto(want, a, b, bias)
	for i, w := range want.Data() {
		if got.Data()[i] != w {
			t.Fatalf("element %d: %v != %v", i, got.Data()[i], w)
		}
	}
}
