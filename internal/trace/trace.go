// Package trace is the tracepoint layer standing in for the LTTng-visible
// kernel tracepoints the paper collects training data from (§4: "we used
// built-in kernel tracepoints (e.g., add_to_page_cache,
// writeback_dirty_page). These tracepoints track file-backed pages.").
//
// The simulated memory-management subsystem (internal/pagecache) emits
// events through a Tracer; KML applications register hook functions that
// run inline on the I/O path, so hooks must be cheap and non-blocking —
// in the readahead application a hook is a single lock-free ring push.
package trace

import (
	"sync/atomic"
	"time"
)

// Point identifies a tracepoint. The names mirror the kernel tracepoints
// the paper instruments.
type Point uint8

// Tracepoints emitted by the simulated memory-management subsystem.
const (
	// AddToPageCache fires when a file-backed page is inserted into the
	// page cache (reads, readahead, and write allocations).
	AddToPageCache Point = iota
	// WritebackDirtyPage fires when a dirty page is written back to the
	// device.
	WritebackDirtyPage
	numPoints
)

// String returns the kernel-style tracepoint name.
func (p Point) String() string {
	switch p {
	case AddToPageCache:
		return "add_to_page_cache"
	case WritebackDirtyPage:
		return "writeback_dirty_page"
	default:
		return "unknown"
	}
}

// Event is one tracepoint firing. It carries exactly what the paper's
// readahead data-collection functions record: "the inode number, page
// offset of the files that are accessed, and time difference from the
// beginning of the execution of the KML kernel module".
type Event struct {
	Point  Point
	Inode  uint64
	Offset int64 // page index within the file
	Time   time.Duration
}

// Hook is an inline data-collection function (§4). It runs on the
// simulated I/O path and must not block.
type Hook func(Event)

// Tracer dispatches events to registered hooks and keeps per-point
// counts. Counts are atomic: emitters run on the I/O path while
// observers (telemetry snapshots, -status endpoints) read them from
// other goroutines, so a plain uint64 add would be a data race. Hooks
// must all be registered before the first Emit.
type Tracer struct {
	hooks   []Hook
	enabled atomic.Bool
	counts  [numPoints]atomic.Uint64
}

// New returns an enabled tracer with no hooks.
func New() *Tracer {
	t := &Tracer{}
	t.enabled.Store(true)
	return t
}

// Register adds a hook. Hooks cannot be removed individually; a KML module
// unloading corresponds to SetEnabled(false).
func (t *Tracer) Register(h Hook) {
	if h == nil {
		panic("trace: nil hook")
	}
	t.hooks = append(t.hooks, h)
}

// SetEnabled turns event dispatch on or off (counts still accumulate only
// while enabled).
func (t *Tracer) SetEnabled(on bool) { t.enabled.Store(on) }

// Enabled reports whether dispatch is on.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// Emit dispatches one event to all hooks. With no hooks registered (or
// disabled) it is nearly free, like a disabled kernel tracepoint. It runs
// inline on the simulated I/O path, so it must not allocate; the count
// update is one atomic add, safe against concurrent Count/Total readers.
//
//kml:hotpath
func (t *Tracer) Emit(ev Event) {
	if !t.enabled.Load() {
		return
	}
	t.counts[ev.Point].Add(1)
	for _, h := range t.hooks {
		h(ev)
	}
}

// Count returns the number of events emitted for a tracepoint. It is
// safe to call while other goroutines emit.
func (t *Tracer) Count(p Point) uint64 {
	if p >= numPoints {
		return 0
	}
	return t.counts[p].Load()
}

// Total returns the number of events emitted across all tracepoints.
// It is safe to call while other goroutines emit.
func (t *Tracer) Total() uint64 {
	var sum uint64
	for i := range t.counts {
		sum += t.counts[i].Load()
	}
	return sum
}
