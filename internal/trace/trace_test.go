package trace

import (
	"sync"
	"testing"
	"time"
)

func TestEmitDispatchesToHooks(t *testing.T) {
	tr := New()
	var got []Event
	tr.Register(func(ev Event) { got = append(got, ev) })
	ev := Event{Point: AddToPageCache, Inode: 7, Offset: 42, Time: time.Second}
	tr.Emit(ev)
	if len(got) != 1 || got[0] != ev {
		t.Fatalf("hook saw %v", got)
	}
}

func TestMultipleHooks(t *testing.T) {
	tr := New()
	a, b := 0, 0
	tr.Register(func(Event) { a++ })
	tr.Register(func(Event) { b++ })
	tr.Emit(Event{Point: AddToPageCache})
	if a != 1 || b != 1 {
		t.Errorf("hooks saw %d/%d", a, b)
	}
}

func TestDisabledTracerSkips(t *testing.T) {
	tr := New()
	calls := 0
	tr.Register(func(Event) { calls++ })
	tr.SetEnabled(false)
	if tr.Enabled() {
		t.Error("Enabled() after disable")
	}
	tr.Emit(Event{Point: AddToPageCache})
	if calls != 0 {
		t.Error("disabled tracer dispatched")
	}
	if tr.Count(AddToPageCache) != 0 {
		t.Error("disabled tracer counted")
	}
}

func TestCounts(t *testing.T) {
	tr := New()
	tr.Emit(Event{Point: AddToPageCache})
	tr.Emit(Event{Point: AddToPageCache})
	tr.Emit(Event{Point: WritebackDirtyPage})
	if tr.Count(AddToPageCache) != 2 || tr.Count(WritebackDirtyPage) != 1 {
		t.Error("per-point counts")
	}
	if tr.Total() != 3 {
		t.Errorf("total = %d", tr.Total())
	}
	if tr.Count(Point(99)) != 0 {
		t.Error("unknown point should count 0")
	}
}

func TestPointNames(t *testing.T) {
	if AddToPageCache.String() != "add_to_page_cache" {
		t.Error(AddToPageCache.String())
	}
	if WritebackDirtyPage.String() != "writeback_dirty_page" {
		t.Error(WritebackDirtyPage.String())
	}
	if Point(99).String() != "unknown" {
		t.Error("unknown point name")
	}
}

func TestNilHookPanics(t *testing.T) {
	tr := New()
	defer func() {
		if recover() == nil {
			t.Error("nil hook must panic")
		}
	}()
	tr.Register(nil)
}

func BenchmarkEmitOneHook(b *testing.B) {
	tr := New()
	var sink uint64
	tr.Register(func(ev Event) { sink += ev.Inode })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Point: AddToPageCache, Inode: uint64(i), Offset: int64(i)})
	}
	_ = sink
}

// TestConcurrentEmitAndCount reads the per-point counts while emitters
// run — exactly what a telemetry snapshot or -status endpoint does
// against a live tracer. Before counts became atomic this was a data
// race (plain uint64 add vs unsynchronized read); under -race this test
// pins the fix.
func TestConcurrentEmitAndCount(t *testing.T) {
	tr := New()
	const emitters = 4
	const perEmitter = 20_000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for e := 0; e < emitters; e++ {
		wg.Add(1)
		go func(p Point) {
			defer wg.Done()
			for i := 0; i < perEmitter; i++ {
				tr.Emit(Event{Point: p, Inode: uint64(i)})
			}
		}(Point(e % 2))
	}
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			a := tr.Count(AddToPageCache)
			b := tr.Count(WritebackDirtyPage)
			total := tr.Total()
			// Counts only grow; a stale total may trail the fresh ones
			// but no read may exceed the final tally.
			if a+b > emitters*perEmitter || total > emitters*perEmitter {
				t.Errorf("counts overshot: %d + %d, total %d", a, b, total)
				return
			}
			_ = tr.Enabled()
		}
	}()
	wg.Wait()
	close(stop)
	readerWG.Wait()
	if got := tr.Total(); got != emitters*perEmitter {
		t.Fatalf("Total() = %d, want %d", got, emitters*perEmitter)
	}
}
