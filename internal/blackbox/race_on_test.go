//go:build race

package blackbox

// raceEnabled reports whether the race detector is active. The overhead
// self-check skips under it: the detector intercepts the mutex and the
// CRC loop, so the timing assertion would measure the detector, not the
// recorder.
const raceEnabled = true
