// Package blackbox is the durable flight recorder: a fixed-size
// circular on-disk ring that continuously persists the in-memory
// observability state (metrics snapshots, time-series points, decision
// traces, learner transitions) so the last seconds before ANY exit —
// SIGKILL, OOM, panic, power loss — can be reconstructed from disk.
//
// The file is a header sector followed by a ring of records. Every
// record is sector-aligned and independently CRC-guarded, so recovery
// never depends on an index or a clean shutdown: kml-postmortem scans
// sector boundaries, keeps everything whose checksums verify, and
// tolerates a torn tail record (the one write the crash interrupted).
// Record payloads reuse the canonical wire encodings the protocol
// already fuzzes (mserve metrics/learn-status, tsrec series, dtrace
// traces), so one set of codecs serves both the wire and the disk.
//
// File layout (all integers little-endian):
//
//	sector 0 (FileHeaderSize bytes, zero-padded):
//	  [8]byte magic "KMLBBOX1"
//	  u32     format version (1)
//	  u32     sector size (512)
//	  u64     ring bytes (file size - header sector)
//	  i64     created unix nanos
//	  u32     crc32-IEEE of bytes [0,32)
//
//	ring (repeated records, each starting on a sector boundary):
//	  u32     record magic "KBR1"
//	  u8      kind (KindMetrics..KindLearn)
//	  [3]byte zero padding
//	  u64     seq (monotonic from 1, never reused within a file)
//	  i64     record unix nanos
//	  u32     payload length (≤ MaxRecordPayload)
//	  u32     crc32-IEEE of the payload
//	  u32     crc32-IEEE of the 32 header bytes above
//	  payload, zero-padded to the next sector boundary
//
// A record never wraps across the ring end: when the tail is too short
// the writer restarts at offset 0 and the stale tail bytes simply stop
// decoding (old records there remain recoverable until overwritten).
package blackbox

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

const (
	// SectorSize is the write granularity: every record starts on a
	// 512-byte boundary, the sector size disks have honored for decades,
	// so a torn write clobbers at most the record it interrupted plus
	// the records its claimed span overlaps — never the alignment of the
	// rest of the ring.
	SectorSize = 512

	// FileHeaderSize is the header sector prefixed to the ring.
	FileHeaderSize = SectorSize

	// FormatVersion is the on-disk format revision.
	FormatVersion = 1

	// RecordHeaderSize is the fixed prefix of every record.
	RecordHeaderSize = 36

	// MaxRecordPayload bounds one record's payload, matching mserve's
	// frame ceiling: anything the wire can carry, the black box can hold.
	MaxRecordPayload = 1 << 20

	// MinFileSize is the smallest useful black box: the header sector
	// plus 64 KiB of ring.
	MinFileSize = FileHeaderSize + 64*1024
)

// fileMagic opens every black-box file.
var fileMagic = [8]byte{'K', 'M', 'L', 'B', 'B', 'O', 'X', '1'}

// recordMagic opens every record header ("KBR1" little-endian).
const recordMagic uint32 = 0x3152424B

// Kind identifies a record's payload encoding.
type Kind uint8

// Record kinds and their payload codecs.
const (
	// KindMetrics: mserve.AppendMetrics / ParseMetrics.
	KindMetrics Kind = 1
	// KindTimeSeries: tsrec.AppendSeries / ParseSeries.
	KindTimeSeries Kind = 2
	// KindTraces: dtrace.AppendTraces / ParseTraces.
	KindTraces Kind = 3
	// KindLearn: mserve.AppendLearnStatus / ParseLearnStatus.
	KindLearn Kind = 4
)

// String names a kind for reports.
func (k Kind) String() string {
	switch k {
	case KindMetrics:
		return "metrics"
	case KindTimeSeries:
		return "timeseries"
	case KindTraces:
		return "traces"
	case KindLearn:
		return "learn"
	}
	return "?"
}

// ErrNotBlackbox reports a file whose header does not verify as a
// black box (wrong magic, unsupported version, corrupt header CRC).
var ErrNotBlackbox = errors.New("blackbox: not a black-box file")

// alignSector rounds n up to the next sector boundary.
//
//kml:hotpath
func alignSector(n int) int {
	return (n + SectorSize - 1) &^ (SectorSize - 1)
}

// putFileHeader encodes the header sector into dst[:FileHeaderSize].
func putFileHeader(dst []byte, ringBytes int64, createdNanos int64) {
	for i := range dst[:FileHeaderSize] {
		dst[i] = 0
	}
	copy(dst, fileMagic[:])
	binary.LittleEndian.PutUint32(dst[8:], FormatVersion)
	binary.LittleEndian.PutUint32(dst[12:], SectorSize)
	binary.LittleEndian.PutUint64(dst[16:], uint64(ringBytes))
	binary.LittleEndian.PutUint64(dst[24:], uint64(createdNanos))
	binary.LittleEndian.PutUint32(dst[32:], crc32.ChecksumIEEE(dst[:32]))
}

// parseFileHeader validates a header sector and returns the declared
// ring size and creation stamp.
func parseFileHeader(p []byte) (ringBytes int64, createdNanos int64, err error) {
	if len(p) < FileHeaderSize {
		return 0, 0, ErrNotBlackbox
	}
	if [8]byte(p[:8]) != fileMagic ||
		binary.LittleEndian.Uint32(p[8:]) != FormatVersion ||
		binary.LittleEndian.Uint32(p[12:]) != SectorSize ||
		binary.LittleEndian.Uint32(p[32:]) != crc32.ChecksumIEEE(p[:32]) {
		return 0, 0, ErrNotBlackbox
	}
	ringBytes = int64(binary.LittleEndian.Uint64(p[16:]))
	createdNanos = int64(binary.LittleEndian.Uint64(p[24:]))
	if ringBytes <= 0 || ringBytes%SectorSize != 0 {
		return 0, 0, ErrNotBlackbox
	}
	return ringBytes, createdNanos, nil
}

// putRecordHeader encodes one record header into dst[:RecordHeaderSize].
// The payload CRC is computed by the caller (it already holds the
// payload bytes); this keeps the function a pure field encoder.
//
//kml:hotpath
func putRecordHeader(dst []byte, kind Kind, seq uint64, timeNanos int64, payloadLen int, payloadCRC uint32) {
	binary.LittleEndian.PutUint32(dst, recordMagic)
	dst[4] = byte(kind)
	dst[5], dst[6], dst[7] = 0, 0, 0
	binary.LittleEndian.PutUint64(dst[8:], seq)
	binary.LittleEndian.PutUint64(dst[16:], uint64(timeNanos))
	binary.LittleEndian.PutUint32(dst[24:], uint32(payloadLen))
	binary.LittleEndian.PutUint32(dst[28:], payloadCRC)
	binary.LittleEndian.PutUint32(dst[32:], crc32.ChecksumIEEE(dst[:32]))
}
