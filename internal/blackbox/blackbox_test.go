package blackbox

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/telemetry/tsrec"
)

func openTestBox(t *testing.T, size int64) (*Recorder, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bb.bin")
	r, err := Open(Config{Path: path, Size: size})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return r, path
}

// testPayload builds a deterministic payload of length n seeded by s.
func testPayload(n int, s byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = s + byte(i*7)
	}
	return p
}

func TestRecordRoundTrip(t *testing.T) {
	r, path := openTestBox(t, 0)
	want := []struct {
		kind Kind
		time int64
		n    int
	}{
		{KindMetrics, 1000, 1},
		{KindTimeSeries, 2000, 400},
		{KindTraces, 3000, 513}, // spans two sectors
		{KindLearn, 4000, 0},    // empty payload is legal
		{KindMetrics, 5000, 4096},
	}
	for i, w := range want {
		if !r.Record(w.kind, w.time, testPayload(w.n, byte(i))) {
			t.Fatalf("record %d rejected", i)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	res, err := ScanFile(path)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if res.Torn != 0 {
		t.Fatalf("clean box scanned %d torn records", res.Torn)
	}
	if len(res.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(res.Records), len(want))
	}
	for i, rec := range res.Records {
		w := want[i]
		if rec.Seq != uint64(i+1) || rec.Kind != w.kind || rec.TimeNanos != w.time {
			t.Fatalf("record %d = seq %d kind %v t %d, want seq %d kind %v t %d",
				i, rec.Seq, rec.Kind, rec.TimeNanos, i+1, w.kind, w.time)
		}
		if !bytes.Equal(rec.Payload, testPayload(w.n, byte(i))) {
			t.Fatalf("record %d payload mismatch", i)
		}
		if rec.Offset%SectorSize != 0 {
			t.Fatalf("record %d offset %d not sector-aligned", i, rec.Offset)
		}
	}
}

func TestFreshBoxScansEmpty(t *testing.T) {
	r, path := openTestBox(t, 0)
	defer r.Close()
	// Scannable before a single record or flush: Open syncs the header.
	res, err := ScanFile(path)
	if err != nil {
		t.Fatalf("scan of fresh box: %v", err)
	}
	if len(res.Records) != 0 || res.Torn != 0 {
		t.Fatalf("fresh box: %d records, %d torn", len(res.Records), res.Torn)
	}
	if res.RingBytes != r.RingBytes() {
		t.Fatalf("ring bytes %d, want %d", res.RingBytes, r.RingBytes())
	}
}

func TestWrapKeepsLatest(t *testing.T) {
	r, path := openTestBox(t, MinFileSize) // 128-sector ring
	perRing := int(r.RingBytes()) / SectorSize
	total := perRing*2 + perRing/2
	for i := 0; i < total; i++ {
		// 100-byte payload: exactly one sector per record.
		if !r.Record(KindMetrics, int64(i), testPayload(100, byte(i))) {
			t.Fatalf("record %d rejected", i)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	res, err := ScanFile(path)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if res.Torn != 0 {
		t.Fatalf("wrap produced %d torn records", res.Torn)
	}
	if len(res.Records) != perRing {
		t.Fatalf("recovered %d records, want the newest %d", len(res.Records), perRing)
	}
	for i, rec := range res.Records {
		wantSeq := uint64(total - perRing + i + 1)
		if rec.Seq != wantSeq {
			t.Fatalf("record %d seq %d, want %d (keep-latest)", i, rec.Seq, wantSeq)
		}
	}
}

func TestOversizedAndClosedDrops(t *testing.T) {
	r, _ := openTestBox(t, MinFileSize)
	if r.Record(KindTraces, 1, make([]byte, MaxRecordPayload+1)) {
		t.Fatal("over-MaxRecordPayload record accepted")
	}
	if r.Record(KindTraces, 2, make([]byte, int(r.RingBytes()))) {
		t.Fatal("larger-than-ring record accepted")
	}
	if st := r.Status(); st.Dropped != 2 || st.Records != 0 {
		t.Fatalf("status = %+v, want 2 drops, 0 records", st)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if r.Record(KindTraces, 3, []byte{1}) {
		t.Fatal("record after Close accepted")
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestResumeContinuesSequence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bb.bin")
	r1, err := Open(Config{Path: path})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 5; i++ {
		r1.Record(KindMetrics, int64(i), testPayload(64, byte(i)))
	}
	if err := r1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	r2, err := Open(Config{Path: path})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if st := r2.Status(); st.TornAtOpen != 0 {
		t.Fatalf("clean resume reported %d torn", st.TornAtOpen)
	}
	for i := 5; i < 8; i++ {
		r2.Record(KindTraces, int64(i), testPayload(64, byte(i)))
	}
	if err := r2.Close(); err != nil {
		t.Fatalf("close 2: %v", err)
	}
	res, err := ScanFile(path)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(res.Records) != 8 || res.Torn != 0 {
		t.Fatalf("recovered %d records %d torn, want 8/0", len(res.Records), res.Torn)
	}
	for i, rec := range res.Records {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d seq %d: resume restarted the sequence", i, rec.Seq)
		}
	}
	if res.Records[7].Kind != KindTraces {
		t.Fatalf("post-resume record kind %v", res.Records[7].Kind)
	}
}

func TestGeometryChangeRecreates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bb.bin")
	r1, err := Open(Config{Path: path})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	r1.Record(KindMetrics, 1, testPayload(10, 0))
	if err := r1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	r2, err := Open(Config{Path: path, Size: MinFileSize})
	if err != nil {
		t.Fatalf("reopen resized: %v", err)
	}
	defer r2.Close()
	if st := r2.Status(); st.RingBytes != uint64(MinFileSize-FileHeaderSize) {
		t.Fatalf("resized ring = %d bytes", st.RingBytes)
	}
	r2.Record(KindMetrics, 2, testPayload(10, 1))
	if err := r2.Flush(true); err != nil {
		t.Fatalf("flush: %v", err)
	}
	res, err := ScanFile(path)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("recreated box holds %d records, want 1", len(res.Records))
	}
	if res.Records[0].Seq != 1 {
		t.Fatalf("recreated box starts at seq %d, want a fresh seq 1", res.Records[0].Seq)
	}
}

func TestMergeTimeSeries(t *testing.T) {
	mk := func(t0 int64, n int) []byte {
		s := tsrec.Series{
			IntervalNanos: 1000,
			Counters:      []string{"rows"},
			Hists:         []string{"lat"},
		}
		for i := 0; i < n; i++ {
			s.Points = append(s.Points, tsrec.Point{TimeNanos: t0 + int64(i)*1000})
		}
		return tsrec.AppendSeries(nil, s)
	}
	recs := []Record{
		{Seq: 1, Kind: KindTimeSeries, Payload: mk(0, 3)},
		{Seq: 2, Kind: KindMetrics, Payload: []byte{0, 0, 0, 0}},
		{Seq: 3, Kind: KindTimeSeries, Payload: mk(3000, 2)},
		{Seq: 4, Kind: KindTimeSeries, Payload: []byte{1, 2, 3}}, // corrupt
	}
	s, skipped := MergeTimeSeries(recs)
	if skipped != 1 {
		t.Fatalf("skipped %d, want 1", skipped)
	}
	if len(s.Points) != 5 || s.IntervalNanos != 1000 ||
		len(s.Counters) != 1 || s.Counters[0] != "rows" {
		t.Fatalf("merged series %+v", s)
	}
	for i, p := range s.Points {
		if p.TimeNanos != int64(i)*1000 {
			t.Fatalf("point %d at %d, want %d", i, p.TimeNanos, int64(i)*1000)
		}
	}
}
