// Torn-write recovery matrix: a black box is truncated at every record
// boundary and cut/corrupted inside every record, and recovery must
// keep every intact record while reporting exactly the one torn tail —
// the invariant that makes a post-SIGKILL report trustworthy.
package blackbox

import (
	"os"
	"path/filepath"
	"testing"
)

// buildBox writes a box with records of deliberately varied sizes (one
// to five sectors) and returns the file image plus each record's
// [start, end) span within the file.
func buildBox(t *testing.T) (img []byte, spans [][2]int, payloads [][]byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bb.bin")
	r, err := Open(Config{Path: path, Size: MinFileSize})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	sizes := []int{100, 600, 476, 2000, 1, 1500, 0, 900}
	off := FileHeaderSize
	for i, n := range sizes {
		p := testPayload(n, byte(i))
		if !r.Record(Kind(1+i%4), int64(1000*(i+1)), p) {
			t.Fatalf("record %d rejected", i)
		}
		total := alignSector(RecordHeaderSize + n)
		spans = append(spans, [2]int{off, off + total})
		payloads = append(payloads, p)
		off += total
	}
	if err := r.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	img, err = os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return img, spans, payloads
}

// checkRecovered asserts the scan holds exactly records [0, n) intact.
func checkRecovered(t *testing.T, res ScanResult, payloads [][]byte, n int) {
	t.Helper()
	if len(res.Records) != n {
		t.Fatalf("recovered %d records, want %d", len(res.Records), n)
	}
	for i, rec := range res.Records {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d seq %d, want %d", i, rec.Seq, i+1)
		}
		if string(rec.Payload) != string(payloads[i]) {
			t.Fatalf("record %d payload corrupted in recovery", i)
		}
	}
}

func TestRecoveryTruncateAtEveryBoundary(t *testing.T) {
	img, spans, payloads := buildBox(t)
	for i, sp := range spans {
		res, err := Scan(img[:sp[0]])
		if err != nil {
			t.Fatalf("boundary %d: %v", i, err)
		}
		if res.Torn != 0 {
			t.Fatalf("boundary %d: clean truncation reported %d torn", i, res.Torn)
		}
		checkRecovered(t, res, payloads, i)
	}
	// And at the final boundary: everything intact.
	res, err := Scan(img[:spans[len(spans)-1][1]])
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn != 0 {
		t.Fatalf("full image reported %d torn", res.Torn)
	}
	checkRecovered(t, res, payloads, len(spans))
}

func TestRecoveryTruncateMidRecord(t *testing.T) {
	img, spans, payloads := buildBox(t)
	for i, sp := range spans {
		// Cut points inside record i: inside the header (past the
		// magic), just past the header, mid-payload, one byte short.
		cuts := []int{sp[0] + 8, sp[0] + RecordHeaderSize + 1, (sp[0] + sp[1]) / 2, sp[1] - 1}
		for _, cut := range cuts {
			if cut <= sp[0] || cut >= sp[1] {
				continue
			}
			res, err := Scan(img[:cut])
			if err != nil {
				t.Fatalf("record %d cut %d: %v", i, cut, err)
			}
			if res.Torn != 1 {
				t.Fatalf("record %d cut %d: %d torn, want exactly 1", i, cut, res.Torn)
			}
			checkRecovered(t, res, payloads, i)
		}
	}
}

func TestRecoveryCorruptPayload(t *testing.T) {
	img, spans, payloads := buildBox(t)
	for i, sp := range spans {
		if len(payloads[i]) == 0 {
			continue // no payload byte to flip
		}
		mut := append([]byte(nil), img...)
		mut[sp[0]+RecordHeaderSize] ^= 0xFF
		res, err := Scan(mut)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if res.Torn != 1 {
			t.Fatalf("record %d payload corruption: %d torn, want 1", i, res.Torn)
		}
		// Every OTHER record must survive untouched.
		if len(res.Records) != len(spans)-1 {
			t.Fatalf("record %d corruption dropped %d records, want 1",
				i, len(spans)-len(res.Records))
		}
		for _, rec := range res.Records {
			j := int(rec.Seq) - 1
			if j == i {
				t.Fatalf("corrupted record %d recovered as intact", i)
			}
			if string(rec.Payload) != string(payloads[j]) {
				t.Fatalf("record %d payload damaged by record %d corruption", j, i)
			}
		}
	}
}

func TestRecoveryCorruptHeader(t *testing.T) {
	img, spans, _ := buildBox(t)
	for i, sp := range spans {
		mut := append([]byte(nil), img...)
		mut[sp[0]+8] ^= 0xFF // flip a seq byte: header CRC now fails
		res, err := Scan(mut)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if res.Torn != 1 {
			t.Fatalf("record %d header corruption: %d torn, want 1", i, res.Torn)
		}
		if len(res.Records) != len(spans)-1 {
			t.Fatalf("record %d header corruption kept %d records, want %d",
				i, len(res.Records), len(spans)-1)
		}
	}
}

// TestRecoveryGarbageIsNotTorn pins the classification: sectors that do
// not carry the record magic (zeroed ring, random junk) are ring noise,
// not torn records — only an interrupted record write counts.
func TestRecoveryGarbageIsNotTorn(t *testing.T) {
	img, spans, payloads := buildBox(t)
	mut := append([]byte(nil), img...)
	end := spans[len(spans)-1][1]
	for i := end; i < len(mut); i++ {
		mut[i] = byte(i * 31)
	}
	// Random junk must not fake the magic at a sector boundary.
	for off := end; off+4 <= len(mut); off += SectorSize {
		mut[off] = 0
	}
	res, err := Scan(mut)
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn != 0 {
		t.Fatalf("junk tail reported %d torn", res.Torn)
	}
	checkRecovered(t, res, payloads, len(spans))
}
