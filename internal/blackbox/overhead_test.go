package blackbox

import (
	"path/filepath"
	"testing"
	"time"
)

// RecordOverheadBudgetNanos bounds one Record call at a representative
// payload (256 bytes: a small trace batch). The cost is one payload
// CRC, a 36-byte header encode, and one copy into the staging ring —
// measured well under 200 ns — and the ISSUE gate is 1 µs/record. The
// budget exists because a regression here (an allocation, I/O sneaking
// onto the append path) would make the flight recorder perturb exactly
// the system it is supposed to observe.
const RecordOverheadBudgetNanos = 1_000

func measure(iters, rounds int, f func(n int)) float64 {
	best := time.Duration(1<<63 - 1)
	for r := 0; r < rounds; r++ {
		start := time.Now()
		f(iters)
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / float64(iters)
}

// TestBlackboxOverheadBudget fails the build when one staging-ring
// append exceeds the budget or allocates — the black-box entry in the
// repo's overhead self-checks (telemetry 50 ns, dtrace 100 ns, tsrec
// 20 µs/tick).
func TestBlackboxOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race detector intercepts the lock and CRC; timings would measure the detector")
	}
	r, err := Open(Config{Path: filepath.Join(t.TempDir(), "bb.bin")})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	payload := testPayload(256, 1)
	now := int64(0)
	perRecord := measure(20_000, 5, func(n int) {
		for i := 0; i < n; i++ {
			now += 1000
			r.Record(KindTraces, now, payload)
		}
	})
	t.Logf("record %.0f ns (budget %d ns)", perRecord, RecordOverheadBudgetNanos)
	if perRecord > RecordOverheadBudgetNanos {
		t.Fatalf("blackbox record costs %.0f ns, over the %d ns budget",
			perRecord, RecordOverheadBudgetNanos)
	}
	allocs := testing.AllocsPerRun(200, func() {
		now += 1000
		r.Record(KindTraces, now, payload)
	})
	if allocs != 0 {
		t.Fatalf("record allocates %.1f per op, want 0", allocs)
	}
}
