// Recovery: reconstructing a timeline from a black-box file with no
// help from the process that wrote it. The scanner walks sector
// boundaries, keeps every record whose header and payload CRCs verify,
// and classifies the rest: a sector that does not start with the
// record magic is just ring noise (padding, the stale tail after a
// wrap, half-overwritten old records), while a record header that
// verifies — or starts with the magic — but whose body does not is a
// TORN record, the write a crash interrupted. A cleanly written ring
// scans with zero torn records; a crash mid-flush yields exactly one
// torn tail in write order, the invariant the recovery tests pin.
package blackbox

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"

	"repro/internal/telemetry/tsrec"
)

// Record is one recovered record.
type Record struct {
	Seq       uint64
	TimeNanos int64
	Kind      Kind
	Offset    int64  // file offset of the record header
	Payload   []byte // copied out of the scanned image
}

// ScanResult is a recovered black box.
type ScanResult struct {
	RingBytes    int64
	CreatedNanos int64
	Records      []Record // sorted by Seq, ascending
	Torn         int      // records whose header or payload failed CRC
}

// Scan recovers every intact record from an in-memory black-box image.
// The image may be truncated (a partial copy of a live file): records
// extending past the end count as torn.
func Scan(data []byte) (ScanResult, error) {
	ringBytes, created, err := parseFileHeader(data)
	if err != nil {
		return ScanResult{}, err
	}
	avail := int64(len(data)) - FileHeaderSize
	if avail < 0 {
		avail = 0
	}
	if ringBytes > avail {
		ringBytes = avail &^ (SectorSize - 1)
	}
	recs, torn := scanRing(data[FileHeaderSize:FileHeaderSize+ringBytes], FileHeaderSize)
	// A truncated image may cut a record mid-payload past the last whole
	// sector; count the dangling partial sector as torn if it starts
	// like a record.
	if tail := int64(len(data)) - FileHeaderSize - ringBytes; tail >= 4 {
		p := data[FileHeaderSize+ringBytes:]
		if binary.LittleEndian.Uint32(p) == recordMagic {
			torn++
		}
	}
	return ScanResult{
		RingBytes:    ringBytes,
		CreatedNanos: created,
		Records:      recs,
		Torn:         torn,
	}, nil
}

// ScanFile reads and recovers a black-box file.
func ScanFile(path string) (ScanResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ScanResult{}, fmt.Errorf("blackbox: %w", err)
	}
	return Scan(data)
}

// scanRing walks one ring image. base is the ring's file offset, used
// only to stamp Record.Offset. Returned records are sorted by seq.
func scanRing(ring []byte, base int64) ([]Record, int) {
	var recs []Record
	torn := 0
	for off := 0; off < len(ring); {
		if len(ring)-off < RecordHeaderSize {
			// Too little room for a header; if it still opens with the
			// magic it is a torn header at the ring's physical end.
			if len(ring)-off >= 4 && binary.LittleEndian.Uint32(ring[off:]) == recordMagic {
				torn++
			}
			break
		}
		h := ring[off : off+RecordHeaderSize]
		if binary.LittleEndian.Uint32(h) != recordMagic {
			off += SectorSize
			continue
		}
		if binary.LittleEndian.Uint32(h[32:]) != crc32.ChecksumIEEE(h[:32]) {
			// Magic present but the header does not verify: a torn
			// header write. Resync at the next sector.
			torn++
			off += SectorSize
			continue
		}
		kind := Kind(h[4])
		seq := binary.LittleEndian.Uint64(h[8:])
		timeNanos := int64(binary.LittleEndian.Uint64(h[16:]))
		plen := int(binary.LittleEndian.Uint32(h[24:]))
		pcrc := binary.LittleEndian.Uint32(h[28:])
		if plen > MaxRecordPayload {
			torn++
			off += SectorSize
			continue
		}
		if off+RecordHeaderSize+plen > len(ring) {
			// The header verifies but the claimed payload runs past the
			// image: a truncated tail.
			torn++
			break
		}
		payload := ring[off+RecordHeaderSize : off+RecordHeaderSize+plen]
		if crc32.ChecksumIEEE(payload) != pcrc {
			// Torn payload. Skip the claimed span: its sectors belong to
			// the interrupted write, not to older records.
			torn++
			off += alignSector(RecordHeaderSize + plen)
			continue
		}
		recs = append(recs, Record{
			Seq:       seq,
			TimeNanos: timeNanos,
			Kind:      kind,
			Offset:    base + int64(off),
			Payload:   append([]byte(nil), payload...),
		})
		off += alignSector(RecordHeaderSize + plen)
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	return recs, torn
}

// MergeTimeSeries reassembles the KindTimeSeries records of a scan into
// one continuous series, oldest point first — the shape kml-top's
// renderer (and its -from replay) consumes. Records that fail to parse
// are skipped; the count of skipped records is returned so a report can
// disclose them. An empty scan yields an empty series.
func MergeTimeSeries(recs []Record) (tsrec.Series, int) {
	var out tsrec.Series
	skipped := 0
	for _, rec := range recs {
		if rec.Kind != KindTimeSeries {
			continue
		}
		s, err := tsrec.ParseSeries(rec.Payload)
		if err != nil {
			skipped++
			continue
		}
		if len(out.Counters) == 0 && len(out.Hists) == 0 {
			out.IntervalNanos = s.IntervalNanos
			out.Counters = s.Counters
			out.Hists = s.Hists
		}
		out.Points = append(out.Points, s.Points...)
	}
	return out, skipped
}
