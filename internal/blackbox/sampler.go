// The sampler: the bridge from the in-memory observability state to
// the on-disk ring. Each Capture incrementally drains what changed
// since the last one — new time-series points and new decision traces
// through the cursor-based ReadNewer APIs (nothing is re-persisted),
// the learner status only when its state machine moved, and a full
// metrics snapshot every capture (it is the drift-gauge trajectory a
// postmortem plots, and cheap relative to the interval). All scratch
// buffers are owned by the sampler and reused, so a capture allocates
// only what the registry snapshot itself allocates.
//
// The sampler is not goroutine-safe: it is driven either by the
// recorder's flusher (Recorder.Start(sampler.Capture)) or by explicit
// Capture calls in tests, never both concurrently.
package blackbox

import (
	"repro/internal/dtrace"
	"repro/internal/mserve"
	"repro/internal/telemetry/tsrec"
)

// Batch sizes per drained record. A full trace batch is ~18 KB on the
// wire, a full point batch ~100 KB — both far under MaxRecordPayload.
const (
	samplerTraceBatch = 64
	samplerPointBatch = 256
)

// Sampler captures one mserve.Server's observability state into a
// Recorder.
type Sampler struct {
	bb  *Recorder
	srv *mserve.Server

	scratch   []byte
	tsBuf     []tsrec.Point
	trBuf     []dtrace.Trace
	tsCursor  uint64
	trCursor  uint64
	haveLearn bool
	lastLearn mserve.LearnStatus
}

// NewSampler wires a sampler between srv and bb. Cursors start at zero,
// so the first Capture persists everything the server has retained so
// far — history from before the black box was attached is not lost.
func NewSampler(bb *Recorder, srv *mserve.Server) *Sampler {
	return &Sampler{
		bb:    bb,
		srv:   srv,
		tsBuf: make([]tsrec.Point, samplerPointBatch),
		trBuf: make([]dtrace.Trace, samplerTraceBatch),
	}
}

// Capture drains everything new since the previous capture into the
// recorder, stamped nowNanos. Durability still requires a flush; the
// recorder's flusher calls Capture immediately before each one.
func (s *Sampler) Capture(nowNanos int64) {
	// Full metrics snapshot: counters, gauges (drift milli-z), latency
	// histograms, recent flight-recorder decisions.
	s.scratch = mserve.AppendMetrics(s.scratch[:0], s.srv.Metrics())
	s.bb.Record(KindMetrics, nowNanos, s.scratch)

	// New time-series points since the last capture.
	if rec := s.srv.TimeSeriesRecorder(); rec != nil {
		for {
			n, cur := rec.ReadNewer(s.tsCursor, s.tsBuf)
			s.tsCursor = cur
			if n == 0 {
				break
			}
			s.scratch = tsrec.AppendSeries(s.scratch[:0], tsrec.Series{
				IntervalNanos: rec.Interval(),
				Counters:      rec.CounterNames(),
				Hists:         rec.HistNames(),
				Points:        s.tsBuf[:n],
			})
			s.bb.Record(KindTimeSeries, nowNanos, s.scratch)
			if n < len(s.tsBuf) {
				break
			}
		}
	}

	// New decision traces since the last capture.
	if arena := s.srv.TraceArena(); arena != nil {
		for {
			n, cur := arena.ReadNewer(s.trCursor, s.trBuf)
			s.trCursor = cur
			if n == 0 {
				break
			}
			s.scratch = dtrace.AppendTraces(s.scratch[:0], s.trBuf[:n])
			s.bb.Record(KindTraces, nowNanos, s.scratch)
			if n < len(s.trBuf) {
				break
			}
		}
	}

	// Learner status, only on transitions: the state machine moves
	// orders of magnitude slower than the capture interval, and the
	// postmortem wants the sequence of moves, not a heartbeat.
	st := s.srv.LearnStatus()
	if !s.haveLearn || learnMoved(&s.lastLearn, &st) {
		s.haveLearn = true
		s.scratch = mserve.AppendLearnStatus(s.scratch[:0], st)
		if s.bb.Record(KindLearn, nowNanos, s.scratch) {
			s.lastLearn = st
			s.lastLearn.Events = nil // compared fields only; do not retain
		}
	}
}

// learnMoved reports whether the learner's externally visible position
// changed: any lifecycle counter, the state, or the deployed version.
func learnMoved(a, b *mserve.LearnStatus) bool {
	return a.State != b.State ||
		a.Retrains != b.Retrains ||
		a.Deploys != b.Deploys ||
		a.Rollbacks != b.Rollbacks ||
		a.Commits != b.Commits ||
		a.TriggerFires != b.TriggerFires ||
		a.LastVersion != b.LastVersion
}
