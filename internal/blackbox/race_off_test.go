//go:build !race

package blackbox

// raceEnabled reports whether the race detector is active; see
// race_on_test.go.
const raceEnabled = false
