package blackbox

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/dtrace"
	"repro/internal/mserve"
)

func newTestServer(t *testing.T) *mserve.Server {
	t.Helper()
	reg, err := mserve.OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatalf("registry: %v", err)
	}
	srv, err := mserve.NewServer(mserve.Config{Registry: reg})
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	return srv
}

func countKinds(recs []Record) map[Kind]int {
	m := map[Kind]int{}
	for _, r := range recs {
		m[r.Kind]++
	}
	return m
}

func TestSamplerCapturesIncrementally(t *testing.T) {
	srv := newTestServer(t)
	path := filepath.Join(t.TempDir(), "bb.bin")
	bb, err := Open(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(bb, srv)

	// Feed state: two time-series points, one trace, a learner status.
	rec := srv.TimeSeriesRecorder()
	rec.Tick(1_000)
	rec.Tick(2_000)
	var tb dtrace.Builder
	tb.Start(srv.TraceArena().NextID(), 10)
	sp := tb.Begin(dtrace.StageInfer, 0, 20)
	tb.End(sp, 30)
	srv.TraceArena().Record(tb.Finish(40))
	learn := mserve.LearnStatus{State: mserve.LearnCollecting, Examples: 17, BaselinePM: -1, CanaryPM: -1}
	srv.SetLearnSource(func() mserve.LearnStatus { return learn })

	s.Capture(5_000)
	if err := bb.Flush(true); err != nil {
		t.Fatal(err)
	}
	res, err := ScanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := countKinds(res.Records)
	if got[KindMetrics] != 1 || got[KindTimeSeries] != 1 || got[KindTraces] != 1 || got[KindLearn] != 1 {
		t.Fatalf("first capture kinds = %v, want one of each", got)
	}

	// Verify the payloads decode and carry the fed state.
	series, skipped := MergeTimeSeries(res.Records)
	if skipped != 0 || len(series.Points) != 2 || series.Points[0].TimeNanos != 1_000 {
		t.Fatalf("merged series: skipped=%d points=%+v", skipped, series.Points)
	}
	for _, r := range res.Records {
		switch r.Kind {
		case KindTraces:
			traces, err := dtrace.ParseTraces(r.Payload)
			if err != nil || len(traces) != 1 || traces[0].N != 2 {
				t.Fatalf("trace record: %v %+v", err, traces)
			}
		case KindLearn:
			st, err := mserve.ParseLearnStatus(r.Payload)
			if err != nil || st.State != mserve.LearnCollecting || st.Examples != 17 {
				t.Fatalf("learn record: %v %+v", err, st)
			}
		}
	}

	// A second capture with nothing new: one metrics snapshot only — the
	// cursors and the learn dedupe suppress everything already persisted.
	s.Capture(6_000)
	if err := bb.Flush(true); err != nil {
		t.Fatal(err)
	}
	res, err = ScanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got = countKinds(res.Records)
	if got[KindMetrics] != 2 || got[KindTimeSeries] != 1 || got[KindTraces] != 1 || got[KindLearn] != 1 {
		t.Fatalf("idle capture kinds = %v, want only one more metrics record", got)
	}

	// A learner transition is captured; an unchanged one stays deduped.
	learn.State = mserve.LearnRetraining
	learn.Retrains = 1
	s.Capture(7_000)
	s.Capture(8_000)
	if err := bb.Close(); err != nil {
		t.Fatal(err)
	}
	res, err = ScanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got = countKinds(res.Records)
	if got[KindLearn] != 2 {
		t.Fatalf("learn records = %d, want 2 (one per transition)", got[KindLearn])
	}
}

// TestRecorderFlusherDrivesSampler pins the Start(capture) contract:
// the background flusher invokes the capture hook before every flush,
// so a crash loses at most one interval.
func TestRecorderFlusherDrivesSampler(t *testing.T) {
	srv := newTestServer(t)
	path := filepath.Join(t.TempDir(), "bb.bin")
	bb, err := Open(Config{Path: path, FlushInterval: 2_000_000}) // 2ms
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(bb, srv)
	srv.TimeSeriesRecorder().Tick(1)
	bb.Start(s.Capture)
	for i := 0; i < 500 && bb.Status().Flushes == 0; i++ {
		time.Sleep(2 * time.Millisecond)
	}
	if err := bb.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := ScanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := countKinds(res.Records)
	if got[KindMetrics] == 0 || got[KindTimeSeries] == 0 {
		t.Fatalf("flusher-driven capture persisted %v", got)
	}
}
