// The recorder: an in-memory staging image of the on-disk ring plus a
// background flusher. Record — the only call on a latency-sensitive
// path — encodes the record header, checksums the payload, and copies
// both into the preallocated staging ring under a mutex: no
// allocation, no float, no I/O. The flusher goroutine wakes on a fixed
// interval, copies the dirty span out of the staging ring under the
// lock, and writes it back with WriteAt OUTSIDE the lock, so a slow
// disk never blocks Record for longer than one memcpy. Staleness after
// a crash is therefore bounded by the flush interval (plus the page
// cache unless -blackbox-fsync forces it through on every flush).
package blackbox

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSize is the default black-box file size (header + ring).
const DefaultSize = 4 << 20

// DefaultFlushInterval bounds staleness when Config.FlushInterval is 0.
const DefaultFlushInterval = 250 * time.Millisecond

// Config parameterizes Open.
type Config struct {
	// Path of the black-box file. Created if missing; an existing valid
	// black box of the same geometry is resumed (its records survive
	// restarts until overwritten), anything else is recreated.
	Path string
	// Size is the total file size in bytes, header sector included.
	// 0 means DefaultSize; values are clamped to at least MinFileSize
	// and the ring is rounded down to a sector multiple.
	Size int64
	// FlushInterval is the background flusher period; 0 means
	// DefaultFlushInterval.
	FlushInterval time.Duration
	// FsyncEveryFlush forces fsync on every background flush instead of
	// only on Close — survives power loss, costs a disk barrier per
	// interval.
	FsyncEveryFlush bool
}

// Status is the recorder's operational snapshot (the MsgBlackbox
// payload source).
type Status struct {
	Records        uint64 // records appended since open (this process)
	Dropped        uint64 // records rejected (oversized payload)
	Flushes        uint64 // completed write-backs
	RingBytes      uint64 // ring capacity in bytes
	LastFlushNanos int64  // wall clock of the last completed flush (0 = none)
	TornAtOpen     uint64 // torn records found when resuming the file
}

// Recorder owns one black-box file.
type Recorder struct {
	path       string
	f          *os.File
	fsyncEvery bool
	interval   time.Duration

	mu      sync.Mutex
	ring    []byte // staging image of the on-disk ring
	w       int    // next write offset within ring (sector-aligned)
	seq     uint64 // next record seq
	records uint64
	drops   uint64
	torn    uint64 // torn records observed when resuming
	dirty   bool
	dirtyLo int
	dirtyHi int
	closed  bool

	flushMu  sync.Mutex // serializes flushers (ticker + MsgBlackbox sync)
	flushBuf []byte

	flushes     atomic.Uint64
	lastFlushNS atomic.Int64

	startOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// Open creates or resumes the black box at cfg.Path. A fresh file is
// sized, headered, and synced before Open returns, so even an
// immediate SIGKILL leaves a scannable (empty) box behind.
func Open(cfg Config) (*Recorder, error) {
	if cfg.Path == "" {
		return nil, errors.New("blackbox: empty path")
	}
	size := cfg.Size
	if size == 0 {
		size = DefaultSize
	}
	if size < MinFileSize {
		size = MinFileSize
	}
	ringBytes := (size - FileHeaderSize) &^ (SectorSize - 1)
	interval := cfg.FlushInterval
	if interval <= 0 {
		interval = DefaultFlushInterval
	}
	f, err := os.OpenFile(cfg.Path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("blackbox: %w", err)
	}
	r := &Recorder{
		path:       cfg.Path,
		f:          f,
		fsyncEvery: cfg.FsyncEveryFlush,
		interval:   interval,
		ring:       make([]byte, ringBytes),
		seq:        1,
	}
	if err := r.initFile(ringBytes); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// initFile resumes an existing compatible black box (loading its ring
// into the staging image and continuing after its newest record) or
// lays down a fresh one.
func (r *Recorder) initFile(ringBytes int64) error {
	hdr := make([]byte, FileHeaderSize)
	if n, err := r.f.ReadAt(hdr, 0); err == nil && n == FileHeaderSize {
		if prevRing, _, herr := parseFileHeader(hdr); herr == nil && prevRing == ringBytes {
			if n, err := r.f.ReadAt(r.ring, FileHeaderSize); err == nil && n == len(r.ring) {
				recs, torn := scanRing(r.ring, FileHeaderSize)
				r.torn = uint64(torn)
				if len(recs) > 0 {
					last := recs[len(recs)-1]
					r.seq = last.Seq + 1
					end := int(last.Offset-FileHeaderSize) + alignSector(RecordHeaderSize+len(last.Payload))
					if end <= len(r.ring) {
						r.w = end % len(r.ring)
					}
				}
				return nil
			}
		}
	}
	// Fresh box: size the file, zero the ring, write + sync the header
	// so the file is scannable from the first instant.
	if err := r.f.Truncate(0); err != nil {
		return fmt.Errorf("blackbox: %w", err)
	}
	if err := r.f.Truncate(FileHeaderSize + ringBytes); err != nil {
		return fmt.Errorf("blackbox: %w", err)
	}
	putFileHeader(hdr, ringBytes, time.Now().UnixNano())
	if _, err := r.f.WriteAt(hdr, 0); err != nil {
		return fmt.Errorf("blackbox: %w", err)
	}
	if err := r.f.Sync(); err != nil {
		return fmt.Errorf("blackbox: %w", err)
	}
	return nil
}

// Path returns the black-box file path.
func (r *Recorder) Path() string { return r.path }

// RingBytes returns the ring capacity in bytes.
func (r *Recorder) RingBytes() int64 { return int64(len(r.ring)) }

// Record appends one record to the staging ring: header encode, payload
// CRC, one copy. It allocates nothing and does no I/O — durability is
// the flusher's job. Oversized payloads are dropped (counted in
// Status.Dropped) and records after Close are dropped silently; both
// return false.
//
//kml:hotpath
func (r *Recorder) Record(kind Kind, timeNanos int64, payload []byte) bool {
	if len(payload) > MaxRecordPayload {
		r.mu.Lock()
		r.drops++
		r.mu.Unlock()
		return false
	}
	need := RecordHeaderSize + len(payload)
	total := alignSector(need)
	crc := crc32.ChecksumIEEE(payload)
	r.mu.Lock()
	if r.closed || total > len(r.ring) {
		r.drops++
		r.mu.Unlock()
		return false
	}
	if r.w+total > len(r.ring) {
		// Never wrap a record across the ring end: restart at 0 and let
		// the stale tail age out.
		r.w = 0
	}
	w := r.w
	putRecordHeader(r.ring[w:w+RecordHeaderSize], kind, r.seq, timeNanos, len(payload), crc)
	copy(r.ring[w+RecordHeaderSize:], payload)
	for i := w + need; i < w+total; i++ {
		r.ring[i] = 0
	}
	if !r.dirty {
		r.dirty = true
		r.dirtyLo, r.dirtyHi = w, w+total
	} else {
		if w < r.dirtyLo {
			r.dirtyLo = w
		}
		if w+total > r.dirtyHi {
			r.dirtyHi = w + total
		}
	}
	r.w = w + total
	r.seq++
	r.records++
	r.mu.Unlock()
	return true
}

// Flush writes the dirty span of the staging ring back to disk. The
// copy out of the ring happens under the record lock; the WriteAt does
// not. With sync (or FsyncEveryFlush) the data is forced through the
// page cache.
func (r *Recorder) Flush(sync bool) error {
	r.flushMu.Lock()
	defer r.flushMu.Unlock()
	r.mu.Lock()
	dirty := r.dirty
	var lo int
	if dirty {
		lo = r.dirtyLo
		r.flushBuf = append(r.flushBuf[:0], r.ring[r.dirtyLo:r.dirtyHi]...)
		r.dirty = false
	}
	r.mu.Unlock()
	if dirty {
		if _, err := r.f.WriteAt(r.flushBuf, FileHeaderSize+int64(lo)); err != nil {
			return fmt.Errorf("blackbox: %w", err)
		}
	}
	if sync || (dirty && r.fsyncEvery) {
		if err := r.f.Sync(); err != nil {
			return fmt.Errorf("blackbox: %w", err)
		}
	}
	if dirty {
		r.flushes.Add(1)
		r.lastFlushNS.Store(time.Now().UnixNano())
	}
	return nil
}

// Start launches the background flusher. When capture is non-nil the
// flusher calls it immediately before each flush (the sampler hooks in
// here), so every interval persists the freshest possible state.
// Start is idempotent; Close stops the flusher.
func (r *Recorder) Start(capture func(nowNanos int64)) {
	r.startOnce.Do(func() {
		r.stop = make(chan struct{})
		r.done = make(chan struct{})
		go func() {
			defer close(r.done)
			t := time.NewTicker(r.interval)
			defer t.Stop()
			for {
				select {
				case <-r.stop:
					return
				case now := <-t.C:
					if capture != nil {
						capture(now.UnixNano())
					}
					_ = r.Flush(false)
				}
			}
		}()
	})
}

// FinalFlush synchronously persists everything staged and fsyncs,
// regardless of flusher state. It is the panic/SIGQUIT hook: safe to
// call at any time, from any goroutine, repeatedly.
func (r *Recorder) FinalFlush() error { return r.Flush(true) }

// Close stops the flusher, performs a final synced flush, and closes
// the file. Records arriving after Close are dropped.
func (r *Recorder) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	if r.stop != nil {
		close(r.stop)
		<-r.done
	}
	err := r.Flush(true)
	if cerr := r.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("blackbox: %w", cerr)
	}
	return err
}

// Status snapshots the recorder's counters.
func (r *Recorder) Status() Status {
	r.mu.Lock()
	st := Status{
		Records:    r.records,
		Dropped:    r.drops,
		RingBytes:  uint64(len(r.ring)),
		TornAtOpen: r.torn,
	}
	r.mu.Unlock()
	st.Flushes = r.flushes.Load()
	st.LastFlushNanos = r.lastFlushNS.Load()
	return st
}
