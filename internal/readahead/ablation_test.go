package readahead

import (
	"testing"

	"repro/internal/blockdev"
	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/sim"
	"repro/internal/workload"
)

// maskedClassifier zeroes a set of selected-feature positions before
// delegating, emulating a model trained without those inputs.
type maskedClassifier struct {
	inner *NNClassifier
	mask  []int // positions in the selected vector to zero
	buf   []float64
}

func (m *maskedClassifier) Predict(f []float64) int {
	copy(m.buf, f)
	for _, i := range m.mask {
		m.buf[i] = 0
	}
	return m.inner.Predict(m.buf)
}

func (m *maskedClassifier) Name() string { return "masked-nn" }

// trainMasked trains a model with some selected features zeroed out in
// every sample (equivalent to removing them, since a constant-zero input
// contributes nothing the bias cannot).
func trainMasked(raw []features.Vector, labels []int, mask []int, seed int64) (*maskedClassifier, features.Normalizer) {
	norm := features.FitNormalizer(raw)
	normed := make([]features.Vector, len(raw))
	for i, v := range raw {
		nv := norm.Apply(v)
		for _, sel := range mask {
			nv[features.Selected[sel]] = 0
		}
		normed[i] = nv
	}
	net := NewModel(seed)
	TrainModel(net, normed, labels, TrainConfig{Seed: seed})
	return &maskedClassifier{
		inner: NewNNClassifier(net),
		mask:  mask,
		buf:   make([]float64, features.Count),
	}, norm
}

func evalMasked(c *maskedClassifier, norm features.Normalizer, raw []features.Vector, labels []int) float64 {
	correct := 0
	buf := make([]float64, features.Count)
	for i, v := range raw {
		features.SelectInto(buf, norm.Apply(v))
		if c.Predict(buf) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(raw))
}

// TestFeatureAblation verifies the feature-selection claims in DESIGN.md:
// the full selected set separates the training workloads, while removing
// the direction (sign) feature must cost accuracy — it is what separates
// readseq from readreverse.
func TestFeatureAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	simCfg := sim.Config{Profile: blockdev.NVMe(), Keys: 6000, CachePages: 480, Seed: 5}
	raw, labels, err := CollectDataset(simCfg, DatasetConfig{SecondsPerRun: 8, RASectors: []int{8, 256}})
	if err != nil {
		t.Fatal(err)
	}

	// Positions within the selected vector: 0=|Δ|, 1=sign, 2=writeFrac, 3=ra.
	full, fullNorm := trainMasked(raw, labels, nil, 5)
	fullAcc := evalMasked(full, fullNorm, raw, labels)
	if fullAcc < 0.9 {
		t.Fatalf("full feature set accuracy %.2f", fullAcc)
	}

	noSign, nsNorm := trainMasked(raw, labels, []int{1}, 5)
	noSignAcc := evalMasked(noSign, nsNorm, raw, labels)
	if noSignAcc >= fullAcc {
		t.Errorf("removing the direction feature should cost accuracy: %.2f vs %.2f", noSignAcc, fullAcc)
	}
	// Without direction, readseq and readreverse must collide: per-class
	// accuracy over those two classes cannot stay high.
	collide := 0
	total := 0
	buf := make([]float64, features.Count)
	for i, v := range raw {
		if labels[i] != workload.ReadSeq.Class() && labels[i] != workload.ReadReverse.Class() {
			continue
		}
		total++
		features.SelectInto(buf, nsNorm.Apply(v))
		if noSign.Predict(buf) == labels[i] {
			collide++
		}
	}
	if total > 0 && float64(collide)/float64(total) > 0.8 {
		t.Errorf("seq/reverse still separated without the sign feature (%.2f)", float64(collide)/float64(total))
	}
}

// TestQuantizedAccuracy (E7) verifies the §3.1 trade-off discussion: the
// Q16.16 model loses little accuracy relative to the float model.
func TestQuantizedAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	simCfg := sim.Config{Profile: blockdev.NVMe(), Keys: 6000, CachePages: 480, Seed: 6}
	raw, labels, err := CollectDataset(simCfg, DatasetConfig{SecondsPerRun: 6, RASectors: []int{8, 256}})
	if err != nil {
		t.Fatal(err)
	}
	norm := features.FitNormalizer(raw)
	normed := make([]features.Vector, len(raw))
	for i, v := range raw {
		normed[i] = norm.Apply(v)
	}
	net := NewModel(6)
	TrainModel(net, normed, labels, TrainConfig{Seed: 6})
	floatAcc := Evaluate(NewNNClassifier(net), normed, labels)
	fixed, err := NewFixedClassifier(net)
	if err != nil {
		t.Fatal(err)
	}
	fixedAcc := Evaluate(fixed, normed, labels)
	if floatAcc-fixedAcc > 0.05 {
		t.Errorf("quantization cost too high: float %.3f vs fixed %.3f", floatAcc, fixedAcc)
	}
}

// TestSavedModelDeploysIdentically covers the full §3.3 deployment path:
// train → save network + normalizer → load → predictions identical.
func TestSavedModelDeploysIdentically(t *testing.T) {
	raw, labels := syntheticDataset(120, 9)
	norm := features.FitNormalizer(raw)
	normed := make([]features.Vector, len(raw))
	for i, v := range raw {
		normed[i] = norm.Apply(v)
	}
	net := NewModel(9)
	TrainModel(net, normed, labels, TrainConfig{Epochs: 40, Seed: 9})

	dir := t.TempDir()
	if err := net.SaveFile(dir + "/m.kml"); err != nil {
		t.Fatal(err)
	}
	loaded, err := nn.LoadFile(dir + "/m.kml")
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewNNClassifier(net), NewNNClassifier(loaded)
	for _, v := range normed {
		sel := features.Select(v)
		if a.Predict(sel) != b.Predict(sel) {
			t.Fatal("deployed model diverges from trained model")
		}
	}
}
