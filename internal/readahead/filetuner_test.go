package readahead

import (
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/pagecache"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func newFileTunerFixture(t *testing.T, model core.Classifier) (*FileTuner, *pagecache.Cache, *blockdev.Device, *clock.Virtual) {
	t.Helper()
	clk := clock.New()
	dev := blockdev.New(blockdev.NVMe(), clk)
	cache := pagecache.New(pagecache.Config{CapacityPages: 1024}, clk, dev, nil)
	// Identity-ish normalizer (mean 0, stddev 1) so the stub classifiers
	// see raw feature values; the zero normalizer would squash everything
	// to 0 via its degenerate stddev.
	var norm features.Normalizer
	for i := range norm.Z {
		norm.Z[i].StdDev = 1
	}
	tuner, err := NewFileTuner(cache, dev, model, norm,
		FileTunerConfig{Policy: Policy{0: 1024, 1: 8, 2: 16, 3: 32}, MinEvents: 10})
	if err != nil {
		t.Fatal(err)
	}
	return tuner, cache, dev, clk
}

// perInodeClassifier lets the test give each inode its own class.
type perInodeClassifier struct{}

func (perInodeClassifier) Name() string { return "per-inode" }
func (perInodeClassifier) Predict(f []float64) int {
	// Use the sign feature (selected position 1) to separate streams:
	// ascending inode-1 traffic (sign>0) is "seq", the rest "random".
	if f[1] > 0 {
		return 0
	}
	return 1
}

func TestFileTunerTunesFilesIndependently(t *testing.T) {
	tuner, cache, _, clk := newFileTunerFixture(t, perInodeClassifier{})
	hook := tuner.Hook()
	tuner.MaybeTick(clk.Now())
	// Inode 1: ascending offsets (sequential). Inode 2: descending.
	for i := 0; i < 100; i++ {
		hook(trace.Event{Point: trace.AddToPageCache, Inode: 1, Offset: int64(i), Time: clk.Now()})
		hook(trace.Event{Point: trace.AddToPageCache, Inode: 2, Offset: int64(1000 - i), Time: clk.Now()})
	}
	clk.Advance(1100 * time.Millisecond)
	tuner.MaybeTick(clk.Now())
	decs := tuner.Decisions()
	if len(decs) != 2 {
		t.Fatalf("%d decisions, want one per file", len(decs))
	}
	got := map[uint64]int{}
	for _, d := range decs {
		got[d.Inode] = d.Sectors
	}
	if got[1] != 1024 || got[2] != 8 {
		t.Errorf("per-file sectors: %v", got)
	}
	// The page cache must carry the per-file overrides; verify indirectly:
	// device default unchanged, so file readahead must differ per file.
	cacheProbe := cache
	_ = cacheProbe
	if tuner.ActiveFiles() != 2 {
		t.Errorf("active files = %d", tuner.ActiveFiles())
	}
}

func TestFileTunerSkipsQuietFiles(t *testing.T) {
	tuner, _, _, clk := newFileTunerFixture(t, fixedClassifier(0))
	hook := tuner.Hook()
	tuner.MaybeTick(clk.Now())
	// Below MinEvents: no decision.
	for i := 0; i < 5; i++ {
		hook(trace.Event{Point: trace.AddToPageCache, Inode: 9, Offset: int64(i), Time: clk.Now()})
	}
	clk.Advance(1100 * time.Millisecond)
	tuner.MaybeTick(clk.Now())
	if len(tuner.Decisions()) != 0 {
		t.Errorf("quiet file got %d decisions", len(tuner.Decisions()))
	}
}

func TestFileTunerBoundsState(t *testing.T) {
	clk := clock.New()
	dev := blockdev.New(blockdev.NVMe(), clk)
	cache := pagecache.New(pagecache.Config{CapacityPages: 1024}, clk, dev, nil)
	tuner, err := NewFileTuner(cache, dev, fixedClassifier(0), features.Normalizer{},
		FileTunerConfig{MaxFiles: 8})
	if err != nil {
		t.Fatal(err)
	}
	hook := tuner.Hook()
	for ino := uint64(1); ino <= 100; ino++ {
		hook(trace.Event{Point: trace.AddToPageCache, Inode: ino, Offset: 1, Time: clk.Now()})
		clk.Advance(time.Millisecond)
	}
	tuner.MaybeTick(clk.Now())
	if tuner.ActiveFiles() > 8 {
		t.Errorf("active files %d exceeds MaxFiles", tuner.ActiveFiles())
	}
}

func TestFileTunerValidation(t *testing.T) {
	clk := clock.New()
	dev := blockdev.New(blockdev.NVMe(), clk)
	cache := pagecache.New(pagecache.Config{CapacityPages: 64}, clk, dev, nil)
	if _, err := NewFileTuner(nil, dev, fixedClassifier(0), features.Normalizer{}, FileTunerConfig{}); err == nil {
		t.Error("nil cache must error")
	}
	if _, err := NewFileTuner(cache, dev, nil, features.Normalizer{}, FileTunerConfig{}); err == nil {
		t.Error("nil model must error")
	}
}

// TestFileTunerEndToEnd runs the per-file loop against a live mixed
// environment and checks it reaches per-file decisions.
func TestFileTunerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := sim.Config{Profile: blockdev.NVMe(), Keys: 6000, CachePages: 480, Seed: 1}
	raw, labels, err := CollectDataset(cfg, DatasetConfig{SecondsPerRun: 6, RASectors: []int{8, 256}})
	if err != nil {
		t.Fatal(err)
	}
	norm := features.FitNormalizer(raw)
	normed := make([]features.Vector, len(raw))
	for i, v := range raw {
		normed[i] = norm.Apply(v)
	}
	net := NewModel(3)
	TrainModel(net, normed, labels, TrainConfig{Seed: 3})
	env, err := sim.NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := NewFileTuner(env.Cache, env.Dev, NewNNClassifier(net), norm, FileTunerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	env.Tracer.Register(tuner.Hook())
	runner := env.NewRunner(workload.MixGraph)
	deadline := 4 * time.Second
	for env.Clk.Now() < deadline {
		if err := runner.Step(); err != nil {
			t.Fatal(err)
		}
		tuner.MaybeTick(env.Clk.Now())
	}
	if len(tuner.Decisions()) == 0 {
		t.Fatal("no per-file decisions")
	}
	if tuner.Dropped() > tuner.pipeline.Collected()/10 {
		t.Errorf("excessive drops: %d", tuner.Dropped())
	}
}
