package readahead

import (
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/mserve"
	"repro/internal/trace"
)

// TestDeployedTunerHotSwap drives a tuner through deployment-handle
// swaps: an empty handle leaves the device alone, each swap takes
// effect at the next decision window, and decisions record the model
// version that made them.
func TestDeployedTunerHotSwap(t *testing.T) {
	clk := clock.New()
	dev := blockdev.New(blockdev.NVMe(), clk)
	policy := Policy{0: 1024, 1: 8, 2: 16, 3: 32}
	var deploy mserve.Deployment[core.Classifier]
	tuner, err := NewDeployedTuner(dev, &deploy, features.Normalizer{}, TunerConfig{Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	if tuner.Model() != nil {
		t.Fatal("Model() non-nil before first swap")
	}

	tick := func() {
		hook := tuner.Hook()
		for i := 0; i < 20; i++ {
			hook(trace.Event{Point: trace.AddToPageCache, Inode: 1, Offset: int64(i), Time: clk.Now()})
		}
		clk.Advance(1100 * time.Millisecond)
		tuner.MaybeTick(clk.Now())
	}

	// Empty deployment: the window passes without a decision and the
	// device's readahead stays where it was.
	before := dev.ReadaheadSectors()
	tuner.MaybeTick(clk.Now()) // arms the first window
	tick()
	if n := len(tuner.Decisions()); n != 0 {
		t.Fatalf("%d decisions with an empty deployment", n)
	}
	if dev.ReadaheadSectors() != before {
		t.Fatal("empty deployment moved the readahead setting")
	}

	// First deploy: class-1 model, version 1.
	deploy.Swap(fixedClassifier(1), 1)
	tick()
	// Hot swap: class-2 model, version 2, picked up at the next window.
	deploy.Swap(fixedClassifier(2), 2)
	tick()
	// Rollback re-publishes the old model under its version.
	deploy.Swap(fixedClassifier(1), 1)
	tick()

	ds := tuner.Decisions()
	if len(ds) != 3 {
		t.Fatalf("%d decisions, want 3", len(ds))
	}
	want := []struct {
		class   int
		sectors int
		version uint64
	}{{1, 8, 1}, {2, 16, 2}, {1, 8, 1}}
	for i, w := range want {
		if ds[i].Class != w.class || ds[i].Sectors != w.sectors || ds[i].Version != w.version {
			t.Errorf("decision %d: %+v, want class=%d sectors=%d version=%d", i, ds[i], w.class, w.sectors, w.version)
		}
	}
	if dev.ReadaheadSectors() != 8 {
		t.Errorf("final readahead = %d, want 8", dev.ReadaheadSectors())
	}
	if m := tuner.Model(); m == nil || m.Name() != "fixed" {
		t.Errorf("Model() after swaps: %v", m)
	}
}

// TestDeployedTunerFixedPointModel swaps the fixed-point inference path
// (the kernel-space representation) into a live tuner: the integer-only
// classifier must serve decision windows like any other model.
func TestDeployedTunerFixedPointModel(t *testing.T) {
	clk := clock.New()
	dev := blockdev.New(blockdev.NVMe(), clk)
	fixed, err := NewFixedClassifier(NewModel(11))
	if err != nil {
		t.Fatal(err)
	}
	var deploy mserve.Deployment[core.Classifier]
	deploy.Swap(fixed, 7)
	tuner, err := NewDeployedTuner(dev, &deploy, features.Normalizer{}, TunerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tuner.MaybeTick(clk.Now())
	hook := tuner.Hook()
	for i := 0; i < 50; i++ {
		hook(trace.Event{Point: trace.AddToPageCache, Inode: 2, Offset: int64(i), Time: clk.Now()})
	}
	clk.Advance(1100 * time.Millisecond)
	tuner.MaybeTick(clk.Now())

	ds := tuner.Decisions()
	if len(ds) != 1 {
		t.Fatalf("%d decisions", len(ds))
	}
	if ds[0].Version != 7 {
		t.Errorf("decision version = %d, want 7", ds[0].Version)
	}
	if ds[0].Class < 0 || ds[0].Class >= 4 {
		t.Errorf("fixed-point class out of range: %d", ds[0].Class)
	}
	if tuner.Model() != core.Classifier(fixed) {
		t.Error("Model() is not the deployed fixed-point classifier")
	}

	if _, err := NewDeployedTuner(dev, nil, features.Normalizer{}, TunerConfig{}); err == nil {
		t.Error("nil deployment must error")
	}
}
