package readahead

import (
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/clock"
	"repro/internal/dtrace"
	"repro/internal/features"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// traceTestLoop drives a traced tuner for `windows` decision windows.
// The fake outcome counters are bumped AFTER each decision tick, i.e.
// during that decision's outcome window, so attribution lines up.
func traceTestLoop(t *testing.T, tuner *Tuner, clk *clock.Virtual, windows int, hits, misses uint64, counters *[2]uint64) {
	t.Helper()
	hook := tuner.Hook()
	tuner.MaybeTick(clk.Now())
	for w := 0; w < windows; w++ {
		for i := 0; i < 50; i++ {
			hook(trace.Event{Point: trace.AddToPageCache, Inode: 1, Offset: int64(i), Time: clk.Now()})
		}
		clk.Advance(1100 * time.Millisecond)
		tuner.MaybeTick(clk.Now())
		counters[0] += hits
		counters[1] += misses
	}
}

// TestTunerDecisionTrace checks the acceptance-criteria trace shape: one
// TraceID per decision window with feature → normalize → infer → apply
// → outcome child spans, outcome attribution from the cache counters,
// and every trace complete after FlushTrace.
func TestTunerDecisionTrace(t *testing.T) {
	clk := clock.New()
	dev := blockdev.New(blockdev.NVMe(), clk)
	tuner, err := NewTuner(dev, fixedClassifier(1), features.Normalizer{}, TunerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	arena := dtrace.NewArena(16)
	var counters [2]uint64
	tuner.EnableTracing(arena, func() (uint64, uint64) { return counters[0], counters[1] })
	if tuner.TraceArena() != arena {
		t.Fatal("TraceArena should return the attached arena")
	}

	const windows = 6
	traceTestLoop(t, tuner, clk, windows, 90, 10, &counters)
	tuner.FlushTrace()

	traces := arena.Snapshot()
	if len(traces) != windows {
		t.Fatalf("arena retained %d traces, want %d", len(traces), windows)
	}
	wantStages := []dtrace.Stage{
		dtrace.StageDecision, dtrace.StageFeature, dtrace.StageNormalize,
		dtrace.StageInfer, dtrace.StageApply, dtrace.StageOutcome,
	}
	var lastID dtrace.TraceID
	for ti := range traces {
		tr := &traces[ti]
		if !tr.Complete() {
			t.Fatalf("trace %d incomplete: %+v", ti, tr)
		}
		if tr.ID <= lastID {
			t.Fatalf("trace IDs not increasing: %d after %d", tr.ID, lastID)
		}
		lastID = tr.ID
		if int(tr.N) != len(wantStages) {
			t.Fatalf("trace %d has %d spans, want %d", ti, tr.N, len(wantStages))
		}
		for si, s := range tr.Used() {
			if s.Stage != wantStages[si] {
				t.Fatalf("trace %d span %d stage %v, want %v", ti, si, s.Stage, wantStages[si])
			}
			if si > 0 && s.Parent != 1 {
				t.Fatalf("trace %d span %d parent %d, want root", ti, si, s.Parent)
			}
		}
		root := tr.Root()
		if root.Value != 1 {
			t.Errorf("trace %d root class %d, want 1", ti, root.Value)
		}
		feat := tr.Spans[1]
		if feat.Value != 50 {
			t.Errorf("trace %d feature span events %d, want 50", ti, feat.Value)
		}
		if got := tr.Spans[2].Value; got != int64(features.Count) {
			t.Errorf("trace %d normalize span nfeat %d, want %d", ti, got, features.Count)
		}
		infer := tr.Spans[3]
		if infer.Value != 1 || infer.Aux != 0 {
			t.Errorf("trace %d infer span class/version %d/%d, want 1/0", ti, infer.Value, infer.Aux)
		}
		apply := tr.Spans[4]
		if apply.Value != 8 {
			t.Errorf("trace %d apply span sectors %d, want 8", ti, apply.Value)
		}
		outcome := tr.Spans[5]
		if outcome.Aux != 900 {
			t.Errorf("trace %d outcome hit rate %d pm, want 900", ti, outcome.Aux)
		}
		if outcome.Value != 0 {
			t.Errorf("trace %d outcome delta %d pm, want 0 (steady workload)", ti, outcome.Value)
		}
		// The outcome span covers the window AFTER the decision.
		if outcome.End < apply.End {
			t.Errorf("trace %d outcome ends before apply", ti)
		}
	}
}

// TestTunerTraceOutcomeDelta checks that a hit-rate change between
// consecutive outcome windows lands in the outcome span's delta.
func TestTunerTraceOutcomeDelta(t *testing.T) {
	clk := clock.New()
	dev := blockdev.New(blockdev.NVMe(), clk)
	tuner, err := NewTuner(dev, fixedClassifier(0), features.Normalizer{}, TunerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	arena := dtrace.NewArena(16)
	var counters [2]uint64
	tuner.EnableTracing(arena, func() (uint64, uint64) { return counters[0], counters[1] })

	hook := tuner.Hook()
	tuner.MaybeTick(clk.Now())
	rates := [][2]uint64{{50, 50}, {90, 10}} // 500 pm then 900 pm
	for _, r := range rates {
		hook(trace.Event{Point: trace.AddToPageCache, Inode: 1, Time: clk.Now()})
		clk.Advance(1100 * time.Millisecond)
		tuner.MaybeTick(clk.Now())
		// This decision's outcome window sees rate r.
		counters[0] += r[0]
		counters[1] += r[1]
	}
	tuner.FlushTrace()

	traces := arena.Snapshot()
	if len(traces) != 2 {
		t.Fatalf("retained %d traces, want 2", len(traces))
	}
	first, second := traces[0].Spans[5], traces[1].Spans[5]
	if first.Aux != 500 || first.Value != 0 {
		t.Fatalf("first outcome rate/delta = %d/%d, want 500/0", first.Aux, first.Value)
	}
	if second.Aux != 900 || second.Value != 400 {
		t.Fatalf("second outcome rate/delta = %d/%d, want 900/400", second.Aux, second.Value)
	}
}

// TestTunerTraceNoOutcomeSampler: tracing without an outcome source
// still produces complete traces, with the rate marked unknown (-1).
func TestTunerTraceNoOutcomeSampler(t *testing.T) {
	clk := clock.New()
	dev := blockdev.New(blockdev.NVMe(), clk)
	tuner, err := NewTuner(dev, fixedClassifier(0), features.Normalizer{}, TunerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	arena := dtrace.NewArena(4)
	tuner.EnableTracing(arena, nil)
	var counters [2]uint64
	traceTestLoop(t, tuner, clk, 2, 0, 0, &counters)
	tuner.FlushTrace()
	traces := arena.Snapshot()
	if len(traces) != 2 {
		t.Fatalf("retained %d traces, want 2", len(traces))
	}
	for i := range traces {
		out := traces[i].Spans[5]
		if out.Aux != -1 || out.Value != 0 {
			t.Fatalf("trace %d outcome rate/delta = %d/%d, want -1/0", i, out.Aux, out.Value)
		}
		if !traces[i].Complete() {
			t.Fatalf("trace %d incomplete", i)
		}
	}
}

// TestFlightEntrySeq pins the flight-recorder sequence number: strictly
// monotonic from 1, preserved across eviction so gaps are detectable.
func TestFlightEntrySeq(t *testing.T) {
	clk := clock.New()
	dev := blockdev.New(blockdev.NVMe(), clk)
	tuner, err := NewTuner(dev, fixedClassifier(1), features.Normalizer{}, TunerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tuner.Instrument(reg, 4)
	var counters [2]uint64
	if tuner.Seq() != 0 {
		t.Fatalf("Seq before any decision = %d, want 0", tuner.Seq())
	}
	traceTestLoop(t, tuner, clk, 6, 0, 0, &counters)
	if tuner.Seq() != 6 {
		t.Fatalf("Seq after 6 decisions = %d, want 6", tuner.Seq())
	}
	fl := tuner.Flight()
	if len(fl) != 4 {
		t.Fatalf("flight retained %d, want 4", len(fl))
	}
	// The recorder keeps the latest 4 of 6: seq 3,4,5,6.
	for i, e := range fl {
		if want := uint64(i + 3); e.Seq != want {
			t.Fatalf("flight[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
}

// TestTunerInstrumentDrift checks the drift monitor wiring: baselined
// on the normalizer's training stats, observing one decision per
// window, gauges registered under readahead_drift.
func TestTunerInstrumentDrift(t *testing.T) {
	clk := clock.New()
	dev := blockdev.New(blockdev.NVMe(), clk)
	// A normalizer with non-degenerate stats so shifts stay finite.
	var norm features.Normalizer
	for i := range norm.Z {
		norm.Z[i].Mean = 0
		norm.Z[i].StdDev = 1
	}
	tuner, err := NewTuner(dev, fixedClassifier(1), norm, TunerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	mon := tuner.InstrumentDrift(reg, 3)
	if mon == nil || mon.Window() != 3 {
		t.Fatalf("InstrumentDrift window = %v", mon)
	}
	var counters [2]uint64
	traceTestLoop(t, tuner, clk, 7, 0, 0, &counters)

	r := mon.Report()
	if r.Decisions != 7 {
		t.Fatalf("drift observed %d decisions, want 7", r.Decisions)
	}
	if r.Windows != 2 {
		t.Fatalf("drift completed %d windows, want 2", r.Windows)
	}
	if !r.BaselineReady {
		t.Fatal("baseline should come from the normalizer's training stats")
	}
	if r.ClassSharePM[1] != 1000 {
		t.Fatalf("class share = %v, want all class 1", r.ClassSharePM)
	}
	// Gauges exist under the readahead_drift prefix.
	found := false
	for _, s := range reg.Snapshot() {
		if s.Name == "readahead_drift_windows" {
			found = true
			if s.Value != 2 {
				t.Fatalf("readahead_drift_windows = %d, want 2", s.Value)
			}
		}
	}
	if !found {
		t.Fatal("readahead_drift gauges not registered")
	}
}
