package readahead

import (
	"time"

	"repro/internal/features"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// DatasetConfig parameterizes training-data collection.
type DatasetConfig struct {
	// SecondsPerRun is the virtual duration of each (workload, readahead)
	// run; 0 means 20.
	SecondsPerRun int
	// RASectors are the fixed readahead values runs are collected under,
	// so the model sees feature (v) vary as it will at deployment;
	// nil means {8, 64, 256, 1024}.
	RASectors []int
	// Window is the feature window; 0 means 1 second (paper: "we process
	// the collected data points every second").
	Window time.Duration
}

func (c DatasetConfig) withDefaults() DatasetConfig {
	if c.SecondsPerRun == 0 {
		c.SecondsPerRun = 20
	}
	if c.RASectors == nil {
		c.RASectors = []int{8, 64, 256, 1024}
	}
	if c.Window == 0 {
		c.Window = time.Second
	}
	return c
}

// CollectDataset reproduces the paper's data-collection stage: run each of
// the four training workloads on the given environment config (the paper
// used NVMe), under several fixed readahead settings, recording tracepoints
// through a hook and emitting one labeled raw feature vector per window.
func CollectDataset(simCfg sim.Config, cfg DatasetConfig) (raw []features.Vector, labels []int, err error) {
	cfg = cfg.withDefaults()
	for _, kind := range workload.TrainingKinds() {
		for _, ra := range cfg.RASectors {
			vs, err := collectRun(simCfg, cfg, kind, ra)
			if err != nil {
				return nil, nil, err
			}
			for _, v := range vs {
				raw = append(raw, v)
				labels = append(labels, kind.Class())
			}
		}
	}
	return raw, labels, nil
}

// collectRun runs one (workload, readahead) configuration on a fresh
// environment and returns its windows.
func collectRun(simCfg sim.Config, cfg DatasetConfig, kind workload.Kind, raSectors int) ([]features.Vector, error) {
	env, err := sim.NewEnv(simCfg)
	if err != nil {
		return nil, err
	}
	env.Dev.SetReadahead(raSectors)
	ext := features.NewExtractor()
	env.Tracer.Register(func(ev trace.Event) {
		ext.Add(features.Record{
			Inode:  ev.Inode,
			Offset: ev.Offset,
			Time:   ev.Time,
			Write:  ev.Point == trace.WritebackDirtyPage,
		})
	})
	runner := env.NewRunner(kind)
	var out []features.Vector
	start := env.Clk.Now()
	for s := 0; s < cfg.SecondsPerRun; s++ {
		deadline := start + time.Duration(s+1)*cfg.Window
		for env.Clk.Now() < deadline {
			if err := runner.Step(); err != nil {
				return nil, err
			}
		}
		v := ext.Emit(raSectors)
		if s == 0 {
			// Discard the cold-cache warmup window: the paper notes that
			// "when the benchmark starts, read-access patterns are
			// different than the rest of the execution".
			continue
		}
		out = append(out, v)
	}
	return out, nil
}
