package readahead

import (
	"errors"
	"time"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/pagecache"
	"repro/internal/trace"
)

// FileTuner is the per-file variant of the readahead application: Figure 1
// of the paper shows KML driving both the block-layer readahead ioctl and
// "updating ra_pages for open files". Where the device-level Tuner applies
// one prediction to everything, the FileTuner keeps one feature window per
// inode and tunes each file's ra_pages separately — so a random-access
// table file can run with minimal readahead while a sequentially-read
// compaction input streams with a large window at the same time.
type FileTuner struct {
	cache  *pagecache.Cache
	dev    *blockdev.Device
	model  core.Classifier
	norm   features.Normalizer
	policy Policy
	window time.Duration

	pipeline *core.Pipeline[features.Record]
	files    map[uint64]*fileWindow
	featBuf  []float64
	nextTick time.Duration
	started  bool

	// MinEvents is the fewest events a file needs in a window before its
	// readahead is adjusted; quieter files keep their previous setting.
	minEvents uint64
	maxFiles  int

	decisions []FileDecision
}

// fileWindow is one inode's aggregation state.
type fileWindow struct {
	ext      *features.Extractor
	lastSeen time.Duration
}

// FileDecision is one per-file tuning step.
type FileDecision struct {
	Time    time.Duration
	Inode   uint64
	Class   int
	Sectors int
	Events  uint64
}

// FileTunerConfig parameterizes the per-file loop.
type FileTunerConfig struct {
	// Window is the decision interval; 0 means 1 second.
	Window time.Duration
	// BufferCapacity sizes the collection ring; 0 means 1<<16 records.
	BufferCapacity int
	// Policy maps classes to sectors; zero means DefaultPolicy.
	Policy Policy
	// MinEvents gates per-file decisions; 0 means 64.
	MinEvents uint64
	// MaxFiles bounds the per-inode state (idle files are evicted);
	// 0 means 256. This is the §3.1 memory-capping discipline applied to
	// the application's own state.
	MaxFiles int
}

// NewFileTuner builds a per-file tuner. It needs the page cache (for the
// ra_pages updates) in addition to the device (for the current-readahead
// feature and the policy default).
func NewFileTuner(cache *pagecache.Cache, dev *blockdev.Device, model core.Classifier, norm features.Normalizer, cfg FileTunerConfig) (*FileTuner, error) {
	if cache == nil || dev == nil || model == nil {
		return nil, errors.New("readahead: nil cache, device or model")
	}
	if cfg.Window == 0 {
		cfg.Window = time.Second
	}
	if cfg.BufferCapacity == 0 {
		cfg.BufferCapacity = 1 << 16
	}
	if cfg.Policy == (Policy{}) {
		cfg.Policy = DefaultPolicy(dev.Profile())
	}
	if cfg.MinEvents == 0 {
		cfg.MinEvents = 64
	}
	if cfg.MaxFiles == 0 {
		cfg.MaxFiles = 256
	}
	t := &FileTuner{
		cache:     cache,
		dev:       dev,
		model:     model,
		norm:      norm,
		policy:    cfg.Policy,
		window:    cfg.Window,
		files:     make(map[uint64]*fileWindow),
		featBuf:   make([]float64, features.Count),
		minEvents: cfg.MinEvents,
		maxFiles:  cfg.MaxFiles,
	}
	p, err := core.NewPipeline[features.Record](
		core.Config{BufferCapacity: cfg.BufferCapacity, SampleBytes: 32},
		t.consume,
	)
	if err != nil {
		return nil, err
	}
	p.SetMode(core.ModeInference)
	t.pipeline = p
	return t, nil
}

// consume routes drained records into per-inode windows.
func (t *FileTuner) consume(batch []features.Record, _ core.Mode) {
	for _, r := range batch {
		fw, ok := t.files[r.Inode]
		if !ok {
			if len(t.files) >= t.maxFiles {
				t.evictIdle()
			}
			fw = &fileWindow{ext: features.NewExtractor()}
			t.files[r.Inode] = fw
		}
		fw.ext.Add(r)
		fw.lastSeen = r.Time
	}
}

// evictIdle drops the least recently seen file's state.
func (t *FileTuner) evictIdle() {
	var victim uint64
	var oldest time.Duration = -1
	for ino, fw := range t.files {
		if oldest < 0 || fw.lastSeen < oldest {
			victim, oldest = ino, fw.lastSeen
		}
	}
	delete(t.files, victim)
}

// Hook returns the inline data-collection function.
func (t *FileTuner) Hook() trace.Hook {
	return t.collect
}

// collect pushes one tracepoint record into the lock-free pipeline; like
// Tuner.collect it runs inline on the I/O path.
//
//kml:hotpath
func (t *FileTuner) collect(ev trace.Event) {
	rec := features.Record{
		Inode:  ev.Inode,
		Offset: ev.Offset,
		Time:   ev.Time,
		Write:  ev.Point == trace.WritebackDirtyPage,
	}
	t.pipeline.Collect(rec)
}

// MaybeTick drains the pipeline and, once per window, classifies every
// active file and updates its ra_pages.
func (t *FileTuner) MaybeTick(now time.Duration) {
	t.pipeline.Flush()
	if !t.started {
		t.started = true
		t.nextTick = now + t.window
		return
	}
	if now < t.nextTick {
		return
	}
	t.nextTick = now + t.window
	for ino, fw := range t.files {
		events := fw.ext.Events()
		if events < t.minEvents {
			fw.ext.Reset()
			continue
		}
		raw := fw.ext.Emit(t.dev.ReadaheadSectors())
		t.norm.ApplyInto(t.featBuf, raw)
		class := t.model.Predict(t.featBuf)
		sectors := t.policy[class%len(t.policy)]
		t.cache.SetFileReadahead(pagecache.FileID(ino), sectors)
		t.decisions = append(t.decisions, FileDecision{
			Time:    now,
			Inode:   ino,
			Class:   class,
			Sectors: sectors,
			Events:  events,
		})
	}
}

// Decisions returns the per-file tuning history.
func (t *FileTuner) Decisions() []FileDecision { return t.decisions }

// ActiveFiles returns how many inodes currently hold window state.
func (t *FileTuner) ActiveFiles() int { return len(t.files) }

// Dropped returns how many samples the collection ring discarded.
func (t *FileTuner) Dropped() uint64 { return t.pipeline.Dropped() }
