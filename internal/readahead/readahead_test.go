package readahead

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/clock"
	"repro/internal/features"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestModelArchitecture(t *testing.T) {
	net := NewModel(1)
	if net.InDim() != features.Count || net.OutDim() != workload.NumClasses {
		t.Errorf("dims %d→%d", net.InDim(), net.OutDim())
	}
	// Three linear layers with sigmoids between (paper §4).
	if got := net.String(); got != "linear(4→15) → sigmoid → linear(15→15) → sigmoid → linear(15→4)" {
		t.Errorf("architecture %q", got)
	}
	// The paper reports 3,916 bytes of model memory; ours is the same
	// order of magnitude.
	if b := net.ParamBytes(); b < 2000 || b > 8000 {
		t.Errorf("model bytes %d outside the paper's order of magnitude", b)
	}
}

// syntheticDataset builds raw vectors with class-dependent structure
// resembling the real features.
func syntheticDataset(n int, seed int64) ([]features.Vector, []int) {
	rng := rand.New(rand.NewSource(seed))
	var raw []features.Vector
	var labels []int
	for i := 0; i < n; i++ {
		class := i % workload.NumClasses
		var v features.Vector
		switch class {
		case 0: // seq: many events, ascending deltas, no writes
			v = features.Vector{200000 + rng.Float64()*20000, 5000, 3000, 1.3, 0.98, 0, 256}
		case 1: // random: large jumps, no writes
			v = features.Vector{40000 + rng.Float64()*5000, 8000, 4500 + rng.Float64()*200, 600, rng.Float64()*0.2 - 0.1, 0, 256}
		case 2: // reverse: descending deltas
			v = features.Vector{100000 + rng.Float64()*10000, 5000, 3000, 1.3, -0.95, 0, 256}
		case 3: // mixed read/write: write events present
			v = features.Vector{60000 + rng.Float64()*5000, 4000, 2500, 300, rng.Float64() * 0.3, 0.1 + rng.Float64()*0.1, 256}
		}
		// Noise.
		for j := range v {
			v[j] *= 1 + 0.02*rng.NormFloat64()
		}
		raw = append(raw, v)
		labels = append(labels, class)
	}
	return raw, labels
}

func TestTrainModelConverges(t *testing.T) {
	raw, labels := syntheticDataset(200, 1)
	norm := features.FitNormalizer(raw)
	normed := make([]features.Vector, len(raw))
	for i, v := range raw {
		normed[i] = norm.Apply(v)
	}
	net := NewModel(2)
	losses := TrainModel(net, normed, labels, TrainConfig{Epochs: 80, Seed: 2})
	if len(losses) != 80 {
		t.Fatalf("%d epochs", len(losses))
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("loss did not decrease: %g -> %g", losses[0], losses[len(losses)-1])
	}
	if acc := Evaluate(NewNNClassifier(net), normed, labels); acc < 0.95 {
		t.Errorf("train accuracy %.2f", acc)
	}
}

func TestKFoldCVHighAccuracyOnSeparableData(t *testing.T) {
	raw, labels := syntheticDataset(150, 3)
	accs := KFoldCV(raw, labels, 5, TrainConfig{Epochs: 60, Seed: 3})
	if len(accs) != 5 {
		t.Fatalf("%d folds", len(accs))
	}
	if m := Mean(accs); m < 0.9 {
		t.Errorf("CV accuracy %.2f < 0.9", m)
	}
}

func TestKFoldCVPanicsOnBadK(t *testing.T) {
	raw, labels := syntheticDataset(8, 4)
	defer func() {
		if recover() == nil {
			t.Error("k=1 must panic")
		}
	}()
	KFoldCV(raw, labels, 1, TrainConfig{})
}

func TestTreeClassifierMatchesNNOnSeparableData(t *testing.T) {
	raw, labels := syntheticDataset(200, 5)
	norm := features.FitNormalizer(raw)
	normed := make([]features.Vector, len(raw))
	for i, v := range raw {
		normed[i] = norm.Apply(v)
	}
	tree, err := TrainTree(normed, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Evaluate(tree, normed, labels); acc < 0.95 {
		t.Errorf("tree accuracy %.2f", acc)
	}
	if tree.Name() != "readahead-dtree" {
		t.Error("tree name")
	}
}

func TestFixedClassifierAgreesWithFloat(t *testing.T) {
	raw, labels := syntheticDataset(200, 6)
	norm := features.FitNormalizer(raw)
	normed := make([]features.Vector, len(raw))
	for i, v := range raw {
		normed[i] = norm.Apply(v)
	}
	net := NewModel(6)
	TrainModel(net, normed, labels, TrainConfig{Epochs: 60, Seed: 6})
	nnc := NewNNClassifier(net)
	fc, err := NewFixedClassifier(net)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for _, v := range normed {
		sel := features.Select(v)
		if nnc.Predict(sel) == fc.Predict(sel) {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(normed)); frac < 0.95 {
		t.Errorf("fixed agreement %.2f", frac)
	}
	if fc.Name() != "readahead-nn-fixed" || nnc.Name() != "readahead-nn" {
		t.Error("classifier names")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 || Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean")
	}
}

func TestDefaultPolicyShape(t *testing.T) {
	p := DefaultPolicy(blockdev.NVMe())
	if p[workload.ReadSeq.Class()] <= p[workload.ReadRandom.Class()] {
		t.Error("readseq must get more readahead than readrandom")
	}
	if p[workload.ReadRandom.Class()] != blockdev.SectorsPerPage {
		t.Error("readrandom should get the minimum")
	}
}

// fixedClassifier always predicts one class.
type fixedClassifier int

func (f fixedClassifier) Predict([]float64) int { return int(f) }
func (f fixedClassifier) Name() string          { return "fixed" }

func TestTunerAppliesPolicy(t *testing.T) {
	clk := clock.New()
	dev := blockdev.New(blockdev.NVMe(), clk)
	policy := Policy{0: 1024, 1: 8, 2: 16, 3: 32}
	tuner, err := NewTuner(dev, fixedClassifier(1), features.Normalizer{}, TunerConfig{Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	hook := tuner.Hook()
	// Feed one window of events, then cross the window boundary.
	tuner.MaybeTick(clk.Now()) // arms the first window
	for i := 0; i < 100; i++ {
		hook(trace.Event{Point: trace.AddToPageCache, Inode: 1, Offset: int64(i), Time: clk.Now()})
	}
	clk.Advance(1100 * time.Millisecond)
	tuner.MaybeTick(clk.Now())
	if dev.ReadaheadSectors() != 8 {
		t.Errorf("readahead = %d, want 8 (class 1 policy)", dev.ReadaheadSectors())
	}
	ds := tuner.Decisions()
	if len(ds) != 1 {
		t.Fatalf("%d decisions", len(ds))
	}
	if ds[0].Class != 1 || ds[0].Sectors != 8 || ds[0].Events != 100 {
		t.Errorf("decision %+v", ds[0])
	}
	if tuner.Collected() != 100 || tuner.Dropped() != 0 {
		t.Errorf("collected %d dropped %d", tuner.Collected(), tuner.Dropped())
	}
}

func TestTunerTicksOncePerWindow(t *testing.T) {
	clk := clock.New()
	dev := blockdev.New(blockdev.NVMe(), clk)
	tuner, err := NewTuner(dev, fixedClassifier(0), features.Normalizer{}, TunerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tuner.MaybeTick(clk.Now())
	for i := 0; i < 50; i++ {
		clk.Advance(100 * time.Millisecond) // 5 seconds total
		tuner.MaybeTick(clk.Now())
	}
	if n := len(tuner.Decisions()); n < 4 || n > 5 {
		t.Errorf("%d decisions over 5s with a 1s window", n)
	}
}

func TestTunerValidation(t *testing.T) {
	if _, err := NewTuner(nil, fixedClassifier(0), features.Normalizer{}, TunerConfig{}); err == nil {
		t.Error("nil device must error")
	}
	clk := clock.New()
	dev := blockdev.New(blockdev.NVMe(), clk)
	if _, err := NewTuner(dev, nil, features.Normalizer{}, TunerConfig{}); err == nil {
		t.Error("nil model must error")
	}
}

func TestCollectDatasetLabelsAndCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	simCfg := sim.Config{Profile: blockdev.NVMe(), Keys: 3000, CachePages: 256, Seed: 1}
	dcfg := DatasetConfig{SecondsPerRun: 3, RASectors: []int{8, 256}}
	raw, labels, err := CollectDataset(simCfg, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 kinds × 2 ra values × (3-1) windows (warmup discarded).
	want := 4 * 2 * 2
	if len(raw) != want || len(labels) != want {
		t.Fatalf("dataset %d/%d, want %d", len(raw), len(labels), want)
	}
	seen := map[int]int{}
	for _, l := range labels {
		seen[l]++
	}
	for c := 0; c < workload.NumClasses; c++ {
		if seen[c] != want/4 {
			t.Errorf("class %d has %d windows", c, seen[c])
		}
	}
	// Feature vectors must be non-degenerate.
	for i, v := range raw {
		if v[features.FeatEventCount] == 0 {
			t.Errorf("window %d (class %d) saw no events", i, labels[i])
		}
	}
}

func TestEndToEndClassifierOnLiveWindows(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	simCfg := sim.Config{Profile: blockdev.NVMe(), Keys: 6000, CachePages: 480, Seed: 2}
	raw, labels, err := CollectDataset(simCfg, DatasetConfig{SecondsPerRun: 10, RASectors: []int{8, 256}})
	if err != nil {
		t.Fatal(err)
	}
	norm := features.FitNormalizer(raw)
	normed := make([]features.Vector, len(raw))
	for i, v := range raw {
		normed[i] = norm.Apply(v)
	}
	net := NewModel(2)
	TrainModel(net, normed, labels, TrainConfig{Seed: 2})
	acc := Evaluate(NewNNClassifier(net), normed, labels)
	if acc < 0.85 {
		t.Errorf("live-window training accuracy %.2f < 0.85", acc)
	}
}

// TestTunerInstrumented drives an instrumented tuner over several windows
// and checks the inference histogram, per-class counters, flight
// recorder, and pipeline gauges all observe the decisions.
func TestTunerInstrumented(t *testing.T) {
	clk := clock.New()
	dev := blockdev.New(blockdev.NVMe(), clk)
	tuner, err := NewTuner(dev, fixedClassifier(1), features.Normalizer{}, TunerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tuner.Instrument(reg, 4)
	hook := tuner.Hook()

	tuner.MaybeTick(clk.Now())
	const windows = 6
	for w := 0; w < windows; w++ {
		for i := 0; i < 50; i++ {
			hook(trace.Event{Point: trace.AddToPageCache, Inode: 1, Offset: int64(i), Time: clk.Now()})
		}
		clk.Advance(1100 * time.Millisecond)
		tuner.MaybeTick(clk.Now())
	}

	snap := reg.Histogram("readahead_infer_ns").Snapshot()
	if snap.Count != windows {
		t.Errorf("infer histogram count %d, want %d", snap.Count, windows)
	}
	if snap.Quantile(0.99) < 0 {
		t.Error("negative inference latency")
	}
	if got := reg.Counter("readahead_decision_class_1").Load(); got != windows {
		t.Errorf("class-1 counter %d, want %d", got, windows)
	}
	if got := reg.Counter("readahead_decision_class_0").Load(); got != 0 {
		t.Errorf("class-0 counter %d, want 0", got)
	}

	// Flight recorder keeps only the latest 4 of 6 decisions.
	fl := tuner.Flight()
	if len(fl) != 4 {
		t.Fatalf("flight recorder retained %d, want 4", len(fl))
	}
	all := tuner.Decisions()
	for i, e := range fl {
		want := all[len(all)-4+i]
		if e.Decision != want {
			t.Errorf("flight[%d] = %+v, want %+v", i, e.Decision, want)
		}
		if e.Class != 1 || e.Sectors != 8 {
			t.Errorf("flight[%d] class/sectors %d/%d", i, e.Class, e.Sectors)
		}
	}
	// Oldest-first ordering: times strictly increase.
	for i := 1; i < len(fl); i++ {
		if fl[i].Time <= fl[i-1].Time {
			t.Errorf("flight out of order at %d: %v <= %v", i, fl[i].Time, fl[i-1].Time)
		}
	}

	// Pipeline gauges were registered and reflect collection.
	vals := map[string]int64{}
	for _, s := range reg.Snapshot() {
		vals[s.Name] = s.Value
	}
	if vals["readahead_pipeline_collected"] != windows*50 {
		t.Errorf("collected gauge %d, want %d", vals["readahead_pipeline_collected"], windows*50)
	}
	if vals["readahead_pipeline_buffer_cap"] == 0 {
		t.Error("buffer_cap gauge missing or zero")
	}
}

// TestTunerUninstrumented: Flight on a bare tuner is nil and ticking
// does not panic.
func TestTunerUninstrumented(t *testing.T) {
	clk := clock.New()
	dev := blockdev.New(blockdev.NVMe(), clk)
	tuner, err := NewTuner(dev, fixedClassifier(0), features.Normalizer{}, TunerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tuner.MaybeTick(clk.Now())
	clk.Advance(2 * time.Second)
	tuner.MaybeTick(clk.Now())
	if tuner.Flight() != nil {
		t.Error("uninstrumented tuner returned flight entries")
	}
}
