package readahead

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/dtrace"
	"repro/internal/features"
	"repro/internal/mserve"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Policy maps a predicted workload class to the readahead value (sectors)
// that maximized throughput for that class in the sweep study — the
// "mapping from the workload type to the readahead value that provided the
// best throughput" the paper builds empirically (§4).
type Policy [workload.NumClasses]int

// DefaultPolicy returns the per-class readahead values found by the sweep
// (cmd/kml-sweep regenerates them): sequential scans want a window large
// enough to stream — beyond which throughput is flat — while
// random-dominated workloads want readahead out of the way. The readseq
// optimum is the only value that differs between devices: NVMe saturates
// with a small window, the SATA SSD needs a larger one to amortize command
// overhead.
func DefaultPolicy(prof blockdev.Profile) Policy {
	seq := 224
	if prof.Name == blockdev.NVMe().Name {
		seq = 32
	}
	return Policy{
		0: seq, // readseq
		1: 8,   // readrandom
		2: 8,   // readreverse
		3: 8,   // readrandomwriterandom
	}
}

// Decision is one tuning step, recorded for the Figure-2 timeline.
type Decision struct {
	Time    time.Duration
	Class   int
	Sectors int
	Events  uint64 // tracepoints in the decided window
	Version uint64 // model version that made the call; 0 for a static model
}

// TunerConfig parameterizes the closed loop.
type TunerConfig struct {
	// Window is the decision interval; 0 means 1 second (the paper runs
	// inference "in a different thread context once a second").
	Window time.Duration
	// BufferCapacity sizes the collection ring; 0 means 1<<16 records.
	BufferCapacity int
	// Policy maps classes to sectors; the zero Policy is replaced by
	// DefaultPolicy for the tuned device.
	Policy Policy
}

// Tuner is the deployed KML readahead application: it collects tracepoint
// records through a lock-free pipeline, extracts one feature window per
// second, classifies the running workload, and drives the device readahead
// setting (the block-layer ioctl path of Figure 1).
type Tuner struct {
	dev      *blockdev.Device
	model    core.Classifier
	deploy   *mserve.Deployment[core.Classifier]
	norm     features.Normalizer
	policy   Policy
	window   time.Duration
	pipeline *core.Pipeline[features.Record]
	ext      *features.Extractor
	featBuf  []float64
	nextTick time.Duration
	started  bool

	decisions []Decision
	seq       uint64 // monotonic decision counter (first decision = 1)

	inferNanos *telemetry.Histogram
	decCount   *telemetry.Counter // readahead_decisions: one per window tick
	classCount [workload.NumClasses]*telemetry.Counter
	flight     *telemetry.FlightRecorder[FlightEntry]

	// Decision tracing (EnableTracing) and drift detection
	// (InstrumentDrift). The builder and scratch are owned by the tuner
	// so a traced tick allocates nothing.
	arena      *dtrace.Arena
	outcome    OutcomeSampler
	builder    dtrace.Builder
	pendingOut bool   // a trace is open, waiting for its outcome window
	outcomeIdx int    // index of the open outcome span
	outHits    uint64 // cache counters at the decision instant
	outMisses  uint64
	prevRatePM int64 // previous window's hit rate (per-mille, -1 unknown)
	drift      *dtrace.DriftMonitor
	driftFeats []float64
	sink       SampleSink
}

// OutcomeSampler reports cumulative cache hit/miss counters; the tuner
// samples it at decision boundaries to attribute each decision's
// outcome (pagecache.Cache.HitMissCounts is the canonical source).
type OutcomeSampler func() (hits, misses uint64)

// SampleSink receives one decision window's RAW (pre-normalization)
// candidate feature vector, the predicted class, and the window's event
// count — the training-example feed for an online-learning consumer
// (internal/olearn buffers these and retrains on them when drift fires).
// The sink runs inline on the decision tick, so it must be cheap and
// must not block; the vector is passed by value and safe to retain.
type SampleSink func(raw features.Vector, class int, events uint64)

// FlightEntry is one flight-recorder record: the decision plus the
// normalized feature vector the model saw, so an operator inspecting
// "why did it pick class 1?" gets the inputs alongside the output. Seq
// is the tuner's monotonic decision number (1 for the first decision),
// so interleaved dumps from several snapshots can be ordered and gaps
// (evicted entries) detected.
type FlightEntry struct {
	Decision
	Seq      uint64
	Features [features.Count]float64
}

// NewTuner builds a tuner around a trained classifier and its fitted
// normalizer.
func NewTuner(dev *blockdev.Device, model core.Classifier, norm features.Normalizer, cfg TunerConfig) (*Tuner, error) {
	if dev == nil || model == nil {
		return nil, errors.New("readahead: nil device or model")
	}
	if cfg.Window == 0 {
		cfg.Window = time.Second
	}
	if cfg.BufferCapacity == 0 {
		cfg.BufferCapacity = 1 << 16
	}
	if cfg.Policy == (Policy{}) {
		cfg.Policy = DefaultPolicy(dev.Profile())
	}
	t := &Tuner{
		dev:        dev,
		model:      model,
		norm:       norm,
		policy:     cfg.Policy,
		window:     cfg.Window,
		ext:        features.NewExtractor(),
		featBuf:    make([]float64, features.Count),
		driftFeats: make([]float64, features.Count),
		prevRatePM: -1,
	}
	p, err := core.NewPipeline[features.Record](
		core.Config{BufferCapacity: cfg.BufferCapacity, SampleBytes: 32},
		func(batch []features.Record, _ core.Mode) {
			for _, r := range batch {
				t.ext.Add(r)
			}
		},
	)
	if err != nil {
		return nil, err
	}
	p.SetMode(core.ModeInference)
	t.pipeline = p
	return t, nil
}

// NewDeployedTuner builds a tuner whose classifier comes from a hot-swap
// deployment handle instead of a fixed model: every decision window
// dereferences the handle, so a Swap (retrain-and-redeploy, or a
// rollback) takes effect at the next tick without pausing collection.
// The deployment may be empty at construction time; ticks before the
// first Swap keep the device's current readahead untouched.
func NewDeployedTuner(dev *blockdev.Device, deploy *mserve.Deployment[core.Classifier], norm features.Normalizer, cfg TunerConfig) (*Tuner, error) {
	if deploy == nil {
		return nil, errors.New("readahead: nil deployment")
	}
	// stub satisfies NewTuner's nil-model check; the deployment handle
	// takes precedence everywhere a model is dereferenced.
	t, err := NewTuner(dev, stubClassifier{}, norm, cfg)
	if err != nil {
		return nil, err
	}
	t.model = nil
	t.deploy = deploy
	return t, nil
}

// stubClassifier exists only to pass construction-time validation in
// NewDeployedTuner; it is discarded before the tuner is returned.
type stubClassifier struct{}

func (stubClassifier) Predict([]float64) int { return 0 }
func (stubClassifier) Name() string          { return "stub" }

// Hook returns the inline data-collection function to register on the
// tracer. It costs one lock-free ring push per event.
func (t *Tuner) Hook() trace.Hook {
	return t.collect
}

// collect is the paper's inline data-collection function (§4): it runs on
// every tracepoint firing, so it is a single struct copy and a lock-free
// ring push. The record literal stays on the stack — Collect's parameter
// is a concrete type, not an interface.
//
//kml:hotpath
func (t *Tuner) collect(ev trace.Event) {
	rec := features.Record{
		Inode:  ev.Inode,
		Offset: ev.Offset,
		Time:   ev.Time,
		Write:  ev.Point == trace.WritebackDirtyPage,
	}
	t.pipeline.Collect(rec)
}

// MaybeTick drains the pipeline and, once per window, runs inference and
// applies the policy. The simulation loop calls it between operations; in
// a live deployment the pipeline's asynchronous thread plays this role.
func (t *Tuner) MaybeTick(now time.Duration) {
	t.pipeline.Flush()
	if !t.started {
		t.started = true
		t.nextTick = now + t.window
		return
	}
	if now < t.nextTick {
		return
	}
	t.nextTick = now + t.window
	model, version := t.model, uint64(0)
	if t.deploy != nil {
		snap := t.deploy.Load()
		if snap == nil {
			return // nothing deployed yet; leave the device alone
		}
		model, version = snap.Model, snap.Version
	}
	// The window that just elapsed is the previous decision's outcome
	// window: attribute it and retire that trace before deciding again.
	t.closePendingTrace()
	tracing := t.arena != nil
	var featIdx, normIdx, inferIdx int
	if tracing {
		t.builder.Start(t.arena.NextID(), time.Now().UnixNano())
		t.builder.SetAux(0, int64(now))
		featIdx = t.builder.Begin(dtrace.StageFeature, 0, time.Now().UnixNano())
	}
	events := t.ext.Events()
	raw := t.ext.Emit(t.dev.ReadaheadSectors())
	if tracing {
		t.builder.End(featIdx, time.Now().UnixNano())
		t.builder.SetValue(featIdx, int64(events))
		normIdx = t.builder.Begin(dtrace.StageNormalize, 0, time.Now().UnixNano())
	}
	norm := t.norm
	norm.ApplyInto(t.featBuf, raw)
	if tracing {
		t.builder.End(normIdx, time.Now().UnixNano())
		t.builder.SetValue(normIdx, int64(len(t.featBuf)))
		inferIdx = t.builder.Begin(dtrace.StageInfer, 0, time.Now().UnixNano())
	}
	var class int
	if t.inferNanos != nil {
		start := time.Now()
		class = model.Predict(t.featBuf)
		t.inferNanos.Observe(time.Since(start).Nanoseconds())
	} else {
		class = model.Predict(t.featBuf)
	}
	if tracing {
		t.builder.End(inferIdx, time.Now().UnixNano())
		t.builder.SetValue(inferIdx, int64(class))
		t.builder.SetAux(inferIdx, int64(version))
	}
	sectors := t.policy[class%len(t.policy)]
	if tracing {
		applyIdx := t.builder.Begin(dtrace.StageApply, 0, time.Now().UnixNano())
		t.builder.SetAux(applyIdx, int64(t.dev.ReadaheadSectors()))
		t.dev.SetReadahead(sectors)
		t.builder.End(applyIdx, time.Now().UnixNano())
		t.builder.SetValue(applyIdx, int64(sectors))
		t.builder.SetValue(0, int64(class))
		// The outcome span stays open across the NEXT window; the trace
		// is retired at the next tick (or FlushTrace).
		t.outcomeIdx = t.builder.Begin(dtrace.StageOutcome, 0, time.Now().UnixNano())
		if t.outcome != nil {
			t.outHits, t.outMisses = t.outcome()
		}
		t.pendingOut = true
	} else {
		t.dev.SetReadahead(sectors)
	}
	t.seq++
	if t.decCount != nil {
		t.decCount.Inc()
	}
	d := Decision{
		Time:    now,
		Class:   class,
		Sectors: sectors,
		Events:  events,
		Version: version,
	}
	t.decisions = append(t.decisions, d)
	if t.drift != nil {
		for i, c := range features.Selected {
			t.driftFeats[i] = raw[c]
		}
		t.drift.Observe(t.driftFeats, class)
	}
	if t.sink != nil {
		t.sink(raw, class, events)
	}
	if t.flight != nil {
		if class >= 0 && class < len(t.classCount) {
			t.classCount[class].Inc()
		}
		e := FlightEntry{Decision: d, Seq: t.seq}
		copy(e.Features[:], t.featBuf)
		t.flight.Record(e)
	}
}

// closePendingTrace finishes the in-flight decision trace: it samples
// the outcome window's cache hit rate, stamps the outcome span with the
// rate and its delta vs. the preceding window (the decision's reward
// signal), and retires the trace into the arena.
func (t *Tuner) closePendingTrace() {
	if !t.pendingOut {
		return
	}
	t.pendingOut = false
	wall := time.Now().UnixNano()
	ratePM := int64(-1)
	deltaPM := int64(0)
	if t.outcome != nil {
		hits, misses := t.outcome()
		dh, dm := hits-t.outHits, misses-t.outMisses
		if dh+dm > 0 {
			ratePM = int64(dh * 1000 / (dh + dm))
			if t.prevRatePM >= 0 {
				deltaPM = ratePM - t.prevRatePM
			}
			t.prevRatePM = ratePM
		}
	}
	t.builder.End(t.outcomeIdx, wall)
	t.builder.SetValue(t.outcomeIdx, deltaPM)
	t.builder.SetAux(t.outcomeIdx, ratePM)
	t.arena.Record(t.builder.Finish(wall))
}

// Instrument attaches telemetry to the tuner: readahead_infer_ns times
// each model.Predict (the paper's 21 µs per-inference figure, measured
// live), readahead_decisions counts decision windows (the tuner's
// throughput series in MsgTimeSeries), readahead_decision_class_<i>
// counts decisions per predicted class, the pipeline's counters become
// gauges under readahead_pipeline, and a flight recorder retains the
// last flightN decisions with the feature vectors that produced them.
// Call before the tuner runs.
func (t *Tuner) Instrument(reg *telemetry.Registry, flightN int) {
	t.inferNanos = reg.Histogram("readahead_infer_ns")
	t.decCount = reg.Counter("readahead_decisions")
	for i := range t.classCount {
		t.classCount[i] = reg.Counter(fmt.Sprintf("readahead_decision_class_%d", i))
	}
	if flightN <= 0 {
		flightN = 64
	}
	t.flight = telemetry.NewFlightRecorder[FlightEntry](flightN)
	t.pipeline.RegisterMetrics(reg, "readahead_pipeline")
}

// EnableTracing attaches a dtrace arena: every subsequent decision
// window mints a TraceID and records child spans for feature
// aggregation, normalization, inference, and the readahead change,
// plus an outcome span that samples `outcome` (cumulative cache
// hit/miss counters; nil disables attribution) over the FOLLOWING
// window, so each retained trace answers both "why" and "did it help".
// Call before the tuner runs; the traced tick performs no allocation.
func (t *Tuner) EnableTracing(a *dtrace.Arena, outcome OutcomeSampler) {
	t.arena = a
	t.outcome = outcome
}

// TraceArena returns the arena attached by EnableTracing, or nil.
func (t *Tuner) TraceArena() *dtrace.Arena { return t.arena }

// SetSampleSink attaches a per-decision sample consumer. Call before the
// tuner runs; a nil sink detaches.
func (t *Tuner) SetSampleSink(fn SampleSink) { t.sink = fn }

// DriftMonitor returns the monitor attached by InstrumentDrift, or nil.
func (t *Tuner) DriftMonitor() *dtrace.DriftMonitor { return t.drift }

// FlushTrace retires the in-flight decision trace without waiting for
// the next tick, attributing whatever fraction of the outcome window
// has elapsed. Call at the end of a run so the final decision is not
// lost.
func (t *Tuner) FlushTrace() {
	if t.arena != nil {
		t.closePendingTrace()
	}
}

// InstrumentDrift attaches a drift monitor that checks, every `window`
// decisions (0 = dtrace.DefaultDriftWindow), whether the live feature
// population still matches the TRAINING-TIME statistics frozen in the
// tuner's normalizer — plus prediction churn and class distribution.
// Gauges register under "readahead_drift" when reg is non-nil. Returns
// the monitor for direct DriftReport access.
func (t *Tuner) InstrumentDrift(reg *telemetry.Registry, window int) *dtrace.DriftMonitor {
	means, stds := t.norm.SelectedStats()
	m := dtrace.NewDriftMonitor(dtrace.DriftConfig{
		Features:   features.Count,
		Classes:    workload.NumClasses,
		Window:     window,
		TrainMeans: means[:],
		TrainStds:  stds[:],
	})
	if reg != nil {
		m.RegisterMetrics(reg, "readahead_drift")
	}
	t.drift = m
	return m
}

// Seq returns the monotonic decision counter (the Seq of the most
// recent FlightEntry; 0 before any decision).
func (t *Tuner) Seq() uint64 { return t.seq }

// Flight returns the retained tail of decisions (oldest first), or nil
// if the tuner is not instrumented.
func (t *Tuner) Flight() []FlightEntry {
	if t.flight == nil {
		return nil
	}
	return t.flight.Snapshot()
}

// Decisions returns the tuning history (the Figure-2 readahead series).
func (t *Tuner) Decisions() []Decision { return t.decisions }

// Dropped returns how many samples the collection ring discarded.
func (t *Tuner) Dropped() uint64 { return t.pipeline.Dropped() }

// Collected returns how many samples the hook accepted.
func (t *Tuner) Collected() uint64 { return t.pipeline.Collected() }

// Model returns the deployed classifier: the fixed model for NewTuner,
// or the current snapshot (nil before the first Swap) for
// NewDeployedTuner.
func (t *Tuner) Model() core.Classifier {
	if t.deploy != nil {
		snap := t.deploy.Load()
		if snap == nil {
			return nil
		}
		return snap.Model
	}
	return t.model
}
