package readahead

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/mserve"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Policy maps a predicted workload class to the readahead value (sectors)
// that maximized throughput for that class in the sweep study — the
// "mapping from the workload type to the readahead value that provided the
// best throughput" the paper builds empirically (§4).
type Policy [workload.NumClasses]int

// DefaultPolicy returns the per-class readahead values found by the sweep
// (cmd/kml-sweep regenerates them): sequential scans want a window large
// enough to stream — beyond which throughput is flat — while
// random-dominated workloads want readahead out of the way. The readseq
// optimum is the only value that differs between devices: NVMe saturates
// with a small window, the SATA SSD needs a larger one to amortize command
// overhead.
func DefaultPolicy(prof blockdev.Profile) Policy {
	seq := 224
	if prof.Name == blockdev.NVMe().Name {
		seq = 32
	}
	return Policy{
		0: seq, // readseq
		1: 8,   // readrandom
		2: 8,   // readreverse
		3: 8,   // readrandomwriterandom
	}
}

// Decision is one tuning step, recorded for the Figure-2 timeline.
type Decision struct {
	Time    time.Duration
	Class   int
	Sectors int
	Events  uint64 // tracepoints in the decided window
	Version uint64 // model version that made the call; 0 for a static model
}

// TunerConfig parameterizes the closed loop.
type TunerConfig struct {
	// Window is the decision interval; 0 means 1 second (the paper runs
	// inference "in a different thread context once a second").
	Window time.Duration
	// BufferCapacity sizes the collection ring; 0 means 1<<16 records.
	BufferCapacity int
	// Policy maps classes to sectors; the zero Policy is replaced by
	// DefaultPolicy for the tuned device.
	Policy Policy
}

// Tuner is the deployed KML readahead application: it collects tracepoint
// records through a lock-free pipeline, extracts one feature window per
// second, classifies the running workload, and drives the device readahead
// setting (the block-layer ioctl path of Figure 1).
type Tuner struct {
	dev      *blockdev.Device
	model    core.Classifier
	deploy   *mserve.Deployment[core.Classifier]
	norm     features.Normalizer
	policy   Policy
	window   time.Duration
	pipeline *core.Pipeline[features.Record]
	ext      *features.Extractor
	featBuf  []float64
	nextTick time.Duration
	started  bool

	decisions []Decision

	inferNanos *telemetry.Histogram
	classCount [workload.NumClasses]*telemetry.Counter
	flight     *telemetry.FlightRecorder[FlightEntry]
}

// FlightEntry is one flight-recorder record: the decision plus the
// normalized feature vector the model saw, so an operator inspecting
// "why did it pick class 1?" gets the inputs alongside the output.
type FlightEntry struct {
	Decision
	Features [features.Count]float64
}

// NewTuner builds a tuner around a trained classifier and its fitted
// normalizer.
func NewTuner(dev *blockdev.Device, model core.Classifier, norm features.Normalizer, cfg TunerConfig) (*Tuner, error) {
	if dev == nil || model == nil {
		return nil, errors.New("readahead: nil device or model")
	}
	if cfg.Window == 0 {
		cfg.Window = time.Second
	}
	if cfg.BufferCapacity == 0 {
		cfg.BufferCapacity = 1 << 16
	}
	if cfg.Policy == (Policy{}) {
		cfg.Policy = DefaultPolicy(dev.Profile())
	}
	t := &Tuner{
		dev:     dev,
		model:   model,
		norm:    norm,
		policy:  cfg.Policy,
		window:  cfg.Window,
		ext:     features.NewExtractor(),
		featBuf: make([]float64, features.Count),
	}
	p, err := core.NewPipeline[features.Record](
		core.Config{BufferCapacity: cfg.BufferCapacity, SampleBytes: 32},
		func(batch []features.Record, _ core.Mode) {
			for _, r := range batch {
				t.ext.Add(r)
			}
		},
	)
	if err != nil {
		return nil, err
	}
	p.SetMode(core.ModeInference)
	t.pipeline = p
	return t, nil
}

// NewDeployedTuner builds a tuner whose classifier comes from a hot-swap
// deployment handle instead of a fixed model: every decision window
// dereferences the handle, so a Swap (retrain-and-redeploy, or a
// rollback) takes effect at the next tick without pausing collection.
// The deployment may be empty at construction time; ticks before the
// first Swap keep the device's current readahead untouched.
func NewDeployedTuner(dev *blockdev.Device, deploy *mserve.Deployment[core.Classifier], norm features.Normalizer, cfg TunerConfig) (*Tuner, error) {
	if deploy == nil {
		return nil, errors.New("readahead: nil deployment")
	}
	// stub satisfies NewTuner's nil-model check; the deployment handle
	// takes precedence everywhere a model is dereferenced.
	t, err := NewTuner(dev, stubClassifier{}, norm, cfg)
	if err != nil {
		return nil, err
	}
	t.model = nil
	t.deploy = deploy
	return t, nil
}

// stubClassifier exists only to pass construction-time validation in
// NewDeployedTuner; it is discarded before the tuner is returned.
type stubClassifier struct{}

func (stubClassifier) Predict([]float64) int { return 0 }
func (stubClassifier) Name() string          { return "stub" }

// Hook returns the inline data-collection function to register on the
// tracer. It costs one lock-free ring push per event.
func (t *Tuner) Hook() trace.Hook {
	return t.collect
}

// collect is the paper's inline data-collection function (§4): it runs on
// every tracepoint firing, so it is a single struct copy and a lock-free
// ring push. The record literal stays on the stack — Collect's parameter
// is a concrete type, not an interface.
//
//kml:hotpath
func (t *Tuner) collect(ev trace.Event) {
	rec := features.Record{
		Inode:  ev.Inode,
		Offset: ev.Offset,
		Time:   ev.Time,
		Write:  ev.Point == trace.WritebackDirtyPage,
	}
	t.pipeline.Collect(rec)
}

// MaybeTick drains the pipeline and, once per window, runs inference and
// applies the policy. The simulation loop calls it between operations; in
// a live deployment the pipeline's asynchronous thread plays this role.
func (t *Tuner) MaybeTick(now time.Duration) {
	t.pipeline.Flush()
	if !t.started {
		t.started = true
		t.nextTick = now + t.window
		return
	}
	if now < t.nextTick {
		return
	}
	t.nextTick = now + t.window
	model, version := t.model, uint64(0)
	if t.deploy != nil {
		snap := t.deploy.Load()
		if snap == nil {
			return // nothing deployed yet; leave the device alone
		}
		model, version = snap.Model, snap.Version
	}
	events := t.ext.Events()
	raw := t.ext.Emit(t.dev.ReadaheadSectors())
	norm := t.norm
	norm.ApplyInto(t.featBuf, raw)
	var class int
	if t.inferNanos != nil {
		start := time.Now()
		class = model.Predict(t.featBuf)
		t.inferNanos.Observe(time.Since(start).Nanoseconds())
	} else {
		class = model.Predict(t.featBuf)
	}
	sectors := t.policy[class%len(t.policy)]
	t.dev.SetReadahead(sectors)
	d := Decision{
		Time:    now,
		Class:   class,
		Sectors: sectors,
		Events:  events,
		Version: version,
	}
	t.decisions = append(t.decisions, d)
	if t.flight != nil {
		if class >= 0 && class < len(t.classCount) {
			t.classCount[class].Inc()
		}
		e := FlightEntry{Decision: d}
		copy(e.Features[:], t.featBuf)
		t.flight.Record(e)
	}
}

// Instrument attaches telemetry to the tuner: readahead_infer_ns times
// each model.Predict (the paper's 21 µs per-inference figure, measured
// live), readahead_decision_class_<i> counts decisions per predicted
// class, the pipeline's counters become gauges under readahead_pipeline,
// and a flight recorder retains the last flightN decisions with the
// feature vectors that produced them. Call before the tuner runs.
func (t *Tuner) Instrument(reg *telemetry.Registry, flightN int) {
	t.inferNanos = reg.Histogram("readahead_infer_ns")
	for i := range t.classCount {
		t.classCount[i] = reg.Counter(fmt.Sprintf("readahead_decision_class_%d", i))
	}
	if flightN <= 0 {
		flightN = 64
	}
	t.flight = telemetry.NewFlightRecorder[FlightEntry](flightN)
	t.pipeline.RegisterMetrics(reg, "readahead_pipeline")
}

// Flight returns the retained tail of decisions (oldest first), or nil
// if the tuner is not instrumented.
func (t *Tuner) Flight() []FlightEntry {
	if t.flight == nil {
		return nil
	}
	return t.flight.Snapshot()
}

// Decisions returns the tuning history (the Figure-2 readahead series).
func (t *Tuner) Decisions() []Decision { return t.decisions }

// Dropped returns how many samples the collection ring discarded.
func (t *Tuner) Dropped() uint64 { return t.pipeline.Dropped() }

// Collected returns how many samples the hook accepted.
func (t *Tuner) Collected() uint64 { return t.pipeline.Collected() }

// Model returns the deployed classifier: the fixed model for NewTuner,
// or the current snapshot (nil before the first Swap) for
// NewDeployedTuner.
func (t *Tuner) Model() core.Classifier {
	if t.deploy != nil {
		snap := t.deploy.Load()
		if snap == nil {
			return nil
		}
		return snap.Model
	}
	return t.model
}
