// Package readahead is the KML application of the paper's case study: a
// workload classifier that tunes readahead values once per second from
// page-cache tracepoint features.
//
// The package contains the three pieces of the paper's workflow (§3.3, §4):
//
//   - model.go — the neural-network architecture (three linear layers with
//     sigmoid activations, cross-entropy loss, SGD lr=0.01 momentum=0.99),
//     training, k-fold cross-validation, and the decision-tree alternative;
//   - dataset.go — training-data collection by running the four training
//     workloads on NVMe and labeling one-second feature windows;
//   - tuner.go — the deployed closed loop: tracepoint hook → lock-free
//     ring → feature window → inference → blockdev readahead ioctl.
package readahead

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/dtree"
	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/workload"
)

// HiddenSize is the width of the model's two hidden layers. With 4 inputs
// and 4 classes this yields 379 float parameters — a ~3 KB float64 model,
// matching the order of the paper's 3,916-byte kernel footprint.
const HiddenSize = 15

// NewModel builds the readahead network: three linear layers joined by
// sigmoid activations (§4: "Our model has three linear layers, and these
// layers are connected with sigmoid activation functions").
func NewModel(seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	return nn.NewNetwork(
		nn.NewLinear(features.Count, HiddenSize, rng),
		nn.NewSigmoid(),
		nn.NewLinear(HiddenSize, HiddenSize, rng),
		nn.NewSigmoid(),
		nn.NewLinear(HiddenSize, workload.NumClasses, rng),
	)
}

// TrainConfig parameterizes model training. The zero value gives the
// paper's optimizer settings.
type TrainConfig struct {
	// Epochs over the training set; 0 means 150.
	Epochs int
	// Batch is the minibatch size; 0 means 16.
	Batch int
	// LR is the SGD learning rate; 0 means 0.01 (paper).
	LR float64
	// Momentum is the SGD momentum; 0 means 0.99 (paper).
	Momentum float64
	// Seed shuffles minibatches.
	Seed int64
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs == 0 {
		c.Epochs = 150
	}
	if c.Batch == 0 {
		c.Batch = 16
	}
	if c.LR == 0 {
		c.LR = 0.01
	}
	if c.Momentum == 0 {
		c.Momentum = 0.99
	}
	return c
}

// TrainModel fits net on normalized feature vectors with minibatch SGD and
// returns the mean loss of each epoch.
func TrainModel(net *nn.Network, x []features.Vector, y []int, cfg TrainConfig) []float64 {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	loss := nn.NewCrossEntropy()
	opt := nn.NewSGD(cfg.LR, cfg.Momentum)
	n := len(x)
	order := rng.Perm(n)
	losses := make([]float64, 0, cfg.Epochs)
	batchX := nn.NewMat(cfg.Batch, features.Count)
	batchY := make([]int, cfg.Batch)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		sum, batches := 0.0, 0
		for start := 0; start+cfg.Batch <= n; start += cfg.Batch {
			for bi := 0; bi < cfg.Batch; bi++ {
				idx := order[start+bi]
				features.SelectInto(batchX.Row(bi), x[idx])
				batchY[bi] = y[idx]
			}
			sum += net.TrainBatch(batchX, nn.ClassTarget(batchY), loss, opt)
			batches++
		}
		if batches > 0 {
			losses = append(losses, sum/float64(batches))
		}
	}
	return losses
}

// Evaluate returns classification accuracy on normalized vectors. When the
// classifier has a fused batched path (core.BatchClassifier) the whole set
// is classified in one call; per-sample classes are identical either way,
// so the accuracy is too.
func Evaluate(c core.Classifier, x []features.Vector, y []int) float64 {
	if len(x) == 0 {
		return 0
	}
	correct := 0
	if bc, ok := c.(core.BatchClassifier); ok {
		flat := make([]float64, len(x)*features.Count)
		for i, v := range x {
			features.SelectInto(flat[i*features.Count:(i+1)*features.Count], v)
		}
		classes := make([]int, len(x))
		bc.PredictBatch(flat, len(x), classes)
		for i, got := range classes {
			if got == y[i] {
				correct++
			}
		}
		return float64(correct) / float64(len(x))
	}
	buf := make([]float64, features.Count)
	for i, v := range x {
		features.SelectInto(buf, v)
		if c.Predict(buf) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

// KFoldCV reproduces the paper's validation: k-fold cross-validation
// (k=10 in §4) over raw windows, fitting the normalizer on each training
// split and returning per-fold accuracies. Samples are shuffled first so
// folds mix workloads.
func KFoldCV(raw []features.Vector, labels []int, k int, cfg TrainConfig) []float64 {
	return KFoldCVParallel(raw, labels, k, cfg, 1)
}

// KFoldCVParallel is KFoldCV with folds trained across workers goroutines
// (0 means GOMAXPROCS). Each fold's model seed is cfg.Seed+fold and the
// shuffle is drawn once up front, so every fold's work depends only on its
// index — accuracies are identical for any worker count.
func KFoldCVParallel(raw []features.Vector, labels []int, k int, cfg TrainConfig, workers int) []float64 {
	if k < 2 || len(raw) < k {
		panic("readahead: need k >= 2 and at least k samples")
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	order := rng.Perm(len(raw))
	accs := make([]float64, k)
	foldSize := len(raw) / k
	_ = parallel.For(k, parallel.Workers(workers), func(fold int) error {
		lo, hi := fold*foldSize, (fold+1)*foldSize
		if fold == k-1 {
			hi = len(raw)
		}
		var trainX, testX []features.Vector
		var trainY, testY []int
		for i, idx := range order {
			if i >= lo && i < hi {
				testX = append(testX, raw[idx])
				testY = append(testY, labels[idx])
			} else {
				trainX = append(trainX, raw[idx])
				trainY = append(trainY, labels[idx])
			}
		}
		norm := features.FitNormalizer(trainX)
		normed := make([]features.Vector, len(trainX))
		for i, v := range trainX {
			normed[i] = norm.Apply(v)
		}
		net := NewModel(cfg.Seed + int64(fold))
		TrainModel(net, normed, trainY, cfg)
		testNormed := make([]features.Vector, len(testX))
		for i, v := range testX {
			testNormed[i] = norm.Apply(v)
		}
		accs[fold] = Evaluate(NewNNClassifier(net), testNormed, testY)
		return nil
	})
	return accs
}

// Mean averages a slice (fold accuracies, epoch losses).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// NNClassifier adapts a neural network to core.Classifier.
type NNClassifier struct {
	net *nn.Network
	buf nn.PredictBuffer
}

// NewNNClassifier wraps a trained network.
func NewNNClassifier(net *nn.Network) *NNClassifier { return &NNClassifier{net: net} }

// Predict implements core.Classifier.
func (c *NNClassifier) Predict(f []float64) int { return c.net.Predict(f, &c.buf) }

// PredictBatch implements core.BatchClassifier via the network's fused
// batched forward pass.
func (c *NNClassifier) PredictBatch(f []float64, rows int, classes []int) {
	c.net.PredictBatch(f, rows, classes, &c.buf)
}

// CloneClassifier implements core.Cloneable with a deep copy: the network's
// forward scratch is mutable, so parallel workers each get their own.
func (c *NNClassifier) CloneClassifier() core.Classifier {
	return NewNNClassifier(c.net.Clone())
}

// Name implements core.Classifier.
func (c *NNClassifier) Name() string { return "readahead-nn" }

// Network returns the wrapped model (for saving).
func (c *NNClassifier) Network() *nn.Network { return c.net }

// FixedClassifier adapts a quantized network to core.Classifier, for
// FPU-less inference.
type FixedClassifier struct {
	fnet *nn.FixedNetwork
	src  *nn.Network // retained for CloneClassifier recompilation
}

// NewFixedClassifier compiles net to Q16.16 inference.
func NewFixedClassifier(net *nn.Network) (*FixedClassifier, error) {
	fnet, err := nn.CompileFixed(net)
	if err != nil {
		return nil, err
	}
	return &FixedClassifier{fnet: fnet, src: net}, nil
}

// Predict implements core.Classifier.
func (c *FixedClassifier) Predict(f []float64) int { return c.fnet.Predict(f) }

// PredictBatch implements core.BatchClassifier via the fused integer path.
func (c *FixedClassifier) PredictBatch(f []float64, rows int, classes []int) {
	c.fnet.InferBatch(f, rows, classes)
}

// CloneClassifier implements core.Cloneable by recompiling the retained
// source network; compilation is deterministic, so the clone predicts
// identically.
func (c *FixedClassifier) CloneClassifier() core.Classifier {
	clone, err := NewFixedClassifier(c.src)
	if err != nil {
		// The source compiled once already; recompilation cannot fail.
		panic(err)
	}
	return clone
}

// Name implements core.Classifier.
func (c *FixedClassifier) Name() string { return "readahead-nn-fixed" }

// Float32Classifier adapts a single-precision compiled network to
// core.Classifier — the paper's "floating-point" (vs double) matrix mode.
type Float32Classifier struct {
	fnet *nn.Float32Network
	src  *nn.Network // retained for CloneClassifier recompilation
}

// NewFloat32Classifier compiles net to float32 inference.
func NewFloat32Classifier(net *nn.Network) (*Float32Classifier, error) {
	fnet, err := nn.CompileFloat32(net)
	if err != nil {
		return nil, err
	}
	return &Float32Classifier{fnet: fnet, src: net}, nil
}

// Predict implements core.Classifier.
func (c *Float32Classifier) Predict(f []float64) int { return c.fnet.Predict(f) }

// PredictBatch implements core.BatchClassifier via the fused float32 path.
func (c *Float32Classifier) PredictBatch(f []float64, rows int, classes []int) {
	c.fnet.InferBatch(f, rows, classes)
}

// CloneClassifier implements core.Cloneable by recompiling the retained
// source network.
func (c *Float32Classifier) CloneClassifier() core.Classifier {
	clone, err := NewFloat32Classifier(c.src)
	if err != nil {
		panic(err)
	}
	return clone
}

// Name implements core.Classifier.
func (c *Float32Classifier) Name() string { return "readahead-nn-f32" }

// TreeClassifier adapts the decision-tree model family (§4: "We have also
// implemented a decision tree for the readahead use-case").
type TreeClassifier struct {
	tree *dtree.Tree
}

// TrainTree fits the readahead decision tree on normalized vectors.
func TrainTree(x []features.Vector, y []int) (*TreeClassifier, error) {
	rows := make([][]float64, len(x))
	for i, v := range x {
		rows[i] = features.Select(v)
	}
	t, err := dtree.Train(rows, y, workload.NumClasses, dtree.Options{MaxDepth: 10, MinLeaf: 3})
	if err != nil {
		return nil, err
	}
	return &TreeClassifier{tree: t}, nil
}

// Predict implements core.Classifier.
func (c *TreeClassifier) Predict(f []float64) int { return c.tree.Predict(f) }

// PredictBatch implements core.BatchClassifier; tree traversal has no
// batched kernel, so this is a plain loop over the pure Predict.
func (c *TreeClassifier) PredictBatch(f []float64, rows int, classes []int) {
	d := len(f) / rows
	for r := 0; r < rows; r++ {
		classes[r] = c.tree.Predict(f[r*d : (r+1)*d])
	}
}

// CloneClassifier implements core.Cloneable. Tree traversal is pure, so
// clones share the immutable tree.
func (c *TreeClassifier) CloneClassifier() core.Classifier {
	return &TreeClassifier{tree: c.tree}
}

// Name implements core.Classifier.
func (c *TreeClassifier) Name() string { return "readahead-dtree" }

// Tree returns the wrapped tree (for saving).
func (c *TreeClassifier) Tree() *dtree.Tree { return c.tree }
