// Package lint implements kml-vet, a custom static-analysis pass that
// machine-checks the kernel-portability contract the paper's framework
// depends on (§3, "thin portability layer"; the extended KML paper spends a
// full section on in-kernel constraints): code that must run in kernel
// space may not use the FPU, the heap, locks, or most of libc, and code on
// the data-collection hot path may not allocate at all.
//
// The rules are attached to the source with two directive comments:
//
//	//kml:kernelspace   (file level, before the package clause)
//	    Every declaration in the file must be executable in kernel
//	    context: no floating point, no sync (only sync/atomic), no
//	    channels or goroutines, and only allowlisted imports.
//
//	//kml:hotpath       (function level, in the doc comment)
//	    The function runs inline on the I/O path: no make/new/append,
//	    no escaping composite literals, no closures, no defer, and no
//	    interface conversions (each implies a heap allocation or
//	    unbounded latency).
//
// Two auxiliary directives refine the boundary:
//
//	//kml:boundary      (declaration level)
//	    Marks an explicitly blessed user↔kernel conversion shim inside a
//	    kernelspace file (e.g. fixed.FromFloat): the no-float rule does
//	    not apply inside it. Boundary shims are for quantization and
//	    debugging; kernel callers must not reach them on the hot path.
//
//	//kml:checkerrors   (file level)
//	    Opts the file into the unchecked-error analyzer: any call whose
//	    error result is silently discarded is reported (persistence code
//	    like the model serializer and the WAL must never drop errors).
//
// The implementation is pure standard library — go/parser, go/ast,
// go/token, go/types — preserving the repo's no-external-dependency
// constraint. See cmd/kml-vet for the command front end and
// selfcheck_test.go for the tier-1 enforcement hook.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one rule violation, carrying the resolved file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one named rule over a type-checked package — or, when
// Module is set, over the whole module at once (the call-graph closure and
// the atomics analysis need every package's types in one view).
type Analyzer struct {
	Name   string
	Doc    string
	Module bool
	Run    func(*Pass)
}

// Pass gives an analyzer its inputs and a report sink. Per-package
// analyzers see one Pkg per invocation; module analyzers are invoked once
// with Pkg nil and walk Mod.Pkgs themselves.
type Pass struct {
	Mod  *Module
	Pkg  *Package
	name string
	sink *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      p.Mod.Fset.Position(pos),
		Analyzer: p.name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full rule set in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{NoFloat, NoAlloc, LockFree, Imports, ErrCheck, Directive, HotReach, Atomics}
}

// Check runs every analyzer over every package of the module and returns
// the diagnostics sorted by position.
func Check(mod *Module) []Diagnostic {
	return CheckWith(mod, Analyzers())
}

// CheckWith runs the given analyzers over every package of the module.
func CheckWith(mod *Module, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Module {
			a.Run(&Pass{Mod: mod, name: a.Name, sink: &diags})
			continue
		}
		for _, pkg := range mod.Pkgs {
			a.Run(&Pass{Mod: mod, Pkg: pkg, name: a.Name, sink: &diags})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}
