package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Atomics enforces the memory-access discipline around the module's
// lock-free structures (the deployment handles, telemetry counters, and
// dtrace arenas that the paper's collection path leans on):
//
//  1. Mixed atomic/plain access: a field (or package-level variable) that
//     is ever passed to a sync/atomic operation must be accessed through
//     sync/atomic everywhere. One plain load next to an atomic store is a
//     data race the race detector only catches if a test happens to hit
//     the interleaving; the analyzer catches it statically, module-wide
//     (the field's identity is its declaration, so a plain access in one
//     package flags against an atomic access in another).
//
//  2. Lock copies: a value whose type contains a sync primitive
//     (sync.Mutex, sync.Once, ...) or a sync/atomic value type
//     (atomic.Uint64, atomic.Pointer[T], ...) must not be copied — the
//     copy shears the internal state from the synchronization guarding
//     it. Reported at by-value receivers, parameters, and results, at
//     assignments whose right-hand side is an existing value (composite
//     literals build fresh values and are fine), and at range clauses
//     that copy elements out of a container.
var Atomics = &Analyzer{
	Name:   "atomics",
	Doc:    "no mixed atomic/plain access to a field, no copying of values containing sync or sync/atomic state",
	Module: true,
	Run:    runAtomics,
}

func runAtomics(pass *Pass) {
	checkMixedAccess(pass)
	for _, pkg := range pass.Mod.Pkgs {
		checkLockCopies(pass, pkg)
	}
}

// --- mixed atomic/plain access ---

// atomicAddrFuncs are the sync/atomic package functions whose first
// argument is the address of the atomically accessed word. (The typed
// atomic values — atomic.Uint64 and friends — keep their word unexported
// and cannot be mixed-accessed at all; prefer them.)
var atomicAddrFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

// varAccess records where one variable is touched.
type varAccess struct {
	atomicPos []token.Pos
	plainPos  []token.Pos
}

func checkMixedAccess(pass *Pass) {
	accesses := make(map[*types.Var]*varAccess)
	ordered := []*types.Var{} // deterministic reporting order
	record := func(v *types.Var, pos token.Pos, atomic bool) {
		a := accesses[v]
		if a == nil {
			a = &varAccess{}
			accesses[v] = a
			ordered = append(ordered, v)
		}
		if atomic {
			a.atomicPos = append(a.atomicPos, pos)
		} else {
			a.plainPos = append(a.plainPos, pos)
		}
	}
	for _, pkg := range pass.Mod.Pkgs {
		info := pkg.Info
		// First pass: mark the identifiers that are the &-operand of a
		// sync/atomic call, so the second pass can tell atomic accesses
		// from plain ones.
		atomicIdents := make(map[*ast.Ident]bool)
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !isAtomicAddrCall(info, call) || len(call.Args) == 0 {
					return true
				}
				if id := addressedIdent(call.Args[0]); id != nil {
					atomicIdents[id] = true
				}
				return true
			})
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				v := accessedVar(info, id)
				if v == nil {
					return true
				}
				record(v, id.Pos(), atomicIdents[id])
				return true
			})
		}
	}
	for _, v := range ordered {
		a := accesses[v]
		if len(a.atomicPos) == 0 || len(a.plainPos) == 0 {
			continue
		}
		atomicAt := pass.Mod.Fset.Position(a.atomicPos[0])
		sort.Slice(a.plainPos, func(i, j int) bool { return a.plainPos[i] < a.plainPos[j] })
		for _, pos := range a.plainPos {
			pass.Reportf(pos, "plain access to %s, which is accessed atomically at %s:%d (use sync/atomic everywhere, or an atomic value type)",
				v.Name(), relPath(pass.Mod, atomicAt.Filename), atomicAt.Line)
		}
	}
}

// isAtomicAddrCall reports whether call is sync/atomic.<op>(&addr, ...).
func isAtomicAddrCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	return atomicAddrFuncs[fn.Name()]
}

// addressedIdent returns the field/variable identifier inside &x or &x.f,
// or nil when the operand is something else (an index expression, say).
func addressedIdent(arg ast.Expr) *ast.Ident {
	unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || unary.Op != token.AND {
		return nil
	}
	switch e := ast.Unparen(unary.X).(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

// accessedVar maps an identifier to the struct field or package-level
// variable it names, restricted to integer/pointer words — the shapes
// sync/atomic operates on. Locals are skipped: a local is visible to one
// goroutine unless it escapes through one of the tracked shapes anyway.
func accessedVar(info *types.Info, id *ast.Ident) *types.Var {
	// Uses only: an identifier in info.Defs is the declaration itself
	// (a struct field, a package var clause), which is not an access.
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Embedded() {
		return nil
	}
	if !v.IsField() {
		// Package-level variables only; locals and parameters are
		// single-goroutine unless shared explicitly.
		if v.Parent() == nil || v.Parent().Parent() != types.Universe {
			return nil
		}
	}
	if b, ok := v.Type().Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32, types.Int64, types.Uint32, types.Uint64,
			types.Uintptr, types.UnsafePointer:
			return v
		}
	}
	return nil
}

// --- lock copies ---

func checkLockCopies(pass *Pass, pkg *Package) {
	info := pkg.Info
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok {
				checkSignatureLocks(pass, info, fn)
				if fn.Body != nil {
					checkBodyLockCopies(pass, info, fn.Body)
				}
			}
		}
	}
}

// checkSignatureLocks reports by-value receivers, parameters, and results
// whose type contains synchronization state.
func checkSignatureLocks(pass *Pass, info *types.Info, fn *ast.FuncDecl) {
	report := func(field *ast.Field, what string, t types.Type) {
		pass.Reportf(field.Pos(), "%s of %s passes %s by value (contains %s; pass a pointer)",
			what, fn.Name.Name, types.TypeString(t, nil), lockPart(t))
	}
	check := func(list *ast.FieldList, what string) {
		if list == nil {
			return
		}
		for _, field := range list.List {
			t := typeOf(info, field.Type)
			if t == nil {
				continue
			}
			if containsLock(t) {
				report(field, what, t)
			}
		}
	}
	check(fn.Recv, "receiver")
	if fn.Type.Params != nil {
		check(fn.Type.Params, "parameter")
	}
	if fn.Type.Results != nil {
		check(fn.Type.Results, "result")
	}
}

// checkBodyLockCopies reports assignments and range clauses that copy a
// lock-containing value out of an existing location. Composite literals
// and function calls are skipped: a literal builds a fresh value, and a
// call's by-value result is already reported at the callee's signature.
func checkBodyLockCopies(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range node.Rhs {
				if t, expr := copiedLockValue(info, rhs); t != nil {
					pass.Reportf(expr.Pos(), "assignment copies %s by value (contains %s; copy a pointer instead)",
						types.TypeString(t, nil), lockPart(t))
				}
			}
		case *ast.RangeStmt:
			if node.Value == nil {
				return true
			}
			t := typeOf(info, node.Value)
			if t == nil {
				// The := form defines the value ident, so its type
				// lives in Defs, not in the expression-type map.
				if id, ok := node.Value.(*ast.Ident); ok {
					if v, ok := info.Defs[id].(*types.Var); ok {
						t = v.Type()
					}
				}
			}
			if t != nil && containsLock(t) {
				pass.Reportf(node.Value.Pos(), "range clause copies %s elements by value (contains %s; range over indices or pointers)",
					types.TypeString(t, nil), lockPart(t))
			}
		}
		return true
	})
}

// copiedLockValue reports whether rhs copies an existing lock-containing
// value: a variable, field selection, dereference, or index expression of
// a type that contains synchronization state.
func copiedLockValue(info *types.Info, rhs ast.Expr) (types.Type, ast.Expr) {
	expr := ast.Unparen(rhs)
	switch expr.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return nil, nil
	}
	t := typeOf(info, expr)
	if t == nil || !containsLock(t) {
		return nil, nil
	}
	// Selecting a *pointer* to a lock is fine; only value types copy.
	if _, ok := t.Underlying().(*types.Pointer); ok {
		return nil, nil
	}
	return t, expr
}

// containsLock reports whether t (by value) contains a sync primitive or
// a sync/atomic value type anywhere in its flat extent — struct fields
// and array elements recurse; pointers, slices, maps, and channels are
// references and do not propagate the no-copy property.
func containsLock(t types.Type) bool {
	return lockPartOf(t, make(map[types.Type]bool)) != ""
}

// lockPart names the first synchronization component found in t, for the
// diagnostic text.
func lockPart(t types.Type) string {
	return lockPartOf(t, make(map[types.Type]bool))
}

func lockPartOf(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if pkg := obj.Pkg(); pkg != nil && !types.IsInterface(t) {
			switch pkg.Path() {
			case "sync":
				return "sync." + obj.Name()
			case "sync/atomic":
				return "atomic." + obj.Name()
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if part := lockPartOf(u.Field(i).Type(), seen); part != "" {
				return part
			}
		}
	case *types.Array:
		return lockPartOf(u.Elem(), seen)
	}
	return ""
}

// relPath renders filename relative to the module root for stable
// diagnostics.
func relPath(mod *Module, filename string) string {
	if rel, ok := strings.CutPrefix(filename, mod.Dir+"/"); ok {
		return rel
	}
	return filename
}
