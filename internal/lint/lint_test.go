package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// The testdata module plants one violation per rule; each violating line
// carries a `want:<analyzer>` marker. The test checks both directions:
// every diagnostic lands on a marked line of the right analyzer, and
// every marker is hit by at least one diagnostic — so false positives and
// false negatives both fail.
func TestAnalyzersOnPlantedViolations(t *testing.T) {
	mod, err := LoadModule(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("loading testdata module: %v", err)
	}
	wants := collectWants(t, mod)
	diags := Check(mod)
	if len(diags) == 0 {
		t.Fatal("no diagnostics on planted violations")
	}

	hit := make(map[string]bool)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d:%s", d.Pos.Filename, d.Pos.Line, d.Analyzer)
		if !wants[key] {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		hit[key] = true
	}
	var missed []string
	for key := range wants {
		if !hit[key] {
			missed = append(missed, key)
		}
	}
	sort.Strings(missed)
	for _, key := range missed {
		t.Errorf("planted violation not reported: %s", key)
	}
}

// TestChainReportNamesFullPath pins the transitive-import diagnostic shape:
// the report at chain's import must spell out chain -> inner -> os.
func TestChainReportNamesFullPath(t *testing.T) {
	mod, err := LoadModule(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("loading testdata module: %v", err)
	}
	found := false
	for _, d := range Check(mod) {
		if d.Analyzer == "imports" && strings.Contains(d.Message, "planted/chain -> planted/chain/inner -> os") {
			found = true
			if base := filepath.Base(d.Pos.Filename); base != "chain.go" {
				t.Errorf("chain diagnostic reported in %s, want chain.go", base)
			}
		}
	}
	if !found {
		t.Error("no imports diagnostic names the full chain planted/chain -> planted/chain/inner -> os")
	}
}

// TestHotReachChainNamesFullPath pins the closure diagnostic shape: the
// transitive report inside Impl.Step must spell the whole chain from the
// hot entry, the dispatch step must name the interface it resolved
// through, and the boundary reach must name the shim.
func TestHotReachChainNamesFullPath(t *testing.T) {
	mod, err := LoadModule(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("loading testdata module: %v", err)
	}
	var chain, dispatch, boundary bool
	for _, d := range Check(mod) {
		if d.Analyzer != "hotreach" {
			continue
		}
		if strings.Contains(d.Message, "hotreach.Drive -> (hotreach.Impl).Step -> hotreach.helper") {
			chain = true
		}
		if strings.Contains(d.Message, "interface dispatch via hotreach.Stepper") {
			dispatch = true
		}
		if strings.Contains(d.Message, "//kml:boundary shim hotreach.shim") {
			boundary = true
		}
	}
	if !chain {
		t.Error("no hotreach diagnostic names the chain hotreach.Drive -> (hotreach.Impl).Step -> hotreach.helper")
	}
	if !dispatch {
		t.Error("no hotreach diagnostic attributes the devirtualized call to hotreach.Stepper")
	}
	if !boundary {
		t.Error("no hotreach diagnostic reports the boundary shim reached from a hot entry")
	}
}

// TestDiagnosticHasPosition guards the file:line contract of every report.
func TestDiagnosticHasPosition(t *testing.T) {
	mod, err := LoadModule(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("loading testdata module: %v", err)
	}
	for _, d := range Check(mod) {
		if d.Pos.Filename == "" || d.Pos.Line == 0 {
			t.Errorf("diagnostic without position: %s", d)
		}
		if !strings.Contains(d.String(), fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)) {
			t.Errorf("String() does not render file:line: %s", d)
		}
	}
}

var wantRE = regexp.MustCompile(`want:([a-z]+)`)

// collectWants scans the fixture sources for want:<analyzer> markers and
// returns the set of "file:line:analyzer" keys they declare.
func collectWants(t *testing.T, mod *Module) map[string]bool {
	t.Helper()
	wants := make(map[string]bool)
	for _, pkg := range mod.Pkgs {
		for _, name := range pkg.Filenames {
			f, err := os.Open(name)
			if err != nil {
				t.Fatal(err)
			}
			sc := bufio.NewScanner(f)
			for line := 1; sc.Scan(); line++ {
				for _, m := range wantRE.FindAllStringSubmatch(sc.Text(), -1) {
					wants[fmt.Sprintf("%s:%d:%s", name, line, m[1])] = true
				}
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}
	}
	if len(wants) == 0 {
		t.Fatal("no want: markers found in testdata")
	}
	return wants
}
