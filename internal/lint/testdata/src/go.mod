module planted

go 1.22
