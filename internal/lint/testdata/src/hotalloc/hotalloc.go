// Package hotalloc plants no-alloc violations in //kml:hotpath functions.
package hotalloc

// Sink receives boxed values.
func Sink(v any) {}

// Push is a hot-path function that allocates in several ways.
//
//kml:hotpath
func Push(dst []int, v int) []int {
	dst = append(dst, v)         // want:noalloc
	s := []int{v}                // want:noalloc
	f := func() int { return v } // want:noalloc
	defer f()                    // want:noalloc
	Sink(v)                      // want:noalloc want:hotreach
	return append(dst, s...)     // want:noalloc
}

// Cold does the same things without the directive: no reports.
func Cold(dst []int, v int) []int {
	return append(dst, v)
}
