// Package blackbox pins the analyzers' behavior on the flight
// recorder's append shape (internal/blackbox/recorder.go): a fixed
// header encoded into the preallocated ring, the payload copied in
// place, the pad zeroed by stores. The clean form — index stores and
// copy into storage that never grows — must pass; the tempting forms —
// growing the ring with append, or computing the record timestamp in
// float seconds — must be reported, because the Record path carries a
// 0 allocs/op gate and the whole persistence format is integer-only.
// The package is marked kernelspace so the float ban applies the same
// way it would to an in-kernel recorder.
//
//kml:kernelspace
package blackbox

// ring is the recorder's in-memory image: fixed at open, written in
// place, never grown.
type ring struct {
	buf  []byte
	w    int
	seq  uint64
	drop uint64
}

// record is the clean append: bounds-checked fit, header stores, one
// copy, zero-pad by stores. No allocation, no floats — the analyzers
// must stay quiet.
//
//kml:hotpath
func (r *ring) record(kind byte, timeNanos int64, payload []byte) bool {
	need := 8 + len(payload)
	if r.w+need > len(r.buf) {
		r.w = 0
	}
	if need > len(r.buf) {
		r.drop++
		return false
	}
	r.seq++
	h := r.buf[r.w : r.w+8]
	h[0] = kind
	h[1] = byte(r.seq)
	h[2] = byte(timeNanos)
	h[3] = byte(len(payload))
	copy(r.buf[r.w+8:], payload)
	r.w += need
	return true
}

// recordAppend grows the ring with append inside the hot append — past
// capacity that reallocates the whole image per record, and must be
// reported.
//
//kml:hotpath
func (r *ring) recordAppend(kind byte, payload []byte) {
	r.buf = append(r.buf, kind)       // want:noalloc
	r.buf = append(r.buf, payload...) // want:noalloc
	r.w = len(r.buf)
}

// recordStamp computes the record timestamp in float seconds — the
// persistence format is integer nanoseconds end to end, and must be
// reported.
//
//kml:hotpath
func (r *ring) recordStamp(timeNanos int64) int64 {
	return int64(float64(timeNanos) / 1e9) // want:nofloat
}
