// Package badimport plants forbidden-import violations: fmt in a
// kernelspace file, plus an import of a non-kernelspace module package.
//
//kml:kernelspace
package badimport

import (
	"fmt" // want:imports

	"planted/clean" // want:imports
)

// Report formats, which kernel code cannot do.
func Report(n int) string {
	return fmt.Sprintf("%d:%d", n, clean.Id(n)) // want:hotreach
}
