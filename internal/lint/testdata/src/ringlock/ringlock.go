// Package ringlock plants lock-freedom violations: a mutex and channel
// operations in a kernelspace (ringbuf-shaped) package.
//
//kml:kernelspace
package ringlock

import "sync" // want:imports want:lockfree

// Ring pretends to be a locked ring buffer.
type Ring struct {
	mu   sync.Mutex
	wake chan struct{} // want:lockfree
}

// Push takes a lock and signals a channel — both forbidden in kernelspace.
func (r *Ring) Push() {
	r.mu.Lock()
	defer r.mu.Unlock()
	select { // want:lockfree
	case r.wake <- struct{}{}: // want:lockfree
	default:
	}
	go func() {}() // want:lockfree
}
