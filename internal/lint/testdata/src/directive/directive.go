// Package directive plants malformed, unknown, and misplaced kml
// directives: each must surface as a diagnostic, never as a silently
// disabled rule.
package directive

// Typoed carries a misspelled directive name.
//
//kml:hotpah want:directive
func Typoed() {}

// Spaced puts a space between the slashes and kml:, the form gofmt
// reflows and the loader ignores.
//
// kml:hotpath want:directive
func Spaced() {}

// Empty carries a directive with no name after the colon.
//
// kml: want:directive
func Empty() {}

// Late declares kernelspace after the package clause, where the file
// loader never looks.
//
//kml:kernelspace want:directive
func Late() {}

// The group below floats between declarations — a blank line separates
// it from Detached, so it is no doc comment and annotates nothing.

//kml:hotpath want:directive

// Detached is not annotated by the floating comment above.
func Detached() {}
