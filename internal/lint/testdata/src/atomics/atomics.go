// Package atomics plants memory-discipline violations: mixed
// atomic/plain access to one word, and copies of lock-bearing values
// through signatures, assignments, and range clauses.
package atomics

import (
	"sync"
	"sync/atomic"
)

// Counter pairs an atomically updated word with mutex-guarded tags.
type Counter struct {
	hits uint64
	mu   sync.Mutex
	tags map[string]int
}

// Bump is the atomic side of the planted mixed access.
func Bump(c *Counter) {
	atomic.AddUint64(&c.hits, 1)
}

// Peek reads the same word without sync/atomic.
func Peek(c *Counter) uint64 {
	return c.hits // want:atomics
}

// Snapshot passes Counter by value: the mutex shears from its state.
func Snapshot(c Counter) int { // want:atomics
	return len(c.tags)
}

// Clone copies a lock-bearing value out of a pointer dereference.
func Clone(c *Counter) int {
	local := *c // want:atomics
	return len(local.tags)
}

// Drain ranges over Counter elements by value.
func Drain(cs []Counter) int {
	total := 0
	for _, c := range cs { // want:atomics
		total += len(c.tags)
	}
	return total
}

// Gauge wraps a typed atomic value.
type Gauge struct {
	n atomic.Int64
}

// Transfer copies the atomic value out of a field selection.
func Transfer(g *Gauge) int64 {
	snap := g.n // want:atomics
	return snap.Load()
}
