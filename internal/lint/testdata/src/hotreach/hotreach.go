// Package hotreach plants call-graph closure violations: an unannotated
// direct callee, an unannotated interface-dispatch target reached
// through devirtualization, a //kml:boundary shim reached from a hot
// entry, and a //kml:coldpath exemption that stops the walk.
package hotreach

// Stepper is the dispatch interface for the planted devirtualization.
type Stepper interface {
	Step(n int) int
}

// Impl is the only implementer; the interface call in Drive
// devirtualizes to its Step method.
type Impl struct{}

// Step is unannotated: reached from Drive through the interface.
func (Impl) Step(n int) int {
	return helper(n) // want:hotreach
}

// helper is unannotated and reached transitively through Step.
func helper(n int) int { return n + 1 }

// grow allocates on purpose; coldpath stops the closure here.
//
//kml:coldpath
func grow(n int) []int { return make([]int, n) }

// direct is an unannotated direct callee of Drive.
func direct(n int) int { return n * 2 }

// shim is a blessed float conversion; hot entries must not reach it.
//
//kml:boundary
func shim(n int) float64 { return float64(n) }

// Drive is the hot entry point of the planted graph.
//
//kml:hotpath
func Drive(s Stepper, n int) int {
	if n < 0 {
		return len(grow(n)) // coldpath: exempt, no report
	}
	d := direct(n)       // want:hotreach
	return d + s.Step(n) // want:hotreach
}

// Convert reaches the boundary shim from a hot entry.
//
//kml:hotpath
func Convert(n int) float64 {
	return shim(n) // want:hotreach
}
