// Package kernelfloat plants no-float violations: a float op in a
// kernelspace package.
//
//kml:kernelspace
package kernelfloat

// Scale multiplies in floating point, which a kernelspace file may not do.
func Scale(x int) float64 { // want:nofloat
	f := float64(x) // want:nofloat
	return f * 1.5  // want:nofloat
}

// Blessed is exempt: an explicitly marked boundary shim.
//
//kml:boundary
func Blessed(x int) float64 { return float64(x) }
