// Package chain is kernelspace and imports another kernelspace package
// (legal) whose own kernelspace file smuggles in a forbidden import — the
// violation must be reported with the full import chain.
//
//kml:kernelspace
package chain

import "planted/chain/inner" // want:imports

// Sum chains into the tainted package.
func Sum(a, b int) int { return inner.Add(a, b) }
