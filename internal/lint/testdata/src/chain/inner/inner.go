// Package inner is kernelspace but imports a forbidden stdlib package.
//
//kml:kernelspace
package inner

import "os" // want:imports

// Add adds, and incidentally drags in os.
func Add(a, b int) int {
	if os.Getpid() < 0 {
		return 0
	}
	return a + b
}
