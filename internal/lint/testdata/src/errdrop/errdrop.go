// Package errdrop plants unchecked-error violations in a persistence-like
// file.
//
//kml:checkerrors
package errdrop

import "errors"

// ErrBoom is a sentinel.
var ErrBoom = errors.New("boom")

func save() error         { return ErrBoom }
func saveN() (int, error) { return 0, ErrBoom }
func log(string)          {}

// Flush discards errors in two shapes.
func Flush() {
	save()  // want:errcheck
	saveN() // want:errcheck
	log("ok")
	_ = save()   // explicit discard: allowed
	defer save() // cleanup defer: allowed
	if err := save(); err != nil {
		log(err.Error())
	}
}
