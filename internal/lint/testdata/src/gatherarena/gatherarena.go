// Package gatherarena pins the analyzers' behavior on the coalescer's
// pooled gather-arena shape (internal/mserve/coalesce.go): rows from many
// connections copied into one capacity-grown arena, classes demuxed back
// out through per-waiter views. The clean form — reslice within capacity,
// copy in place, index-assign the demux — must pass; the tempting forms —
// growing the arena with append or allocating the demux slice per batch —
// must be reported, because per-request allocation in the gather/demux
// path is exactly what the coalescer's 0 allocs/op gate forbids.
package gatherarena

// arena is one gather domain's reusable storage: a flat feature buffer
// grown once to capacity and the per-row class scratch.
type arena struct {
	feats   []float64
	classes []int
	rows    int
	nfeat   int
}

// gatherInto is the clean gather: extend the arena's length within its
// existing capacity and copy the caller's rows in place. No allocation,
// no calls — the analyzer must stay quiet.
//
//kml:hotpath
func (a *arena) gatherInto(rows []float64) {
	off := a.rows * a.nfeat
	dst := a.feats[:off+len(rows)]
	copy(dst[off:], rows)
	a.feats = dst
	a.rows += len(rows) / a.nfeat
}

// demuxInto is the clean demux: index-assign each gathered class into the
// waiter's own preallocated view.
//
//kml:hotpath
func demuxInto(dst []uint16, src []int) {
	for i, c := range src {
		dst[i] = uint16(c)
	}
}

// gatherAppend grows the shared arena with append inside the hot gather —
// past capacity that reallocates and copies the whole batch, and must be
// reported.
//
//kml:hotpath
func (a *arena) gatherAppend(rows []float64) {
	a.feats = append(a.feats, rows...) // want:noalloc
	a.rows += len(rows) / a.nfeat
}

// demuxAlloc builds the per-waiter class slice inside the demux — one
// allocation per request per batch, and must be reported.
//
//kml:hotpath
func (a *arena) demuxAlloc(from, n int) []uint16 {
	out := make([]uint16, n) // want:noalloc
	for i := 0; i < n; i++ {
		out[i] = uint16(a.classes[from+i])
	}
	return out
}
