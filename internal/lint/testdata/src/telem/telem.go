// Package telem mirrors the internal/telemetry hot primitives so the
// lint fixture pins the contract kml-vet enforces on them: the real
// Counter.Add and Histogram.Observe shapes must stay clean (zero
// diagnostics — a false positive here means the telemetry package can
// no longer be kernelspace), while allocating or float-using variants
// are planted violations.
//
//kml:kernelspace
package telem

import (
	"math/bits"
	"sync/atomic"
)

// NumBuckets matches telemetry.NumBuckets.
const NumBuckets = 64

// Counter is the fixture twin of telemetry.Counter.
type Counter struct{ v atomic.Uint64 }

// Add must stay clean: one atomic add, no allocation, no floats.
//
//kml:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Histogram is the fixture twin of telemetry.Histogram.
type Histogram struct {
	sum     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// Observe must stay clean: clamp, atomic sum, log2 bucket index.
//
//kml:hotpath
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	v := uint64(ns)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)&(NumBuckets-1)].Add(1)
}

// ObserveTagged is the planted regression: growing a tag slice on the
// hot path allocates.
//
//kml:hotpath
func (h *Histogram) ObserveTagged(ns int64, tags []uint64, tag uint64) []uint64 {
	h.Observe(ns)
	return append(tags, tag) // want:noalloc
}

// MeanSeconds is the planted float violation: quantile/mean math belongs
// in the userspace snapshot, not in a kernelspace file.
func MeanSeconds(sum, count uint64) float64 { // want:nofloat
	return float64(sum) / float64(count) / 1e9 // want:nofloat
}
