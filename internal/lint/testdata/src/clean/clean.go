// Package clean is userspace code that does everything the analyzers
// forbid elsewhere — with no directives, nothing may be reported.
package clean

import (
	"fmt"
	"sync"
)

var mu sync.Mutex

// Id formats and returns n, allocating freely.
func Id(n int) int {
	mu.Lock()
	defer mu.Unlock()
	_ = fmt.Sprint(float64(n) * 1.5)
	return n
}
