// Package batchmat pins the analyzers' behavior on the batched inference
// kernel shape: a fused multiply-bias over preallocated scratch with a
// per-call row view. The clean form — slice into capacity scratch, write
// in place — must pass; the tempting form — allocate the output matrix
// inside the kernel — must be reported, because per-batch allocation is
// exactly the regression the zero-alloc inference path guards against.
package batchmat

// net is a one-layer batched model: weights, bias, and capacity-sized
// output scratch owned across calls.
type net struct {
	w, b []float64
	out  []float64 // batchCap×outDim scratch
	in   int
	on   int
}

// forwardInto is the clean batched kernel: for each of rows samples it
// accumulates bias + a·w into a row view of the preallocated scratch.
// No allocation, no calls — the analyzer must stay quiet.
//
//kml:hotpath
func (n *net) forwardInto(a []float64, rows int) []float64 {
	view := n.out[:rows*n.on]
	for r := 0; r < rows; r++ {
		arow := a[r*n.in : (r+1)*n.in]
		drow := view[r*n.on : (r+1)*n.on]
		copy(drow, n.b)
		for k, av := range arow {
			wrow := n.w[k*n.on : (k+1)*n.on]
			for j := range drow {
				drow[j] += av * wrow[j]
			}
		}
	}
	return view
}

// forwardAlloc allocates the batch output inside the hot kernel — the
// per-call make defeats the scratch reuse and must be reported.
//
//kml:hotpath
func (n *net) forwardAlloc(a []float64, rows int) []float64 {
	out := make([]float64, rows*n.on) // want:noalloc
	for r := 0; r < rows; r++ {
		arow := a[r*n.in : (r+1)*n.in]
		drow := out[r*n.on : (r+1)*n.on]
		copy(drow, n.b)
		for k, av := range arow {
			wrow := n.w[k*n.on : (k+1)*n.on]
			for j := range drow {
				drow[j] += av * wrow[j]
			}
		}
	}
	return out
}
