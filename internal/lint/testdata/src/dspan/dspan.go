// Package dspan pins the analyzers' behavior on the decision-trace span
// shape (internal/dtrace): fixed-slot span storage mutated in place
// through a builder. The clean form — integer timestamps, indexed writes
// into an embedded array, a pointer return aliasing builder storage —
// must pass both the nofloat and noalloc rules; the tempting forms — a
// float latency summary on the kernel arena, or allocating a fresh trace
// per decision — must be reported.
//
//kml:kernelspace
package dspan

const maxSpans = 8

type span struct {
	start, end int64
	value      int64
	stage      uint8
	parent     uint8
}

type trace struct {
	id    uint64
	n     uint8
	spans [maxSpans]span
}

type builder struct {
	t trace
}

// start is the clean hot-path form: reset in place, no allocation, all
// integer time. The analyzers must stay quiet.
//
//kml:hotpath
func (b *builder) start(id uint64, now int64) {
	b.t.id = id
	b.t.n = 1
	b.t.spans[0] = span{start: now}
}

// begin opens a child span in the next fixed slot — an indexed write,
// not an append — and must pass.
//
//kml:hotpath
func (b *builder) begin(stage uint8, now int64) int {
	if b.t.n == 0 || int(b.t.n) >= maxSpans {
		return -1
	}
	i := int(b.t.n)
	b.t.spans[i] = span{start: now, stage: stage, parent: 1}
	b.t.n++
	return i
}

// finish returns a pointer into the builder's own storage: aliasing is
// the zero-copy contract, not an allocation.
//
//kml:hotpath
func (b *builder) finish(now int64) *trace {
	if b.t.n > 0 && b.t.spans[0].end == 0 {
		b.t.spans[0].end = now
	}
	return &b.t
}

// meanNanos summarizes span latency with floating point — fine in a
// userspace exposition layer, planted here to confirm the kernelspace
// annotation catches it.
func (b *builder) meanNanos() float64 { // want:nofloat
	var sum int64
	for i := 0; i < int(b.t.n); i++ {
		sum += b.t.spans[i].end - b.t.spans[i].start
	}
	return float64(sum) / float64(b.t.n) // want:nofloat
}

// finishAlloc copies the trace into a fresh heap object per decision —
// exactly the per-record allocation the arena design avoids.
//
//kml:hotpath
func (b *builder) finishAlloc(now int64) *trace {
	b.t.spans[0].end = now
	out := &trace{id: b.t.id, n: b.t.n} // want:noalloc
	return out
}
