// Package generichot pins the analyzers' behavior on generic code: the
// serving layer's hot-swap handle is a generic type whose Load sits on
// the inference path, so hotpath directives must work — in both
// directions — inside type-parameterized functions.
package generichot

import "sync/atomic"

// Box publishes a value of any type, like the serving deployment handle.
type Box[T any] struct {
	p atomic.Pointer[T]
}

// Get is the hot read path: a single atomic load, no allocation — the
// analyzer must stay quiet on a clean generic hot function.
//
//kml:hotpath
func (b *Box[T]) Get() *T {
	return b.p.Load()
}

// Put allocates a fresh T on what is marked as a hot path: the builtin
// new must be reported even though the size of T is a type parameter.
//
//kml:hotpath
func (b *Box[T]) Put(v T) {
	p := new(T) // want:noalloc
	*p = v
	b.p.Store(p)
}
