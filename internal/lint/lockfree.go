package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockFree enforces the locking discipline of kernelspace files: the
// producer side of the data path "must never block, never allocate, and
// never take a lock" (internal/ringbuf contract; §3.1's circular buffer is
// lock-free for the same reason). Kernelspace files may import sync/atomic
// but not sync, and may not use channels, selects, or go statements —
// goroutines and channel synchronization have no kernel analogue on the
// collection path.
var LockFree = &Analyzer{
	Name: "lockfree",
	Doc:  "kernelspace files must stay lock-free (sync/atomic only, no channels or goroutines)",
	Run:  runLockFree,
}

func runLockFree(pass *Pass) {
	for _, fi := range kernelspaceFiles(pass.Pkg) {
		file := pass.Pkg.Files[fi]
		for _, imp := range file.Imports {
			if imp.Path.Value == `"sync"` {
				pass.Reportf(imp.Pos(), "kernelspace file imports sync; only sync/atomic is lock-free-safe")
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.SendStmt:
				pass.Reportf(node.Pos(), "channel send in kernelspace file")
			case *ast.UnaryExpr:
				if node.Op == token.ARROW {
					pass.Reportf(node.Pos(), "channel receive in kernelspace file")
				}
			case *ast.SelectStmt:
				pass.Reportf(node.Pos(), "select statement in kernelspace file")
			case *ast.GoStmt:
				pass.Reportf(node.Pos(), "go statement in kernelspace file")
			case *ast.ChanType:
				pass.Reportf(node.Pos(), "channel type in kernelspace file")
			case *ast.RangeStmt:
				if t := typeOf(pass.Pkg.Info, node.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						pass.Reportf(node.Pos(), "range over channel in kernelspace file")
					}
				}
			}
			return true
		})
	}
}
