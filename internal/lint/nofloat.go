package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoFloat forbids floating-point types, literals, and conversions in
// kernelspace files. Kernel code cannot assume FPU availability (§3.1:
// fixed-point exists precisely because "operations on fixed-point
// representations ... do not require an FP unit"), so every float that
// sneaks into a kernelspace file is a latent kernel oops. Declarations
// annotated //kml:boundary — the blessed quantization shims in
// internal/fixed — are exempt.
var NoFloat = &Analyzer{
	Name: "nofloat",
	Doc:  "kernelspace files may not use floating-point types or literals",
	Run:  runNoFloat,
}

func runNoFloat(pass *Pass) {
	for _, fi := range kernelspaceFiles(pass.Pkg) {
		file := pass.Pkg.Files[fi]
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if isBoundary(d.Doc) {
					continue
				}
			case *ast.GenDecl:
				if isBoundary(d.Doc) {
					continue
				}
			}
			checkNoFloat(pass, decl)
		}
	}
}

func checkNoFloat(pass *Pass, decl ast.Decl) {
	info := pass.Pkg.Info
	ast.Inspect(decl, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.BasicLit:
			if node.Kind == token.FLOAT {
				pass.Reportf(node.Pos(), "float literal %s in kernelspace file", node.Value)
			}
		case *ast.Ident:
			// Any mention of a float type: declarations, signatures,
			// struct fields, conversions, generic instantiations.
			if obj, ok := info.Uses[node]; ok {
				if tn, ok := obj.(*types.TypeName); ok && containsFloat(tn.Type()) {
					pass.Reportf(node.Pos(), "use of floating-point type %s in kernelspace file", node.Name)
				}
			}
		case *ast.AssignStmt:
			// x := f() where f yields a float but no float identifier
			// appears (the type is inferred).
			if node.Tok != token.DEFINE {
				return true
			}
			for _, rhs := range node.Rhs {
				if tv, ok := info.Types[rhs]; ok && tv.Type != nil && containsFloat(tv.Type) {
					pass.Reportf(rhs.Pos(), "floating-point value inferred in kernelspace file")
				}
			}
		}
		return true
	})
}

// containsFloat reports whether t embeds a floating-point (or complex)
// component anywhere in its structure.
func containsFloat(t types.Type) bool {
	return typeHasFloat(t, make(map[types.Type]bool))
}

func typeHasFloat(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.Float32, types.Float64, types.Complex64, types.Complex128,
			types.UntypedFloat, types.UntypedComplex:
			return true
		}
	case *types.Array:
		return typeHasFloat(u.Elem(), seen)
	case *types.Slice:
		return typeHasFloat(u.Elem(), seen)
	case *types.Pointer:
		return typeHasFloat(u.Elem(), seen)
	case *types.Map:
		return typeHasFloat(u.Key(), seen) || typeHasFloat(u.Elem(), seen)
	case *types.Chan:
		return typeHasFloat(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeHasFloat(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Signature:
		return tupleHasFloat(u.Params(), seen) || tupleHasFloat(u.Results(), seen)
	}
	return false
}

func tupleHasFloat(tup *types.Tuple, seen map[types.Type]bool) bool {
	for i := 0; i < tup.Len(); i++ {
		if typeHasFloat(tup.At(i).Type(), seen) {
			return true
		}
	}
	return false
}
