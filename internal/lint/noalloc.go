package lint

import (
	"go/ast"
	"go/types"
)

// NoAlloc enforces the //kml:hotpath contract: functions that run inline
// on the I/O path (a tracepoint hook costs ~49 ns in the paper) must not
// heap-allocate or register deferred work. It reports make/new/append,
// closures, defer, go statements, escaping composite literals, and
// implicit interface conversions (each boxes its operand on the heap).
//
// Arguments to panic are exempt: panicking is the cold misuse path, not
// steady-state operation. The check is intraprocedural — calls into other
// functions are governed by their own annotations.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "//kml:hotpath functions may not allocate",
	Run:  runNoAlloc,
}

func runNoAlloc(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotpath(fn) {
				continue
			}
			checkNoAlloc(pass, fn)
		}
	}
}

func checkNoAlloc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	results := funcResults(info, fn)
	var walk func(n ast.Node, parent ast.Node)
	walk = func(n ast.Node, parent ast.Node) {
		if n == nil {
			return
		}
		switch node := n.(type) {
		case *ast.CallExpr:
			if name, ok := builtinName(info, node.Fun); ok {
				switch name {
				case "make", "new", "append":
					pass.Reportf(node.Pos(), "hot path %s calls %s (heap allocation)", fn.Name.Name, name)
				case "panic":
					// Cold failure path: don't descend into the argument,
					// whose conversion to any is deliberate.
					return
				}
			}
			checkCallConversions(pass, fn, info, node)
		case *ast.FuncLit:
			pass.Reportf(node.Pos(), "hot path %s creates a closure (heap allocation)", fn.Name.Name)
		case *ast.DeferStmt:
			pass.Reportf(node.Pos(), "hot path %s uses defer (deferred-call record allocation)", fn.Name.Name)
		case *ast.GoStmt:
			pass.Reportf(node.Pos(), "hot path %s spawns a goroutine", fn.Name.Name)
		case *ast.CompositeLit:
			checkCompositeLit(pass, fn, info, node, parent)
		case *ast.AssignStmt:
			for i, rhs := range node.Rhs {
				if i < len(node.Lhs) {
					checkConversionTo(pass, fn, info, typeOf(info, node.Lhs[i]), rhs, "assignment")
				}
			}
		case *ast.ReturnStmt:
			if results != nil && len(node.Results) == results.Len() {
				for i, res := range node.Results {
					checkConversionTo(pass, fn, info, results.At(i).Type(), res, "return")
				}
			}
		}
		// Manual descent so every node knows its parent (needed by the
		// composite-literal escape heuristic).
		for _, child := range childNodes(n) {
			walk(child, n)
		}
	}
	walk(fn.Body, fn)
}

// checkCompositeLit applies the escape heuristic: map and slice literals
// always allocate their backing store; struct and array literals allocate
// only when they escape — address taken, passed to a call, or returned.
// A plain local `v := T{...}` stays on the stack and is allowed.
func checkCompositeLit(pass *Pass, fn *ast.FuncDecl, info *types.Info, lit *ast.CompositeLit, parent ast.Node) {
	t := typeOf(info, lit)
	if t != nil {
		switch t.Underlying().(type) {
		case *types.Slice:
			pass.Reportf(lit.Pos(), "hot path %s builds a slice literal (heap-allocated backing array)", fn.Name.Name)
			return
		case *types.Map:
			pass.Reportf(lit.Pos(), "hot path %s builds a map literal (heap allocation)", fn.Name.Name)
			return
		}
	}
	switch p := parent.(type) {
	case *ast.UnaryExpr:
		pass.Reportf(lit.Pos(), "hot path %s takes the address of a composite literal (escapes to heap)", fn.Name.Name)
	case *ast.CallExpr:
		for _, arg := range p.Args {
			if arg == ast.Expr(lit) {
				pass.Reportf(lit.Pos(), "hot path %s passes a composite literal to a call (may escape)", fn.Name.Name)
			}
		}
	}
	// Returning a struct/array literal by value is NOT reported: the
	// value is copied into the result slot, no heap allocation. Boxing
	// into an interface result is reported by the conversion check on
	// the return statement instead.
}

// checkCallConversions reports concrete arguments bound to interface
// parameters — an implicit boxing allocation.
func checkCallConversions(pass *Pass, fn *ast.FuncDecl, info *types.Info, call *ast.CallExpr) {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Explicit conversion T(x).
		if len(call.Args) == 1 {
			checkConversionTo(pass, fn, info, tv.Type, call.Args[0], "conversion")
		}
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		checkConversionTo(pass, fn, info, pt, arg, "argument")
	}
}

// checkConversionTo reports expr being converted to an interface type.
func checkConversionTo(pass *Pass, fn *ast.FuncDecl, info *types.Info, to types.Type, expr ast.Expr, context string) {
	if to == nil || !types.IsInterface(to) {
		return
	}
	from := typeOf(info, expr)
	if from == nil || types.IsInterface(from) {
		return
	}
	if b, ok := from.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	pass.Reportf(expr.Pos(), "hot path %s converts %s to interface %s in %s (boxing allocation)",
		fn.Name.Name, types.TypeString(from, nil), types.TypeString(to, nil), context)
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func builtinName(info *types.Info, fun ast.Expr) (string, bool) {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if obj, ok := info.Uses[id]; ok {
		if _, ok := obj.(*types.Builtin); ok {
			return id.Name, true
		}
	}
	return "", false
}

func funcResults(info *types.Info, fn *ast.FuncDecl) *types.Tuple {
	obj, ok := info.Defs[fn.Name]
	if !ok {
		return nil
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	return sig.Results()
}

// childNodes returns the direct children of n in source order.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}
