package lint

import (
	"encoding/json"
	"io"
)

// JSONDiagnostic is the machine-readable form of one diagnostic, with the
// file path rendered module-relative so artifacts are stable across
// checkouts.
type JSONDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"` // covered by the baseline
}

// JSONReport is the top-level -json document kml-vet emits and CI uploads
// as an artifact next to the bench snapshots.
type JSONReport struct {
	Module      string           `json:"module"`
	Analyzers   []string         `json:"analyzers"`
	Diagnostics []JSONDiagnostic `json:"diagnostics"`
	// Violations counts non-suppressed diagnostics (the exit-status
	// signal); Suppressed counts baseline-covered ones; Stale lists
	// baseline entries that matched nothing (also a failure: the
	// ratchet only turns one way).
	Violations int      `json:"violations"`
	Suppressed int      `json:"suppressed"`
	Stale      []string `json:"stale,omitempty"`
}

// NewJSONReport assembles a report from the split diagnostic sets.
func NewJSONReport(mod *Module, analyzers []*Analyzer, fresh, suppressed []Diagnostic, stale []string) JSONReport {
	rep := JSONReport{
		Module:      mod.Path,
		Diagnostics: []JSONDiagnostic{},
		Violations:  len(fresh),
		Suppressed:  len(suppressed),
		Stale:       stale,
	}
	for _, a := range analyzers {
		rep.Analyzers = append(rep.Analyzers, a.Name)
	}
	add := func(d Diagnostic, suppressedFlag bool) {
		rep.Diagnostics = append(rep.Diagnostics, JSONDiagnostic{
			File:       relPath(mod, d.Pos.Filename),
			Line:       d.Pos.Line,
			Col:        d.Pos.Column,
			Analyzer:   d.Analyzer,
			Message:    d.Message,
			Suppressed: suppressedFlag,
		})
	}
	for _, d := range fresh {
		add(d, false)
	}
	for _, d := range suppressed {
		add(d, true)
	}
	return rep
}

// WriteJSON encodes the report, indented for humans, one trailing newline.
func (r JSONReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
