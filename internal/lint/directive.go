package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// Directive validates every //kml: comment in the module. The analyzers
// act only on canonical, known spellings, so before v2 a typo like
// //kml:hotpah — or a directive drifted out of its doc-comment position —
// silently disabled enforcement. Now every attempted directive that the
// framework will not honor is itself a diagnostic:
//
//   - unknown names (//kml:hotpah, //kml:)
//   - malformed spacing (// kml:hotpath — gofmt-preserved directives take
//     no space after the slashes, mirroring //go:build)
//   - misplaced directives: file-level directives (kernelspace,
//     checkerrors) anywhere after the package clause, and declaration-level
//     directives (hotpath, coldpath, boundary) outside a top-level doc
//     comment, where the loader never looks.
var Directive = &Analyzer{
	Name: "directive",
	Doc:  "//kml: directives must be well-formed, known, and placed where they take effect",
	Run:  runDirective,
}

// fileLevelDirectives are honored only in comment groups that end before
// the package clause.
var fileLevelDirectives = map[string]bool{
	dirKernelspace: true,
	dirCheckErrors: true,
}

// declLevelDirectives are honored only in the doc comment of a top-level
// declaration; boundary additionally applies to GenDecls.
var declLevelDirectives = map[string]bool{
	dirHotpath:  true,
	dirColdpath: true,
	dirBoundary: true,
}

func runDirective(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		docs := topLevelDocGroups(file)
		for _, group := range file.Comments {
			header := group.End() <= file.Package
			_, isDoc := docs[group]
			for _, c := range group.List {
				d := parseDirective(c.Text)
				if !d.Attempted {
					continue
				}
				switch {
				case !d.Canonical:
					pass.Reportf(c.Pos(), "malformed kml directive %q: no space allowed between // and kml: (like //go:build)", strings.TrimSpace(c.Text))
				case d.Name == "":
					pass.Reportf(c.Pos(), "malformed kml directive: missing name after kml:")
				case !knownDirectives[d.Name]:
					pass.Reportf(c.Pos(), "unknown kml directive //%s (known: %s)", d.Name, knownDirectiveList())
				case fileLevelDirectives[d.Name] && !header:
					pass.Reportf(c.Pos(), "misplaced //%s: file-level directives must appear before the package clause to take effect", d.Name)
				case declLevelDirectives[d.Name] && !isDoc:
					pass.Reportf(c.Pos(), "misplaced //%s: declaration-level directives must appear in the doc comment of a top-level declaration to take effect", d.Name)
				}
			}
		}
	}
}

// topLevelDocGroups returns the set of comment groups that are the doc
// comment of a top-level declaration — the only position where
// declaration-level directives are honored.
func topLevelDocGroups(file *ast.File) map[*ast.CommentGroup]bool {
	docs := make(map[*ast.CommentGroup]bool)
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Doc != nil {
				docs[d.Doc] = true
			}
		case *ast.GenDecl:
			if d.Doc != nil {
				docs[d.Doc] = true
			}
		}
	}
	return docs
}

func knownDirectiveList() string {
	names := make([]string, 0, len(knownDirectives))
	for n := range knownDirectives {
		names = append(names, "//"+n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
