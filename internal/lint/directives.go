package lint

import (
	"go/ast"
	"strings"
)

// Directive comment spellings. Like //go:build they take no space after
// the slashes, which keeps gofmt from reflowing them.
const (
	dirKernelspace = "kml:kernelspace"
	dirHotpath     = "kml:hotpath"
	dirBoundary    = "kml:boundary"
	dirCheckErrors = "kml:checkerrors"
	dirColdpath    = "kml:coldpath"
)

// knownDirectives is the closed set of recognized //kml: spellings. The
// directive analyzer rejects everything else: a typo like //kml:hotpah
// must be a diagnostic, not a silently disabled rule.
var knownDirectives = map[string]bool{
	dirKernelspace: true,
	dirHotpath:     true,
	dirBoundary:    true,
	dirCheckErrors: true,
	dirColdpath:    true,
}

// directiveInfo is the parse of one comment line's directive attempt.
type directiveInfo struct {
	// Attempted: the comment's text (after the slashes, ignoring leading
	// whitespace) starts with "kml:" — the author meant to write a
	// directive, whether or not it is well-formed.
	Attempted bool
	// Canonical: the "kml:" immediately follows the slashes with no
	// intervening whitespace, the form gofmt preserves and the analyzers
	// honor (mirroring //go:build).
	Canonical bool
	// Name is the full directive spelling ("kml:" plus the word after it,
	// cut at the first whitespace). Empty when the colon is followed by
	// nothing.
	Name string
}

// parseDirective classifies one //-comment's full text (including the
// leading slashes). It never panics on arbitrary input — FuzzDirectiveParse
// holds it to that — and recognized spellings round-trip: for any parse
// with a non-empty Name, parseDirective("//"+Name) yields the same Name,
// Canonical, and Attempted=true.
func parseDirective(comment string) directiveInfo {
	var d directiveInfo
	text, ok := strings.CutPrefix(comment, "//")
	if !ok {
		return d // block comments cannot carry directives
	}
	trimmed := strings.TrimLeft(text, " \t")
	rest, ok := strings.CutPrefix(trimmed, "kml:")
	if !ok {
		return d
	}
	d.Attempted = true
	d.Canonical = len(trimmed) == len(text)
	if i := strings.IndexAny(rest, " \t\r\n\v\f"); i >= 0 {
		rest = rest[:i]
	}
	if rest != "" {
		d.Name = "kml:" + rest
	}
	return d
}

// fileDirectives are the file-level directives of one source file.
type fileDirectives struct {
	Kernelspace bool
	CheckErrors bool
}

// fileDirectivesOf scans the comment groups preceding the package clause
// (including the package doc comment) for file-level directives.
func fileDirectivesOf(f *ast.File) fileDirectives {
	var d fileDirectives
	for _, group := range f.Comments {
		if group.End() > f.Package {
			break
		}
		for _, c := range group.List {
			switch {
			case hasDirective(c.Text, dirKernelspace):
				d.Kernelspace = true
			case hasDirective(c.Text, dirCheckErrors):
				d.CheckErrors = true
			}
		}
	}
	return d
}

// declDirective reports whether the declaration's doc comment carries the
// given directive.
func declDirective(doc *ast.CommentGroup, dir string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if hasDirective(c.Text, dir) {
			return true
		}
	}
	return false
}

// isHotpath reports whether fn is annotated //kml:hotpath.
func isHotpath(fn *ast.FuncDecl) bool { return declDirective(fn.Doc, dirHotpath) }

// isColdpath reports whether fn is annotated //kml:coldpath — the audited
// escape hatch of the hotreach closure: the function is reachable from a
// hot path but deliberately cold (error reporting, misuse panics, one-time
// setup), so the closure does not descend into it.
func isColdpath(fn *ast.FuncDecl) bool { return declDirective(fn.Doc, dirColdpath) }

// isBoundary reports whether the declaration is an explicitly blessed
// user↔kernel boundary shim (exempt from the no-float rule).
func isBoundary(doc *ast.CommentGroup) bool { return declDirective(doc, dirBoundary) }

// hasDirective reports whether comment is exactly the canonical spelling
// of dir (optionally followed by arguments). Near-misses — a space after
// the slashes, a typo in the name — are NOT recognized; the directive
// analyzer reports them instead of silently dropping enforcement.
func hasDirective(comment, dir string) bool {
	d := parseDirective(comment)
	return d.Attempted && d.Canonical && d.Name == dir
}

// kernelspaceFiles returns the indices of pkg's kernelspace files.
func kernelspaceFiles(pkg *Package) []int {
	var out []int
	for i, f := range pkg.Files {
		if fileDirectivesOf(f).Kernelspace {
			out = append(out, i)
		}
	}
	return out
}

// hasKernelspaceFile reports whether any file of pkg is kernelspace.
func hasKernelspaceFile(pkg *Package) bool { return len(kernelspaceFiles(pkg)) > 0 }
