package lint

import (
	"go/ast"
	"strings"
)

// Directive comment spellings. Like //go:build they take no space after
// the slashes, which keeps gofmt from reflowing them.
const (
	dirKernelspace = "kml:kernelspace"
	dirHotpath     = "kml:hotpath"
	dirBoundary    = "kml:boundary"
	dirCheckErrors = "kml:checkerrors"
)

// fileDirectives are the file-level directives of one source file.
type fileDirectives struct {
	Kernelspace bool
	CheckErrors bool
}

// fileDirectivesOf scans the comment groups preceding the package clause
// (including the package doc comment) for file-level directives.
func fileDirectivesOf(f *ast.File) fileDirectives {
	var d fileDirectives
	for _, group := range f.Comments {
		if group.End() > f.Package {
			break
		}
		for _, c := range group.List {
			switch {
			case hasDirective(c.Text, dirKernelspace):
				d.Kernelspace = true
			case hasDirective(c.Text, dirCheckErrors):
				d.CheckErrors = true
			}
		}
	}
	return d
}

// declDirective reports whether the declaration's doc comment carries the
// given directive.
func declDirective(doc *ast.CommentGroup, dir string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if hasDirective(c.Text, dir) {
			return true
		}
	}
	return false
}

// isHotpath reports whether fn is annotated //kml:hotpath.
func isHotpath(fn *ast.FuncDecl) bool { return declDirective(fn.Doc, dirHotpath) }

// isBoundary reports whether the declaration is an explicitly blessed
// user↔kernel boundary shim (exempt from the no-float rule).
func isBoundary(doc *ast.CommentGroup) bool { return declDirective(doc, dirBoundary) }

func hasDirective(comment, dir string) bool {
	text, ok := strings.CutPrefix(comment, "//")
	if !ok {
		return false
	}
	text = strings.TrimSpace(text)
	return text == dir || strings.HasPrefix(text, dir+" ")
}

// kernelspaceFiles returns the indices of pkg's kernelspace files.
func kernelspaceFiles(pkg *Package) []int {
	var out []int
	for i, f := range pkg.Files {
		if fileDirectivesOf(f).Kernelspace {
			out = append(out, i)
		}
	}
	return out
}

// hasKernelspaceFile reports whether any file of pkg is kernelspace.
func hasKernelspaceFile(pkg *Package) bool { return len(kernelspaceFiles(pkg)) > 0 }
