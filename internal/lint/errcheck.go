package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/types"
)

// ErrCheck reports discarded error results in files annotated
// //kml:checkerrors — the persistence code (the model serializer that
// implements the paper's "KML-specific file format" and the key-value
// store's write-ahead log) where a dropped error silently corrupts state.
//
// A call statement whose result set contains an error is a violation.
// Explicit discards (`_ = f()`) and `defer f()` cleanup calls are allowed:
// both are visible, deliberate decisions in the source.
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "error results must not be silently discarded in //kml:checkerrors files",
	Run:  runErrCheck,
}

func runErrCheck(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		if !fileDirectivesOf(file).CheckErrors {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if returnsError(pass.Pkg.Info, call) {
				pass.Reportf(call.Pos(), "result of %s contains an error that is silently discarded",
					renderExpr(pass, call.Fun))
			}
			return true
		})
	}
}

// returnsError reports whether the call yields an error (alone or as part
// of a result tuple).
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil || tv.IsType() {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

func renderExpr(pass *Pass, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.Mod.Fset, e); err != nil {
		return "call"
	}
	return buf.String()
}
