package lint

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Baseline is a committed set of accepted diagnostics — the ratchet. A
// run is clean when every diagnostic matches a baseline entry; a
// diagnostic outside the baseline is new debt and fails, and a baseline
// entry no diagnostic matches is stale and fails too, so the file can
// only shrink. Entries are keyed without line numbers (module-relative
// file, analyzer, message), so unrelated edits moving code around do not
// invalidate the baseline, while any change to what the analyzers see
// does.
//
// File format: one entry per line, '#' comments and blank lines ignored.
// A line is exactly BaselineKey's rendering:
//
//	internal/foo/bar.go: [analyzer] message text
//
// Duplicate lines accept that many identical diagnostics.
type Baseline struct {
	counts map[string]int
	order  []string
}

// BaselineKey renders a diagnostic's stable identity: the module-relative
// path, the analyzer, and the message — no line/column, which churn.
func BaselineKey(mod *Module, d Diagnostic) string {
	return fmt.Sprintf("%s: [%s] %s", relPath(mod, d.Pos.Filename), d.Analyzer, d.Message)
}

// ParseBaseline reads a baseline from r.
func ParseBaseline(r io.Reader) (*Baseline, error) {
	b := &Baseline{counts: make(map[string]int)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if b.counts[line] == 0 {
			b.order = append(b.order, line)
		}
		b.counts[line]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// LoadBaseline reads a baseline file from disk.
func LoadBaseline(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseBaseline(f)
}

// Len returns the number of distinct baseline entries.
func (b *Baseline) Len() int { return len(b.order) }

// Apply splits diags into new (not covered by the baseline) and
// suppressed, and returns the stale baseline entries that matched
// nothing. Suppression is counted: two identical diagnostics need two
// identical baseline lines.
func (b *Baseline) Apply(mod *Module, diags []Diagnostic) (fresh, suppressed []Diagnostic, stale []string) {
	remaining := make(map[string]int, len(b.counts))
	for k, n := range b.counts {
		remaining[k] = n
	}
	for _, d := range diags {
		key := BaselineKey(mod, d)
		if remaining[key] > 0 {
			remaining[key]--
			suppressed = append(suppressed, d)
		} else {
			fresh = append(fresh, d)
		}
	}
	for _, k := range b.order {
		if remaining[k] > 0 {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale)
	return fresh, suppressed, stale
}

// FormatBaseline renders diags as baseline file content, sorted and
// deduplicated into repeated lines, with a header documenting the
// contract.
func FormatBaseline(mod *Module, diags []Diagnostic) string {
	var sb strings.Builder
	sb.WriteString("# kml-vet baseline — accepted diagnostics, one per line.\n")
	sb.WriteString("# The ratchet is strict both ways: a diagnostic not listed here fails\n")
	sb.WriteString("# the build, and a line here that no diagnostic matches is stale and\n")
	sb.WriteString("# fails too. Regenerate with: go run ./cmd/kml-vet -write-baseline\n")
	keys := make([]string, len(diags))
	for i, d := range diags {
		keys[i] = BaselineKey(mod, d)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('\n')
	}
	return sb.String()
}
