package lint

import "strings"

// kernelAllowedStd is the allowlist of standard-library imports permitted
// in kernelspace files. Everything else — fmt, os, time, math/rand, and
// the rest of libc-shaped stdlib — has no kernel analogue on the data
// path and is reported. The list is intentionally tiny: sync/atomic maps
// to kernel atomics, math/bits and unsafe to plain CPU ops, and errors
// only to sentinel values (errors.New at init time).
var kernelAllowedStd = map[string]bool{
	"sync/atomic": true,
	"math/bits":   true,
	"unsafe":      true,
	"errors":      true,
}

// Imports enforces the kernelspace import policy: a kernelspace file may
// import only allowlisted stdlib packages and module packages that
// themselves contain kernelspace code. Violations that arrive through an
// intermediate module package are reported with the full import chain.
var Imports = &Analyzer{
	Name: "imports",
	Doc:  "kernelspace files may import only allowlisted stdlib and kernelspace module packages",
	Run:  runImports,
}

func runImports(pass *Pass) {
	for _, fi := range kernelspaceFiles(pass.Pkg) {
		file := pass.Pkg.Files[fi]
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			switch {
			case pass.Mod.Internal(path):
				dep := pass.Mod.Lookup(path)
				if dep == nil {
					pass.Reportf(imp.Pos(), "kernelspace file imports unknown module package %s", path)
					continue
				}
				if !hasKernelspaceFile(dep) {
					pass.Reportf(imp.Pos(), "kernelspace file imports %s, which has no //kml:kernelspace code", path)
					continue
				}
				// Walk the kernelspace slice of the module for transitive
				// violations, so the report names the whole chain.
				for _, chain := range forbiddenChains(pass.Mod, dep, map[string]bool{pass.Pkg.ImportPath: true}) {
					pass.Reportf(imp.Pos(), "kernelspace import chain reaches forbidden package: %s -> %s",
						pass.Pkg.ImportPath, strings.Join(chain, " -> "))
				}
			case !kernelAllowedStd[path]:
				pass.Reportf(imp.Pos(), "kernelspace file imports forbidden package %s (allowed: %s)",
					path, strings.Join(allowedList(), ", "))
			}
		}
	}
}

// forbiddenChains returns import chains (as package-path lists starting at
// pkg) through kernelspace files that reach a non-allowlisted stdlib
// package.
func forbiddenChains(mod *Module, pkg *Package, visited map[string]bool) [][]string {
	if visited[pkg.ImportPath] {
		return nil
	}
	visited[pkg.ImportPath] = true
	var chains [][]string
	for _, fi := range kernelspaceFiles(pkg) {
		for _, path := range fileImports(pkg.Files[fi]) {
			switch {
			case mod.Internal(path):
				dep := mod.Lookup(path)
				if dep == nil || !hasKernelspaceFile(dep) {
					chains = append(chains, []string{pkg.ImportPath, path})
					continue
				}
				for _, sub := range forbiddenChains(mod, dep, visited) {
					chains = append(chains, append([]string{pkg.ImportPath}, sub...))
				}
			case !kernelAllowedStd[path]:
				chains = append(chains, []string{pkg.ImportPath, path})
			}
		}
	}
	return chains
}

func allowedList() []string {
	out := make([]string, 0, len(kernelAllowedStd))
	for _, p := range []string{"errors", "math/bits", "sync/atomic", "unsafe"} {
		if kernelAllowedStd[p] {
			out = append(out, p)
		}
	}
	return out
}
