package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module is a parsed and type-checked Go module.
type Module struct {
	Path   string // module path from go.mod
	Dir    string // absolute module root
	Fset   *token.FileSet
	Pkgs   []*Package // dependency (topological) order
	byPath map[string]*Package
}

// Package is one type-checked package of the module.
type Package struct {
	ImportPath string
	Dir        string
	Name       string
	Files      []*ast.File
	Filenames  []string // parallel to Files
	Types      *types.Package
	Info       *types.Info
}

// Lookup returns the module package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// Internal reports whether path names a package inside the module.
func (m *Module) Internal(path string) bool {
	return path == m.Path || strings.HasPrefix(path, m.Path+"/")
}

// LoadModule parses and type-checks the module rooted at (or above) dir.
// Test files and testdata/vendor trees are excluded: the analyzers govern
// shippable code, and tests legitimately allocate and use floats.
func LoadModule(dir string) (*Module, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	mod := &Module{
		Path:   modPath,
		Dir:    root,
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
	}
	if err := mod.parseTree(); err != nil {
		return nil, err
	}
	if err := mod.typeCheck(); err != nil {
		return nil, err
	}
	return mod, nil
}

// findModule walks upward from dir to the nearest go.mod.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// parseTree walks the module and parses every non-test package.
func (m *Module) parseTree() error {
	return filepath.WalkDir(m.Dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != m.Dir && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		// A nested module is a separate universe (e.g. analyzer fixtures).
		if path != m.Dir {
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir
			}
		}
		return m.parseDir(path)
	})
}

func (m *Module) parseDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	pkg := &Package{Dir: dir, ImportPath: m.importPath(dir)}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(m.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("lint: %v", err)
		}
		if pkg.Name == "" {
			pkg.Name = f.Name.Name
		} else if pkg.Name != f.Name.Name {
			return fmt.Errorf("lint: %s: package %s and %s in one directory", dir, pkg.Name, f.Name.Name)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, full)
	}
	if len(pkg.Files) == 0 {
		return nil
	}
	m.Pkgs = append(m.Pkgs, pkg)
	m.byPath[pkg.ImportPath] = pkg
	return nil
}

func (m *Module) importPath(dir string) string {
	rel, err := filepath.Rel(m.Dir, dir)
	if err != nil || rel == "." {
		return m.Path
	}
	return m.Path + "/" + filepath.ToSlash(rel)
}

// fileImports returns the import paths declared in f.
func fileImports(f *ast.File) []string {
	var out []string
	for _, imp := range f.Imports {
		out = append(out, strings.Trim(imp.Path.Value, `"`))
	}
	return out
}

// typeCheck orders the packages by intra-module dependencies and checks
// each one. Standard-library imports are type-checked from source via the
// stdlib "source" importer, so no compiler export data is required.
func (m *Module) typeCheck() error {
	order, err := m.topoSort()
	if err != nil {
		return err
	}
	m.Pkgs = order
	imp := &moduleImporter{
		mod: m,
		std: importer.ForCompiler(m.Fset, "source", nil),
	}
	for _, pkg := range m.Pkgs {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Instances:  make(map[*ast.Ident]types.Instance),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(pkg.ImportPath, m.Fset, pkg.Files, info)
		if err != nil {
			return fmt.Errorf("lint: type-checking %s: %v", pkg.ImportPath, err)
		}
		pkg.Types = tpkg
		pkg.Info = info
	}
	return nil
}

// topoSort orders packages so every intra-module import is checked before
// its importer.
func (m *Module) topoSort() ([]*Package, error) {
	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[*Package]int)
	var order []*Package
	var visit func(p *Package, chain []string) error
	visit = func(p *Package, chain []string) error {
		switch state[p] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle: %s", strings.Join(append(chain, p.ImportPath), " -> "))
		}
		state[p] = visiting
		deps := make(map[string]bool)
		for _, f := range p.Files {
			for _, path := range fileImports(f) {
				if m.Internal(path) && m.byPath[path] != nil {
					deps[path] = true
				}
			}
		}
		sorted := make([]string, 0, len(deps))
		for d := range deps {
			sorted = append(sorted, d)
		}
		sort.Strings(sorted)
		for _, d := range sorted {
			if err := visit(m.byPath[d], append(chain, p.ImportPath)); err != nil {
				return err
			}
		}
		state[p] = done
		order = append(order, p)
		return nil
	}
	for _, p := range m.Pkgs {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves intra-module imports from the already-checked
// set and everything else through the source importer.
type moduleImporter struct {
	mod *Module
	std types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mi.mod.Internal(path) {
		p := mi.mod.byPath[path]
		if p == nil || p.Types == nil {
			return nil, fmt.Errorf("lint: package %s not loaded", path)
		}
		return p.Types, nil
	}
	return mi.std.Import(path)
}
