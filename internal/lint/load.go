package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Module is a parsed and type-checked Go module.
type Module struct {
	Path   string // module path from go.mod
	Dir    string // absolute module root
	Fset   *token.FileSet
	Pkgs   []*Package // dependency (topological) order
	byPath map[string]*Package
}

// Package is one type-checked package of the module.
type Package struct {
	ImportPath string
	Dir        string
	Name       string
	Files      []*ast.File
	Filenames  []string // parallel to Files
	Types      *types.Package
	Info       *types.Info
}

// Lookup returns the module package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// Internal reports whether path names a package inside the module.
func (m *Module) Internal(path string) bool {
	return path == m.Path || strings.HasPrefix(path, m.Path+"/")
}

// LoadModule parses and type-checks the module rooted at (or above) dir.
// Test files and testdata/vendor trees are excluded: the analyzers govern
// shippable code, and tests legitimately allocate and use floats.
func LoadModule(dir string) (*Module, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	mod := &Module{
		Path:   modPath,
		Dir:    root,
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
	}
	if err := mod.parseTree(); err != nil {
		return nil, err
	}
	if err := mod.typeCheck(); err != nil {
		return nil, err
	}
	return mod, nil
}

// findModule walks upward from dir to the nearest go.mod.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// parseTree walks the module and parses every non-test package.
func (m *Module) parseTree() error {
	return filepath.WalkDir(m.Dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != m.Dir && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		// A nested module is a separate universe (e.g. analyzer fixtures).
		if path != m.Dir {
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir
			}
		}
		return m.parseDir(path)
	})
}

func (m *Module) parseDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	pkg := &Package{Dir: dir, ImportPath: m.importPath(dir)}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !suffixMatchesHost(name) {
			continue
		}
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(m.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("lint: %v", err)
		}
		if !buildTagsMatchHost(f) {
			continue
		}
		if pkg.Name == "" {
			pkg.Name = f.Name.Name
		} else if pkg.Name != f.Name.Name {
			return fmt.Errorf("lint: %s: package %s and %s in one directory", dir, pkg.Name, f.Name.Name)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, full)
	}
	if len(pkg.Files) == 0 {
		return nil
	}
	m.Pkgs = append(m.Pkgs, pkg)
	m.byPath[pkg.ImportPath] = pkg
	return nil
}

// knownArchs and knownOSes drive the implicit filename-suffix build
// constraint (foo_amd64.go, foo_linux_arm64.go). Only names in these sets
// act as constraints; anything else in a filename is just a name.
var knownArchs = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mipsle": true, "mips64": true,
	"mips64le": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

var knownOSes = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var unixOSes = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

// suffixMatchesHost applies the _GOOS / _GOARCH / _GOOS_GOARCH filename
// rule for the host configuration. Platform variants the host would not
// compile (e.g. an amd64 assembly wrapper on arm64) must be skipped, or
// they redeclare the symbols of the portable fallback file.
func suffixMatchesHost(name string) bool {
	parts := strings.Split(strings.TrimSuffix(name, ".go"), "_")
	if n := len(parts); n >= 2 && knownArchs[parts[n-1]] {
		if parts[n-1] != runtime.GOARCH {
			return false
		}
		parts = parts[:n-1]
	}
	if n := len(parts); n >= 2 && knownOSes[parts[n-1]] {
		return parts[n-1] == runtime.GOOS
	}
	return true
}

// buildTagsMatchHost evaluates the file's //go:build line (if any) for the
// host GOOS/GOARCH with no extra tags set, mirroring how `go build` with
// default flags selects files in this repo (so e.g. `purego` is false).
func buildTagsMatchHost(f *ast.File) bool {
	for _, grp := range f.Comments {
		if grp.Pos() >= f.Package {
			break
		}
		for _, c := range grp.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true // malformed: let the type checker complain
			}
			return expr.Eval(func(tag string) bool {
				switch {
				case tag == runtime.GOOS || tag == runtime.GOARCH:
					return true
				case tag == "gc":
					return true
				case tag == "unix":
					return unixOSes[runtime.GOOS]
				case strings.HasPrefix(tag, "go1."):
					return true
				}
				return false
			})
		}
	}
	return true
}

func (m *Module) importPath(dir string) string {
	rel, err := filepath.Rel(m.Dir, dir)
	if err != nil || rel == "." {
		return m.Path
	}
	return m.Path + "/" + filepath.ToSlash(rel)
}

// fileImports returns the import paths declared in f.
func fileImports(f *ast.File) []string {
	var out []string
	for _, imp := range f.Imports {
		out = append(out, strings.Trim(imp.Path.Value, `"`))
	}
	return out
}

// typeCheck orders the packages by intra-module dependencies and checks
// each one. Standard-library imports are type-checked from source via the
// stdlib "source" importer, so no compiler export data is required.
func (m *Module) typeCheck() error {
	order, err := m.topoSort()
	if err != nil {
		return err
	}
	m.Pkgs = order
	imp := &moduleImporter{
		mod: m,
		std: importer.ForCompiler(m.Fset, "source", nil),
	}
	for _, pkg := range m.Pkgs {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Instances:  make(map[*ast.Ident]types.Instance),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(pkg.ImportPath, m.Fset, pkg.Files, info)
		if err != nil {
			return fmt.Errorf("lint: type-checking %s: %v", pkg.ImportPath, err)
		}
		pkg.Types = tpkg
		pkg.Info = info
	}
	return nil
}

// topoSort orders packages so every intra-module import is checked before
// its importer.
func (m *Module) topoSort() ([]*Package, error) {
	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[*Package]int)
	var order []*Package
	var visit func(p *Package, chain []string) error
	visit = func(p *Package, chain []string) error {
		switch state[p] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle: %s", strings.Join(append(chain, p.ImportPath), " -> "))
		}
		state[p] = visiting
		deps := make(map[string]bool)
		for _, f := range p.Files {
			for _, path := range fileImports(f) {
				if m.Internal(path) && m.byPath[path] != nil {
					deps[path] = true
				}
			}
		}
		sorted := make([]string, 0, len(deps))
		for d := range deps {
			sorted = append(sorted, d)
		}
		sort.Strings(sorted)
		for _, d := range sorted {
			if err := visit(m.byPath[d], append(chain, p.ImportPath)); err != nil {
				return err
			}
		}
		state[p] = done
		order = append(order, p)
		return nil
	}
	for _, p := range m.Pkgs {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves intra-module imports from the already-checked
// set and everything else through the source importer.
type moduleImporter struct {
	mod *Module
	std types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mi.mod.Internal(path) {
		p := mi.mod.byPath[path]
		if p == nil || p.Types == nil {
			return nil, fmt.Errorf("lint: package %s not loaded", path)
		}
		return p.Types, nil
	}
	return mi.std.Import(path)
}
