package lint

import (
	"path/filepath"
	"testing"
)

// TestRepoSelfCheck runs every analyzer over the whole repository inside
// `go test ./...`, so tier-1 verification fails the moment a future change
// breaks the kernel-portability contract — a float in ringbuf, an append
// on a hot path, a fmt import in a kernelspace file. This is the
// machine-checked version of the design rules in DESIGN.md.
func TestRepoSelfCheck(t *testing.T) {
	mod, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading repo module: %v", err)
	}
	if mod.Path != "repro" {
		t.Fatalf("loaded module %q, want repro", mod.Path)
	}
	base, err := LoadBaseline(filepath.Join("..", "..", "lint.baseline"))
	if err != nil {
		t.Fatalf("loading committed baseline: %v", err)
	}
	fresh, suppressed, stale := base.Apply(mod, Check(mod))
	for _, d := range fresh {
		t.Errorf("kml-vet violation: %s", d)
	}
	for _, s := range stale {
		t.Errorf("stale lint.baseline entry (no diagnostic matches; remove the line): %s", s)
	}
	if len(fresh) > 0 || len(stale) > 0 {
		t.Log("run `go run ./cmd/kml-vet -baseline lint.baseline ./...` for the same report; " +
			"see DESIGN.md \"Kernel-portability enforcement\"")
	}
	if n := len(suppressed); n > 0 {
		t.Logf("%d diagnostic(s) suppressed by lint.baseline — the ratchet only turns down", n)
	}
	// The contract only bites if the directives are actually present:
	// guard against someone deleting the annotations wholesale.
	kernelspace := 0
	for _, pkg := range mod.Pkgs {
		kernelspace += len(kernelspaceFiles(pkg))
	}
	if kernelspace < 4 {
		t.Errorf("only %d //kml:kernelspace files in the repo; ringbuf, fixed, matrix/fixedmat and nn/fixednet must stay annotated", kernelspace)
	}
}
