package lint

import (
	"strings"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		comment   string
		attempted bool
		canonical bool
		name      string
	}{
		{"//kml:hotpath", true, true, "kml:hotpath"},
		{"//kml:hotpath extra words", true, true, "kml:hotpath"},
		{"// kml:hotpath", true, false, "kml:hotpath"},
		{"//\tkml:coldpath", true, false, "kml:coldpath"},
		{"//kml:hotpah", true, true, "kml:hotpah"},
		{"//kml:", true, true, ""},
		{"// kml: trailing", true, false, ""},
		{"// plain comment", false, false, ""},
		{"// mentions //kml:hotpath mid-line", false, false, ""},
		{"/*kml:hotpath*/", false, false, ""},
		{"//go:build linux", false, false, ""},
		{"", false, false, ""},
	}
	for _, c := range cases {
		d := parseDirective(c.comment)
		if d.Attempted != c.attempted || d.Canonical != c.canonical || d.Name != c.name {
			t.Errorf("parseDirective(%q) = %+v, want Attempted=%v Canonical=%v Name=%q",
				c.comment, d, c.attempted, c.canonical, c.name)
		}
	}
}

// FuzzDirectiveParse holds parseDirective to its contract on arbitrary
// input: it never panics, a parse that is not an attempt carries no
// name, names always spell kml:<word> with no whitespace, and any
// non-empty Name round-trips through the canonical spelling.
func FuzzDirectiveParse(f *testing.F) {
	for name := range knownDirectives {
		f.Add("//" + name)
		f.Add("// " + name + " argument")
	}
	f.Add("//kml:")
	f.Add("//kml:hotpah")
	f.Add("//\t\tkml:boundary\tx")
	f.Add("/*kml:hotpath*/")
	f.Add("//go:build linux")
	f.Add("// ordinary comment")
	f.Add("//kml:hotpath\nsecond line")
	f.Add("")
	f.Fuzz(func(t *testing.T, comment string) {
		d := parseDirective(comment)
		if !d.Attempted && (d.Canonical || d.Name != "") {
			t.Fatalf("parseDirective(%q) = %+v: non-attempt carries state", comment, d)
		}
		if d.Name != "" {
			if !strings.HasPrefix(d.Name, "kml:") {
				t.Fatalf("parseDirective(%q).Name = %q: missing kml: prefix", comment, d.Name)
			}
			if strings.ContainsAny(d.Name, " \t\r\n\v\f") {
				t.Fatalf("parseDirective(%q).Name = %q: contains whitespace", comment, d.Name)
			}
			rt := parseDirective("//" + d.Name)
			if !rt.Attempted || !rt.Canonical || rt.Name != d.Name {
				t.Fatalf("round-trip of %q changed the parse: %+v", d.Name, rt)
			}
		}
	})
}
