package lint

import (
	"go/token"
	"strings"
	"testing"
)

func baselineDiag(file, analyzer, msg string, line int) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Analyzer: analyzer,
		Message:  msg,
	}
}

// TestBaselineApply pins the ratchet semantics: keys ignore line numbers,
// suppression is counted, and unmatched entries are stale.
func TestBaselineApply(t *testing.T) {
	mod := &Module{Path: "m", Dir: "/m"}
	diags := []Diagnostic{
		baselineDiag("/m/a.go", "noalloc", "hot path F calls make (heap allocation)", 10),
		baselineDiag("/m/a.go", "noalloc", "hot path F calls make (heap allocation)", 20),
		baselineDiag("/m/b.go", "atomics", "plain access to hits", 5),
	}
	content := strings.Join([]string{
		"# comment",
		"",
		"a.go: [noalloc] hot path F calls make (heap allocation)",
		"c.go: [imports] kernelspace file imports fmt", // matches nothing: stale
	}, "\n")
	base, err := ParseBaseline(strings.NewReader(content))
	if err != nil {
		t.Fatal(err)
	}
	if base.Len() != 2 {
		t.Fatalf("parsed %d entries, want 2", base.Len())
	}
	fresh, suppressed, stale := base.Apply(mod, diags)
	// One of the two identical noalloc diagnostics is suppressed (one
	// baseline line = one occurrence); the second plus the atomics one
	// stay fresh.
	if len(suppressed) != 1 {
		t.Errorf("suppressed %d diagnostics, want 1", len(suppressed))
	}
	if len(fresh) != 2 {
		t.Errorf("fresh %d diagnostics, want 2 (line numbers must not distinguish entries)", len(fresh))
	}
	if len(stale) != 1 || !strings.HasPrefix(stale[0], "c.go:") {
		t.Errorf("stale = %v, want the unmatched c.go entry", stale)
	}
}

// TestBaselineRoundTrip: formatting diagnostics and reparsing suppresses
// exactly those diagnostics with nothing fresh and nothing stale.
func TestBaselineRoundTrip(t *testing.T) {
	mod := &Module{Path: "m", Dir: "/m"}
	diags := []Diagnostic{
		baselineDiag("/m/a.go", "noalloc", "hot path F calls make (heap allocation)", 10),
		baselineDiag("/m/a.go", "noalloc", "hot path F calls make (heap allocation)", 20),
		baselineDiag("/m/b.go", "atomics", "plain access to hits", 5),
	}
	base, err := ParseBaseline(strings.NewReader(FormatBaseline(mod, diags)))
	if err != nil {
		t.Fatal(err)
	}
	fresh, suppressed, stale := base.Apply(mod, diags)
	if len(fresh) != 0 || len(stale) != 0 || len(suppressed) != len(diags) {
		t.Errorf("round trip: fresh=%d stale=%d suppressed=%d, want 0/0/%d",
			len(fresh), len(stale), len(suppressed), len(diags))
	}
}
