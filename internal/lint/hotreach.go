package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotReach is the whole-program closure over the kernel-portability
// contract. The per-function analyzers (noalloc, nofloat) are
// intraprocedural by design; before v2 a //kml:hotpath function could call
// an unannotated helper that allocates or floats and kml-vet stayed
// silent. HotReach builds a module-local call graph — direct calls, method
// calls, and interface dispatch devirtualized with a types-based
// implements check — and walks the transitive closure of every
// //kml:hotpath function and every function declared in a
// //kml:kernelspace file. Every reachable module function must be one of:
//
//   - annotated //kml:hotpath (the noalloc rules then apply to it),
//   - declared in a //kml:kernelspace file (the nofloat/lockfree/imports
//     rules then apply to it), or
//   - annotated //kml:coldpath — the audited escape hatch for branches
//     that are reachable but deliberately cold (error reporting, misuse
//     panics, one-time setup).
//
// Anything else is reported with the full call chain from the entry
// point, like the transitive-import chains of the imports analyzer.
// Additionally, //kml:boundary shims (float↔fixed conversions) must not
// be reachable from a //kml:hotpath entry: boundary code is blessed for
// quantization and debugging, not for the I/O path.
//
// Calls through plain function values (fields, parameters of func type)
// are not resolved — the hot paths that store hooks pin them behind their
// own annotated concrete targets — and calls into other modules
// (including the standard library) are governed by the imports analyzer,
// not the closure.
var HotReach = &Analyzer{
	Name:   "hotreach",
	Doc:    "every function reachable from //kml:hotpath or //kml:kernelspace code must be annotated (//kml:hotpath, //kml:kernelspace, or //kml:coldpath)",
	Module: true,
	Run:    runHotReach,
}

// funcNode is one module function in the call graph.
type funcNode struct {
	obj      *types.Func
	decl     *ast.FuncDecl
	pkg      *Package
	hot      bool // //kml:hotpath
	cold     bool // //kml:coldpath
	kernel   bool // declared in a //kml:kernelspace file
	boundary bool // //kml:boundary
	edges    []callEdge
}

// callEdge is one resolved call site.
type callEdge struct {
	pos    token.Pos
	callee *types.Func
	iface  string // non-empty when resolved by interface devirtualization
}

// callGraph is the module-local call graph plus the devirtualization
// index.
type callGraph struct {
	mod   *Module
	nodes map[*types.Func]*funcNode
	named []*types.Named // concrete module types, for implements checks
}

func runHotReach(pass *Pass) {
	g := buildCallGraph(pass.Mod)

	// Hot traversal first: reaching a boundary shim is a violation from a
	// hot entry but tolerated from a plain kernelspace entry, so the
	// stricter walk must claim nodes first.
	seen := make(map[*funcNode]bool)
	reported := make(map[*funcNode]bool)
	g.walk(pass, g.entries(func(n *funcNode) bool { return n.hot && !n.cold && !n.boundary }),
		seen, reported, true)
	g.walk(pass, g.entries(func(n *funcNode) bool { return n.kernel && !n.hot && !n.cold && !n.boundary }),
		seen, reported, false)
}

// entries returns the graph's entry points matching keep, in deterministic
// source order.
func (g *callGraph) entries(keep func(*funcNode) bool) []*funcNode {
	var out []*funcNode
	for _, n := range g.nodes {
		if keep(n) {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := g.mod.Fset.Position(out[i].decl.Pos()), g.mod.Fset.Position(out[j].decl.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Line < pj.Line
	})
	return out
}

// walk runs a BFS from the given entries. hotOrigin selects the stricter
// rule set (boundary shims become violations). seen and reported are
// shared across walks so each function is processed and reported once.
func (g *callGraph) walk(pass *Pass, entries []*funcNode, seen, reported map[*funcNode]bool, hotOrigin bool) {
	type queued struct {
		node   *funcNode
		parent *queued
		via    callEdge // edge that discovered node (zero for entries)
	}
	var queue []*queued
	for _, e := range entries {
		if !seen[e] {
			seen[e] = true
			queue = append(queue, &queued{node: e})
		}
	}
	chainOf := func(q *queued) string {
		var parts []string
		for at := q; at != nil; at = at.parent {
			parts = append(parts, g.displayName(at.node.obj))
		}
		for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
			parts[i], parts[j] = parts[j], parts[i]
		}
		return strings.Join(parts, " -> ")
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, edge := range cur.node.edges {
			callee := g.nodes[edge.callee]
			if callee == nil {
				continue // out-of-module or intrinsically unresolvable
			}
			if callee.cold {
				continue // audited escape hatch: the closure stops here
			}
			next := &queued{node: callee, parent: cur, via: edge}
			if callee.boundary {
				if hotOrigin && !reported[callee] {
					reported[callee] = true
					pass.Reportf(edge.pos, "hot-path call chain reaches //kml:boundary shim %s: %s (boundary code is for quantization and debugging, not the I/O path)",
						g.displayName(callee.obj), chainOf(next))
				}
				continue // never descend into boundary shims
			}
			if seen[callee] {
				continue
			}
			seen[callee] = true
			if !callee.hot && !callee.kernel && !reported[callee] {
				reported[callee] = true
				via := ""
				if edge.iface != "" {
					via = " (interface dispatch via " + edge.iface + ")"
				}
				pass.Reportf(edge.pos, "hot-path call chain reaches unannotated function %s%s: %s (annotate //kml:hotpath, //kml:coldpath, or move it into a //kml:kernelspace file)",
					g.displayName(callee.obj), via, chainOf(next))
			}
			queue = append(queue, next)
		}
	}
}

// buildCallGraph indexes every module function declaration and resolves
// its call sites.
func buildCallGraph(mod *Module) *callGraph {
	g := &callGraph{mod: mod, nodes: make(map[*types.Func]*funcNode)}
	for _, pkg := range mod.Pkgs {
		for _, file := range pkg.Files {
			kernel := fileDirectivesOf(file).Kernelspace
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				g.nodes[obj] = &funcNode{
					obj:      obj,
					decl:     fn,
					pkg:      pkg,
					hot:      isHotpath(fn),
					cold:     isColdpath(fn),
					kernel:   kernel,
					boundary: isBoundary(fn.Doc),
				}
			}
		}
		// Concrete named types for the implements check. Interfaces and
		// uninstantiated generics cannot be dispatch targets themselves.
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) || named.TypeParams().Len() > 0 {
				continue
			}
			g.named = append(g.named, named)
		}
	}
	for _, node := range g.nodes {
		if node.decl.Body != nil {
			g.resolveCalls(node)
		}
	}
	return g
}

// resolveCalls records one edge per statically resolvable call in node's
// body. Calls inside function literals are attributed to the enclosing
// declaration — conservative, since the literal usually runs on behalf of
// its creator (and hot paths may not create closures at all).
func (g *callGraph) resolveCalls(node *funcNode) {
	info := node.pkg.Info
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := ast.Unparen(call.Fun)
		// Arguments to panic are the cold misuse branch (mirroring
		// noalloc): helpers called only to build the panic message are
		// not hot-path reachability.
		if name, ok := builtinName(info, fun); ok && name == "panic" {
			return false
		}
		// Explicit generic instantiation F[T](...) wraps the callee.
		switch ix := fun.(type) {
		case *ast.IndexExpr:
			fun = ast.Unparen(ix.X)
		case *ast.IndexListExpr:
			fun = ast.Unparen(ix.X)
		}
		switch f := fun.(type) {
		case *ast.Ident:
			if tf, ok := info.Uses[f].(*types.Func); ok {
				g.addEdge(node, call.Lparen, tf, "")
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[f]; ok && sel.Kind() == types.MethodVal {
				m, ok := sel.Obj().(*types.Func)
				if !ok {
					return true
				}
				recv := sel.Recv()
				if types.IsInterface(recv) {
					g.devirtualize(node, call.Lparen, recv, m.Name())
				} else {
					g.addEdge(node, call.Lparen, m, "")
				}
				return true
			}
			// Package-qualified call pkg.F(...).
			if tf, ok := info.Uses[f.Sel].(*types.Func); ok {
				g.addEdge(node, call.Lparen, tf, "")
			}
		}
		return true
	})
	sort.Slice(node.edges, func(i, j int) bool { return node.edges[i].pos < node.edges[j].pos })
}

// devirtualize resolves an interface method call to every concrete module
// type that implements the interface, using the types-based implements
// check. The dispatch is over-approximated: any implementer the module
// could bind to the interface is an edge.
func (g *callGraph) devirtualize(node *funcNode, pos token.Pos, recv types.Type, method string) {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok || iface.NumMethods() == 0 {
		return // interface{} has no methods to dispatch
	}
	label := types.TypeString(recv, types.RelativeTo(node.pkg.Types))
	if named, ok := recv.(*types.Named); ok {
		label = g.displayType(named)
	}
	for _, impl := range g.named {
		var target types.Type = impl
		if !types.Implements(impl, iface) {
			ptr := types.NewPointer(impl)
			if !types.Implements(ptr, iface) {
				continue
			}
			target = ptr
		}
		obj, _, _ := types.LookupFieldOrMethod(target, true, impl.Obj().Pkg(), method)
		if m, ok := obj.(*types.Func); ok {
			g.addEdge(node, pos, m, label)
		}
	}
}

// addEdge records node -> callee if callee is declared in this module.
// The generic origin normalizes instantiated calls onto the declaration
// the annotations live on.
func (g *callGraph) addEdge(node *funcNode, pos token.Pos, callee *types.Func, iface string) {
	callee = callee.Origin()
	if g.nodes[callee] == nil {
		return
	}
	node.edges = append(node.edges, callEdge{pos: pos, callee: callee, iface: iface})
}

// displayName renders a function for diagnostics with the module path
// stripped: readahead.(*Tuner).collect, not its fully qualified spelling.
func (g *callGraph) displayName(fn *types.Func) string {
	name := fn.FullName()
	name = strings.ReplaceAll(name, g.mod.Path+"/internal/", "")
	name = strings.ReplaceAll(name, g.mod.Path+"/", "")
	return name
}

func (g *callGraph) displayType(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	path := obj.Pkg().Path()
	path = strings.TrimPrefix(path, g.mod.Path+"/internal/")
	path = strings.TrimPrefix(path, g.mod.Path+"/")
	if i := strings.LastIndex(path, "/"); i >= 0 {
		path = path[i+1:]
	}
	return path + "." + obj.Name()
}
