package ringbuf

import (
	"runtime"
	"sync"
	"testing"
)

func TestPushPopFIFO(t *testing.T) {
	r := New[int](4)
	for i := 1; i <= 4; i++ {
		if !r.TryPush(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	for i := 1; i <= 4; i++ {
		v, ok := r.TryPop()
		if !ok || v != i {
			t.Fatalf("pop got (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := r.TryPop(); ok {
		t.Error("pop from empty should fail")
	}
}

func TestCapacityRounding(t *testing.T) {
	tests := []struct {
		capacity int
		want     int
	}{
		{1, 2},
		{2, 2},
		{3, 4},
		{5, 8},
		{8, 8},
		{9, 16},
		{1 << 20, 1 << 20},
		{1<<20 + 1, 1 << 21},
	}
	for _, tt := range tests {
		if got := New[int](tt.capacity).Cap(); got != tt.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tt.capacity, got, tt.want)
		}
	}
}

func TestCapacityLimits(t *testing.T) {
	// MaxCapacity itself is accepted: zero-size elements keep the backing
	// array free, so the constructor must not reject it.
	if got := New[struct{}](MaxCapacity).Cap(); got != MaxCapacity {
		t.Errorf("New(MaxCapacity).Cap() = %d, want %d", got, MaxCapacity)
	}
	rejected := []struct {
		name     string
		capacity int
	}{
		{"zero", 0},
		{"negative", -1},
		{"very negative", -1 << 40},
		{"above max", MaxCapacity + 1},
	}
	for _, tt := range rejected {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", tt.capacity)
				}
			}()
			New[struct{}](tt.capacity)
		})
	}
}

func TestFullDrops(t *testing.T) {
	r := New[int](2)
	r.TryPush(1)
	r.TryPush(2)
	if r.TryPush(3) {
		t.Error("push to full ring should fail")
	}
	if r.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", r.Dropped())
	}
	if got := r.ResetDropped(); got != 1 {
		t.Errorf("ResetDropped = %d", got)
	}
	if r.Dropped() != 0 {
		t.Error("drop counter should reset")
	}
	// Values already queued must be intact.
	if v, _ := r.TryPop(); v != 1 {
		t.Error("drop must not corrupt queue")
	}
}

func TestLen(t *testing.T) {
	r := New[string](4)
	if r.Len() != 0 {
		t.Error("empty length")
	}
	r.TryPush("a")
	r.TryPush("b")
	if r.Len() != 2 {
		t.Errorf("len = %d", r.Len())
	}
	r.TryPop()
	if r.Len() != 1 {
		t.Errorf("len after pop = %d", r.Len())
	}
}

func TestWrapAround(t *testing.T) {
	r := New[int](4)
	// Cycle through many wraps.
	for i := 0; i < 100; i++ {
		if !r.TryPush(i) {
			t.Fatalf("push %d", i)
		}
		v, ok := r.TryPop()
		if !ok || v != i {
			t.Fatalf("wrap pop got (%d,%v), want %d", v, ok, i)
		}
	}
}

func TestPopBatch(t *testing.T) {
	r := New[int](8)
	for i := 0; i < 5; i++ {
		r.TryPush(i)
	}
	dst := make([]int, 3)
	if n := r.PopBatch(dst); n != 3 {
		t.Fatalf("batch n = %d", n)
	}
	for i, v := range dst {
		if v != i {
			t.Errorf("dst[%d] = %d", i, v)
		}
	}
	if n := r.PopBatch(dst); n != 2 {
		t.Fatalf("second batch n = %d", n)
	}
	if n := r.PopBatch(dst); n != 0 {
		t.Fatalf("empty batch n = %d", n)
	}
}

func TestPopReleasesReferences(t *testing.T) {
	r := New[*int](2)
	x := new(int)
	r.TryPush(x)
	r.TryPop()
	// After pop, the slot must not retain the pointer.
	if r.buf[0] != nil {
		t.Error("slot should be zeroed after pop")
	}
}

func TestConcurrentSPSC(t *testing.T) {
	const n = 200_000
	r := New[int](1024)
	var wg sync.WaitGroup
	wg.Add(2)
	var sumPopped, countPopped uint64
	go func() { // producer
		defer wg.Done()
		for i := 1; i <= n; i++ {
			for !r.TryPush(i) {
				runtime.Gosched() // full: let the consumer drain
			}
		}
	}()
	go func() { // consumer
		defer wg.Done()
		last := 0
		for countPopped < n {
			v, ok := r.TryPop()
			if !ok {
				runtime.Gosched()
				continue
			}
			if v <= last {
				t.Errorf("out of order: %d after %d", v, last)
				return
			}
			last = v
			sumPopped += uint64(v)
			countPopped++
		}
	}()
	wg.Wait()
	if countPopped != n {
		t.Fatalf("popped %d, want %d", countPopped, n)
	}
	want := uint64(n) * uint64(n+1) / 2
	if sumPopped != want {
		t.Fatalf("sum %d, want %d (lost or duplicated elements)", sumPopped, want)
	}
}

func TestConcurrentWithDrops(t *testing.T) {
	const n = 100_000
	r := New[int](16)
	done := make(chan struct{})
	var popped uint64
	go func() {
		for {
			select {
			case <-done:
				// Drain what's left.
				for {
					if _, ok := r.TryPop(); !ok {
						close(done)
						return
					}
					popped++
				}
			default:
				if _, ok := r.TryPop(); ok {
					popped++
				}
			}
		}
	}()
	pushed := uint64(0)
	for i := 0; i < n; i++ {
		if r.TryPush(i) {
			pushed++
		}
	}
	done <- struct{}{}
	<-done
	if pushed+r.Dropped() != n {
		t.Fatalf("pushed %d + dropped %d != %d", pushed, r.Dropped(), n)
	}
	if popped != pushed {
		t.Fatalf("popped %d != pushed %d", popped, pushed)
	}
}

func BenchmarkTryPushPop(b *testing.B) {
	r := New[uint64](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.TryPush(uint64(i))
		r.TryPop()
	}
}
