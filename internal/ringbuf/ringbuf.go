// Package ringbuf implements the lock-free single-producer/single-consumer
// circular buffer KML uses to decouple data collection from asynchronous
// training (§3.1–3.2 of the paper).
//
// The producer side runs on the I/O path, so it must never block, never
// allocate, and never take a lock; when the buffer is full the sample is
// dropped and counted, matching the paper's observation that "losing part of
// the training data could reduce the model's accuracy" and that users must
// size the buffer against their sampling rate.
//
//kml:kernelspace
package ringbuf

import "sync/atomic"

// Ring is a bounded SPSC queue. Exactly one goroutine may call TryPush and
// exactly one may call TryPop; this is the same contract as the in-kernel
// original (I/O path produces, the training thread consumes).
type Ring[T any] struct {
	// head is the next slot to pop; written only by the consumer.
	head atomic.Uint64
	_    [56]byte // keep producer and consumer indices on separate cache lines
	// tail is the next slot to push; written only by the producer.
	tail atomic.Uint64
	_    [56]byte

	dropped atomic.Uint64
	mask    uint64
	buf     []T
}

// MaxCapacity is the largest accepted ring capacity: the round-up loop
// must be able to represent the next power of two in a uint64 without the
// shift wrapping to zero.
const MaxCapacity = 1 << 62

// New returns a ring with capacity rounded up to the next power of two
// (minimum 2). It panics if capacity is not positive or exceeds
// MaxCapacity; without the bound, the round-up shift would wrap to zero
// on a huge request and spin forever (and a negative capacity converts to
// an enormous uint64).
func New[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		panic("ringbuf: capacity must be positive")
	}
	if capacity > MaxCapacity {
		panic("ringbuf: capacity exceeds MaxCapacity")
	}
	n := uint64(2)
	for n < uint64(capacity) {
		n <<= 1
	}
	return &Ring[T]{mask: n - 1, buf: make([]T, n)}
}

// Cap returns the ring's capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns the number of buffered elements. It is an instantaneous
// snapshot and may be stale by the time it returns.
func (r *Ring[T]) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// TryPush appends v and reports success. On a full ring it increments the
// drop counter and returns false without blocking.
//
//kml:hotpath
func (r *Ring[T]) TryPush(v T) bool {
	tail := r.tail.Load()
	if tail-r.head.Load() >= uint64(len(r.buf)) {
		r.dropped.Add(1)
		return false
	}
	r.buf[tail&r.mask] = v
	// Release-store: the buffer write must be visible before the index.
	r.tail.Store(tail + 1)
	return true
}

// TryPop removes and returns the oldest element, reporting whether one was
// available.
//
//kml:hotpath
func (r *Ring[T]) TryPop() (T, bool) {
	var zero T
	head := r.head.Load()
	if head == r.tail.Load() {
		return zero, false
	}
	v := r.buf[head&r.mask]
	r.buf[head&r.mask] = zero // release references for GC
	r.head.Store(head + 1)
	return v, true
}

// PopBatch pops up to len(dst) elements into dst and returns the count.
// Batching amortizes the atomic operations on the training-thread side.
//
//kml:hotpath
func (r *Ring[T]) PopBatch(dst []T) int {
	head := r.head.Load()
	tail := r.tail.Load()
	n := int(tail - head)
	if n > len(dst) {
		n = len(dst)
	}
	if n == 0 {
		return 0
	}
	var zero T
	for i := 0; i < n; i++ {
		idx := (head + uint64(i)) & r.mask
		dst[i] = r.buf[idx]
		r.buf[idx] = zero
	}
	r.head.Store(head + uint64(n))
	return n
}

// Dropped returns the number of samples discarded because the ring was full.
func (r *Ring[T]) Dropped() uint64 { return r.dropped.Load() }

// ResetDropped zeroes the drop counter and returns its previous value.
func (r *Ring[T]) ResetDropped() uint64 { return r.dropped.Swap(0) }
