package ringbuf

import "testing"

// FuzzRingPushPop drives a ring with an arbitrary operation sequence and
// checks it against a reference FIFO: values come out in push order, Len
// tracks the model, and every rejected push corresponds to a full ring
// with an incremented drop counter.
func FuzzRingPushPop(f *testing.F) {
	f.Add(uint8(0), []byte{0, 0, 1, 0, 1, 1})
	f.Add(uint8(3), []byte{0, 1, 0, 1, 0, 1, 0, 1})
	f.Add(uint8(255), []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1})
	f.Fuzz(func(t *testing.T, capSeed uint8, ops []byte) {
		capacity := int(capSeed)%64 + 1
		r := New[int](capacity)
		var model []int
		next := 0
		drops := uint64(0)
		for _, op := range ops {
			if op%2 == 0 {
				ok := r.TryPush(next)
				if ok {
					if len(model) >= r.Cap() {
						t.Fatalf("push succeeded on full ring: model %d, cap %d", len(model), r.Cap())
					}
					model = append(model, next)
				} else {
					if len(model) != r.Cap() {
						t.Fatalf("push rejected on non-full ring: model %d, cap %d", len(model), r.Cap())
					}
					drops++
				}
				next++
			} else {
				got, ok := r.TryPop()
				if ok != (len(model) > 0) {
					t.Fatalf("pop ok=%v with %d modeled elements", ok, len(model))
				}
				if ok {
					if got != model[0] {
						t.Fatalf("pop got %d, want %d (FIFO order)", got, model[0])
					}
					model = model[1:]
				}
			}
			if r.Len() != len(model) {
				t.Fatalf("Len() = %d, model holds %d", r.Len(), len(model))
			}
		}
		if r.Dropped() != drops {
			t.Fatalf("Dropped() = %d, want %d", r.Dropped(), drops)
		}
		// Drain with PopBatch and verify the tail of the model.
		dst := make([]int, r.Cap())
		n := r.PopBatch(dst)
		if n != len(model) {
			t.Fatalf("PopBatch drained %d, want %d", n, len(model))
		}
		for i := 0; i < n; i++ {
			if dst[i] != model[i] {
				t.Fatalf("PopBatch[%d] = %d, want %d", i, dst[i], model[i])
			}
		}
	})
}
