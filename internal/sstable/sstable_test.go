package sstable

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/clock"
	"repro/internal/pagecache"
	"repro/internal/vfs"
)

func newFS() *vfs.FS {
	clk := clock.New()
	dev := blockdev.New(blockdev.NVMe(), clk)
	cache := pagecache.New(pagecache.Config{CapacityPages: 1 << 18}, clk, dev, nil)
	return vfs.New(cache)
}

func key(i int) []byte { return []byte(fmt.Sprintf("key%08d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("value-%d-%s", i, "xxxxxxxxxxxxxxxxxxxx")) }

func buildTable(t testing.TB, fs *vfs.FS, name string, n int) *Table {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(f, 0)
	for i := 0; i < n; i++ {
		if err := b.Add(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	tbl, err := Open(f)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestBuildOpenGet(t *testing.T) {
	fs := newFS()
	tbl := buildTable(t, fs, "t1", 1000)
	if tbl.Entries() != 1000 {
		t.Errorf("entries = %d", tbl.Entries())
	}
	if tbl.Blocks() < 2 {
		t.Errorf("blocks = %d; expected multiple blocks", tbl.Blocks())
	}
	for _, i := range []int{0, 1, 499, 500, 998, 999} {
		v, ok, err := tbl.Get(key(i))
		if err != nil || !ok {
			t.Fatalf("Get(%d): ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(v, val(i)) {
			t.Errorf("Get(%d) = %q", i, v)
		}
	}
}

func TestGetMissing(t *testing.T) {
	fs := newFS()
	tbl := buildTable(t, fs, "t1", 100)
	for _, k := range [][]byte{[]byte("aaa"), []byte("key00000500"), []byte("zzz")} {
		if _, ok, err := tbl.Get(k); ok || err != nil {
			t.Errorf("Get(%q): ok=%v err=%v", k, ok, err)
		}
	}
}

func TestBloomSkipsMostMisses(t *testing.T) {
	fs := newFS()
	tbl := buildTable(t, fs, "t1", 5000)
	fs.Cache().DropAll()
	fs.Cache().ResetStats()
	misses := 0
	for i := 0; i < 1000; i++ {
		if _, ok, _ := tbl.Get([]byte(fmt.Sprintf("absent%08d", i))); ok {
			t.Fatal("found absent key")
		}
	}
	// With a 10-bit bloom, ≥95% of absent lookups must avoid block reads.
	misses = int(fs.Cache().Stats().Misses)
	if misses > 150 {
		t.Errorf("bloom let %d block reads through for 1000 absent keys", misses)
	}
}

func TestSmallestLargest(t *testing.T) {
	fs := newFS()
	tbl := buildTable(t, fs, "t1", 100)
	if !bytes.Equal(tbl.Smallest(), key(0)) {
		t.Errorf("smallest = %q", tbl.Smallest())
	}
	if !bytes.Equal(tbl.Largest(), key(99)) {
		t.Errorf("largest = %q", tbl.Largest())
	}
}

func TestBuilderRejectsDisorder(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create("t")
	b := NewBuilder(f, 0)
	if err := b.Add([]byte("b"), nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Add([]byte("a"), nil); err == nil {
		t.Error("descending key must error")
	}
	if err := b.Add([]byte("b"), nil); err == nil {
		t.Error("duplicate key must error")
	}
	if err := b.Add(nil, nil); err == nil {
		t.Error("empty key must error")
	}
}

func TestBuilderEmptyFinishErrors(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create("t")
	b := NewBuilder(f, 0)
	if err := b.Finish(); err == nil {
		t.Error("empty table must error")
	}
}

func TestBuilderDoubleFinish(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create("t")
	b := NewBuilder(f, 0)
	b.Add([]byte("a"), []byte("1"))
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := b.Finish(); err == nil {
		t.Error("double Finish must error")
	}
	if err := b.Add([]byte("b"), nil); err == nil {
		t.Error("Add after Finish must error")
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create("junk")
	f.WriteAt(bytes.Repeat([]byte{0xAB}, 4096), 0)
	if _, err := Open(f); !errors.Is(err, ErrBadTable) {
		t.Errorf("garbage open: %v", err)
	}
	tiny, _ := fs.Create("tiny")
	tiny.WriteAt([]byte("x"), 0)
	if _, err := Open(tiny); !errors.Is(err, ErrBadTable) {
		t.Errorf("tiny open: %v", err)
	}
}

func TestIteratorForward(t *testing.T) {
	fs := newFS()
	tbl := buildTable(t, fs, "t1", 500)
	it := tbl.NewIterator()
	it.SeekToFirst()
	count := 0
	var prev []byte
	for it.Valid() {
		if prev != nil && bytes.Compare(it.Key(), prev) <= 0 {
			t.Fatal("keys out of order")
		}
		prev = append(prev[:0], it.Key()...)
		count++
		it.Next()
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if count != 500 {
		t.Errorf("iterated %d keys", count)
	}
}

func TestIteratorReverse(t *testing.T) {
	fs := newFS()
	tbl := buildTable(t, fs, "t1", 500)
	it := tbl.NewIterator()
	it.SeekToLast()
	count := 0
	var prev []byte
	for it.Valid() {
		if prev != nil && bytes.Compare(it.Key(), prev) >= 0 {
			t.Fatal("keys out of order (reverse)")
		}
		prev = append(prev[:0], it.Key()...)
		count++
		it.Prev()
	}
	if count != 500 {
		t.Errorf("iterated %d keys in reverse", count)
	}
}

func TestIteratorSeek(t *testing.T) {
	fs := newFS()
	tbl := buildTable(t, fs, "t1", 100)
	it := tbl.NewIterator()
	it.Seek(key(42))
	if !it.Valid() || !bytes.Equal(it.Key(), key(42)) {
		t.Fatalf("seek exact: %q", it.Key())
	}
	// Seek between keys lands on the next one.
	it.Seek([]byte("key00000042x"))
	if !it.Valid() || !bytes.Equal(it.Key(), key(43)) {
		t.Fatalf("seek between: valid=%v", it.Valid())
	}
	// Seek past the end is invalid.
	it.Seek([]byte("zzz"))
	if it.Valid() {
		t.Error("seek past end must be invalid")
	}
	// Seek before the start lands on the first key.
	it.Seek([]byte("a"))
	if !it.Valid() || !bytes.Equal(it.Key(), key(0)) {
		t.Error("seek before start")
	}
}

func TestIteratorCrossesBlockBoundaries(t *testing.T) {
	fs := newFS()
	tbl := buildTable(t, fs, "t1", 2000)
	if tbl.Blocks() < 3 {
		t.Skip("need multiple blocks")
	}
	// Walk forward then backward across the whole table; counts must match.
	it := tbl.NewIterator()
	it.SeekToFirst()
	fwd := 0
	for it.Valid() {
		fwd++
		it.Next()
	}
	it.SeekToLast()
	rev := 0
	for it.Valid() {
		rev++
		it.Prev()
	}
	if fwd != rev || fwd != 2000 {
		t.Errorf("fwd %d rev %d", fwd, rev)
	}
}

func TestValuesSurviveRoundTrip(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create("t")
	b := NewBuilder(f, 0)
	// Empty values and binary values.
	b.Add([]byte("a"), nil)
	b.Add([]byte("b"), []byte{0, 1, 2, 255})
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	tbl, err := Open(f)
	if err != nil {
		t.Fatal(err)
	}
	v, ok, _ := tbl.Get([]byte("a"))
	if !ok || len(v) != 0 {
		t.Error("empty value")
	}
	v, ok, _ = tbl.Get([]byte("b"))
	if !ok || !bytes.Equal(v, []byte{0, 1, 2, 255}) {
		t.Error("binary value")
	}
}

func TestBloomFilter(t *testing.T) {
	b := NewBloom(1000, 10)
	for i := 0; i < 1000; i++ {
		b.Add(key(i))
	}
	for i := 0; i < 1000; i++ {
		if !b.MayContain(key(i)) {
			t.Fatal("false negative")
		}
	}
	fp := 0
	for i := 0; i < 10000; i++ {
		if b.MayContain([]byte(fmt.Sprintf("no%08d", i))) {
			fp++
		}
	}
	if rate := float64(fp) / 10000; rate > 0.05 {
		t.Errorf("false positive rate %.4f", rate)
	}
}

func TestBloomMarshalRoundTrip(t *testing.T) {
	b := NewBloom(100, 10)
	b.Add([]byte("hello"))
	got, err := UnmarshalBloom(b.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !got.MayContain([]byte("hello")) {
		t.Error("round trip lost key")
	}
	if _, err := UnmarshalBloom([]byte{1}); err == nil {
		t.Error("short bloom must error")
	}
	if _, err := UnmarshalBloom(make([]byte, 16)); err == nil {
		t.Error("k=0 bloom must error")
	}
}

func BenchmarkGet(b *testing.B) {
	fs := newFS()
	tbl := buildTable(b, fs, "t1", 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Get(key(i % 10000))
	}
}
