package sstable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/vfs"
)

// File layout:
//
//	data block 0 | data block 1 | ... | index | bloom | footer
//
// Data block: repeated entries (uvarint keyLen, key, uvarint valLen, val),
// keys strictly ascending across the whole table.
// Index: repeated (uvarint lastKeyLen, lastKey, uvarint off, uvarint len),
// one per block; lastKey is the block's largest key.
// Footer (fixed 48 bytes): indexOff, indexLen, bloomOff, bloomLen,
// numEntries (uint64 each) and the magic.
const (
	footerSize = 48
	tableMagic = 0x4b4d4c5353540a01 // "KMLSST\n\x01"

	// DefaultBlockSize is the target data-block size: 4 KB, RocksDB's
	// default block_size.
	DefaultBlockSize = 4096

	// blockAlign page-aligns data blocks (RocksDB's block_align option),
	// so a point lookup touches the minimum number of cache pages — the
	// granularity the readahead study assumes.
	blockAlign = 4096
)

// ErrBadTable reports a corrupt or truncated table file.
var ErrBadTable = errors.New("sstable: bad table")

// Builder writes a table. Add keys in strictly ascending order, then call
// Finish.
type Builder struct {
	f         *vfs.File
	blockSize int
	buf       []byte
	block     []byte
	firstKey  []byte
	lastKey   []byte
	index     []indexEntry
	keys      [][]byte
	offset    int64
	entries   uint64
	finished  bool
}

type indexEntry struct {
	lastKey []byte
	off     int64
	length  int64
}

// NewBuilder starts a table in f (which must be empty). blockSize 0 uses
// the default.
func NewBuilder(f *vfs.File, blockSize int) *Builder {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	return &Builder{f: f, blockSize: blockSize}
}

// Add appends a key/value pair; keys must arrive in strictly ascending
// order.
func (b *Builder) Add(key, value []byte) error {
	if b.finished {
		return errors.New("sstable: Add after Finish")
	}
	if len(key) == 0 {
		return errors.New("sstable: empty key")
	}
	if b.lastKey != nil && bytes.Compare(key, b.lastKey) <= 0 {
		return fmt.Errorf("sstable: key %q not above %q", key, b.lastKey)
	}
	var tmp [binary.MaxVarintLen64]byte
	// Flush first if this entry would overflow the block, keeping blocks
	// within one aligned unit (an oversized single entry still gets its
	// own block).
	entrySize := 2*binary.MaxVarintLen64 + len(key) + len(value)
	if len(b.block) > 0 && len(b.block)+entrySize > b.blockSize {
		if err := b.flushBlock(); err != nil {
			return err
		}
	}
	n := binary.PutUvarint(tmp[:], uint64(len(key)))
	b.block = append(b.block, tmp[:n]...)
	b.block = append(b.block, key...)
	n = binary.PutUvarint(tmp[:], uint64(len(value)))
	b.block = append(b.block, tmp[:n]...)
	b.block = append(b.block, value...)
	b.lastKey = append(b.lastKey[:0], key...)
	if b.firstKey == nil {
		b.firstKey = append([]byte(nil), key...)
	}
	b.keys = append(b.keys, append([]byte(nil), key...))
	b.entries++
	return nil
}

func (b *Builder) flushBlock() error {
	if len(b.block) == 0 {
		return nil
	}
	if _, err := b.f.WriteAt(b.block, b.offset); err != nil {
		return err
	}
	b.index = append(b.index, indexEntry{
		lastKey: append([]byte(nil), b.lastKey...),
		off:     b.offset,
		length:  int64(len(b.block)),
	})
	// Page-align the next block; the gap reads back as zeros, which the
	// decoder treats as end-of-block padding.
	b.offset = (b.offset + int64(len(b.block)) + blockAlign - 1) &^ (blockAlign - 1)
	b.block = b.block[:0]
	return nil
}

// Finish writes the index, bloom filter, and footer, and syncs the file.
func (b *Builder) Finish() error {
	if b.finished {
		return errors.New("sstable: double Finish")
	}
	b.finished = true
	if err := b.flushBlock(); err != nil {
		return err
	}
	if b.entries == 0 {
		return errors.New("sstable: empty table")
	}
	// Index.
	var idx []byte
	var tmp [binary.MaxVarintLen64]byte
	for _, e := range b.index {
		n := binary.PutUvarint(tmp[:], uint64(len(e.lastKey)))
		idx = append(idx, tmp[:n]...)
		idx = append(idx, e.lastKey...)
		n = binary.PutUvarint(tmp[:], uint64(e.off))
		idx = append(idx, tmp[:n]...)
		n = binary.PutUvarint(tmp[:], uint64(e.length))
		idx = append(idx, tmp[:n]...)
	}
	indexOff := b.offset
	if _, err := b.f.WriteAt(idx, indexOff); err != nil {
		return err
	}
	b.offset += int64(len(idx))
	// Bloom.
	bloom := NewBloom(len(b.keys), 10)
	for _, k := range b.keys {
		bloom.Add(k)
	}
	bl := bloom.Marshal()
	bloomOff := b.offset
	if _, err := b.f.WriteAt(bl, bloomOff); err != nil {
		return err
	}
	b.offset += int64(len(bl))
	// Footer.
	footer := make([]byte, footerSize)
	binary.LittleEndian.PutUint64(footer[0:], uint64(indexOff))
	binary.LittleEndian.PutUint64(footer[8:], uint64(len(idx)))
	binary.LittleEndian.PutUint64(footer[16:], uint64(bloomOff))
	binary.LittleEndian.PutUint64(footer[24:], uint64(len(bl)))
	binary.LittleEndian.PutUint64(footer[32:], b.entries)
	binary.LittleEndian.PutUint64(footer[40:], tableMagic)
	if _, err := b.f.WriteAt(footer, b.offset); err != nil {
		return err
	}
	b.f.Sync()
	return nil
}

// Entries returns the number of keys added so far.
func (b *Builder) Entries() uint64 { return b.entries }

// Table is an open, immutable sorted table.
type Table struct {
	f       *vfs.File
	index   []indexEntry
	bloom   *Bloom
	entries uint64
	first   []byte
	last    []byte
	getBuf  []byte // reusable block buffer for the Get hot path
}

// Open reads a table's index, bloom filter and footer from f. The index
// and bloom stay resident (as in RocksDB with cache_index_and_filter_blocks
// off); data blocks are read through the page cache on demand.
func Open(f *vfs.File) (*Table, error) {
	size := f.Size()
	if size < footerSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadTable, size)
	}
	footer := make([]byte, footerSize)
	if _, err := f.ReadAt(footer, size-footerSize); err != nil {
		return nil, fmt.Errorf("%w: footer: %v", ErrBadTable, err)
	}
	if binary.LittleEndian.Uint64(footer[40:]) != tableMagic {
		return nil, fmt.Errorf("%w: magic", ErrBadTable)
	}
	indexOff := int64(binary.LittleEndian.Uint64(footer[0:]))
	indexLen := int64(binary.LittleEndian.Uint64(footer[8:]))
	bloomOff := int64(binary.LittleEndian.Uint64(footer[16:]))
	bloomLen := int64(binary.LittleEndian.Uint64(footer[24:]))
	entries := binary.LittleEndian.Uint64(footer[32:])
	if indexOff < 0 || indexLen <= 0 || bloomOff < indexOff+indexLen || indexOff+indexLen > size {
		return nil, fmt.Errorf("%w: footer offsets", ErrBadTable)
	}
	idx := make([]byte, indexLen)
	if _, err := f.ReadAt(idx, indexOff); err != nil {
		return nil, fmt.Errorf("%w: index: %v", ErrBadTable, err)
	}
	t := &Table{f: f, entries: entries}
	for len(idx) > 0 {
		klen, n := binary.Uvarint(idx)
		if n <= 0 || int(klen) > len(idx)-n {
			return nil, fmt.Errorf("%w: index entry", ErrBadTable)
		}
		idx = idx[n:]
		key := append([]byte(nil), idx[:klen]...)
		idx = idx[klen:]
		off, n := binary.Uvarint(idx)
		if n <= 0 {
			return nil, fmt.Errorf("%w: index offset", ErrBadTable)
		}
		idx = idx[n:]
		length, n := binary.Uvarint(idx)
		if n <= 0 {
			return nil, fmt.Errorf("%w: index length", ErrBadTable)
		}
		idx = idx[n:]
		t.index = append(t.index, indexEntry{lastKey: key, off: int64(off), length: int64(length)})
	}
	if len(t.index) == 0 {
		return nil, fmt.Errorf("%w: empty index", ErrBadTable)
	}
	bl := make([]byte, bloomLen)
	if _, err := f.ReadAt(bl, bloomOff); err != nil {
		return nil, fmt.Errorf("%w: bloom: %v", ErrBadTable, err)
	}
	bloom, err := UnmarshalBloom(bl)
	if err != nil {
		return nil, err
	}
	t.bloom = bloom
	t.last = t.index[len(t.index)-1].lastKey
	// First key: decode the head of block 0.
	entriesList, err := t.readBlock(0)
	if err != nil {
		return nil, err
	}
	t.first = entriesList[0].key
	return t, nil
}

// Entries returns the number of keys in the table.
func (t *Table) Entries() uint64 { return t.entries }

// Smallest returns the table's smallest key.
func (t *Table) Smallest() []byte { return t.first }

// Largest returns the table's largest key.
func (t *Table) Largest() []byte { return t.last }

// Blocks returns the number of data blocks.
func (t *Table) Blocks() int { return len(t.index) }

// File returns the backing file (experiment plumbing: per-file readahead).
func (t *Table) File() *vfs.File { return t.f }

type entry struct {
	key, value []byte
}

// readBlock reads and decodes data block i through the page cache.
func (t *Table) readBlock(i int) ([]entry, error) {
	e := t.index[i]
	raw := make([]byte, e.length)
	if _, err := t.f.ReadAt(raw, e.off); err != nil {
		return nil, fmt.Errorf("%w: block %d: %v", ErrBadTable, i, err)
	}
	var out []entry
	for len(raw) > 0 {
		klen, n := binary.Uvarint(raw)
		if klen == 0 {
			break // zero key length marks end-of-block padding
		}
		if n <= 0 || int(klen) > len(raw)-n {
			return nil, fmt.Errorf("%w: block %d entry", ErrBadTable, i)
		}
		raw = raw[n:]
		key := raw[:klen:klen]
		raw = raw[klen:]
		vlen, n := binary.Uvarint(raw)
		if n <= 0 || int(vlen) > len(raw)-n {
			return nil, fmt.Errorf("%w: block %d value", ErrBadTable, i)
		}
		raw = raw[n:]
		val := raw[:vlen:vlen]
		raw = raw[vlen:]
		out = append(out, entry{key: key, value: val})
	}
	return out, nil
}

// blockFor returns the index of the first block whose lastKey ≥ key, or
// len(index) if key is beyond the table.
func (t *Table) blockFor(key []byte) int {
	lo, hi := 0, len(t.index)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(t.index[mid].lastKey, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value stored under key. The bloom filter short-circuits
// most misses without touching data blocks; the hit path scans one block
// in place using a reusable buffer, so repeated Gets do not allocate.
// The returned value aliases that buffer and is valid until the next Get.
func (t *Table) Get(key []byte) (value []byte, ok bool, err error) {
	if !t.bloom.MayContain(key) {
		return nil, false, nil
	}
	bi := t.blockFor(key)
	if bi >= len(t.index) {
		return nil, false, nil
	}
	e := t.index[bi]
	if int64(cap(t.getBuf)) < e.length {
		t.getBuf = make([]byte, e.length)
	}
	raw := t.getBuf[:e.length]
	if _, err := t.f.ReadAt(raw, e.off); err != nil {
		return nil, false, fmt.Errorf("%w: block %d: %v", ErrBadTable, bi, err)
	}
	for len(raw) > 0 {
		klen, n := binary.Uvarint(raw)
		if klen == 0 {
			break
		}
		if n <= 0 || int(klen) > len(raw)-n {
			return nil, false, fmt.Errorf("%w: block %d entry", ErrBadTable, bi)
		}
		raw = raw[n:]
		k := raw[:klen]
		raw = raw[klen:]
		vlen, n := binary.Uvarint(raw)
		if n <= 0 || int(vlen) > len(raw)-n {
			return nil, false, fmt.Errorf("%w: block %d value", ErrBadTable, bi)
		}
		raw = raw[n:]
		v := raw[:vlen:vlen]
		raw = raw[vlen:]
		switch bytes.Compare(k, key) {
		case 0:
			return v, true, nil
		case 1:
			return nil, false, nil // sorted: passed the key
		}
	}
	return nil, false, nil
}

// Iterator walks a table forward or backward. The zero position is
// invalid; call SeekToFirst, SeekToLast, or Seek.
type Iterator struct {
	t       *Table
	blockID int
	entries []entry
	pos     int
	err     error
}

// NewIterator returns an unpositioned iterator.
func (t *Table) NewIterator() *Iterator {
	return &Iterator{t: t, blockID: -1, pos: -1}
}

func (it *Iterator) load(blockID int) bool {
	if blockID < 0 || blockID >= len(it.t.index) {
		it.entries = nil
		it.blockID = -1
		return false
	}
	entries, err := it.t.readBlock(blockID)
	if err != nil {
		it.err = err
		it.entries = nil
		return false
	}
	it.blockID = blockID
	it.entries = entries
	return true
}

// SeekToFirst positions at the table's smallest key.
func (it *Iterator) SeekToFirst() {
	if it.load(0) {
		it.pos = 0
	}
}

// SeekToLast positions at the table's largest key.
func (it *Iterator) SeekToLast() {
	if it.load(len(it.t.index) - 1) {
		it.pos = len(it.entries) - 1
	}
}

// Seek positions at the first key ≥ key (invalid if none).
func (it *Iterator) Seek(key []byte) {
	bi := it.t.blockFor(key)
	if !it.load(bi) {
		it.pos = -1
		return
	}
	lo, hi := 0, len(it.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(it.entries[mid].key, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	it.pos = lo
	if it.pos >= len(it.entries) {
		// key is above this block's last key but within the next block.
		if it.load(bi + 1) {
			it.pos = 0
		} else {
			it.pos = -1
		}
	}
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator) Valid() bool {
	return it.err == nil && it.entries != nil && it.pos >= 0 && it.pos < len(it.entries)
}

// Next advances forward.
func (it *Iterator) Next() {
	if !it.Valid() {
		return
	}
	it.pos++
	if it.pos >= len(it.entries) {
		if it.load(it.blockID + 1) {
			it.pos = 0
		} else {
			it.pos = -1
		}
	}
}

// Prev advances backward.
func (it *Iterator) Prev() {
	if !it.Valid() {
		return
	}
	it.pos--
	if it.pos < 0 {
		prev := it.blockID - 1
		if it.load(prev) {
			it.pos = len(it.entries) - 1
		} else {
			it.pos = -1
		}
	}
}

// Key returns the current key (valid only while Valid).
func (it *Iterator) Key() []byte { return it.entries[it.pos].key }

// Value returns the current value (valid only while Valid).
func (it *Iterator) Value() []byte { return it.entries[it.pos].value }

// Err returns the first I/O or decode error the iterator hit.
func (it *Iterator) Err() error { return it.err }
