// Package sstable implements the sorted-string-table file format the
// simulated LSM key-value store (internal/kvstore) persists its data in:
// sorted key/value entries packed into page-aligned data blocks, a block
// index for binary search, and a bloom filter to skip tables during point
// lookups — the same structure RocksDB tables have, so the page-cache
// access patterns the paper's classifier learns from are reproduced
// faithfully (index probe + scattered data-block reads for point queries,
// contiguous block streams for scans).
package sstable

import (
	"encoding/binary"
	"fmt"
)

// Bloom is a split block-style bloom filter with double hashing.
type Bloom struct {
	bits []byte
	k    uint32
}

// NewBloom sizes a filter for n keys at bitsPerKey bits each (10 gives
// ~1% false positives).
func NewBloom(n, bitsPerKey int) *Bloom {
	if n < 1 {
		n = 1
	}
	if bitsPerKey < 1 {
		bitsPerKey = 10
	}
	bits := n * bitsPerKey
	if bits < 64 {
		bits = 64
	}
	nbytes := (bits + 7) / 8
	// k = bitsPerKey * ln2 ≈ 0.69 * bitsPerKey, clamped to [1, 30].
	k := uint32(float64(bitsPerKey) * 0.69)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return &Bloom{bits: make([]byte, nbytes), k: k}
}

// fnv64a hashes key with the FNV-1a function (stdlib hash/fnv semantics,
// inlined to stay allocation-free).
func fnv64a(key []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// Add inserts key into the filter.
func (b *Bloom) Add(key []byte) {
	h := fnv64a(key)
	delta := h>>33 | h<<31
	nbits := uint64(len(b.bits)) * 8
	for i := uint32(0); i < b.k; i++ {
		pos := h % nbits
		b.bits[pos/8] |= 1 << (pos % 8)
		h += delta
	}
}

// MayContain reports whether key might be in the set (definite no on
// false).
func (b *Bloom) MayContain(key []byte) bool {
	if len(b.bits) == 0 {
		return true
	}
	h := fnv64a(key)
	delta := h>>33 | h<<31
	nbits := uint64(len(b.bits)) * 8
	for i := uint32(0); i < b.k; i++ {
		pos := h % nbits
		if b.bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}

// Marshal encodes the filter (k, then the bit array).
func (b *Bloom) Marshal() []byte {
	out := make([]byte, 4+len(b.bits))
	binary.LittleEndian.PutUint32(out, b.k)
	copy(out[4:], b.bits)
	return out
}

// UnmarshalBloom decodes a filter produced by Marshal.
func UnmarshalBloom(data []byte) (*Bloom, error) {
	if len(data) < 5 {
		return nil, fmt.Errorf("sstable: bloom too short (%d bytes)", len(data))
	}
	k := binary.LittleEndian.Uint32(data)
	if k == 0 || k > 30 {
		return nil, fmt.Errorf("sstable: bloom k=%d", k)
	}
	bits := make([]byte, len(data)-4)
	copy(bits, data[4:])
	return &Bloom{bits: bits, k: k}, nil
}
