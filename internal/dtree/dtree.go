// Package dtree implements the CART-style decision-tree classifier that KML
// supports alongside neural networks ("KML currently supports neural
// networks and decision trees", §4). The paper trained a readahead decision
// tree as an alternative model family; the reproduction does the same and
// compares the two in the Table-2 harness.
//
// Trees are trained with recursive greedy Gini-impurity splits, bounded by
// depth and minimum leaf size, and serialize to a compact binary format so
// they can be "deployed to the kernel" through the same save/load workflow
// as neural networks.
package dtree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
)

// Options configures training.
type Options struct {
	// MaxDepth bounds the tree height; 0 means the package default (8).
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf; 0 means 2.
	MinLeaf int
}

func (o Options) withDefaults() Options {
	if o.MaxDepth == 0 {
		o.MaxDepth = 8
	}
	if o.MinLeaf == 0 {
		o.MinLeaf = 2
	}
	return o
}

// Tree is a trained decision-tree classifier.
type Tree struct {
	root     *node
	features int
	classes  int
	nodes    int
}

type node struct {
	// Internal nodes route on feature ≤ threshold.
	feature   int
	threshold float64
	left      *node
	right     *node
	// Leaves predict class with the stored empirical distribution.
	leaf  bool
	class int
	probs []float64
}

// Train fits a tree on X (samples × features) and labels y in [0, classes).
func Train(x [][]float64, y []int, classes int, opts Options) (*Tree, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("dtree: %d samples, %d labels", len(x), len(y))
	}
	if classes < 2 {
		return nil, errors.New("dtree: need at least 2 classes")
	}
	nf := len(x[0])
	for i, row := range x {
		if len(row) != nf {
			return nil, fmt.Errorf("dtree: sample %d has %d features, want %d", i, len(row), nf)
		}
	}
	for i, label := range y {
		if label < 0 || label >= classes {
			return nil, fmt.Errorf("dtree: label %d out of range at sample %d", label, i)
		}
	}
	opts = opts.withDefaults()
	t := &Tree{features: nf, classes: classes}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(x, y, idx, opts, 0)
	return t, nil
}

func (t *Tree) build(x [][]float64, y []int, idx []int, opts Options, depth int) *node {
	t.nodes++
	counts := make([]float64, t.classes)
	for _, i := range idx {
		counts[y[i]]++
	}
	n := float64(len(idx))
	majority, pure := 0, true
	for c := 1; c < t.classes; c++ {
		if counts[c] > counts[majority] {
			majority = c
		}
	}
	for c := range counts {
		if counts[c] != 0 && c != majority {
			pure = false
		}
	}
	makeLeaf := func() *node {
		probs := make([]float64, t.classes)
		for c := range counts {
			probs[c] = counts[c] / n
		}
		return &node{leaf: true, class: majority, probs: probs}
	}
	if pure || depth >= opts.MaxDepth || len(idx) < 2*opts.MinLeaf {
		return makeLeaf()
	}
	feature, threshold, gain := t.bestSplit(x, y, idx, counts, opts)
	if gain <= 1e-12 {
		return makeLeaf()
	}
	var left, right []int
	for _, i := range idx {
		if x[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < opts.MinLeaf || len(right) < opts.MinLeaf {
		return makeLeaf()
	}
	nd := &node{feature: feature, threshold: threshold}
	nd.left = t.build(x, y, left, opts, depth+1)
	nd.right = t.build(x, y, right, opts, depth+1)
	return nd
}

// bestSplit finds the (feature, threshold) minimizing weighted Gini impurity.
func (t *Tree) bestSplit(x [][]float64, y []int, idx []int, counts []float64, opts Options) (int, float64, float64) {
	n := float64(len(idx))
	parentGini := gini(counts, n)
	bestGain := 0.0
	bestFeature, bestThreshold := -1, 0.0

	order := make([]int, len(idx))
	leftCounts := make([]float64, t.classes)
	rightCounts := make([]float64, t.classes)

	for f := 0; f < t.features; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return x[order[a]][f] < x[order[b]][f] })
		for c := range leftCounts {
			leftCounts[c] = 0
			rightCounts[c] = counts[c]
		}
		for split := 1; split < len(order); split++ {
			c := y[order[split-1]]
			leftCounts[c]++
			rightCounts[c]--
			prev, cur := x[order[split-1]][f], x[order[split]][f]
			if prev == cur {
				continue // cannot split between equal values
			}
			nl, nr := float64(split), n-float64(split)
			if int(nl) < opts.MinLeaf || int(nr) < opts.MinLeaf {
				continue
			}
			g := parentGini - (nl*gini(leftCounts, nl)+nr*gini(rightCounts, nr))/n
			if g > bestGain {
				bestGain = g
				bestFeature = f
				bestThreshold = prev + (cur-prev)/2
			}
		}
	}
	return bestFeature, bestThreshold, bestGain
}

// gini returns the Gini impurity 1 − Σ p².
func gini(counts []float64, n float64) float64 {
	if n == 0 {
		return 0
	}
	s := 0.0
	for _, c := range counts {
		p := c / n
		s += p * p
	}
	return 1 - s
}

// Predict returns the predicted class for one sample.
func (t *Tree) Predict(features []float64) int {
	return t.leafFor(features).class
}

// PredictProbs returns the empirical class distribution at the matched leaf.
// The returned slice aliases tree-internal storage; callers must not modify.
func (t *Tree) PredictProbs(features []float64) []float64 {
	return t.leafFor(features).probs
}

func (t *Tree) leafFor(features []float64) *node {
	if len(features) != t.features {
		panic(fmt.Sprintf("dtree: got %d features, want %d", len(features), t.features))
	}
	nd := t.root
	for !nd.leaf {
		if features[nd.feature] <= nd.threshold {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	return nd
}

// Features returns the expected feature count.
func (t *Tree) Features() int { return t.features }

// Classes returns the number of classes.
func (t *Tree) Classes() int { return t.classes }

// Nodes returns the total node count (internal + leaves).
func (t *Tree) Nodes() int { return t.nodes }

// Depth returns the height of the tree (a lone leaf has depth 0).
func (t *Tree) Depth() int { return depthOf(t.root) }

func depthOf(nd *node) int {
	if nd == nil || nd.leaf {
		return 0
	}
	l, r := depthOf(nd.left), depthOf(nd.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Accuracy returns the fraction of samples classified correctly.
func (t *Tree) Accuracy(x [][]float64, y []int) float64 {
	if len(x) == 0 {
		return 0
	}
	correct := 0
	for i, row := range x {
		if t.Predict(row) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

// Serialization: "KMLT" magic, version, feature/class counts, then a
// preorder walk of nodes, followed by a CRC32 like the nn model format.
const (
	treeMagic   = "KMLT"
	treeVersion = 1
)

// ErrBadTree reports a corrupt or incompatible tree file.
var ErrBadTree = errors.New("dtree: bad tree file")

type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// Save writes the tree in KML's binary tree format.
func (t *Tree) Save(w io.Writer) error {
	cw := &crcWriter{w: w}
	if _, err := cw.Write([]byte(treeMagic)); err != nil {
		return err
	}
	hdr := []uint32{treeVersion, uint32(t.features), uint32(t.classes), uint32(t.nodes)}
	for _, v := range hdr {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := writeNode(cw, t.root); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, cw.crc)
}

func writeNode(w io.Writer, nd *node) error {
	if nd.leaf {
		if err := binary.Write(w, binary.LittleEndian, uint8(1)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(nd.class)); err != nil {
			return err
		}
		for _, p := range nd.probs {
			if err := binary.Write(w, binary.LittleEndian, math.Float64bits(p)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := binary.Write(w, binary.LittleEndian, uint8(0)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(nd.feature)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, math.Float64bits(nd.threshold)); err != nil {
		return err
	}
	if err := writeNode(w, nd.left); err != nil {
		return err
	}
	return writeNode(w, nd.right)
}

// Load reads a tree saved with Save.
func Load(r io.Reader) (*Tree, error) {
	cr := &crcReader{r: r}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTree, err)
	}
	if string(magic) != treeMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadTree, magic)
	}
	var version, features, classes, nodes uint32
	for _, p := range []*uint32{&version, &features, &classes, &nodes} {
		if err := binary.Read(cr, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTree, err)
		}
	}
	if version != treeVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadTree, version)
	}
	if features == 0 || classes < 2 || nodes == 0 || nodes > 1<<24 {
		return nil, fmt.Errorf("%w: header %d/%d/%d", ErrBadTree, features, classes, nodes)
	}
	t := &Tree{features: int(features), classes: int(classes), nodes: int(nodes)}
	var read int
	root, err := readNode(cr, t.classes, &read, int(nodes))
	if err != nil {
		return nil, err
	}
	if read != int(nodes) {
		return nil, fmt.Errorf("%w: node count %d != %d", ErrBadTree, read, nodes)
	}
	t.root = root
	want := cr.crc
	var got uint32
	if err := binary.Read(r, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("%w: missing checksum: %v", ErrBadTree, err)
	}
	if got != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadTree)
	}
	return t, nil
}

func readNode(r io.Reader, classes int, read *int, limit int) (*node, error) {
	if *read >= limit {
		return nil, fmt.Errorf("%w: more nodes than declared", ErrBadTree)
	}
	*read++
	var kind uint8
	if err := binary.Read(r, binary.LittleEndian, &kind); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTree, err)
	}
	switch kind {
	case 1:
		var class uint32
		if err := binary.Read(r, binary.LittleEndian, &class); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTree, err)
		}
		if int(class) >= classes {
			return nil, fmt.Errorf("%w: leaf class %d", ErrBadTree, class)
		}
		probs := make([]float64, classes)
		for i := range probs {
			var bits uint64
			if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadTree, err)
			}
			probs[i] = math.Float64frombits(bits)
		}
		return &node{leaf: true, class: int(class), probs: probs}, nil
	case 0:
		var feature uint32
		var bits uint64
		if err := binary.Read(r, binary.LittleEndian, &feature); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTree, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTree, err)
		}
		nd := &node{feature: int(feature), threshold: math.Float64frombits(bits)}
		var err error
		if nd.left, err = readNode(r, classes, read, limit); err != nil {
			return nil, err
		}
		if nd.right, err = readNode(r, classes, read, limit); err != nil {
			return nil, err
		}
		return nd, nil
	default:
		return nil, fmt.Errorf("%w: node kind %d", ErrBadTree, kind)
	}
}
