package dtree

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func blobs(rng *rand.Rand, n int) ([][]float64, []int) {
	centers := [][2]float64{{0, 0}, {4, 4}, {-4, 4}}
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(3)
		y[i] = c
		x[i] = []float64{centers[c][0] + rng.NormFloat64(), centers[c][1] + rng.NormFloat64()}
	}
	return x, y
}

func TestTrainSimpleSplit(t *testing.T) {
	// One feature, perfectly separable at 0.5.
	x := [][]float64{{0}, {0.1}, {0.2}, {0.9}, {1.0}, {1.1}}
	y := []int{0, 0, 0, 1, 1, 1}
	tr, err := Train(x, y, 2, Options{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range x {
		if tr.Predict(row) != y[i] {
			t.Errorf("sample %d misclassified", i)
		}
	}
	if tr.Depth() != 1 {
		t.Errorf("depth = %d, want 1 (single split)", tr.Depth())
	}
}

func TestTrainBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	trainX, trainY := blobs(rng, 400)
	testX, testY := blobs(rng, 200)
	tr, err := Train(trainX, trainY, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := tr.Accuracy(testX, testY); acc < 0.9 {
		t.Errorf("blob accuracy %.3f < 0.9", acc)
	}
}

func TestPredictProbsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := blobs(rng, 200)
	tr, err := Train(x, y, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		probs := tr.PredictProbs(x[i])
		sum := 0.0
		best, bestP := 0, -1.0
		for c, p := range probs {
			sum += p
			if p > bestP {
				best, bestP = c, p
			}
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("probs sum %g", sum)
		}
		if best != tr.Predict(x[i]) {
			t.Fatal("Predict must be argmax of PredictProbs")
		}
	}
}

func TestMaxDepthRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := blobs(rng, 500)
	tr, err := Train(x, y, 3, Options{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth() > 2 {
		t.Errorf("depth %d exceeds MaxDepth 2", tr.Depth())
	}
}

func TestMinLeafRespected(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := []int{0, 0, 1, 1}
	tr, err := Train(x, y, 2, Options{MinLeaf: 3})
	if err != nil {
		t.Fatal(err)
	}
	// With MinLeaf 3 and 4 samples, no split is legal: a single leaf.
	if tr.Nodes() != 1 {
		t.Errorf("nodes = %d, want 1 (leaf only)", tr.Nodes())
	}
}

func TestPureNodeStopsEarly(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}}
	y := []int{1, 1, 1}
	tr, err := Train(x, y, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Nodes() != 1 || tr.Predict([]float64{5}) != 1 {
		t.Error("pure training set should yield a single leaf")
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil, 2, Options{}); err == nil {
		t.Error("empty training set must error")
	}
	if _, err := Train([][]float64{{1}}, []int{0, 1}, 2, Options{}); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := Train([][]float64{{1}}, []int{0}, 1, Options{}); err == nil {
		t.Error("single class must error")
	}
	if _, err := Train([][]float64{{1}, {1, 2}}, []int{0, 1}, 2, Options{}); err == nil {
		t.Error("ragged features must error")
	}
	if _, err := Train([][]float64{{1}}, []int{5}, 2, Options{}); err == nil {
		t.Error("out-of-range label must error")
	}
}

func TestPredictValidation(t *testing.T) {
	tr, err := Train([][]float64{{0}, {1}}, []int{0, 1}, 2, Options{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong feature count must panic")
		}
	}()
	tr.Predict([]float64{1, 2})
}

func TestConstantFeaturesYieldLeaf(t *testing.T) {
	// All feature values identical: no split possible, majority leaf.
	x := [][]float64{{7}, {7}, {7}, {7}}
	y := []int{0, 1, 1, 1}
	tr, err := Train(x, y, 2, Options{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Nodes() != 1 || tr.Predict([]float64{7}) != 1 {
		t.Error("constant features should produce a majority leaf")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := blobs(rng, 300)
	tr, err := Train(x, y, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Features() != tr.Features() || loaded.Classes() != tr.Classes() || loaded.Nodes() != tr.Nodes() {
		t.Fatal("metadata mismatch")
	}
	for i := 0; i < 100; i++ {
		if loaded.Predict(x[i]) != tr.Predict(x[i]) {
			t.Fatalf("prediction mismatch on sample %d", i)
		}
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := blobs(rng, 100)
	tr, err := Train(x, y, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0x01
	if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, ErrBadTree) {
		t.Errorf("corruption: got %v", err)
	}
	if _, err := Load(bytes.NewReader(data[:8])); !errors.Is(err, ErrBadTree) {
		t.Errorf("truncation: got %v", err)
	}
	if _, err := Load(bytes.NewReader([]byte("XXXX"))); !errors.Is(err, ErrBadTree) {
		t.Errorf("bad magic: got %v", err)
	}
}

func TestDeterministicTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := blobs(rng, 200)
	a, err := Train(x, y, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(x, y, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB bytes.Buffer
	if err := a.Save(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.Save(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Error("training must be deterministic for identical inputs")
	}
}

func BenchmarkPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x, y := blobs(rng, 500)
	tr, err := Train(x, y, 3, Options{})
	if err != nil {
		b.Fatal(err)
	}
	probe := x[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Predict(probe)
	}
}

func BenchmarkTrain500(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x, y := blobs(rng, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(x, y, 3, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
