package vfs

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/clock"
	"repro/internal/pagecache"
)

func newFS(capacityPages int) (*FS, *blockdev.Device, *clock.Virtual) {
	clk := clock.New()
	dev := blockdev.New(blockdev.NVMe(), clk)
	cache := pagecache.New(pagecache.Config{CapacityPages: capacityPages}, clk, dev, nil)
	return New(cache), dev, clk
}

func TestCreateOpenRemove(t *testing.T) {
	fs, _, _ := newFS(1024)
	f, err := fs.Create("a.sst")
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "a.sst" || f.Ino() == 0 {
		t.Error("metadata")
	}
	if _, err := fs.Create("a.sst"); !errors.Is(err, ErrExist) {
		t.Error("duplicate create must fail")
	}
	got, err := fs.Open("a.sst")
	if err != nil || got != f {
		t.Error("open must return the same file")
	}
	if _, err := fs.Open("missing"); !errors.Is(err, ErrNotExist) {
		t.Error("open missing must fail")
	}
	if err := fs.Remove("a.sst"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("a.sst"); !errors.Is(err, ErrNotExist) {
		t.Error("removed file still opens")
	}
	if err := fs.Remove("a.sst"); !errors.Is(err, ErrNotExist) {
		t.Error("double remove must fail")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs, _, _ := newFS(1024)
	f, _ := fs.Create("data")
	payload := bytes.Repeat([]byte("hello kml "), 1000) // 10 KB: crosses pages
	if n, err := f.WriteAt(payload, 0); err != nil || n != len(payload) {
		t.Fatalf("write: %d, %v", n, err)
	}
	if f.Size() != int64(len(payload)) {
		t.Errorf("size = %d", f.Size())
	}
	got := make([]byte, len(payload))
	if n, err := f.ReadAt(got, 0); err != nil || n != len(payload) {
		t.Fatalf("read: %d, %v", n, err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("data corrupted")
	}
}

func TestReadAtOffsets(t *testing.T) {
	fs, _, _ := newFS(1024)
	f, _ := fs.Create("data")
	f.WriteAt([]byte("0123456789"), 0)
	buf := make([]byte, 4)
	if n, err := f.ReadAt(buf, 3); err != nil || n != 4 || string(buf) != "3456" {
		t.Errorf("mid read: %q, %d, %v", buf, n, err)
	}
	// Partial read at EOF.
	if n, err := f.ReadAt(buf, 8); n != 2 || err != io.EOF || string(buf[:n]) != "89" {
		t.Errorf("eof read: %q, %d, %v", buf[:n], n, err)
	}
	// Fully past EOF.
	if _, err := f.ReadAt(buf, 100); err != io.EOF {
		t.Errorf("past eof: %v", err)
	}
	// Negative offset.
	if _, err := f.ReadAt(buf, -1); err == nil {
		t.Error("negative offset must error")
	}
	// Empty read is free.
	if n, err := f.ReadAt(nil, 0); n != 0 || err != nil {
		t.Error("empty read")
	}
}

func TestSparseWriteGrows(t *testing.T) {
	fs, _, _ := newFS(1024)
	f, _ := fs.Create("sparse")
	f.WriteAt([]byte("x"), 10000)
	if f.Size() != 10001 {
		t.Errorf("size = %d", f.Size())
	}
	buf := make([]byte, 1)
	f.ReadAt(buf, 5000)
	if buf[0] != 0 {
		t.Error("hole must read as zero")
	}
}

func TestAppend(t *testing.T) {
	fs, _, _ := newFS(1024)
	f, _ := fs.Create("log")
	off1, _ := f.Append([]byte("aaa"))
	off2, _ := f.Append([]byte("bbb"))
	if off1 != 0 || off2 != 3 {
		t.Errorf("offsets %d, %d", off1, off2)
	}
	buf := make([]byte, 6)
	f.ReadAt(buf, 0)
	if string(buf) != "aaabbb" {
		t.Errorf("content %q", buf)
	}
}

func TestReadChargesDevice(t *testing.T) {
	fs, dev, clk := newFS(1024)
	f, _ := fs.Create("data")
	f.WriteAt(make([]byte, 64*1024), 0)
	f.Sync()
	fs.Cache().DropAll()
	before := clk.Now()
	buf := make([]byte, 4096)
	f.ReadAt(buf, 0)
	if clk.Now() == before {
		t.Error("cold read must cost device time")
	}
	if dev.Stats().SyncReads == 0 {
		t.Error("no device reads recorded")
	}
	// Warm read: free.
	before = clk.Now()
	f.ReadAt(buf, 0)
	if clk.Now() != before {
		t.Error("warm read must be free")
	}
}

func TestWriteDirtiesCache(t *testing.T) {
	fs, _, _ := newFS(1024)
	f, _ := fs.Create("data")
	f.WriteAt(make([]byte, 8192), 0)
	if fs.Cache().DirtyLen() != 2 {
		t.Errorf("dirty pages = %d, want 2", fs.Cache().DirtyLen())
	}
	f.Sync()
	if fs.Cache().DirtyLen() != 0 {
		t.Error("Sync must clean")
	}
}

func TestTruncate(t *testing.T) {
	fs, _, _ := newFS(1024)
	f, _ := fs.Create("data")
	f.WriteAt([]byte("0123456789"), 0)
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 4 {
		t.Errorf("size = %d", f.Size())
	}
	if _, err := f.ReadAt(make([]byte, 1), 5); err != io.EOF {
		t.Error("read past truncation must EOF")
	}
	if err := f.Truncate(8); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	f.ReadAt(buf, 4)
	if !bytes.Equal(buf, []byte{0, 0, 0, 0}) {
		t.Error("growth must zero-fill")
	}
	if err := f.Truncate(-1); err == nil {
		t.Error("negative truncate must error")
	}
}

func TestPerFileReadaheadPlumbing(t *testing.T) {
	fs, dev, _ := newFS(4096)
	dev.SetReadahead(256)
	f, _ := fs.Create("data")
	f.WriteAt(make([]byte, 1<<20), 0)
	f.Sync()
	fs.Cache().DropAll()
	f.SetReadahead(blockdev.SectorsPerPage)
	buf := make([]byte, 8192)
	f.ReadAt(buf, 500*4096)
	if fs.Cache().Stats().SpecInserted != 0 {
		t.Error("per-file readahead override not honored")
	}
}

func TestFadvisePlumbing(t *testing.T) {
	fs, dev, _ := newFS(4096)
	dev.SetReadahead(256)
	f, _ := fs.Create("data")
	f.WriteAt(make([]byte, 1<<20), 0)
	f.Sync()
	fs.Cache().DropAll()
	f.Fadvise(pagecache.HintRandom)
	buf := make([]byte, 8192)
	f.ReadAt(buf, 100*4096)
	if fs.Cache().Stats().SpecInserted != 0 {
		t.Error("fadvise hint not honored")
	}
}

func TestNamesAndTotalBytes(t *testing.T) {
	fs, _, _ := newFS(1024)
	a, _ := fs.Create("a")
	b, _ := fs.Create("b")
	a.WriteAt(make([]byte, 100), 0)
	b.WriteAt(make([]byte, 50), 0)
	if len(fs.Names()) != 2 {
		t.Error("names")
	}
	if fs.TotalBytes() != 150 {
		t.Errorf("total = %d", fs.TotalBytes())
	}
}
