// Package vfs provides the file abstraction the simulated storage stack
// reads and writes through. It splits the two planes of the simulation:
//
//   - the data plane holds real file contents in memory, so SSTables, WALs,
//     and indexes are byte-exact, and
//   - the timing plane routes every access through the simulated page cache
//     (and thus the readahead engine and block device), so each read costs
//     what it would cost on the modeled hardware.
//
// Files expose the control surfaces the paper's KML application drives:
// per-file readahead (ra_pages) and fadvise hints.
package vfs

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/blockdev"
	"repro/internal/pagecache"
)

// ErrExist reports that a file already exists.
var ErrExist = errors.New("vfs: file exists")

// ErrNotExist reports a missing file.
var ErrNotExist = errors.New("vfs: file does not exist")

// FS is a flat simulated filesystem.
type FS struct {
	cache   *pagecache.Cache
	nextIno pagecache.FileID
	byName  map[string]*File
}

// New returns an empty filesystem over cache.
func New(cache *pagecache.Cache) *FS {
	if cache == nil {
		panic("vfs: nil cache")
	}
	return &FS{cache: cache, nextIno: 1, byName: make(map[string]*File)}
}

// File is an open simulated file. All opens of a name share one File (and
// therefore one inode, size, and readahead state), like an inode cache.
type File struct {
	fs   *FS
	name string
	ino  pagecache.FileID
	data []byte
}

// Create makes a new empty file.
func (fs *FS) Create(name string) (*File, error) {
	if _, ok := fs.byName[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExist, name)
	}
	f := &File{fs: fs, name: name, ino: fs.nextIno}
	fs.nextIno++
	fs.byName[name] = f
	return f, nil
}

// Open returns the file registered under name.
func (fs *FS) Open(name string) (*File, error) {
	f, ok := fs.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return f, nil
}

// Remove deletes a file and drops its cached pages.
func (fs *FS) Remove(name string) error {
	f, ok := fs.byName[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	delete(fs.byName, name)
	fs.cache.DropFile(f.ino)
	return nil
}

// Names returns the file names currently registered (unordered).
func (fs *FS) Names() []string {
	names := make([]string, 0, len(fs.byName))
	for n := range fs.byName {
		names = append(names, n)
	}
	return names
}

// Cache returns the underlying page cache (for experiment plumbing).
func (fs *FS) Cache() *pagecache.Cache { return fs.cache }

// TotalBytes returns the sum of all file sizes.
func (fs *FS) TotalBytes() int64 {
	var total int64
	for _, f := range fs.byName {
		total += f.Size()
	}
	return total
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// Ino returns the file's inode number.
func (f *File) Ino() pagecache.FileID { return f.ino }

// Size returns the current file size in bytes.
func (f *File) Size() int64 { return int64(len(f.data)) }

// ReadAt reads len(p) bytes at offset off, charging the page cache for
// every touched page. Short reads at EOF return io.EOF like os.File.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("vfs: negative offset %d", off)
	}
	if len(p) == 0 {
		return 0, nil
	}
	if off >= f.Size() {
		return 0, io.EOF
	}
	n := copy(p, f.data[off:])
	firstPage := off / blockdev.PageSize
	lastPage := (off + int64(n) - 1) / blockdev.PageSize
	f.fs.cache.ReadPages(f.ino, firstPage, int(lastPage-firstPage)+1)
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt writes p at offset off, growing the file as needed and dirtying
// the touched pages.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("vfs: negative offset %d", off)
	}
	if len(p) == 0 {
		return 0, nil
	}
	end := off + int64(len(p))
	if end > int64(len(f.data)) {
		f.grow(end)
		f.fs.cache.SetFilePages(f.ino, (end+blockdev.PageSize-1)/blockdev.PageSize)
	}
	copy(f.data[off:], p)
	firstPage := off / blockdev.PageSize
	lastPage := (end - 1) / blockdev.PageSize
	f.fs.cache.WritePages(f.ino, firstPage, int(lastPage-firstPage)+1)
	return len(p), nil
}

// grow extends the file to size bytes, zero-filling the new region and
// amortizing reallocation (append-heavy WAL/SSTable writes would otherwise
// be quadratic).
func (f *File) grow(size int64) {
	old := int64(len(f.data))
	if size <= int64(cap(f.data)) {
		f.data = f.data[:size]
		// The region may hold stale bytes from before a Truncate.
		clear(f.data[old:])
		return
	}
	newCap := int64(cap(f.data)) * 2
	if newCap < size {
		newCap = size
	}
	grown := make([]byte, size, newCap)
	copy(grown, f.data[:old])
	f.data = grown
}

// Append writes p at the end of the file and returns the offset the data
// landed at.
func (f *File) Append(p []byte) (int64, error) {
	off := f.Size()
	_, err := f.WriteAt(p, off)
	return off, err
}

// Sync writes back all dirty pages of the file and blocks until durable.
func (f *File) Sync() { f.fs.cache.SyncFile(f.ino) }

// Truncate resizes the file; shrinking drops the file's cached pages
// beyond the new size by invalidating the whole file (coarse, like many
// real filesystems' truncate paths).
func (f *File) Truncate(size int64) error {
	if size < 0 {
		return fmt.Errorf("vfs: negative size %d", size)
	}
	switch {
	case size < f.Size():
		f.data = f.data[:size]
		f.fs.cache.DropFile(f.ino)
		f.fs.cache.SetFilePages(f.ino, (size+blockdev.PageSize-1)/blockdev.PageSize)
	case size > f.Size():
		f.grow(size)
		f.fs.cache.SetFilePages(f.ino, (size+blockdev.PageSize-1)/blockdev.PageSize)
	}
	return nil
}

// SetReadahead overrides this file's ra_pages, in sectors (0 restores the
// device default).
func (f *File) SetReadahead(sectors int) {
	f.fs.cache.SetFileReadahead(f.ino, sectors)
}

// Fadvise records an access-pattern hint for the file.
func (f *File) Fadvise(h pagecache.Hint) {
	f.fs.cache.Fadvise(f.ino, h)
}
