// Drift detection: is the live workload still the population the model
// was trained on? Following the KML follow-up work, the leading
// indicator is the normalization statistics — the deployed normalizer
// freezes training-time means and standard deviations, so the
// standardized shift of the live feature means against those frozen
// stats is a direct staleness signal:
//
//	shift_i = (mean_window(x_i) - mean_train(x_i)) / std_train(x_i)
//
// i.e. a Z-score of the live window's mean under the training
// distribution. |shift| ~ 0-1 is the training regime; sustained |shift|
// above the threshold (default 2.0) means feature i has left the
// population and predictions are extrapolations. Alongside population
// shift, the monitor tracks prediction churn (how often consecutive
// decisions change class — a thrashing tuner) and the class
// distribution (a collapsed or flipped mix is drift even when features
// look tame). Userspace: floats are fine here — observation happens
// once per decision window and evaluation once per WindowSize
// decisions, never on the event path.
package dtrace

import (
	"fmt"
	"sync"

	"repro/internal/stats"
	"repro/internal/telemetry"
)

// DefaultDriftWindow is the evaluation window (decisions per drift
// report) when DriftConfig.Window is zero.
const DefaultDriftWindow = 64

// DefaultShiftThresholdMilli flags drift at |shift| >= 2.0 when
// DriftConfig.ThresholdMilliZ is zero.
const DefaultShiftThresholdMilli = 2000

// maxShiftZ clamps reported shifts so a zero-variance training feature
// cannot produce unbounded gauges.
const maxShiftZ = 100.0

// DriftConfig sizes a DriftMonitor.
type DriftConfig struct {
	// Features is the observed feature-vector width. Required.
	Features int
	// Classes is the number of prediction classes. Required.
	Classes int
	// Window is decisions per evaluation window (0 = DefaultDriftWindow).
	Window int
	// TrainMeans/TrainStds are the training-time normalization stats,
	// one per feature. When nil the monitor self-baselines: the first
	// completed window is fitted and becomes the reference population,
	// so drift is then measured against "how the workload looked when
	// this model was deployed" instead of training time.
	TrainMeans []float64
	TrainStds  []float64
	// ThresholdMilliZ flags drift when the max absolute feature shift
	// reaches this many milli-Z (0 = DefaultShiftThresholdMilli).
	ThresholdMilliZ int64
}

// DriftReport is one evaluation of model staleness, covering the most
// recently completed window.
type DriftReport struct {
	// Decisions and Windows are cumulative totals.
	Decisions uint64
	Windows   uint64
	// BaselineReady is false until training stats are installed or the
	// first window has been fitted; shifts are zero until then.
	BaselineReady bool
	// Shift is the per-feature standardized population shift (Z units).
	Shift []float64
	// MaxShift is the largest |Shift| and MaxShiftFeature its index.
	MaxShift        float64
	MaxShiftFeature int
	// ChurnPM is how many of the window's decisions changed class vs.
	// the previous decision, per mille.
	ChurnPM int64
	// ClassSharePM is the window's class distribution, per mille.
	ClassSharePM []int64
	// Drifted is MaxShift >= threshold.
	Drifted bool
}

// DriftMonitor accumulates per-decision observations and evaluates them
// every Window decisions. Safe for concurrent use.
type DriftMonitor struct {
	mu        sync.Mutex
	window    uint64
	threshold int64
	features  int
	classes   int

	baseMean, baseStd []float64
	baseReady         bool
	fit               []stats.Running // first-window baseline fit (no train stats)

	winSum   []float64
	winClass []uint64
	winN     uint64
	churn    uint64
	lastCls  int
	haveCls  bool

	decisions uint64
	windows   uint64

	// Published state of the last completed window.
	pub DriftReport

	// Optional gauges, set by RegisterMetrics.
	gShift   []*telemetry.Gauge
	gShare   []*telemetry.Gauge
	gMax     *telemetry.Gauge
	gChurn   *telemetry.Gauge
	gWindows *telemetry.Gauge
	gDrifted *telemetry.Gauge
}

// NewDriftMonitor returns a monitor for the given shape. It panics on a
// non-positive feature or class count, or on training stats of the
// wrong length — wiring errors, not runtime conditions.
func NewDriftMonitor(cfg DriftConfig) *DriftMonitor {
	if cfg.Features <= 0 || cfg.Classes <= 0 {
		panic("dtrace: drift monitor needs positive feature and class counts")
	}
	if (cfg.TrainMeans == nil) != (cfg.TrainStds == nil) {
		panic("dtrace: drift monitor needs both training means and stds, or neither")
	}
	if cfg.TrainMeans != nil && (len(cfg.TrainMeans) != cfg.Features || len(cfg.TrainStds) != cfg.Features) {
		panic("dtrace: drift training stats length mismatch")
	}
	m := &DriftMonitor{
		window:    DefaultDriftWindow,
		threshold: DefaultShiftThresholdMilli,
		features:  cfg.Features,
		classes:   cfg.Classes,
		winSum:    make([]float64, cfg.Features),
		winClass:  make([]uint64, cfg.Classes),
	}
	if cfg.Window > 0 {
		m.window = uint64(cfg.Window)
	}
	if cfg.ThresholdMilliZ > 0 {
		m.threshold = cfg.ThresholdMilliZ
	}
	if cfg.TrainMeans != nil {
		m.baseMean = append([]float64(nil), cfg.TrainMeans...)
		m.baseStd = append([]float64(nil), cfg.TrainStds...)
		m.baseReady = true
	} else {
		m.fit = make([]stats.Running, cfg.Features)
	}
	m.pub.Shift = make([]float64, cfg.Features)
	m.pub.ClassSharePM = make([]int64, cfg.Classes)
	return m
}

// Window returns the evaluation window in decisions.
func (m *DriftMonitor) Window() int { return int(m.window) }

// Observe records one decision: the RAW (pre-normalization) selected
// feature vector and the predicted class. feats may be shorter than the
// configured width (extra monitor features stay at zero); extra feats
// are ignored. Does not allocate.
func (m *DriftMonitor) Observe(feats []float64, class int) {
	m.mu.Lock()
	m.observeLocked(feats, class)
	m.mu.Unlock()
}

// ObserveBatch records rows decisions in one lock acquisition: feats is
// row-major rows×nfeat, classes holds one prediction per row. Used by
// the batched serving path. Does not allocate.
func (m *DriftMonitor) ObserveBatch(feats []float64, rows, nfeat int, classes []int) {
	if rows <= 0 || nfeat <= 0 || len(classes) < rows {
		return
	}
	m.mu.Lock()
	for r := 0; r < rows; r++ {
		m.observeLocked(feats[r*nfeat:(r+1)*nfeat], classes[r])
	}
	m.mu.Unlock()
}

func (m *DriftMonitor) observeLocked(feats []float64, class int) {
	m.decisions++
	n := len(feats)
	if n > m.features {
		n = m.features
	}
	for i := 0; i < n; i++ {
		m.winSum[i] += feats[i]
		if !m.baseReady {
			m.fit[i].Add(feats[i])
		}
	}
	if m.haveCls && class != m.lastCls {
		m.churn++
	}
	m.lastCls, m.haveCls = class, true
	if class >= 0 && class < m.classes {
		m.winClass[class]++
	}
	m.winN++
	if m.winN >= m.window {
		m.rollLocked()
	}
}

// rollLocked completes a window: fits the baseline if still pending,
// publishes shift/churn/distribution, updates gauges, resets the window.
func (m *DriftMonitor) rollLocked() {
	if !m.baseReady {
		m.baseMean = make([]float64, m.features)
		m.baseStd = make([]float64, m.features)
		for i := range m.fit {
			m.baseMean[i] = m.fit[i].Mean()
			m.baseStd[i] = m.fit[i].StdDev()
		}
		m.fit = nil
		m.baseReady = true
	}
	m.windows++
	m.pub.Windows = m.windows
	m.pub.Decisions = m.decisions
	m.pub.BaselineReady = true
	m.pub.MaxShift, m.pub.MaxShiftFeature = 0, 0
	for i := 0; i < m.features; i++ {
		mean := m.winSum[i] / float64(m.winN)
		m.pub.Shift[i] = shiftZ(mean, m.baseMean[i], m.baseStd[i])
		if a := abs(m.pub.Shift[i]); a > m.pub.MaxShift {
			m.pub.MaxShift, m.pub.MaxShiftFeature = a, i
		}
	}
	m.pub.ChurnPM = int64(m.churn * 1000 / m.winN)
	for c := 0; c < m.classes; c++ {
		m.pub.ClassSharePM[c] = int64(m.winClass[c] * 1000 / m.winN)
	}
	m.pub.Drifted = int64(m.pub.MaxShift*1000) >= m.threshold
	m.publishGaugesLocked()

	for i := range m.winSum {
		m.winSum[i] = 0
	}
	for c := range m.winClass {
		m.winClass[c] = 0
	}
	m.winN, m.churn = 0, 0
}

// shiftZ standardizes mean-baseMean by baseStd, clamped to ±maxShiftZ.
// A degenerate (≈0) training std makes any movement saturate: a feature
// that never varied in training has no business varying now.
func shiftZ(mean, baseMean, baseStd float64) float64 {
	d := mean - baseMean
	if baseStd <= 1e-12 {
		switch {
		case d > 1e-12:
			return maxShiftZ
		case d < -1e-12:
			return -maxShiftZ
		default:
			return 0
		}
	}
	z := d / baseStd
	if z > maxShiftZ {
		return maxShiftZ
	}
	if z < -maxShiftZ {
		return -maxShiftZ
	}
	return z
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func (m *DriftMonitor) publishGaugesLocked() {
	if m.gMax == nil {
		return
	}
	for i, g := range m.gShift {
		g.Set(int64(m.pub.Shift[i] * 1000))
	}
	for c, g := range m.gShare {
		g.Set(m.pub.ClassSharePM[c])
	}
	m.gMax.Set(int64(m.pub.MaxShift * 1000))
	m.gChurn.Set(m.pub.ChurnPM)
	m.gWindows.Set(int64(m.windows))
	if m.pub.Drifted {
		m.gDrifted.Set(1)
	} else {
		m.gDrifted.Set(0)
	}
}

// RegisterMetrics exposes the monitor under prefix: per-feature
// `<prefix>_shift_mz_<i>` (milli-Z), `<prefix>_max_shift_mz`,
// `<prefix>_churn_pm`, per-class `<prefix>_class_share_pm_<c>`,
// `<prefix>_windows`, `<prefix>_drifted` (0/1), and a snapshot-time
// `<prefix>_decisions`. Gauges update at window completion.
func (m *DriftMonitor) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gShift = make([]*telemetry.Gauge, m.features)
	for i := range m.gShift {
		m.gShift[i] = reg.Gauge(fmt.Sprintf("%s_shift_mz_%d", prefix, i))
	}
	m.gShare = make([]*telemetry.Gauge, m.classes)
	for c := range m.gShare {
		m.gShare[c] = reg.Gauge(fmt.Sprintf("%s_class_share_pm_%d", prefix, c))
	}
	m.gMax = reg.Gauge(prefix + "_max_shift_mz")
	m.gChurn = reg.Gauge(prefix + "_churn_pm")
	m.gWindows = reg.Gauge(prefix + "_windows")
	m.gDrifted = reg.Gauge(prefix + "_drifted")
	reg.Func(prefix+"_decisions", func() int64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return int64(m.decisions)
	})
}

// Rebaseline discards the monitor's reference population and refits it
// on the next completed window, exactly as a freshly self-baselined
// monitor would. The online-learning controller calls this after a
// committed retrain (the model now embodies the shifted distribution, so
// continuing to measure against the stale baseline would hold the drift
// signal high forever and either thrash retraining or wedge the
// trigger's hysteresis) and after a rollback (so a persistent shift has
// to re-establish itself against fresh statistics before firing again).
// The in-progress window is restarted; published gauges keep the last
// completed window's values until the refit window rolls, except Drifted
// which clears immediately — the old verdict is void once its baseline
// is gone.
func (m *DriftMonitor) Rebaseline() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.baseReady = false
	m.baseMean, m.baseStd = nil, nil
	m.fit = make([]stats.Running, m.features)
	for i := range m.winSum {
		m.winSum[i] = 0
	}
	for c := range m.winClass {
		m.winClass[c] = 0
	}
	m.winN, m.churn = 0, 0
	m.haveCls = false
	m.pub.Drifted = false
	m.pub.BaselineReady = false
	if m.gDrifted != nil {
		m.gDrifted.Set(0)
	}
}

// Report returns the last completed window's evaluation (copied), with
// live cumulative counters.
func (m *DriftMonitor) Report() DriftReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.pub
	r.Decisions = m.decisions
	r.Windows = m.windows
	r.BaselineReady = m.baseReady
	r.Shift = append([]float64(nil), m.pub.Shift...)
	r.ClassSharePM = append([]int64(nil), m.pub.ClassSharePM...)
	return r
}
