//go:build race

package dtrace

// raceEnabled lets timing self-checks skip under the race detector,
// whose atomics interception would make them measure the detector.
const raceEnabled = true
