package dtrace

import (
	"testing"
	"time"
)

// TraceOverheadBudgetNanos bounds the span tax one traced decision may
// add to the decision path. The budget is 100 ns for the WHOLE span
// tree bookkeeping of one decision (Start + Begin/End + Finish +
// Record) — generous next to the paper's 49 ns per-EVENT collection
// budget because tracing runs once per decision window (thousands of
// events), not per event; see EXPERIMENTS.md.
const TraceOverheadBudgetNanos = 100

var sink int64

func measure(iters, rounds int, f func(n int)) float64 {
	best := time.Duration(1<<63 - 1)
	for r := 0; r < rounds; r++ {
		start := time.Now()
		f(iters)
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / float64(iters)
}

// TestTraceOverheadBudget measures the span start/finish tax on the
// decision path — mint an ID, open the root, open/close one child span
// with attributes, finish, record into the arena — against a bare
// baseline loop, and fails if the delta exceeds the budget. Same
// discipline as telemetry's TestOverheadBudget: best-of-rounds filters
// scheduler noise, and CI runs it on every push.
func TestTraceOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race detector intercepts atomics; timings would measure the detector")
	}
	const iters = 1_000_000
	const rounds = 5

	bare := measure(iters, rounds, func(n int) {
		var acc int64
		for i := 0; i < n; i++ {
			acc += int64(i)
		}
		sink += acc
	})

	a := NewArena(256)
	var b Builder
	instr := measure(iters, rounds, func(n int) {
		var acc int64
		for i := 0; i < n; i++ {
			acc += int64(i)
			b.Start(a.NextID(), int64(i))
			idx := b.Begin(StageInfer, 0, int64(i))
			b.SetValue(idx, 2)
			b.SetAux(idx, 1)
			b.End(idx, int64(i+1))
			a.Record(b.Finish(int64(i + 2)))
		}
		sink += acc
	})

	tax := instr - bare
	t.Logf("bare %.1f ns/op, traced %.1f ns/op, span tax %.1f ns/decision (budget %d ns)",
		bare, instr, tax, TraceOverheadBudgetNanos)
	if tax > TraceOverheadBudgetNanos {
		t.Fatalf("span tax %.1f ns/decision exceeds the %d ns budget; "+
			"decision tracing is no longer cheap enough to leave always-on",
			tax, TraceOverheadBudgetNanos)
	}
	if a.Len() == 0 {
		t.Fatal("traced loop did not run")
	}
}

func BenchmarkSpanRecord(b *testing.B) {
	a := NewArena(256)
	var bld Builder
	for i := 0; i < b.N; i++ {
		bld.Start(a.NextID(), int64(i))
		idx := bld.Begin(StageInfer, 0, int64(i))
		bld.SetValue(idx, 2)
		bld.End(idx, int64(i+1))
		a.Record(bld.Finish(int64(i + 2)))
	}
	sink += int64(a.Len())
}

func BenchmarkArenaSnapshot(b *testing.B) {
	a := NewArena(256)
	for i := 0; i < 256; i++ {
		tr := buildTestTrace(a.NextID())
		a.Record(&tr)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += int64(len(a.Snapshot()))
	}
}
