// Package dtrace is the causal layer over the tuner's closed loop: one
// Trace per decision window, child spans for each stage the decision
// passed through (feature aggregation, normalization, inference, the
// readahead change applied to the device) and a follow-up span that
// samples the cache hit-rate over the NEXT window, so every decision
// carries its own outcome attribution. The primitives in this file obey
// the same kernel-portability constraints as internal/telemetry: fixed
// span slots inside a value-type Trace, integer-only fields, and
// zero-allocation recording on the decision path.
//
//kml:kernelspace
package dtrace

// TraceID identifies one decision window across every span it produced.
// IDs are minted per arena (see Arena.NextID) and are unique within a
// process, not across restarts.
type TraceID uint64

// Stage labels what a span measured.
type Stage uint8

// Span stages, in decision-path order. Parse and Encode appear only in
// server-side request traces (mserve), never in tuner decision traces.
const (
	// StageDecision is the root span covering one whole decision.
	StageDecision Stage = iota
	// StageFeature covers draining the event window and emitting the
	// raw candidate feature vector.
	StageFeature
	// StageNormalize covers Z-score normalization of the selected
	// features.
	StageNormalize
	// StageInfer covers the model forward pass.
	StageInfer
	// StageApply covers pushing the chosen readahead size to the
	// device.
	StageApply
	// StageOutcome spans the WINDOW AFTER the decision and records the
	// cache hit-rate it produced — the decision's reward signal.
	StageOutcome
	// StageParse covers request-payload decoding in the serving path.
	StageParse
	// StageEncode covers response encoding in the serving path.
	StageEncode
	// StageQueue covers the time a request spent between arriving on the
	// wire (header read) and its handler starting — the queueing delay a
	// batch coalescer would add, measured per request.
	StageQueue
	// StageClient is the root span of a CLIENT-side request trace: one
	// whole Infer/BatchInfer call as the caller experienced it. When the
	// client stamps its TraceID into the request frame, the server's
	// spans join this trace and kml-trace can render the cross-process
	// tree.
	StageClient
	// StageWire covers the client's request write through the response
	// read — wire time plus everything the server did. The gap between
	// a wire span and the joined server root span is network and
	// scheduling overhead.
	StageWire
	// NumStages bounds the valid Stage values.
	NumStages
)

var stageNames = [NumStages]string{
	"decision", "feature", "normalize", "infer",
	"apply", "outcome", "parse", "encode",
	"queue", "client", "wire",
}

// String returns the stage name.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "stage?"
}

// MaxTraceSpans is the fixed span capacity of a Trace. The tuner path
// uses six (root + feature/normalize/infer/apply/outcome), the serving
// path five (root + queue/parse/infer/encode) and the client path four
// (root + encode/wire/parse), so eight leaves headroom without bloating
// the arena slots.
const MaxTraceSpans = 8

// Span is one timed stage of a decision. Start/End are wall-clock
// UnixNano stamps taken by the caller (the span layer never reads the
// clock itself, keeping it portable to environments with their own
// timebase). Value and Aux carry stage-specific integer attributes:
//
//	decision:  Value=predicted class, Aux=virtual decision time (ns)
//	feature:   Value=events drained from the window
//	normalize: Value=features normalized
//	infer:     Value=predicted class (-1 for a batch), Aux=model version —
//	           except coalesced serving spans, where Aux packs the
//	           achieved cross-connection batch size over the version
//	           (PackInferAux/UnpackInferAux)
//	apply:     Value=new readahead sectors, Aux=previous sectors
//	outcome:   Value=hit-rate delta (per-mille, vs previous window),
//	           Aux=absolute next-window hit rate (per-mille, -1 unknown)
//	parse:     Value=request payload bytes
//	encode:    Value=response payload bytes
//	queue:     Value=queue delay (ns, duplicates Duration for filters)
//	client:    Value=predicted class (-1 for a batch), Aux=rows
//	wire:      Value=response frame bytes, Aux=request frame bytes
type Span struct {
	Start  int64
	End    int64
	Value  int64
	Aux    int64
	Stage  Stage
	Parent uint8 // 1-based index of the parent span; 0 = no parent (root)
}

// Duration returns End-Start in nanoseconds (0 if the span never ended).
func (s *Span) Duration() int64 {
	if s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// Trace is one decision's complete span tree in a fixed-size value —
// the arena slot type. Spans[0] is always the root; children reference
// parents by 1-based index, so a parent always precedes its children.
type Trace struct {
	ID    TraceID
	N     uint8 // spans in use (0 = empty slot)
	Spans [MaxTraceSpans]Span
}

// Used returns the populated spans (a view, not a copy).
func (t *Trace) Used() []Span { return t.Spans[:t.N] }

// Root returns the root span, or nil for an empty trace.
func (t *Trace) Root() *Span {
	if t.N == 0 {
		return nil
	}
	return &t.Spans[0]
}

// Complete reports whether every span in the trace was ended — the
// smoke test's definition of "a complete span tree".
func (t *Trace) Complete() bool {
	if t.N == 0 {
		return false
	}
	for i := 0; i < int(t.N); i++ {
		if t.Spans[i].End < t.Spans[i].Start {
			return false
		}
	}
	return true
}

// wireOK reports whether the trace is representable in the canonical
// wire format: at least the root span, span count within the fixed
// capacity, every stage valid, and every parent reference pointing at
// an EARLIER span (so decoders can build the tree in one pass).
func (t *Trace) wireOK() bool {
	if t.N < 1 || int(t.N) > MaxTraceSpans {
		return false
	}
	for i := 0; i < int(t.N); i++ {
		s := &t.Spans[i]
		if s.Stage >= NumStages {
			return false
		}
		if int(s.Parent) > i {
			return false
		}
	}
	return true
}

// Builder accumulates one trace on the decision path. It is a plain
// value embedded in its owner (tuner, server connection) — no pointers,
// no allocation — and is reused across decisions: Finish hands the
// completed trace out by value and resets the builder.
type Builder struct {
	t Trace
}

// Start opens a new trace with the root decision span. Any trace under
// construction is discarded.
//
//kml:hotpath
func (b *Builder) Start(id TraceID, startNS int64) {
	b.StartRoot(id, StageDecision, startNS)
}

// StartRoot opens a new trace whose root span carries an explicit stage —
// StageClient for client-side request traces, StageDecision everywhere
// else. Any trace under construction is discarded.
//
//kml:hotpath
func (b *Builder) StartRoot(id TraceID, stage Stage, startNS int64) {
	b.t.ID = id
	b.t.N = 1
	b.t.Spans[0] = Span{Stage: stage, Start: startNS}
}

// Begin opens a child span under the span at index parent and returns
// its index, or -1 if the trace is full or not started — callers pass
// the index back to End/SetValue/SetAux, which tolerate -1, so an
// overflowing trace degrades to missing spans rather than corruption.
//
//kml:hotpath
func (b *Builder) Begin(stage Stage, parent int, startNS int64) int {
	if b.t.N == 0 || int(b.t.N) >= MaxTraceSpans {
		return -1
	}
	if parent < 0 || parent >= int(b.t.N) {
		return -1
	}
	idx := int(b.t.N)
	b.t.Spans[idx] = Span{Stage: stage, Parent: uint8(parent + 1), Start: startNS}
	b.t.N++
	return idx
}

// End stamps the span's end time. A negative or stale index is ignored.
//
//kml:hotpath
func (b *Builder) End(idx int, endNS int64) {
	if idx < 0 || idx >= int(b.t.N) {
		return
	}
	b.t.Spans[idx].End = endNS
}

// SetValue sets the span's primary attribute (see Span for semantics).
//
//kml:hotpath
func (b *Builder) SetValue(idx int, v int64) {
	if idx < 0 || idx >= int(b.t.N) {
		return
	}
	b.t.Spans[idx].Value = v
}

// SetAux sets the span's secondary attribute.
//
//kml:hotpath
func (b *Builder) SetAux(idx int, v int64) {
	if idx < 0 || idx >= int(b.t.N) {
		return
	}
	b.t.Spans[idx].Aux = v
}

// PackInferAux packs (model version, achieved batch rows) into one Aux
// value for a COALESCED serving StageInfer span: rows in the high 32
// bits over the version's low 32 bits. The infer stage of a coalesced
// request is shared across connections, but every request keeps its own
// span — this stamp records how much company the row had in the fused
// batch, per request. Versions are registry sequence numbers (small);
// the low-32 truncation is a rendering concession, not a correctness
// boundary.
//
//kml:hotpath
func PackInferAux(version uint64, batchRows int) int64 {
	return int64(batchRows)<<32 | int64(uint32(version))
}

// UnpackInferAux splits a PackInferAux value back into (version low
// bits, batch rows).
func UnpackInferAux(aux int64) (version uint64, batchRows int) {
	return uint64(uint32(aux)), int(aux >> 32)
}

// Active reports whether a trace is under construction.
func (b *Builder) Active() bool { return b.t.N > 0 }

// Finish closes the root span (if the caller has not already) and
// returns the completed trace. The pointer aliases the builder's
// storage — copy-free on the decision path — and stays valid until the
// next Start, which begins a fresh trace over the same slot.
//
//kml:hotpath
func (b *Builder) Finish(endNS int64) *Trace {
	if b.t.N > 0 && b.t.Spans[0].End == 0 {
		b.t.Spans[0].End = endNS
	}
	return &b.t
}
