//go:build !race

package dtrace

// raceEnabled lets timing self-checks skip under the race detector.
const raceEnabled = false
