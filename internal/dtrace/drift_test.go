package dtrace

import (
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func gaugeValue(t *testing.T, reg *telemetry.Registry, name string) int64 {
	t.Helper()
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			return s.Value
		}
	}
	t.Fatalf("metric %q not registered", name)
	return 0
}

func TestDriftAgainstTrainingStats(t *testing.T) {
	m := NewDriftMonitor(DriftConfig{
		Features:   2,
		Classes:    3,
		Window:     4,
		TrainMeans: []float64{10, 0},
		TrainStds:  []float64{2, 1},
	})
	// First window sits exactly on the training means: no shift.
	for i := 0; i < 4; i++ {
		m.Observe([]float64{10, 0}, 1)
	}
	r := m.Report()
	if !r.BaselineReady || r.Windows != 1 || r.Decisions != 4 {
		t.Fatalf("after window 1: %+v", r)
	}
	if r.MaxShift != 0 || r.Drifted {
		t.Fatalf("on-distribution window reported shift %v", r.Shift)
	}
	if r.ClassSharePM[1] != 1000 || r.ChurnPM != 0 {
		t.Fatalf("class share / churn wrong: %+v", r)
	}
	// Second window: feature 0 moves to 16 = (16-10)/2 = +3σ → drifted.
	for i := 0; i < 4; i++ {
		m.Observe([]float64{16, 0}, 2)
	}
	r = m.Report()
	if r.Windows != 2 {
		t.Fatalf("Windows = %d, want 2", r.Windows)
	}
	if r.Shift[0] != 3 || r.Shift[1] != 0 {
		t.Fatalf("Shift = %v, want [3 0]", r.Shift)
	}
	if r.MaxShift != 3 || r.MaxShiftFeature != 0 || !r.Drifted {
		t.Fatalf("drift not flagged: %+v", r)
	}
	if r.ClassSharePM[2] != 1000 {
		t.Fatalf("class share should follow the window: %+v", r)
	}
}

func TestDriftSelfBaseline(t *testing.T) {
	m := NewDriftMonitor(DriftConfig{Features: 1, Classes: 2, Window: 8})
	if m.Report().BaselineReady {
		t.Fatal("baseline should not be ready before the first window")
	}
	// First window fits the baseline: values 0..7 → mean 3.5.
	for i := 0; i < 8; i++ {
		m.Observe([]float64{float64(i)}, 0)
	}
	r := m.Report()
	if !r.BaselineReady {
		t.Fatal("first window should fit the baseline")
	}
	if r.MaxShift != 0 {
		t.Fatalf("baseline window should report zero shift, got %v", r.Shift)
	}
	// Shifted second window moves the gauge off zero.
	for i := 0; i < 8; i++ {
		m.Observe([]float64{100}, 0)
	}
	r = m.Report()
	if r.Shift[0] <= 0 {
		t.Fatalf("shifted window should report positive shift, got %v", r.Shift)
	}
}

func TestDriftChurnAndZeroStd(t *testing.T) {
	m := NewDriftMonitor(DriftConfig{
		Features:   1,
		Classes:    2,
		Window:     4,
		TrainMeans: []float64{5},
		TrainStds:  []float64{0}, // degenerate: feature never varied in training
	})
	classes := []int{0, 1, 0, 1} // every decision flips class
	for _, c := range classes {
		m.Observe([]float64{6}, c)
	}
	r := m.Report()
	if r.ChurnPM != 750 {
		t.Fatalf("ChurnPM = %d, want 750 (3 flips / 4 decisions)", r.ChurnPM)
	}
	if r.Shift[0] != maxShiftZ {
		t.Fatalf("zero-std movement should saturate at %v, got %v", maxShiftZ, r.Shift[0])
	}
}

func TestDriftObserveBatch(t *testing.T) {
	m := NewDriftMonitor(DriftConfig{
		Features:   2,
		Classes:    2,
		Window:     4,
		TrainMeans: []float64{0, 0},
		TrainStds:  []float64{1, 1},
	})
	feats := []float64{
		1, 2,
		1, 2,
		1, 2,
		1, 2,
	}
	m.ObserveBatch(feats, 4, 2, []int{0, 0, 1, 1})
	r := m.Report()
	if r.Windows != 1 || r.Decisions != 4 {
		t.Fatalf("batch should complete the window: %+v", r)
	}
	if r.Shift[0] != 1 || r.Shift[1] != 2 {
		t.Fatalf("Shift = %v, want [1 2]", r.Shift)
	}
	if r.ClassSharePM[0] != 500 || r.ClassSharePM[1] != 500 {
		t.Fatalf("class shares = %v, want [500 500]", r.ClassSharePM)
	}
	// Degenerate batches are ignored.
	m.ObserveBatch(nil, 0, 2, nil)
	m.ObserveBatch(feats, 4, 2, []int{0})
	if m.Report().Decisions != 4 {
		t.Fatal("degenerate batches should be ignored")
	}
}

func TestDriftGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewDriftMonitor(DriftConfig{
		Features:   1,
		Classes:    2,
		Window:     2,
		TrainMeans: []float64{0},
		TrainStds:  []float64{1},
	})
	m.RegisterMetrics(reg, "drift")
	if got := gaugeValue(t, reg, "drift_max_shift_mz"); got != 0 {
		t.Fatalf("gauge before any window = %d, want 0", got)
	}
	m.Observe([]float64{2.5}, 1)
	m.Observe([]float64{2.5}, 1)
	if got := gaugeValue(t, reg, "drift_shift_mz_0"); got != 2500 {
		t.Fatalf("drift_shift_mz_0 = %d, want 2500", got)
	}
	if got := gaugeValue(t, reg, "drift_max_shift_mz"); got != 2500 {
		t.Fatalf("drift_max_shift_mz = %d, want 2500", got)
	}
	if got := gaugeValue(t, reg, "drift_drifted"); got != 1 {
		t.Fatalf("drift_drifted = %d, want 1", got)
	}
	if got := gaugeValue(t, reg, "drift_windows"); got != 1 {
		t.Fatalf("drift_windows = %d, want 1", got)
	}
	if got := gaugeValue(t, reg, "drift_decisions"); got != 2 {
		t.Fatalf("drift_decisions = %d, want 2", got)
	}
	if got := gaugeValue(t, reg, "drift_class_share_pm_1"); got != 1000 {
		t.Fatalf("drift_class_share_pm_1 = %d, want 1000", got)
	}
	// Re-registration after a redeploy reuses the same gauges.
	m2 := NewDriftMonitor(DriftConfig{Features: 1, Classes: 2, Window: 2})
	m2.RegisterMetrics(reg, "drift")
	var names []string
	for _, s := range reg.Snapshot() {
		names = append(names, s.Name)
	}
	joined := strings.Join(names, ",")
	if strings.Count(joined, "drift_max_shift_mz") != 1 {
		t.Fatalf("re-registration duplicated gauges: %s", joined)
	}
}

func TestDriftObserveAllocFree(t *testing.T) {
	m := NewDriftMonitor(DriftConfig{
		Features:   4,
		Classes:    4,
		Window:     64,
		TrainMeans: []float64{0, 0, 0, 0},
		TrainStds:  []float64{1, 1, 1, 1},
	})
	feats := []float64{1, 2, 3, 4}
	allocs := testing.AllocsPerRun(1000, func() {
		m.Observe(feats, 1)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestDriftConfigValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("no features", func() { NewDriftMonitor(DriftConfig{Classes: 2}) })
	mustPanic("no classes", func() { NewDriftMonitor(DriftConfig{Features: 2}) })
	mustPanic("means without stds", func() {
		NewDriftMonitor(DriftConfig{Features: 1, Classes: 1, TrainMeans: []float64{0}})
	})
	mustPanic("length mismatch", func() {
		NewDriftMonitor(DriftConfig{Features: 2, Classes: 1, TrainMeans: []float64{0}, TrainStds: []float64{1}})
	})
}

func TestDriftRebaseline(t *testing.T) {
	m := NewDriftMonitor(DriftConfig{
		Features:   1,
		Classes:    2,
		Window:     4,
		TrainMeans: []float64{0},
		TrainStds:  []float64{1},
	})
	// Live mean 10 vs training mean 0/std 1: massive shift, drifted.
	for i := 0; i < 4; i++ {
		m.Observe([]float64{10}, 0)
	}
	if r := m.Report(); !r.Drifted || r.MaxShift < 5 {
		t.Fatalf("expected drifted report before rebaseline, got %+v", r)
	}
	// Rebaseline: the verdict clears immediately and the next completed
	// window refits the reference on the NEW population, so the same
	// traffic no longer reads as drift.
	m.Rebaseline()
	if r := m.Report(); r.Drifted || r.BaselineReady {
		t.Fatalf("rebaselined monitor should be undrifted with no baseline, got %+v", r)
	}
	for i := 0; i < 8; i++ {
		m.Observe([]float64{10}, 0)
	}
	r := m.Report()
	if !r.BaselineReady {
		t.Fatal("baseline should refit after a completed window")
	}
	if r.Drifted || abs(r.Shift[0]) > 0.5 {
		t.Fatalf("post-rebaseline traffic at the new mean should not drift, got %+v", r)
	}
	// A fresh shift against the refit baseline is detected again.
	for i := 0; i < 4; i++ {
		m.Observe([]float64{200}, 0)
	}
	if r := m.Report(); !r.Drifted {
		t.Fatalf("shift against refit baseline should drift, got %+v", r)
	}
}
