// Canonical binary encoding of trace batches, in the style of
// mserve's MsgMetrics payload: little-endian, length-prefixed, and
// CANONICAL — for every payload ParseTraces accepts,
// AppendTraces(nil, ParseTraces(b)) == b, pinned by FuzzTracesDecode.
//
// Layout:
//
//	u16 ntraces                      (<= MaxWireTraces)
//	per trace:
//	  u64 id
//	  u8  nspans                     (1..MaxTraceSpans)
//	  per span:
//	    u8  stage                    (< NumStages)
//	    u8  parent                   (1-based, references an earlier span)
//	    u64 value | u64 aux | u64 start | u64 end
package dtrace

import (
	"encoding/binary"
	"errors"
)

// MaxWireTraces bounds one payload: 512 full traces encode to ~140 KiB,
// comfortably inside mserve's 1 MiB MaxPayload.
const MaxWireTraces = 512

const spanWireSize = 1 + 1 + 8 + 8 + 8 + 8

// ErrBadTraceWire reports a malformed or non-canonical trace payload.
var ErrBadTraceWire = errors.New("dtrace: malformed trace payload")

// AppendTraces appends the canonical encoding of traces to dst. Traces
// the wire format cannot represent (empty, invalid stage or parent) are
// skipped, and at most MaxWireTraces are encoded — newest last, oldest
// dropped first, matching the arena's keep-latest policy.
func AppendTraces(dst []byte, traces []Trace) []byte {
	ok := make([]int, 0, len(traces))
	for i := range traces {
		if traces[i].wireOK() {
			ok = append(ok, i)
		}
	}
	if len(ok) > MaxWireTraces {
		ok = ok[len(ok)-MaxWireTraces:]
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(ok)))
	for _, i := range ok {
		t := &traces[i]
		dst = binary.LittleEndian.AppendUint64(dst, uint64(t.ID))
		dst = append(dst, t.N)
		for j := 0; j < int(t.N); j++ {
			s := &t.Spans[j]
			dst = append(dst, byte(s.Stage), s.Parent)
			dst = binary.LittleEndian.AppendUint64(dst, uint64(s.Value))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(s.Aux))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(s.Start))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(s.End))
		}
	}
	return dst
}

// ParseTraces decodes a canonical trace payload. It rejects truncated
// input, trailing bytes, span counts outside 1..MaxTraceSpans, unknown
// stages, and forward parent references.
func ParseTraces(b []byte) ([]Trace, error) {
	if len(b) < 2 {
		return nil, ErrBadTraceWire
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if n > MaxWireTraces {
		return nil, ErrBadTraceWire
	}
	out := make([]Trace, n)
	for i := 0; i < n; i++ {
		if len(b) < 9 {
			return nil, ErrBadTraceWire
		}
		t := &out[i]
		t.ID = TraceID(binary.LittleEndian.Uint64(b))
		t.N = b[8]
		b = b[9:]
		if t.N < 1 || int(t.N) > MaxTraceSpans {
			return nil, ErrBadTraceWire
		}
		for j := 0; j < int(t.N); j++ {
			if len(b) < spanWireSize {
				return nil, ErrBadTraceWire
			}
			s := &t.Spans[j]
			s.Stage = Stage(b[0])
			s.Parent = b[1]
			if s.Stage >= NumStages || int(s.Parent) > j {
				return nil, ErrBadTraceWire
			}
			s.Value = int64(binary.LittleEndian.Uint64(b[2:]))
			s.Aux = int64(binary.LittleEndian.Uint64(b[10:]))
			s.Start = int64(binary.LittleEndian.Uint64(b[18:]))
			s.End = int64(binary.LittleEndian.Uint64(b[26:]))
			b = b[spanWireSize:]
		}
	}
	if len(b) != 0 {
		return nil, ErrBadTraceWire
	}
	return out, nil
}
