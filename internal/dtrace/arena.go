// Arena: bounded keep-latest retention of completed traces, plus the
// TraceID mint. The storage is a preallocated power-of-two ring of
// Trace slots written circularly — under overflow the OLDEST trace is
// overwritten, because like a flight recorder the recent past is what
// debugging needs. Unlike telemetry.FlightRecorder (which wraps the
// SPSC internal/ringbuf and pays a pop+push per eviction), the arena
// owns its ring directly so Record is exactly one slot copy; the span
// budget in overhead_test.go is what forces that choice. Recording
// happens once per decision window — never on the per-event hot path —
// so a mutex is acceptable and makes Snapshot safe from any goroutine.
package dtrace

import (
	"sync"
	"sync/atomic"
)

// MaxArenaCapacity bounds arena sizing, mirroring ringbuf.MaxCapacity's
// guard against shift overflow in the rounding loop.
const MaxArenaCapacity = 1 << 20

// Arena retains the most recent completed traces and mints TraceIDs.
type Arena struct {
	mu    sync.Mutex
	slots []Trace
	mask  uint64
	w     uint64 // total traces ever recorded
	next  atomic.Uint64
}

// NewArena returns an arena retaining the last `capacity` traces
// (rounded up to a power of two). It panics on a non-positive or
// excessive capacity — a wiring error, not a runtime condition.
func NewArena(capacity int) *Arena {
	if capacity <= 0 || capacity > MaxArenaCapacity {
		panic("dtrace: arena capacity out of range")
	}
	c := 1
	for c < capacity {
		c <<= 1
	}
	return &Arena{slots: make([]Trace, c), mask: uint64(c - 1)}
}

// NextID mints a fresh trace ID. IDs start at 1; 0 never names a trace.
//
//kml:hotpath
func (a *Arena) NextID() TraceID { return TraceID(a.next.Add(1)) }

// Record copies a completed trace into the next slot, overwriting the
// oldest retained trace when full. Empty traces (N == 0) are dropped.
//
//kml:hotpath
func (a *Arena) Record(t *Trace) {
	if t == nil || t.N == 0 {
		return
	}
	a.mu.Lock()
	a.slots[a.w&a.mask] = *t
	a.w++
	a.mu.Unlock()
}

// Cursor returns the arena's write cursor: the total number of traces
// ever recorded. A reader that remembers a cursor can later fetch only
// what arrived after it with ReadNewer.
func (a *Arena) Cursor() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.w
}

// ReadNewer copies traces recorded after cursor `since` into dst, oldest
// first, and returns the count copied plus the cursor to pass next time.
// Traces that have already been overwritten are silently skipped (the
// returned cursor accounts for them), and at most len(dst) traces are
// copied per call — loop until the count is zero to drain. The
// destination is caller-owned, so a polling consumer (the online-learning
// controller) reads the arena without allocating.
//
//kml:hotpath
func (a *Arena) ReadNewer(since uint64, dst []Trace) (int, uint64) {
	if len(dst) == 0 {
		return 0, since
	}
	a.mu.Lock()
	if since > a.w {
		// A cursor from a different arena (or a reset); resync to "now"
		// rather than replaying the whole ring.
		w := a.w
		a.mu.Unlock()
		return 0, w
	}
	start := since
	if horizon := a.w - min64(a.w, uint64(len(a.slots))); start < horizon {
		start = horizon
	}
	n := a.w - start
	if n > uint64(len(dst)) {
		n = uint64(len(dst))
	}
	for i := uint64(0); i < n; i++ {
		dst[i] = a.slots[(start+i)&a.mask]
	}
	a.mu.Unlock()
	return int(n), start + n
}

//kml:hotpath
func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// Snapshot returns a copy of the retained traces, oldest first.
func (a *Arena) Snapshot() []Trace {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := a.w
	if n > uint64(len(a.slots)) {
		n = uint64(len(a.slots))
	}
	out := make([]Trace, n)
	for i := uint64(0); i < n; i++ {
		out[i] = a.slots[(a.w-n+i)&a.mask]
	}
	return out
}

// Len returns the number of retained traces.
func (a *Arena) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.w > uint64(len(a.slots)) {
		return len(a.slots)
	}
	return int(a.w)
}

// Cap returns the retention capacity.
func (a *Arena) Cap() int { return len(a.slots) }

// Evicted returns how many traces have been displaced by newer ones —
// how far back the arena's horizon has moved.
func (a *Arena) Evicted() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.w > uint64(len(a.slots)) {
		return a.w - uint64(len(a.slots))
	}
	return 0
}
