// Arena: bounded keep-latest retention of completed traces, plus the
// TraceID mint. The storage is a preallocated power-of-two ring of
// Trace slots written circularly — under overflow the OLDEST trace is
// overwritten, because like a flight recorder the recent past is what
// debugging needs. Unlike telemetry.FlightRecorder (which wraps the
// SPSC internal/ringbuf and pays a pop+push per eviction), the arena
// owns its ring directly so Record is exactly one slot copy; the span
// budget in overhead_test.go is what forces that choice. Recording
// happens once per decision window — never on the per-event hot path —
// so a mutex is acceptable and makes Snapshot safe from any goroutine.
package dtrace

import (
	"sync"
	"sync/atomic"
)

// MaxArenaCapacity bounds arena sizing, mirroring ringbuf.MaxCapacity's
// guard against shift overflow in the rounding loop.
const MaxArenaCapacity = 1 << 20

// Arena retains the most recent completed traces and mints TraceIDs.
type Arena struct {
	mu    sync.Mutex
	slots []Trace
	mask  uint64
	w     uint64 // total traces ever recorded
	next  atomic.Uint64
}

// NewArena returns an arena retaining the last `capacity` traces
// (rounded up to a power of two). It panics on a non-positive or
// excessive capacity — a wiring error, not a runtime condition.
func NewArena(capacity int) *Arena {
	if capacity <= 0 || capacity > MaxArenaCapacity {
		panic("dtrace: arena capacity out of range")
	}
	c := 1
	for c < capacity {
		c <<= 1
	}
	return &Arena{slots: make([]Trace, c), mask: uint64(c - 1)}
}

// NextID mints a fresh trace ID. IDs start at 1; 0 never names a trace.
//
//kml:hotpath
func (a *Arena) NextID() TraceID { return TraceID(a.next.Add(1)) }

// Record copies a completed trace into the next slot, overwriting the
// oldest retained trace when full. Empty traces (N == 0) are dropped.
//
//kml:hotpath
func (a *Arena) Record(t *Trace) {
	if t == nil || t.N == 0 {
		return
	}
	a.mu.Lock()
	a.slots[a.w&a.mask] = *t
	a.w++
	a.mu.Unlock()
}

// Snapshot returns a copy of the retained traces, oldest first.
func (a *Arena) Snapshot() []Trace {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := a.w
	if n > uint64(len(a.slots)) {
		n = uint64(len(a.slots))
	}
	out := make([]Trace, n)
	for i := uint64(0); i < n; i++ {
		out[i] = a.slots[(a.w-n+i)&a.mask]
	}
	return out
}

// Len returns the number of retained traces.
func (a *Arena) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.w > uint64(len(a.slots)) {
		return len(a.slots)
	}
	return int(a.w)
}

// Cap returns the retention capacity.
func (a *Arena) Cap() int { return len(a.slots) }

// Evicted returns how many traces have been displaced by newer ones —
// how far back the arena's horizon has moved.
func (a *Arena) Evicted() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.w > uint64(len(a.slots)) {
		return a.w - uint64(len(a.slots))
	}
	return 0
}
