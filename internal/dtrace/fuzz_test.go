package dtrace

import (
	"bytes"
	"testing"
)

// FuzzTracesDecode pins the canonical-encoding invariant the wire
// format promises (the same discipline as mserve's FuzzMetricsDecode):
// any payload ParseTraces accepts must re-encode byte-identically, and
// the decoded traces must be structurally valid (root present, parents
// before children, known stages).
func FuzzTracesDecode(f *testing.F) {
	f.Add([]byte{0, 0})
	f.Add(AppendTraces(nil, []Trace{buildTestTrace(1)}))
	f.Add(AppendTraces(nil, []Trace{buildTestTrace(1), buildTestTrace(2), buildTestTrace(1 << 40)}))
	var b Builder
	b.Start(3, 1)
	p := b.Begin(StageParse, 0, 2)
	b.End(p, 3)
	c := b.Begin(StageInfer, p, 3)
	b.End(c, 4)
	f.Add(AppendTraces(nil, []Trace{*b.Finish(5)}))
	f.Add([]byte{1, 0, 1, 2, 3, 4, 5, 6, 7, 8, 1, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		traces, err := ParseTraces(data)
		if err != nil {
			return
		}
		for i := range traces {
			if !traces[i].wireOK() {
				t.Fatalf("ParseTraces accepted a non-wire-representable trace: %+v", traces[i])
			}
		}
		re := AppendTraces(nil, traces)
		if !bytes.Equal(re, data) {
			t.Fatalf("round-trip not canonical:\n in %x\nout %x", data, re)
		}
	})
}
