package dtrace

import (
	"testing"
)

func buildTestTrace(id TraceID) Trace {
	var b Builder
	b.Start(id, 100)
	b.SetValue(0, 2)
	b.SetAux(0, 17_000_000_000)
	f := b.Begin(StageFeature, 0, 110)
	b.SetValue(f, 512)
	b.End(f, 120)
	n := b.Begin(StageNormalize, 0, 120)
	b.SetValue(n, 4)
	b.End(n, 130)
	i := b.Begin(StageInfer, 0, 130)
	b.SetValue(i, 2)
	b.SetAux(i, 3)
	b.End(i, 160)
	a := b.Begin(StageApply, 0, 160)
	b.SetValue(a, 1024)
	b.SetAux(a, 256)
	b.End(a, 170)
	o := b.Begin(StageOutcome, 0, 170)
	b.SetValue(o, 40)
	b.SetAux(o, 910)
	b.End(o, 500)
	return *b.Finish(500)
}

func TestBuilderSpanTree(t *testing.T) {
	tr := buildTestTrace(7)
	if tr.ID != 7 {
		t.Fatalf("ID = %d, want 7", tr.ID)
	}
	if tr.N != 6 {
		t.Fatalf("N = %d, want 6", tr.N)
	}
	if !tr.Complete() {
		t.Fatal("trace should be complete")
	}
	root := tr.Root()
	if root.Stage != StageDecision || root.Parent != 0 {
		t.Fatalf("bad root span: %+v", root)
	}
	if root.Start != 100 || root.End != 500 || root.Duration() != 400 {
		t.Fatalf("root timing wrong: %+v", root)
	}
	wantStages := []Stage{StageDecision, StageFeature, StageNormalize, StageInfer, StageApply, StageOutcome}
	for i, s := range tr.Used() {
		if s.Stage != wantStages[i] {
			t.Fatalf("span %d stage = %v, want %v", i, s.Stage, wantStages[i])
		}
		if i > 0 && s.Parent != 1 {
			t.Fatalf("span %d parent = %d, want 1 (root)", i, s.Parent)
		}
	}
	infer := tr.Spans[3]
	if infer.Value != 2 || infer.Aux != 3 || infer.Duration() != 30 {
		t.Fatalf("infer span attributes wrong: %+v", infer)
	}
}

func TestBuilderOverflowAndMisuse(t *testing.T) {
	var b Builder
	// Begin before Start must refuse.
	if idx := b.Begin(StageFeature, 0, 1); idx != -1 {
		t.Fatalf("Begin before Start = %d, want -1", idx)
	}
	b.Start(1, 1)
	for i := 0; i < MaxTraceSpans-1; i++ {
		if idx := b.Begin(StageFeature, 0, 1); idx != i+1 {
			t.Fatalf("Begin %d = %d, want %d", i, idx, i+1)
		}
	}
	// Trace is full: further Begins degrade to -1, End/Set tolerate it.
	if idx := b.Begin(StageFeature, 0, 1); idx != -1 {
		t.Fatalf("Begin past capacity = %d, want -1", idx)
	}
	b.End(-1, 2)
	b.SetValue(-1, 2)
	b.SetAux(-1, 2)
	// Bad parent refs refuse.
	b2 := Builder{}
	b2.Start(2, 1)
	if idx := b2.Begin(StageFeature, 5, 1); idx != -1 {
		t.Fatalf("Begin with forward parent = %d, want -1", idx)
	}
	if idx := b2.Begin(StageFeature, -1, 1); idx != -1 {
		t.Fatalf("Begin with negative parent = %d, want -1", idx)
	}
	tr := *b2.Finish(9)
	if tr.N != 1 || tr.Spans[0].End != 9 {
		t.Fatalf("Finish should close root: %+v", tr)
	}
	// The next Start reuses the slot for a fresh trace.
	b2.Start(3, 20)
	if got := *b2.Finish(21); got.ID != 3 || got.N != 1 || got.Spans[0].Start != 20 {
		t.Fatalf("Start should reset the builder: %+v", got)
	}
}

func TestBuilderNestedParent(t *testing.T) {
	var b Builder
	b.Start(3, 0)
	p := b.Begin(StageInfer, 0, 1)
	c := b.Begin(StageEncode, p, 2)
	tr := *b.Finish(3)
	if tr.Spans[c].Parent != uint8(p+1) {
		t.Fatalf("child parent = %d, want %d", tr.Spans[c].Parent, p+1)
	}
	if !tr.wireOK() {
		t.Fatal("nested trace should be wire-representable")
	}
}

func TestArenaKeepLatest(t *testing.T) {
	a := NewArena(4)
	if a.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", a.Cap())
	}
	for i := 1; i <= 6; i++ {
		tr := buildTestTrace(a.NextID())
		a.Record(&tr)
	}
	if a.Len() != 4 {
		t.Fatalf("Len = %d, want 4", a.Len())
	}
	if a.Evicted() != 2 {
		t.Fatalf("Evicted = %d, want 2", a.Evicted())
	}
	snap := a.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot len = %d, want 4", len(snap))
	}
	// Keep-LATEST: ids 3..6 survive, oldest first.
	for i, tr := range snap {
		if want := TraceID(i + 3); tr.ID != want {
			t.Fatalf("snap[%d].ID = %d, want %d", i, tr.ID, want)
		}
	}
	// Snapshot must not consume.
	if a.Len() != 4 || len(a.Snapshot()) != 4 {
		t.Fatal("Snapshot consumed the arena")
	}
	// Empty and nil traces are dropped.
	a.Record(&Trace{})
	a.Record(nil)
	if a.Len() != 4 {
		t.Fatal("empty trace should not be recorded")
	}
}

func TestArenaNextIDMonotonic(t *testing.T) {
	a := NewArena(2)
	last := TraceID(0)
	for i := 0; i < 100; i++ {
		id := a.NextID()
		if id <= last {
			t.Fatalf("NextID not monotonic: %d after %d", id, last)
		}
		last = id
	}
}

// TestSpanRecordAllocFree is the acceptance gate: building and
// recording a full decision trace must not allocate.
func TestSpanRecordAllocFree(t *testing.T) {
	a := NewArena(64)
	var b Builder
	allocs := testing.AllocsPerRun(1000, func() {
		b.Start(a.NextID(), 100)
		idx := b.Begin(StageInfer, 0, 110)
		b.SetValue(idx, 2)
		b.SetAux(idx, 1)
		b.End(idx, 120)
		o := b.Begin(StageOutcome, 0, 120)
		b.End(o, 900)
		a.Record(b.Finish(900))
	})
	if allocs != 0 {
		t.Fatalf("span record path allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestWireRoundTrip(t *testing.T) {
	traces := []Trace{buildTestTrace(1), buildTestTrace(2)}
	// One trace with a nested parent and a single-span trace.
	var b Builder
	b.Start(9, 5)
	p := b.Begin(StageParse, 0, 6)
	b.End(p, 7)
	traces = append(traces, *b.Finish(8))
	b.Start(10, 1)
	traces = append(traces, *b.Finish(2))

	buf := AppendTraces(nil, traces)
	got, err := ParseTraces(buf)
	if err != nil {
		t.Fatalf("ParseTraces: %v", err)
	}
	if len(got) != len(traces) {
		t.Fatalf("decoded %d traces, want %d", len(got), len(traces))
	}
	for i := range got {
		// Compare only the used spans: slots beyond N are scratch (the
		// wire format neither encodes nor promises them).
		if got[i].ID != traces[i].ID || got[i].N != traces[i].N {
			t.Fatalf("trace %d header mismatch: got %v/%d want %v/%d",
				i, got[i].ID, got[i].N, traces[i].ID, traces[i].N)
		}
		for j := 0; j < int(got[i].N); j++ {
			if got[i].Spans[j] != traces[i].Spans[j] {
				t.Fatalf("trace %d span %d mismatch:\n got %+v\nwant %+v",
					i, j, got[i].Spans[j], traces[i].Spans[j])
			}
		}
	}
	re := AppendTraces(nil, got)
	if string(re) != string(buf) {
		t.Fatal("re-encoding is not byte-identical")
	}
}

func TestWireSkipsUnencodable(t *testing.T) {
	bad := Trace{ID: 5, N: 2}
	bad.Spans[0] = Span{Stage: StageDecision}
	bad.Spans[1] = Span{Stage: NumStages + 1, Parent: 1} // invalid stage
	buf := AppendTraces(nil, []Trace{{}, bad, buildTestTrace(1)})
	got, err := ParseTraces(buf)
	if err != nil {
		t.Fatalf("ParseTraces: %v", err)
	}
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("want only the valid trace, got %d traces", len(got))
	}
}

func TestWireCapsAtMaxKeepingNewest(t *testing.T) {
	traces := make([]Trace, MaxWireTraces+10)
	for i := range traces {
		traces[i] = buildTestTrace(TraceID(i + 1))
	}
	got, err := ParseTraces(AppendTraces(nil, traces))
	if err != nil {
		t.Fatalf("ParseTraces: %v", err)
	}
	if len(got) != MaxWireTraces {
		t.Fatalf("decoded %d traces, want %d", len(got), MaxWireTraces)
	}
	if got[0].ID != 11 || got[len(got)-1].ID != TraceID(len(traces)) {
		t.Fatalf("cap should keep the NEWEST traces: first=%d last=%d", got[0].ID, got[len(got)-1].ID)
	}
}

func TestWireRejectsMalformed(t *testing.T) {
	good := AppendTraces(nil, []Trace{buildTestTrace(1)})
	cases := map[string][]byte{
		"empty":          {},
		"short header":   {0},
		"truncated":      good[:len(good)-1],
		"trailing":       append(append([]byte(nil), good...), 0),
		"huge count":     {0xFF, 0xFF},
		"zero spans":     {1, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0},
		"overlong spans": {1, 0, 1, 0, 0, 0, 0, 0, 0, 0, MaxTraceSpans + 1},
	}
	// Layout: u16 count, u64 id, u8 nspans, then span 0 at offset 11
	// (stage) and 12 (parent).
	fwd := append([]byte(nil), good...)
	fwd[12] = 9 // forward parent reference on span 0
	cases["forward parent"] = fwd
	stg := append([]byte(nil), good...)
	stg[11] = byte(NumStages) // unknown stage
	cases["bad stage"] = stg
	for name, b := range cases {
		if _, err := ParseTraces(b); err == nil {
			t.Errorf("%s: ParseTraces accepted malformed input", name)
		}
	}
}

func TestStageString(t *testing.T) {
	for s := Stage(0); s < NumStages; s++ {
		if s.String() == "" || s.String() == "stage?" {
			t.Fatalf("stage %d has no name", s)
		}
	}
	if Stage(200).String() != "stage?" {
		t.Fatal("out-of-range stage should render as stage?")
	}
}

func TestArenaReadNewer(t *testing.T) {
	a := NewArena(4)
	buf := make([]Trace, 2)
	// Empty arena: nothing to read, cursor stays at zero.
	if n, cur := a.ReadNewer(0, buf); n != 0 || cur != 0 {
		t.Fatalf("ReadNewer on empty arena = (%d, %d), want (0, 0)", n, cur)
	}
	for i := 1; i <= 3; i++ {
		tr := buildTestTrace(a.NextID())
		a.Record(&tr)
	}
	// Drain in chunks of len(buf): 2 then 1.
	n, cur := a.ReadNewer(0, buf)
	if n != 2 || cur != 2 || buf[0].ID != 1 || buf[1].ID != 2 {
		t.Fatalf("first read = (%d, %d) ids %d,%d; want (2, 2) ids 1,2", n, cur, buf[0].ID, buf[1].ID)
	}
	n, cur = a.ReadNewer(cur, buf)
	if n != 1 || cur != 3 || buf[0].ID != 3 {
		t.Fatalf("second read = (%d, %d) id %d; want (1, 3) id 3", n, cur, buf[0].ID)
	}
	if n, cur = a.ReadNewer(cur, buf); n != 0 || cur != 3 {
		t.Fatalf("drained read = (%d, %d), want (0, 3)", n, cur)
	}
	// Overflow past the reader: traces 4..9 overwrite 1..5; a reader at
	// cursor 3 lost traces 4,5 and resumes at the horizon (6..9 retained).
	for i := 4; i <= 9; i++ {
		tr := buildTestTrace(a.NextID())
		a.Record(&tr)
	}
	n, cur = a.ReadNewer(3, buf)
	if n != 2 || cur != 7 || buf[0].ID != 6 || buf[1].ID != 7 {
		t.Fatalf("post-overflow read = (%d, %d) ids %d,%d; want (2, 7) ids 6,7", n, cur, buf[0].ID, buf[1].ID)
	}
	// A cursor beyond the writer (stale arena swap) resyncs to now.
	if n, cur = a.ReadNewer(1000, buf); n != 0 || cur != 9 {
		t.Fatalf("future cursor read = (%d, %d), want (0, 9)", n, cur)
	}
	if got := a.Cursor(); got != 9 {
		t.Fatalf("Cursor = %d, want 9", got)
	}
	// Zero-length destination is a no-op.
	if n, cur = a.ReadNewer(2, nil); n != 0 || cur != 2 {
		t.Fatalf("nil dst read = (%d, %d), want (0, 2)", n, cur)
	}
}

// TestArenaReadNewerAllocFree pins the polling path the online-learning
// controller runs on: reading new traces into a caller-owned buffer must
// not allocate.
func TestArenaReadNewerAllocFree(t *testing.T) {
	a := NewArena(64)
	for i := 0; i < 32; i++ {
		tr := buildTestTrace(a.NextID())
		a.Record(&tr)
	}
	buf := make([]Trace, 8)
	cur := uint64(0)
	allocs := testing.AllocsPerRun(100, func() {
		tr := buildTestTrace(a.NextID())
		a.Record(&tr)
		for {
			n, c := a.ReadNewer(cur, buf)
			cur = c
			if n == 0 {
				break
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("ReadNewer allocates %.1f times per poll, want 0", allocs)
	}
}
