// Snapshot-time distribution math for Histogram. This file is
// deliberately NOT kernelspace: quantile estimation uses floating
// point and runs only when an operator (or the exposition layer) asks
// for a snapshot — never on the observation path.
package telemetry

// HistogramSnapshot is a point-in-time copy of a Histogram. Count is
// derived from the bucket copies, so a snapshot is always internally
// consistent (Count == Σ Buckets) even while observations continue.
type HistogramSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [NumBuckets]uint64
}

// Snapshot copies the histogram's state. Buckets are loaded atomically
// one at a time; observations racing with the snapshot land wholly in
// or wholly out of it.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Buckets[i] = c
		s.Count += c
	}
	return s
}

// Quantile estimates the q-quantile (q in [0, 1]) in nanoseconds by
// locating the bucket holding the target rank and interpolating
// linearly inside it. An empty snapshot returns 0. The estimate is
// always within the true value's bucket, i.e. off by at most a factor
// of two — the precision the log₂ shape buys with 64 words of state.
func (s *HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if s.Count == 1 {
		// One observation: Sum is that observation, exactly — better
		// than interpolating to the middle of its (2×-wide) bucket.
		return int64(s.Sum)
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Target rank in [1, Count].
	rank := uint64(q * float64(s.Count))
	if float64(rank) < q*float64(s.Count) {
		rank++ // ceil
	}
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, bc := range s.Buckets {
		if bc == 0 {
			continue
		}
		if cum+bc >= rank {
			lo, hi := BucketLower(i), BucketUpper(i)
			frac := float64(rank-cum) / float64(bc)
			return lo + int64(frac*float64(hi-lo))
		}
		cum += bc
	}
	return BucketUpper(NumBuckets - 1) // unreachable: rank <= Count
}

// Mean returns the arithmetic mean observation in nanoseconds, or 0 for
// an empty snapshot.
func (s *HistogramSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return int64(s.Sum / s.Count)
}

// Max returns the upper bound of the highest occupied bucket — the
// tightest upper estimate of the largest observation — or 0 for an
// empty snapshot.
func (s *HistogramSnapshot) Max() int64 {
	for i := NumBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			return BucketUpper(i)
		}
	}
	return 0
}
