package tsrec

import (
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TickOverheadBudgetNanos bounds one full capture tick at a realistic
// serving watch-list (5 counters + 4 histograms). A tick walks
// 4×64 buckets plus three quantile scans per histogram — measured ~2 µs
// — and fires once per interval (default 1 s), so even this generous
// ceiling keeps the recorder at well under 0.002% duty cycle. The gate
// exists because a regression here (an accidental allocation, a
// per-bucket lock) would turn the observer into the load.
const TickOverheadBudgetNanos = 20_000

func measure(iters, rounds int, f func(n int)) float64 {
	best := time.Duration(1<<63 - 1)
	for r := 0; r < rounds; r++ {
		start := time.Now()
		f(iters)
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / float64(iters)
}

func newServingShapedRecorder(tb testing.TB) (*Recorder, *telemetry.Histogram) {
	reg := telemetry.NewRegistry()
	r, err := New(reg, Config{
		Counters: []string{"c1", "c2", "c3", "c4", "c5"},
		Hists:    []string{"h1", "h2", "h3", "h4"},
	})
	if err != nil {
		tb.Fatal(err)
	}
	h := reg.Histogram("h1")
	for i := 0; i < 10_000; i++ {
		h.Observe(int64(i))
	}
	return r, h
}

// TestTimeSeriesOverheadBudget fails the build when one capture tick
// exceeds the budget or allocates — the tsrec half of the repo's
// overhead self-checks (telemetry 50 ns/event, dtrace 100 ns/trace).
func TestTimeSeriesOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race detector intercepts atomics; timings would measure the detector")
	}
	r, h := newServingShapedRecorder(t)
	now := int64(0)
	perTick := measure(2_000, 5, func(n int) {
		for i := 0; i < n; i++ {
			h.Observe(int64(i & 4095))
			now += 1000
			r.Tick(now)
		}
	})
	t.Logf("tick %.0f ns (budget %d ns)", perTick, TickOverheadBudgetNanos)
	if perTick > TickOverheadBudgetNanos {
		t.Fatalf("tsrec tick costs %.0f ns, over the %d ns budget", perTick, TickOverheadBudgetNanos)
	}
	allocs := testing.AllocsPerRun(200, func() {
		now += 1000
		r.Tick(now)
	})
	if allocs != 0 {
		t.Fatalf("tick allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkE10_TimeSeriesTick(b *testing.B) {
	r, h := newServingShapedRecorder(b)
	now := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 4095))
		now += 1000
		r.Tick(now)
	}
}
