// The recorder: resolves the watched series against a registry once at
// construction, then snapshots them on every Tick into a preallocated
// power-of-two ring of Point slots, overwriting the oldest under
// overflow (keep-latest, like dtrace.Arena). Tick is alloc-free and
// integer-only — the whole reason this layer exists is to record the
// serving path without perturbing it — and a mutex is acceptable here
// for the same reason it is in the trace arena: the tick fires once per
// interval, never per event.
package tsrec

import (
	"errors"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// MaxRingCapacity bounds ring sizing, mirroring dtrace.MaxArenaCapacity.
const MaxRingCapacity = 1 << 20

// Config parameterizes a Recorder.
type Config struct {
	// Interval is the capture period; 0 means 1s.
	Interval time.Duration
	// Capacity is how many points the ring retains (rounded up to a
	// power of two); 0 means 256.
	Capacity int
	// Counters and Hists name the registry series to watch, in the
	// order their columns appear in every Point. Names are resolved
	// with Registry.Counter/Registry.Histogram — creation-on-first-use,
	// so a series may be named before the subsystem that feeds it
	// registers (the readahead tuner attaching to a serving registry) —
	// and a name already registered as another kind panics, exactly as
	// direct registration would.
	Counters []string
	Hists    []string
}

// Recorder captures one registry's series on a fixed interval.
type Recorder struct {
	intervalNS   int64
	counterNames []string
	histNames    []string
	counters     []*telemetry.Counter
	hists        []*telemetry.Histogram

	mu           sync.Mutex
	prevCounters [MaxCounters]uint64
	prevBuckets  [MaxHists][telemetry.NumBuckets]uint64
	cur          [telemetry.NumBuckets]uint64 // tick scratch: loaded buckets
	delta        [telemetry.NumBuckets]uint64 // tick scratch: interval deltas
	slots        []Point
	mask         uint64
	w            uint64 // total points ever recorded

	stop chan struct{}
	done chan struct{}
}

// New builds a recorder over reg. The baseline for the first interval is
// the registry's state at construction time.
func New(reg *telemetry.Registry, cfg Config) (*Recorder, error) {
	if reg == nil {
		return nil, errors.New("tsrec: nil registry")
	}
	if len(cfg.Counters) > MaxCounters {
		return nil, errors.New("tsrec: too many counters")
	}
	if len(cfg.Hists) > MaxHists {
		return nil, errors.New("tsrec: too many histograms")
	}
	if cfg.Interval < 0 || cfg.Capacity < 0 || cfg.Capacity > MaxRingCapacity {
		return nil, errors.New("tsrec: config out of range")
	}
	if cfg.Interval == 0 {
		cfg.Interval = time.Second
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = 256
	}
	c := 1
	for c < cfg.Capacity {
		c <<= 1
	}
	r := &Recorder{
		intervalNS:   cfg.Interval.Nanoseconds(),
		counterNames: append([]string(nil), cfg.Counters...),
		histNames:    append([]string(nil), cfg.Hists...),
		counters:     make([]*telemetry.Counter, len(cfg.Counters)),
		hists:        make([]*telemetry.Histogram, len(cfg.Hists)),
		slots:        make([]Point, c),
		mask:         uint64(c - 1),
	}
	for i, name := range r.counterNames {
		r.counters[i] = reg.Counter(name)
		r.prevCounters[i] = r.counters[i].Load()
	}
	for i, name := range r.histNames {
		r.hists[i] = reg.Histogram(name)
		r.hists[i].LoadBuckets(&r.prevBuckets[i])
	}
	return r, nil
}

// Interval returns the configured capture period in nanoseconds.
func (r *Recorder) Interval() int64 { return r.intervalNS }

// CounterNames returns the watched counter names in column order. The
// slice is owned by the recorder and must not be modified.
func (r *Recorder) CounterNames() []string { return r.counterNames }

// HistNames returns the watched histogram names in column order. The
// slice is owned by the recorder and must not be modified.
func (r *Recorder) HistNames() []string { return r.histNames }

// Cursor returns the recorder's write cursor: the total number of points
// ever captured. A reader that remembers a cursor can later fetch only
// what arrived after it with ReadNewer.
func (r *Recorder) Cursor() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.w
}

// ReadNewer copies points captured after cursor `since` into dst, oldest
// first, and returns the count copied plus the cursor to pass next time.
// Points already overwritten are silently skipped (the returned cursor
// accounts for them) and at most len(dst) points are copied per call —
// loop until the count is zero to drain. The destination is caller-owned,
// so an incremental consumer (the black-box sampler) reads the ring
// without allocating. Same contract as dtrace.Arena.ReadNewer.
//
//kml:hotpath
func (r *Recorder) ReadNewer(since uint64, dst []Point) (int, uint64) {
	if len(dst) == 0 {
		return 0, since
	}
	r.mu.Lock()
	if since > r.w {
		// A cursor from a different recorder (or a reset); resync to
		// "now" rather than replaying the whole ring.
		w := r.w
		r.mu.Unlock()
		return 0, w
	}
	start := since
	if horizon := r.w - minU64(r.w, uint64(len(r.slots))); start < horizon {
		start = horizon
	}
	n := r.w - start
	if n > uint64(len(dst)) {
		n = uint64(len(dst))
	}
	for i := uint64(0); i < n; i++ {
		dst[i] = r.slots[(start+i)&r.mask]
	}
	r.mu.Unlock()
	return int(n), start + n
}

//kml:hotpath
func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// Tick records one point: every watched counter's delta and every
// watched histogram's interval count and p50/p95/p99 since the previous
// tick, stamped nowNanos. It allocates nothing and uses no floating
// point; the overhead gate in overhead_test.go pins both.
//
//kml:hotpath
func (r *Recorder) Tick(nowNanos int64) {
	r.mu.Lock()
	slot := &r.slots[r.w&r.mask]
	slot.TimeNanos = nowNanos
	for i := 0; i < len(r.counters); i++ {
		v := r.counters[i].Load()
		slot.Deltas[i] = v - r.prevCounters[i]
		r.prevCounters[i] = v
	}
	for i := 0; i < len(r.hists); i++ {
		r.hists[i].LoadBuckets(&r.cur)
		prev := &r.prevBuckets[i]
		var count uint64
		for b := 0; b < telemetry.NumBuckets; b++ {
			d := r.cur[b] - prev[b]
			r.delta[b] = d
			count += d
			prev[b] = r.cur[b]
		}
		slot.Counts[i] = count
		slot.P50[i] = quantilePM(&r.delta, count, 500)
		slot.P95[i] = quantilePM(&r.delta, count, 950)
		slot.P99[i] = quantilePM(&r.delta, count, 990)
	}
	r.w++
	r.mu.Unlock()
}

// Len returns the number of retained points.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.w > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(r.w)
}

// Cap returns the ring's retention capacity.
func (r *Recorder) Cap() int { return len(r.slots) }

// Series snapshots the retained points, oldest first, together with the
// series names and interval — the value MsgTimeSeries serializes.
func (r *Recorder) Series() Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.w
	if n > uint64(len(r.slots)) {
		n = uint64(len(r.slots))
	}
	s := Series{
		IntervalNanos: r.intervalNS,
		Counters:      append([]string(nil), r.counterNames...),
		Hists:         append([]string(nil), r.histNames...),
		Points:        make([]Point, n),
	}
	for i := uint64(0); i < n; i++ {
		s.Points[i] = r.slots[(r.w-n+i)&r.mask]
	}
	return s
}
