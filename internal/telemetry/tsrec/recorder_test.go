package tsrec

import (
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestRecorderCounterDeltas(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("reqs")
	c.Add(100) // pre-construction counts are the baseline, not a delta
	r, err := New(reg, Config{Counters: []string{"reqs"}, Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	c.Add(5)
	r.Tick(1000)
	c.Add(7)
	r.Tick(2000)
	r.Tick(3000) // idle interval

	s := r.Series()
	if len(s.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(s.Points))
	}
	if got := []uint64{s.Points[0].Deltas[0], s.Points[1].Deltas[0], s.Points[2].Deltas[0]}; got[0] != 5 || got[1] != 7 || got[2] != 0 {
		t.Fatalf("deltas = %v, want [5 7 0]", got)
	}
	for i, want := range []int64{1000, 2000, 3000} {
		if s.Points[i].TimeNanos != want {
			t.Fatalf("point %d time = %d, want %d", i, s.Points[i].TimeNanos, want)
		}
	}
	if len(s.Counters) != 1 || s.Counters[0] != "reqs" {
		t.Fatalf("counter names = %v", s.Counters)
	}
}

func TestRecorderHistQuantiles(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("lat")
	r, err := New(reg, Config{Hists: []string{"lat"}})
	if err != nil {
		t.Fatal(err)
	}
	// 100 observations in one log2 bucket [1024, 2047]: every interval
	// quantile must land in that bucket.
	for i := 0; i < 100; i++ {
		h.Observe(1500)
	}
	r.Tick(1)
	p := r.Series().Points[0]
	if p.Counts[0] != 100 {
		t.Fatalf("interval count = %d, want 100", p.Counts[0])
	}
	for _, q := range []int64{p.P50[0], p.P95[0], p.P99[0]} {
		if q < 1024 || q > 2047 {
			t.Fatalf("quantile %d outside the observations' bucket [1024,2047]", q)
		}
	}
	// The next interval saw nothing: counts and quantiles reset to zero
	// even though the histogram's cumulative state kept growing... which
	// it didn't here, but the deltas must be zero regardless.
	r.Tick(2)
	p = r.Series().Points[1]
	if p.Counts[0] != 0 || p.P99[0] != 0 {
		t.Fatalf("idle interval: count=%d p99=%d, want zeros", p.Counts[0], p.P99[0])
	}
	// A third interval with faster observations must reflect ONLY the
	// new interval, not the cumulative distribution.
	for i := 0; i < 50; i++ {
		h.Observe(10)
	}
	r.Tick(3)
	p = r.Series().Points[2]
	if p.Counts[0] != 50 {
		t.Fatalf("interval count = %d, want 50", p.Counts[0])
	}
	if p.P99[0] > 15 {
		t.Fatalf("interval p99 = %d, want <= 15 (bucket of 10)", p.P99[0])
	}
}

func TestRecorderKeepLatest(t *testing.T) {
	reg := telemetry.NewRegistry()
	r, err := New(reg, Config{Counters: []string{"c"}, Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		r.Tick(int64(i))
	}
	if r.Len() != 4 || r.Cap() != 4 {
		t.Fatalf("len=%d cap=%d, want 4/4", r.Len(), r.Cap())
	}
	s := r.Series()
	for i, want := range []int64{7, 8, 9, 10} {
		if s.Points[i].TimeNanos != want {
			t.Fatalf("retained times = %v..., want newest 7..10", s.Points[i].TimeNanos)
		}
	}
}

func TestRecorderConfigErrors(t *testing.T) {
	reg := telemetry.NewRegistry()
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil registry accepted")
	}
	if _, err := New(reg, Config{Counters: make([]string, MaxCounters+1)}); err == nil {
		t.Fatal("too many counters accepted")
	}
	if _, err := New(reg, Config{Hists: make([]string, MaxHists+1)}); err == nil {
		t.Fatal("too many histograms accepted")
	}
	if _, err := New(reg, Config{Capacity: MaxRingCapacity + 1}); err == nil {
		t.Fatal("excessive capacity accepted")
	}
}

func TestRecorderStartStop(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("c")
	r, err := New(reg, Config{Interval: time.Millisecond, Counters: []string{"c"}})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	r.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for r.Len() < 2 {
		c.Inc()
		if time.Now().After(deadline) {
			t.Fatal("recorder never ticked")
		}
		time.Sleep(time.Millisecond)
	}
	r.Stop()
	r.Stop() // idempotent
	s := r.Series()
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].TimeNanos <= s.Points[i-1].TimeNanos {
			t.Fatalf("timestamps not monotonic: %d then %d", s.Points[i-1].TimeNanos, s.Points[i].TimeNanos)
		}
	}
}

func TestQuantilePMBounds(t *testing.T) {
	var b [telemetry.NumBuckets]uint64
	if got := quantilePM(&b, 0, 990); got != 0 {
		t.Fatalf("empty interval quantile = %d, want 0", got)
	}
	// Overflow-hostile shape: a huge count in the top bucket must not
	// trap in the 128-bit rank division and must return inside it.
	b[telemetry.NumBuckets-1] = 1 << 62
	got := quantilePM(&b, 1<<62, 990)
	if got < telemetry.BucketLower(telemetry.NumBuckets-1) {
		t.Fatalf("quantile %d below the only occupied bucket", got)
	}
	// pm > 1000 clamps to the maximum rather than overranking.
	if got2 := quantilePM(&b, 1<<62, 5000); got2 != got {
		if got2 < telemetry.BucketLower(telemetry.NumBuckets-1) {
			t.Fatalf("clamped quantile %d below bucket", got2)
		}
	}
}
