// Package tsrec captures metric time series: a fixed-interval recorder
// that snapshots counter deltas and histogram quantiles from a
// telemetry.Registry into a keep-latest ring, so every benchmark and
// smoke run gets a throughput/p50/p95/p99-over-time record instead of a
// single point-in-time scrape. The collection tick obeys the same
// kernel-portability constraints as the primitives it reads: integer
// only, allocation-free, with quantile ranks computed in fixed-width
// arithmetic (math/bits 128-bit intermediates, never floats).
//
// This file holds the kernelspace-clean primitives — the Point slot
// type and the integer quantile over bucket deltas. The recorder, the
// ticker goroutine, and the wire codec live in the sibling files.
//
//kml:kernelspace
package tsrec

import (
	"math/bits"

	"repro/internal/telemetry"
)

// Capacity limits of one recorder. The fixed Point arrays keep the ring
// slot a flat value (one copy per tick, no pointers); a recorder
// watching more series than this is mis-wired, not under-provisioned.
const (
	// MaxCounters bounds the counters one recorder watches.
	MaxCounters = 16
	// MaxHists bounds the histograms one recorder watches.
	MaxHists = 8
)

// Point is one tick's observation: counter deltas and per-histogram
// interval count + quantiles since the previous tick. It is a flat
// fixed-size value — the ring slot type — with entries beyond the
// recorder's configured series left zero.
type Point struct {
	// TimeNanos is the tick's wall-clock UnixNano stamp, taken by the
	// caller (the recorder never reads the clock itself).
	TimeNanos int64
	// Deltas[i] is counter i's increase over the interval.
	Deltas [MaxCounters]uint64
	// Counts[i] is histogram i's observations during the interval.
	Counts [MaxHists]uint64
	// P50/P95/P99 are histogram i's interval quantiles in nanoseconds,
	// estimated from the bucket deltas (0 for an empty interval).
	P50 [MaxHists]int64
	P95 [MaxHists]int64
	P99 [MaxHists]int64
}

// quantilePM estimates the pm-per-mille quantile (e.g. 500, 950, 990)
// over one interval's bucket deltas, integer-only: the rank is
// ceil(count·pm/1000) and the in-bucket interpolation is a 128-bit
// mul/div, so the tick path never touches floating point. Mirrors the
// userspace HistogramSnapshot.Quantile within its bucket precision.
//
//kml:hotpath
func quantilePM(b *[telemetry.NumBuckets]uint64, count uint64, pm uint64) int64 {
	if count == 0 {
		return 0
	}
	if pm > 1000 {
		pm = 1000
	}
	// rank = ceil(count*pm/1000) in [1, count]. The 128-bit product
	// keeps huge interval counts exact; pm <= 1000 guarantees the
	// quotient fits (hi < 1000), so Div64 cannot trap.
	hi, lo := bits.Mul64(count, pm)
	rank, rem := bits.Div64(hi, lo, 1000)
	if rem != 0 {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > count {
		rank = count
	}
	var cum uint64
	for i := 0; i < telemetry.NumBuckets; i++ {
		bc := b[i]
		if bc == 0 {
			continue
		}
		if cum+bc >= rank {
			loB := telemetry.BucketLower(i)
			hiB := telemetry.BucketUpper(i)
			// loB + (hiB-loB)*(rank-cum)/bc, again via the 128-bit
			// intermediate: the result never exceeds the bucket span,
			// so the quotient's high word is always below bc.
			phi, plo := bits.Mul64(uint64(hiB-loB), rank-cum)
			frac, _ := bits.Div64(phi, plo, bc)
			return loB + int64(frac)
		}
		cum += bc
	}
	return telemetry.BucketUpper(telemetry.NumBuckets - 1) // unreachable: rank <= count
}
