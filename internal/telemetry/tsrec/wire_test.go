package tsrec

import (
	"bytes"
	"testing"

	"repro/internal/telemetry"
)

func sampleSeries() Series {
	s := Series{
		IntervalNanos: 1_000_000_000,
		Counters:      []string{"mserve_rows", "mserve_errors"},
		Hists:         []string{"mserve_infer_ns"},
		Points:        make([]Point, 3),
	}
	for i := range s.Points {
		p := &s.Points[i]
		p.TimeNanos = int64(1000 * (i + 1))
		p.Deltas[0] = uint64(10 * (i + 1))
		p.Deltas[1] = uint64(i)
		p.Counts[0] = uint64(100 + i)
		p.P50[0] = 1500
		p.P95[0] = 3000
		p.P99[0] = 6000
	}
	return s
}

func TestSeriesRoundTrip(t *testing.T) {
	in := sampleSeries()
	b := AppendSeries(nil, in)
	out, err := ParseSeries(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.IntervalNanos != in.IntervalNanos {
		t.Fatalf("interval %d != %d", out.IntervalNanos, in.IntervalNanos)
	}
	if len(out.Counters) != 2 || out.Counters[0] != "mserve_rows" || out.Counters[1] != "mserve_errors" {
		t.Fatalf("counters = %v", out.Counters)
	}
	if len(out.Hists) != 1 || out.Hists[0] != "mserve_infer_ns" {
		t.Fatalf("hists = %v", out.Hists)
	}
	if len(out.Points) != 3 {
		t.Fatalf("points = %d", len(out.Points))
	}
	for i := range out.Points {
		if out.Points[i] != in.Points[i] {
			t.Fatalf("point %d: %+v != %+v", i, out.Points[i], in.Points[i])
		}
	}
	if again := AppendSeries(nil, out); !bytes.Equal(again, b) {
		t.Fatal("re-encoding is not canonical")
	}
}

func TestSeriesRoundTripEmpty(t *testing.T) {
	b := AppendSeries(nil, Series{})
	out, err := ParseSeries(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Counters) != 0 || len(out.Hists) != 0 || len(out.Points) != 0 {
		t.Fatalf("empty series decoded as %+v", out)
	}
	if again := AppendSeries(nil, out); !bytes.Equal(again, b) {
		t.Fatal("empty re-encoding differs")
	}
}

func TestSeriesClamping(t *testing.T) {
	s := Series{
		Counters: make([]string, MaxCounters+5),
		Hists:    make([]string, MaxHists+5),
		Points:   make([]Point, MaxWirePoints+10),
	}
	for i := range s.Counters {
		s.Counters[i] = "c"
	}
	for i := range s.Hists {
		s.Hists[i] = string(bytes.Repeat([]byte{'h'}, MaxSeriesName+50))
	}
	for i := range s.Points {
		s.Points[i].TimeNanos = int64(i)
	}
	s.Counters[0] = "" // empty name encodes as "?"
	out, err := ParseSeries(AppendSeries(nil, s))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Counters) != MaxCounters || len(out.Hists) != MaxHists || len(out.Points) != MaxWirePoints {
		t.Fatalf("clamped to %d/%d/%d", len(out.Counters), len(out.Hists), len(out.Points))
	}
	if out.Counters[0] != "?" {
		t.Fatalf("empty name encoded as %q", out.Counters[0])
	}
	if len(out.Hists[0]) != MaxSeriesName {
		t.Fatalf("name length %d, want truncation to %d", len(out.Hists[0]), MaxSeriesName)
	}
	// Newest points are the ones kept.
	if out.Points[0].TimeNanos != 10 || out.Points[MaxWirePoints-1].TimeNanos != int64(MaxWirePoints+9) {
		t.Fatalf("kept range [%d, %d], want the newest", out.Points[0].TimeNanos, out.Points[MaxWirePoints-1].TimeNanos)
	}
}

func TestParseSeriesHostile(t *testing.T) {
	good := AppendSeries(nil, sampleSeries())
	cases := map[string][]byte{
		"empty":            {},
		"short header":     good[:8],
		"truncated names":  good[:11],
		"truncated points": good[:len(good)-1],
		"trailing byte":    append(append([]byte(nil), good...), 0),
		"zero name len": func() []byte {
			b := append([]byte(nil), good...)
			b[9] = 0 // first counter's name length
			return b
		}(),
		"excess counters": func() []byte {
			b := append([]byte(nil), good...)
			b[8] = MaxCounters + 1
			return b
		}(),
		"lying npoints": func() []byte {
			b := append([]byte(nil), good...)
			// npoints lives right after the two names + one hist name.
			off := 8 + 1 + 1 + len("mserve_rows") + 1 + len("mserve_errors") + 1 + 1 + len("mserve_infer_ns")
			b[off] = 200
			return b
		}(),
	}
	for name, b := range cases {
		if _, err := ParseSeries(b); err == nil {
			t.Fatalf("%s: hostile input accepted", name)
		}
	}
}

func FuzzTimeSeriesDecode(f *testing.F) {
	f.Add(AppendSeries(nil, sampleSeries()))
	f.Add(AppendSeries(nil, Series{}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := ParseSeries(b)
		if err != nil {
			return
		}
		if len(s.Counters) > MaxCounters || len(s.Hists) > MaxHists || len(s.Points) > MaxWirePoints {
			t.Fatalf("decoded series exceeds wire bounds: %d/%d/%d", len(s.Counters), len(s.Hists), len(s.Points))
		}
		if again := AppendSeries(nil, s); !bytes.Equal(again, b) {
			t.Fatalf("Append(Parse(b)) != b:\n in: %x\nout: %x", b, again)
		}
	})
}

// TestTickAllocFree pins the collection path at zero allocations — the
// recorder exists to watch the serving path without becoming a load on
// it, so a tick that allocates is a regression even if it is fast.
func TestTickAllocFree(t *testing.T) {
	reg := telemetry.NewRegistry()
	r, err := New(reg, Config{
		Counters: []string{"a", "b", "c"},
		Hists:    []string{"h1", "h2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := reg.Histogram("h1")
	now := int64(0)
	allocs := testing.AllocsPerRun(100, func() {
		h.Observe(1500)
		now += 1000
		r.Tick(now)
	})
	if allocs != 0 {
		t.Fatalf("Tick allocates %.1f per op, want 0", allocs)
	}
}
