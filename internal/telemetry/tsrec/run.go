// The ticker goroutine: userspace lifecycle around the alloc-free Tick.
// Start/Stop are idempotent-enough for one owner (the serving process);
// the recorder itself stays usable after Stop — an operator can keep
// reading Series from a drained server.
package tsrec

import "time"

// Start launches the capture goroutine, ticking every configured
// interval until Stop. Calling Start on a running recorder is a no-op.
func (r *Recorder) Start() {
	if r.stop != nil {
		return
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(time.Duration(r.intervalNS))
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-t.C:
				r.Tick(now.UnixNano())
			}
		}
	}(r.stop, r.done)
}

// Stop halts the capture goroutine and waits for it to exit. Calling
// Stop on a stopped (or never-started) recorder is a no-op.
func (r *Recorder) Stop() {
	if r.stop == nil {
		return
	}
	close(r.stop)
	<-r.done
	r.stop, r.done = nil, nil
}
