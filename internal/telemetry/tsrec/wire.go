// Canonical wire format for a captured series, the payload behind
// mserve's MsgTimeSeries. Same discipline as the dtrace and metrics
// codecs: fixed little-endian layout, every bound checked before any
// allocation is sized by it, and exactly one encoding per value —
// FuzzTimeSeriesDecode pins Append(Parse(b)) == b.
//
// Layout:
//
//	u64  interval_ns
//	u8   ncounters                          (<= MaxCounters)
//	ncounters × { u8 len | name }           (len 1..MaxSeriesName)
//	u8   nhists                             (<= MaxHists)
//	nhists × { u8 len | name }
//	u16  npoints                            (<= MaxWirePoints)
//	npoints × {
//	    i64 time_ns
//	    ncounters × u64 delta
//	    nhists × { u64 count | i64 p50 | i64 p95 | i64 p99 }
//	}
package tsrec

import (
	"encoding/binary"
	"errors"
)

// Wire bounds. A maximal series (16 counters + 8 histograms × 2048
// points) is ~800 KB, inside mserve's 1 MiB frame ceiling.
const (
	// MaxSeriesName bounds one series name on the wire.
	MaxSeriesName = 128
	// MaxWirePoints bounds the points one message carries; Append keeps
	// the newest when the ring holds more.
	MaxWirePoints = 2048
)

// ErrBadSeries reports bytes that do not decode as a canonical series.
var ErrBadSeries = errors.New("tsrec: bad series encoding")

// Series is a captured time series: the watched series names, the
// capture interval, and the retained points oldest first. Point columns
// beyond len(Counters)/len(Hists) are zero.
type Series struct {
	IntervalNanos int64
	Counters      []string
	Hists         []string
	Points        []Point
}

// AppendSeries appends the canonical encoding of s. Series beyond the
// wire bounds are clamped: excess counters/histogram columns are
// dropped, names are truncated to MaxSeriesName (empty names encode as
// "?"), and only the newest MaxWirePoints points are kept — the same
// keep-latest bias as the ring itself.
func AppendSeries(dst []byte, s Series) []byte {
	counters, hists := s.Counters, s.Hists
	if len(counters) > MaxCounters {
		counters = counters[:MaxCounters]
	}
	if len(hists) > MaxHists {
		hists = hists[:MaxHists]
	}
	points := s.Points
	if len(points) > MaxWirePoints {
		points = points[len(points)-MaxWirePoints:]
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.IntervalNanos))
	dst = append(dst, byte(len(counters)))
	for _, name := range counters {
		dst = appendName(dst, name)
	}
	dst = append(dst, byte(len(hists)))
	for _, name := range hists {
		dst = appendName(dst, name)
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(points)))
	for i := range points {
		p := &points[i]
		dst = binary.LittleEndian.AppendUint64(dst, uint64(p.TimeNanos))
		for c := 0; c < len(counters); c++ {
			dst = binary.LittleEndian.AppendUint64(dst, p.Deltas[c])
		}
		for h := 0; h < len(hists); h++ {
			dst = binary.LittleEndian.AppendUint64(dst, p.Counts[h])
			dst = binary.LittleEndian.AppendUint64(dst, uint64(p.P50[h]))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(p.P95[h]))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(p.P99[h]))
		}
	}
	return dst
}

func appendName(dst []byte, name string) []byte {
	if name == "" {
		name = "?"
	}
	if len(name) > MaxSeriesName {
		name = name[:MaxSeriesName]
	}
	dst = append(dst, byte(len(name)))
	return append(dst, name...)
}

// ParseSeries decodes a canonical series payload. Hostile input —
// truncated buffers, lying counts, oversized names, trailing bytes —
// returns ErrBadSeries, never a panic or over-read.
func ParseSeries(p []byte) (Series, error) {
	var s Series
	if len(p) < 12 {
		return s, ErrBadSeries
	}
	s.IntervalNanos = int64(binary.LittleEndian.Uint64(p))
	off := 8
	var err error
	s.Counters, off, err = parseNames(p, off, MaxCounters)
	if err != nil {
		return Series{}, err
	}
	s.Hists, off, err = parseNames(p, off, MaxHists)
	if err != nil {
		return Series{}, err
	}
	if len(p)-off < 2 {
		return Series{}, ErrBadSeries
	}
	npoints := int(binary.LittleEndian.Uint16(p[off:]))
	off += 2
	if npoints > MaxWirePoints {
		return Series{}, ErrBadSeries
	}
	ptBytes := 8 * (1 + len(s.Counters) + 4*len(s.Hists))
	if len(p)-off != npoints*ptBytes {
		return Series{}, ErrBadSeries
	}
	s.Points = make([]Point, npoints)
	for i := range s.Points {
		pt := &s.Points[i]
		pt.TimeNanos = int64(binary.LittleEndian.Uint64(p[off:]))
		off += 8
		for c := 0; c < len(s.Counters); c++ {
			pt.Deltas[c] = binary.LittleEndian.Uint64(p[off:])
			off += 8
		}
		for h := 0; h < len(s.Hists); h++ {
			pt.Counts[h] = binary.LittleEndian.Uint64(p[off:])
			pt.P50[h] = int64(binary.LittleEndian.Uint64(p[off+8:]))
			pt.P95[h] = int64(binary.LittleEndian.Uint64(p[off+16:]))
			pt.P99[h] = int64(binary.LittleEndian.Uint64(p[off+24:]))
			off += 32
		}
	}
	return s, nil
}

func parseNames(p []byte, off, max int) ([]string, int, error) {
	if off >= len(p) {
		return nil, 0, ErrBadSeries
	}
	n := int(p[off])
	off++
	if n > max {
		return nil, 0, ErrBadSeries
	}
	names := make([]string, n)
	for i := 0; i < n; i++ {
		if off >= len(p) {
			return nil, 0, ErrBadSeries
		}
		l := int(p[off])
		off++
		if l < 1 || l > MaxSeriesName || len(p)-off < l {
			return nil, 0, ErrBadSeries
		}
		names[i] = string(p[off : off+l])
		off += l
	}
	return names, off, nil
}
