//go:build race

package tsrec

// raceEnabled reports whether the race detector is active. The overhead
// self-check skips under it: the race runtime intercepts every atomic
// load in the bucket walk, so the timing assertion would measure the
// detector, not the recorder.
const raceEnabled = true
