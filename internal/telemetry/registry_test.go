package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryCreateOrGet(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("reqs")
	c1.Add(3)
	if c2 := r.Counter("reqs"); c2 != c1 {
		t.Fatal("second Counter(\"reqs\") returned a different counter")
	}
	if r.Counter("reqs").Load() != 3 {
		t.Fatal("counter state lost across lookups")
	}
	g := r.Gauge("depth")
	g.Set(-7)
	if r.Gauge("depth").Load() != -7 {
		t.Fatal("gauge state lost across lookups")
	}
	h := r.Histogram("lat")
	h.Observe(42)
	if r.Histogram("lat").Count() != 1 {
		t.Fatal("histogram state lost across lookups")
	}
}

func TestRegistryKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	for name, f := range map[string]func(){
		"gauge on counter":     func() { r.Gauge("x") },
		"histogram on counter": func() { r.Histogram("x") },
		"func on counter":      func() { r.Func("x", func() int64 { return 0 }) },
		"empty name":           func() { r.Counter("") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRegistrySnapshotSortedAndTyped(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_count").Add(2)
	r.Gauge("a_gauge").Set(-1)
	r.Histogram("c_hist").Observe(100)
	r.Func("d_func", func() int64 { return 99 })

	samples := r.Snapshot()
	var names []string
	for _, s := range samples {
		names = append(names, s.Name)
	}
	want := []string{"a_gauge", "b_count", "c_hist", "d_func"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("snapshot order %v, want %v", names, want)
	}
	if samples[0].Kind != KindGauge || samples[0].Value != -1 {
		t.Errorf("gauge sample: %+v", samples[0])
	}
	if samples[1].Kind != KindCounter || samples[1].Value != 2 {
		t.Errorf("counter sample: %+v", samples[1])
	}
	if samples[2].Kind != KindHistogram || samples[2].Hist.Count != 1 {
		t.Errorf("histogram sample: %+v", samples[2])
	}
	if samples[3].Kind != KindFunc || samples[3].Value != 99 {
		t.Errorf("func sample: %+v", samples[3])
	}
}

func TestWriteTextExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("events_total").Add(5)
	h := r.Histogram("infer_ns")
	for i := 0; i < 10; i++ {
		h.Observe(100)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"events_total 5\n",
		"infer_ns_count 10\n",
		"infer_ns_sum 1000\n",
		"infer_ns_p50 ",
		"infer_ns_p95 ",
		"infer_ns_p99 ",
		"infer_ns_bucket_le_127 10\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestConcurrentSnapshot hammers every metric kind from writer
// goroutines while snapshotting concurrently; run under -race this pins
// the lock-free primitives' safety and the registry's own locking.
func TestConcurrentSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	var depth Gauge
	r.Func("f", depth.Load)

	const writers = 4
	const perWriter = 10_000
	stop := make(chan struct{})
	var producers, readers sync.WaitGroup
	for w := 0; w < writers; w++ {
		producers.Add(1)
		go func(seed int64) {
			defer producers.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(seed + int64(i))
				depth.Set(int64(i))
			}
		}(int64(w))
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, s := range r.Snapshot() {
				if s.Kind == KindHistogram {
					_ = s.Hist.Quantile(0.99)
				}
			}
			var sb strings.Builder
			_ = r.WriteText(&sb)
		}
	}()
	producers.Wait()
	close(stop)
	readers.Wait()

	if got := c.Load(); got != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", got, writers*perWriter)
	}
}
