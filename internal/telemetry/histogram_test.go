package telemetry

import (
	"math"
	"testing"
)

// TestBucketBoundaries pins the log₂ bucket shape on exact edges: 0 is
// alone in bucket 0, each power of two opens a new bucket, and 2^i - 1
// closes bucket i.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{1025, 11},
		{1<<62 - 1, 62},
		{1 << 62, 63},
		{math.MaxInt64, 63}, // overflow bucket
	}
	for _, c := range cases {
		var h Histogram
		h.Observe(c.v)
		s := h.Snapshot()
		if s.Count != 1 {
			t.Fatalf("Observe(%d): count %d", c.v, s.Count)
		}
		for i, bc := range s.Buckets {
			want := uint64(0)
			if i == c.bucket {
				want = 1
			}
			if bc != want {
				t.Errorf("Observe(%d): bucket[%d] = %d, want %d", c.v, i, bc, want)
			}
		}
		if lo, hi := BucketLower(c.bucket), BucketUpper(c.bucket); c.v < lo || c.v > hi {
			t.Errorf("value %d outside its bucket bounds [%d, %d]", c.v, lo, hi)
		}
	}
}

func TestBucketBoundsAreContiguous(t *testing.T) {
	for i := 1; i < NumBuckets; i++ {
		if BucketLower(i) != BucketUpper(i-1)+1 {
			t.Errorf("gap between bucket %d upper %d and bucket %d lower %d",
				i-1, BucketUpper(i-1), i, BucketLower(i))
		}
	}
	if BucketUpper(NumBuckets-1) != math.MaxInt64 {
		t.Errorf("overflow bucket upper = %d, want MaxInt64", BucketUpper(NumBuckets-1))
	}
}

func TestNegativeObservationsClampToZero(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	s := h.Snapshot()
	if s.Buckets[0] != 1 || s.Sum != 0 {
		t.Fatalf("Observe(-5): buckets[0]=%d sum=%d, want 1, 0", s.Buckets[0], s.Sum)
	}
}

func TestEmptySnapshot(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 {
		t.Fatalf("empty snapshot: %+v", s)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	if s.Mean() != 0 || s.Max() != 0 {
		t.Errorf("empty Mean/Max = %d/%d, want 0/0", s.Mean(), s.Max())
	}
}

// TestQuantileSingleBucket: with every observation in one bucket, the
// interpolated estimate must stay inside that bucket's bounds and reach
// the upper bound at q=1.
func TestQuantileSingleBucket(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(100) // bucket 7: [64, 127]
	}
	s := h.Snapshot()
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99} {
		got := s.Quantile(q)
		if got < 64 || got > 127 {
			t.Errorf("Quantile(%v) = %d, outside bucket [64, 127]", q, got)
		}
	}
	if got := s.Quantile(1); got != 127 {
		t.Errorf("Quantile(1) = %d, want bucket upper 127", got)
	}
	if got := s.Max(); got != 127 {
		t.Errorf("Max() = %d, want 127", got)
	}
	if got := s.Mean(); got != 100 {
		t.Errorf("Mean() = %d, want 100", got)
	}
}

// TestQuantileSplitDistribution: 90 observations at ~1µs and 10 at
// ~1ms; p50 must land in the fast bucket and p99 in the slow one.
func TestQuantileSplitDistribution(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(1000) // bucket 10: [512, 1023]
	}
	for i := 0; i < 10; i++ {
		h.Observe(1_000_000) // bucket 20: [524288, 1048575]
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got < 512 || got > 1023 {
		t.Errorf("p50 = %d, want within [512, 1023]", got)
	}
	if got := s.Quantile(0.99); got < 524288 || got > 1048575 {
		t.Errorf("p99 = %d, want within [524288, 1048575]", got)
	}
	// Quantiles are monotone in q.
	prev := int64(-1)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		got := s.Quantile(q)
		if got < prev {
			t.Errorf("Quantile(%v) = %d < previous %d", q, got, prev)
		}
		prev = got
	}
}

// TestQuantileSingleObservation: one observation must come back exactly
// — Sum IS the observation, so no bucket interpolation error is excused.
func TestQuantileSingleObservation(t *testing.T) {
	for _, v := range []int64{0, 1, 100, 999, 1 << 40} {
		var h Histogram
		h.Observe(v)
		s := h.Snapshot()
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got := s.Quantile(q); got != v {
				t.Errorf("single observation %d: Quantile(%v) = %d", v, q, got)
			}
		}
	}
}

func TestQuantileClampsRange(t *testing.T) {
	var h Histogram
	h.Observe(10)
	s := h.Snapshot()
	if s.Quantile(-1) != s.Quantile(0) {
		t.Error("Quantile(-1) != Quantile(0)")
	}
	if s.Quantile(2) != s.Quantile(1) {
		t.Error("Quantile(2) != Quantile(1)")
	}
}

func TestSnapshotCountIsDerivedFromBuckets(t *testing.T) {
	var h Histogram
	for i := int64(0); i < 100; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	var sum uint64
	for _, bc := range s.Buckets {
		sum += bc
	}
	if s.Count != sum || s.Count != 100 {
		t.Fatalf("Count = %d, Σbuckets = %d, want 100", s.Count, sum)
	}
	if h.Count() != 100 {
		t.Fatalf("Histogram.Count() = %d, want 100", h.Count())
	}
}
