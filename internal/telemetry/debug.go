// The optional HTTP debug surface: a stdlib-only mux serving the
// registry's text exposition at /metrics plus the standard Go
// introspection endpoints (expvar at /debug/vars, pprof under
// /debug/pprof/). kml-served mounts it behind -debug-addr; nothing in
// the serving or collection path depends on it.
package telemetry

import (
	"expvar"
	"io"
	"net/http"
	"net/http/pprof"
)

// DebugEndpoint is one extra plain-text page on the debug mux — how an
// embedding process (kml-served) mounts surfaces telemetry itself knows
// nothing about, like the serving trace arena at /traces or the
// online-learning status at /learn. Render writes the page body; an
// error becomes a 500 with the error text.
type DebugEndpoint struct {
	// Path is the mux pattern, e.g. "/traces".
	Path string
	// Render writes the page as plain text.
	Render func(w io.Writer) error
}

// DebugMux returns an http.ServeMux exposing reg at /metrics alongside
// expvar, pprof, and any extra plain-text endpoints. The caller owns
// the listener and its lifecycle; a debug listener should bind
// loopback — it is an operator surface, not a public one.
func DebugMux(reg *Registry, extras ...DebugEndpoint) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = reg.WriteText(w)
	})
	for _, ep := range extras {
		render := ep.Render
		mux.HandleFunc(ep.Path, func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if err := render(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
