// The optional HTTP debug surface: a stdlib-only mux serving the
// registry's text exposition at /metrics plus the standard Go
// introspection endpoints (expvar at /debug/vars, pprof under
// /debug/pprof/). kml-served mounts it behind -debug-addr; nothing in
// the serving or collection path depends on it.
package telemetry

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// DebugMux returns an http.ServeMux exposing reg at /metrics alongside
// expvar and pprof. The caller owns the listener and its lifecycle; a
// debug listener should bind loopback — it is an operator surface, not
// a public one.
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = reg.WriteText(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
