// Registry: named registration and consistent snapshots of the hot-path
// primitives, plus the plain-text exposition format served at /metrics
// and rendered by `kml-served -status`. Userspace only — registration
// happens at construction time and snapshots on operator request, never
// on a hot path.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Kind discriminates registry entries.
type Kind uint8

// Registry entry kinds.
const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is an instantaneous signed level.
	KindGauge
	// KindHistogram is a log₂-bucket latency distribution.
	KindHistogram
	// KindFunc is a gauge read through a callback at snapshot time,
	// for values a subsystem already tracks (ring occupancy, arena
	// bytes) without double-counting them.
	KindFunc
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	case KindFunc:
		return "func"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

type entry struct {
	kind    Kind
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() int64
}

// Registry names metrics and snapshots them consistently. All methods
// are safe for concurrent use; the hot-path primitives a registry hands
// out are themselves lock-free, so registration cost is never paid on
// the paths being measured.
type Registry struct {
	mu      sync.Mutex
	entries map[string]entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]entry)}
}

// Counter returns the counter registered under name, creating it on
// first use. It panics if name is empty or already holds another kind —
// a metric-name clash is a programming error, like a duplicate
// tracepoint.
func (r *Registry) Counter(name string) *Counter {
	e := r.get(name, KindCounter, func() entry { return entry{kind: KindCounter, counter: &Counter{}} })
	return e.counter
}

// Gauge returns the gauge registered under name, creating it on first
// use. Same clash rules as Counter.
func (r *Registry) Gauge(name string) *Gauge {
	e := r.get(name, KindGauge, func() entry { return entry{kind: KindGauge, gauge: &Gauge{}} })
	return e.gauge
}

// Histogram returns the histogram registered under name, creating it on
// first use. Same clash rules as Counter.
func (r *Registry) Histogram(name string) *Histogram {
	e := r.get(name, KindHistogram, func() entry { return entry{kind: KindHistogram, hist: &Histogram{}} })
	return e.hist
}

// Func registers a snapshot-time gauge callback under name, replacing
// any previous callback with that name. fn must be safe to call from
// any goroutine; it runs only during Snapshot.
func (r *Registry) Func(name string, fn func() int64) {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	if fn == nil {
		panic("telemetry: nil func metric " + name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok && e.kind != KindFunc {
		panic(fmt.Sprintf("telemetry: metric %q already registered as %s", name, e.kind))
	}
	r.entries[name] = entry{kind: KindFunc, fn: fn}
}

func (r *Registry) get(name string, kind Kind, mk func() entry) entry {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q already registered as %s, requested %s", name, e.kind, kind))
		}
		return e
	}
	e := mk()
	r.entries[name] = e
	return e
}

// Sample is one metric's state in a registry snapshot.
type Sample struct {
	Name  string
	Kind  Kind
	Value int64             // counter (non-negative), gauge, and func values
	Hist  HistogramSnapshot // histograms only
}

// Snapshot reads every registered metric and returns the samples sorted
// by name, so exposition output is stable across scrapes. Each metric is
// read atomically; the set as a whole is a consistent enough view for
// operations (individual metrics never tear).
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	entries := make([]entry, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		entries = append(entries, r.entries[n])
	}
	r.mu.Unlock()

	out := make([]Sample, len(names))
	for i, n := range names {
		e := entries[i]
		s := Sample{Name: n, Kind: e.kind}
		switch e.kind {
		case KindCounter:
			s.Value = int64(e.counter.Load())
		case KindGauge:
			s.Value = e.gauge.Load()
		case KindHistogram:
			s.Hist = e.hist.Snapshot()
		case KindFunc:
			s.Value = e.fn()
		}
		out[i] = s
	}
	return out
}

// WriteText renders the registry in the plain-text exposition format:
// one `name value` line per scalar metric; histograms expand to
// `_count`, `_sum`, `_p50`/`_p95`/`_p99` (estimated nanoseconds), and
// one cumulative `_bucket_le_<bound>` line per occupied bucket.
func (r *Registry) WriteText(w io.Writer) error {
	for _, s := range r.Snapshot() {
		if err := writeSample(w, s); err != nil {
			return err
		}
	}
	return nil
}

func writeSample(w io.Writer, s Sample) error {
	if s.Kind != KindHistogram {
		_, err := fmt.Fprintf(w, "%s %d\n", s.Name, s.Value)
		return err
	}
	h := &s.Hist
	if _, err := fmt.Fprintf(w, "%s_count %d\n%s_sum %d\n%s_p50 %d\n%s_p95 %d\n%s_p99 %d\n",
		s.Name, h.Count, s.Name, h.Sum,
		s.Name, h.Quantile(0.50), s.Name, h.Quantile(0.95), s.Name, h.Quantile(0.99)); err != nil {
		return err
	}
	var cum uint64
	for i, bc := range h.Buckets {
		if bc == 0 {
			continue
		}
		cum += bc
		if _, err := fmt.Fprintf(w, "%s_bucket_le_%d %d\n", s.Name, BucketUpper(i), cum); err != nil {
			return err
		}
	}
	return nil
}
