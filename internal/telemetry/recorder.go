// FlightRecorder: a bounded keep-latest log of structured records, for
// post-hoc debugging of tuner decisions ("why did readahead drop to 8
// sectors at 14:02?"). Built on the same internal/ringbuf the data path
// uses, but with keep-latest semantics: where the collection ring drops
// the NEWEST sample under pressure (training data is fungible), a flight
// recorder evicts the OLDEST record (the recent past is what debugging
// needs). Recording happens on decision paths — once per tuner window,
// once per drained batch — never on the per-event hot path, so a mutex
// is acceptable and makes Snapshot safe from any goroutine.
package telemetry

import (
	"sync"

	"repro/internal/ringbuf"
)

// FlightRecorder retains the most recent records pushed into it.
type FlightRecorder[T any] struct {
	mu      sync.Mutex
	ring    *ringbuf.Ring[T]
	scratch []T
	evicted uint64
}

// NewFlightRecorder returns a recorder retaining the last `capacity`
// records (rounded up to a power of two, like the ring it wraps).
func NewFlightRecorder[T any](capacity int) *FlightRecorder[T] {
	r := ringbuf.New[T](capacity)
	return &FlightRecorder[T]{ring: r, scratch: make([]T, r.Cap())}
}

// Record appends v, evicting the oldest record if the recorder is full.
func (f *FlightRecorder[T]) Record(v T) {
	f.mu.Lock()
	if f.ring.Len() == f.ring.Cap() {
		f.ring.TryPop()
		f.evicted++
	}
	f.ring.TryPush(v)
	f.mu.Unlock()
}

// Snapshot returns a copy of the retained records, oldest first.
func (f *FlightRecorder[T]) Snapshot() []T {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.ring.PopBatch(f.scratch)
	out := make([]T, n)
	copy(out, f.scratch[:n])
	for i := 0; i < n; i++ {
		f.ring.TryPush(f.scratch[i])
	}
	return out
}

// Len returns the number of retained records.
func (f *FlightRecorder[T]) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ring.Len()
}

// Cap returns the retention capacity.
func (f *FlightRecorder[T]) Cap() int { return f.ring.Cap() }

// Evicted returns how many records have been displaced by newer ones —
// how far back the recorder's horizon has moved.
func (f *FlightRecorder[T]) Evicted() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.evicted
}
