package telemetry

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestDebugMuxMetrics: the /metrics page serves the registry's text
// exposition with the plain-text content type.
func TestDebugMuxMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("debug_hits").Add(7)
	srv := httptest.NewServer(DebugMux(reg))
	defer srv.Close()

	body, ct := get(t, srv.URL+"/metrics")
	if !strings.Contains(body, "debug_hits") || !strings.Contains(body, "7") {
		t.Fatalf("/metrics missing counter: %q", body)
	}
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
}

// TestDebugMuxExtras: extra endpoints render their pages at their paths,
// a render error becomes a 500 carrying the error text, and the core
// /metrics page is unaffected by the extras.
func TestDebugMuxExtras(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("extras_alive").Inc()
	mux := DebugMux(reg,
		DebugEndpoint{Path: "/traces", Render: func(w io.Writer) error {
			_, err := fmt.Fprintln(w, "trace 42 ok")
			return err
		}},
		DebugEndpoint{Path: "/learn", Render: func(io.Writer) error {
			return errors.New("controller detached")
		}},
	)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	body, ct := get(t, srv.URL+"/traces")
	if body != "trace 42 ok\n" {
		t.Fatalf("/traces body %q", body)
	}
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/traces content type %q", ct)
	}

	resp, err := srv.Client().Get(srv.URL + "/learn")
	if err != nil {
		t.Fatalf("get /learn: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 500 || !strings.Contains(string(b), "controller detached") {
		t.Fatalf("/learn error page: status=%d body=%q", resp.StatusCode, b)
	}

	if body, _ := get(t, srv.URL+"/metrics"); !strings.Contains(body, "extras_alive") {
		t.Fatalf("/metrics vanished with extras mounted: %q", body)
	}
}

func get(t *testing.T, url string) (body, contentType string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("get %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("get %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return string(b), resp.Header.Get("Content-Type")
}
