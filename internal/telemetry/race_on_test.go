//go:build race

package telemetry

// raceEnabled reports whether the race detector is active. The overhead
// self-check skips under it: the race runtime intercepts every atomic
// operation (~240 ns each here), so the timing assertion would measure
// the detector, not the telemetry.
const raceEnabled = true
