// Package telemetry is the kernel-portable observability layer: the
// always-on metrics the paper's overhead claims (§5: 49 ns per-event
// collection, 21 µs inference, 51 µs training iteration) are defended
// with at runtime, not just in offline benchmarks.
//
// The package is split along the same user/kernel seam as the rest of
// the framework. This file holds the hot-path primitives — Counter,
// Gauge, and a fixed-shape log₂-bucket Histogram — and is kernelspace:
// integer-only, allocation-free, lock-free (sync/atomic and math/bits
// are the whole import list), because instrumentation that costs more
// than the event it measures is worse than none. Everything that may
// allocate or use floating point (snapshots, quantile estimation, the
// registry, text exposition, the HTTP debug listener) lives in the
// sibling userspace files.
//
//kml:kernelspace
package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
//
//kml:hotpath
func (c *Counter) Add(n uint64) {
	c.v.Add(n)
}

// Inc increments the counter by one.
//
//kml:hotpath
func (c *Counter) Inc() {
	c.v.Add(1)
}

// Load returns the current count.
//
//kml:hotpath
func (c *Counter) Load() uint64 {
	return c.v.Load()
}

// Gauge is an instantaneous signed level (buffer occupancy, live bytes).
// The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge's current level.
//
//kml:hotpath
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
}

// Add moves the gauge by delta (negative to decrease).
//
//kml:hotpath
func (g *Gauge) Add(delta int64) {
	g.v.Add(delta)
}

// Load returns the current level.
//
//kml:hotpath
func (g *Gauge) Load() int64 {
	return g.v.Load()
}

// NumBuckets is the fixed bucket count of every Histogram: one bucket
// per power of two of an int64 nanosecond value. Bucket 0 holds exactly
// the value 0; bucket i (i ≥ 1) holds values in [2^(i-1), 2^i - 1];
// bucket 63 is the overflow bucket, absorbing everything up to the
// int64 maximum.
const NumBuckets = 64

// Histogram is a fixed-shape latency histogram over non-negative
// integer nanoseconds. Observation is one bit-length computation and
// two atomic adds — no floats, no allocation, no locks — so it is safe
// on the paper's 49 ns collection path. All distribution math (quantile
// estimation, means) happens at snapshot time in userspace code.
// The zero value is ready to use.
type Histogram struct {
	sum     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// Observe records one latency in nanoseconds. Negative values clamp to
// zero (a backwards clock must not corrupt the shape).
//
//kml:hotpath
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	v := uint64(ns)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)&(NumBuckets-1)].Add(1)
}

// LoadBuckets copies the current bucket counts into dst. Each bucket is
// loaded atomically one at a time — observations racing with the copy
// land wholly in or wholly out of it — and nothing is allocated, so the
// time-series recorder (internal/telemetry/tsrec) can snapshot on its
// fixed-interval tick without disturbing the paths it measures.
//
//kml:hotpath
func (h *Histogram) LoadBuckets(dst *[NumBuckets]uint64) {
	for i := range h.buckets {
		dst[i] = h.buckets[i].Load()
	}
}

// Count returns the number of observations (the sum over all buckets).
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the running total of observed nanoseconds.
func (h *Histogram) Sum() uint64 {
	return h.sum.Load()
}

// BucketLower returns the smallest value that lands in bucket i.
func BucketLower(i int) int64 {
	if i <= 0 {
		return 0
	}
	return 1 << (i - 1)
}

// BucketUpper returns the largest value that lands in bucket i.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= NumBuckets-1 {
		return int64(^uint64(0) >> 1) // math.MaxInt64 without importing math
	}
	return (1 << i) - 1
}
