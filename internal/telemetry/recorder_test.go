package telemetry

import (
	"sync"
	"testing"
)

type rec struct {
	Seq     int
	Version uint64
}

func TestFlightRecorderKeepsLatest(t *testing.T) {
	f := NewFlightRecorder[rec](8)
	if f.Cap() != 8 {
		t.Fatalf("Cap() = %d, want 8", f.Cap())
	}
	for i := 0; i < 20; i++ {
		f.Record(rec{Seq: i, Version: uint64(i / 10)})
	}
	if f.Len() != 8 {
		t.Fatalf("Len() = %d, want 8", f.Len())
	}
	if f.Evicted() != 12 {
		t.Fatalf("Evicted() = %d, want 12", f.Evicted())
	}
	snap := f.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("snapshot has %d records, want 8", len(snap))
	}
	// Keep-latest: the last 8 records, oldest first.
	for i, r := range snap {
		if r.Seq != 12+i {
			t.Errorf("snap[%d].Seq = %d, want %d", i, r.Seq, 12+i)
		}
	}
}

func TestFlightRecorderSnapshotDoesNotConsume(t *testing.T) {
	f := NewFlightRecorder[rec](4)
	f.Record(rec{Seq: 1})
	f.Record(rec{Seq: 2})
	a := f.Snapshot()
	b := f.Snapshot()
	if len(a) != 2 || len(b) != 2 || a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("snapshots differ: %v vs %v", a, b)
	}
	f.Record(rec{Seq: 3})
	if got := f.Snapshot(); len(got) != 3 || got[2].Seq != 3 {
		t.Fatalf("recording after snapshot broken: %v", got)
	}
}

func TestFlightRecorderEmpty(t *testing.T) {
	f := NewFlightRecorder[rec](4)
	if got := f.Snapshot(); len(got) != 0 {
		t.Fatalf("empty snapshot: %v", got)
	}
	if f.Len() != 0 || f.Evicted() != 0 {
		t.Fatalf("empty Len/Evicted = %d/%d", f.Len(), f.Evicted())
	}
}

// TestFlightRecorderConcurrent pins Record/Snapshot safety under -race:
// decision paths record from one goroutine while operators snapshot
// from another.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder[rec](16)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	recDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(recDone)
		for i := 0; i < 5000; i++ {
			f.Record(rec{Seq: i})
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := f.Snapshot()
			for i := 1; i < len(snap); i++ {
				if snap[i].Seq != snap[i-1].Seq+1 {
					t.Errorf("snapshot out of order: %v", snap)
					return
				}
			}
		}
	}()
	<-recDone
	close(stop)
	wg.Wait()

	snap := f.Snapshot()
	if len(snap) != 16 || snap[len(snap)-1].Seq != 4999 {
		t.Fatalf("final snapshot: len=%d last=%+v", len(snap), snap[len(snap)-1])
	}
}
