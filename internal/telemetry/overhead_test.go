package telemetry

import (
	"testing"
	"time"
)

// OverheadBudgetNanos is the telemetry tax the instrumented collection
// path may add per event. The paper's entire per-event data-collection
// budget is ~49 ns (§5); instrumentation that costs more than the
// thing it measures would falsify the overhead claims by existing, so
// the self-check below FAILS the build when a counter increment plus a
// histogram observation exceed this.
const OverheadBudgetNanos = 50

// sink defeats dead-code elimination in the baseline loop.
var sink uint64

// measure times f over iters iterations, takes the best of rounds runs
// (minimum filters scheduler noise — the same discipline as
// cmd/kml-overhead), and returns nanoseconds per iteration.
func measure(iters, rounds int, f func(n int)) float64 {
	best := time.Duration(1<<63 - 1)
	for r := 0; r < rounds; r++ {
		start := time.Now()
		f(iters)
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / float64(iters)
}

// TestOverheadBudget is the telemetry overhead self-check: it measures
// the instrumented hot path (one Counter.Add + one Histogram.Observe —
// what a fully instrumented per-event collection site pays) against a
// bare baseline loop and asserts the delta stays under
// OverheadBudgetNanos. CI runs this on every push, so the 49 ns claim
// is continuously defended rather than asserted once.
func TestOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race detector intercepts atomics; timings would measure the detector")
	}
	const iters = 2_000_000
	const rounds = 5

	bare := measure(iters, rounds, func(n int) {
		var acc uint64
		for i := 0; i < n; i++ {
			acc += uint64(i)
		}
		sink += acc
	})

	var c Counter
	var h Histogram
	instr := measure(iters, rounds, func(n int) {
		var acc uint64
		for i := 0; i < n; i++ {
			acc += uint64(i)
			c.Add(1)
			h.Observe(int64(i & 4095))
		}
		sink += acc
	})

	tax := instr - bare
	t.Logf("bare %.1f ns/op, instrumented %.1f ns/op, telemetry tax %.1f ns/op (budget %d ns)",
		bare, instr, tax, OverheadBudgetNanos)
	if tax > OverheadBudgetNanos {
		t.Fatalf("telemetry tax %.1f ns/event exceeds the %d ns budget; "+
			"the instrumented collection path no longer respects the paper's 49 ns figure",
			tax, OverheadBudgetNanos)
	}
	if c.Load() == 0 || h.Count() == 0 {
		t.Fatal("instrumented loop did not run")
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	var c Counter
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
	sink += c.Load()
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 4095))
	}
	sink += h.Sum()
}

func BenchmarkHistogramSnapshotQuantile(b *testing.B) {
	var h Histogram
	for i := 0; i < 100_000; i++ {
		h.Observe(int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := h.Snapshot()
		sink += uint64(s.Quantile(0.99))
	}
}

func BenchmarkFlightRecorderRecord(b *testing.B) {
	f := NewFlightRecorder[[4]uint64](256)
	for i := 0; i < b.N; i++ {
		f.Record([4]uint64{uint64(i)})
	}
}
