package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestWindowBasics(t *testing.T) {
	w := NewWindow(3)
	if w.Len() != 0 || w.Mean() != 0 || w.Variance() != 0 {
		t.Error("empty window")
	}
	w.Add(1)
	w.Add(2)
	w.Add(3)
	if !w.Full() || w.Len() != 3 {
		t.Error("fill state")
	}
	if w.Mean() != 2 {
		t.Errorf("mean = %g", w.Mean())
	}
	// Population variance of {1,2,3} = 2/3.
	if math.Abs(w.Variance()-2.0/3.0) > 1e-12 {
		t.Errorf("variance = %g", w.Variance())
	}
}

func TestWindowEviction(t *testing.T) {
	w := NewWindow(3)
	for _, x := range []float64{10, 1, 2, 3} { // 10 evicted
		w.Add(x)
	}
	if w.Mean() != 2 {
		t.Errorf("mean after eviction = %g", w.Mean())
	}
	if w.Len() != 3 {
		t.Error("len after eviction")
	}
}

func TestWindowMatchesDirectComputation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const size = 16
	w := NewWindow(size)
	history := make([]float64, 0, 2048)
	for i := 0; i < 2000; i++ {
		x := rng.NormFloat64()*100 + 500
		w.Add(x)
		history = append(history, x)
		lo := len(history) - size
		if lo < 0 {
			lo = 0
		}
		var r Running
		for _, v := range history[lo:] {
			r.Add(v)
		}
		if math.Abs(w.Mean()-r.Mean()) > 1e-9 {
			t.Fatalf("step %d: mean %g vs %g", i, w.Mean(), r.Mean())
		}
		if math.Abs(w.Variance()-r.Variance()) > 1e-6 {
			t.Fatalf("step %d: var %g vs %g", i, w.Variance(), r.Variance())
		}
		if math.Abs(w.StdDev()-r.StdDev()) > 1e-6 {
			t.Fatalf("step %d: stddev %g vs %g", i, w.StdDev(), r.StdDev())
		}
	}
}

func TestWindowReset(t *testing.T) {
	w := NewWindow(4)
	w.Add(5)
	w.Add(7)
	w.Reset()
	if w.Len() != 0 || w.Mean() != 0 || w.Full() {
		t.Error("reset state")
	}
	w.Add(2)
	if w.Mean() != 2 {
		t.Error("post-reset add")
	}
}

func TestWindowSizeOnePanicsZero(t *testing.T) {
	w := NewWindow(1)
	w.Add(3)
	w.Add(9)
	if w.Mean() != 9 || w.Variance() != 0 {
		t.Error("size-1 window")
	}
	defer func() {
		if recover() == nil {
			t.Error("size 0 must panic")
		}
	}()
	NewWindow(0)
}
