package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.Count() != 0 {
		t.Error("zero value should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.Count() != 8 {
		t.Errorf("count = %d", r.Count())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("mean = %g, want 5", r.Mean())
	}
	if math.Abs(r.Variance()-4) > 1e-12 {
		t.Errorf("variance = %g, want 4", r.Variance())
	}
	if math.Abs(r.StdDev()-2) > 1e-12 {
		t.Errorf("stddev = %g, want 2", r.StdDev())
	}
	if math.Abs(r.SampleVariance()-32.0/7.0) > 1e-12 {
		t.Errorf("sample variance = %g", r.SampleVariance())
	}
}

func TestRunningSingleSample(t *testing.T) {
	var r Running
	r.Add(42)
	if r.Mean() != 42 || r.Variance() != 0 || r.SampleVariance() != 0 {
		t.Error("single sample stats")
	}
}

func TestRunningReset(t *testing.T) {
	var r Running
	r.Add(1)
	r.Add(2)
	r.Reset()
	if r.Count() != 0 || r.Mean() != 0 {
		t.Error("Reset must clear")
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var whole, a, b Running
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 1
		whole.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() {
		t.Fatal("merge count")
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-9 || math.Abs(a.Variance()-whole.Variance()) > 1e-9 {
		t.Errorf("merge mismatch: mean %g vs %g, var %g vs %g", a.Mean(), whole.Mean(), a.Variance(), whole.Variance())
	}
}

func TestRunningMergeEmpty(t *testing.T) {
	var a, b Running
	a.Add(5)
	a.Merge(&b) // merging empty is a no-op
	if a.Count() != 1 || a.Mean() != 5 {
		t.Error("merge with empty changed state")
	}
	b.Merge(&a) // merging into empty copies
	if b.Count() != 1 || b.Mean() != 5 {
		t.Error("merge into empty should copy")
	}
}

func TestRunningVarianceNonNegativeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var r Running
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				continue
			}
			r.Add(x)
		}
		return r.Variance() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCMA(t *testing.T) {
	var c CMA
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	if math.Abs(c.Value()-50.5) > 1e-9 {
		t.Errorf("CMA = %g, want 50.5", c.Value())
	}
	if c.Count() != 100 {
		t.Error("CMA count")
	}
	c.Reset()
	if c.Value() != 0 || c.Count() != 0 {
		t.Error("CMA Reset")
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	e.Add(10)
	if e.Value() != 10 {
		t.Error("first sample should initialize")
	}
	e.Add(20)
	if e.Value() != 15 {
		t.Errorf("EWMA = %g, want 15", e.Value())
	}
	// Converges toward a constant input.
	for i := 0; i < 100; i++ {
		e.Add(7)
	}
	if math.Abs(e.Value()-7) > 1e-9 {
		t.Errorf("EWMA should converge to 7, got %g", e.Value())
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	for _, alpha := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha=%g must panic", alpha)
				}
			}()
			NewEWMA(alpha)
		}()
	}
}

func TestZScore(t *testing.T) {
	z := FitZScore([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(z.Apply(5)-0) > 1e-12 {
		t.Errorf("z(5) = %g, want 0", z.Apply(5))
	}
	if math.Abs(z.Apply(7)-1) > 1e-12 {
		t.Errorf("z(7) = %g, want 1", z.Apply(7))
	}
	if math.Abs(z.Apply(3)+1) > 1e-12 {
		t.Errorf("z(3) = %g, want -1", z.Apply(3))
	}
}

func TestZScoreDegenerate(t *testing.T) {
	z := FitZScore([]float64{3, 3, 3})
	if z.Apply(100) != 0 {
		t.Error("constant feature must normalize to 0, not Inf")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	// Perfect positive correlation.
	if r := Pearson(xs, []float64{2, 4, 6, 8, 10}); math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect corr = %g", r)
	}
	// Perfect negative correlation.
	if r := Pearson(xs, []float64{10, 8, 6, 4, 2}); math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect anticorr = %g", r)
	}
	// Constant input is degenerate, not NaN.
	if r := Pearson(xs, []float64{5, 5, 5, 5, 5}); r != 0 {
		t.Errorf("degenerate corr = %g", r)
	}
}

func TestPearsonSymmetricProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		xs := make([]float64, 20)
		ys := make([]float64, 20)
		for j := range xs {
			xs[j] = rng.NormFloat64()
			ys[j] = rng.NormFloat64()
		}
		a, b := Pearson(xs, ys), Pearson(ys, xs)
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("Pearson not symmetric: %g vs %g", a, b)
		}
		if a < -1-1e-12 || a > 1+1e-12 {
			t.Fatalf("Pearson out of [-1,1]: %g", a)
		}
	}
}

func TestPearsonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch must panic")
		}
	}()
	Pearson([]float64{1}, []float64{1, 2})
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, x := range []float64{0.5, 2, 3, 50, 200, 1000} {
		h.Observe(x)
	}
	if h.Count() != 6 {
		t.Error("count")
	}
	if h.Min() != 0.5 || h.Max() != 1000 {
		t.Errorf("min/max: %g/%g", h.Min(), h.Max())
	}
	if math.Abs(h.Mean()-209.25) > 1e-9 {
		t.Errorf("mean = %g", h.Mean())
	}
	if q := h.Quantile(0.5); q != 10 {
		t.Errorf("p50 = %g, want 10 (bucket bound)", q)
	}
	if q := h.Quantile(1.0); q != 1000 {
		t.Errorf("p100 = %g, want observed max", q)
	}
	if NewHistogram(nil).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-ascending bounds must panic")
		}
	}()
	NewHistogram([]float64{1, 1})
}

func TestMeanAbsDelta(t *testing.T) {
	if MeanAbsDelta([]float64{1, 2, 3, 4}) != 1 {
		t.Error("sequential deltas")
	}
	if MeanAbsDelta([]float64{4, 3, 2, 1}) != 1 {
		t.Error("reverse deltas are also 1 in absolute terms")
	}
	if d := MeanAbsDelta([]float64{0, 10, 0, 10}); d != 10 {
		t.Errorf("alternating = %g", d)
	}
	if MeanAbsDelta([]float64{5}) != 0 || MeanAbsDelta(nil) != 0 {
		t.Error("degenerate inputs")
	}
}

func TestMeanDeltaSignsDistinguishDirection(t *testing.T) {
	fwd := MeanDelta([]float64{1, 2, 3, 4})
	rev := MeanDelta([]float64{4, 3, 2, 1})
	if fwd != 1 || rev != -1 {
		t.Errorf("fwd=%g rev=%g", fwd, rev)
	}
	if MeanDelta(nil) != 0 {
		t.Error("empty MeanDelta")
	}
}

func BenchmarkRunningAdd(b *testing.B) {
	var r Running
	for i := 0; i < b.N; i++ {
		r.Add(float64(i & 1023))
	}
}

func BenchmarkZScoreApply(b *testing.B) {
	z := ZScore{Mean: 5, StdDev: 2}
	var v float64
	for i := 0; i < b.N; i++ {
		v = z.Apply(float64(i & 255))
	}
	_ = v
}
