package stats

// Window is a fixed-size sliding window with O(1) mean and variance
// maintenance — the "moving average" and "moving standard deviation" in
// the paper's data-normalization toolbox (§3.2) in their windowed form,
// complementing the cumulative CMA/Running aggregates.
type Window struct {
	buf  []float64
	head int
	n    int
	sum  float64
	sum2 float64
}

// NewWindow returns a sliding window over the last size samples.
func NewWindow(size int) *Window {
	if size <= 0 {
		panic("stats: window size must be positive")
	}
	return &Window{buf: make([]float64, size)}
}

// Add appends x, evicting the oldest sample once the window is full.
func (w *Window) Add(x float64) {
	if w.n == len(w.buf) {
		old := w.buf[w.head]
		w.sum -= old
		w.sum2 -= old * old
	} else {
		w.n++
	}
	w.buf[w.head] = x
	w.head = (w.head + 1) % len(w.buf)
	w.sum += x
	w.sum2 += x * x
}

// Len returns the number of samples currently in the window.
func (w *Window) Len() int { return w.n }

// Full reports whether the window holds size samples.
func (w *Window) Full() bool { return w.n == len(w.buf) }

// Mean returns the window mean (0 when empty).
func (w *Window) Mean() float64 {
	if w.n == 0 {
		return 0
	}
	return w.sum / float64(w.n)
}

// Variance returns the window population variance (0 with <2 samples).
// The sum-of-squares form can suffer cancellation for data with a huge
// mean-to-spread ratio; KML's page-offset magnitudes are far inside the
// safe range, and the tests bound the error against a direct computation.
func (w *Window) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	m := w.Mean()
	v := w.sum2/float64(w.n) - m*m
	if v < 0 {
		return 0 // numerical floor
	}
	return v
}

// StdDev returns the window population standard deviation.
func (w *Window) StdDev() float64 { return sqrt(w.Variance()) }

// Reset empties the window.
func (w *Window) Reset() {
	w.head, w.n, w.sum, w.sum2 = 0, 0, 0, 0
}

// sqrt is a local alias so this file mirrors the package's no-libm rule.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iterations seeded from x; inputs here are moderate.
	y := x
	for i := 0; i < 24; i++ {
		y = 0.5 * (y + x/y)
	}
	return y
}
