// Package stats implements the data normalization and statistical functions
// KML offers (§3.2 of the paper): moving averages, standard deviation,
// Z-score calculation, and the Pearson correlation the authors used for
// feature selection (§4).
//
// Running aggregates use Welford's algorithm so the data-collection hot path
// is a handful of adds and multiplies per sample — this is what makes the
// paper's ~49 ns per-event budget attainable.
package stats

import "repro/internal/kmath"

// Running accumulates count, mean and variance online (Welford). The zero
// value is ready to use.
type Running struct {
	n    uint64
	mean float64
	m2   float64
}

// Add folds x into the aggregate.
//
//kml:hotpath
func (r *Running) Add(x float64) {
	r.n++
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// Count returns the number of samples seen.
func (r *Running) Count() uint64 { return r.n }

// Mean returns the running mean (0 before any samples).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the population variance (0 with fewer than 2 samples).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// SampleVariance returns the Bessel-corrected variance.
func (r *Running) SampleVariance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the population standard deviation.
func (r *Running) StdDev() float64 { return kmath.Sqrt(r.Variance()) }

// Reset clears the aggregate.
func (r *Running) Reset() { *r = Running{} }

// Merge combines another aggregate into r (parallel Welford merge).
func (r *Running) Merge(o *Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *o
		return
	}
	n := r.n + o.n
	delta := o.mean - r.mean
	mean := r.mean + delta*float64(o.n)/float64(n)
	m2 := r.m2 + o.m2 + delta*delta*float64(r.n)*float64(o.n)/float64(n)
	r.n, r.mean, r.m2 = n, mean, m2
}

// CMA is a cumulative moving average — the statistic the paper names as
// readahead feature (ii).
type CMA struct {
	n   uint64
	avg float64
}

// Add folds x into the average.
func (c *CMA) Add(x float64) {
	c.n++
	c.avg += (x - c.avg) / float64(c.n)
}

// Value returns the current average (0 before any samples).
func (c *CMA) Value() float64 { return c.avg }

// Count returns the number of samples seen.
func (c *CMA) Count() uint64 { return c.n }

// Reset clears the average.
func (c *CMA) Reset() { *c = CMA{} }

// EWMA is an exponentially weighted moving average with smoothing factor
// alpha in (0, 1]; larger alpha weights recent samples more.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMA alpha must be in (0, 1]")
	}
	return &EWMA{alpha: alpha}
}

// Add folds x into the average.
func (e *EWMA) Add(x float64) {
	if !e.init {
		e.value = x
		e.init = true
		return
	}
	e.value += e.alpha * (x - e.value)
}

// Value returns the current average (0 before any samples).
func (e *EWMA) Value() float64 { return e.value }

// ZScore standardizes values against a fitted mean/stddev. Fit it on
// training data, then Apply at inference time — matching the paper's
// "calculated the Z-score for each feature to normalize the input data".
type ZScore struct {
	Mean   float64
	StdDev float64
}

// FitZScore estimates normalization parameters from xs.
func FitZScore(xs []float64) ZScore {
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	return ZScore{Mean: r.Mean(), StdDev: r.StdDev()}
}

// Apply standardizes x. A degenerate (zero) standard deviation yields 0 so a
// constant feature cannot poison the network with Inf/NaN.
//
//kml:hotpath
func (z ZScore) Apply(x float64) float64 {
	if z.StdDev == 0 {
		return 0
	}
	return (x - z.Mean) / z.StdDev
}

// Pearson returns the Pearson correlation coefficient of xs and ys, which
// must have equal nonzero length. Degenerate (constant) inputs return 0.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		panic("stats: Pearson requires equal-length nonempty slices")
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	n := float64(len(xs))
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / kmath.Sqrt(sxx*syy)
}

// Histogram is a fixed-bucket latency/size histogram with power-of-two-ish
// bucket boundaries supplied by the caller.
type Histogram struct {
	bounds []float64 // ascending upper bounds; final bucket is overflow
	counts []uint64
	total  uint64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram returns a histogram with the given ascending bucket upper
// bounds (an overflow bucket is added implicitly).
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]uint64, len(bounds)+1)}
}

// Observe records a sample.
func (h *Histogram) Observe(x float64) {
	if h.total == 0 || x < h.min {
		h.min = x
	}
	if h.total == 0 || x > h.max {
		h.max = x
	}
	h.total++
	h.sum += x
	for i, b := range h.bounds {
		if x <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the mean of all observations (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min returns the smallest observation (0 if empty).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest observation (0 if empty).
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns an upper-bound estimate of quantile q in [0, 1] using
// bucket boundaries. Overflow-bucket results return the observed max.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	q = kmath.Clamp(q, 0, 1)
	target := uint64(q * float64(h.total))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i == len(h.bounds) {
				return h.max
			}
			return h.bounds[i]
		}
	}
	return h.max
}

// MeanAbsDelta computes the mean absolute difference between consecutive
// elements of xs — the paper's readahead feature (iv). It returns 0 for
// fewer than two samples.
func MeanAbsDelta(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var sum float64
	for i := 1; i < len(xs); i++ {
		sum += kmath.Abs(xs[i] - xs[i-1])
	}
	return sum / float64(len(xs)-1)
}

// MeanDelta computes the mean signed difference between consecutive
// elements of xs (0 for fewer than two samples). See DESIGN.md for why the
// readahead feature pipeline uses the signed variant over sliding windows.
func MeanDelta(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	// Telescoping sum: only the endpoints matter.
	return (xs[len(xs)-1] - xs[0]) / float64(len(xs)-1)
}
