package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func TestLinearForward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(2, 3, rng)
	// Overwrite with known weights.
	l.Weights().CopyFrom(matrix.FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6}))
	l.Bias().CopyFrom(matrix.FromSlice(1, 3, []float64{0.5, -0.5, 1}))
	in := matrix.FromSlice(1, 2, []float64{1, 2})
	out := l.Forward(in)
	want := []float64{1*1 + 2*4 + 0.5, 1*2 + 2*5 - 0.5, 1*3 + 2*6 + 1}
	for j, w := range want {
		if math.Abs(out.At(0, j)-w) > 1e-12 {
			t.Errorf("out[%d] = %g, want %g", j, out.At(0, j), w)
		}
	}
}

func TestLinearXavierInitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(10, 20, rng)
	limit := math.Sqrt(6.0 / 30.0)
	for _, v := range l.Weights().Data() {
		if v < -limit || v > limit {
			t.Fatalf("weight %g outside Xavier bound %g", v, limit)
		}
	}
	for _, v := range l.Bias().Data() {
		if v != 0 {
			t.Fatal("bias must initialize to zero")
		}
	}
}

func TestActivations(t *testing.T) {
	in := matrix.FromSlice(1, 3, []float64{-1, 0, 2})
	sig := NewSigmoid().Forward(in)
	if math.Abs(sig.At(0, 1)-0.5) > 1e-12 {
		t.Error("sigmoid(0) != 0.5")
	}
	relu := NewReLU().Forward(in)
	if relu.At(0, 0) != 0 || relu.At(0, 2) != 2 {
		t.Error("relu values")
	}
	tanh := NewTanh().Forward(in)
	if math.Abs(tanh.At(0, 2)-math.Tanh(2)) > 1e-10 {
		t.Error("tanh value")
	}
}

func TestSoftmaxLayer(t *testing.T) {
	sm := NewSoftmax()
	out := sm.Forward(matrix.FromSlice(2, 2, []float64{0, 0, 1, 3}))
	if math.Abs(out.At(0, 0)-0.5) > 1e-12 {
		t.Error("uniform softmax")
	}
	sum := out.At(1, 0) + out.At(1, 1)
	if math.Abs(sum-1) > 1e-12 {
		t.Error("softmax rows must sum to 1")
	}
	defer func() {
		if recover() == nil {
			t.Error("Softmax.Backward must panic")
		}
	}()
	sm.Backward(nil)
}

// numericalGrad estimates dLoss/dParam by central differences.
func numericalGrad(net *Network, loss Loss, in *Mat, target Target, p *Mat, i int) float64 {
	const eps = 1e-6
	data := p.Data()
	orig := data[i]
	data[i] = orig + eps
	lp := loss.Forward(net.Forward(in), target)
	data[i] = orig - eps
	lm := loss.Forward(net.Forward(in), target)
	data[i] = orig
	return (lp - lm) / (2 * eps)
}

func gradCheck(t *testing.T, net *Network, loss Loss, in *Mat, target Target) {
	t.Helper()
	net.ZeroGrads()
	out := net.Forward(in)
	loss.Forward(out, target)
	net.Backward(loss.Backward())
	params, grads := net.Params(), net.Grads()
	for pi, p := range params {
		g := grads[pi]
		for i := range p.Data() {
			want := numericalGrad(net, loss, in, target, p, i)
			got := g.Data()[i]
			scale := math.Max(math.Abs(want), math.Abs(got))
			if scale < 1e-8 {
				continue
			}
			if math.Abs(got-want)/math.Max(scale, 1e-4) > 1e-4 {
				t.Errorf("param %d elem %d: analytic %g vs numeric %g", pi, i, got, want)
			}
		}
	}
}

func TestGradCheckCrossEntropyMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewNetwork(
		NewLinear(4, 6, rng), NewSigmoid(),
		NewLinear(6, 5, rng), NewSigmoid(),
		NewLinear(5, 3, rng),
	)
	in := matrix.New[float64](5, 4)
	for i := range in.Data() {
		in.Data()[i] = rng.NormFloat64()
	}
	gradCheck(t, net, NewCrossEntropy(), in, ClassTarget([]int{0, 1, 2, 1, 0}))
}

func TestGradCheckMSEReLUTanh(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := NewNetwork(
		NewLinear(3, 8, rng), NewTanh(),
		NewLinear(8, 4, rng), NewReLU(),
		NewLinear(4, 2, rng),
	)
	in := matrix.New[float64](4, 3)
	tv := matrix.New[float64](4, 2)
	for i := range in.Data() {
		in.Data()[i] = rng.NormFloat64()
	}
	for i := range tv.Data() {
		tv.Data()[i] = rng.NormFloat64()
	}
	gradCheck(t, net, NewMSE(), in, ValueTarget(tv))
}

func TestGradCheckBCE(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewNetwork(NewLinear(3, 4, rng), NewSigmoid(), NewLinear(4, 1, rng))
	in := matrix.New[float64](6, 3)
	for i := range in.Data() {
		in.Data()[i] = rng.NormFloat64()
	}
	gradCheck(t, net, NewBCE(), in, ClassTarget([]int{0, 1, 1, 0, 1, 0}))
}

func TestXORConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewNetwork(NewLinear(2, 8, rng), NewTanh(), NewLinear(8, 2, rng))
	in := matrix.FromSlice(4, 2, []float64{0, 0, 0, 1, 1, 0, 1, 1})
	labels := []int{0, 1, 1, 0}
	loss := NewCrossEntropy()
	opt := NewSGD(0.5, 0.9)
	var lv float64
	for i := 0; i < 2000; i++ {
		lv = net.TrainBatch(in, ClassTarget(labels), loss, opt)
	}
	if lv > 0.01 {
		t.Fatalf("XOR loss did not converge: %g", lv)
	}
	out := net.Forward(in)
	for i, want := range labels {
		if out.ArgMaxRow(i) != want {
			t.Errorf("XOR sample %d misclassified", i)
		}
	}
}

// blobs generates a 3-class Gaussian-blob dataset.
func blobs(rng *rand.Rand, n int) (*Mat, []int) {
	centers := [][2]float64{{0, 0}, {4, 4}, {-4, 4}}
	in := matrix.New[float64](n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(3)
		labels[i] = c
		in.Set(i, 0, centers[c][0]+rng.NormFloat64())
		in.Set(i, 1, centers[c][1]+rng.NormFloat64())
	}
	return in, labels
}

func TestMultiClassTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trainX, trainY := blobs(rng, 300)
	testX, testY := blobs(rng, 200)
	net := NewNetwork(
		NewLinear(2, 16, rng), NewSigmoid(),
		NewLinear(16, 16, rng), NewSigmoid(),
		NewLinear(16, 3, rng),
	)
	loss := NewCrossEntropy()
	opt := NewSGD(0.1, 0.9)
	for epoch := 0; epoch < 200; epoch++ {
		net.TrainBatch(trainX, ClassTarget(trainY), loss, opt)
	}
	out := net.Forward(testX)
	correct := 0
	for i, want := range testY {
		if out.ArgMaxRow(i) == want {
			correct++
		}
	}
	acc := float64(correct) / float64(len(testY))
	if acc < 0.95 {
		t.Fatalf("blob accuracy %.3f < 0.95", acc)
	}
}

func TestSGDMomentumAcceleratesOnQuadratic(t *testing.T) {
	// Minimize f(w) = w² with plain SGD vs heavy-ball momentum at the same
	// (deliberately small) learning rate: momentum amplifies the effective
	// step by ~1/(1−μ) and must converge far faster over a long horizon.
	run := func(momentum float64, iters int) float64 {
		p := matrix.FromSlice(1, 1, []float64{10})
		g := matrix.New[float64](1, 1)
		opt := NewSGD(0.001, momentum)
		for i := 0; i < iters; i++ {
			g.Set(0, 0, 2*p.At(0, 0))
			opt.Step([]*Mat{p}, []*Mat{g})
		}
		return math.Abs(p.At(0, 0))
	}
	plain := run(0, 500)
	mom := run(0.9, 500)
	if mom >= plain {
		t.Errorf("momentum (%g) should beat plain SGD (%g) on quadratic", mom, plain)
	}
}

func TestSGDWeightDecayShrinks(t *testing.T) {
	p := matrix.FromSlice(1, 1, []float64{1})
	g := matrix.New[float64](1, 1) // zero gradient
	opt := NewSGD(0.1, 0)
	opt.WeightDecay = 0.5
	for i := 0; i < 10; i++ {
		opt.Step([]*Mat{p}, []*Mat{g})
	}
	if v := p.At(0, 0); v >= 1 || v <= 0 {
		t.Errorf("weight decay should shrink toward 0, got %g", v)
	}
}

func TestSGDValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewSGD(0, 0.9) },
		func() { NewSGD(0.1, 1.0) },
		func() { NewSGD(0.1, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid SGD config must panic")
				}
			}()
			f()
		}()
	}
}

func TestNetworkDimsAndString(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := NewNetwork(NewLinear(5, 16, rng), NewSigmoid(), NewLinear(16, 4, rng))
	if net.InDim() != 5 || net.OutDim() != 4 {
		t.Errorf("dims %d→%d", net.InDim(), net.OutDim())
	}
	if s := net.String(); s != "linear(5→16) → sigmoid → linear(16→4)" {
		t.Errorf("String() = %q", s)
	}
	if net.ParamCount() != 5*16+16+16*4+4 {
		t.Errorf("ParamCount = %d", net.ParamCount())
	}
	if net.ParamBytes() != int64(net.ParamCount())*8 {
		t.Error("ParamBytes")
	}
}

func TestNetworkDimMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	defer func() {
		if recover() == nil {
			t.Error("dim mismatch must panic")
		}
	}()
	NewNetwork(NewLinear(5, 16, rng), NewLinear(8, 4, rng))
}

func TestPredictNoAllocAfterWarmup(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net := NewNetwork(NewLinear(5, 16, rng), NewSigmoid(), NewLinear(16, 4, rng))
	var buf PredictBuffer
	features := []float64{0.1, -0.2, 0.3, 0.4, -0.5}
	net.Predict(features, &buf) // warm up buffers
	allocs := testing.AllocsPerRun(100, func() {
		net.Predict(features, &buf)
	})
	if allocs != 0 {
		t.Errorf("Predict allocates %.1f objects per run; inference must be allocation-free", allocs)
	}
}

func TestCrossEntropyPerfectPrediction(t *testing.T) {
	ce := NewCrossEntropy()
	logits := matrix.FromSlice(1, 3, []float64{100, 0, 0})
	if l := ce.Forward(logits, ClassTarget([]int{0})); l > 1e-6 {
		t.Errorf("perfect prediction loss = %g", l)
	}
	logitsBad := matrix.FromSlice(1, 3, []float64{0, 100, 0})
	if l := ce.Forward(logitsBad, ClassTarget([]int{0})); l < 10 {
		t.Errorf("confident wrong prediction loss = %g, want large", l)
	}
}

func TestCrossEntropyUniformLoss(t *testing.T) {
	ce := NewCrossEntropy()
	logits := matrix.New[float64](1, 4) // uniform
	want := math.Log(4)
	if l := ce.Forward(logits, ClassTarget([]int{2})); math.Abs(l-want) > 1e-10 {
		t.Errorf("uniform loss = %g, want ln(4)=%g", l, want)
	}
}

func TestCrossEntropyLabelValidation(t *testing.T) {
	ce := NewCrossEntropy()
	defer func() {
		if recover() == nil {
			t.Error("out-of-range label must panic")
		}
	}()
	ce.Forward(matrix.New[float64](1, 3), ClassTarget([]int{3}))
}

func TestMSEZeroAtTarget(t *testing.T) {
	mse := NewMSE()
	pred := matrix.FromSlice(2, 2, []float64{1, 2, 3, 4})
	if l := mse.Forward(pred, ValueTarget(pred.Clone())); l != 0 {
		t.Errorf("MSE at target = %g", l)
	}
	tv := matrix.New[float64](2, 2)
	if l := mse.Forward(pred, ValueTarget(tv)); math.Abs(l-7.5) > 1e-12 {
		t.Errorf("MSE = %g, want 7.5", l)
	}
}

func TestBCEStability(t *testing.T) {
	bce := NewBCE()
	// Extreme logits must not produce NaN/Inf.
	pred := matrix.FromSlice(2, 1, []float64{1000, -1000})
	l := bce.Forward(pred, ClassTarget([]int{1, 0}))
	if math.IsNaN(l) || math.IsInf(l, 0) {
		t.Fatalf("BCE overflowed: %g", l)
	}
	if l > 1e-6 {
		t.Errorf("confident correct BCE = %g, want ~0", l)
	}
}

func TestTrainBatchReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := NewNetwork(NewLinear(2, 8, rng), NewSigmoid(), NewLinear(8, 2, rng))
	in, labels := blobs(rng, 50)
	// blobs gives 3 classes; clamp to 2 for this test.
	for i := range labels {
		if labels[i] == 2 {
			labels[i] = 0
		}
	}
	loss := NewCrossEntropy()
	opt := NewSGD(0.1, 0.9)
	first := net.TrainBatch(in, ClassTarget(labels), loss, opt)
	var last float64
	for i := 0; i < 100; i++ {
		last = net.TrainBatch(in, ClassTarget(labels), loss, opt)
	}
	if last >= first {
		t.Errorf("loss did not decrease: %g -> %g", first, last)
	}
}

func BenchmarkForwardReadaheadModel(b *testing.B) {
	// The paper's readahead model shape: 3 linear layers with sigmoids,
	// 5 inputs, 4 classes.
	rng := rand.New(rand.NewSource(12))
	net := NewNetwork(
		NewLinear(5, 15, rng), NewSigmoid(),
		NewLinear(15, 15, rng), NewSigmoid(),
		NewLinear(15, 4, rng),
	)
	var buf PredictBuffer
	features := []float64{0.5, -1.2, 0.3, 2.2, -0.7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Predict(features, &buf)
	}
}

func BenchmarkTrainBatchReadaheadModel(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	net := NewNetwork(
		NewLinear(5, 15, rng), NewSigmoid(),
		NewLinear(15, 15, rng), NewSigmoid(),
		NewLinear(15, 4, rng),
	)
	in := matrix.New[float64](1, 5)
	for i := range in.Data() {
		in.Data()[i] = rng.NormFloat64()
	}
	loss := NewCrossEntropy()
	opt := NewSGD(0.01, 0.99)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.TrainBatch(in, ClassTarget([]int{i % 4}), loss, opt)
	}
}
