package nn

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// fuzzSeedModel serializes a small trained-shaped network as a valid seed.
func fuzzSeedModel(tb testing.TB) []byte {
	rng := rand.New(rand.NewSource(7))
	net := NewNetwork(
		NewLinear(4, 8, rng), NewSigmoid(),
		NewLinear(8, 4, rng), NewSoftmax(),
	)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzModelRoundTrip feeds arbitrary bytes to the model-file loader. The
// loader must never panic or over-allocate on corrupt input — it either
// returns ErrBadModel-wrapped errors or a well-formed network whose
// serialization round-trips byte-identically.
func FuzzModelRoundTrip(f *testing.F) {
	seed := fuzzSeedModel(f)
	f.Add(seed)
	f.Add(seed[:len(seed)-3])             // truncated checksum
	f.Add(seed[:7])                       // truncated header
	f.Add([]byte("KMLF"))                 // magic only
	f.Add([]byte{})                       // empty
	f.Add(bytes.Repeat([]byte{0xff}, 64)) // garbage
	// A hostile header: valid magic/version, huge layer dims.
	hostile := append([]byte(nil), seed[:8]...)
	hostile = append(hostile, 1, 0xff, 0xff, 0xff, 0x7f, 0xff, 0xff, 0xff, 0x7f)
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		net, err := Load(bytes.NewReader(data))
		if err != nil {
			if net != nil {
				t.Fatal("Load returned both a network and an error")
			}
			return
		}
		var out1 bytes.Buffer
		if err := net.Save(&out1); err != nil {
			t.Fatalf("re-saving a loaded network: %v", err)
		}
		net2, err := Load(bytes.NewReader(out1.Bytes()))
		if err != nil {
			t.Fatalf("reloading a saved network: %v", err)
		}
		var out2 bytes.Buffer
		if err := net2.Save(&out2); err != nil {
			t.Fatalf("re-saving the reloaded network: %v", err)
		}
		if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
			t.Fatal("save/load/save is not byte-stable")
		}
	})
}

// TestLoadRejectsOversizedDims pins the allocation guard: a header
// claiming huge-but-individually-legal layer dimensions must fail with
// ErrBadModel before the weight buffers are allocated.
func TestLoadRejectsOversizedDims(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("KMLF")
	buf.Write([]byte{1, 0}) // version 1
	buf.Write([]byte{1, 0}) // one layer
	buf.WriteByte(1)        // kindLinear
	// in = 1<<15, out = 1<<15: each under maxLinearDim, product over
	// maxLinearWeights (would be an 8 GB weight buffer).
	buf.Write([]byte{0x00, 0x80, 0x00, 0x00})
	buf.Write([]byte{0x00, 0x80, 0x00, 0x00})
	_, err := Load(bytes.NewReader(buf.Bytes()))
	if !errors.Is(err, ErrBadModel) {
		t.Fatalf("Load accepted %d x %d weights: err = %v", 1<<15, 1<<15, err)
	}
}
